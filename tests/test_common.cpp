// Unit tests for src/common: bit utilities, RNG, LFSR/MISR, table printer.
#include <gtest/gtest.h>

#include <set>

#include "common/bits.hpp"
#include "common/lfsr.hpp"
#include "common/rng.hpp"
#include "common/tablefmt.hpp"

namespace sbst {
namespace {

TEST(Bits, BitAndWithBit) {
  EXPECT_TRUE(bit(0b100, 2));
  EXPECT_FALSE(bit(0b100, 1));
  EXPECT_EQ(with_bit(0, 5, true), 32u);
  EXPECT_EQ(with_bit(0xff, 0, false), 0xfeu);
}

TEST(Bits, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(32), 0xffffffffull);
  EXPECT_EQ(low_mask(64), ~std::uint64_t{0});
}

TEST(Bits, SignExtend32) {
  EXPECT_EQ(sign_extend32(0xff, 8), 0xffffffffu);
  EXPECT_EQ(sign_extend32(0x7f, 8), 0x7fu);
  EXPECT_EQ(sign_extend32(0x8000, 16), 0xffff8000u);
  EXPECT_EQ(sign_extend32(0x1234, 16), 0x1234u);
}

TEST(Bits, ParityAndBinary) {
  EXPECT_TRUE(parity64(0b111));
  EXPECT_FALSE(parity64(0b11));
  EXPECT_EQ(to_binary(0b1010, 4), "1010");
  EXPECT_EQ(to_hex32(0xdeadbeef), "0xdeadbeef");
}

TEST(Rng, DeterministicAndDistinct) {
  Rng a(42), b(42), c(43);
  const auto x = a.next64();
  EXPECT_EQ(x, b.next64());
  EXPECT_NE(x, c.next64());
}

TEST(Rng, BelowIsInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
}

TEST(Lfsr, FullPeriodOnSmallCheck) {
  // The default polynomial must not cycle back to the seed quickly.
  Lfsr32 lfsr(1);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(lfsr.step()).second) << "cycle at step " << i;
  }
}

TEST(Lfsr, NeverReachesZeroFromNonZeroSeed) {
  Lfsr32 lfsr(0xdeadbeef);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_NE(lfsr.step(), 0u);
  }
}

TEST(Misr, OrderSensitivity) {
  // A MISR distinguishes response streams that a plain XOR checksum cannot.
  Misr32 a, b;
  a.absorb(0x1);
  a.absorb(0x2);
  b.absorb(0x2);
  b.absorb(0x1);
  EXPECT_NE(a.signature(), b.signature());
}

TEST(Misr, SingleBitErrorChangesSignature) {
  for (unsigned bit_pos = 0; bit_pos < 32; ++bit_pos) {
    Misr32 good, bad;
    for (int i = 0; i < 16; ++i) {
      const std::uint32_t r = 0xa5a5a5a5u + static_cast<std::uint32_t>(i);
      good.absorb(r);
      bad.absorb(i == 7 ? r ^ (1u << bit_pos) : r);
    }
    EXPECT_NE(good.signature(), bad.signature()) << "bit " << bit_pos;
  }
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_rule();
  t.add_row({"long-name", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name      | value"), std::string::npos);
  EXPECT_NE(s.find("long-name | 22"), std::string::npos);
}

TEST(Table, ThousandsSeparators) {
  EXPECT_EQ(Table::num(std::uint64_t{26080}), "26,080");
  EXPECT_EQ(Table::num(std::uint64_t{808}), "808");
  EXPECT_EQ(Table::num(std::uint64_t{1234567}), "1,234,567");
}

}  // namespace
}  // namespace sbst
