// Self-test routine code generation: the routines assemble, run, halt,
// respect the paper's stringent characteristics (no pipeline stalls, almost
// no data references), and their signatures match the MISR golden model.
#include <gtest/gtest.h>

#include "common/lfsr.hpp"
#include "core/codegen.hpp"
#include "core/program.hpp"
#include "sim/cpu.hpp"

namespace sbst::core {
namespace {

struct RunResult {
  sim::ExecStats stats;
  std::vector<std::uint32_t> signatures;
};

RunResult run_routine(const Routine& routine) {
  TestProgramBuilder builder;
  const TestProgram program = builder.build_standalone(routine);
  sim::Cpu cpu;
  cpu.reset();
  cpu.load(program.image);
  RunResult out;
  out.stats = cpu.run(program.entry);
  for (unsigned s = 0; s < kSignatureSlots; ++s) {
    out.signatures.push_back(cpu.read_word(program.signature_address(s)));
  }
  return out;
}

ProcessorModel& shared_model() {
  static ProcessorModel model;
  return model;
}

std::vector<Routine> all_routines() {
  CodegenOptions opts;
  return {make_multiplier_routine(opts), make_divider_routine(opts),
          make_regfile_routine(opts),    make_memctrl_routine(opts),
          make_shifter_routine(shared_model(), opts),
          make_alu_routine(opts),        make_control_routine(opts)};
}

TEST(Codegen, MisrSubroutineMatchesGoldenModel) {
  // Drive the assembly MISR with a known response stream and compare the
  // final signature word with the Misr32 reference.
  const std::vector<std::uint32_t> responses = {0xdeadbeefu, 0x12345678u,
                                                0x00000000u, 0xffffffffu,
                                                0xa5a5a5a5u};
  CodegenOptions opts;
  std::string body;
  char buf[64];
  std::snprintf(buf, sizeof buf, "  li $s7, 0x%x\n  li $s2, 0x%x\n",
                opts.misr_poly, opts.misr_seed);
  body += buf;
  for (std::uint32_t r : responses) {
    std::snprintf(buf, sizeof buf, "  li $t8, 0x%x\n", r);
    body += buf;
    body += "  jal misr\n  nop\n";
  }
  body += "  la $s6, signatures\n  sw $s2, 0($s6)\n";
  Routine r{.name = "misrtest", .target = CutId::kAlu,
            .strategy = TpgStrategy::kRegularDeterministic, .style = "t",
            .assembly = body};
  const RunResult run = run_routine(r);
  EXPECT_TRUE(run.stats.halted);
  EXPECT_EQ(run.signatures[0],
            misr_reference(responses, opts.misr_seed, opts.misr_poly));
}

TEST(Codegen, EveryRoutineAssemblesRunsAndHalts) {
  for (const Routine& r : all_routines()) {
    const RunResult run = run_routine(r);
    EXPECT_TRUE(run.stats.halted) << r.name;
    EXPECT_NE(run.signatures[r.sig_slot], 0u) << r.name;
  }
}

TEST(Codegen, RoutinesHaveNoPipelineStalls) {
  // Paper §2: "Small code without unresolved data hazards".
  for (const Routine& r : all_routines()) {
    const RunResult run = run_routine(r);
    EXPECT_EQ(run.stats.pipeline_stall_cycles, 0u) << r.name;
  }
}

TEST(Codegen, RoutinesMakeAlmostNoDataReferences) {
  // Paper §4: only the memory controller routine needs loads/stores for
  // test application; everything else stores just its final signature.
  for (const Routine& r : all_routines()) {
    const RunResult run = run_routine(r);
    if (r.target == CutId::kMemCtrl || r.target == CutId::kControl) {
      EXPECT_LT(run.stats.data_references(), 100u) << r.name;
    } else {
      EXPECT_EQ(run.stats.data_references(), 1u) << r.name;  // signature sw
    }
  }
}

TEST(Codegen, SignaturesAreDeterministic) {
  for (const Routine& r : all_routines()) {
    const RunResult a = run_routine(r);
    const RunResult b = run_routine(r);
    EXPECT_EQ(a.signatures, b.signatures) << r.name;
  }
}

TEST(Codegen, SignatureSlotsAreDistinct) {
  std::set<unsigned> slots;
  for (const Routine& r : all_routines()) {
    EXPECT_TRUE(slots.insert(r.sig_slot).second) << r.name;
  }
}

TEST(Codegen, RegfileRoutineAvoidsDataMemoryDuringTest) {
  // The two-phase scheme exists exactly to avoid stores (paper §3.3).
  const RunResult run = run_routine(make_regfile_routine({}));
  EXPECT_EQ(run.stats.stores, 1u);
  EXPECT_EQ(run.stats.loads, 0u);
}

// ---- Figures 1-4 code styles -------------------------------------------------

std::vector<AluOpnd> small_pattern_list() {
  return {{rtlgen::AluOp::kAdd, 0xaaaaaaaau, 0x55555555u},
          {rtlgen::AluOp::kAdd, 0xffffffffu, 0x00000001u},
          {rtlgen::AluOp::kAdd, 0x0f0f0f0fu, 0xf0f0f0f0u},
          {rtlgen::AluOp::kAdd, 0x33333333u, 0xccccccccu}};
}

TEST(CodeStyles, Fig1SizeLinearInPatterns) {
  // Paper: "The code size depends linearly on the number of test patterns."
  TestProgramBuilder builder;
  const auto four = builder.build_standalone(
      make_fig1_immediate_routine(small_pattern_list(), {}));
  auto eight_list = small_pattern_list();
  auto more = small_pattern_list();
  eight_list.insert(eight_list.end(), more.begin(), more.end());
  const auto eight = builder.build_standalone(
      make_fig1_immediate_routine(eight_list, {}));
  const std::size_t delta =
      eight.sections[0].size_words() - four.sections[0].size_words();
  // Each extra pattern costs 3-6 words (li/li/jal/apply, li width varies).
  EXPECT_GE(delta, 4u * 3);
  EXPECT_LE(delta, 4u * 6);
}

TEST(CodeStyles, Fig2SizeIndependentOfPatternCountButDataGrows) {
  // Paper: "The code size is small and independent of the number of test
  // patterns" — the patterns live in data memory instead.
  TestProgramBuilder builder;
  auto longer = small_pattern_list();
  for (int i = 0; i < 12; ++i) longer.push_back(small_pattern_list()[i % 4]);
  const Routine a = make_fig2_datafetch_routine(small_pattern_list(),
                                                rtlgen::AluOp::kAdd, {});
  const Routine b =
      make_fig2_datafetch_routine(longer, rtlgen::AluOp::kAdd, {});
  const auto pa = builder.build_standalone(a);
  const auto pb = builder.build_standalone(b);
  EXPECT_EQ(pa.sections[0].size_words(), pb.sections[0].size_words());
  EXPECT_GT(pb.image.size_words(), pa.image.size_words());  // .word table
}

TEST(CodeStyles, Fig2LoadsEveryPatternFromMemory) {
  const Routine r = make_fig2_datafetch_routine(small_pattern_list(),
                                                rtlgen::AluOp::kAdd, {});
  const RunResult run = run_routine(r);
  EXPECT_TRUE(run.stats.halted);
  // Two loads per pattern plus the final signature store.
  EXPECT_EQ(run.stats.loads, 2u * small_pattern_list().size());
  EXPECT_EQ(run.stats.stores, 1u);
}

TEST(CodeStyles, Fig1AndFig2ProduceSameSignature) {
  // Same patterns, same operation, same compaction -> same signature, no
  // matter how the patterns reach the CUT.
  auto only_add = small_pattern_list();
  const RunResult f1 =
      run_routine(make_fig1_immediate_routine(only_add, {}));
  const RunResult f2 = run_routine(
      make_fig2_datafetch_routine(only_add, rtlgen::AluOp::kAdd, {}));
  EXPECT_EQ(f1.signatures[7], f2.signatures[7]);
}

TEST(CodeStyles, Fig3LfsrMatchesSoftwareModel) {
  // The in-assembly Galois LFSR must generate exactly the Lfsr32 sequence;
  // verify via the signature of absorbing op(x_i, y_i).
  const unsigned n = 40;
  const std::uint32_t seed_x = 0x13572468u, seed_y = 0x2468ace1u;
  CodegenOptions opts;
  const RunResult run = run_routine(make_fig3_lfsr_routine(
      rtlgen::AluOp::kXor, seed_x, seed_y, n, opts));
  Lfsr32 x(seed_x, opts.misr_poly), y(seed_y, opts.misr_poly);
  std::vector<std::uint32_t> responses;
  for (unsigned i = 0; i < n; ++i) {
    responses.push_back(x.step() ^ y.step());
  }
  EXPECT_EQ(run.signatures[7],
            misr_reference(responses, opts.misr_seed, opts.misr_poly));
}

TEST(CodeStyles, Fig3ExecutionTimeLinearInIterations) {
  const RunResult short_run = run_routine(
      make_fig3_lfsr_routine(rtlgen::AluOp::kAdd, 1, 2, 64, {}));
  const RunResult long_run = run_routine(
      make_fig3_lfsr_routine(rtlgen::AluOp::kAdd, 1, 2, 128, {}));
  const double ratio =
      static_cast<double>(long_run.stats.cpu_cycles) /
      static_cast<double>(short_run.stats.cpu_cycles);
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 2.2);
}

TEST(CodeStyles, Fig4AppliesFullCrossProduct) {
  const Routine r = make_fig4_regular_routine(rtlgen::AluOp::kAdd, {});
  const RunResult run = run_routine(r);
  EXPECT_TRUE(run.stats.halted);
  // 32x32 inner iterations plus loop overhead: >= 1024 absorbs, each >= 10
  // cycles through the MISR subroutine.
  EXPECT_GT(run.stats.cpu_cycles, 1024u * 10);
  EXPECT_EQ(run.stats.data_references(), 1u);
  EXPECT_EQ(run.stats.pipeline_stall_cycles, 0u);
}

TEST(CodeStyles, LoopStylesHaveSmallCode) {
  // Figures 2/3/4 share the defining property: compact loops.
  TestProgramBuilder builder;
  EXPECT_LT(builder
                .build_standalone(make_fig3_lfsr_routine(
                    rtlgen::AluOp::kAdd, 1, 2, 4096, {}))
                .sections[0]
                .size_words(),
            40u);
  EXPECT_LT(builder
                .build_standalone(make_fig4_regular_routine(
                    rtlgen::AluOp::kAdd, {}))
                .sections[0]
                .size_words(),
            30u);
}

}  // namespace
}  // namespace sbst::core
