// PODEM ATPG: correctness of generated tests, constraint handling,
// untestability proofs, and the test-set generation driver.
#include <gtest/gtest.h>

#include "atpg/podem.hpp"
#include "atpg/testgen.hpp"
#include "fault/sim.hpp"
#include "rtlgen/alu.hpp"
#include "rtlgen/shifter.hpp"

namespace sbst::atpg {
namespace {

using fault::Fault;
using fault::FaultUniverse;
using fault::PatternSet;
using netlist::Netlist;
using netlist::NetId;

// Checks with the fault simulator that `pattern` really detects `f`.
bool pattern_detects(const Netlist& nl, const Fault& f,
                     const std::vector<bool>& pattern) {
  netlist::Evaluator good(nl), bad(nl);
  const auto& ins = nl.inputs();
  for (std::size_t k = 0; k < ins.size(); ++k) {
    good.set_input(ins[k], pattern[k]);
    bad.set_input(ins[k], pattern[k]);
  }
  bad.inject(f.site, f.stuck_value, ~std::uint64_t{0});
  good.eval();
  bad.eval();
  for (NetId out : nl.output_nets()) {
    if ((good.value(out) ^ bad.value(out)) & 1u) return true;
  }
  return false;
}

TEST(Podem, GeneratesValidTestsForEveryAluFault) {
  const Netlist nl = rtlgen::build_alu({.width = 4});
  FaultUniverse u(nl);
  Podem podem(nl);
  Rng rng(1);
  std::size_t detected = 0, untestable = 0, aborted = 0;
  for (const Fault& f : u.collapsed()) {
    const AtpgOutcome out = podem.generate(f, rng);
    switch (out.status) {
      case AtpgStatus::kDetected:
        ++detected;
        EXPECT_TRUE(pattern_detects(nl, f, out.pattern))
            << fault_name(nl, f);
        break;
      case AtpgStatus::kUntestable:
        ++untestable;
        break;
      case AtpgStatus::kAborted:
        ++aborted;
        break;
    }
  }
  // The ALU generator produces a near-irredundant structure; PODEM must
  // test essentially everything without aborts.
  EXPECT_EQ(aborted, 0u);
  EXPECT_GT(detected, u.size() * 95 / 100);
}

TEST(Podem, UntestableFaultsProvenOnRedundantCircuit) {
  // y = a AND !a is constant 0: the AND output sa0 is untestable.
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId y = nl.and_(a, nl.not_(a));
  nl.output("y", y);
  Podem podem(nl);
  Rng rng(2);
  const AtpgOutcome sa0 =
      podem.generate({{y, netlist::Site::kOutputPin}, false}, rng);
  EXPECT_EQ(sa0.status, AtpgStatus::kUntestable);
  const AtpgOutcome sa1 =
      podem.generate({{y, netlist::Site::kOutputPin}, true}, rng);
  EXPECT_EQ(sa1.status, AtpgStatus::kDetected);
}

TEST(Podem, HonoursInputConstraints) {
  // c = a AND b with b pinned to 0: faults needing b=1 become untestable.
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId c = nl.and_(a, b);
  nl.output("c", c);

  InputConstraints cons;
  cons.fix_net(b, false);
  Podem podem(nl, cons);
  Rng rng(3);

  // c sa0 requires a=b=1: untestable under b=0.
  EXPECT_EQ(podem.generate({{c, netlist::Site::kOutputPin}, false}, rng).status,
            AtpgStatus::kUntestable);
  // c sa1 is testable (a=X, b=0 -> c=0, fault makes it 1).
  const AtpgOutcome sa1 =
      podem.generate({{c, netlist::Site::kOutputPin}, true}, rng);
  ASSERT_EQ(sa1.status, AtpgStatus::kDetected);
  EXPECT_FALSE(sa1.pattern[1]);  // constraint respected in emitted pattern
}

TEST(Podem, ConstraintsViaPortFixing) {
  // Shifter with op pinned to SLL: sra sign-fill logic loses coverage, but
  // tests that are generated still respect op = 00.
  const Netlist nl = rtlgen::build_shifter({.width = 8});
  InputConstraints cons;
  cons.fix_port(nl, "op", static_cast<std::uint64_t>(rtlgen::ShiftOp::kSll));
  Podem podem(nl, cons);
  Rng rng(4);
  FaultUniverse u(nl);
  const auto& op_bus = nl.input_port("op");
  std::size_t detected = 0;
  for (std::size_t i = 0; i < u.size(); i += 7) {  // sample for speed
    const AtpgOutcome out = podem.generate(u.collapsed()[i], rng);
    if (out.status != AtpgStatus::kDetected) continue;
    ++detected;
    EXPECT_TRUE(pattern_detects(nl, u.collapsed()[i], out.pattern));
    // op bits are the nets of the "op" port; check both are 0 in pattern.
    const auto& ins = nl.inputs();
    for (std::size_t k = 0; k < ins.size(); ++k) {
      if (ins[k] == op_bus[0] || ins[k] == op_bus[1]) {
        EXPECT_FALSE(out.pattern[k]);
      }
    }
  }
  EXPECT_GT(detected, 0u);
}

TEST(Podem, BranchFaultOnFanoutStem) {
  // Classic branch-fault case: a fans out to an AND and an OR.
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId x = nl.and_(a, b);
  const NetId y = nl.or_(a, b);
  nl.output("x", x);
  nl.output("y", y);
  Podem podem(nl);
  Rng rng(5);
  // Branch of a into the AND gate, sa0 (only visible on x).
  const AtpgOutcome out = podem.generate({{x, 0}, false}, rng);
  ASSERT_EQ(out.status, AtpgStatus::kDetected);
  EXPECT_TRUE(pattern_detects(nl, {{x, 0}, false}, out.pattern));
}

TEST(Podem, RejectsSequentialNetlists) {
  Netlist nl;
  const NetId q = nl.dff("q");
  nl.connect_dff(q, nl.not_(q));
  nl.output("q", q);
  EXPECT_THROW(Podem{nl}, std::invalid_argument);
}

TEST(TestGen, FullCoverageOnAlu8WithCompaction) {
  const Netlist nl = rtlgen::build_alu({.width = 8});
  FaultUniverse u(nl);
  TestGenOptions opts;
  opts.seed = 7;
  // The ALU carry/condition-flag reconvergence contains one redundant
  // fault; a high backtrack limit lets PODEM prove it untestable rather
  // than abort.
  opts.podem.backtrack_limit = 150000;
  const TestGenResult res = generate_atpg_tests(nl, u.collapsed(), {}, opts);
  EXPECT_EQ(res.aborted, 0u);
  EXPECT_EQ(res.untestable, 1u);
  // Everything except provably untestable faults must be covered.
  EXPECT_EQ(res.coverage.detected + res.untestable, res.coverage.total);
  EXPECT_GT(res.coverage.percent(), 99.0);
  // Fault dropping keeps the deterministic test set small (paper: "the
  // number of ATPG based test patterns is small").
  EXPECT_LT(res.patterns.size(), 64u + res.coverage.total / 4);
}

TEST(TestGen, ResultPatternsReallyAchieveReportedCoverage) {
  const Netlist nl = rtlgen::build_alu({.width = 4});
  FaultUniverse u(nl);
  TestGenOptions opts;
  opts.seed = 11;
  const TestGenResult res = generate_atpg_tests(nl, u.collapsed(), {}, opts);
  const auto replay = fault::simulate_comb(nl, u.collapsed(), res.patterns);
  EXPECT_EQ(replay.detected, res.coverage.detected);
}

TEST(TestGen, RandomTestsAreDeterministicAndConstrained) {
  const Netlist nl = rtlgen::build_alu({.width = 8});
  InputConstraints cons;
  cons.fix_port(nl, "op", static_cast<std::uint64_t>(rtlgen::AluOp::kAdd));
  const PatternSet a = generate_random_tests(nl, 50, 99, Lfsr32::kDefaultPoly,
                                             cons);
  const PatternSet b = generate_random_tests(nl, 50, 99, Lfsr32::kDefaultPoly,
                                             cons);
  ASSERT_EQ(a.size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.value_of(i, "a"), b.value_of(i, "a"));
    EXPECT_EQ(a.value_of(i, "op"),
              static_cast<std::uint64_t>(rtlgen::AluOp::kAdd));
  }
  // Different seeds give different streams.
  const PatternSet c = generate_random_tests(nl, 50, 100);
  bool any_diff = false;
  for (std::size_t i = 0; i < 50; ++i) {
    any_diff = any_diff || a.value_of(i, "a") != c.value_of(i, "a");
  }
  EXPECT_TRUE(any_diff);
}

TEST(TestGen, RandomPatternsResistantFaultsNeedAtpg) {
  // The paper motivates deterministic ATPG by random-pattern-resistant
  // structures. A wide AND is the canonical example: its output sa0 needs
  // the all-ones input, which N random patterns (N << 2^16) rarely supply.
  Netlist nl;
  const auto a = nl.input_bus("a", 16);
  const NetId y = nl.and_reduce(a);
  nl.output("y", y);
  FaultUniverse u(nl);

  const PatternSet random = generate_random_tests(nl, 256, 1);
  const auto rand_cov = fault::simulate_comb(nl, u.collapsed(), random);
  EXPECT_LT(rand_cov.percent(), 100.0);

  const TestGenResult det = generate_atpg_tests(nl, u.collapsed());
  EXPECT_DOUBLE_EQ(det.coverage.percent(), 100.0);
}

}  // namespace
}  // namespace sbst::atpg
