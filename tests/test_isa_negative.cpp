// Negative paths of the assembler, disassembler, and micro-op decoder:
// invalid opcodes, out-of-range operands, and truncated source must all
// error cleanly, and random instruction words are fuzzed against the
// decoder's operand table (raw fields, hazard flags, consumed immediates,
// illegal-kind agreement with the disassembler).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "isa/assembler.hpp"
#include "isa/decode.hpp"
#include "isa/disasm.hpp"
#include "isa/encoding.hpp"

namespace sbst::isa {
namespace {

TEST(AssemblerNegative, UnknownMnemonics) {
  EXPECT_THROW(assemble("frobnicate $t0, $t1"), AsmError);
  EXPECT_THROW(assemble("addw $t0, $t1, $t2"), AsmError);   // near miss
  EXPECT_THROW(assemble("lwx $t0, 0($t1)"), AsmError);
  EXPECT_THROW(assemble("sllv3 $t0, $t1, $t2"), AsmError);
  EXPECT_THROW(assemble(".wordx 1"), AsmError);
}

TEST(AssemblerNegative, OutOfRangeOperands) {
  // Shift amount is a 5-bit field.
  EXPECT_THROW(assemble("sll $t0, $t1, 32"), AsmError);
  // Signed 16-bit immediates: [-32768, 32767].
  EXPECT_THROW(assemble("addi $t0, $t1, 32768"), AsmError);
  EXPECT_THROW(assemble("addi $t0, $t1, -32769"), AsmError);
  EXPECT_THROW(assemble("slti $t0, $t1, 0x10000"), AsmError);
  // Unsigned 16-bit logical immediates.
  EXPECT_THROW(assemble("andi $t0, $t1, 0x10000"), AsmError);
  EXPECT_THROW(assemble("ori $t0, $t1, 0x12345"), AsmError);
  // Load/store offsets are signed 16-bit.
  EXPECT_THROW(assemble("lw $t0, 32768($t1)"), AsmError);
  EXPECT_THROW(assemble("sw $t0, -32769($t1)"), AsmError);
  // Register numbers stop at $31.
  EXPECT_THROW(assemble("addu $t0, $32, $t1"), AsmError);
  EXPECT_THROW(assemble("addu $t0, $qq, $t1"), AsmError);
  // lui takes a 16-bit value.
  EXPECT_THROW(assemble("lui $t0, 0x10000"), AsmError);
}

TEST(AssemblerNegative, TruncatedSource) {
  EXPECT_THROW(assemble("add $t0"), AsmError);
  EXPECT_THROW(assemble("add $t0, $t1,"), AsmError);
  EXPECT_THROW(assemble("lw $t0"), AsmError);
  EXPECT_THROW(assemble("lw $t0, 4("), AsmError);
  EXPECT_THROW(assemble("lw $t0, 4($t1"), AsmError);
  EXPECT_THROW(assemble("beq $t0, $t1"), AsmError);
  EXPECT_THROW(assemble("lui $t0"), AsmError);
  EXPECT_THROW(assemble("sw $t0,"), AsmError);
  EXPECT_THROW(assemble("j"), AsmError);
}

TEST(AssemblerNegative, ErrorsCarryTheFailingLine) {
  try {
    assemble("nop\nnop\nsll $t0, $t1, 99\nnop");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

// Fuzz: disassemble and decode_uop accept every 32-bit word. The raw
// opcode/funct fields always mirror the word, and the two ends agree on
// what is illegal (decode_uop's lazy illegal kinds match the
// disassembler's "<illegal ...>" markers).
TEST(DecodeFuzz, EveryWordDecodesAndIllegalKindsAgreeWithDisasm) {
  Rng rng(0xc0ffee);
  for (int i = 0; i < 50000; ++i) {
    const std::uint32_t w = rng.next32();
    const MicroOp op = decode_uop(w);  // must not throw
    EXPECT_EQ(op.opcode, w >> 26);
    EXPECT_EQ(op.funct, w & 0x3f);

    const std::string text = disassemble(w, 0x1000);  // must not throw
    ASSERT_FALSE(text.empty());
    if (op.kind == UopKind::kIllegalFunct) {
      EXPECT_EQ(text.rfind("<illegal funct", 0), 0u) << text;
    } else if (op.kind == UopKind::kIllegalOpcode) {
      EXPECT_EQ(text.rfind("<illegal opcode", 0), 0u) << text;
    } else {
      EXPECT_EQ(text.find("<illegal"), std::string::npos) << text;
    }
  }
}

TEST(DecodeFuzz, OperandFieldsMatchWordSlices) {
  Rng rng(0xdecade);
  for (int i = 0; i < 50000; ++i) {
    const std::uint32_t w = rng.next32();
    const MicroOp op = decode_uop(w);
    if (op.kind == UopKind::kIllegalFunct ||
        op.kind == UopKind::kIllegalOpcode) {
      continue;
    }
    EXPECT_EQ(op.rs, (w >> 21) & 31);
    EXPECT_EQ(op.rt, (w >> 16) & 31);
    EXPECT_EQ(op.rd, (w >> 11) & 31);
    EXPECT_EQ(op.shamt, (w >> 6) & 31);
  }
}

TEST(DecodeFuzz, ConsumedImmediateForms) {
  // Sign-extended arithmetic immediate / load-store offset.
  EXPECT_EQ(decode_uop(addi(kT0, kT1, -5)).imm, 0xfffffffbu);
  EXPECT_EQ(decode_uop(lw(kT0, -8, kT1)).imm, 0xfffffff8u);
  // Zero-extended logical immediate.
  EXPECT_EQ(decode_uop(ori(kT0, kT1, 0x8000)).imm, 0x8000u);
  // lui pre-shifted.
  EXPECT_EQ(decode_uop(lui(kT0, 0xaaaa)).imm, 0xaaaa0000u);
  // Branch offsets pre-shifted to byte offsets.
  EXPECT_EQ(decode_uop(beq(kT0, kT1, -3)).imm,
            static_cast<std::uint32_t>(-12));
  // Jump targets pre-shifted to byte offsets within the segment.
  EXPECT_EQ(decode_uop(j(0x100)).imm, 0x400u);
}

TEST(DecodeFuzz, HazardFlagsFollowOperandTable) {
  // Immediate shifts read rt only.
  EXPECT_EQ(decode_uop(sll(kT0, kT1, 3)).flags, kUopReadsRt);
  // R-type ALU reads both.
  EXPECT_EQ(decode_uop(addu(kT0, kT1, kT2)).flags,
            kUopReadsRs | kUopReadsRt);
  // jr reads rs; mfhi reads neither.
  EXPECT_EQ(decode_uop(jr(kT0)).flags, kUopReadsRs);
  EXPECT_EQ(decode_uop(mfhi(kT0)).flags, 0);
  // Loads read the base only; stores read base + data.
  EXPECT_EQ(decode_uop(lw(kT0, 0, kT1)).flags, kUopReadsRs);
  EXPECT_EQ(decode_uop(sw(kT0, 0, kT1)).flags, kUopReadsRs | kUopReadsRt);
  // lui and jumps read nothing.
  EXPECT_EQ(decode_uop(lui(kT0, 1)).flags, 0);
  EXPECT_EQ(decode_uop(j(1)).flags, 0);
}

// Fuzzed canonical round trip: every encoder builder with random operands
// survives disassemble -> assemble back to the identical word. (Branches
// are excluded: their disassembly renders pc-relative targets as absolute
// addresses, so the text only reassembles at the original pc.)
TEST(DisasmFuzz, BuilderWordsRoundTripThroughAssembler) {
  Rng rng(0xfeedbee5);
  const auto reg = [&rng] {
    return static_cast<std::uint8_t>(rng.below(32));
  };
  const auto sham = [&rng] {
    return static_cast<std::uint8_t>(rng.below(32));
  };
  const auto simm = [&rng] {
    return static_cast<std::int32_t>(rng.next32() & 0xffff) - 0x8000;
  };
  const auto uimm = [&rng] {
    return static_cast<std::uint32_t>(rng.next32() & 0xffff);
  };

  std::vector<std::uint32_t> words;
  for (int rep = 0; rep < 64; ++rep) {
    const std::uint8_t rd = reg(), rs_ = reg(), rt_ = reg();
    words.push_back(sll(rd, rt_, sham()));
    words.push_back(srl(rd, rt_, sham()));
    words.push_back(sra(rd, rt_, sham()));
    words.push_back(sllv(rd, rt_, rs_));
    words.push_back(srlv(rd, rt_, rs_));
    words.push_back(srav(rd, rt_, rs_));
    words.push_back(jr(rs_));
    words.push_back(brk());
    words.push_back(mfhi(rd));
    words.push_back(mthi(rs_));
    words.push_back(mflo(rd));
    words.push_back(mtlo(rs_));
    words.push_back(mult(rs_, rt_));
    words.push_back(multu(rs_, rt_));
    words.push_back(isa::div(rs_, rt_));
    words.push_back(isa::divu(rs_, rt_));
    words.push_back(add(rd, rs_, rt_));
    words.push_back(addu(rd, rs_, rt_));
    words.push_back(sub(rd, rs_, rt_));
    words.push_back(subu(rd, rs_, rt_));
    words.push_back(and_(rd, rs_, rt_));
    words.push_back(or_(rd, rs_, rt_));
    words.push_back(xor_(rd, rs_, rt_));
    words.push_back(nor_(rd, rs_, rt_));
    words.push_back(slt(rd, rs_, rt_));
    words.push_back(sltu(rd, rs_, rt_));
    words.push_back(addi(rt_, rs_, simm()));
    words.push_back(addiu(rt_, rs_, simm()));
    words.push_back(slti(rt_, rs_, simm()));
    words.push_back(sltiu(rt_, rs_, simm()));
    words.push_back(andi(rt_, rs_, uimm()));
    words.push_back(ori(rt_, rs_, uimm()));
    words.push_back(xori(rt_, rs_, uimm()));
    words.push_back(lui(rt_, uimm()));
    words.push_back(lb(rt_, simm(), rs_));
    words.push_back(lh(rt_, simm(), rs_));
    words.push_back(lw(rt_, simm(), rs_));
    words.push_back(lbu(rt_, simm(), rs_));
    words.push_back(lhu(rt_, simm(), rs_));
    words.push_back(sb(rt_, simm(), rs_));
    words.push_back(sh(rt_, simm(), rs_));
    words.push_back(sw(rt_, simm(), rs_));
    words.push_back(j(rng.below(1u << 26)));
    words.push_back(jal(rng.below(1u << 26)));
    words.push_back(nop());
  }

  std::size_t round_tripped = 0;
  for (const std::uint32_t w : words) {
    const std::string text = disassemble(w, 0);
    ASSERT_EQ(text.find("<illegal"), std::string::npos) << text;
    Program p;
    ASSERT_NO_THROW(p = assemble(text)) << text;
    ASSERT_EQ(p.size_words(), 1u) << text;
    EXPECT_EQ(p.words[0], w) << text;
    ++round_tripped;
  }
  EXPECT_EQ(round_tripped, words.size());
}

}  // namespace
}  // namespace sbst::isa
