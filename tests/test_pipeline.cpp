// Structural pipeline CPU: ISA semantics, hazard timing, and — the key
// test — architectural equivalence with the functional model over entire
// SBST programs.
#include <gtest/gtest.h>

#include "core/program.hpp"
#include "isa/assembler.hpp"
#include "sim/cpu.hpp"
#include "sim/pipeline.hpp"

namespace sbst::sim {
namespace {

ExecStats run_pipelined(PipelinedCpu& cpu, const std::string& source) {
  const isa::Program p = isa::assemble(source);
  cpu.reset();
  cpu.load(p);
  return cpu.run(0);
}

TEST(Pipeline, BasicArithmeticAndForwarding) {
  PipelinedCpu cpu;
  const ExecStats s = run_pipelined(cpu, R"(
    li $s0, 7
    addu $t0, $s0, $s0     # back-to-back dependence: forwarded, no stall
    addu $t1, $t0, $s0
    xor  $t2, $t1, $t0
    break
  )");
  EXPECT_TRUE(s.halted);
  EXPECT_EQ(cpu.reg(isa::kT0), 14u);
  EXPECT_EQ(cpu.reg(isa::kT1), 21u);
  EXPECT_EQ(cpu.reg(isa::kT2), 21u ^ 14u);
  EXPECT_EQ(s.pipeline_stall_cycles, 0u);
}

TEST(Pipeline, DelaySlotSemantics) {
  PipelinedCpu cpu;
  run_pipelined(cpu, R"(
    li $t0, 1
    beq $zero, $zero, over
    li $t1, 2            # delay slot executes
    li $t2, 3            # skipped
  over:
    break
  )");
  EXPECT_EQ(cpu.reg(isa::kT0), 1u);
  EXPECT_EQ(cpu.reg(isa::kT1), 2u);
  EXPECT_EQ(cpu.reg(isa::kT2), 0u);
}

TEST(Pipeline, LoadUseInterlockCostsOneCycle) {
  PipelinedCpu cpu;
  const ExecStats hazard = run_pipelined(cpu, R"(
    li $s3, 0x1000
    lw $t0, 0($s3)
    addu $t1, $t0, $t0
    break
  )");
  EXPECT_EQ(hazard.pipeline_stall_cycles, 1u);
  const ExecStats scheduled = run_pipelined(cpu, R"(
    li $s3, 0x1000
    lw $t0, 0($s3)
    nop
    addu $t1, $t0, $t0
    break
  )");
  EXPECT_EQ(scheduled.pipeline_stall_cycles, 0u);
}

TEST(Pipeline, JalAndJr) {
  PipelinedCpu cpu;
  run_pipelined(cpu, R"(
    jal sub
    nop
    li $t1, 9
    break
  sub:
    li $t0, 4
    jr $ra
    nop
  )");
  EXPECT_EQ(cpu.reg(isa::kT0), 4u);
  EXPECT_EQ(cpu.reg(isa::kT1), 9u);
}

TEST(Pipeline, MultDivUnitInterlocks) {
  PipelinedCpu cpu;
  const ExecStats s = run_pipelined(cpu, R"(
    li $s0, 100
    li $s1, 7
    divu $s0, $s1
    mflo $t0
    mfhi $t1
    break
  )");
  EXPECT_EQ(cpu.reg(isa::kT0), 14u);
  EXPECT_EQ(cpu.reg(isa::kT1), 2u);
  EXPECT_GT(s.cpu_cycles, 32u);  // serial divider latency is real time
}

// ---- cross-validation against the functional model -------------------------

struct ArchState {
  std::array<std::uint32_t, 32> regs;
  std::uint32_t hi, lo;
  std::vector<std::uint32_t> sig;
};

template <typename AnyCpu>
ArchState capture(AnyCpu& cpu, const core::TestProgram& p) {
  ArchState s{};
  for (unsigned r = 0; r < 32; ++r) s.regs[r] = cpu.reg(r);
  s.hi = cpu.hi();
  s.lo = cpu.lo();
  for (unsigned slot = 0; slot < core::kSignatureSlots; ++slot) {
    s.sig.push_back(cpu.read_word(p.signature_address(slot)));
  }
  return s;
}

class CrossValidation
    : public ::testing::TestWithParam<core::CutId> {};

TEST_P(CrossValidation, RoutineProducesIdenticalArchitecturalState) {
  static core::ProcessorModel model;
  core::CodegenOptions opts;
  core::Routine routine;
  switch (GetParam()) {
    case core::CutId::kAlu: routine = core::make_alu_routine(opts); break;
    case core::CutId::kShifter:
      routine = core::make_shifter_routine(model, opts);
      break;
    case core::CutId::kMultiplier:
      routine = core::make_multiplier_routine(opts);
      break;
    case core::CutId::kDivider:
      routine = core::make_divider_routine(opts);
      break;
    case core::CutId::kRegisterFile:
      routine = core::make_regfile_routine(opts);
      break;
    case core::CutId::kMemCtrl:
      routine = core::make_memctrl_routine(opts);
      break;
    default:
      routine = core::make_control_routine(opts);
  }
  core::TestProgramBuilder builder;
  const core::TestProgram p = builder.build_standalone(routine);

  Cpu functional;
  functional.reset();
  functional.load(p.image);
  const ExecStats fs = functional.run(p.entry);

  PipelinedCpu pipelined;
  pipelined.reset();
  pipelined.load(p.image);
  const ExecStats ps = pipelined.run(p.entry);

  ASSERT_TRUE(fs.halted);
  ASSERT_TRUE(ps.halted);
  EXPECT_EQ(fs.instructions, ps.instructions);
  const ArchState a = capture(functional, p);
  const ArchState b = capture(pipelined, p);
  EXPECT_EQ(a.sig, b.sig);      // identical signatures above all
  EXPECT_EQ(a.hi, b.hi);
  EXPECT_EQ(a.lo, b.lo);
  for (unsigned r = 0; r < 32; ++r) {
    EXPECT_EQ(a.regs[r], b.regs[r]) << "$" << r;
  }
  // The timing models are independent but must agree within a small band.
  const double ratio = static_cast<double>(ps.total_cycles()) /
                       static_cast<double>(fs.total_cycles());
  EXPECT_GT(ratio, 0.7) << ps.total_cycles() << " vs " << fs.total_cycles();
  EXPECT_LT(ratio, 1.4) << ps.total_cycles() << " vs " << fs.total_cycles();
}

INSTANTIATE_TEST_SUITE_P(
    AllRoutines, CrossValidation,
    ::testing::Values(core::CutId::kAlu, core::CutId::kShifter,
                      core::CutId::kMultiplier, core::CutId::kDivider,
                      core::CutId::kRegisterFile, core::CutId::kMemCtrl,
                      core::CutId::kControl),
    [](const auto& info) {
      switch (info.param) {
        case core::CutId::kAlu: return "alu";
        case core::CutId::kShifter: return "shifter";
        case core::CutId::kMultiplier: return "mul";
        case core::CutId::kDivider: return "div";
        case core::CutId::kRegisterFile: return "rf";
        case core::CutId::kMemCtrl: return "mem";
        default: return "ctrl";
      }
    });

TEST(CrossValidationFull, CombinedProgramMatches) {
  core::ProcessorModel model;
  core::TestProgramBuilder builder;
  builder.add_default_routines(model);
  const core::TestProgram p = builder.build();

  Cpu functional;
  functional.reset();
  functional.load(p.image);
  functional.run(p.entry);

  PipelinedCpu pipelined;
  pipelined.reset();
  pipelined.load(p.image);
  const ExecStats ps = pipelined.run(p.entry);
  ASSERT_TRUE(ps.halted);

  for (unsigned slot = 0; slot < core::kSignatureSlots; ++slot) {
    EXPECT_EQ(functional.read_word(p.signature_address(slot)),
              pipelined.read_word(p.signature_address(slot)))
        << "slot " << slot;
  }
}

}  // namespace
}  // namespace sbst::sim
