// Regular deterministic TPG: set sizes scale as claimed (constant + linear),
// sets reach their coverage, and — the key §3.3 property — they are
// implementation-independent (same set, different gate-level realisations).
#include <gtest/gtest.h>

#include "core/tpg.hpp"
#include "fault/sim.hpp"
#include "rtlgen/alu.hpp"
#include "rtlgen/control.hpp"
#include "rtlgen/divider.hpp"
#include "rtlgen/memctrl.hpp"
#include "rtlgen/multiplier.hpp"
#include "rtlgen/regfile.hpp"
#include "rtlgen/shifter.hpp"

namespace sbst::core {
namespace {

using netlist::Netlist;

double grade_comb(const Netlist& nl, const fault::PatternSet& ps,
                  const fault::ObserveSet& obs = {}) {
  fault::FaultUniverse u(nl);
  return fault::simulate_comb(nl, u.collapsed(), ps, obs).percent();
}

double grade_seq(const Netlist& nl, const fault::SeqStimulus& seq) {
  fault::FaultUniverse u(nl);
  return fault::simulate_seq(nl, u.collapsed(), seq).percent();
}

// ---- set-size scaling (constant or linear, paper §1/§3.3) ------------------

TEST(RegularTpg, SetSizesScaleLinearly) {
  const auto alu8 = regular_alu_tests(8);
  const auto alu32 = regular_alu_tests(32);
  // constant part + 6 linear families.
  EXPECT_EQ(alu32.size() - alu8.size(), 6u * (32 - 8));

  const auto mul8 = regular_multiplier_tests(8);
  const auto mul32 = regular_multiplier_tests(32);
  EXPECT_EQ(mul32.size() - mul8.size(), 3u * (32 - 8));

  const auto div8 = regular_divider_tests(8);
  const auto div32 = regular_divider_tests(32);
  EXPECT_EQ(div32.size() - div8.size(), 3u * (32 - 8));

  const auto sh8 = regular_shifter_tests(8);
  const auto sh32 = regular_shifter_tests(32);
  EXPECT_EQ(sh8.size(), 3u * 3 * 8);
  EXPECT_EQ(sh32.size(), 3u * 3 * 32);
}

TEST(RegularTpg, RegfileSetLinearInRegisters) {
  EXPECT_EQ(regular_regfile_tests(8).size() % 7, 0u);
  const auto t16 = regular_regfile_tests(16);
  const auto t32 = regular_regfile_tests(32);
  EXPECT_LT(t32.size(), 2.2 * t16.size());
}

// ---- coverage thresholds ----------------------------------------------------

TEST(RegularTpg, AluSetReachesHighCoverage) {
  const Netlist nl = rtlgen::build_alu({.width = 16});
  const auto ps = alu_pattern_set(nl, regular_alu_tests(16));
  EXPECT_GT(grade_comb(nl, ps), 99.0);
}

TEST(RegularTpg, ShifterSetCoverage) {
  const Netlist nl = rtlgen::build_shifter({.width = 16});
  const auto ps = shifter_pattern_set(nl, regular_shifter_tests(16));
  EXPECT_GT(grade_comb(nl, ps), 90.0);
}

TEST(RegularTpg, MultiplierSetCoverage) {
  const Netlist nl = rtlgen::build_multiplier({.width = 8});
  const auto ps = multiplier_pattern_set(nl, regular_multiplier_tests(8));
  // Narrow arrays have proportionally more boundary faults; the 32-bit
  // instance reaches ~95% with the same family (see bench/table1).
  EXPECT_GT(grade_comb(nl, ps), 88.0);
}

TEST(RegularTpg, DividerSetCoverage) {
  const Netlist nl = rtlgen::build_divider({.width = 8});
  const auto seq = divider_stimulus(nl, regular_divider_tests(8), 8);
  EXPECT_GT(grade_seq(nl, seq), 80.0);
}

TEST(RegularTpg, RegfileSetCoverage) {
  const Netlist nl = rtlgen::build_regfile({.num_regs = 8, .width = 8});
  const auto seq = regfile_stimulus(nl, regular_regfile_tests(8));
  EXPECT_GT(grade_seq(nl, seq), 93.0);
}

TEST(RegularTpg, MemctrlSetCoverage) {
  // The A-VC MAR is deliberately unexercised (offsets stay within the test
  // words), capping coverage — the paper's A-VC story.
  const Netlist nl = rtlgen::build_memctrl();
  const auto seq = memctrl_stimulus(nl, regular_memctrl_tests());
  const double fc = grade_seq(nl, seq);
  EXPECT_GT(fc, 70.0);
  EXPECT_LT(fc, 90.0);
}

TEST(RegularTpg, ControlFunctionalTestCoverage) {
  const Netlist nl = rtlgen::build_control();
  const auto ps = control_pattern_set(nl);
  EXPECT_EQ(ps.size(), rtlgen::all_instruction_opcodes().size());
  const double fc = grade_comb(nl, ps);
  EXPECT_GT(fc, 75.0);  // FT has a natural ceiling (illegal opcodes never run)
  EXPECT_LT(fc, 100.0);
}

// ---- implementation independence (the high-level strategy's defining
// ---- property, paper §3.3 strategy 3) ---------------------------------------

class AluImplementation
    : public ::testing::TestWithParam<rtlgen::AdderStyle> {};

TEST_P(AluImplementation, SameRegularSetWorksOnBothAdders) {
  const Netlist nl = rtlgen::build_alu({.width = 16, .adder = GetParam()});
  const auto ps = alu_pattern_set(nl, regular_alu_tests(16));
  // Full coverage of lookahead product terms needs generate(j) x kill(k)
  // pairs — quadratically many; the linear set still lands within ~2% of
  // the ripple-carry figure, which is the implementation-independence claim
  // being validated here.
  const double threshold =
      GetParam() == rtlgen::AdderStyle::kRippleCarry ? 99.0 : 97.5;
  EXPECT_GT(grade_comb(nl, ps), threshold);
}

INSTANTIATE_TEST_SUITE_P(
    BothStyles, AluImplementation,
    ::testing::Values(rtlgen::AdderStyle::kRippleCarry,
                      rtlgen::AdderStyle::kCarryLookahead),
    [](const auto& info) {
      return info.param == rtlgen::AdderStyle::kRippleCarry ? "ripple"
                                                            : "cla";
    });

// ---- widths sweep: the sets remain effective at several widths --------------

class WidthSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(WidthSweep, AluRegularSetCoverageAcrossWidths) {
  const unsigned w = GetParam();
  const Netlist nl = rtlgen::build_alu({.width = w});
  const auto ps = alu_pattern_set(nl, regular_alu_tests(w));
  EXPECT_GT(grade_comb(nl, ps), 98.5) << "width " << w;
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthSweep,
                         ::testing::Values(4u, 8u, 16u, 32u),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

// ---- lowering fidelity -------------------------------------------------------

TEST(RegularTpg, PatternLoweringPreservesOperands) {
  const Netlist nl = rtlgen::build_alu({.width = 32});
  const auto tests = regular_alu_tests(32);
  const auto ps = alu_pattern_set(nl, tests);
  ASSERT_EQ(ps.size(), tests.size());
  for (std::size_t i = 0; i < tests.size(); i += 17) {
    EXPECT_EQ(ps.value_of(i, "a"), tests[i].a);
    EXPECT_EQ(ps.value_of(i, "b"), tests[i].b);
    EXPECT_EQ(ps.value_of(i, "op"),
              static_cast<std::uint64_t>(tests[i].op));
  }
}

TEST(RegularTpg, DividerStimulusFollowsProtocol) {
  const Netlist nl = rtlgen::build_divider({.width = 8});
  const std::vector<DivOpnd> one = {{100, 7}};
  const auto seq = divider_stimulus(nl, one, 8);
  // start + 8 steps + 3 observed idle cycles.
  EXPECT_EQ(seq.size(), 12u);
  EXPECT_EQ(seq.observe_count(), 3u);
}

}  // namespace
}  // namespace sbst::core
