// Unit tests for the netlist representation and the 64-lane evaluator.
#include <gtest/gtest.h>

#include "netlist/eval.hpp"
#include "netlist/netlist.hpp"

namespace sbst::netlist {
namespace {

TEST(Netlist, GateConstructionAndCounts) {
  Netlist nl("t");
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId x = nl.and_(a, b);
  nl.output("x", x);
  EXPECT_EQ(nl.size(), 3u);
  EXPECT_EQ(nl.logic_gate_count(), 1u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_TRUE(nl.is_combinational());
}

TEST(Netlist, RejectsUndefinedInput) {
  Netlist nl;
  EXPECT_THROW(nl.and_(0, 1), std::invalid_argument);  // nets not defined yet
}

TEST(Netlist, ConstantsAreShared) {
  Netlist nl;
  EXPECT_EQ(nl.constant(false), nl.constant(false));
  EXPECT_EQ(nl.constant(true), nl.constant(true));
  EXPECT_NE(nl.constant(false), nl.constant(true));
}

TEST(Netlist, TopoOrderIsTopological) {
  Netlist nl;
  const Bus a = nl.input_bus("a", 8);
  const NetId r = nl.and_reduce(a);
  nl.output("r", r);
  const auto& order = nl.topo_order();
  std::vector<std::size_t> pos(nl.size());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NetId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.gate(id);
    for (unsigned p = 0; p < fanin_count(g.kind); ++p) {
      EXPECT_LT(pos[g.in[p]], pos[id]);
    }
  }
}

TEST(Netlist, DffBreaksCycles) {
  // q feeds back through an inverter: classic toggle flip-flop. Must
  // levelize fine (the D edge is sequential).
  Netlist nl;
  const NetId q = nl.dff("q");
  nl.connect_dff(q, nl.not_(q));
  nl.output("q", q);
  EXPECT_NO_THROW(nl.topo_order());

  Evaluator ev(nl);
  ev.reset_state(false);
  ev.step();
  EXPECT_EQ(ev.value(q) & 1u, 0u);  // outputs old state during the cycle
  ev.step();
  EXPECT_EQ(ev.value(q) & 1u, 1u);
  ev.step();
  EXPECT_EQ(ev.value(q) & 1u, 0u);
}

TEST(Netlist, DepthOfReduceTreeIsLogarithmic) {
  Netlist nl;
  const Bus a = nl.input_bus("a", 32);
  nl.output("r", nl.and_reduce(a));
  EXPECT_EQ(nl.depth(), 5u);
}

TEST(Netlist, GateEquivalentsAreaAccounting) {
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  nl.output("n", nl.nand_(a, b));  // 1.0
  nl.output("x", nl.xor_(a, b));   // 2.5
  const NetId q = nl.dff("q");     // 6.0
  nl.connect_dff(q, a);
  EXPECT_DOUBLE_EQ(nl.gate_equivalents(), 9.5);
}

TEST(Netlist, PortLookup) {
  Netlist nl;
  nl.input_bus("data", 4);
  EXPECT_EQ(nl.input_port("data").size(), 4u);
  EXPECT_TRUE(nl.has_input_port("data"));
  EXPECT_FALSE(nl.has_input_port("nope"));
  EXPECT_THROW(nl.input_port("nope"), std::out_of_range);
}

class GateTruthTable : public ::testing::TestWithParam<GateKind> {};

TEST_P(GateTruthTable, MatchesBooleanSemantics) {
  const GateKind kind = GetParam();
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  NetId out = kNoNet;
  switch (kind) {
    case GateKind::kAnd: out = nl.and_(a, b); break;
    case GateKind::kOr: out = nl.or_(a, b); break;
    case GateKind::kNand: out = nl.nand_(a, b); break;
    case GateKind::kNor: out = nl.nor_(a, b); break;
    case GateKind::kXor: out = nl.xor_(a, b); break;
    case GateKind::kXnor: out = nl.xnor_(a, b); break;
    default: GTEST_SKIP();
  }
  nl.output("out", out);
  Evaluator ev(nl);
  for (unsigned va = 0; va < 2; ++va) {
    for (unsigned vb = 0; vb < 2; ++vb) {
      ev.set_input(a, va);
      ev.set_input(b, vb);
      ev.eval();
      bool expect = false;
      switch (kind) {
        case GateKind::kAnd: expect = va && vb; break;
        case GateKind::kOr: expect = va || vb; break;
        case GateKind::kNand: expect = !(va && vb); break;
        case GateKind::kNor: expect = !(va || vb); break;
        case GateKind::kXor: expect = va != vb; break;
        case GateKind::kXnor: expect = va == vb; break;
        default: break;
      }
      EXPECT_EQ(ev.value(out) & 1u, expect ? 1u : 0u)
          << kind_name(kind) << "(" << va << "," << vb << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTwoInputGates, GateTruthTable,
                         ::testing::Values(GateKind::kAnd, GateKind::kOr,
                                           GateKind::kNand, GateKind::kNor,
                                           GateKind::kXor, GateKind::kXnor),
                         [](const auto& info) {
                           return kind_name(info.param);
                         });

TEST(Evaluator, Mux2SelectsCorrectly) {
  Netlist nl;
  const NetId s = nl.input("s");
  const NetId d0 = nl.input("d0");
  const NetId d1 = nl.input("d1");
  nl.output("y", nl.mux2(s, d0, d1));
  Evaluator ev(nl);
  for (unsigned v = 0; v < 8; ++v) {
    ev.set_input(s, v & 1);
    ev.set_input(d0, (v >> 1) & 1);
    ev.set_input(d1, (v >> 2) & 1);
    ev.eval();
    const unsigned expect = (v & 1) ? ((v >> 2) & 1) : ((v >> 1) & 1);
    EXPECT_EQ(ev.value(nl.output_nets()[0]) & 1u, expect);
  }
}

TEST(Evaluator, LanesAreIndependent) {
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId x = nl.xor_(a, b);
  nl.output("x", x);
  Evaluator ev(nl);
  ev.set_input_word(a, 0b1100);
  ev.set_input_word(b, 0b1010);
  ev.eval();
  EXPECT_EQ(ev.value(x) & 0xf, 0b0110u);
}

TEST(Evaluator, BusHelpers) {
  Netlist nl;
  const Bus a = nl.input_bus("a", 16);
  nl.output_bus("a_pass", a);
  Evaluator ev(nl);
  ev.set_bus(a, 0xbeef);
  ev.eval();
  EXPECT_EQ(ev.bus_value(a), 0xbeefu);
}

TEST(Evaluator, OutputStuckFaultInjection) {
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId x = nl.and_(a, b);
  nl.output("x", x);
  Evaluator ev(nl);
  ev.set_input(a, true);
  ev.set_input(b, true);
  ev.inject({x, Site::kOutputPin}, false, 0b10);  // sa0 in lane 1 only
  ev.eval();
  EXPECT_EQ(ev.value(x) & 1u, 1u);         // lane 0 fault-free
  EXPECT_EQ((ev.value(x) >> 1) & 1u, 0u);  // lane 1 faulty
  EXPECT_EQ(ev.diff_mask(x), 0b10u);
}

TEST(Evaluator, PinFaultAffectsOnlyThatBranch) {
  // x = a AND b, y = a OR b. Fault a's branch into the AND gate only:
  // the OR gate must still see the true value of a.
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId x = nl.and_(a, b);
  const NetId y = nl.or_(a, b);
  nl.output("x", x);
  nl.output("y", y);
  Evaluator ev(nl);
  ev.set_input(a, true);
  ev.set_input(b, true);
  ev.inject({x, 0}, false, ~std::uint64_t{0});  // pin 0 of AND gate sa0
  ev.eval();
  EXPECT_EQ(ev.value(x) & 1u, 0u);
  EXPECT_EQ(ev.value(y) & 1u, 1u);
}

TEST(Evaluator, ClearFaultsRestoresGoodCircuit) {
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId x = nl.buf(a);
  nl.output("x", x);
  Evaluator ev(nl);
  ev.set_input(a, true);
  ev.inject({x, Site::kOutputPin}, false, ~std::uint64_t{0});
  ev.eval();
  EXPECT_EQ(ev.value(x) & 1u, 0u);
  ev.clear_faults();
  ev.eval();
  EXPECT_EQ(ev.value(x) & 1u, 1u);
}

TEST(Netlist, CombinationalCycleDetected) {
  Netlist nl;
  const NetId a = nl.input("a");
  // Construct a cycle by abusing connect_dff? Not possible through the
  // public API for plain gates, so validate the DFF path is the only legal
  // feedback: gate inputs must reference already-created nets.
  EXPECT_THROW(nl.and_(a, static_cast<NetId>(99)), std::invalid_argument);
}

}  // namespace
}  // namespace sbst::netlist
