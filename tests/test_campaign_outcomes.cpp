// Hardened campaign runtime: RunOutcome taxonomy, watchdog budgets derived
// from the good run, the software-MPU store guard, and fault-tolerant
// campaign execution (tests for core/inject.{hpp,cpp} hardening).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/evaluate.hpp"
#include "core/inject.hpp"
#include "core/program.hpp"
#include "core/session.hpp"
#include "fault/fault.hpp"
#include "netlist/netlist.hpp"
#include "sim/cpu.hpp"
#include "sim/exec.hpp"

namespace sbst::core {
namespace {

struct CampaignFixture {
  ProcessorModel model;
  TestProgramBuilder builder;
  TestProgram program;
  CampaignFixture() {
    builder.add_default_routines(model);
    program = builder.build();
  }
};

CampaignFixture& fixture() {
  static CampaignFixture f;
  return f;
}

std::vector<fault::Fault> first_faults(const ProcessorModel& model, CutId cut,
                                       std::size_t n) {
  fault::FaultUniverse u(model.component(cut).netlist);
  std::vector<fault::Fault> faults = u.collapsed();
  if (n != 0 && faults.size() > n) faults.resize(n);
  return faults;
}

// ---- budget derivation -----------------------------------------------------

TEST(RunBudget, ScalesGoodRunResources) {
  sim::ExecStats good;
  good.instructions = 100000;
  good.cpu_cycles = 150000;
  good.pipeline_stall_cycles = 20000;
  good.memory_stall_cycles = 10000;
  good.stores = 5000;
  const sim::RunBudget b = run_budget_for(good, 8.0);
  EXPECT_EQ(b.max_instructions, 800000u);
  EXPECT_EQ(b.max_cycles, 8 * good.total_cycles());
  EXPECT_EQ(b.max_stores, 40000u);
}

TEST(RunBudget, FloorsProtectShortPrograms) {
  sim::ExecStats tiny;
  tiny.instructions = 10;
  tiny.cpu_cycles = 12;
  tiny.stores = 1;
  InjectOptions options;
  const sim::RunBudget b = run_budget_for(tiny, 2.0, options);
  EXPECT_EQ(b.max_instructions, options.min_instructions);
  EXPECT_EQ(b.max_cycles, options.min_cycles);
  EXPECT_EQ(b.max_stores, options.min_stores);
}

TEST(RunBudget, NonPositiveFactorFallsBackToLegacyCap) {
  sim::ExecStats good;
  good.instructions = 123456;
  good.stores = 789;
  for (double factor : {0.0, -1.0}) {
    const sim::RunBudget b = run_budget_for(good, factor);
    EXPECT_EQ(b.max_instructions, std::uint64_t{1} << 24);
    EXPECT_EQ(b.max_cycles, 0u);  // 0 = uncapped
    EXPECT_EQ(b.max_stores, 0u);
  }
}

// ---- outcome taxonomy ------------------------------------------------------

TEST(OutcomeHistogram, CountsAndDetectionSplit) {
  OutcomeHistogram h;
  h.add(RunOutcome::kOkMatch);
  h.add(RunOutcome::kDetectedMismatch);
  h.add(RunOutcome::kDetectedMismatch);
  h.add(RunOutcome::kDetectedHang);
  h.add(RunOutcome::kDetectedTrap);
  h.add(RunOutcome::kDetectedWildStore);
  h.add(RunOutcome::kInfraError);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.count(RunOutcome::kDetectedMismatch), 2u);
  EXPECT_EQ(h.detected_by_signature(), 2u);
  EXPECT_EQ(h.detected_by_symptom(), 3u);
  EXPECT_EQ(h.detected(), 5u);

  OutcomeHistogram same = h;
  EXPECT_EQ(same, h);
  same.add(RunOutcome::kOkMatch);
  EXPECT_NE(same, h);
}

TEST(RunOutcomeNames, DistinctAndDetectionPredicateMatchesTaxonomy) {
  const RunOutcome all[] = {
      RunOutcome::kOkMatch,       RunOutcome::kDetectedMismatch,
      RunOutcome::kDetectedHang,  RunOutcome::kDetectedTrap,
      RunOutcome::kDetectedWildStore, RunOutcome::kInfraError};
  for (RunOutcome a : all) {
    ASSERT_NE(run_outcome_name(a), nullptr);
    for (RunOutcome b : all) {
      if (a != b) {
        EXPECT_STRNE(run_outcome_name(a), run_outcome_name(b));
      }
    }
  }
  EXPECT_FALSE(outcome_detected(RunOutcome::kOkMatch));
  EXPECT_FALSE(outcome_detected(RunOutcome::kInfraError));
  EXPECT_TRUE(outcome_detected(RunOutcome::kDetectedMismatch));
  EXPECT_TRUE(outcome_detected(RunOutcome::kDetectedHang));
  EXPECT_TRUE(outcome_detected(RunOutcome::kDetectedTrap));
  EXPECT_TRUE(outcome_detected(RunOutcome::kDetectedWildStore));
}

// ---- store guard -----------------------------------------------------------

TEST(StoreGuard, CoversExactlyTheImageSpan) {
  const TestProgram& p = fixture().program;
  const sim::StoreGuard guard = store_guard_for(p);
  ASSERT_EQ(guard.regions.size(), 1u);
  EXPECT_TRUE(guard.allows(p.image.base));
  EXPECT_TRUE(guard.allows(p.image.end_address() - 4));
  EXPECT_TRUE(guard.allows(p.signature_address(0)));
  EXPECT_TRUE(guard.allows(p.signature_address(7)));
  EXPECT_FALSE(guard.allows(p.image.end_address()));
  EXPECT_FALSE(guard.allows(p.image.end_address() + 0x1000));
}

TEST(StoreGuard, GoodMachineRunsToCompletionUnderBudgetAndGuard) {
  const TestProgram& p = fixture().program;
  sim::Cpu reference;
  reference.reset();
  reference.load(p.image);
  const sim::ExecStats good = reference.run(p.entry);
  ASSERT_TRUE(good.halted);

  // The fault-free machine must never trip the watchdog or the MPU it
  // defines for faulty runs — otherwise every campaign would misclassify.
  const sim::RunBudget budget = run_budget_for(good, kDefaultBudgetFactor);
  const sim::StoreGuard guard = store_guard_for(p);
  sim::Cpu guarded;
  guarded.reset();
  guarded.load(p.image);
  sim::NoSink sink;
  const sim::GuardedResult r = guarded.run_guarded(p.entry, sink, budget,
                                                   &guard);
  EXPECT_EQ(r.reason, sim::StopReason::kHalted);
  EXPECT_TRUE(r.stats.halted);
  EXPECT_EQ(r.stats.instructions, good.instructions);
}

// ---- classification of real faulty runs ------------------------------------

TEST(CampaignOutcomes, ShifterFaultsHangAndStayUnderLegacyCap) {
  CampaignFixture& f = fixture();
  GradingSession session(f.model, {.num_threads = 2});
  const std::vector<fault::Fault> faults =
      first_faults(f.model, CutId::kShifter, 6);
  const std::vector<InjectionOutcome> out =
      run_injection_campaign(session, f.program, CutId::kShifter, faults);
  ASSERT_EQ(out.size(), faults.size());

  std::size_t hangs = 0;
  for (const InjectionOutcome& o : out) {
    // The watchdog budget (8 x good run) must fire far below the legacy
    // global cap — that is the whole point of deriving it per run.
    EXPECT_LT(o.faulty_stats.instructions, std::uint64_t{1} << 24);
    if (o.outcome == RunOutcome::kDetectedHang) {
      ++hangs;
      EXPECT_TRUE(o.detected);
      EXPECT_TRUE(o.stop == sim::StopReason::kInstructionBudget ||
                  o.stop == sim::StopReason::kCycleBudget ||
                  o.stop == sim::StopReason::kStoreBudget)
          << stop_reason_name(o.stop);
    }
  }
  EXPECT_GE(hangs, 1u) << "no shifter fault classified as a hang";
  const OutcomeHistogram h = histogram_of(out);
  EXPECT_EQ(h.total(), out.size());
  EXPECT_EQ(h.count(RunOutcome::kDetectedHang), hangs);
}

// A crafted routine whose first faulty-visible value is a memory address:
// a stuck-at-1 on ALU result bit 31 corrupts the `la` constant, so the very
// next memory access goes to 0x8xxxxxxx instead of the signature area.
Routine crafted_address_routine(const char* name, const char* body) {
  Routine r;
  r.name = name;
  r.target = CutId::kAlu;
  r.strategy = TpgStrategy::kNone;
  r.style = "crafted";
  r.assembly = body;
  r.sig_slot = 0;
  return r;
}

fault::Fault alu_result_bit31_sa1(const ProcessorModel& model) {
  const netlist::Bus& result =
      model.component(CutId::kAlu).netlist.output_port("result");
  return fault::Fault{netlist::Site{result[31]}, true};
}

// Runs the crafted fault through session campaigns across the full
// determinism matrix and checks it classifies the same way every time.
void expect_outcome_across_matrix(const ProcessorModel& model,
                                  const TestProgram& p,
                                  const fault::Fault& fa,
                                  RunOutcome expected) {
  for (unsigned threads : {1u, 2u, 8u}) {
    for (bool cache : {true, false}) {
      GradingSession session(model, {.num_threads = threads, .cache = cache});
      const std::vector<InjectionOutcome> out =
          run_injection_campaign(session, p, CutId::kAlu, {fa});
      ASSERT_EQ(out.size(), 1u);
      EXPECT_EQ(out[0].outcome, expected)
          << "threads " << threads << " cache " << cache;
    }
  }
}

TEST(CampaignOutcomes, CraftedWildStoreIsCaughtByStoreGuard) {
  CampaignFixture& f = fixture();
  const TestProgram p = f.builder.build_standalone(crafted_address_routine(
      "wild", "la   $s6, signatures\n"
              "sw   $s2, 0($s6)\n"));
  const InjectionOutcome o = run_with_injection(
      f.model, p, CutId::kAlu, alu_result_bit31_sa1(f.model));
  EXPECT_EQ(o.outcome, RunOutcome::kDetectedWildStore);
  EXPECT_EQ(o.stop, sim::StopReason::kWildStore);
  EXPECT_TRUE(o.detected);

  // With the software MPU disabled, the same wild address leaves the
  // simulated memory entirely and surfaces as a trap instead — the legacy
  // pre-guard behaviour.
  InjectOptions no_guard;
  no_guard.store_guard = false;
  const InjectionOutcome legacy = run_with_injection(
      f.model, p, CutId::kAlu, alu_result_bit31_sa1(f.model), {}, no_guard);
  EXPECT_EQ(legacy.outcome, RunOutcome::kDetectedTrap);

  expect_outcome_across_matrix(f.model, p, alu_result_bit31_sa1(f.model),
                               RunOutcome::kDetectedWildStore);
}

TEST(CampaignOutcomes, CraftedWildLoadClassifiesAsTrap) {
  CampaignFixture& f = fixture();
  // Loads are not store-guarded; a corrupted load address beyond simulated
  // memory raises a bus error, which classifies as a trap.
  const TestProgram p = f.builder.build_standalone(crafted_address_routine(
      "trap", "la   $s6, signatures\n"
              "lw   $t0, 0($s6)\n"
              "sw   $t0, 0($s6)\n"));
  const InjectionOutcome o = run_with_injection(
      f.model, p, CutId::kAlu, alu_result_bit31_sa1(f.model));
  EXPECT_EQ(o.outcome, RunOutcome::kDetectedTrap);
  EXPECT_EQ(o.stop, sim::StopReason::kTrap);
  EXPECT_TRUE(o.detected);

  expect_outcome_across_matrix(f.model, p, alu_result_bit31_sa1(f.model),
                               RunOutcome::kDetectedTrap);
}

TEST(CampaignOutcomes, DeterministicAcrossThreadsAndCache) {
  CampaignFixture& f = fixture();
  const std::vector<fault::Fault> faults =
      first_faults(f.model, CutId::kAlu, 4);
  // Session-less serial campaign is the reference: same budgets, same
  // classification, bitwise-identical signatures.
  const std::vector<InjectionOutcome> reference =
      run_injection_campaign(f.model, f.program, CutId::kAlu, faults);
  ASSERT_EQ(reference.size(), faults.size());

  for (unsigned threads : {1u, 2u, 8u}) {
    for (bool cache : {true, false}) {
      GradingSession session(f.model,
                             {.num_threads = threads, .cache = cache});
      const std::vector<InjectionOutcome> out =
          run_injection_campaign(session, f.program, CutId::kAlu, faults);
      ASSERT_EQ(out.size(), reference.size());
      for (std::size_t k = 0; k < out.size(); ++k) {
        EXPECT_EQ(out[k].outcome, reference[k].outcome)
            << "threads " << threads << " cache " << cache << " fault " << k;
        EXPECT_EQ(out[k].detected, reference[k].detected);
        EXPECT_EQ(out[k].stop, reference[k].stop);
        EXPECT_EQ(out[k].faulty_stats.instructions,
                  reference[k].faulty_stats.instructions);
        EXPECT_EQ(out[k].good_signatures, reference[k].good_signatures);
        EXPECT_EQ(out[k].faulty_signatures, reference[k].faulty_signatures);
      }
      EXPECT_EQ(histogram_of(out), histogram_of(reference));
    }
  }
}

// ---- infra-error containment ------------------------------------------------

TEST(CampaignOutcomes, InvalidSiteIsInfraErrorOnlyForThatFault) {
  CampaignFixture& f = fixture();
  GradingSession session(f.model, {.num_threads = 2});
  std::vector<fault::Fault> faults =
      first_faults(f.model, CutId::kMultiplier, 4);
  fault::Fault bogus;
  bogus.site.gate = 0x40000000u;  // far outside the netlist
  bogus.stuck_value = true;
  faults.insert(faults.begin() + 2, bogus);

  const std::vector<InjectionOutcome> out =
      run_injection_campaign(session, f.program, CutId::kMultiplier, faults);
  ASSERT_EQ(out.size(), faults.size());
  for (std::size_t k = 0; k < out.size(); ++k) {
    if (k == 2) {
      EXPECT_EQ(out[k].outcome, RunOutcome::kInfraError);
      EXPECT_FALSE(out[k].detected);
      EXPECT_TRUE(out[k].faulty_signatures.empty());
    } else {
      EXPECT_NE(out[k].outcome, RunOutcome::kInfraError)
          << "fault " << k << " caught the bogus fault's infra error";
    }
  }
  const OutcomeHistogram h = histogram_of(out);
  EXPECT_EQ(h.count(RunOutcome::kInfraError), 1u);
  EXPECT_EQ(h.total(), faults.size());

  // The pool survives the throwing task: the same session runs the same
  // campaign again with identical classification.
  const std::vector<InjectionOutcome> again =
      run_injection_campaign(session, f.program, CutId::kMultiplier, faults);
  ASSERT_EQ(again.size(), out.size());
  for (std::size_t k = 0; k < out.size(); ++k) {
    EXPECT_EQ(again[k].outcome, out[k].outcome);
    EXPECT_EQ(again[k].faulty_signatures, out[k].faulty_signatures);
  }

  // The session-less serial form degrades the same fault the same way.
  const std::vector<InjectionOutcome> serial =
      run_injection_campaign(f.model, f.program, CutId::kMultiplier, faults);
  ASSERT_EQ(serial.size(), out.size());
  for (std::size_t k = 0; k < out.size(); ++k) {
    EXPECT_EQ(serial[k].outcome, out[k].outcome);
  }
}

TEST(CampaignOutcomes, InvalidSiteThrowsFromSingleInjection) {
  // The single-run form has no campaign wrapper to degrade into
  // kInfraError, so the validation seam surfaces as an exception.
  CampaignFixture& f = fixture();
  fault::Fault bogus;
  bogus.site.gate = 0x40000000u;
  EXPECT_THROW(run_with_injection(f.model, f.program, CutId::kAlu, bogus),
               std::out_of_range);
}

// ---- evaluation surface ----------------------------------------------------

TEST(CampaignOutcomes, EvaluateClassifiesSampledFaultsPerCut) {
  CampaignFixture& f = fixture();
  GradingSession session(f.model, {.num_threads = 2});
  EvalOptions options;
  options.regfile_cycle_cap = 32;
  options.pipeline_cycle_cap = 256;
  options.classify_outcomes = true;
  options.outcome_sample = 3;
  const ProgramEvaluation ev =
      evaluate_program(session, f.builder, f.program, options);

  OutcomeHistogram sum;
  for (CutId cut : {CutId::kAlu, CutId::kShifter, CutId::kMultiplier}) {
    const OutcomeHistogram& h = ev.cut(cut).outcomes;
    EXPECT_EQ(h.total(), options.outcome_sample);
    EXPECT_GE(h.detected(), 1u);
    for (std::size_t i = 0; i < kRunOutcomeCount; ++i) {
      sum.counts[i] += h.counts[i];
    }
  }
  EXPECT_EQ(ev.outcome_totals(), sum);
  // Non-injectable components carry no sampled campaign.
  EXPECT_EQ(ev.cut(CutId::kDivider).outcomes.total(), 0u);

  // Off by default: the histograms stay all-zero.
  EvalOptions off = options;
  off.classify_outcomes = false;
  const ProgramEvaluation plain =
      evaluate_program(session, f.builder, f.program, off);
  EXPECT_EQ(plain.outcome_totals().total(), 0u);
}

}  // namespace
}  // namespace sbst::core
