// Multi-word SIMD lane blocks (CompiledEvaluatorT<4>, netlist/compiled.hpp).
//
// At W=4 every net carries a 4-word block of 256 lanes; a grading pass packs
// the good machine in lane 0 and up to 255 faulty machines in the rest. The
// oracle for per-word semantics is the W=1 reference Evaluator driven with
// each word separately; the oracle for detection flags is the serial
// reference grading. Both must match bitwise for every lane width, thread
// count, and session-cache setting.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/component.hpp"
#include "core/session.hpp"
#include "fault/fault.hpp"
#include "fault/pattern.hpp"
#include "fault/sim.hpp"
#include "fault/sim_parallel.hpp"
#include "netlist/compiled.hpp"
#include "netlist/eval.hpp"
#include "rtlgen/alu.hpp"
#include "rtlgen/divider.hpp"

namespace sbst::netlist {
namespace {

using fault::CoverageResult;
using fault::Engine;
using fault::Fault;
using fault::FaultUniverse;
using fault::PatternSet;
using fault::PortValue;
using fault::SeqStimulus;
using fault::SimOptions;

using Block4 = CompiledEvaluatorT<4>;

Netlist random_comb_netlist(Rng& rng, unsigned n_inputs, unsigned n_gates) {
  Netlist nl("random_comb");
  std::vector<NetId> nets;
  for (unsigned i = 0; i < n_inputs; ++i) {
    nets.push_back(nl.input("i" + std::to_string(i)));
  }
  auto pick = [&] { return nets[rng.below(nets.size())]; };
  for (unsigned g = 0; g < n_gates; ++g) {
    NetId n;
    switch (rng.below(9)) {
      case 0: n = nl.buf(pick()); break;
      case 1: n = nl.not_(pick()); break;
      case 2: n = nl.and_(pick(), pick()); break;
      case 3: n = nl.or_(pick(), pick()); break;
      case 4: n = nl.nand_(pick(), pick()); break;
      case 5: n = nl.nor_(pick(), pick()); break;
      case 6: n = nl.xor_(pick(), pick()); break;
      case 7: n = nl.xnor_(pick(), pick()); break;
      default: n = nl.mux2(pick(), pick(), pick()); break;
    }
    nets.push_back(n);
  }
  unsigned n_outputs = 0;
  for (std::size_t i = n_inputs; i < nets.size(); ++i) {
    if (i + 3 >= nets.size() || rng.chance(0.1)) {
      nl.output("o" + std::to_string(n_outputs++), nets[i]);
    }
  }
  return nl;
}

Netlist random_seq_netlist(Rng& rng, unsigned n_inputs, unsigned n_dffs,
                           unsigned n_gates) {
  Netlist nl("random_seq");
  std::vector<NetId> nets;
  for (unsigned i = 0; i < n_inputs; ++i) {
    nets.push_back(nl.input("i" + std::to_string(i)));
  }
  std::vector<NetId> qs;
  for (unsigned i = 0; i < n_dffs; ++i) {
    const NetId q = nl.dff("q" + std::to_string(i));
    qs.push_back(q);
    nets.push_back(q);
  }
  auto pick = [&] { return nets[rng.below(nets.size())]; };
  for (unsigned g = 0; g < n_gates; ++g) {
    NetId n;
    switch (rng.below(7)) {
      case 0: n = nl.not_(pick()); break;
      case 1: n = nl.and_(pick(), pick()); break;
      case 2: n = nl.or_(pick(), pick()); break;
      case 3: n = nl.nand_(pick(), pick()); break;
      case 4: n = nl.xor_(pick(), pick()); break;
      case 5: n = nl.nor_(pick(), pick()); break;
      default: n = nl.mux2(pick(), pick(), pick()); break;
    }
    nets.push_back(n);
  }
  for (NetId q : qs) nl.connect_dff(q, pick());
  unsigned n_outputs = 0;
  for (std::size_t i = n_inputs + n_dffs; i < nets.size(); ++i) {
    if (i + 3 >= nets.size() || rng.chance(0.15)) {
      nl.output("o" + std::to_string(n_outputs++), nets[i]);
    }
  }
  return nl;
}

/// Every word of the W=4 evaluator must equal a reference Evaluator driven
/// with that word's inputs, on every net.
void expect_words_match(const std::vector<Evaluator*>& oracles,
                        const Block4& ev, const char* label) {
  const Netlist& nl = oracles[0]->netlist();
  for (unsigned w = 0; w < Block4::kWords; ++w) {
    for (NetId id = 0; id < nl.size(); ++id) {
      ASSERT_EQ(oracles[w]->value(id), ev.value_word(id, w))
          << label << ": word " << w << " net " << id;
    }
  }
}

TEST(SimdLanes, BlockEvalMatchesReferencePerWord) {
  for (std::uint64_t seed : {41u, 42u, 43u}) {
    Rng rng(seed);
    const Netlist nl = random_comb_netlist(rng, 6, 60 + rng.below(60));
    SCOPED_TRACE("seed " + std::to_string(seed));
    Evaluator o0(nl), o1(nl), o2(nl), o3(nl);
    const std::vector<Evaluator*> oracles{&o0, &o1, &o2, &o3};
    const CompiledNetlist cn(nl);
    Block4 full(cn, /*event_driven=*/false);
    Block4 event(cn, /*event_driven=*/true);

    for (int iter = 0; iter < 25; ++iter) {
      for (NetId in : nl.inputs()) {
        std::uint64_t words[4];
        for (unsigned w = 0; w < 4; ++w) {
          words[w] = rng.next64();
          oracles[w]->set_input_word(in, words[w]);
        }
        full.set_input_block(in, words);
        event.set_input_block(in, words);
      }
      for (Evaluator* o : oracles) o->eval();
      full.eval();
      event.eval();
      expect_words_match(oracles, full, "full");
      expect_words_match(oracles, event, "event");
    }
  }
}

TEST(SimdLanes, InjectLaneTargetsExactlyOneLane) {
  // A buf so the fault has one downstream reader.
  Netlist nl("one_lane");
  const NetId a = nl.input("a");
  const NetId y = nl.buf(a);
  nl.output("y", y);

  for (unsigned lane : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 254u, 255u}) {
    Block4 ev(nl, /*event_driven=*/true);
    const std::uint64_t zeros[4] = {0, 0, 0, 0};
    ev.set_input_block(a, zeros);
    ev.eval();
    ev.inject_lane({a, Site::kOutputPin}, /*stuck_value=*/true, lane);
    ev.eval();
    for (unsigned w = 0; w < 4; ++w) {
      const std::uint64_t expect =
          (lane / 64 == w) ? (std::uint64_t{1} << (lane % 64)) : 0;
      EXPECT_EQ(ev.value_word(y, w), expect) << "lane " << lane << " word "
                                             << w;
      // diff vs lane 0 shows the same single bit — except when the fault was
      // injected INTO lane 0: then the "reference" lane itself is faulty and
      // every other lane diffs against it (graders only inject lanes >= 1,
      // preserving the good-machine-in-lane-0 invariant).
      const std::uint64_t diff_expect =
          (lane == 0) ? (expect ^ ~std::uint64_t{0}) : expect;
      EXPECT_EQ(ev.diff_word(y, w, 0), diff_expect) << "lane " << lane;
    }
    ev.clear_faults();
    ev.eval();
    for (unsigned w = 0; w < 4; ++w) EXPECT_EQ(ev.value_word(y, w), 0u);
  }
}

TEST(SimdLanes, DiffWordBroadcastsTheReferenceLane) {
  Netlist nl("diff_ref");
  const NetId a = nl.input("a");
  nl.output("y", nl.not_(a));

  Block4 ev(nl, /*event_driven=*/false);
  const std::uint64_t words[4] = {0x1ULL, 0x0ULL, ~std::uint64_t{0}, 0xF0ULL};
  ev.set_input_block(a, words);
  ev.eval();
  const NetId y = nl.output_port("y")[0];
  // Reference lane 0 holds y = ~1 -> bit0 == 0: diff = value ^ 0...0.
  for (unsigned w = 0; w < 4; ++w) {
    EXPECT_EQ(ev.diff_word(y, w, 0), ev.value_word(y, w));
  }
  // Reference lane 1 holds y-bit 1: diff = value ^ all-ones.
  for (unsigned w = 0; w < 4; ++w) {
    EXPECT_EQ(ev.diff_word(y, w, 1), ~ev.value_word(y, w));
  }
}

TEST(SimdLanes, SeqStepMatchesReferencePerWord) {
  Rng rng(46);
  const Netlist nl = random_seq_netlist(rng, 5, 5, 50);
  Evaluator o0(nl), o1(nl), o2(nl), o3(nl);
  const std::vector<Evaluator*> oracles{&o0, &o1, &o2, &o3};
  Block4 event(nl, /*event_driven=*/true);

  for (bool init : {false, true}) {
    for (Evaluator* o : oracles) o->reset_state(init);
    event.reset_state(init);
    for (int cycle = 0; cycle < 25; ++cycle) {
      for (NetId in : nl.inputs()) {
        std::uint64_t words[4];
        for (unsigned w = 0; w < 4; ++w) {
          words[w] = rng.next64();
          oracles[w]->set_input_word(in, words[w]);
        }
        event.set_input_block(in, words);
      }
      for (Evaluator* o : oracles) o->step();
      event.step();
      expect_words_match(oracles, event, "seq");
    }
  }
}

TEST(SimdLanes, FaultInjectionMatchesReferencePerWordWithOpt) {
  // Single collapsed faults on the W=4 evaluator with the optimization
  // passes on: every word still matches a per-word reference oracle on the
  // output nets.
  Rng rng(47);
  const Netlist nl = random_comb_netlist(rng, 6, 90);
  const FaultUniverse u(nl);
  const std::vector<Fault>& faults = u.collapsed();
  ASSERT_FALSE(faults.empty());

  Evaluator o0(nl), o1(nl), o2(nl), o3(nl);
  const std::vector<Evaluator*> oracles{&o0, &o1, &o2, &o3};
  const CompiledNetlist cn(nl, CompileOptions::all());
  Block4 event(cn, /*event_driven=*/true);

  for (int iter = 0; iter < 60; ++iter) {
    for (NetId in : nl.inputs()) {
      std::uint64_t words[4];
      for (unsigned w = 0; w < 4; ++w) {
        words[w] = rng.next64();
        oracles[w]->set_input_word(in, words[w]);
      }
      event.set_input_block(in, words);
    }
    const Fault& f = faults[rng.below(faults.size())];
    // The same whole-word mask in every word keeps the per-word oracle
    // simple (each word sees a broadcast inject with that mask).
    const std::uint64_t mask = rng.next64() | 1u;
    for (Evaluator* o : oracles) o->inject(f.site, f.stuck_value, mask);
    const std::uint64_t block_mask[4] = {mask, mask, mask, mask};
    event.inject_block(f.site, f.stuck_value, block_mask);
    for (Evaluator* o : oracles) o->eval();
    event.eval();
    for (unsigned w = 0; w < 4; ++w) {
      for (NetId out : nl.output_nets()) {
        ASSERT_EQ(oracles[w]->value(out), event.value_word(out, w))
            << "word " << w << " out " << out;
      }
    }
    for (Evaluator* o : oracles) o->clear_faults();
    event.clear_faults();
  }
}

// ---- grading equivalence across the full configuration matrix --------------

TEST(SimdLanes, GradingFlagsIdenticalAcrossLaneWidthsAndThreads) {
  Rng rng(48);
  const Netlist nl = random_comb_netlist(rng, 8, 160);
  const FaultUniverse u(nl);
  PatternSet ps(nl);
  for (int i = 0; i < 130; ++i) ps.add_random(rng);

  const CoverageResult oracle =
      fault::simulate_serial(nl, u.collapsed(), ps, {}, Engine::kReference);
  for (unsigned lanes : {1u, 4u}) {
    for (unsigned threads : {1u, 2u, 8u}) {
      for (int netlist_opt : {0, 1}) {
        for (bool lane_parallel : {false, true}) {
          SimOptions opt;
          opt.num_threads = threads;
          opt.lane_parallel = lane_parallel;
          opt.engine = Engine::kEvent;
          opt.lanes = lanes;
          opt.netlist_opt = netlist_opt;
          const CoverageResult got =
              fault::simulate_comb_parallel(nl, u.collapsed(), ps, {}, opt);
          EXPECT_EQ(oracle.detected_flags, got.detected_flags)
              << "lanes " << lanes << " threads " << threads << " opt "
              << netlist_opt << (lane_parallel ? " lane" : " block");
        }
      }
    }
  }
}

TEST(SimdLanes, SeqGradingFlagsIdenticalAcrossLaneWidths) {
  Rng rng(49);
  const Netlist nl = random_seq_netlist(rng, 5, 5, 60);
  const FaultUniverse u(nl);
  SeqStimulus st(nl);
  for (int c = 0; c < 35; ++c) {
    std::vector<PortValue> values;
    for (const Port& p : nl.input_ports()) {
      values.emplace_back(p.name, rng.next64());
    }
    st.add_cycle(values, rng.chance(0.7));
  }
  const CoverageResult oracle =
      fault::simulate_seq(nl, u.collapsed(), st, {}, Engine::kReference);
  for (unsigned lanes : {1u, 4u}) {
    for (unsigned threads : {1u, 2u}) {
      SimOptions opt;
      opt.num_threads = threads;
      opt.engine = Engine::kEvent;
      opt.lanes = lanes;
      opt.netlist_opt = 1;
      const CoverageResult got =
          fault::simulate_seq_parallel(nl, u.collapsed(), st, {}, opt);
      EXPECT_EQ(oracle.detected_flags, got.detected_flags)
          << "lanes " << lanes << " threads " << threads;
    }
  }
}

TEST(SimdLanes, SessionGradingIdenticalAcrossLanesThreadsAndCache) {
  // The acceptance matrix: lanes {1,4} x threads {1,2,8} x session cache
  // {on,off}, graded through GradingSession's keyed compiled-netlist cache.
  core::ProcessorModel model;
  const core::CutId id = core::CutId::kAlu;
  const netlist::Netlist& nl = model.component(id).netlist;

  Rng rng(50);
  PatternSet ps(nl);
  for (int i = 0; i < 48; ++i) ps.add_random(rng);

  std::vector<std::uint8_t> oracle_flags;
  for (bool cache : {true, false}) {
    core::GradingSession session(model, {.num_threads = 2, .cache = cache});
    const FaultUniverse& u = session.universe(id);
    const fault::ObserveSet& obs =
        session.observe(id, core::ObserveMode::kFullNetlist);
    if (oracle_flags.empty()) {
      oracle_flags = fault::simulate_comb(nl, u.collapsed(), ps, obs,
                                          Engine::kReference)
                         .detected_flags;
    }
    for (unsigned lanes : {1u, 4u}) {
      for (unsigned threads : {1u, 2u, 8u}) {
        SimOptions opt;
        opt.num_threads = threads;
        opt.engine = Engine::kEvent;
        opt.lanes = lanes;
        opt.netlist_opt = 1;
        opt.compiled = &session.compiled(id, CompileOptions::all());
        const CoverageResult got = fault::simulate_comb_parallel(
            nl, u.collapsed(), ps, obs, opt);
        EXPECT_EQ(oracle_flags, got.detected_flags)
            << "cache " << cache << " lanes " << lanes << " threads "
            << threads;
      }
    }
    // The session cache must key compiled netlists by CompileOptions: a
    // plain request after the optimized one returns a distinct build, not
    // an alias.
    const CompiledNetlist& opt_cn =
        session.compiled(id, CompileOptions::all());
    const CompiledNetlist& plain_cn = session.compiled(id, CompileOptions{});
    EXPECT_NE(&opt_cn, &plain_cn);
    EXPECT_GE(plain_cn.live_gates(), opt_cn.live_gates());
  }
}

TEST(SimdLanes, EngineContextResolvesLaneWidth) {
  Rng rng(51);
  const Netlist nl = random_comb_netlist(rng, 4, 30);
  const std::vector<NetId> outs = nl.output_nets();
  // Reference engine always grades at width 1 regardless of the request.
  const fault::EngineContext ref(Engine::kReference, nl, outs, nullptr,
                                 nullptr, 4);
  EXPECT_EQ(ref.lanes(), 1u);
  const fault::EngineContext ev4(Engine::kEvent, nl, outs, nullptr, nullptr,
                                 4);
  EXPECT_EQ(ev4.lanes(), 4u);
  const fault::EngineContext ev1(Engine::kEvent, nl, outs, nullptr, nullptr,
                                 1);
  EXPECT_EQ(ev1.lanes(), 1u);
}

TEST(SimdLanes, ParseLanesAcceptsOnlySupportedWidths) {
  unsigned lanes = 0;
  EXPECT_TRUE(fault::parse_lanes("1", lanes));
  EXPECT_EQ(lanes, 1u);
  EXPECT_TRUE(fault::parse_lanes("4", lanes));
  EXPECT_EQ(lanes, 4u);
  EXPECT_FALSE(fault::parse_lanes("2", lanes));
  EXPECT_FALSE(fault::parse_lanes("0", lanes));
  EXPECT_FALSE(fault::parse_lanes("banana", lanes));
  EXPECT_EQ(lanes, 4u);  // untouched on failure
}

}  // namespace
}  // namespace sbst::netlist
