// Encoder/decoder round trips, assembler semantics, disassembler output.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/disasm.hpp"
#include "isa/encoding.hpp"

namespace sbst::isa {
namespace {

TEST(Encoding, DecodeInvertsEncode) {
  const std::uint32_t words[] = {
      addu(kS2, kS0, kS1), lw(kS0, 4, kS3),      sw(kS2, -8, kSp),
      beq(kS4, kT0, -3),   lui(kS0, 0xaaaa),     ori(kS0, kS0, 0x5555),
      sll(kT1, kT2, 31),   jal(0x00100),         mult(kS0, kS1),
      divu(kA0, kA1),      mfhi(kV0),            jr(kRa),
      brk(),               nor_(kT3, kT4, kT5),  sltiu(kT0, kT1, 0x7fff),
  };
  for (std::uint32_t w : words) {
    EXPECT_EQ(encode(decode(w)), w) << disassemble(w);
  }
}

TEST(Encoding, FieldPlacement) {
  // addu $s2, $s0, $s1: opcode 0, rs=16, rt=17, rd=18, funct 0x21.
  const std::uint32_t w = addu(kS2, kS0, kS1);
  EXPECT_EQ(w, 0x02119021u);
  // lw $s0, 4($s3): opcode 0x23, base/rs=19, rt=16, imm 4.
  EXPECT_EQ(lw(kS0, 4, kS3), 0x8e700004u);
  // lui $s0, 0xaaaa.
  EXPECT_EQ(lui(kS0, 0xaaaa), 0x3c10aaaau);
  EXPECT_EQ(nop(), 0u);
}

TEST(Encoding, RegisterNames) {
  EXPECT_EQ(parse_register("$zero"), std::optional<std::uint8_t>{0});
  EXPECT_EQ(parse_register("$s0"), std::optional<std::uint8_t>{16});
  EXPECT_EQ(parse_register("$t9"), std::optional<std::uint8_t>{25});
  EXPECT_EQ(parse_register("$31"), std::optional<std::uint8_t>{31});
  EXPECT_EQ(parse_register("$ra"), std::optional<std::uint8_t>{31});
  EXPECT_FALSE(parse_register("$32").has_value());
  EXPECT_FALSE(parse_register("s0").has_value());
  EXPECT_EQ(register_name(29), "$sp");
}

TEST(Assembler, BasicProgram) {
  const Program p = assemble(R"(
    # test program
    li $s0, 0xaaaaaaaa   ; full 32-bit -> lui+ori
    li $s1, 0x55         # fits in 16 -> ori
    add $s2, $s0, $s1
    break
  )");
  ASSERT_EQ(p.size_words(), 5u);
  EXPECT_EQ(p.words[0], lui(kS0, 0xaaaa));
  EXPECT_EQ(p.words[1], ori(kS0, kS0, 0xaaaa));
  EXPECT_EQ(p.words[2], ori(kS1, kZero, 0x55));
  EXPECT_EQ(p.words[3], add(kS2, kS0, kS1));
  EXPECT_EQ(p.words[4], brk());
}

TEST(Assembler, LiSelectsShortestForm) {
  EXPECT_EQ(assemble("li $t0, 0xffff").size_words(), 1u);       // ori
  EXPECT_EQ(assemble("li $t0, -4").size_words(), 1u);           // addiu
  EXPECT_EQ(assemble("li $t0, 0x10000").size_words(), 1u);      // lui
  EXPECT_EQ(assemble("li $t0, 0x12345678").size_words(), 2u);   // lui+ori
  const Program p = assemble("li $t0, -4");
  EXPECT_EQ(p.words[0], addiu(kT0, kZero, -4));
}

TEST(Assembler, LabelsAndBranches) {
  const Program p = assemble(R"(
    add $t0, $zero, $zero
  loop:
    addiu $t0, $t0, 1
    bne $s4, $t0, loop
    nop
  )");
  ASSERT_EQ(p.size_words(), 4u);
  EXPECT_EQ(p.symbol("loop"), 4u);
  // bne at address 8, target 4: offset = (4 - 12)/4 = -2.
  EXPECT_EQ(p.words[2], bne(kS4, kT0, -2));
}

TEST(Assembler, ForwardReferences) {
  const Program p = assemble(R"(
    beq $zero, $zero, end
    nop
    addiu $t0, $t0, 1
  end:
    break
  )");
  EXPECT_EQ(p.symbol("end"), 12u);
  EXPECT_EQ(p.words[0], beq(kZero, kZero, 2));
}

TEST(Assembler, MemoryOperands) {
  const Program p = assemble(R"(
    lw $s0, 0($s3)
    lw $s1, 4($s3)
    sw $s2, -12($sp)
    lbu $t0, ($t1)
  )");
  EXPECT_EQ(p.words[0], lw(kS0, 0, kS3));
  EXPECT_EQ(p.words[1], lw(kS1, 4, kS3));
  EXPECT_EQ(p.words[2], sw(kS2, -12, kSp));
  EXPECT_EQ(p.words[3], lbu(kT0, 0, kT1));
}

TEST(Assembler, DataDirectivesAndSymbols) {
  const Program p = assemble(R"(
    la $s3, patterns
    lw $s0, 0($s3)
    break
  patterns:
    .word 0x01234567, 0x89abcdef
    .word 42
  )");
  EXPECT_EQ(p.symbol("patterns"), 16u);  // la is 2 words + lw + break
  EXPECT_EQ(p.words[4], 0x01234567u);
  EXPECT_EQ(p.words[5], 0x89abcdefu);
  EXPECT_EQ(p.words[6], 42u);
}

TEST(Assembler, SymbolExpressions) {
  const Program p = assemble(R"(
    lw $s0, 0($s3)
  sig:
    .word 0, 0
    li $t0, sig+4
  )");
  EXPECT_EQ(p.symbol("sig"), 4u);
  // Symbolic li always assembles as lui+ori (size must be known in pass 1).
  EXPECT_EQ(p.words[3], lui(kT0, 0));
  EXPECT_EQ(p.words[4], ori(kT0, kT0, 8));
}

TEST(Assembler, OrgPadsWithZeros) {
  const Program p = assemble(R"(
    nop
    .org 0x10
  data:
    .word 7
  )");
  EXPECT_EQ(p.symbol("data"), 0x10u);
  ASSERT_EQ(p.size_words(), 5u);
  EXPECT_EQ(p.words[4], 7u);
}

TEST(Assembler, BaseAddressAffectsSymbolsAndBranches) {
  const Program p = assemble(R"(
  start:
    bne $t0, $t1, start
    nop
  )",
                             0x1000);
  EXPECT_EQ(p.base, 0x1000u);
  EXPECT_EQ(p.symbol("start"), 0x1000u);
  EXPECT_EQ(p.words[0], bne(kT0, kT1, -1));
}

TEST(Assembler, PseudoInstructions) {
  const Program p = assemble(R"(
    move $t0, $s5
    b skip
    nop
  skip:
    break
  )");
  EXPECT_EQ(p.words[0], addu(kT0, kS5, kZero));
  EXPECT_EQ(p.words[1], beq(kZero, kZero, 1));
}

TEST(Assembler, Errors) {
  EXPECT_THROW(assemble("frobnicate $t0"), AsmError);
  EXPECT_THROW(assemble("add $t0, $t1"), AsmError);
  EXPECT_THROW(assemble("add $t0, $t1, $qq"), AsmError);
  EXPECT_THROW(assemble("bne $t0, $t1, nowhere"), AsmError);
  EXPECT_THROW(assemble("addi $t0, $t1, 0x12345"), AsmError);
  EXPECT_THROW(assemble("x: nop\nx: nop"), AsmError);
  EXPECT_THROW(assemble("lw $t0, 0x8000($t1)"), AsmError);
  try {
    assemble("nop\nbogus");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Assembler, JumpAbsoluteAndSymbol) {
  const Program p = assemble(R"(
    j entry
    nop
  entry:
    jal 0x40
    nop
  )");
  EXPECT_EQ(p.words[0], j(8 >> 2));
  EXPECT_EQ(p.words[2], jal(0x40 >> 2));
}


TEST(Assembler, HiLoOperators) {
  const Program p = assemble(R"(
    lui $s6, %hi(sig)
    ori $s6, $s6, %lo(sig)
    lui $t0, %hi(0x12345678)
    ori $t0, $t0, %lo(0x12345678)
    .org 0x12340
  sig:
    .word 0
  )");
  EXPECT_EQ(p.words[0], lui(kS6, 0x1));      // %hi(0x12340) = 1
  EXPECT_EQ(p.words[1], ori(kS6, kS6, 0x2340));
  EXPECT_EQ(p.words[2], lui(kT0, 0x1234));
  EXPECT_EQ(p.words[3], ori(kT0, kT0, 0x5678));
}

TEST(Assembler, HiLoRejectsUnknownOperator) {
  EXPECT_THROW(assemble("lui $t0, %md(12)"), AsmError);
}

TEST(Disasm, RendersCanonicalForms) {
  EXPECT_EQ(disassemble(addu(kS2, kS0, kS1)), "addu $s2, $s0, $s1");
  EXPECT_EQ(disassemble(lw(kS0, 4, kS3)), "lw $s0, 4($s3)");
  EXPECT_EQ(disassemble(sw(kS2, -8, kSp)), "sw $s2, -8($sp)");
  EXPECT_EQ(disassemble(lui(kS0, 0xaaaa)), "lui $s0, 0xaaaa");
  EXPECT_EQ(disassemble(nop()), "nop");
  EXPECT_EQ(disassemble(brk()), "break");
  // Branch target resolved relative to pc.
  EXPECT_EQ(disassemble(bne(kS4, kT0, -2), 8), "bne $s4, $t0, 0x4");
}

TEST(Disasm, ListingHasOneLinePerWord) {
  const Program p = assemble("nop\nbreak\n");
  const std::string text = listing(p.words, 0);
  EXPECT_NE(text.find("0x0000: 00000000  nop"), std::string::npos);
  EXPECT_NE(text.find("break"), std::string::npos);
}

TEST(Assembler, RoundTripThroughDisassembler) {
  // Assemble, disassemble, re-assemble: identical words (for label-free,
  // canonical forms).
  const char* source = R"(
    lui $s0, 0xaaaa
    ori $s0, $s0, 0xaaaa
    addu $s2, $s0, $s1
    xor $s2, $s2, $s0
    sltu $t0, $s0, $s1
    sra $t1, $s0, 7
    lw $t2, 12($s3)
    sb $t3, -1($s4)
    mult $s0, $s1
    mflo $t4
    break
  )";
  const Program p1 = assemble(source);
  std::string redis;
  for (std::size_t i = 0; i < p1.words.size(); ++i) {
    redis += disassemble(p1.words[i], static_cast<std::uint32_t>(i * 4));
    redis += '\n';
  }
  const Program p2 = assemble(redis);
  EXPECT_EQ(p1.words, p2.words);
}

}  // namespace
}  // namespace sbst::isa
