// Differential tests for the compiled levelized evaluator (CompiledNetlist /
// CompiledEvaluator, netlist/compiled.hpp) against the reference Evaluator,
// and for the engine-selection layer routing the fault simulators through it.
//
// Strategy: the reference Evaluator is the oracle; every test drives both
// evaluators through identical call sequences and demands bitwise-identical
// words on every net, for both the full-sweep (event_driven=false) and the
// event-driven compiled modes.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "fault/pattern.hpp"
#include "fault/sim.hpp"
#include "fault/sim_parallel.hpp"
#include "netlist/compiled.hpp"
#include "netlist/eval.hpp"
#include "rtlgen/alu.hpp"
#include "rtlgen/comparator.hpp"
#include "rtlgen/control.hpp"
#include "rtlgen/divider.hpp"
#include "rtlgen/memctrl.hpp"
#include "rtlgen/multiplier.hpp"
#include "rtlgen/pipeline.hpp"
#include "rtlgen/regfile.hpp"
#include "rtlgen/shifter.hpp"

namespace sbst::netlist {
namespace {

using fault::CoverageResult;
using fault::Engine;
using fault::Fault;
using fault::FaultUniverse;
using fault::PatternSet;
using fault::PortValue;
using fault::SeqStimulus;
using fault::SimOptions;

// ---- helpers ---------------------------------------------------------------

/// Compares every net's 64-lane word between the oracle and a compiled
/// evaluator (values_ is the complete observable state after eval()).
void expect_all_nets_equal(const Evaluator& oracle, const CompiledEvaluator& ev,
                           const char* label) {
  const Netlist& nl = oracle.netlist();
  for (NetId id = 0; id < nl.size(); ++id) {
    ASSERT_EQ(oracle.value(id), ev.value(id))
        << label << ": net " << id << " (" << kind_name(nl.gate(id).kind)
        << ")";
  }
}

/// Netlist exercising every GateKind, with reconvergent fanout so stem and
/// branch faults behave differently.
Netlist every_kind_netlist() {
  Netlist nl("every_kind");
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId c = nl.input("c");
  const NetId c0 = nl.constant(false);
  const NetId c1 = nl.constant(true);
  const NetId q = nl.dff("q");
  const NetId n_buf = nl.buf(a);
  const NetId n_not = nl.not_(b);
  const NetId n_and = nl.and_(n_buf, n_not);
  const NetId n_or = nl.or_(n_and, c);
  const NetId n_nand = nl.nand_(n_or, a);
  const NetId n_nor = nl.nor_(n_nand, c0);
  const NetId n_xor = nl.xor_(n_nor, q);
  const NetId n_xnor = nl.xnor_(n_xor, c1);
  const NetId n_mux = nl.mux2(c, n_xnor, n_and);
  nl.connect_dff(q, n_mux);
  nl.output("y", n_mux);
  nl.output("z", n_xor);
  return nl;
}

// Reuse the seeded random generators proven in test_fault_parallel.cpp.
Netlist random_comb_netlist(Rng& rng, unsigned n_inputs, unsigned n_gates) {
  Netlist nl("random_comb");
  std::vector<NetId> nets;
  for (unsigned i = 0; i < n_inputs; ++i) {
    nets.push_back(nl.input("i" + std::to_string(i)));
  }
  auto pick = [&] { return nets[rng.below(nets.size())]; };
  for (unsigned g = 0; g < n_gates; ++g) {
    NetId n;
    switch (rng.below(9)) {
      case 0: n = nl.buf(pick()); break;
      case 1: n = nl.not_(pick()); break;
      case 2: n = nl.and_(pick(), pick()); break;
      case 3: n = nl.or_(pick(), pick()); break;
      case 4: n = nl.nand_(pick(), pick()); break;
      case 5: n = nl.nor_(pick(), pick()); break;
      case 6: n = nl.xor_(pick(), pick()); break;
      case 7: n = nl.xnor_(pick(), pick()); break;
      default: n = nl.mux2(pick(), pick(), pick()); break;
    }
    nets.push_back(n);
  }
  unsigned n_outputs = 0;
  for (std::size_t i = n_inputs; i < nets.size(); ++i) {
    if (i + 3 >= nets.size() || rng.chance(0.1)) {
      nl.output("o" + std::to_string(n_outputs++), nets[i]);
    }
  }
  return nl;
}

Netlist random_seq_netlist(Rng& rng, unsigned n_inputs, unsigned n_dffs,
                           unsigned n_gates) {
  Netlist nl("random_seq");
  std::vector<NetId> nets;
  for (unsigned i = 0; i < n_inputs; ++i) {
    nets.push_back(nl.input("i" + std::to_string(i)));
  }
  std::vector<NetId> qs;
  for (unsigned i = 0; i < n_dffs; ++i) {
    const NetId q = nl.dff("q" + std::to_string(i));
    qs.push_back(q);
    nets.push_back(q);
  }
  auto pick = [&] { return nets[rng.below(nets.size())]; };
  for (unsigned g = 0; g < n_gates; ++g) {
    NetId n;
    switch (rng.below(7)) {
      case 0: n = nl.not_(pick()); break;
      case 1: n = nl.and_(pick(), pick()); break;
      case 2: n = nl.or_(pick(), pick()); break;
      case 3: n = nl.nand_(pick(), pick()); break;
      case 4: n = nl.xor_(pick(), pick()); break;
      case 5: n = nl.nor_(pick(), pick()); break;
      default: n = nl.mux2(pick(), pick(), pick()); break;
    }
    nets.push_back(n);
  }
  for (NetId q : qs) nl.connect_dff(q, pick());
  unsigned n_outputs = 0;
  for (std::size_t i = n_inputs + n_dffs; i < nets.size(); ++i) {
    if (i + 3 >= nets.size() || rng.chance(0.15)) {
      nl.output("o" + std::to_string(n_outputs++), nets[i]);
    }
  }
  return nl;
}

void randomize_inputs(Rng& rng, Evaluator& oracle, CompiledEvaluator& full,
                      CompiledEvaluator& event) {
  for (NetId in : oracle.netlist().inputs()) {
    const std::uint64_t w = rng.next64();
    oracle.set_input_word(in, w);
    full.set_input_word(in, w);
    event.set_input_word(in, w);
  }
}

// ---- compilation structure -------------------------------------------------

TEST(CompiledNetlist, LevelsAndFaninCone) {
  Netlist nl("cone");
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId x = nl.and_(a, b);    // level 1
  const NetId y = nl.not_(x);       // level 2
  const NetId z = nl.or_(a, a);     // level 1, NOT in y's cone
  nl.output("y", y);
  nl.output("z", z);

  const CompiledNetlist cn(nl);
  EXPECT_EQ(cn.size(), nl.size());
  EXPECT_EQ(cn.levels(), 3u);  // inputs at 0, {x,z} at 1, y at 2

  const std::vector<std::uint8_t> cone = cn.fanin_cone({y});
  EXPECT_TRUE(cone[y]);
  EXPECT_TRUE(cone[x]);
  EXPECT_TRUE(cone[a]);
  EXPECT_TRUE(cone[b]);
  EXPECT_FALSE(cone[z]);

  const std::vector<std::uint8_t> zcone = cn.fanin_cone({z});
  EXPECT_TRUE(zcone[a]);
  EXPECT_FALSE(zcone[b]);
  EXPECT_FALSE(zcone[x]);
}

TEST(CompiledNetlist, FaninConeFollowsDffDEdges) {
  Netlist nl("seq_cone");
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId q = nl.dff("q");
  nl.connect_dff(q, nl.and_(a, b));
  const NetId y = nl.not_(q);
  nl.output("y", y);

  const CompiledNetlist cn(nl);
  const std::vector<std::uint8_t> cone = cn.fanin_cone({y});
  // The cone must cross the flip-flop: a fault on `a` is observable at y one
  // cycle later.
  EXPECT_TRUE(cone[a]);
  EXPECT_TRUE(cone[b]);
  EXPECT_TRUE(cone[q]);
}

// ---- gate semantics --------------------------------------------------------

TEST(CompiledEval, EveryGateKindMatchesReference) {
  const Netlist nl = every_kind_netlist();
  Evaluator oracle(nl);
  CompiledEvaluator full(nl, /*event_driven=*/false);
  CompiledEvaluator event(nl, /*event_driven=*/true);

  Rng rng(404);
  for (int iter = 0; iter < 50; ++iter) {
    randomize_inputs(rng, oracle, full, event);
    if (iter % 7 == 0) {
      oracle.reset_state(iter % 14 == 0);
      full.reset_state(iter % 14 == 0);
      event.reset_state(iter % 14 == 0);
    }
    oracle.step();
    full.step();
    event.step();
    expect_all_nets_equal(oracle, full, "full");
    expect_all_nets_equal(oracle, event, "event");
  }
}

TEST(CompiledEval, StemAndBranchForcesOnAllSitesAndLaneMasks) {
  const Netlist nl = every_kind_netlist();
  Evaluator oracle(nl);
  CompiledEvaluator full(nl, false);
  CompiledEvaluator event(nl, true);

  Rng rng(405);
  const std::uint64_t masks[] = {
      1u,
      ~std::uint64_t{0},
      0xAAAAAAAAAAAAAAAAULL,
      0x8000000000000001ULL,
      rng.next64(),
  };
  randomize_inputs(rng, oracle, full, event);
  oracle.eval();
  full.eval();
  event.eval();

  for (NetId g = 0; g < nl.size(); ++g) {
    const unsigned pins = fanin_count(nl.gate(g).kind);
    // Output (stem) site plus every input pin (branch) site.
    std::vector<std::uint8_t> sites{Site::kOutputPin};
    for (unsigned p = 0; p < pins; ++p) sites.push_back(std::uint8_t(p));
    for (std::uint8_t pin : sites) {
      for (std::uint64_t mask : masks) {
        for (bool sv : {false, true}) {
          const Site site{g, pin};
          oracle.inject(site, sv, mask);
          full.inject(site, sv, mask);
          event.inject(site, sv, mask);
          oracle.eval();
          full.eval();
          event.eval();
          expect_all_nets_equal(oracle, full, "forced/full");
          expect_all_nets_equal(oracle, event, "forced/event");
          oracle.clear_faults();
          full.clear_faults();
          event.clear_faults();
          oracle.eval();
          full.eval();
          event.eval();
          expect_all_nets_equal(oracle, full, "cleared/full");
          expect_all_nets_equal(oracle, event, "cleared/event");
        }
      }
    }
  }
}

TEST(CompiledEval, DffIgnoresPinForceOnDInputLikeReference) {
  // The reference evaluator never applies pin forces to a DFF's D input
  // (step() reads the raw driven value); the compiled engine must replicate
  // that quirk, not "fix" it.
  Netlist nl("dff_quirk");
  const NetId a = nl.input("a");
  const NetId q = nl.dff("q");
  nl.connect_dff(q, a);
  nl.output("y", nl.not_(q));

  Evaluator oracle(nl);
  CompiledEvaluator event(nl, true);

  for (bool sv : {false, true}) {
    oracle.set_input(a, !sv);
    event.set_input(a, !sv);
    const Site d_pin{q, 0};
    oracle.inject(d_pin, sv, ~std::uint64_t{0});
    event.inject(d_pin, sv, ~std::uint64_t{0});
    oracle.step();
    event.step();
    expect_all_nets_equal(oracle, event, "dff d-pin force");
    // Re-evaluate so values_ reflects the newly latched state: both must
    // have latched the UNforced driven value.
    oracle.eval();
    event.eval();
    expect_all_nets_equal(oracle, event, "dff d-pin force post-latch");
    EXPECT_EQ(oracle.value(q), sv ? 0 : ~std::uint64_t{0});
    oracle.clear_faults();
    event.clear_faults();
  }
}

TEST(CompiledEval, StepAndResetStateMatchReference) {
  Rng rng(406);
  const Netlist nl = random_seq_netlist(rng, 5, 6, 60);
  Evaluator oracle(nl);
  CompiledEvaluator full(nl, false);
  CompiledEvaluator event(nl, true);

  for (bool init : {false, true}) {
    oracle.reset_state(init);
    full.reset_state(init);
    event.reset_state(init);
    for (int cycle = 0; cycle < 30; ++cycle) {
      randomize_inputs(rng, oracle, full, event);
      oracle.step();
      full.step();
      event.step();
      expect_all_nets_equal(oracle, full, "seq/full");
      expect_all_nets_equal(oracle, event, "seq/event");
    }
  }
}

// ---- randomized operation-sequence fuzzing ---------------------------------

TEST(CompiledEval, RandomizedCombOperationSequences) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Rng rng(seed * 31 + 7);
    const Netlist nl = random_comb_netlist(rng, 5 + rng.below(5),
                                           40 + rng.below(60));
    Evaluator oracle(nl);
    CompiledEvaluator full(nl, false);
    CompiledEvaluator event(nl, true);

    for (int op = 0; op < 200; ++op) {
      switch (rng.below(4)) {
        case 0: {  // new stimulus
          randomize_inputs(rng, oracle, full, event);
          break;
        }
        case 1: {  // inject a random fault (possibly stacking several)
          const NetId g = NetId(rng.below(nl.size()));
          const unsigned pins = fanin_count(nl.gate(g).kind);
          const std::uint8_t pin =
              (pins == 0 || rng.chance(0.5))
                  ? Site::kOutputPin
                  : std::uint8_t(rng.below(pins));
          const bool sv = rng.chance(0.5);
          const std::uint64_t mask = rng.next64() | 1u;
          oracle.inject({g, pin}, sv, mask);
          full.inject({g, pin}, sv, mask);
          event.inject({g, pin}, sv, mask);
          break;
        }
        case 2: {
          oracle.clear_faults();
          full.clear_faults();
          event.clear_faults();
          break;
        }
        default: {
          oracle.eval();
          full.eval();
          event.eval();
          expect_all_nets_equal(oracle, full, "fuzz/full");
          expect_all_nets_equal(oracle, event, "fuzz/event");
          break;
        }
      }
    }
  }
}

TEST(CompiledEval, RandomizedSeqOperationSequences) {
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    Rng rng(seed);
    const Netlist nl = random_seq_netlist(rng, 4 + rng.below(4),
                                          3 + rng.below(4), 35 + rng.below(40));
    Evaluator oracle(nl);
    CompiledEvaluator full(nl, false);
    CompiledEvaluator event(nl, true);

    for (int op = 0; op < 150; ++op) {
      switch (rng.below(6)) {
        case 0: {
          randomize_inputs(rng, oracle, full, event);
          break;
        }
        case 1: {
          const NetId g = NetId(rng.below(nl.size()));
          const unsigned pins = fanin_count(nl.gate(g).kind);
          const std::uint8_t pin =
              (pins == 0 || rng.chance(0.5))
                  ? Site::kOutputPin
                  : std::uint8_t(rng.below(pins));
          const bool sv = rng.chance(0.5);
          const std::uint64_t mask = rng.next64() | 2u;
          oracle.inject({g, pin}, sv, mask);
          full.inject({g, pin}, sv, mask);
          event.inject({g, pin}, sv, mask);
          break;
        }
        case 2: {
          oracle.clear_faults();
          full.clear_faults();
          event.clear_faults();
          break;
        }
        case 3: {
          const bool v = rng.chance(0.5);
          oracle.reset_state(v);
          full.reset_state(v);
          event.reset_state(v);
          break;
        }
        case 4: {
          oracle.step();
          full.step();
          event.step();
          expect_all_nets_equal(oracle, full, "seqfuzz/full");
          expect_all_nets_equal(oracle, event, "seqfuzz/event");
          break;
        }
        default: {
          oracle.eval();
          full.eval();
          event.eval();
          expect_all_nets_equal(oracle, full, "seqfuzz/full");
          expect_all_nets_equal(oracle, event, "seqfuzz/event");
          break;
        }
      }
    }
  }
}

// ---- event vs full equivalence on every rtlgen component -------------------

void exercise_component(const Netlist& nl, std::uint64_t seed) {
  SCOPED_TRACE(nl.name());
  Evaluator oracle(nl);
  const CompiledNetlist cn(nl);
  CompiledEvaluator full(cn, false);
  CompiledEvaluator event(cn, true);
  Rng rng(seed);

  FaultUniverse universe(nl);
  const std::vector<Fault>& faults = universe.collapsed();

  for (int iter = 0; iter < 12; ++iter) {
    randomize_inputs(rng, oracle, full, event);
    if (nl.is_combinational()) {
      oracle.eval();
      full.eval();
      event.eval();
    } else {
      oracle.step();
      full.step();
      event.step();
    }
    expect_all_nets_equal(oracle, full, "component/full");
    expect_all_nets_equal(oracle, event, "component/event");

    // Inject a few real (collapsed) faults, eval, compare, clear.
    for (int k = 0; k < 4 && !faults.empty(); ++k) {
      const Fault& f = faults[rng.below(faults.size())];
      const std::uint64_t mask = rng.next64() | 1u;
      oracle.inject(f.site, f.stuck_value, mask);
      full.inject(f.site, f.stuck_value, mask);
      event.inject(f.site, f.stuck_value, mask);
      oracle.eval();
      full.eval();
      event.eval();
      expect_all_nets_equal(oracle, full, "component-fault/full");
      expect_all_nets_equal(oracle, event, "component-fault/event");
      oracle.clear_faults();
      full.clear_faults();
      event.clear_faults();
    }
  }
}

TEST(CompiledEval, RtlgenCombComponents) {
  exercise_component(rtlgen::build_alu({.width = 8}), 900);
  exercise_component(rtlgen::build_shifter({.width = 8}), 901);
  exercise_component(rtlgen::build_multiplier({.width = 8}), 902);
  exercise_component(rtlgen::build_comparator({.width = 8}), 903);
  exercise_component(rtlgen::build_control(), 904);
  exercise_component(rtlgen::build_forwarding_unit(), 905);
}

TEST(CompiledEval, RtlgenSeqComponents) {
  exercise_component(rtlgen::build_pipe_reg({.width = 8}), 910);
  exercise_component(rtlgen::build_divider({.width = 8}), 911);
  exercise_component(rtlgen::build_regfile({.num_regs = 8, .width = 8}), 912);
  exercise_component(rtlgen::build_memctrl(), 913);
}

// ---- instrumentation -------------------------------------------------------

TEST(CompiledEval, EventEvalVisitsOnlyTheFanoutCone) {
  // A wide, flat netlist: 1 shared input + many independent 2-gate chains.
  Netlist nl("wide");
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  for (int i = 0; i < 100; ++i) {
    nl.output("o" + std::to_string(i), nl.not_(nl.and_(a, b)));
  }
  const NetId lone = nl.xor_(a, b);
  nl.output("lone", lone);

  CompiledEvaluator ev(nl, /*event_driven=*/true);
  ev.set_input(a, true);
  ev.set_input(b, false);
  ev.eval();  // first eval is a full sweep
  ev.reset_stats();

  // A stem fault on the lone XOR touches exactly: the XOR itself. No chain
  // gate feeds from it, so the event pass must not visit the 200 chain gates.
  ev.inject({lone, Site::kOutputPin}, true, ~std::uint64_t{0});
  ev.eval();
  EXPECT_GE(ev.gate_evals(), 1u);
  EXPECT_LE(ev.gate_evals(), 3u);  // xor + (nothing downstream)
  ev.clear_faults();
}

TEST(CompiledEval, FullEvalCountsWholeSweep) {
  Rng rng(77);
  const Netlist nl = random_comb_netlist(rng, 4, 30);
  CompiledEvaluator ev(nl, /*event_driven=*/false);
  ev.eval();
  EXPECT_EQ(ev.gate_evals(), nl.size());
  ev.eval();
  EXPECT_EQ(ev.gate_evals(), 2 * nl.size());
}

// ---- engine-selection layer ------------------------------------------------

TEST(EngineSelect, ParseAndNames) {
  Engine e = Engine::kReference;
  EXPECT_TRUE(fault::parse_engine("compiled", e));
  EXPECT_EQ(e, Engine::kCompiled);
  EXPECT_TRUE(fault::parse_engine("event", e));
  EXPECT_EQ(e, Engine::kEvent);
  EXPECT_TRUE(fault::parse_engine("reference", e));
  EXPECT_EQ(e, Engine::kReference);
  EXPECT_FALSE(fault::parse_engine("warp", e));
  EXPECT_EQ(e, Engine::kReference);  // untouched on failure
  EXPECT_STREQ(fault::engine_name(Engine::kEvent), "event");
}

TEST(EngineSelect, SerialAndCombSimulatorsIdenticalAcrossEngines) {
  for (std::uint64_t seed : {61u, 62u}) {
    Rng rng(seed);
    const Netlist nl = random_comb_netlist(rng, 7, 90);
    FaultUniverse u(nl);
    PatternSet ps(nl);
    for (int i = 0; i < 100; ++i) ps.add_random(rng);

    const CoverageResult oracle =
        fault::simulate_serial(nl, u.collapsed(), ps, {}, Engine::kReference);
    for (Engine e : {Engine::kCompiled, Engine::kEvent}) {
      EXPECT_EQ(oracle.detected_flags,
                fault::simulate_serial(nl, u.collapsed(), ps, {}, e)
                    .detected_flags)
          << "serial/" << fault::engine_name(e);
      EXPECT_EQ(oracle.detected_flags,
                fault::simulate_comb(nl, u.collapsed(), ps, {}, e)
                    .detected_flags)
          << "comb/" << fault::engine_name(e);
    }
  }
}

TEST(EngineSelect, SeqSimulatorIdenticalAcrossEngines) {
  Rng rng(63);
  const Netlist nl = random_seq_netlist(rng, 5, 4, 50);
  FaultUniverse u(nl);
  SeqStimulus st(nl);
  for (int c = 0; c < 40; ++c) {
    std::vector<PortValue> values;
    for (const Port& p : nl.input_ports()) {
      values.emplace_back(p.name, rng.next64());
    }
    st.add_cycle(values, rng.chance(0.7));
  }
  const CoverageResult oracle =
      fault::simulate_seq(nl, u.collapsed(), st, {}, Engine::kReference);
  for (Engine e : {Engine::kCompiled, Engine::kEvent}) {
    EXPECT_EQ(oracle.detected_flags,
              fault::simulate_seq(nl, u.collapsed(), st, {}, e).detected_flags)
        << fault::engine_name(e);
  }
}

TEST(EngineSelect, ParallelIdenticalAcrossEnginesThreadsAndLanes) {
  Rng rng(64);
  const Netlist nl = random_comb_netlist(rng, 8, 150);
  FaultUniverse u(nl);
  PatternSet ps(nl);
  for (int i = 0; i < 130; ++i) ps.add_random(rng);

  const CoverageResult oracle =
      fault::simulate_serial(nl, u.collapsed(), ps, {}, Engine::kReference);
  for (Engine e : {Engine::kReference, Engine::kCompiled, Engine::kEvent}) {
    for (unsigned threads : {1u, 2u, 4u}) {
      for (bool lanes : {false, true}) {
        SimOptions opt;
        opt.num_threads = threads;
        opt.lane_parallel = lanes;
        opt.engine = e;
        const CoverageResult got =
            fault::simulate_comb_parallel(nl, u.collapsed(), ps, {}, opt);
        EXPECT_EQ(oracle.detected_flags, got.detected_flags)
            << fault::engine_name(e) << "/" << threads << "t/"
            << (lanes ? "lanes" : "blocks");
      }
    }
  }
}

TEST(EngineSelect, ParallelSeqIdenticalAcrossEnginesAndThreads) {
  Rng rng(65);
  const Netlist nl = random_seq_netlist(rng, 5, 5, 60);
  FaultUniverse u(nl);
  SeqStimulus st(nl);
  for (int c = 0; c < 35; ++c) {
    std::vector<PortValue> values;
    for (const Port& p : nl.input_ports()) {
      values.emplace_back(p.name, rng.next64());
    }
    st.add_cycle(values, rng.chance(0.7));
  }
  const CoverageResult oracle =
      fault::simulate_seq(nl, u.collapsed(), st, {}, Engine::kReference);
  for (Engine e : {Engine::kReference, Engine::kCompiled, Engine::kEvent}) {
    for (unsigned threads : {1u, 3u}) {
      SimOptions opt;
      opt.num_threads = threads;
      opt.engine = e;
      const CoverageResult got =
          fault::simulate_seq_parallel(nl, u.collapsed(), st, {}, opt);
      EXPECT_EQ(oracle.detected_flags, got.detected_flags)
          << fault::engine_name(e) << "/" << threads << "t";
    }
  }
}

TEST(EngineSelect, RestrictedObserveSetExercisesConePrefilter) {
  // With a narrow observe set many fault cones miss it; the prefilter must
  // skip them without changing any flag.
  Rng rng(66);
  const Netlist nl = random_comb_netlist(rng, 7, 120);
  FaultUniverse u(nl);
  PatternSet ps(nl);
  for (int i = 0; i < 80; ++i) ps.add_random(rng);
  const std::vector<NetId> outs = nl.output_nets();
  ASSERT_GE(outs.size(), 2u);
  const std::vector<NetId> narrow{outs.front()};

  const CoverageResult oracle = fault::simulate_serial(nl, u.collapsed(), ps,
                                                       narrow,
                                                       Engine::kReference);
  for (Engine e : {Engine::kCompiled, Engine::kEvent}) {
    EXPECT_EQ(oracle.detected_flags,
              fault::simulate_comb(nl, u.collapsed(), ps, narrow, e)
                  .detected_flags)
        << fault::engine_name(e);
    SimOptions opt;
    opt.num_threads = 2;
    opt.engine = e;
    EXPECT_EQ(oracle.detected_flags,
              fault::simulate_comb_parallel(nl, u.collapsed(), ps, narrow, opt)
                  .detected_flags)
        << fault::engine_name(e) << "/parallel";
  }
}

TEST(EngineSelect, RtlgenComponentCoverageIdenticalAcrossEngines) {
  Rng rng(67);
  for (const Netlist& nl :
       {rtlgen::build_alu({.width = 4}),
        rtlgen::build_multiplier({.width = 4}),
        rtlgen::build_control()}) {
    SCOPED_TRACE(nl.name());
    FaultUniverse u(nl);
    PatternSet ps(nl);
    for (int i = 0; i < 96; ++i) ps.add_random(rng);
    const CoverageResult oracle =
        fault::simulate_comb(nl, u.collapsed(), ps, {}, Engine::kReference);
    for (Engine e : {Engine::kCompiled, Engine::kEvent}) {
      EXPECT_EQ(oracle.detected_flags,
                fault::simulate_comb(nl, u.collapsed(), ps, {}, e)
                    .detected_flags)
          << fault::engine_name(e);
      SimOptions opt;
      opt.num_threads = 4;
      opt.engine = e;
      EXPECT_EQ(oracle.detected_flags,
                fault::simulate_comb_parallel(nl, u.collapsed(), ps, {}, opt)
                    .detected_flags)
          << fault::engine_name(e) << "/parallel";
    }
  }
}

// ---- reference-evaluator satellites ----------------------------------------

TEST(ReferenceEval, ClearFaultsRevertsOnlyTouchedSites) {
  // Behavioral check of the touched-site teardown: stacking many injects and
  // clearing must restore the pristine fault-free state.
  Rng rng(88);
  const Netlist nl = random_comb_netlist(rng, 6, 70);
  Evaluator ev(nl);
  Evaluator pristine(nl);
  for (NetId in : nl.inputs()) {
    const std::uint64_t w = rng.next64();
    ev.set_input_word(in, w);
    pristine.set_input_word(in, w);
  }
  pristine.eval();
  for (int round = 0; round < 10; ++round) {
    for (int k = 0; k < 5; ++k) {
      const NetId g = NetId(rng.below(nl.size()));
      ev.inject({g, Site::kOutputPin}, rng.chance(0.5), rng.next64());
    }
    ev.eval();
    ev.clear_faults();
    EXPECT_FALSE(ev.has_faults());
    ev.eval();
    for (NetId id = 0; id < nl.size(); ++id) {
      ASSERT_EQ(ev.value(id), pristine.value(id)) << "net " << id;
    }
  }
}

}  // namespace
}  // namespace sbst::netlist
