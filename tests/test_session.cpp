// GradingSession: cache-reuse accounting, observe-mode slots, and the
// differential guarantee — evaluate_program returns bitwise-identical
// results for every cache setting, evaluation engine, and thread count.
#include <gtest/gtest.h>

#include "core/evaluate.hpp"

namespace sbst::core {
namespace {

// A deliberately small program (ALU + memory-controller routines) with tight
// trace caps so the full cache × engine × thread matrix — including the
// reference engine — stays fast.
struct Fixture {
  ProcessorModel model;
  TestProgramBuilder builder;
  TestProgram program;
  Fixture() {
    builder.add(make_alu_routine({}));
    builder.add(make_memctrl_routine({}));
    program = builder.build();
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

EvalOptions small_options() {
  EvalOptions options;
  options.regfile_cycle_cap = 32;
  options.pipeline_cycle_cap = 256;
  return options;
}

void expect_same_exec(const sim::ExecStats& a, const sim::ExecStats& b,
                      const std::string& what) {
  EXPECT_EQ(a.instructions, b.instructions) << what;
  EXPECT_EQ(a.cpu_cycles, b.cpu_cycles) << what;
  EXPECT_EQ(a.pipeline_stall_cycles, b.pipeline_stall_cycles) << what;
  EXPECT_EQ(a.memory_stall_cycles, b.memory_stall_cycles) << what;
  EXPECT_EQ(a.loads, b.loads) << what;
  EXPECT_EQ(a.stores, b.stores) << what;
  EXPECT_EQ(a.icache_misses, b.icache_misses) << what;
  EXPECT_EQ(a.dcache_misses, b.dcache_misses) << what;
  EXPECT_EQ(a.icache_accesses, b.icache_accesses) << what;
  EXPECT_EQ(a.dcache_accesses, b.dcache_accesses) << what;
  EXPECT_EQ(a.halted, b.halted) << what;
}

void expect_same_evaluation(const ProgramEvaluation& a,
                            const ProgramEvaluation& b,
                            const std::string& what) {
  ASSERT_EQ(a.cuts.size(), b.cuts.size()) << what;
  for (std::size_t i = 0; i < a.cuts.size(); ++i) {
    const CutCoverage& ca = a.cuts[i];
    const CutCoverage& cb = b.cuts[i];
    EXPECT_EQ(ca.id, cb.id) << what;
    EXPECT_EQ(ca.collapsed_faults, cb.collapsed_faults) << what;
    EXPECT_EQ(ca.uncollapsed_faults, cb.uncollapsed_faults) << what;
    EXPECT_EQ(ca.stimulus_size, cb.stimulus_size) << what;
    EXPECT_EQ(ca.coverage.total, cb.coverage.total) << what;
    EXPECT_EQ(ca.coverage.detected, cb.coverage.detected) << what;
    EXPECT_EQ(ca.coverage.detected_flags, cb.coverage.detected_flags)
        << what << " cut " << static_cast<int>(ca.id);
  }
  EXPECT_EQ(a.signatures, b.signatures) << what;
  expect_same_exec(a.total, b.total, what + " total");
  ASSERT_EQ(a.routines.size(), b.routines.size()) << what;
  for (std::size_t i = 0; i < a.routines.size(); ++i) {
    EXPECT_EQ(a.routines[i].name, b.routines[i].name) << what;
    EXPECT_EQ(a.routines[i].style, b.routines[i].style) << what;
    EXPECT_EQ(a.routines[i].size_words, b.routines[i].size_words) << what;
    expect_same_exec(a.routines[i].exec, b.routines[i].exec,
                     what + " routine " + a.routines[i].name);
  }
}

TEST(GradingSession, EvaluationIdenticalAcrossCacheEngineAndThreads) {
  const Fixture& f = fixture();

  EvalOptions base_options = small_options();
  base_options.sim.engine = fault::Engine::kEvent;
  GradingSession base_session(f.model, {.num_threads = 1});
  const ProgramEvaluation baseline =
      evaluate_program(base_session, f.builder, f.program, base_options);
  EXPECT_GT(baseline.overall_fc(), 0.0);

  for (bool cache : {true, false}) {
    for (fault::Engine engine :
         {fault::Engine::kReference, fault::Engine::kCompiled,
          fault::Engine::kEvent}) {
      for (unsigned threads : {1u, 2u, 8u}) {
        const std::string what = std::string("cache=") +
                                 (cache ? "on" : "off") + " engine=" +
                                 fault::engine_name(engine) + " threads=" +
                                 std::to_string(threads);
        EvalOptions options = small_options();
        options.sim.engine = engine;
        GradingSession session(f.model,
                               {.num_threads = threads, .cache = cache});
        const ProgramEvaluation ev =
            evaluate_program(session, f.builder, f.program, options);
        expect_same_evaluation(baseline, ev, what);
      }
    }
  }
}

TEST(GradingSession, LegacyOverloadMatchesSessionForm) {
  const Fixture& f = fixture();
  const EvalOptions options = small_options();
  GradingSession session(f.model, {.num_threads = 2});
  const ProgramEvaluation a =
      evaluate_program(session, f.builder, f.program, options);
  const ProgramEvaluation b =
      evaluate_program(f.model, f.builder, f.program, options);
  expect_same_evaluation(a, b, "legacy overload");
}

TEST(GradingSession, SecondEvaluationHitsTheCache) {
  const Fixture& f = fixture();
  GradingSession session(f.model, {.num_threads = 2});
  const EvalOptions options = small_options();

  evaluate_program(session, f.builder, f.program, options);
  const SessionStats first = session.stats();
  EXPECT_EQ(first.universe_builds, f.model.components().size());
  EXPECT_EQ(first.universe_hits, 0u);
  EXPECT_EQ(first.compile_builds, f.model.components().size());
  EXPECT_GT(first.observe_builds, 0u);
  EXPECT_GT(first.cone_builds, 0u);

  evaluate_program(session, f.builder, f.program, options);
  const SessionStats second = session.stats();
  EXPECT_EQ(second.universe_builds, first.universe_builds);
  EXPECT_EQ(second.compile_builds, first.compile_builds);
  EXPECT_EQ(second.observe_builds, first.observe_builds);
  EXPECT_EQ(second.cone_builds, first.cone_builds);
  EXPECT_EQ(second.universe_hits, first.universe_hits +
                                      f.model.components().size());
  EXPECT_GT(second.compile_hits, first.compile_hits);
  EXPECT_GT(second.cone_hits, first.cone_hits);
}

TEST(GradingSession, CacheOffRebuildsEveryTime) {
  const Fixture& f = fixture();
  GradingSession session(f.model, {.num_threads = 1, .cache = false});
  const fault::FaultUniverse& u1 = session.universe(CutId::kAlu);
  EXPECT_GT(u1.size(), 0u);
  session.universe(CutId::kAlu);
  const SessionStats stats = session.stats();
  EXPECT_EQ(stats.universe_builds, 2u);
  EXPECT_EQ(stats.universe_hits, 0u);
}

TEST(GradingSession, ObserveModesSelectDistinctSlots) {
  ProcessorModel& model = fixture().model;
  GradingSession session(model);
  const ComponentInfo& mem = model.component(CutId::kMemCtrl);

  const fault::ObserveSet& arch =
      session.observe(CutId::kMemCtrl, ObserveMode::kArchitectural);
  const fault::ObserveSet& plus = session.observe(
      CutId::kMemCtrl, ObserveMode::kArchitecturalPlusAddress);
  const fault::ObserveSet& full =
      session.observe(CutId::kMemCtrl, ObserveMode::kFullNetlist);
  // MAR exclusion: plus-address strictly extends architectural, and the
  // full netlist observes at least as much as either.
  EXPECT_LT(arch.size(), plus.size());
  EXPECT_GE(full.size(), plus.size());
  EXPECT_EQ(full.size(), mem.netlist.output_nets().size());

  // The free functions agree with the cached sets.
  EXPECT_EQ(arch, observation_points(mem, ObserveMode::kArchitectural));
  EvalOptions options;
  options.observe_address_outputs = true;
  EXPECT_EQ(observe_mode(options), ObserveMode::kArchitecturalPlusAddress);
  EXPECT_EQ(plus, observation_points(mem, options));
}

TEST(GradingSession, ConeMatchesCompiledFaninCone) {
  ProcessorModel& model = fixture().model;
  GradingSession session(model);
  const auto& cone =
      session.cone(CutId::kAlu, ObserveMode::kArchitectural);
  const auto expected = session.compiled(CutId::kAlu).fanin_cone(
      session.observe(CutId::kAlu, ObserveMode::kArchitectural));
  EXPECT_EQ(cone, expected);
}

}  // namespace
}  // namespace sbst::core
