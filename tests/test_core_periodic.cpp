// On-line periodic testing model: fault activity, detection probability,
// latency and CPU overhead (paper §1-§2 claims).
#include <gtest/gtest.h>

#include <cmath>

#include "core/periodic.hpp"

namespace sbst::core {
namespace {

TEST(FaultActivity, Permanent) {
  FaultProcess f{.kind = FaultKind::kPermanent, .arrival_s = 5.0};
  EXPECT_FALSE(fault_active_at(f, 4.9));
  EXPECT_TRUE(fault_active_at(f, 5.0));
  EXPECT_TRUE(fault_active_at(f, 1e6));
}

TEST(FaultActivity, IntermittentDutyCycle) {
  FaultProcess f{.kind = FaultKind::kIntermittent,
                 .arrival_s = 0.0,
                 .period_s = 1.0,
                 .active_s = 0.25};
  EXPECT_TRUE(fault_active_at(f, 0.1));
  EXPECT_FALSE(fault_active_at(f, 0.5));
  EXPECT_TRUE(fault_active_at(f, 1.2));
  EXPECT_FALSE(fault_active_at(f, 1.9));
  EXPECT_DOUBLE_EQ(intermittent_duty_cycle(f), 0.25);
}

TEST(FaultActivity, TransientExpires) {
  FaultProcess f{.kind = FaultKind::kTransient,
                 .arrival_s = 2.0,
                 .active_s = 0.001};
  EXPECT_TRUE(fault_active_at(f, 2.0005));
  EXPECT_FALSE(fault_active_at(f, 2.1));
}

TEST(Periodic, PermanentFaultsDetectedWithCoverageProbability) {
  // Paper: periodic testing "detects permanent faults"; probability per
  // horizon approaches 1 for any covered fault (many test runs).
  PeriodicConfig cfg;
  cfg.test_period_s = 1.0;
  cfg.horizon_s = 100.0;
  cfg.fault_coverage = 0.95;
  Rng rng(1);
  const FaultProcess f{.kind = FaultKind::kPermanent, .arrival_s = 1.0};
  const PeriodicResult res = simulate_periodic(cfg, f, 2000, rng);
  EXPECT_GT(res.detection_probability, 0.999);
}

TEST(Periodic, PermanentLatencyBoundedByPeriod) {
  PeriodicConfig cfg;
  cfg.test_period_s = 0.5;
  cfg.horizon_s = 50.0;
  cfg.fault_coverage = 1.0;
  Rng rng(2);
  const FaultProcess f{.kind = FaultKind::kPermanent, .arrival_s = 3.0};
  const PeriodicResult res = simulate_periodic(cfg, f, 1000, rng);
  // Arrival uniform in a period: mean latency ~ period/2, max ~ period.
  EXPECT_NEAR(res.mean_latency_s, expected_permanent_latency(cfg), 0.05);
  EXPECT_LE(res.max_latency_s, cfg.test_period_s + cfg.test_exec_s + 1e-9);
}

TEST(Periodic, ShorterPeriodShortensLatency) {
  Rng rng(3);
  const FaultProcess f{.kind = FaultKind::kPermanent, .arrival_s = 2.0};
  PeriodicConfig fast, slow;
  fast.test_period_s = 0.1;
  slow.test_period_s = 2.0;
  fast.horizon_s = slow.horizon_s = 60.0;
  const PeriodicResult rf = simulate_periodic(fast, f, 500, rng);
  const PeriodicResult rs = simulate_periodic(slow, f, 500, rng);
  EXPECT_LT(rf.mean_latency_s, rs.mean_latency_s);
}

TEST(Periodic, IntermittentFaultsWithLargeDurationAreCaught) {
  // Paper §1: periodic testing detects "intermittent faults with fairly
  // large duration".
  PeriodicConfig cfg;
  cfg.test_period_s = 0.5;
  cfg.horizon_s = 200.0;
  cfg.fault_coverage = 0.95;
  Rng rng(4);
  const FaultProcess f{.kind = FaultKind::kIntermittent,
                       .arrival_s = 0.0,
                       .period_s = 2.0,
                       .active_s = 1.0};  // 50% duty, long activations
  const PeriodicResult res = simulate_periodic(cfg, f, 1000, rng);
  EXPECT_GT(res.detection_probability, 0.999);
}

TEST(Periodic, ShortTransientsAreUsuallyMissed) {
  // The flip side the paper concedes: non-concurrent testing misses short
  // transients (that's what the concurrent schemes are for).
  PeriodicConfig cfg;
  cfg.test_period_s = 1.0;
  cfg.horizon_s = 100.0;
  Rng rng(5);
  const FaultProcess f{.kind = FaultKind::kTransient,
                       .arrival_s = 10.0,
                       .active_s = 1e-4};
  const PeriodicResult res = simulate_periodic(cfg, f, 1000, rng);
  EXPECT_LT(res.detection_probability, 0.05);
}

TEST(Periodic, CpuOverheadIsExecOverPeriod) {
  PeriodicConfig cfg;
  cfg.test_exec_s = 200e-6;
  cfg.test_period_s = 1.0;
  Rng rng(6);
  const PeriodicResult res = simulate_periodic(
      cfg, {.kind = FaultKind::kPermanent}, 1, rng);
  EXPECT_NEAR(res.cpu_overhead, 2e-4, 1e-9);
  // Paper §2: the test fits well inside one quantum.
  EXPECT_LT(cfg.test_exec_s, cfg.quantum_s);
}

TEST(Periodic, StartupPolicyHasLargeLatency) {
  PeriodicConfig timer, startup;
  timer.policy = LaunchPolicy::kTimer;
  timer.test_period_s = 1.0;
  startup.policy = LaunchPolicy::kStartup;
  timer.horizon_s = startup.horizon_s = 100.0;
  Rng rng(7);
  const FaultProcess f{.kind = FaultKind::kPermanent, .arrival_s = 1.0};
  const PeriodicResult rt = simulate_periodic(timer, f, 300, rng);
  const PeriodicResult rs = simulate_periodic(startup, f, 300, rng);
  // Startup-only testing detects nothing until the next boot inside the
  // horizon (paper: "imposes large fault detection latency").
  EXPECT_GT(rt.detection_probability, rs.detection_probability);
}

TEST(Periodic, NoDetectionsGiveZeroLatencyNotNaN) {
  PeriodicConfig cfg;
  cfg.test_period_s = 1.0;
  cfg.horizon_s = 20.0;
  cfg.fault_coverage = 0.0;  // nothing is ever caught
  Rng rng(11);
  const FaultProcess f{.kind = FaultKind::kPermanent, .arrival_s = 1.0};
  const PeriodicResult r = simulate_periodic(cfg, f, 200, rng);
  EXPECT_EQ(r.detected, 0u);
  EXPECT_EQ(r.detection_probability, 0.0);
  // The means are defined (0), not a 0/0 NaN that poisons downstream
  // aggregation.
  EXPECT_EQ(r.mean_latency_s, 0.0);
  EXPECT_EQ(r.mean_hang_latency_s, 0.0);
  EXPECT_FALSE(std::isnan(r.mean_latency_s));
  EXPECT_FALSE(std::isnan(r.mean_hang_latency_s));

  // Zero trials is equally well-defined.
  const PeriodicResult none = simulate_periodic(cfg, f, 0, rng);
  EXPECT_EQ(none.detection_probability, 0.0);
  EXPECT_EQ(none.mean_latency_s, 0.0);
  EXPECT_EQ(none.mean_hang_latency_s, 0.0);
}

TEST(Periodic, HangFractionSplitsDetectionsAndUsesWatchdogLatency) {
  PeriodicConfig cfg;
  cfg.test_period_s = 0.5;
  cfg.horizon_s = 50.0;
  cfg.fault_coverage = 1.0;
  cfg.hang_fraction = 0.5;
  cfg.watchdog_s = 0.05;
  Rng rng(13);
  const FaultProcess f{.kind = FaultKind::kPermanent, .arrival_s = 2.0};
  const PeriodicResult r = simulate_periodic(cfg, f, 1000, rng);
  ASSERT_GT(r.detected, 0u);
  EXPECT_GT(r.detected_by_hang, 0u);
  EXPECT_LT(r.detected_by_hang, r.detected);
  EXPECT_NEAR(static_cast<double>(r.detected_by_hang) /
                  static_cast<double>(r.detected),
              cfg.hang_fraction, 0.08);
  // A hang detection completes at the watchdog budget, which here exceeds
  // the signature unload time — the hang mean must reflect that extra wait.
  EXPECT_GT(r.mean_hang_latency_s, 0.0);
  EXPECT_GT(r.mean_hang_latency_s,
            expected_permanent_latency(cfg) - cfg.test_exec_s);
}

TEST(Periodic, ZeroHangFractionKeepsLegacyDrawStream) {
  PeriodicConfig cfg;
  cfg.test_period_s = 1.0;
  cfg.horizon_s = 30.0;
  const FaultProcess f{.kind = FaultKind::kPermanent, .arrival_s = 1.0};
  Rng a(7);
  const PeriodicResult base = simulate_periodic(cfg, f, 500, a);
  // A configured watchdog must not perturb results (or RNG draws) while the
  // symptom split is disabled.
  PeriodicConfig with = cfg;
  with.watchdog_s = 0.25;
  Rng b(7);
  const PeriodicResult same = simulate_periodic(with, f, 500, b);
  EXPECT_EQ(base.detected, same.detected);
  EXPECT_EQ(base.mean_latency_s, same.mean_latency_s);
  EXPECT_EQ(base.max_latency_s, same.max_latency_s);
  EXPECT_EQ(same.detected_by_hang, 0u);
  EXPECT_EQ(same.mean_hang_latency_s, 0.0);
}

TEST(Periodic, IdlePolicyDetectsLikeTimerOnAverage) {
  PeriodicConfig timer, idle;
  timer.policy = LaunchPolicy::kTimer;
  idle.policy = LaunchPolicy::kIdle;
  timer.test_period_s = idle.test_period_s = 0.5;
  timer.horizon_s = idle.horizon_s = 60.0;
  Rng rng(8);
  const FaultProcess f{.kind = FaultKind::kPermanent, .arrival_s = 5.0};
  const PeriodicResult rt = simulate_periodic(timer, f, 500, rng);
  const PeriodicResult ri = simulate_periodic(idle, f, 500, rng);
  EXPECT_NEAR(rt.detection_probability, ri.detection_probability, 0.02);
}

}  // namespace
}  // namespace sbst::core
