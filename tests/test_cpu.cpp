// CPU simulator: ISA semantics, branch delay slots, timing model, caches,
// and the tracing/override hooks.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "sim/cpu.hpp"

namespace sbst::sim {
namespace {

using isa::assemble;
using isa::Program;

ExecStats run_program(Cpu& cpu, const std::string& source,
                      std::uint32_t base = 0) {
  const Program p = assemble(source, base);
  cpu.reset();
  cpu.load(p);
  return cpu.run(base);
}

TEST(Cpu, ArithmeticAndLogic) {
  Cpu cpu;
  const ExecStats stats = run_program(cpu, R"(
    li $s0, 0x0000ffff
    li $s1, 0x00ff00ff
    and $t0, $s0, $s1
    or  $t1, $s0, $s1
    xor $t2, $s0, $s1
    nor $t3, $s0, $s1
    addu $t4, $s0, $s1
    subu $t5, $s0, $s1
    slt $t6, $s1, $s0
    sltu $t7, $s0, $s1
    break
  )");
  EXPECT_TRUE(stats.halted);
  EXPECT_EQ(cpu.reg(isa::kT0), 0x000000ffu);
  EXPECT_EQ(cpu.reg(isa::kT1), 0x00ffffffu);
  EXPECT_EQ(cpu.reg(isa::kT2), 0x00ffff00u);
  EXPECT_EQ(cpu.reg(isa::kT3), 0xff000000u);
  EXPECT_EQ(cpu.reg(isa::kT4), 0x010000feu);
  EXPECT_EQ(cpu.reg(isa::kT5), 0xff01ff00u);
  EXPECT_EQ(cpu.reg(isa::kT6), 0u);   // 0xff00ff > 0xffff
  EXPECT_EQ(cpu.reg(isa::kT7), 1u);
}

TEST(Cpu, ImmediateForms) {
  Cpu cpu;
  run_program(cpu, R"(
    addiu $t0, $zero, -5
    slti  $t1, $t0, 0
    sltiu $t2, $t0, 10
    andi  $t3, $t0, 0xff
    ori   $t4, $zero, 0x1234
    xori  $t5, $t4, 0xffff
    lui   $t6, 0x8000
    break
  )");
  EXPECT_EQ(cpu.reg(isa::kT0), 0xfffffffbu);
  EXPECT_EQ(cpu.reg(isa::kT1), 1u);
  EXPECT_EQ(cpu.reg(isa::kT2), 0u);  // huge unsigned, not < 10
  EXPECT_EQ(cpu.reg(isa::kT3), 0xfbu);
  EXPECT_EQ(cpu.reg(isa::kT4), 0x1234u);
  EXPECT_EQ(cpu.reg(isa::kT5), 0xedcbu);
  EXPECT_EQ(cpu.reg(isa::kT6), 0x80000000u);
}

TEST(Cpu, Shifts) {
  Cpu cpu;
  run_program(cpu, R"(
    li $s0, 0x80000001
    sll $t0, $s0, 4
    srl $t1, $s0, 4
    sra $t2, $s0, 4
    li $s1, 8
    sllv $t3, $s0, $s1
    srlv $t4, $s0, $s1
    srav $t5, $s0, $s1
    break
  )");
  EXPECT_EQ(cpu.reg(isa::kT0), 0x00000010u);
  EXPECT_EQ(cpu.reg(isa::kT1), 0x08000000u);
  EXPECT_EQ(cpu.reg(isa::kT2), 0xf8000000u);
  EXPECT_EQ(cpu.reg(isa::kT3), 0x00000100u);
  EXPECT_EQ(cpu.reg(isa::kT4), 0x00800000u);
  EXPECT_EQ(cpu.reg(isa::kT5), 0xff800000u);
}

TEST(Cpu, MemoryAccessAllSizes) {
  Cpu cpu;
  run_program(cpu, R"(
    li $s3, 0x1000
    li $s0, 0xdeadbeef
    sw $s0, 0($s3)
    lw $t0, 0($s3)
    lb $t1, 0($s3)      # 0xef sign-extended
    lbu $t2, 1($s3)     # 0xbe
    lh $t3, 2($s3)      # 0xdead sign-extended
    lhu $t4, 0($s3)     # 0xbeef
    li $s1, 0x12
    sb $s1, 3($s3)
    lw $t5, 0($s3)
    li $s2, 0x7777
    sh $s2, 0($s3)
    lw $t6, 0($s3)
    break
  )");
  EXPECT_EQ(cpu.reg(isa::kT0), 0xdeadbeefu);
  EXPECT_EQ(cpu.reg(isa::kT1), 0xffffffefu);
  EXPECT_EQ(cpu.reg(isa::kT2), 0xbeu);
  EXPECT_EQ(cpu.reg(isa::kT3), 0xffffdeadu);
  EXPECT_EQ(cpu.reg(isa::kT4), 0xbeefu);
  EXPECT_EQ(cpu.reg(isa::kT5), 0x12adbeefu);
  EXPECT_EQ(cpu.reg(isa::kT6), 0x12ad7777u);
}

TEST(Cpu, BranchDelaySlotExecutes) {
  Cpu cpu;
  run_program(cpu, R"(
    li $t0, 1
    beq $zero, $zero, target
    li $t1, 2          # delay slot: must execute
    li $t2, 3          # skipped
  target:
    break
  )");
  EXPECT_EQ(cpu.reg(isa::kT0), 1u);
  EXPECT_EQ(cpu.reg(isa::kT1), 2u);
  EXPECT_EQ(cpu.reg(isa::kT2), 0u);
}

TEST(Cpu, LoopWithCounter) {
  Cpu cpu;
  const ExecStats stats = run_program(cpu, R"(
    li $s4, 10
    add $t0, $zero, $zero
    add $s2, $zero, $zero
  loop:
    addiu $s2, $s2, 3
    addiu $t0, $t0, 1
    bne $s4, $t0, loop
    nop                 # delay slot
    break
  )");
  EXPECT_EQ(cpu.reg(isa::kT0), 10u);
  EXPECT_EQ(cpu.reg(isa::kS2), 30u);
  // 3 setup + 10*(4 loop) + break = 44 instructions.
  EXPECT_EQ(stats.instructions, 44u);
}

TEST(Cpu, JalAndJr) {
  Cpu cpu;
  run_program(cpu, R"(
    jal func
    nop
    li $t1, 7
    break
  func:
    li $t0, 5
    jr $ra
    nop
  )");
  EXPECT_EQ(cpu.reg(isa::kT0), 5u);
  EXPECT_EQ(cpu.reg(isa::kT1), 7u);
  EXPECT_EQ(cpu.reg(isa::kRa), 8u);  // jal at 0 -> return to 8
}

TEST(Cpu, MultDivSemantics) {
  Cpu cpu;
  run_program(cpu, R"(
    li $s0, -6
    li $s1, 7
    mult $s0, $s1
    mflo $t0            # -42
    mfhi $t1            # sign bits
    li $s2, 100
    li $s3, 7
    divu $s2, $s3
    mflo $t2            # 14
    mfhi $t3            # 2
    li $s4, -100
    div $s4, $s3
    mflo $t4            # -14
    mfhi $t5            # -2
    multu $s1, $s1
    mflo $t6            # 49
    break
  )");
  EXPECT_EQ(cpu.reg(isa::kT0), static_cast<std::uint32_t>(-42));
  EXPECT_EQ(cpu.reg(isa::kT1), 0xffffffffu);
  EXPECT_EQ(cpu.reg(isa::kT2), 14u);
  EXPECT_EQ(cpu.reg(isa::kT3), 2u);
  EXPECT_EQ(cpu.reg(isa::kT4), static_cast<std::uint32_t>(-14));
  EXPECT_EQ(cpu.reg(isa::kT5), static_cast<std::uint32_t>(-2));
  EXPECT_EQ(cpu.reg(isa::kT6), 49u);
}

TEST(Cpu, MultHiBits) {
  Cpu cpu;
  run_program(cpu, R"(
    li $s0, 0x10000
    li $s1, 0x10000
    multu $s0, $s1
    mfhi $t0
    mflo $t1
    break
  )");
  EXPECT_EQ(cpu.reg(isa::kT0), 1u);
  EXPECT_EQ(cpu.reg(isa::kT1), 0u);
}

TEST(Cpu, DivLatencyChargesCycles) {
  Cpu cpu;  // div_cycles = 32 default
  const ExecStats with_wait = run_program(cpu, R"(
    li $s0, 100
    li $s1, 7
    divu $s0, $s1
    mflo $t0          # must wait ~32 cycles
    break
  )");
  // 5 instructions + ~32 wait cycles.
  EXPECT_GT(with_wait.cpu_cycles, 32u);
  EXPECT_LT(with_wait.cpu_cycles, 45u);

  const ExecStats without_read = run_program(cpu, R"(
    li $s0, 100
    li $s1, 7
    divu $s0, $s1
    break
  )");
  EXPECT_LT(without_read.cpu_cycles, 10u);
}

TEST(Cpu, LoadUseHazardStallsOneCycle) {
  Cpu cpu;
  const ExecStats hazard = run_program(cpu, R"(
    li $s3, 0x1000
    lw $t0, 0($s3)
    addu $t1, $t0, $t0   # load-use: 1 stall
    break
  )");
  EXPECT_EQ(hazard.pipeline_stall_cycles, 1u);

  const ExecStats clean = run_program(cpu, R"(
    li $s3, 0x1000
    lw $t0, 0($s3)
    nop                  # scheduled away
    addu $t1, $t0, $t0
    break
  )");
  EXPECT_EQ(clean.pipeline_stall_cycles, 0u);
}

TEST(Cpu, NoForwardingNeedsMoreStalls) {
  CpuConfig config;
  config.forwarding = false;
  Cpu cpu(config);
  const ExecStats stats = run_program(cpu, R"(
    li $s0, 1
    addu $t0, $s0, $s0   # RAW distance 1 -> 2 stalls
    addu $t1, $t0, $t0   # RAW distance 1 -> 2 stalls
    break
  )");
  EXPECT_GE(stats.pipeline_stall_cycles, 4u);

  Cpu fwd;  // forwarding on: same program, zero stalls
  const ExecStats stats2 = run_program(fwd, R"(
    li $s0, 1
    addu $t0, $s0, $s0
    addu $t1, $t0, $t0
    break
  )");
  EXPECT_EQ(stats2.pipeline_stall_cycles, 0u);
}

TEST(Cpu, CacheMissesChargeMemoryStalls) {
  CpuConfig config;
  config.icache = {.enabled = true, .line_words = 4, .lines = 16,
                   .miss_penalty = 20};
  config.dcache = {.enabled = true, .line_words = 4, .lines = 16,
                   .miss_penalty = 20};
  Cpu cpu(config);
  const ExecStats stats = run_program(cpu, R"(
    li $s3, 0x1000
    lw $t0, 0($s3)
    lw $t1, 4($s3)     # same line: hit
    lw $t2, 8($s3)
    break
  )");
  EXPECT_EQ(stats.dcache_misses, 1u);  // one line fill covers 4 words
  EXPECT_GT(stats.icache_misses, 0u);
  EXPECT_EQ(stats.memory_stall_cycles,
            (stats.icache_misses + stats.dcache_misses) * 20);
}

TEST(Cpu, TemporalLocalityLoopHasLowInstructionMissRate) {
  CpuConfig config;
  config.icache = {.enabled = true, .line_words = 4, .lines = 64,
                   .miss_penalty = 20};
  Cpu cpu(config);
  const ExecStats stats = run_program(cpu, R"(
    li $s4, 100
    add $t0, $zero, $zero
  loop:
    addiu $t0, $t0, 1
    bne $s4, $t0, loop
    nop
    break
  )");
  // The compact loop fits in cache: only compulsory misses.
  EXPECT_LT(static_cast<double>(stats.icache_misses) /
                static_cast<double>(stats.icache_accesses),
            0.02);
}

TEST(Cpu, RegisterZeroStaysZero) {
  Cpu cpu;
  run_program(cpu, R"(
    li $t0, 5
    addu $zero, $t0, $t0
    break
  )");
  EXPECT_EQ(cpu.reg(0), 0u);
}

TEST(Cpu, MaxInstructionLimitStopsRunaway) {
  Cpu cpu;
  const isa::Program p = assemble("loop: b loop\nnop\n");
  cpu.reset();
  cpu.load(p);
  const ExecStats stats = cpu.run(0, 1000);
  EXPECT_FALSE(stats.halted);
  EXPECT_EQ(stats.instructions, 1000u);
}

TEST(Cpu, IllegalInstructionThrows) {
  Cpu cpu;
  cpu.reset();
  cpu.write_word(0, 0xffffffffu);
  EXPECT_THROW(cpu.run(0), CpuError);
}

TEST(Cpu, MisalignedAccessThrows) {
  Cpu cpu;
  EXPECT_THROW(run_program(cpu, R"(
    li $s3, 0x1001
    lw $t0, 0($s3)
  )"),
               CpuError);
}

// ---- hooks -----------------------------------------------------------------

struct RecordingHooks : CpuHooks {
  std::vector<std::tuple<rtlgen::AluOp, std::uint32_t, std::uint32_t>> alu;
  std::vector<std::tuple<rtlgen::ShiftOp, std::uint32_t, std::uint32_t>> shifts;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> mults;
  std::vector<std::pair<std::uint8_t, std::uint8_t>> control;
  std::size_t mem_events = 0;
  std::size_t regfile_events = 0;

  void on_alu(rtlgen::AluOp op, std::uint32_t a, std::uint32_t b) override {
    alu.emplace_back(op, a, b);
  }
  void on_shift(rtlgen::ShiftOp op, std::uint32_t v,
                std::uint32_t s) override {
    shifts.emplace_back(op, v, s);
  }
  void on_mult(std::uint32_t a, std::uint32_t b) override {
    mults.emplace_back(a, b);
  }
  void on_control(std::uint8_t opcode, std::uint8_t funct) override {
    control.emplace_back(opcode, funct);
  }
  void on_mem(std::uint32_t, std::uint32_t, rtlgen::MemSize, bool, bool,
              std::uint32_t) override {
    ++mem_events;
  }
  void on_regfile(std::uint8_t, std::uint32_t, bool, std::uint8_t,
                  std::uint8_t) override {
    ++regfile_events;
  }
};

TEST(CpuHooksTest, TracesComponentOperands) {
  Cpu cpu;
  RecordingHooks hooks;
  cpu.set_hooks(&hooks);
  run_program(cpu, R"(
    li $s0, 10
    li $s1, 3
    addu $t0, $s0, $s1
    sll $t1, $s0, 2
    mult $s0, $s1
    sw $t0, 0x100($zero)
    break
  )");
  // li assembles to ori (ALU kOr), then the explicit addu, then the store's
  // address add — the shared ALU sees them all, like Plasma's.
  ASSERT_EQ(hooks.alu.size(), 4u);
  EXPECT_EQ(hooks.alu[0], std::make_tuple(rtlgen::AluOp::kOr, 0u, 10u));
  EXPECT_EQ(hooks.alu[2], std::make_tuple(rtlgen::AluOp::kAdd, 10u, 3u));
  EXPECT_EQ(hooks.alu[3], std::make_tuple(rtlgen::AluOp::kAdd, 0u, 0x100u));
  ASSERT_EQ(hooks.shifts.size(), 1u);
  EXPECT_EQ(hooks.shifts[0], std::make_tuple(rtlgen::ShiftOp::kSll, 10u, 2u));
  ASSERT_EQ(hooks.mults.size(), 1u);
  EXPECT_EQ(hooks.mults[0], std::make_pair(10u, 3u));
  EXPECT_EQ(hooks.mem_events, 1u);
  EXPECT_EQ(hooks.regfile_events, 7u);  // one per retired instruction
  EXPECT_EQ(hooks.control.size(), 7u);
}

struct AluCorruptor : CpuHooks {
  std::optional<std::uint32_t> alu_result(rtlgen::AluOp op, std::uint32_t a,
                                          std::uint32_t b) override {
    if (op == rtlgen::AluOp::kAdd) {
      return rtlgen::alu_ref(op, a, b) ^ 1u;  // flip LSB of every add
    }
    return std::nullopt;
  }
};

TEST(CpuHooksTest, ResultOverrideInjectsFaultyBehaviour) {
  Cpu cpu;
  AluCorruptor corruptor;
  cpu.set_hooks(&corruptor);
  run_program(cpu, R"(
    li $s0, 10
    li $s1, 3
    addu $t0, $s0, $s1
    break
  )");
  EXPECT_EQ(cpu.reg(isa::kT0), 12u);  // 13 with flipped LSB
}

}  // namespace
}  // namespace sbst::sim
