// Conformance corpus: generation determinism, serialization round trips,
// corrupted-corpus rejection, the three-executor differential harness, the
// watchdog boundary classification, and the corpus-as-TPG excitation hook.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "conform/case.hpp"
#include "conform/excite.hpp"
#include "conform/gen.hpp"
#include "conform/json.hpp"
#include "conform/runner.hpp"
#include "core/inject.hpp"
#include "core/session.hpp"
#include "isa/encoding.hpp"
#include "sim/exec.hpp"

namespace sbst::conform {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const fs::path& p, const std::string& body) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out << body;
}

fs::path temp_dir(const char* leaf) {
  const fs::path dir = fs::path(::testing::TempDir()) / leaf;
  fs::remove_all(dir);
  return dir;
}

TEST(Gen, SeedDeterminismPerCase) {
  const CaseGen gen({.seed = 5, .count = 110});
  const Corpus corpus = gen.generate();
  ASSERT_EQ(corpus.cases.size(), 110u);
  // Case i regenerated standalone equals the batch result: each case lives
  // on its own golden-ratio RNG stream, untouched by the other cases.
  for (std::size_t i = 0; i < corpus.cases.size(); ++i) {
    EXPECT_EQ(gen.make_case(i), corpus.cases[i]) << "case " << i;
  }
  // A second generator with the same options is byte-identical.
  const Corpus again = CaseGen({.seed = 5, .count = 110}).generate();
  ASSERT_EQ(again.cases.size(), corpus.cases.size());
  for (std::size_t i = 0; i < corpus.cases.size(); ++i) {
    EXPECT_EQ(write_case(again.cases[i]), write_case(corpus.cases[i]));
  }
  EXPECT_EQ(corpus_content_hash(again), corpus_content_hash(corpus));
}

TEST(Gen, CaseBytesIndependentOfBatchSizeAndThreads) {
  // The first 30 cases of a 110-case corpus are bitwise the cases of a
  // 30-case corpus: no cross-case stream perturbation.
  const Corpus small = CaseGen({.seed = 21, .count = 30}).generate();
  const Corpus big = CaseGen({.seed = 21, .count = 110}).generate();
  for (std::size_t i = 0; i < small.cases.size(); ++i) {
    EXPECT_EQ(small.cases[i], big.cases[i]) << "case " << i;
  }
  // SBST_THREADS must not leak into generation.
  ::setenv("SBST_THREADS", "4", 1);
  const Corpus threaded = CaseGen({.seed = 21, .count = 30}).generate();
  ::unsetenv("SBST_THREADS");
  for (std::size_t i = 0; i < small.cases.size(); ++i) {
    EXPECT_EQ(write_case(threaded.cases[i]), write_case(small.cases[i]));
  }
}

TEST(Case, JsonLineRoundTrip) {
  const Corpus corpus = CaseGen({.seed = 2, .count = 110}).generate();
  for (const ConformCase& c : corpus.cases) {
    EXPECT_EQ(parse_case(write_case(c)), c) << c.name;
  }
}

TEST(Case, SaveLoadRoundTripAndByteStability) {
  const Corpus corpus = CaseGen({.seed = 4, .count = 110}).generate();
  const fs::path a = temp_dir("conform_rt_a");
  const fs::path b = temp_dir("conform_rt_b");
  save_corpus(corpus, a.string());
  save_corpus(corpus, b.string());
  // Two saves of the same corpus produce byte-identical directories.
  for (const auto& entry : fs::directory_iterator(a)) {
    const fs::path name = entry.path().filename();
    EXPECT_EQ(read_file(entry.path()), read_file(b / name)) << name;
  }

  const Corpus loaded = load_corpus(a.string());
  EXPECT_EQ(loaded.version, corpus.version);
  EXPECT_EQ(loaded.seed, corpus.seed);
  ASSERT_EQ(loaded.cases.size(), corpus.cases.size());
  EXPECT_EQ(corpus_content_hash(loaded), corpus_content_hash(corpus));
  // Loading groups cases per class file; match them back by name.
  for (const ConformCase& lc : loaded.cases) {
    bool found = false;
    for (const ConformCase& c : corpus.cases) {
      if (c.name == lc.name) {
        EXPECT_EQ(lc, c);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << lc.name;
  }
  // A reloaded corpus saves back byte-identically (idempotent round trip).
  const fs::path c2 = temp_dir("conform_rt_c");
  save_corpus(loaded, c2.string());
  for (const auto& entry : fs::directory_iterator(a)) {
    const fs::path name = entry.path().filename();
    EXPECT_EQ(read_file(entry.path()), read_file(c2 / name)) << name;
  }
}

TEST(Case, LoadRejectsCorruption) {
  const Corpus corpus = CaseGen({.seed = 6, .count = 55}).generate();
  const fs::path dir = temp_dir("conform_corrupt");
  save_corpus(corpus, dir.string());

  // Tampering with one case byte must fail the content-hash check.
  {
    const fs::path victim = dir / (corpus.cases[0].cls + ".json");
    std::string body = read_file(victim);
    const std::size_t pos = body.find("\"seed\":");
    ASSERT_NE(pos, std::string::npos);
    body[pos + 7] = body[pos + 7] == '1' ? '2' : '1';
    write_file(victim, body);
    EXPECT_THROW(load_corpus(dir.string()), ConformError);
    save_corpus(corpus, dir.string());  // restore
  }
  // Unsupported manifest version.
  {
    std::string manifest = read_file(dir / "corpus.json");
    const std::size_t pos = manifest.find("\"v1\"");
    ASSERT_NE(pos, std::string::npos);
    manifest.replace(pos, 4, "\"v9\"");
    write_file(dir / "corpus.json", manifest);
    EXPECT_THROW(load_corpus(dir.string()), ConformError);
    save_corpus(corpus, dir.string());
  }
  // Missing case file.
  {
    fs::remove(dir / (corpus.cases[0].cls + ".json"));
    EXPECT_THROW(load_corpus(dir.string()), ConformError);
    save_corpus(corpus, dir.string());
  }
  // Syntactically broken case file.
  {
    write_file(dir / (corpus.cases[0].cls + ".json"), "{\"class\":");
    EXPECT_THROW(load_corpus(dir.string()), ConformError);
  }
  // Missing directory.
  EXPECT_THROW(load_corpus((dir / "nope").string()), ConformError);
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW(json_parse("{"), JsonError);
  EXPECT_THROW(json_parse(""), JsonError);
  EXPECT_THROW(json_parse("{} trailing"), JsonError);
  EXPECT_THROW(json_parse("{\"a\":1,}"), JsonError);
  EXPECT_THROW(json_parse("[1, 2"), JsonError);
  EXPECT_THROW(json_parse("-1"), JsonError);       // unsigned-only numbers
  EXPECT_THROW(json_parse("1.5"), JsonError);
  EXPECT_THROW(json_parse("1e3"), JsonError);
  EXPECT_THROW(json_parse("\"\\x\""), JsonError);  // unsupported escape
  EXPECT_THROW(json_parse("99999999999999999999999"), JsonError);
  // Depth bomb.
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  EXPECT_THROW(json_parse(deep), JsonError);

  EXPECT_THROW(parse_case("not json at all"), ConformError);
  EXPECT_THROW(parse_case("{\"name\":\"x\"}"), ConformError);  // missing keys
  EXPECT_THROW(parse_case("{\"name\":17}"), ConformError);     // ill-typed
}

TEST(Runner, DifferentialPassAcrossThreeExecutors) {
  const Corpus corpus = CaseGen({.seed = 3, .count = 550}).generate();
  const ConformReport report = ConformRunner().run(corpus);
  for (const CaseFailure& f : report.failures) {
    ADD_FAILURE() << f.name << " [" << executor_name(f.exec)
                  << "]: " << f.detail;
  }
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.cases, 550u);
  EXPECT_EQ(report.passed, 550u);
  std::size_t tallied = 0;
  for (const ClassTally& t : report.by_class) {
    EXPECT_EQ(t.cases, t.pass + t.fail);
    tallied += t.cases;
  }
  EXPECT_EQ(tallied, report.cases);
}

TEST(Runner, TrapCasesAgreeOnAllExecutors) {
  const Corpus corpus = CaseGen({.seed = 8, .count = 220}).generate();
  std::size_t traps = 0;
  for (const ConformCase& c : corpus.cases) {
    if (c.trap.empty()) continue;
    ++traps;
    for (const Executor exec :
         {Executor::kInterpreter, Executor::kDecoded, Executor::kGuarded}) {
      const Replay r = replay_case(c, exec);
      EXPECT_EQ(r.trap, c.trap) << c.name << " on " << executor_name(exec);
    }
    EXPECT_EQ(replay_case(c, Executor::kGuarded).stop,
              sim::StopReason::kTrap)
        << c.name;
  }
  EXPECT_GT(traps, 0u);  // the misaligned class guarantees trap cases
}

TEST(Runner, SessionDecodedCacheServesReplay) {
  core::ProcessorModel model;
  core::GradingSession session(model);
  const Corpus corpus = CaseGen({.seed = 12, .count = 110}).generate();
  const ConformReport report = ConformRunner(&session).run(corpus);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.cases, 110u);
  // Session-backed and session-less replays classify identically.
  const ConformReport plain = ConformRunner().run(corpus);
  EXPECT_EQ(plain.passed, report.passed);
  EXPECT_EQ(plain.failed, report.failed);
}

// The ISSUE acceptance check: 10,000 generated cases replay
// bitwise-identical across all three executors.
TEST(Runner, TenThousandCasesReplayIdentically) {
  const Corpus corpus = CaseGen({.seed = 9, .count = 10000}).generate();
  const ConformReport report = ConformRunner().run(corpus);
  for (const CaseFailure& f : report.failures) {
    ADD_FAILURE() << f.name << " [" << executor_name(f.exec)
                  << "]: " << f.detail;
  }
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.passed, 10000u);
}

TEST(Watchdog, FloorBudgetsAtFactorEight) {
  sim::ExecStats tiny;
  tiny.instructions = 1;
  tiny.cpu_cycles = 1;
  const sim::RunBudget budget = core::run_budget_for(tiny, 8.0, {});
  EXPECT_EQ(budget.max_instructions, 1u << 12);
  EXPECT_EQ(budget.max_cycles, 1u << 14);
  EXPECT_EQ(budget.max_stores, 64u);
}

// A run landing exactly on RunBudget::max_instructions: halting on the
// budget's last instruction is a clean kHalted; needing one more is the
// watchdog firing — classified detected_hang, never infra_error.
TEST(Watchdog, BudgetBoundaryClassifiesAsHangNotInfraError) {
  // Good-run stats chosen so the scaled instruction budget lands exactly on
  // the 1<<12 floor while the cycle budget stays slack (a nop costs several
  // total cycles, so floor cycles would otherwise fire first).
  sim::ExecStats good;
  good.instructions = 512;   // x8 = 4096 = the instruction floor
  good.cpu_cycles = 100000;  // x8 cycles: far above the boundary runs
  const sim::RunBudget budget = core::run_budget_for(good, 8.0, {});
  const std::uint64_t n = budget.max_instructions;
  ASSERT_EQ(n, 1u << 12);

  const auto run_nops = [&](std::uint64_t nops) {
    isa::Program image;
    image.base = 0;
    image.words.assign(nops, isa::nop());
    image.words.push_back(isa::brk());
    sim::Cpu cpu;
    cpu.reset();
    cpu.load(image);
    sim::NoSink sink;
    return cpu.run_guarded(0, sink, budget);
  };

  // break retires as instruction `n` exactly: clean completion.
  const sim::GuardedResult at = run_nops(n - 1);
  EXPECT_EQ(at.reason, sim::StopReason::kHalted);
  EXPECT_EQ(at.stats.instructions, n);
  EXPECT_TRUE(at.stats.halted);
  EXPECT_EQ(core::classify_stop(at.reason, true), core::RunOutcome::kOkMatch);

  // break would be instruction n+1: the watchdog fires at the boundary.
  const sim::GuardedResult over = run_nops(n);
  EXPECT_EQ(over.reason, sim::StopReason::kInstructionBudget);
  EXPECT_EQ(over.stats.instructions, n);
  EXPECT_FALSE(over.stats.halted);
  const core::RunOutcome outcome = core::classify_stop(over.reason, true);
  EXPECT_EQ(outcome, core::RunOutcome::kDetectedHang);
  EXPECT_NE(outcome, core::RunOutcome::kInfraError);
}

TEST(Watchdog, ClassifyStopCoversEveryStopReason) {
  using core::RunOutcome;
  using core::classify_stop;
  using sim::StopReason;
  EXPECT_EQ(classify_stop(StopReason::kHalted, true), RunOutcome::kOkMatch);
  EXPECT_EQ(classify_stop(StopReason::kHalted, false),
            RunOutcome::kDetectedMismatch);
  EXPECT_EQ(classify_stop(StopReason::kInstructionBudget, true),
            RunOutcome::kDetectedHang);
  EXPECT_EQ(classify_stop(StopReason::kCycleBudget, true),
            RunOutcome::kDetectedHang);
  EXPECT_EQ(classify_stop(StopReason::kStoreBudget, true),
            RunOutcome::kDetectedHang);
  EXPECT_EQ(classify_stop(StopReason::kWildStore, true),
            RunOutcome::kDetectedWildStore);
  EXPECT_EQ(classify_stop(StopReason::kTrap, true),
            RunOutcome::kDetectedTrap);
}

TEST(Excite, CorpusPreStatesFeedHiddenComponents) {
  core::ProcessorModel model;
  const Corpus corpus = CaseGen({.seed = 13, .count = 110}).generate();
  const CorpusExcitation excite(model, corpus);
  // The hidden forwarding unit and the M-VC branch adder both receive
  // excitation patterns from corpus replay — components no generated
  // routine targets directly.
  EXPECT_GT(excite.patterns(core::CutId::kForwarding).size(), 0u);
  EXPECT_GT(excite.patterns(core::CutId::kBranchAdder).size(), 0u);
  EXPECT_GT(excite.patterns(core::CutId::kAlu).size(), 0u);
  // Sequential-stimulus components have no combinational pattern stream.
  EXPECT_THROW(excite.patterns(core::CutId::kDivider), ConformError);
}

}  // namespace
}  // namespace sbst::conform
