// Nop-insertion scheduling for pipelines without forwarding (paper §3.3).
#include <gtest/gtest.h>

#include "core/program.hpp"
#include "core/schedule.hpp"
#include "sim/cpu.hpp"

namespace sbst::core {
namespace {

TEST(Schedule, InsertsNopsForCloseDependences) {
  const ScheduleResult r = insert_nops_for_no_forwarding(
      "  li   $s0, 5\n"
      "  addu $t0, $s0, $s0\n"   // distance 1 -> needs 2 nops
      "  addu $t1, $t0, $zero\n" // distance 1 -> needs 2 nops
      "  break\n");
  EXPECT_EQ(r.nops_inserted, 4u);
}

TEST(Schedule, LeavesIndependentCodeAlone) {
  const std::string source =
      "  li   $s0, 5\n"
      "  li   $s1, 6\n"
      "  li   $s2, 7\n"
      "  addu $t0, $s0, $zero\n";  // s0 written 3 before: fine
  const ScheduleResult r = insert_nops_for_no_forwarding(source);
  EXPECT_EQ(r.nops_inserted, 0u);
  EXPECT_EQ(r.assembly, source);
}

TEST(Schedule, NeverSplitsBranchFromDelaySlot) {
  const ScheduleResult r = insert_nops_for_no_forwarding(
      "  li   $s0, 1\n"
      "  beq  $s0, $zero, skip\n"  // reads $s0 at distance 1
      "  addu $t0, $zero, $zero\n"
      "skip:\n"
      "  break\n");
  EXPECT_GT(r.nops_inserted, 0u);
  // The nops go before the branch; the slot stays glued to it.
  const std::size_t branch_at = r.assembly.find("beq");
  const std::size_t slot_at = r.assembly.find("addu");
  ASSERT_NE(branch_at, std::string::npos);
  ASSERT_NE(slot_at, std::string::npos);
  const std::string between =
      r.assembly.substr(branch_at, slot_at - branch_at);
  EXPECT_EQ(between.find("nop"), std::string::npos);
}

TEST(Schedule, DelaySlotHazardHoistsNopsAboveBranch) {
  const ScheduleResult r = insert_nops_for_no_forwarding(
      "  li   $s0, 1\n"
      "  b    skip\n"
      "  addu $t0, $s0, $s0\n"  // slot reads $s0 (distance 2 incl. branch)
      "skip:\n"
      "  break\n");
  EXPECT_GE(r.nops_inserted, 1u);
}

TEST(Schedule, ZeroRegisterNeverHazards) {
  const ScheduleResult r = insert_nops_for_no_forwarding(
      "  addu $zero, $s0, $s1\n"
      "  addu $t0, $zero, $zero\n");
  EXPECT_EQ(r.nops_inserted, 0u);
}

class NoForwardingRoutine : public ::testing::TestWithParam<int> {};

TEST_P(NoForwardingRoutine, ScheduledProgramIsStallFreeWithoutForwarding) {
  static ProcessorModel model;
  CodegenOptions opts;
  auto make = [&](const CodegenOptions& o) -> Routine {
    switch (GetParam()) {
      case 0: return make_alu_routine(o);
      case 1: return make_multiplier_routine(o);
      case 2: return make_divider_routine(o);
      case 3: return make_memctrl_routine(o);
      default: return make_control_routine(o);
    }
  };

  // Reference signatures: plain build on the forwarding CPU.
  TestProgramBuilder plain(opts);
  const TestProgram p_fw = plain.build_standalone(make(opts));
  sim::Cpu fw_cpu;
  fw_cpu.reset();
  fw_cpu.load(p_fw.image);
  ASSERT_TRUE(fw_cpu.run(p_fw.entry).halted);

  // Scheduled build on the no-forwarding CPU.
  CodegenOptions scheduled = opts;
  scheduled.schedule_for_no_forwarding = true;
  TestProgramBuilder sched(scheduled);
  const TestProgram p_nf = sched.build_standalone(make(opts));
  sim::CpuConfig cfg;
  cfg.forwarding = false;
  sim::Cpu nf_cpu(cfg);
  nf_cpu.reset();
  nf_cpu.load(p_nf.image);
  const sim::ExecStats s = nf_cpu.run(p_nf.entry);
  ASSERT_TRUE(s.halted);
  EXPECT_EQ(s.pipeline_stall_cycles, 0u);  // the paper's nop remark, honoured
  // Nops are architecturally transparent: identical signatures.
  for (unsigned slot = 0; slot < kSignatureSlots; ++slot) {
    EXPECT_EQ(nf_cpu.read_word(p_nf.signature_address(slot)),
              fw_cpu.read_word(p_fw.signature_address(slot)))
        << "slot " << slot;
  }
  // And the unscheduled program on the same machine does stall.
  sim::Cpu unscheduled(cfg);
  unscheduled.reset();
  unscheduled.load(p_fw.image);
  EXPECT_GT(unscheduled.run(p_fw.entry).pipeline_stall_cycles, 0u);
}

std::string routine_name(const ::testing::TestParamInfo<int>& info) {
  static const char* names[] = {"alu", "mul", "div", "mem", "ctrl"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(Routines, NoForwardingRoutine,
                         ::testing::Values(0, 1, 2, 3, 4), routine_name);

}  // namespace
}  // namespace sbst::core
