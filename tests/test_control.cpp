// Control decoder netlist vs the golden decoder, over the full 12-bit
// (opcode, funct) space — the netlist is generated from the golden decoder,
// so this guards the generator's match-term and OR-plane construction.
#include <gtest/gtest.h>

#include "netlist/eval.hpp"
#include "rtlgen/alu.hpp"
#include "rtlgen/control.hpp"
#include "rtlgen/memctrl.hpp"
#include "rtlgen/shifter.hpp"

namespace sbst::rtlgen {
namespace {

using netlist::Evaluator;
using netlist::Netlist;

ControlWord read_control(const Netlist& nl, Evaluator& ev) {
  auto bit = [&](const char* name) {
    return (ev.value(nl.output_port(name)[0]) & 1u) != 0;
  };
  auto bus = [&](const char* name) {
    return static_cast<std::uint8_t>(ev.bus_value(nl.output_port(name)));
  };
  ControlWord w;
  w.reg_write = bit("reg_write");
  w.reg_dst_rd = bit("reg_dst_rd");
  w.alu_src_imm = bit("alu_src_imm");
  w.imm_zero_ext = bit("imm_zero_ext");
  w.alu_op = bus("alu_op");
  w.is_shift = bit("is_shift");
  w.shift_from_reg = bit("shift_from_reg");
  w.shift_op = bus("shift_op");
  w.mem_read = bit("mem_read");
  w.mem_write = bit("mem_write");
  w.mem_to_reg = bit("mem_to_reg");
  w.mem_size = bus("mem_size");
  w.load_signed = bit("load_signed");
  w.branch_eq = bit("branch_eq");
  w.branch_ne = bit("branch_ne");
  w.jump = bit("jump");
  w.link = bit("link");
  w.jump_reg = bit("jump_reg");
  w.is_lui = bit("is_lui");
  w.mult_start = bit("mult_start");
  w.div_start = bit("div_start");
  w.md_signed = bit("md_signed");
  w.move_from_hi = bit("move_from_hi");
  w.move_from_lo = bit("move_from_lo");
  w.move_to_hi = bit("move_to_hi");
  w.move_to_lo = bit("move_to_lo");
  w.illegal = bit("illegal");
  return w;
}

TEST(Control, NetlistMatchesGoldenDecoderExhaustively) {
  const Netlist nl = build_control();
  Evaluator ev(nl);
  for (unsigned opcode = 0; opcode < 64; ++opcode) {
    for (unsigned funct = 0; funct < 64; ++funct) {
      // Funct is only decoded for R-type; sweeping it everywhere also checks
      // that I/J-type decoding ignores it.
      ev.set_bus(nl.input_port("opcode"), opcode);
      ev.set_bus(nl.input_port("funct"), funct);
      ev.eval();
      const ControlWord got = read_control(nl, ev);
      const ControlWord expect = control_ref(static_cast<std::uint8_t>(opcode),
                                             static_cast<std::uint8_t>(funct));
      EXPECT_EQ(got, expect) << "opcode=" << opcode << " funct=" << funct;
      if (got != expect) return;  // avoid 4096 failure lines
    }
  }
}

TEST(Control, EveryListedInstructionIsLegal) {
  for (const OpcodePair& ins : all_instruction_opcodes()) {
    const ControlWord w = control_ref(ins.opcode, ins.funct);
    EXPECT_FALSE(w.illegal) << ins.mnemonic;
  }
}

TEST(Control, InstructionTableHasNoDuplicates) {
  const auto& table = all_instruction_opcodes();
  for (std::size_t i = 0; i < table.size(); ++i) {
    for (std::size_t j = i + 1; j < table.size(); ++j) {
      EXPECT_FALSE(table[i].opcode == table[j].opcode &&
                   (table[i].opcode != 0 ||
                    table[i].funct == table[j].funct))
          << table[i].mnemonic << " vs " << table[j].mnemonic;
    }
  }
}

TEST(Control, KeyInstructionDecodes) {
  // Spot-check a few semantically rich decodes.
  const ControlWord lw = control_ref(0x23, 0);
  EXPECT_TRUE(lw.mem_read);
  EXPECT_TRUE(lw.mem_to_reg);
  EXPECT_TRUE(lw.reg_write);
  EXPECT_TRUE(lw.alu_src_imm);
  EXPECT_EQ(lw.alu_op, static_cast<std::uint8_t>(AluOp::kAdd));

  const ControlWord sb = control_ref(0x28, 0);
  EXPECT_TRUE(sb.mem_write);
  EXPECT_FALSE(sb.reg_write);
  EXPECT_EQ(sb.mem_size, static_cast<std::uint8_t>(MemSize::kByte));

  const ControlWord sllv = control_ref(0x00, 0x04);
  EXPECT_TRUE(sllv.is_shift);
  EXPECT_TRUE(sllv.shift_from_reg);
  EXPECT_EQ(sllv.shift_op, static_cast<std::uint8_t>(ShiftOp::kSll));

  const ControlWord jal = control_ref(0x03, 0);
  EXPECT_TRUE(jal.jump);
  EXPECT_TRUE(jal.link);
  EXPECT_TRUE(jal.reg_write);

  const ControlWord divu = control_ref(0x00, 0x1b);
  EXPECT_TRUE(divu.div_start);
  EXPECT_FALSE(divu.md_signed);
}

}  // namespace
}  // namespace sbst::rtlgen
