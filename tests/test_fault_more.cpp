// Additional fault-layer coverage: pattern containers across block
// boundaries, collapsing on sequential netlists, result accounting.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "fault/pattern.hpp"
#include "fault/sim.hpp"
#include "rtlgen/divider.hpp"
#include "rtlgen/regfile.hpp"

namespace sbst::fault {
namespace {

using netlist::Netlist;
using netlist::NetId;

TEST(PatternSet, MultiBlockRoundTrip) {
  Netlist nl;
  nl.input_bus("x", 16);
  nl.output_bus("y", nl.input_port("x"));
  PatternSet ps(nl);
  for (std::uint64_t i = 0; i < 200; ++i) {
    ps.add({{"x", i * 37 % 65536}});
  }
  EXPECT_EQ(ps.size(), 200u);
  EXPECT_EQ(ps.block_count(), 4u);  // ceil(200/64)
  for (std::uint64_t i = 0; i < 200; i += 13) {
    EXPECT_EQ(ps.value_of(i, "x"), i * 37 % 65536);
  }
  EXPECT_THROW(ps.value_of(200, "x"), std::out_of_range);
}

TEST(PatternSet, ValidLanesMaskPartialBlocks) {
  Netlist nl;
  nl.input("a");
  nl.output("y", nl.buf(nl.inputs()[0]));
  PatternSet ps(nl);
  for (int i = 0; i < 70; ++i) ps.add({{"a", 1}});
  EXPECT_EQ(ps.valid_lanes(0), ~std::uint64_t{0});
  EXPECT_EQ(ps.valid_lanes(1), 0x3fu);  // 6 patterns in the tail block
}

TEST(PatternSet, UnlistedInputsDefaultToZero) {
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  nl.output("y", nl.or_(a, b));
  PatternSet ps(nl);
  ps.add({{"a", 1}});  // b unspecified
  EXPECT_EQ(ps.value_of(0, "b"), 0u);
}

TEST(SeqStimulus, ObserveCounting) {
  Netlist nl;
  nl.input("a");
  nl.output("y", nl.buf(nl.inputs()[0]));
  SeqStimulus seq(nl);
  seq.add_cycle({{"a", 1}}, false);
  seq.add_cycle({{"a", 0}}, true);
  seq.add_cycle({{"a", 1}}, true);
  EXPECT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq.observe_count(), 2u);
  EXPECT_TRUE(seq.input_bit(0, 0));
  EXPECT_FALSE(seq.input_bit(1, 0));
  EXPECT_FALSE(seq.observed(0));
  EXPECT_TRUE(seq.observed(2));
}

TEST(FaultUniverse, SequentialNetlistsCollapseToo) {
  const Netlist nl = rtlgen::build_divider({.width = 4});
  FaultUniverse u(nl);
  EXPECT_GT(u.uncollapsed_count(), u.size());
  // Every representative site must belong to a real gate/pin.
  for (const Fault& f : u.collapsed()) {
    ASSERT_LT(f.site.gate, nl.size());
    if (!f.site.is_output()) {
      ASSERT_LT(f.site.pin, fanin_count(nl.gate(f.site.gate).kind));
    }
  }
}

TEST(FaultUniverse, CollapseRatioIsSubstantial) {
  // Equivalence collapsing conventionally removes ~40-50% of gate-level
  // faults; our builder-generated structures should be in that regime.
  const Netlist nl = rtlgen::build_regfile({.num_regs = 8, .width = 8});
  FaultUniverse u(nl);
  const double ratio = static_cast<double>(u.size()) /
                       static_cast<double>(u.uncollapsed_count());
  EXPECT_LT(ratio, 0.8);
  EXPECT_GT(ratio, 0.3);
}

TEST(CoverageResult, MergeRejectsMismatchedLists) {
  CoverageResult a, b;
  a.detected_flags.assign(4, 0);
  b.detected_flags.assign(5, 0);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(CoverageResult, UndetectedListsExactlyTheMisses) {
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  nl.output("y", nl.and_(a, b));
  FaultUniverse u(nl);
  PatternSet ps(nl);
  ps.add({{"a", 1}, {"b", 1}});  // catches the sa0 class only
  const CoverageResult res = simulate_comb(nl, u.collapsed(), ps);
  const auto missing = res.undetected(u.collapsed());
  EXPECT_EQ(missing.size(), res.total - res.detected);
  for (const Fault& f : missing) {
    EXPECT_TRUE(f.stuck_value) << fault_name(nl, f);  // all sa1 flavours
  }
}

TEST(FaultSim, SequentialBatchBoundaries) {
  // More than 63 faults forces multiple injection batches; detection
  // results must be identical to grading the same list in two halves.
  const Netlist nl = rtlgen::build_divider({.width = 4});
  FaultUniverse u(nl);
  ASSERT_GT(u.size(), 126u);
  SeqStimulus seq(nl);
  seq.add_cycle({{"start", 1}, {"dividend", 9}, {"divisor", 2}}, false);
  for (int i = 0; i < 4; ++i) seq.add_cycle({{"start", 0}}, false);
  seq.add_cycle({{"start", 0}}, true);

  const CoverageResult whole = simulate_seq(nl, u.collapsed(), seq);
  const std::vector<Fault> first(u.collapsed().begin(),
                                 u.collapsed().begin() + 100);
  const std::vector<Fault> second(u.collapsed().begin() + 100,
                                  u.collapsed().end());
  const CoverageResult r1 = simulate_seq(nl, first, seq);
  const CoverageResult r2 = simulate_seq(nl, second, seq);
  EXPECT_EQ(whole.detected, r1.detected + r2.detected);
}

TEST(FaultSim, ThrowsOnNetlistWithoutOutputs) {
  Netlist nl;
  nl.input("a");
  FaultUniverse u(nl);
  PatternSet ps(nl);
  ps.add({{"a", 1}});
  EXPECT_THROW(simulate_comb(nl, u.collapsed(), ps), std::invalid_argument);
}

TEST(FaultSim, CombEngineRejectsSequentialNetlist) {
  const Netlist nl = rtlgen::build_divider({.width = 4});
  FaultUniverse u(nl);
  PatternSet ps(nl);
  ps.add({{"start", 1}});
  EXPECT_THROW(simulate_comb(nl, u.collapsed(), ps), std::invalid_argument);
  EXPECT_THROW(simulate_serial(nl, u.collapsed(), ps),
               std::invalid_argument);
}

}  // namespace
}  // namespace sbst::fault
