// Decoded micro-op core: encoding round-trips, decode_uop metadata fuzz,
// exec_detail datapath replicas vs the rtlgen golden models, and the
// differential contract — run()/run_sink() must be bitwise-identical to
// run_interpreter() in stats, architectural state, and hook streams.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/evaluate.hpp"
#include "core/inject.hpp"
#include "core/program.hpp"
#include "fault/sim.hpp"
#include "isa/assembler.hpp"
#include "isa/decode.hpp"
#include "isa/disasm.hpp"
#include "isa/encoding.hpp"
#include "rtlgen/alu.hpp"
#include "rtlgen/memctrl.hpp"
#include "rtlgen/shifter.hpp"
#include "sim/cpu.hpp"
#include "sim/exec.hpp"

namespace sbst {
namespace {

// Every encoding the builders can produce, with a pc each is disassembled
// at (branches/jumps print absolute targets).
struct Encoded {
  std::uint32_t word;
  std::uint32_t pc;
};

std::vector<Encoded> builder_words() {
  std::vector<Encoded> out;
  auto at = [&](std::uint32_t word, std::uint32_t pc = 0x40) {
    out.push_back({word, pc});
  };
  at(isa::sll(2, 3, 7));
  at(isa::srl(4, 5, 31));
  at(isa::sra(6, 7, 1));
  at(isa::sllv(8, 9, 10));
  at(isa::srlv(11, 12, 13));
  at(isa::srav(14, 15, 16));
  at(isa::jr(31));
  at(isa::brk());
  at(isa::mfhi(17));
  at(isa::mthi(18));
  at(isa::mflo(19));
  at(isa::mtlo(20));
  at(isa::mult(21, 22));
  at(isa::multu(23, 24));
  at(isa::div(25, 26));
  at(isa::divu(27, 28));
  at(isa::add(1, 2, 3));
  at(isa::addu(4, 5, 6));
  at(isa::sub(7, 8, 9));
  at(isa::subu(10, 11, 12));
  at(isa::and_(13, 14, 15));
  at(isa::or_(16, 17, 18));
  at(isa::xor_(19, 20, 21));
  at(isa::nor_(22, 23, 24));
  at(isa::slt(25, 26, 27));
  at(isa::sltu(28, 29, 30));
  at(isa::beq(1, 2, 5));
  at(isa::bne(3, 4, -3));
  at(isa::addi(5, 6, -42));
  at(isa::addiu(7, 8, 0x7fff));
  at(isa::slti(9, 10, -1));
  at(isa::sltiu(11, 12, 100));
  at(isa::andi(13, 14, 0xf0f0));
  at(isa::ori(15, 16, 0x00ff));
  at(isa::xori(17, 18, 0xffff));
  at(isa::lui(19, 0x8000));
  at(isa::lb(20, -4, 21));
  at(isa::lh(22, 6, 23));
  at(isa::lw(24, 128, 25));
  at(isa::lbu(26, 1, 27));
  at(isa::lhu(28, 2, 29));
  at(isa::sb(30, -8, 1));
  at(isa::sh(2, 10, 3));
  at(isa::sw(4, 0x100, 5));
  at(isa::j(0x50 >> 2));
  at(isa::jal(0x80 >> 2));
  at(isa::nop());
  return out;
}

// Independent reimplementation of the interpreter's operand-read table,
// deliberately written from the spec (not shared with flags_of) so the two
// can disagree.
std::uint8_t expected_flags(std::uint32_t word) {
  const isa::Fields f = isa::decode(word);
  const std::uint8_t rs = isa::kUopReadsRs, rt = isa::kUopReadsRt;
  if (f.opcode == 0x00) {
    if (f.funct == 0x00 || f.funct == 0x02 || f.funct == 0x03) return rt;
    if (f.funct == 0x08 || f.funct == 0x11 || f.funct == 0x13) return rs;
    if (f.funct == 0x10 || f.funct == 0x12 || f.funct == 0x0d) return 0;
    return rs | rt;
  }
  if (f.opcode == 0x02 || f.opcode == 0x03 || f.opcode == 0x0f) return 0;
  if (f.opcode == 0x04 || f.opcode == 0x05) return rs | rt;
  if (f.opcode == 0x28 || f.opcode == 0x29 || f.opcode == 0x2b) return rs | rt;
  return rs;
}

TEST(DecodeRoundTrip, EncodeDecodeEveryBuilderWord) {
  for (const Encoded& e : builder_words()) {
    const isa::Fields f = isa::decode(e.word);
    EXPECT_EQ(isa::encode(f), e.word);
  }
}

TEST(DecodeRoundTrip, DisassembleAssembleEveryBuilderWord) {
  for (const Encoded& e : builder_words()) {
    const std::string text = isa::disassemble(e.word, e.pc);
    isa::Program p;
    ASSERT_NO_THROW(p = isa::assemble("  " + text + "\n", e.pc))
        << "word 0x" << std::hex << e.word << " -> '" << text << "'";
    ASSERT_EQ(p.words.size(), 1u) << text;
    EXPECT_EQ(p.words[0], e.word)
        << "'" << text << "' reassembled differently";
  }
}

TEST(DecodeRoundTrip, RandomWordFieldFuzz) {
  // decode() then encode() must reproduce any word whose unused fields are
  // zero; for arbitrary words, decode(encode(decode(w))) is a fixpoint.
  Rng rng(0xdec0de);
  for (int i = 0; i < 200000; ++i) {
    const std::uint32_t w = rng.next32();
    const isa::Fields f = isa::decode(w);
    const std::uint32_t canonical = isa::encode(f);
    const isa::Fields g = isa::decode(canonical);
    EXPECT_EQ(isa::encode(g), canonical);
    EXPECT_EQ(g.opcode, f.opcode);
    if (f.opcode == 0x00) {
      EXPECT_EQ(g.funct, f.funct);
      EXPECT_EQ(g.rd, f.rd);
      EXPECT_EQ(g.shamt, f.shamt);
    } else if (f.opcode == 0x02 || f.opcode == 0x03) {
      EXPECT_EQ(g.target, f.target);
    } else {
      EXPECT_EQ(g.imm, f.imm);
    }
  }
}

TEST(DecodeRoundTrip, DecodeUopMetadataFuzz) {
  Rng rng(0x00bada55);
  auto check = [](std::uint32_t w) {
    const isa::Fields f = isa::decode(w);
    const isa::MicroOp op = isa::decode_uop(w);
    EXPECT_EQ(op.opcode, f.opcode);
    EXPECT_EQ(op.funct, f.funct);
    EXPECT_EQ(op.rs, f.rs);
    EXPECT_EQ(op.rt, f.rt);
    EXPECT_EQ(op.rd, f.rd);
    EXPECT_EQ(op.shamt, f.shamt);
    EXPECT_EQ(op.flags, expected_flags(w)) << "word 0x" << std::hex << w;
    EXPECT_EQ(op.reads_rs(), (op.flags & isa::kUopReadsRs) != 0);
    EXPECT_EQ(op.reads_rt(), (op.flags & isa::kUopReadsRt) != 0);
  };
  for (const Encoded& e : builder_words()) check(e.word);
  for (int i = 0; i < 200000; ++i) check(rng.next32());
}

TEST(DecodeRoundTrip, ExecDetailMatchesRtlgenGoldenModels) {
  Rng rng(7);
  using rtlgen::AluOp;
  using rtlgen::MemSize;
  using rtlgen::ShiftOp;
  for (int i = 0; i < 100000; ++i) {
    const std::uint32_t a = rng.next32(), b = rng.next32();
    const auto alu_op = static_cast<AluOp>(rng.next32() & 7u);
    EXPECT_EQ(sim::exec_detail::alu32(alu_op, a, b),
              rtlgen::alu_ref(alu_op, a, b));
    const ShiftOp shift_op =
        i % 3 == 0 ? ShiftOp::kSll : i % 3 == 1 ? ShiftOp::kSrl : ShiftOp::kSra;
    const unsigned shamt = rng.next32() & 31u;
    EXPECT_EQ(sim::exec_detail::shift32(shift_op, a, shamt),
              rtlgen::shifter_ref(shift_op, a, shamt));
    const MemSize size = i % 3 == 0   ? MemSize::kByte
                         : i % 3 == 1 ? MemSize::kHalf
                                      : MemSize::kWord;
    const std::uint32_t addr =
        size == MemSize::kHalf ? a & ~1u : size == MemSize::kWord ? a & ~3u : a;
    const bool sign = (rng.next32() & 1u) != 0;
    EXPECT_EQ(sim::exec_detail::load_extract(addr, b, size, sign),
              rtlgen::memctrl_load_ref(addr, b, size, sign));
    // Store path: apply the golden model's byte enables to the old word.
    const rtlgen::MemCtrlRef ref = rtlgen::memctrl_store_ref(addr, b, size,
                                                             true);
    const std::uint32_t old = rng.next32();
    std::uint32_t expected = old;
    for (unsigned lane = 0; lane < 4; ++lane) {
      if (ref.byte_en & (1u << lane)) {
        expected = (expected & ~(0xffu << (8 * lane))) |
                   (ref.mem_wdata & (0xffu << (8 * lane)));
      }
    }
    EXPECT_EQ(sim::exec_detail::store_merge(addr, old, b, size), expected);
  }
}

// ---------------------------------------------------------------------------
// Differential: decoded core vs interpreter, full hook streams included.

// Records every trace event as a flat word stream. Works both as virtual
// CpuHooks (interpreter) and as the sink type of TraceSink (decoded core).
class RecordingHooks final : public sim::CpuHooks {
 public:
  std::vector<std::uint64_t> events;

  void on_instruction_start(std::uint32_t pc) override { put(1, pc); }
  void on_alu(rtlgen::AluOp op, std::uint32_t a, std::uint32_t b) override {
    put(2, static_cast<std::uint64_t>(op), a, b);
  }
  void on_shift(rtlgen::ShiftOp op, std::uint32_t v,
                std::uint32_t s) override {
    put(3, static_cast<std::uint64_t>(op), v, s);
  }
  void on_mult(std::uint32_t a, std::uint32_t b) override { put(4, a, b); }
  void on_div(std::uint32_t a, std::uint32_t b) override { put(5, a, b); }
  void on_regfile(std::uint8_t waddr, std::uint32_t wdata, bool wen,
                  std::uint8_t r1, std::uint8_t r2) override {
    put(6, waddr, wdata, wen, r1, r2);
  }
  void on_mem(std::uint32_t addr, std::uint32_t wdata, rtlgen::MemSize size,
              bool sign, bool wr, std::uint32_t rdata) override {
    put(7, addr, wdata, static_cast<std::uint64_t>(size), sign, wr, rdata);
  }
  void on_control(std::uint8_t opcode, std::uint8_t funct) override {
    put(8, opcode, funct);
  }
  void on_forward(std::uint8_t rs, std::uint8_t rt, std::uint8_t ex_rd,
                  bool ex_wen, std::uint8_t mem_rd, bool mem_wen) override {
    put(9, rs, rt, ex_rd, ex_wen, mem_rd, mem_wen);
  }
  void on_branch_flush() override { put(10); }
  void on_branch_target(std::uint32_t pc4, std::uint32_t off) override {
    put(11, pc4, off);
  }

 private:
  template <class... Args>
  void put(std::uint64_t tag, Args... args) {
    events.push_back(tag);
    (events.push_back(static_cast<std::uint64_t>(args)), ...);
  }
};

bool stats_equal(const sim::ExecStats& a, const sim::ExecStats& b) {
  return a.instructions == b.instructions && a.cpu_cycles == b.cpu_cycles &&
         a.pipeline_stall_cycles == b.pipeline_stall_cycles &&
         a.memory_stall_cycles == b.memory_stall_cycles &&
         a.loads == b.loads && a.stores == b.stores &&
         a.icache_misses == b.icache_misses &&
         a.dcache_misses == b.dcache_misses &&
         a.icache_accesses == b.icache_accesses &&
         a.dcache_accesses == b.dcache_accesses && a.halted == b.halted;
}

// Exercises every uop kind plus the hazard corners: load-use, mult/div
// interlocks, taken/untaken branches (flushing and fall-through targets),
// jal/jr with live delay slots, and sub-word memory traffic.
isa::Program edge_program() {
  return isa::assemble(R"(
  addi  $t0, $zero, 100
  sw    $t0, 0x200($zero)
  lw    $t1, 0x200($zero)
  addu  $t2, $t1, $t1
  mult  $t2, $t2
  mfhi  $t3
  mflo  $t3
  addi  $t0, $zero, -7
  div   $t0, $t2
  mflo  $t3
  beq   $t2, $zero, skipped
  sll   $t3, $t3, 3
  bne   $t2, $zero, taken
  srl   $t3, $t3, 1
skipped:
  addi  $s0, $zero, 11
taken:
  sb    $t3, 0x204($zero)
  lbu   $t2, 0x204($zero)
  sh    $t1, 0x206($zero)
  lh    $t2, 0x206($zero)
  lb    $t4, 0x205($zero)
  lhu   $t4, 0x204($zero)
  lui   $t1, 0x1234
  ori   $t1, $t1, 0x5678
  sltu  $t2, $t0, $t1
  slt   $t4, $t0, $t1
  nor   $t5, $t0, $t1
  xori  $t5, $t5, 0xffff
  andi  $t6, $t5, 0x0f0f
  slti  $t6, $t0, -3
  sltiu $t6, $t0, 10
  sub   $t7, $t1, $t0
  subu  $t7, $t1, $t0
  sra   $t7, $t7, 2
  sllv  $t7, $t7, $t0
  srlv  $t7, $t7, $t0
  srav  $t7, $t7, $t0
  xor   $s1, $t7, $t1
  and   $s1, $s1, $t5
  or    $s1, $s1, $t6
  jal   sub
  addi  $s2, $zero, 5
  j     after
  addi  $s3, $zero, 6
sub:
  mthi  $t0
  mtlo  $t1
  jr    $ra
  addi  $s4, $zero, 7
after:
  multu $t1, $t0
  mflo  $s5
  divu  $t1, $t0
  mflo  $s6
  break
)");
}

struct DiffCase {
  const char* name;
  isa::Program image;
  std::uint32_t entry;
  sim::CpuConfig config;
};

std::vector<DiffCase> differential_cases() {
  core::ProcessorModel model;
  core::TestProgramBuilder builder;
  builder.add_default_routines(model);
  const core::TestProgram sbst = builder.build();

  sim::CpuConfig plain;
  plain.icache.enabled = plain.dcache.enabled = false;
  sim::CpuConfig no_fwd = plain;
  no_fwd.forwarding = false;
  sim::CpuConfig predicted = plain;
  predicted.branch_taken_penalty = 2;
  sim::CpuConfig tiny_caches;
  tiny_caches.icache = {.enabled = true, .line_words = 4, .lines = 16,
                        .miss_penalty = 20};
  tiny_caches.dcache = {.enabled = true, .line_words = 4, .lines = 8,
                        .miss_penalty = 20};
  sim::CpuConfig slow_muldiv = plain;
  slow_muldiv.mult_cycles = 32;
  slow_muldiv.div_cycles = 64;

  std::vector<DiffCase> cases;
  cases.push_back({"sbst_default", sbst.image, sbst.entry, {}});
  cases.push_back({"sbst_tiny_caches", sbst.image, sbst.entry, tiny_caches});
  const isa::Program edge = edge_program();
  cases.push_back({"edge_plain", edge, 0, plain});
  cases.push_back({"edge_no_forwarding", edge, 0, no_fwd});
  cases.push_back({"edge_branch_penalty", edge, 0, predicted});
  cases.push_back({"edge_tiny_caches", edge, 0, tiny_caches});
  cases.push_back({"edge_slow_muldiv", edge, 0, slow_muldiv});
  return cases;
}

TEST(DecodedCoreDifferential, StatsStateAndTraceStreamsMatchInterpreter) {
  for (const DiffCase& c : differential_cases()) {
    SCOPED_TRACE(c.name);

    sim::Cpu ref(c.config);
    RecordingHooks ref_trace;
    ref.set_hooks(&ref_trace);
    ref.load(c.image);
    const sim::ExecStats ref_stats = ref.run_interpreter(c.entry);

    sim::Cpu dec(c.config);
    RecordingHooks dec_trace;
    dec.load(c.image);
    sim::TraceSink<RecordingHooks> sink{&dec_trace};
    const sim::ExecStats dec_stats = dec.run_sink(c.entry, sink);

    EXPECT_TRUE(stats_equal(ref_stats, dec_stats));
    EXPECT_EQ(ref_trace.events, dec_trace.events);
    for (unsigned r = 1; r < 32; ++r) EXPECT_EQ(ref.reg(r), dec.reg(r));
    EXPECT_EQ(ref.hi(), dec.hi());
    EXPECT_EQ(ref.lo(), dec.lo());
    for (std::uint32_t a = c.image.base;
         a < c.image.end_address() + 0x400; a += 4) {
      ASSERT_EQ(ref.read_word(a), dec.read_word(a)) << "addr " << a;
    }

    // And the hook-free paths agree with each other too.
    sim::Cpu ref2(c.config);
    ref2.load(c.image);
    const sim::ExecStats ref2_stats = ref2.run_interpreter(c.entry);
    sim::Cpu dec2(c.config);
    dec2.load(c.image);
    const sim::ExecStats dec2_stats = dec2.run(c.entry);
    EXPECT_TRUE(stats_equal(ref2_stats, dec2_stats));
    for (unsigned r = 1; r < 32; ++r) EXPECT_EQ(ref2.reg(r), dec2.reg(r));
  }
}

TEST(DecodedCoreDifferential, IllegalInstructionsThrowSameMessage) {
  for (std::uint32_t word : {isa::encode({.opcode = 0, .funct = 0x3f}),
                             isa::encode({.opcode = 0x3f})}) {
    isa::Program p;
    p.base = 0;
    p.words = {isa::nop(), word};
    std::string interp_msg, decoded_msg;
    sim::Cpu a;
    a.load(p);
    try {
      a.run_interpreter(0);
    } catch (const sim::CpuError& e) {
      interp_msg = e.what();
    }
    sim::Cpu b;
    b.load(p);
    try {
      b.run(0);
    } catch (const sim::CpuError& e) {
      decoded_msg = e.what();
    }
    EXPECT_FALSE(interp_msg.empty());
    EXPECT_EQ(interp_msg, decoded_msg);
  }
}

TEST(DecodedCoreDifferential, SelfModifyingCodeRepatchesDecodedView) {
  // The program overwrites the instruction at `patch` (addi $t0, 1) with
  // "addi $t0, $zero, 42" loaded from data, then executes it.
  isa::Program p = isa::assemble(R"(
  lw    $t1, data($zero)
  sw    $t1, patch($zero)
  nop
patch:
  addi  $t0, $zero, 1
  break
data:
  .word 0
)");
  p.words[p.symbol("data") / 4] = isa::addi(8, 0, 42);

  sim::Cpu interp;
  interp.load(p);
  const sim::ExecStats si = interp.run_interpreter(0);
  sim::Cpu decoded;
  decoded.load(p);
  const sim::ExecStats sd = decoded.run(0);
  EXPECT_TRUE(stats_equal(si, sd));
  EXPECT_EQ(interp.reg(8), 42u);
  EXPECT_EQ(decoded.reg(8), 42u);

  // A shared predecoded image must never be mutated by the patching run.
  auto shared = std::make_shared<const isa::DecodedProgram>(p);
  sim::Cpu first;
  first.load(p, shared);
  first.run(0);
  EXPECT_EQ(first.reg(8), 42u);
  sim::Cpu second;
  second.load(p, shared);
  second.run(0);
  EXPECT_EQ(second.reg(8), 42u);  // still sees the original image
}

TEST(DecodedCoreDifferential, SessionProgramCachesHitAndStayValid) {
  core::ProcessorModel model;
  core::TestProgramBuilder builder;
  builder.add_default_routines(model);
  const core::TestProgram program = builder.build();

  core::GradingSession session(model, {.num_threads = 1});
  const auto d1 = session.decoded(program.image);
  const auto d2 = session.decoded(program.image);
  EXPECT_EQ(d1.get(), d2.get());
  const core::GoodRun& g1 = session.good_run(program);
  const core::GoodRun& g2 = session.good_run(program);
  EXPECT_EQ(&g1, &g2);
  EXPECT_TRUE(g1.stats.halted);
  EXPECT_EQ(g1.signatures.size(), core::kSignatureSlots);

  // A different CPU configuration is a different good run.
  sim::CpuConfig no_fwd;
  no_fwd.forwarding = false;
  const core::GoodRun& g3 = session.good_run(program, no_fwd);
  EXPECT_NE(&g1, &g3);
  EXPECT_NE(g1.stats.total_cycles(), g3.stats.total_cycles());

  const core::SessionStats st = session.stats();
  EXPECT_EQ(st.decode_builds, 1u);
  EXPECT_GE(st.decode_hits, 1u);
  EXPECT_EQ(st.goodrun_builds, 2u);
  EXPECT_EQ(st.goodrun_hits, 1u);
}

TEST(DecodedCoreDifferential, InjectionCampaignMatchesOracleAcrossThreads) {
  core::ProcessorModel model;
  core::TestProgramBuilder builder;
  builder.add_default_routines(model);
  const core::TestProgram program = builder.build();

  const netlist::Netlist& nl =
      model.component(core::CutId::kMultiplier).netlist;
  std::vector<fault::Fault> faults = fault::FaultUniverse(nl).collapsed();
  if (faults.size() > 6) faults.resize(6);

  // Oracle: the session-less, one-fault-at-a-time form.
  std::vector<core::InjectionOutcome> oracle;
  for (const fault::Fault& f : faults) {
    oracle.push_back(core::run_with_injection(model, program,
                                              core::CutId::kMultiplier, f));
  }

  for (unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(threads);
    core::GradingSession session(model, {.num_threads = threads});
    const std::vector<core::InjectionOutcome> out = run_injection_campaign(
        session, program, core::CutId::kMultiplier, faults);
    ASSERT_EQ(out.size(), oracle.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i].detected, oracle[i].detected) << i;
      EXPECT_EQ(out[i].corrupted_results, oracle[i].corrupted_results) << i;
      EXPECT_EQ(out[i].good_signatures, oracle[i].good_signatures) << i;
      EXPECT_EQ(out[i].faulty_signatures, oracle[i].faulty_signatures) << i;
    }
  }

  // The cache-off session must produce identical results as well.
  core::GradingSession uncached(model,
                                {.num_threads = 2, .cache = false});
  const std::vector<core::InjectionOutcome> out = run_injection_campaign(
      uncached, program, core::CutId::kMultiplier, faults);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].detected, oracle[i].detected) << i;
    EXPECT_EQ(out[i].faulty_signatures, oracle[i].faulty_signatures) << i;
  }
}

}  // namespace
}  // namespace sbst
