// Phase A/B of the methodology: component model, classification and
// priority (paper §3.1–§3.2, §4 area claims).
#include <gtest/gtest.h>

#include "core/component.hpp"

namespace sbst::core {
namespace {

TEST(Classification, AllTableOneComponentsPresent) {
  ProcessorModel model;
  EXPECT_EQ(model.components().size(), 10u);
  for (CutId id : {CutId::kMultiplier, CutId::kDivider, CutId::kRegisterFile,
                   CutId::kMemCtrl, CutId::kShifter, CutId::kAlu,
                   CutId::kControl, CutId::kForwarding, CutId::kPipeline,
                   CutId::kBranchAdder}) {
    EXPECT_NO_THROW(model.component(id));
  }
}

TEST(Classification, ClassAssignmentsMatchPaper) {
  ProcessorModel model;
  EXPECT_EQ(model.component(CutId::kAlu).cls, ComponentClass::kDataVisible);
  EXPECT_EQ(model.component(CutId::kShifter).cls,
            ComponentClass::kDataVisible);
  EXPECT_EQ(model.component(CutId::kMultiplier).cls,
            ComponentClass::kDataVisible);
  EXPECT_EQ(model.component(CutId::kDivider).cls,
            ComponentClass::kDataVisible);
  EXPECT_EQ(model.component(CutId::kRegisterFile).cls,
            ComponentClass::kDataVisible);
  EXPECT_EQ(model.component(CutId::kMemCtrl).cls,
            ComponentClass::kMixedVisible);
  EXPECT_EQ(model.component(CutId::kControl).cls,
            ComponentClass::kPartiallyVisible);
  EXPECT_EQ(model.component(CutId::kForwarding).cls, ComponentClass::kHidden);
  EXPECT_EQ(model.component(CutId::kPipeline).cls, ComponentClass::kHidden);
  // The PC-relative adder is the paper's M-VC example (§3.2).
  EXPECT_EQ(model.component(CutId::kBranchAdder).cls,
            ComponentClass::kMixedVisible);
  EXPECT_FALSE(model.component(CutId::kBranchAdder).periodic_suitable);
}

TEST(Classification, DataVisibleComponentsDominateArea) {
  // Paper §4: "The D-VCs dominate the processor area (92%)".
  ProcessorModel model;
  const double dvc = model.class_area_fraction(ComponentClass::kDataVisible);
  EXPECT_GT(dvc, 0.85);
  EXPECT_LT(dvc, 1.00);
}

TEST(Classification, AreaFractionsSumToOne) {
  ProcessorModel model;
  double sum = 0;
  for (ComponentClass cls :
       {ComponentClass::kDataVisible, ComponentClass::kAddressVisible,
        ComponentClass::kMixedVisible, ComponentClass::kPartiallyVisible,
        ComponentClass::kHidden}) {
    sum += model.class_area_fraction(cls);
  }
  // The memory controller's area is split into D/A/PVC shares and the
  // branch adder counts as M-VC, so the five fractions tile the processor
  // exactly once.
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Classification, GateCountsComparableToPaper) {
  // Paper Table 1 @0.35um: mul+div 11,601; regfile 9,905; memctrl 1,119;
  // shifter 682; ALU 491; control 230; pipeline 885; total 26,080.
  // Same order of magnitude and same ranking is the reproduction target.
  ProcessorModel model;
  const double muldiv =
      model.component(CutId::kMultiplier).gate_equivalents() +
      model.component(CutId::kDivider).gate_equivalents();
  const double regfile =
      model.component(CutId::kRegisterFile).gate_equivalents();
  const double alu = model.component(CutId::kAlu).gate_equivalents();
  const double total = model.total_gate_equivalents();
  EXPECT_GT(muldiv, 5000);
  EXPECT_LT(muldiv, 25000);
  EXPECT_GT(regfile, 5000);
  EXPECT_LT(regfile, 25000);
  EXPECT_GT(total, 15000);
  EXPECT_LT(total, 60000);
  // Ranking: mul+div and regfile are the two biggest, ALU is small.
  EXPECT_GT(muldiv, alu);
  EXPECT_GT(regfile, alu);
}

TEST(Classification, PriorityOrderPutsDataVisibleFirst) {
  ProcessorModel model;
  const auto order = model.by_priority();
  EXPECT_EQ(order.front()->cls, ComponentClass::kDataVisible);
  EXPECT_EQ(order.back()->cls, ComponentClass::kHidden);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(order[i - 1]->test_priority, order[i]->test_priority);
  }
}

TEST(Classification, HiddenComponentsNotPeriodicallyTargeted) {
  ProcessorModel model;
  for (const ComponentInfo& c : model.components()) {
    if (c.cls == ComponentClass::kHidden) {
      EXPECT_FALSE(c.periodic_suitable) << c.name;
      EXPECT_EQ(c.default_strategy, TpgStrategy::kNone) << c.name;
    }
  }
}

TEST(Classification, NamesAndDescriptions) {
  EXPECT_STREQ(class_name(ComponentClass::kDataVisible), "D-VC");
  EXPECT_STREQ(class_name(ComponentClass::kAddressVisible), "A-VC");
  EXPECT_STREQ(class_name(ComponentClass::kPartiallyVisible), "PVC");
  EXPECT_STREQ(class_name(ComponentClass::kHidden), "HC");
  EXPECT_STREQ(strategy_name(TpgStrategy::kRegularDeterministic), "RegD");
  EXPECT_STREQ(strategy_name(TpgStrategy::kAtpgDeterministic), "AtpgD");
  EXPECT_STREQ(strategy_name(TpgStrategy::kFunctionalTest), "FT");
  EXPECT_NE(std::string(class_description(ComponentClass::kAddressVisible))
                .find("distributed memory"),
            std::string::npos);
}

TEST(Classification, EveryComponentHasPhaseAMetadata) {
  // Phase A: excitation / controllability / observability documentation.
  ProcessorModel model;
  for (const ComponentInfo& c : model.components()) {
    EXPECT_FALSE(c.excite.empty()) << c.name;
    EXPECT_FALSE(c.control.empty()) << c.name;
    EXPECT_FALSE(c.observe.empty()) << c.name;
    EXPECT_GT(c.netlist.size(), 0u) << c.name;
  }
}

}  // namespace
}  // namespace sbst::core
