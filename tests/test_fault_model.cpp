// First-class fault-model taxonomy (stuck-at / transition / transient-SEU /
// intermittent): naming round-trips, per-model activation streams, the
// unified-universe transition grading pinned flag-for-flag against the
// legacy simulate_transition oracle across engines x lanes x threads, the
// windowed-model determinism matrix, the netlist release API, the
// FaultUniverse store-codec version bump, and per-model session caching.
#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "core/evaluate.hpp"
#include "fault/sim.hpp"
#include "fault/sim_parallel.hpp"
#include "fault/transition.hpp"
#include "netlist/compiled.hpp"
#include "netlist/eval.hpp"
#include "rtlgen/alu.hpp"
#include "rtlgen/comparator.hpp"
#include "rtlgen/control.hpp"
#include "rtlgen/divider.hpp"
#include "rtlgen/multiplier.hpp"
#include "rtlgen/pipeline.hpp"
#include "rtlgen/shifter.hpp"
#include "store/artifact_store.hpp"

namespace fs = std::filesystem;

namespace sbst::fault {
namespace {

using netlist::Netlist;

constexpr FaultModel kAllModels[] = {
    FaultModel::kStuckAt, FaultModel::kTransition, FaultModel::kTransientSEU,
    FaultModel::kIntermittent};

PatternSet random_patterns(Rng& rng, const Netlist& nl, std::size_t count) {
  PatternSet ps(nl);
  for (std::size_t i = 0; i < count; ++i) ps.add_random(rng);
  return ps;
}

SeqStimulus random_stimulus(Rng& rng, const Netlist& nl, std::size_t cycles) {
  SeqStimulus st(nl);
  for (std::size_t c = 0; c < cycles; ++c) {
    std::vector<PortValue> values;
    for (const netlist::Port& p : nl.input_ports()) {
      values.emplace_back(p.name, rng.next64());
    }
    st.add_cycle(values, rng.chance(0.7));
  }
  return st;
}

void expect_same_flags(const CoverageResult& oracle,
                       const CoverageResult& got, const Netlist& nl,
                       const std::vector<Fault>& faults, const char* label) {
  ASSERT_EQ(oracle.detected_flags.size(), got.detected_flags.size()) << label;
  for (std::size_t i = 0; i < oracle.detected_flags.size(); ++i) {
    ASSERT_EQ(oracle.detected_flags[i], got.detected_flags[i])
        << label << ": fault " << i << " (" << fault_name(nl, faults[i])
        << ")";
  }
}

// ---- naming ----------------------------------------------------------------

TEST(FaultModelNaming, NameParsesBackForEveryModelAndPolarity) {
  const Netlist nl = rtlgen::build_shifter({.width = 8});
  const FaultUniverse stuck(nl);
  // Take a spread of representative sites (stems and pins) and rename them
  // under every model; the round-trip must recover site, polarity, AND model.
  const std::vector<Fault>& reps = stuck.collapsed();
  ASSERT_GE(reps.size(), 8u);
  for (std::size_t i = 0; i < reps.size(); i += reps.size() / 8) {
    for (const FaultModel model : kAllModels) {
      Fault f = reps[i];
      f.model = model;
      const std::string name = fault_name(nl, f);
      Fault back;
      ASSERT_TRUE(parse_fault_name(nl, name, back)) << name;
      EXPECT_EQ(back, f) << name;
    }
  }
  // The four suffix families are distinct, so the same site renders four
  // different names.
  Fault f = reps[0];
  std::vector<std::string> names;
  for (const FaultModel model : kAllModels) {
    f.model = model;
    names.push_back(fault_name(nl, f));
  }
  for (std::size_t a = 0; a < names.size(); ++a) {
    for (std::size_t b = a + 1; b < names.size(); ++b) {
      EXPECT_NE(names[a], names[b]);
    }
  }
}

TEST(FaultModelNaming, MalformedNamesAreRejected) {
  const Netlist nl = rtlgen::build_comparator();
  Fault out;
  EXPECT_FALSE(parse_fault_name(nl, "", out));
  EXPECT_FALSE(parse_fault_name(nl, "g0(And).out/zz1", out));
  EXPECT_FALSE(parse_fault_name(nl, "g999999(And).out/sa1", out));
  // A real fault name with the wrong gate kind must fail the kind check.
  const FaultUniverse u(nl);
  const std::string good = fault_name(nl, u.collapsed()[0]);
  EXPECT_TRUE(parse_fault_name(nl, good, out));
}

TEST(FaultModelNaming, TransitionNamesDelegateToTheUnifiedNamer) {
  const Netlist nl = rtlgen::build_comparator();
  const std::vector<TransitionFault> tf = enumerate_transition_faults(nl);
  const FaultUniverse u(nl, FaultModel::kTransition);
  ASSERT_EQ(tf.size(), u.size());
  for (std::size_t i = 0; i < tf.size(); ++i) {
    EXPECT_EQ(transition_fault_name(nl, tf[i]),
              fault_name(nl, u.collapsed()[i]));
  }
}

TEST(FaultModelNaming, ModelNamesRoundTripWithAliases) {
  for (const FaultModel model : kAllModels) {
    FaultModel back;
    ASSERT_TRUE(parse_fault_model(fault_model_name(model), back));
    EXPECT_EQ(back, model);
  }
  FaultModel m;
  EXPECT_TRUE(parse_fault_model("sa", m));
  EXPECT_EQ(m, FaultModel::kStuckAt);
  EXPECT_TRUE(parse_fault_model("seu", m));
  EXPECT_EQ(m, FaultModel::kTransientSEU);
  EXPECT_FALSE(parse_fault_model("bogus", m));
}

// ---- activation streams ----------------------------------------------------

TEST(ActivationStreams, WordFormMatchesScalarForm) {
  const Netlist nl = rtlgen::build_alu({.width = 4});
  const FaultUniverse u(nl);
  for (std::size_t i = 0; i < 4; ++i) {
    Fault f = u.collapsed()[i * (u.size() / 4)];
    for (const FaultModel model : kAllModels) {
      f.model = model;
      const std::uint64_t key = fault_stream_key(f);
      for (std::uint64_t block = 0; block < 6; ++block) {
        const std::uint64_t word = fault_active_word(key, model, block);
        for (unsigned bit = 0; bit < 64; ++bit) {
          ASSERT_EQ((word >> bit) & 1u,
                    fault_active(key, model, block * 64 + bit) ? 1u : 0u)
              << fault_model_name(model) << " block " << block << " bit "
              << bit;
        }
      }
    }
  }
}

TEST(ActivationStreams, SeuFiresOncePerWindowIntermittentWholeBursts) {
  const std::uint64_t key = fault_stream_key(
      Fault{{3, netlist::Site::kOutputPin}, true, FaultModel::kTransientSEU});
  for (std::uint64_t window = 0; window < 32; ++window) {
    unsigned active = 0;
    for (unsigned t = 0; t < kSeuWindow; ++t) {
      active += fault_active(key, FaultModel::kTransientSEU,
                             window * kSeuWindow + t)
                    ? 1
                    : 0;
    }
    EXPECT_EQ(active, 1u) << "window " << window;
  }
  // Intermittent activation is burst-granular: within one burst every index
  // agrees, and roughly 1 in kIntermittentPeriod bursts is active.
  unsigned active_bursts = 0;
  for (std::uint64_t burst = 0; burst < 64; ++burst) {
    const bool first =
        fault_active(key, FaultModel::kIntermittent, burst * kIntermittentBurst);
    for (unsigned t = 1; t < kIntermittentBurst; ++t) {
      EXPECT_EQ(fault_active(key, FaultModel::kIntermittent,
                             burst * kIntermittentBurst + t),
                first);
    }
    active_bursts += first ? 1 : 0;
  }
  EXPECT_GT(active_bursts, 0u);
  EXPECT_LT(active_bursts, 64u);
  // Stuck-at and transition streams are always-on.
  EXPECT_TRUE(fault_active(key, FaultModel::kStuckAt, 123));
  EXPECT_TRUE(fault_active(key, FaultModel::kTransition, 123));
}

TEST(ActivationStreams, DistinctFaultsGetIndependentStreams) {
  const Fault a{{3, netlist::Site::kOutputPin}, true,
                FaultModel::kTransientSEU};
  Fault b = a;
  b.stuck_value = false;
  Fault c = a;
  c.model = FaultModel::kIntermittent;
  EXPECT_NE(fault_stream_key(a), fault_stream_key(b));
  EXPECT_NE(fault_stream_key(a), fault_stream_key(c));
  EXPECT_EQ(fault_stream_key(a), fault_stream_key(Fault{a}));
}

// ---- homogeneous-list enforcement ------------------------------------------

TEST(FaultModelRouting, MixedModelListsThrow) {
  const Netlist nl = rtlgen::build_comparator();
  Rng rng(0x11);
  const PatternSet ps = random_patterns(rng, nl, 8);
  const FaultUniverse u(nl);
  std::vector<Fault> mixed = {u.collapsed()[0], u.collapsed()[1]};
  mixed[1].model = FaultModel::kTransientSEU;
  EXPECT_THROW(simulate_comb(nl, mixed, ps), std::invalid_argument);
  EXPECT_THROW(simulate_comb_parallel(nl, mixed, ps), std::invalid_argument);
}

TEST(FaultModelRouting, TransitionFaultsAreCombinationalOnly) {
  const Netlist nl = rtlgen::build_divider({.width = 4});
  Rng rng(0x12);
  const SeqStimulus st = random_stimulus(rng, nl, 8);
  FaultUniverse u(nl, FaultModel::kTransition);
  EXPECT_THROW(simulate_seq(nl, u.collapsed(), st), std::invalid_argument);
  EXPECT_THROW(simulate_seq_parallel(nl, u.collapsed(), st),
               std::invalid_argument);
}

// ---- transition grading: unified taxonomy vs the legacy oracle -------------

TEST(TransitionDifferential, MatchesLegacyOracleOnEveryRtlgenComponent) {
  struct Component {
    const char* name;
    Netlist nl;
  };
  const Component components[] = {
      {"alu", rtlgen::build_alu({.width = 8})},
      {"shifter", rtlgen::build_shifter({.width = 8})},
      {"multiplier", rtlgen::build_multiplier({.width = 8})},
      {"comparator", rtlgen::build_comparator()},
      {"control", rtlgen::build_control()},
      {"forwarding", rtlgen::build_forwarding_unit()},
  };
  Rng rng(0xf00d);
  for (const Component& c : components) {
    ASSERT_TRUE(c.nl.is_combinational()) << c.name;
    const PatternSet ps = random_patterns(rng, c.nl, 96);
    const std::vector<TransitionFault> tf =
        enumerate_transition_faults(c.nl);
    const CoverageResult oracle = simulate_transition(c.nl, tf, ps);
    const FaultUniverse u(c.nl, FaultModel::kTransition);
    ASSERT_EQ(u.size(), tf.size()) << c.name;

    // Serial front door.
    expect_same_flags(oracle, simulate_comb(c.nl, u.collapsed(), ps), c.nl,
                      u.collapsed(), c.name);
    // Parallel front door: engine x lane-width x thread-count matrix.
    for (const Engine engine :
         {Engine::kReference, Engine::kCompiled, Engine::kEvent}) {
      for (const unsigned lanes : {1u, 4u}) {
        for (const unsigned threads : {1u, 2u, 8u}) {
          SimOptions so;
          so.engine = engine;
          so.lanes = lanes;
          so.num_threads = threads;
          const std::string label = std::string(c.name) + "/" +
                                    engine_name(engine) + "/l" +
                                    std::to_string(lanes) + "/t" +
                                    std::to_string(threads);
          expect_same_flags(oracle,
                            simulate_comb_parallel(c.nl, u.collapsed(), ps,
                                                   {}, so),
                            c.nl, u.collapsed(), label.c_str());
        }
      }
    }
  }
}

// ---- windowed models: determinism matrix -----------------------------------

TEST(WindowedDeterminism, CombinationalMatrixIsBitwiseIdentical) {
  const Netlist nl = rtlgen::build_alu({.width = 8});
  Rng rng(0xabcd);
  const PatternSet ps = random_patterns(rng, nl, 192);
  for (const FaultModel model :
       {FaultModel::kTransientSEU, FaultModel::kIntermittent}) {
    const FaultUniverse u(nl, model);
    // Serial oracle: one fault at a time, scalar activation stream.
    const CoverageResult oracle = simulate_serial(nl, u.collapsed(), ps);
    EXPECT_GT(oracle.detected, 0u);
    EXPECT_LT(oracle.detected, oracle.total);
    for (const Engine engine :
         {Engine::kReference, Engine::kCompiled, Engine::kEvent}) {
      for (const unsigned lanes : {1u, 4u}) {
        for (const unsigned threads : {1u, 2u, 8u}) {
          for (const bool lane_parallel : {false, true}) {
            SimOptions so;
            so.engine = engine;
            so.lanes = lanes;
            so.num_threads = threads;
            so.lane_parallel = lane_parallel;
            const std::string label =
                std::string(fault_model_name(model)) + "/" +
                engine_name(engine) + "/l" + std::to_string(lanes) + "/t" +
                std::to_string(threads) + (lane_parallel ? "/lp" : "/blk");
            expect_same_flags(oracle,
                              simulate_comb_parallel(nl, u.collapsed(), ps,
                                                     {}, so),
                              nl, u.collapsed(), label.c_str());
          }
        }
      }
    }
  }
}

TEST(WindowedDeterminism, SequentialMatrixIsBitwiseIdentical) {
  const Netlist nl = rtlgen::build_divider({.width = 6});
  Rng rng(0x5eed);
  const SeqStimulus st = random_stimulus(rng, nl, 48);
  for (const FaultModel model :
       {FaultModel::kTransientSEU, FaultModel::kIntermittent}) {
    const FaultUniverse u(nl, model);
    const CoverageResult oracle = simulate_seq(nl, u.collapsed(), st);
    for (const Engine engine :
         {Engine::kReference, Engine::kCompiled, Engine::kEvent}) {
      for (const unsigned threads : {1u, 2u, 8u}) {
        SimOptions so;
        so.engine = engine;
        so.num_threads = threads;
        const std::string label = std::string(fault_model_name(model)) +
                                  "/" + engine_name(engine) + "/t" +
                                  std::to_string(threads);
        expect_same_flags(oracle,
                          simulate_seq_parallel(nl, u.collapsed(), st, {},
                                                so),
                          nl, u.collapsed(), label.c_str());
      }
    }
  }
}

TEST(WindowedDeterminism, WindowedCoverageIsBelowStuckAt) {
  // A windowed fault is a strictly weaker defect than the matching stuck-at:
  // per-model grading must reflect that ordering on a real pattern stream.
  const Netlist nl = rtlgen::build_shifter({.width = 8});
  Rng rng(0x77);
  const PatternSet ps = random_patterns(rng, nl, 256);
  const double sa =
      simulate_comb_parallel(nl, FaultUniverse(nl).collapsed(), ps).percent();
  for (const FaultModel model :
       {FaultModel::kTransientSEU, FaultModel::kIntermittent}) {
    const double fc = simulate_comb_parallel(
                          nl, FaultUniverse(nl, model).collapsed(), ps)
                          .percent();
    EXPECT_LT(fc, sa) << fault_model_name(model);
    EXPECT_GT(fc, 0.0) << fault_model_name(model);
  }
}

// ---- release API -----------------------------------------------------------

TEST(ReleaseApi, ReleasingALaneMatchesReinjectingTheRest) {
  const Netlist nl = rtlgen::build_alu({.width = 6});
  const FaultUniverse u(nl);
  Rng rng(0x9a9a);
  const PatternSet ps = random_patterns(rng, nl, 64);
  const auto& inputs = nl.inputs();
  const std::vector<netlist::NetId> outputs = nl.output_nets();

  for (const bool event : {false, true}) {
    for (const bool opt : {false, true}) {
      const netlist::CompiledNetlist cn(
          nl, opt ? netlist::CompileOptions::all()
                  : netlist::CompileOptions{});
      netlist::CompiledEvaluator ev(cn, event);
      netlist::CompiledEvaluator fresh(cn, event);
      // Inject 8 faults in lanes 1..8, release half of them, and require
      // the surviving lanes to match a from-scratch evaluator that only
      // ever saw the surviving faults.
      std::vector<Fault> injected(u.collapsed().begin(),
                                  u.collapsed().begin() + 8);
      for (std::size_t j = 0; j < injected.size(); ++j) {
        ev.inject_lane(injected[j].site, injected[j].stuck_value,
                       static_cast<unsigned>(j + 1));
      }
      for (std::size_t j = 0; j < injected.size(); j += 2) {
        ev.release_lane(injected[j].site, static_cast<unsigned>(j + 1));
      }
      fresh.clear_faults();
      for (std::size_t j = 1; j < injected.size(); j += 2) {
        fresh.inject_lane(injected[j].site, injected[j].stuck_value,
                          static_cast<unsigned>(j + 1));
      }
      for (std::size_t b = 0; b < ps.block_count(); ++b) {
        const auto& words = ps.block(b);
        for (std::size_t k = 0; k < inputs.size(); ++k) {
          ev.set_input_word(inputs[k], words[k]);
          fresh.set_input_word(inputs[k], words[k]);
        }
        ev.eval();
        fresh.eval();
        for (const netlist::NetId out : outputs) {
          ASSERT_EQ(ev.value(out), fresh.value(out))
              << "event " << event << " opt " << opt << " block " << b;
        }
      }
    }
  }
}

TEST(ReleaseApi, ReferenceEvaluatorReleaseMatchesReinjection) {
  const Netlist nl = rtlgen::build_comparator();
  const FaultUniverse u(nl);
  Rng rng(0x1d1d);
  const PatternSet ps = random_patterns(rng, nl, 64);
  const auto& inputs = nl.inputs();
  const std::vector<netlist::NetId> outputs = nl.output_nets();
  netlist::Evaluator ev(nl);
  netlist::Evaluator fresh(nl);
  std::vector<Fault> injected(u.collapsed().begin(),
                              u.collapsed().begin() + 6);
  for (std::size_t j = 0; j < injected.size(); ++j) {
    ev.inject_lane(injected[j].site, injected[j].stuck_value,
                   static_cast<unsigned>(j + 1));
  }
  for (std::size_t j = 0; j < injected.size(); j += 2) {
    ev.release_lane(injected[j].site, static_cast<unsigned>(j + 1));
  }
  for (std::size_t j = 1; j < injected.size(); j += 2) {
    fresh.inject_lane(injected[j].site, injected[j].stuck_value,
                      static_cast<unsigned>(j + 1));
  }
  const auto& words0 = ps.block(0);
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    ev.set_input_word(inputs[k], words0[k]);
    fresh.set_input_word(inputs[k], words0[k]);
  }
  ev.eval();
  fresh.eval();
  for (const netlist::NetId out : outputs) {
    EXPECT_EQ(ev.value(out), fresh.value(out));
  }
}

}  // namespace
}  // namespace sbst::fault

// ---- store codec bump + per-model session caching --------------------------

namespace sbst::core {
namespace {

struct TempStoreDir {
  fs::path path;
  explicit TempStoreDir(const std::string& tag) {
    path = fs::path(::testing::TempDir()) /
           (std::string("sbst-faultmodel-") + tag);
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempStoreDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

TEST(FaultModelStore, SerializedImageRoundTripsWithModelHeader) {
  const ProcessorModel model;
  const netlist::Netlist& nl = model.component(CutId::kShifter).netlist;
  for (const fault::FaultModel fm :
       {fault::FaultModel::kStuckAt, fault::FaultModel::kTransition,
        fault::FaultModel::kTransientSEU, fault::FaultModel::kIntermittent}) {
    const fault::FaultUniverse u(nl, fm);
    common::ByteWriter w;
    u.serialize(w);
    const std::vector<std::uint8_t> bytes = w.take();
    common::ByteReader r(bytes);
    const auto back = fault::FaultUniverse::deserialize(nl, r);
    ASSERT_NE(back, nullptr) << fault::fault_model_name(fm);
    EXPECT_EQ(back->model(), fm);
    EXPECT_EQ(back->collapsed(), u.collapsed());
    EXPECT_EQ(back->uncollapsed_count(), u.uncollapsed_count());
  }
}

TEST(FaultModelStore, PreBumpV1PayloadIsASilentMissAndGetsRebuilt) {
  const ProcessorModel model;
  const netlist::Netlist& nl = model.component(CutId::kAlu).netlist;
  TempStoreDir dir("v1");
  auto store = std::make_shared<store::ArtifactStore>(dir.str());

  // A v1-era universe image (no version-2 model header byte) planted under
  // the exact key the session probes today. The codec must reject it
  // without crashing; the session treats it as a silent miss.
  common::ByteWriter w;
  w.put_u32(1);  // pre-bump format version
  w.put_u64(42);
  w.put_u64(1);
  w.put_u32(0);
  w.put_u8(netlist::Site::kOutputPin);
  w.put_bool(true);
  store::ArtifactKey key;
  key.kind = "universe";
  key.version = fault::FaultUniverse::kSerialVersion;
  key.content = nl.content_hash();
  ASSERT_TRUE(store->save(key, w.take()));

  GradingSession session(model, {.num_threads = 1, .store = store});
  const fault::FaultUniverse& u = session.universe(CutId::kAlu);
  EXPECT_GT(u.size(), 0u);
  EXPECT_EQ(u.model(), fault::FaultModel::kStuckAt);
  EXPECT_EQ(session.stats().store_invalid, 1u);
  EXPECT_EQ(session.stats().universe_builds, 1u);
  EXPECT_EQ(session.stats().store_hits, 0u);

  // The rebuild rewrote the entry in the v2 format: a fresh session hits.
  auto store2 = std::make_shared<store::ArtifactStore>(dir.str());
  GradingSession warm(model, {.num_threads = 1, .store = store2});
  const fault::FaultUniverse& u2 = warm.universe(CutId::kAlu);
  EXPECT_EQ(u2.collapsed(), u.collapsed());
  EXPECT_EQ(warm.stats().store_hits, 1u);
  EXPECT_EQ(warm.stats().universe_builds, 0u);
  EXPECT_EQ(warm.stats().store_invalid, 0u);
}

TEST(FaultModelStore, ModelHeaderMismatchWithKeyIsInvalidAndRebuilt) {
  const ProcessorModel model;
  const netlist::Netlist& nl = model.component(CutId::kAlu).netlist;
  TempStoreDir dir("mismatch");
  auto store = std::make_shared<store::ArtifactStore>(dir.str());

  // A well-formed stuck-at image planted under the transition-model key:
  // the embedded model byte disagrees with the key's mode axis, so the
  // session must rebuild rather than hand back a mistagged universe.
  const fault::FaultUniverse stuck(nl);
  common::ByteWriter w;
  stuck.serialize(w);
  store::ArtifactKey key;
  key.kind = "universe";
  key.version = fault::FaultUniverse::kSerialVersion;
  key.mode =
      static_cast<std::uint8_t>(fault::FaultModel::kTransition);
  key.content = nl.content_hash();
  ASSERT_TRUE(store->save(key, w.take()));

  GradingSession session(model, {.num_threads = 1, .store = store});
  const fault::FaultUniverse& u =
      session.universe(CutId::kAlu, fault::FaultModel::kTransition);
  EXPECT_EQ(u.model(), fault::FaultModel::kTransition);
  EXPECT_EQ(session.stats().store_invalid, 1u);
  EXPECT_EQ(session.stats().universe_builds, 1u);
}

TEST(FaultModelSession, PerModelUniversesAreCachedSeparately) {
  const ProcessorModel model;
  GradingSession session(model, {.num_threads = 1});
  const fault::FaultUniverse& sa = session.universe(CutId::kAlu);
  const fault::FaultUniverse& tr =
      session.universe(CutId::kAlu, fault::FaultModel::kTransition);
  const fault::FaultUniverse& seu =
      session.universe(CutId::kAlu, fault::FaultModel::kTransientSEU);
  EXPECT_EQ(sa.model(), fault::FaultModel::kStuckAt);
  EXPECT_EQ(tr.model(), fault::FaultModel::kTransition);
  EXPECT_EQ(seu.model(), fault::FaultModel::kTransientSEU);
  // The collapse is value-based and shared, so sizes agree while the
  // representative tags differ.
  EXPECT_EQ(sa.size(), tr.size());
  EXPECT_EQ(session.stats().universe_builds, 3u);
  // Repeat calls hit the per-(cut, model) slots.
  session.universe(CutId::kAlu, fault::FaultModel::kTransition);
  session.universe(CutId::kAlu);
  EXPECT_EQ(session.stats().universe_builds, 3u);
  EXPECT_EQ(session.stats().universe_hits, 2u);
}

}  // namespace
}  // namespace sbst::core
