// Differential tests for the parallel fault-simulation engines
// (sim_parallel.hpp) against the serial oracles, plus edge-case coverage of
// the pattern/lane machinery and the CoverageResult invariant.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "fault/pattern.hpp"
#include "fault/sim.hpp"
#include "fault/sim_parallel.hpp"
#include "fault/thread_pool.hpp"

namespace sbst::fault {
namespace {

using netlist::GateKind;
using netlist::NetId;
using netlist::Netlist;

// ---- seeded random circuit / stimulus generators ---------------------------

/// Random combinational netlist: every gate's fan-in comes from earlier nets,
/// so the result is acyclic by construction. Outputs are the last few nets
/// plus a random sample (every run has at least one output).
Netlist random_comb_netlist(Rng& rng, unsigned n_inputs, unsigned n_gates) {
  Netlist nl("random_comb");
  std::vector<NetId> nets;
  for (unsigned i = 0; i < n_inputs; ++i) {
    nets.push_back(nl.input("i" + std::to_string(i)));
  }
  auto pick = [&] { return nets[rng.below(nets.size())]; };
  for (unsigned g = 0; g < n_gates; ++g) {
    NetId n;
    switch (rng.below(9)) {
      case 0: n = nl.buf(pick()); break;
      case 1: n = nl.not_(pick()); break;
      case 2: n = nl.and_(pick(), pick()); break;
      case 3: n = nl.or_(pick(), pick()); break;
      case 4: n = nl.nand_(pick(), pick()); break;
      case 5: n = nl.nor_(pick(), pick()); break;
      case 6: n = nl.xor_(pick(), pick()); break;
      case 7: n = nl.xnor_(pick(), pick()); break;
      default: n = nl.mux2(pick(), pick(), pick()); break;
    }
    nets.push_back(n);
  }
  unsigned n_outputs = 0;
  for (std::size_t i = n_inputs; i < nets.size(); ++i) {
    const bool tail = i + 3 >= nets.size();
    if (tail || rng.chance(0.1)) {
      nl.output("o" + std::to_string(n_outputs++), nets[i]);
    }
  }
  return nl;
}

/// Random sequential netlist: DFFs created up front so combinational logic
/// can read them, D inputs bound to random nets afterwards (feedback loops
/// through state are legal and common).
Netlist random_seq_netlist(Rng& rng, unsigned n_inputs, unsigned n_dffs,
                           unsigned n_gates) {
  Netlist nl("random_seq");
  std::vector<NetId> nets;
  for (unsigned i = 0; i < n_inputs; ++i) {
    nets.push_back(nl.input("i" + std::to_string(i)));
  }
  std::vector<NetId> qs;
  for (unsigned i = 0; i < n_dffs; ++i) {
    const NetId q = nl.dff("q" + std::to_string(i));
    qs.push_back(q);
    nets.push_back(q);
  }
  auto pick = [&] { return nets[rng.below(nets.size())]; };
  for (unsigned g = 0; g < n_gates; ++g) {
    NetId n;
    switch (rng.below(7)) {
      case 0: n = nl.not_(pick()); break;
      case 1: n = nl.and_(pick(), pick()); break;
      case 2: n = nl.or_(pick(), pick()); break;
      case 3: n = nl.nand_(pick(), pick()); break;
      case 4: n = nl.xor_(pick(), pick()); break;
      case 5: n = nl.nor_(pick(), pick()); break;
      default: n = nl.mux2(pick(), pick(), pick()); break;
    }
    nets.push_back(n);
  }
  for (NetId q : qs) nl.connect_dff(q, pick());
  unsigned n_outputs = 0;
  for (std::size_t i = n_inputs + n_dffs; i < nets.size(); ++i) {
    const bool tail = i + 3 >= nets.size();
    if (tail || rng.chance(0.15)) {
      nl.output("o" + std::to_string(n_outputs++), nets[i]);
    }
  }
  return nl;
}

PatternSet random_patterns(Rng& rng, const Netlist& nl, std::size_t count) {
  PatternSet ps(nl);
  for (std::size_t i = 0; i < count; ++i) ps.add_random(rng);
  return ps;
}

SeqStimulus random_stimulus(Rng& rng, const Netlist& nl, std::size_t cycles) {
  SeqStimulus st(nl);
  for (std::size_t c = 0; c < cycles; ++c) {
    std::vector<PortValue> values;
    for (const netlist::Port& p : nl.input_ports()) {
      values.emplace_back(p.name, rng.next64());
    }
    st.add_cycle(values, rng.chance(0.7));
  }
  return st;
}

void expect_same_flags(const CoverageResult& oracle, const CoverageResult& got,
                       const Netlist& nl, const std::vector<Fault>& faults,
                       const char* label) {
  ASSERT_EQ(oracle.detected_flags.size(), got.detected_flags.size()) << label;
  for (std::size_t i = 0; i < oracle.detected_flags.size(); ++i) {
    EXPECT_EQ(oracle.detected_flags[i], got.detected_flags[i])
        << label << ": " << fault_name(nl, faults[i]);
  }
  EXPECT_EQ(oracle.detected, got.detected) << label;
  EXPECT_EQ(oracle.total, got.total) << label;
}

void expect_invariant(const CoverageResult& res) {
  std::size_t count = 0;
  for (auto flag : res.detected_flags) count += flag ? 1 : 0;
  EXPECT_EQ(res.detected, count);
  EXPECT_EQ(res.total, res.detected_flags.size());
}

// ---- differential suite ----------------------------------------------------

TEST(FaultParallel, CombDifferentialRandomNetlists) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    Rng rng(seed);
    const Netlist nl = random_comb_netlist(rng, 6 + rng.below(6),
                                           40 + rng.below(80));
    FaultUniverse u(nl);
    const auto& faults = u.collapsed();
    // 100 patterns: deliberately not a multiple of 64.
    const PatternSet ps = random_patterns(rng, nl, 100);

    const CoverageResult oracle = simulate_serial(nl, faults, ps);
    expect_invariant(oracle);
    expect_same_flags(oracle, simulate_comb(nl, faults, ps), nl, faults,
                      "simulate_comb");
    for (unsigned threads : {1u, 2u, 8u}) {
      for (bool lanes : {false, true}) {
        const SimOptions opt{.num_threads = threads, .lane_parallel = lanes};
        const CoverageResult got =
            simulate_comb_parallel(nl, faults, ps, {}, opt);
        expect_invariant(got);
        expect_same_flags(oracle, got, nl, faults,
                          lanes ? "parallel/lane" : "parallel/block");
      }
    }
  }
}

TEST(FaultParallel, SeqDifferentialRandomNetlists) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    Rng rng(seed);
    const Netlist nl = random_seq_netlist(rng, 4 + rng.below(4),
                                          3 + rng.below(5), 30 + rng.below(50));
    FaultUniverse u(nl);
    const auto& faults = u.collapsed();
    const SeqStimulus st = random_stimulus(rng, nl, 40);

    const CoverageResult oracle = simulate_seq(nl, faults, st);
    expect_invariant(oracle);
    for (unsigned threads : {1u, 2u, 8u}) {
      const CoverageResult got = simulate_seq_parallel(
          nl, faults, st, {}, {.num_threads = threads});
      expect_invariant(got);
      expect_same_flags(oracle, got, nl, faults, "seq_parallel");
    }
  }
}

TEST(FaultParallel, ThreadCountInvariance) {
  Rng rng(99);
  const Netlist nl = random_comb_netlist(rng, 8, 120);
  FaultUniverse u(nl);
  const PatternSet ps = random_patterns(rng, nl, 130);
  const CoverageResult one = simulate_comb_parallel(nl, u.collapsed(), ps, {},
                                                    {.num_threads = 1});
  for (unsigned threads : {2u, 3u, 5u, 8u, 16u}) {
    const CoverageResult got = simulate_comb_parallel(
        nl, u.collapsed(), ps, {}, {.num_threads = threads});
    EXPECT_EQ(one.detected_flags, got.detected_flags) << threads << " threads";
  }
  // And repeated runs with the same thread count are stable.
  const CoverageResult again = simulate_comb_parallel(nl, u.collapsed(), ps,
                                                      {}, {.num_threads = 4});
  EXPECT_EQ(one.detected_flags, again.detected_flags);
}

// ---- edge cases of the pattern/lane machinery ------------------------------

TEST(FaultParallel, PatternCountsAroundLaneBoundary) {
  Rng rng(7);
  const Netlist nl = random_comb_netlist(rng, 5, 60);
  FaultUniverse u(nl);
  const auto& faults = u.collapsed();
  for (std::size_t n_patterns : {1u, 63u, 64u, 65u, 130u}) {
    Rng prng(1000 + n_patterns);
    const PatternSet ps = random_patterns(prng, nl, n_patterns);
    const CoverageResult oracle = simulate_serial(nl, faults, ps);
    expect_same_flags(oracle, simulate_comb(nl, faults, ps), nl, faults,
                      "simulate_comb");
    for (bool lanes : {false, true}) {
      const CoverageResult got = simulate_comb_parallel(
          nl, faults, ps, {}, {.num_threads = 2, .lane_parallel = lanes});
      expect_same_flags(oracle, got, nl, faults, "comb_parallel");
    }
  }
}

TEST(FaultParallel, EmptyFaultList) {
  Rng rng(21);
  const Netlist nl = random_comb_netlist(rng, 4, 20);
  const PatternSet ps = random_patterns(rng, nl, 10);
  const std::vector<Fault> none;
  for (bool lanes : {false, true}) {
    const CoverageResult res = simulate_comb_parallel(
        nl, none, ps, {}, {.num_threads = 4, .lane_parallel = lanes});
    EXPECT_EQ(res.total, 0u);
    EXPECT_EQ(res.detected, 0u);
    EXPECT_TRUE(res.detected_flags.empty());
    EXPECT_DOUBLE_EQ(res.percent(), 100.0);
  }
  const Netlist snl = random_seq_netlist(rng, 3, 2, 15);
  const SeqStimulus st = random_stimulus(rng, snl, 8);
  const CoverageResult res = simulate_seq_parallel(snl, none, st);
  EXPECT_EQ(res.total, 0u);
  EXPECT_TRUE(res.detected_flags.empty());
}

TEST(FaultParallel, SingleInputNetlist) {
  Netlist nl("inv_chain");
  const NetId a = nl.input("a");
  const NetId x = nl.not_(nl.not_(nl.not_(a)));
  nl.output("y", x);
  FaultUniverse u(nl);
  PatternSet ps(nl);
  ps.add({{"a", 0}});
  ps.add({{"a", 1}});
  const CoverageResult oracle = simulate_serial(nl, u.collapsed(), ps);
  EXPECT_EQ(oracle.detected, oracle.total);  // both polarities covered
  for (bool lanes : {false, true}) {
    const CoverageResult got = simulate_comb_parallel(
        nl, u.collapsed(), ps, {}, {.num_threads = 2, .lane_parallel = lanes});
    expect_same_flags(oracle, got, nl, u.collapsed(), "single-input");
  }
}

TEST(FaultParallel, FaultCountsAroundBatchBoundary) {
  Rng rng(33);
  const Netlist nl = random_comb_netlist(rng, 8, 200);
  FaultUniverse u(nl);
  const PatternSet ps = random_patterns(rng, nl, 64);
  // Slice the universe to sizes around the 63-fault lane batch: 1, 62, 63,
  // 64, 126, 127 — none need be a multiple of 63.
  for (std::size_t n : {1u, 62u, 63u, 64u, 126u, 127u}) {
    ASSERT_LE(n, u.size());
    const std::vector<Fault> faults(u.collapsed().begin(),
                                    u.collapsed().begin() + n);
    const CoverageResult oracle = simulate_serial(nl, faults, ps);
    for (bool lanes : {false, true}) {
      const CoverageResult got = simulate_comb_parallel(
          nl, faults, ps, {}, {.num_threads = 3, .lane_parallel = lanes});
      expect_same_flags(oracle, got, nl, faults, "sliced universe");
    }
  }
}

TEST(FaultParallel, ObserveSetRestrictedToOneOutput) {
  Rng rng(55);
  const Netlist nl = random_comb_netlist(rng, 6, 80);
  FaultUniverse u(nl);
  const PatternSet ps = random_patterns(rng, nl, 70);
  const std::vector<NetId> outs = nl.output_nets();
  ASSERT_GE(outs.size(), 2u);
  const ObserveSet narrow{outs.front()};

  const CoverageResult oracle = simulate_serial(nl, u.collapsed(), ps, narrow);
  const CoverageResult full = simulate_serial(nl, u.collapsed(), ps);
  EXPECT_LT(oracle.detected, full.detected);  // restriction must bite
  expect_same_flags(oracle, simulate_comb(nl, u.collapsed(), ps, narrow), nl,
                    u.collapsed(), "simulate_comb/narrow");
  for (bool lanes : {false, true}) {
    const CoverageResult got = simulate_comb_parallel(
        nl, u.collapsed(), ps, narrow,
        {.num_threads = 2, .lane_parallel = lanes});
    expect_same_flags(oracle, got, nl, u.collapsed(), "parallel/narrow");
  }
}

TEST(FaultParallel, SeqParallelOnCombNetlistMatchesSerial) {
  // simulate_seq_parallel must also grade pure combinational netlists (it is
  // the engine evaluate_program would use if a CUT lost its flip-flops).
  Rng rng(77);
  const Netlist nl = random_comb_netlist(rng, 5, 40);
  FaultUniverse u(nl);
  SeqStimulus st(nl);
  PatternSet ps(nl);
  Rng srng(78);
  for (int i = 0; i < 20; ++i) {
    std::vector<PortValue> values;
    for (const netlist::Port& p : nl.input_ports()) {
      values.emplace_back(p.name, srng.next64());
    }
    st.add_cycle(values, true);
    ps.add(values);
  }
  const CoverageResult oracle = simulate_serial(nl, u.collapsed(), ps);
  const CoverageResult got =
      simulate_seq_parallel(nl, u.collapsed(), st, {}, {.num_threads = 2});
  expect_same_flags(oracle, got, nl, u.collapsed(), "seq on comb");
}

// ---- CoverageResult invariant ----------------------------------------------

TEST(CoverageResult, RecountDerivesDetectedFromFlags) {
  CoverageResult res;
  res.total = 5;
  res.detected_flags = {1, 0, 1, 1, 0};
  res.detected = 12345;  // stale on purpose
  res.recount();
  EXPECT_EQ(res.detected, 3u);
  res.detected_flags.assign(4, 0);
  res.recount();
  EXPECT_EQ(res.detected, 0u);
}

TEST(CoverageResult, MergeKeepsInvariant) {
  CoverageResult a, b;
  a.total = b.total = 4;
  a.detected_flags = {1, 0, 0, 1};
  b.detected_flags = {0, 1, 0, 1};
  a.recount();
  b.recount();
  a.merge(b);
  expect_invariant(a);
  EXPECT_EQ(a.detected, 3u);
}

// ---- thread pool -----------------------------------------------------------

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  for (unsigned threads : {1u, 2u, 5u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    std::vector<int> hits(1000, 0);
    pool.run_static(hits.size(), [&](std::size_t t) { ++hits[t]; });
    for (int h : hits) EXPECT_EQ(h, 1);
    // The pool is reusable.
    pool.run_static(hits.size(), [&](std::size_t t) { ++hits[t]; });
    for (int h : hits) EXPECT_EQ(h, 2);
  }
}

TEST(ThreadPool, ResolveThreadCountPrefersExplicit) {
  EXPECT_EQ(resolve_thread_count(3), 3u);
  EXPECT_GE(resolve_thread_count(0), 1u);
}

TEST(ThreadPool, ThrowingTaskIsCapturedAndBatchCompletes) {
  for (unsigned threads : {1u, 3u}) {
    ThreadPool pool(threads);
    std::vector<int> hits(64, 0);
    const std::vector<ThreadPool::TaskFailure> failures =
        pool.run_static_capture(hits.size(), [&](std::size_t t) {
          if (t == 5 || t == 40) throw std::runtime_error("task failed");
          ++hits[t];
        });
    // Exactly the throwing tasks are reported, in index order, and every
    // other task still ran exactly once.
    ASSERT_EQ(failures.size(), 2u) << "threads " << threads;
    EXPECT_EQ(failures[0].task, 5u);
    EXPECT_EQ(failures[1].task, 40u);
    for (const ThreadPool::TaskFailure& fail : failures) {
      ASSERT_TRUE(fail.error);
      EXPECT_THROW(std::rethrow_exception(fail.error), std::runtime_error);
    }
    for (std::size_t t = 0; t < hits.size(); ++t) {
      EXPECT_EQ(hits[t], (t == 5 || t == 40) ? 0 : 1) << "task " << t;
    }
    // The pool stays usable after a failed batch.
    const auto clean =
        pool.run_static_capture(hits.size(), [&](std::size_t t) { ++hits[t]; });
    EXPECT_TRUE(clean.empty());
    for (std::size_t t = 0; t < hits.size(); ++t) {
      EXPECT_EQ(hits[t], (t == 5 || t == 40) ? 1 : 2);
    }
  }
}

TEST(ThreadPool, RunStaticRethrowsLowestIndexAfterFinishingBatch) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  try {
    pool.run_static(32, [&](std::size_t t) {
      if (t == 7) throw std::logic_error("seven");
      if (t == 3) throw std::runtime_error("three");
      ++ran;
    });
    FAIL() << "run_static swallowed the task exceptions";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "three");  // lowest failing index wins
  }
  // Every non-throwing task completed before the rethrow.
  EXPECT_EQ(ran.load(), 30);
  // And the pool still works.
  pool.run_static(8, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 38);
}

}  // namespace
}  // namespace sbst::fault
