// Netlist-compile optimization passes (CompileOptions: const_prop,
// fuse_inverters, dead_sweep — netlist/compiled.hpp).
//
// Strategy: an unoptimized compiled netlist is bit-for-bit the reference
// structure, so the oracle for every test is the same netlist compiled with
// the passes off (or the reference Evaluator directly). Optimization must
// never change any observable value on a live net, and must never change a
// detection flag — including for faults sitting ON gates the passes folded,
// bypassed, or swept.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "fault/pattern.hpp"
#include "fault/sim.hpp"
#include "fault/sim_parallel.hpp"
#include "netlist/compiled.hpp"
#include "netlist/eval.hpp"
#include "rtlgen/alu.hpp"
#include "rtlgen/comparator.hpp"
#include "rtlgen/control.hpp"
#include "rtlgen/divider.hpp"
#include "rtlgen/memctrl.hpp"
#include "rtlgen/multiplier.hpp"
#include "rtlgen/pipeline.hpp"
#include "rtlgen/regfile.hpp"
#include "rtlgen/shifter.hpp"

namespace sbst::netlist {
namespace {

using fault::CoverageResult;
using fault::Engine;
using fault::Fault;
using fault::FaultUniverse;
using fault::PatternSet;
using fault::PortValue;
using fault::SeqStimulus;
using fault::SimOptions;

/// Output nets are liveness roots, so they are observable under every
/// CompileOptions; compare nothing else (a swept gate's block is stale by
/// design).
void expect_outputs_equal(const Evaluator& oracle, const CompiledEvaluator& ev,
                          const char* label) {
  for (NetId out : oracle.netlist().output_nets()) {
    ASSERT_EQ(oracle.value(out), ev.value(out))
        << label << ": output net " << out;
  }
}

CoverageResult grade(const Netlist& nl, const std::vector<Fault>& faults,
                     const PatternSet& ps, bool netlist_opt,
                     unsigned lanes = 1, unsigned threads = 1) {
  SimOptions opt;
  opt.num_threads = threads;
  opt.engine = Engine::kEvent;
  opt.lanes = lanes;
  opt.netlist_opt = netlist_opt ? 1 : 0;
  return fault::simulate_comb_parallel(nl, faults, ps, {}, opt);
}

// ---- const_prop ------------------------------------------------------------

/// Every 2-input kind with one pin tied to each constant, plus the four
/// partially-constant MUX2 shapes.
Netlist tied_pin_netlist() {
  Netlist nl("tied_pins");
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId c0 = nl.constant(false);
  const NetId c1 = nl.constant(true);
  unsigned n = 0;
  auto out = [&](NetId id) { nl.output("o" + std::to_string(n++), id); };
  out(nl.and_(a, c0));
  out(nl.and_(a, c1));
  out(nl.or_(c0, a));
  out(nl.or_(c1, a));
  out(nl.nand_(a, c0));
  out(nl.nand_(a, c1));
  out(nl.nor_(c0, a));
  out(nl.nor_(c1, a));
  out(nl.xor_(a, c0));
  out(nl.xor_(a, c1));
  out(nl.xnor_(c0, a));
  out(nl.xnor_(c1, a));
  out(nl.mux2(c0, a, b));  // select tied 0 -> d0
  out(nl.mux2(c1, a, b));  // select tied 1 -> d1
  out(nl.mux2(a, c0, b));  // d0 tied 0 -> sel & d1
  out(nl.mux2(a, c1, b));  // d0 tied 1 -> ~sel | (sel & d1) form
  out(nl.mux2(a, b, c0));  // d1 tied 0 -> ~sel & d0
  out(nl.mux2(a, b, c1));  // d1 tied 1
  out(nl.not_(nl.buf(c1)));  // constant chain folds all the way down
  return nl;
}

TEST(NetlistOpt, TiedPinConstPropMatchesReferenceExhaustively) {
  const Netlist nl = tied_pin_netlist();
  const CompiledNetlist cn(nl, CompileOptions{.const_prop = true});
  Evaluator oracle(nl);
  CompiledEvaluator full(cn, /*event_driven=*/false);
  CompiledEvaluator event(cn, /*event_driven=*/true);

  // Two inputs: the four lane patterns 00/01/10/11 cover every combination
  // in one 64-lane word.
  const std::uint64_t wa = 0xAAAAAAAAAAAAAAAAULL;
  const std::uint64_t wb = 0xCCCCCCCCCCCCCCCCULL;
  for (Evaluator* e : {&oracle}) {
    e->set_input_word(nl.input_port("a")[0], wa);
    e->set_input_word(nl.input_port("b")[0], wb);
  }
  for (CompiledEvaluator* e : {&full, &event}) {
    e->set_input_word(nl.input_port("a")[0], wa);
    e->set_input_word(nl.input_port("b")[0], wb);
  }
  oracle.eval();
  full.eval();
  event.eval();
  // const_prop alone keeps every gate in the order, so ALL nets must match,
  // not just outputs.
  for (NetId id = 0; id < nl.size(); ++id) {
    ASSERT_EQ(oracle.value(id), full.value(id)) << "full net " << id;
    ASSERT_EQ(oracle.value(id), event.value(id)) << "event net " << id;
  }
}

TEST(NetlistOpt, FaultsOnConstFoldedGatesGradeIdentically) {
  const Netlist nl = tied_pin_netlist();
  const FaultUniverse u(nl);
  Rng rng(4242);
  PatternSet ps(nl);
  for (int i = 0; i < 32; ++i) ps.add_random(rng);

  const CoverageResult plain = grade(nl, u.collapsed(), ps, false);
  const CoverageResult opt = grade(nl, u.collapsed(), ps, true);
  EXPECT_EQ(plain.detected_flags, opt.detected_flags);
  // Sanity: the universe includes faults on tied pins and folded gates, and
  // the pattern set detects a nontrivial share of them.
  EXPECT_GT(plain.detected, 0u);
}

TEST(NetlistOpt, ConstPropKeepsObservableFallbackConesLive) {
  // A deep cone whose root is ANDed with constant 0: const_prop folds the
  // observable output to a constant, but dead_sweep must NOT reclaim the
  // feeding cone — a fault on the consumed constant re-activates the
  // original AND, whose x input must still carry a current value (the
  // fault-exactness liveness rule). The cone therefore stays live, and the
  // folded output still behaves identically on every pattern.
  Netlist nl("const_cone");
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  NetId x = nl.xor_(a, b);
  for (int i = 0; i < 20; ++i) x = nl.xor_(nl.and_(x, a), b);
  nl.output("y", nl.and_(x, nl.constant(false)));
  nl.output("pass", nl.or_(a, b));  // keeps a live sliver

  const CompiledNetlist plain(nl);
  const CompiledNetlist opt(nl, CompileOptions::all());
  EXPECT_EQ(opt.live_gates(), plain.live_gates());

  // Behavior on the outputs is unchanged for random stimulus.
  Evaluator oracle(nl);
  CompiledEvaluator ev(opt, /*event_driven=*/true);
  Rng rng(99);
  for (int iter = 0; iter < 16; ++iter) {
    for (NetId in : nl.inputs()) {
      const std::uint64_t w = rng.next64();
      oracle.set_input_word(in, w);
      ev.set_input_word(in, w);
    }
    oracle.eval();
    ev.eval();
    expect_outputs_equal(oracle, ev, "const_cone");
  }
}

// ---- dead_sweep ------------------------------------------------------------

/// A live cone feeding the declared outputs plus a parallel cone that feeds
/// nothing observable.
Netlist dead_side_cone_netlist() {
  Netlist nl("dead_side");
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId c = nl.input("c");
  nl.output("y", nl.xor_(nl.and_(a, b), c));
  // Side cone: never marked as output, feeds no output.
  NetId t = nl.or_(a, c);
  for (int i = 0; i < 8; ++i) t = nl.nand_(t, b);
  (void)t;
  return nl;
}

TEST(NetlistOpt, DeadSweepDropsUnobservedGatesOnly) {
  const Netlist nl = dead_side_cone_netlist();
  const CompiledNetlist plain(nl);
  const CompiledNetlist opt(nl, CompileOptions{.dead_sweep = true});
  // 9 side-cone gates dropped, live cone intact.
  EXPECT_EQ(plain.live_gates(), nl.size());
  EXPECT_EQ(opt.live_gates() + 9, plain.live_gates());
}

TEST(NetlistOpt, FaultOnSweptGateStaysProvablyUnobservable) {
  const Netlist nl = dead_side_cone_netlist();
  const FaultUniverse u(nl);
  Rng rng(777);
  PatternSet ps(nl);
  for (int i = 0; i < 64; ++i) ps.add_random(rng);

  // The oracle for "provably unobservable": the reference engine grades
  // every side-cone fault undetected, because no observe point is in its
  // fanout. The optimized engine must agree flag-for-flag — including
  // returning a well-defined (undetected) grade for faults whose host gate
  // was swept from the evaluation order.
  const CoverageResult ref =
      fault::simulate_comb(nl, u.collapsed(), ps, {}, Engine::kReference);
  const CoverageResult opt = grade(nl, u.collapsed(), ps, true);
  EXPECT_EQ(ref.detected_flags, opt.detected_flags);

  const std::vector<std::uint8_t> cone = CompiledNetlist(nl).fanin_cone(
      nl.output_nets());
  std::size_t swept_faults = 0;
  for (std::size_t i = 0; i < u.collapsed().size(); ++i) {
    if (cone[u.collapsed()[i].site.gate]) continue;
    ++swept_faults;
    EXPECT_EQ(opt.detected_flags[i], 0) << "swept-gate fault " << i;
  }
  EXPECT_GT(swept_faults, 0u);
}

// ---- fuse_inverters --------------------------------------------------------

/// Inverter/buffer chains of every parity feeding every consumer kind, with
/// fanout taps into the middle of the chains.
Netlist inverter_chain_netlist() {
  Netlist nl("inv_chains");
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId n1 = nl.not_(a);            // parity 1
  const NetId n2 = nl.not_(n1);           // parity 0
  const NetId n3 = nl.buf(n2);            // parity 0, buf link
  const NetId n4 = nl.not_(n3);           // parity 1
  const NetId m1 = nl.buf(b);
  const NetId m2 = nl.not_(m1);
  unsigned n = 0;
  auto out = [&](NetId id) { nl.output("o" + std::to_string(n++), id); };
  out(nl.and_(n4, m2));
  out(nl.or_(n1, m1));
  out(nl.nand_(n2, b));
  out(nl.nor_(n3, m2));
  out(nl.xor_(n4, m1));
  out(nl.xnor_(n1, n2));  // same chain twice, opposite parity
  out(nl.mux2(n1, m2, n4));
  out(nl.not_(n4));  // chain extended by the consumer itself
  out(n2);           // mid-chain tap is itself an output
  return nl;
}

TEST(NetlistOpt, InverterFusionMatchesReferenceOnAllMasks) {
  const Netlist nl = inverter_chain_netlist();
  const CompiledNetlist cn(nl, CompileOptions{.fuse_inverters = true});
  Evaluator oracle(nl);
  CompiledEvaluator full(cn, /*event_driven=*/false);
  CompiledEvaluator event(cn, /*event_driven=*/true);

  Rng rng(31337);
  const std::uint64_t masks[] = {
      1u,
      ~std::uint64_t{0},
      0xAAAAAAAAAAAAAAAAULL,
      0x8000000000000001ULL,
      rng.next64() | 1u,
  };
  for (Evaluator* e : {&oracle}) {
    e->set_input_word(nl.input_port("a")[0], 0xF0F0F0F0F0F0F0F0ULL);
    e->set_input_word(nl.input_port("b")[0], 0xFF00FF00FF00FF00ULL);
  }
  for (CompiledEvaluator* e : {&full, &event}) {
    e->set_input_word(nl.input_port("a")[0], 0xF0F0F0F0F0F0F0F0ULL);
    e->set_input_word(nl.input_port("b")[0], 0xFF00FF00FF00FF00ULL);
  }
  oracle.eval();
  full.eval();
  event.eval();
  for (NetId id = 0; id < nl.size(); ++id) {
    ASSERT_EQ(oracle.value(id), full.value(id)) << "pristine net " << id;
    ASSERT_EQ(oracle.value(id), event.value(id)) << "pristine net " << id;
  }

  // Single stuck-at faults on every site of every gate — chain gates whose
  // consumers were retargeted included — under every lane mask. The inject
  // remap must reproduce the reference value on every net (fusion keeps all
  // gates in the order, so all nets stay comparable).
  for (NetId g = 0; g < nl.size(); ++g) {
    const unsigned pins = fanin_count(nl.gate(g).kind);
    std::vector<std::uint8_t> sites{Site::kOutputPin};
    for (unsigned p = 0; p < pins; ++p) sites.push_back(std::uint8_t(p));
    for (std::uint8_t pin : sites) {
      for (std::uint64_t mask : masks) {
        for (bool sv : {false, true}) {
          const Site site{g, pin};
          oracle.inject(site, sv, mask);
          full.inject(site, sv, mask);
          event.inject(site, sv, mask);
          oracle.eval();
          full.eval();
          event.eval();
          for (NetId id = 0; id < nl.size(); ++id) {
            ASSERT_EQ(oracle.value(id), full.value(id))
                << "full g" << g << " pin " << int(pin) << " net " << id;
            ASSERT_EQ(oracle.value(id), event.value(id))
                << "event g" << g << " pin " << int(pin) << " net " << id;
          }
          oracle.clear_faults();
          full.clear_faults();
          event.clear_faults();
        }
      }
    }
  }
}

TEST(NetlistOpt, DffDPinsAreNeverFused) {
  // A NOT chain feeding a DFF's D input: fusing it would break the
  // reference quirk that D pins ignore pin forces, so the compiler must
  // leave the D edge alone.
  Netlist nl("dff_chain");
  const NetId a = nl.input("a");
  const NetId q = nl.dff("q");
  nl.connect_dff(q, nl.not_(nl.not_(nl.not_(a))));
  nl.output("y", nl.xor_(q, a));

  Evaluator oracle(nl);
  const CompiledNetlist cn(nl, CompileOptions::all());
  CompiledEvaluator ev(cn, /*event_driven=*/true);
  Rng rng(55);
  for (int cycle = 0; cycle < 12; ++cycle) {
    const std::uint64_t w = rng.next64();
    oracle.set_input_word(a, w);
    ev.set_input_word(a, w);
    if (cycle == 4) {
      // Pin force on D: both engines must latch the UNforced driven value.
      oracle.inject({q, 0}, true, ~std::uint64_t{0});
      ev.inject({q, 0}, true, ~std::uint64_t{0});
    }
    if (cycle == 6) {
      oracle.clear_faults();
      ev.clear_faults();
    }
    oracle.step();
    ev.step();
    expect_outputs_equal(oracle, ev, "dff_chain");
    ASSERT_EQ(oracle.value(q), ev.value(q));
  }
}

// ---- randomized fuzz -------------------------------------------------------

Netlist random_comb_netlist(Rng& rng, unsigned n_inputs, unsigned n_gates) {
  Netlist nl("random_comb");
  std::vector<NetId> nets;
  for (unsigned i = 0; i < n_inputs; ++i) {
    nets.push_back(nl.input("i" + std::to_string(i)));
  }
  // Seed constants so const_prop has material to fold.
  nets.push_back(nl.constant(false));
  nets.push_back(nl.constant(true));
  auto pick = [&] { return nets[rng.below(nets.size())]; };
  for (unsigned g = 0; g < n_gates; ++g) {
    NetId n;
    switch (rng.below(11)) {
      case 0: n = nl.buf(pick()); break;
      case 1:
      case 2: n = nl.not_(pick()); break;  // extra inverters to fuse
      case 3: n = nl.and_(pick(), pick()); break;
      case 4: n = nl.or_(pick(), pick()); break;
      case 5: n = nl.nand_(pick(), pick()); break;
      case 6: n = nl.nor_(pick(), pick()); break;
      case 7: n = nl.xor_(pick(), pick()); break;
      case 8: n = nl.xnor_(pick(), pick()); break;
      default: n = nl.mux2(pick(), pick(), pick()); break;
    }
    nets.push_back(n);
  }
  unsigned n_outputs = 0;
  for (std::size_t i = n_inputs; i < nets.size(); ++i) {
    // Leave a healthy share unobserved so dead_sweep has work.
    if (i + 3 >= nets.size() || rng.chance(0.07)) {
      nl.output("o" + std::to_string(n_outputs++), nets[i]);
    }
  }
  return nl;
}

TEST(NetlistOpt, FuzzRandomNetlistsOptimizedVsUnoptimized) {
  for (std::uint64_t seed : {11u, 12u, 13u, 14u, 15u, 16u}) {
    Rng rng(seed * 97 + 3);
    const Netlist nl = random_comb_netlist(rng, 4 + rng.below(6),
                                           50 + rng.below(120));
    SCOPED_TRACE("seed " + std::to_string(seed));
    Evaluator oracle(nl);
    const CompiledNetlist cn(nl, CompileOptions::all());
    CompiledEvaluator full(cn, /*event_driven=*/false);
    CompiledEvaluator event(cn, /*event_driven=*/true);
    const FaultUniverse u(nl);
    const std::vector<Fault>& faults = u.collapsed();

    for (int op = 0; op < 120; ++op) {
      // New stimulus.
      for (NetId in : nl.inputs()) {
        const std::uint64_t w = rng.next64();
        oracle.set_input_word(in, w);
        full.set_input_word(in, w);
        event.set_input_word(in, w);
      }
      oracle.eval();
      full.eval();
      event.eval();
      expect_outputs_equal(oracle, full, "fuzz pristine/full");
      expect_outputs_equal(oracle, event, "fuzz pristine/event");
      if (faults.empty()) continue;
      // One collapsed fault at a time (the simulator contract the
      // optimized equivalence is specified for).
      const Fault& f = faults[rng.below(faults.size())];
      const std::uint64_t mask = rng.next64() | 1u;
      oracle.inject(f.site, f.stuck_value, mask);
      full.inject(f.site, f.stuck_value, mask);
      event.inject(f.site, f.stuck_value, mask);
      oracle.eval();
      full.eval();
      event.eval();
      expect_outputs_equal(oracle, full, "fuzz fault/full");
      expect_outputs_equal(oracle, event, "fuzz fault/event");
      oracle.clear_faults();
      full.clear_faults();
      event.clear_faults();
    }
  }
}

TEST(NetlistOpt, FuzzGradingFlagsIdenticalOnRandomNetlists) {
  for (std::uint64_t seed : {31u, 32u, 33u}) {
    Rng rng(seed);
    const Netlist nl = random_comb_netlist(rng, 6, 80 + rng.below(80));
    SCOPED_TRACE("seed " + std::to_string(seed));
    const FaultUniverse u(nl);
    PatternSet ps(nl);
    for (int i = 0; i < 96; ++i) ps.add_random(rng);
    const CoverageResult plain = grade(nl, u.collapsed(), ps, false);
    for (unsigned lanes : {1u, 4u}) {
      const CoverageResult opt = grade(nl, u.collapsed(), ps, true, lanes);
      EXPECT_EQ(plain.detected_flags, opt.detected_flags)
          << "lanes " << lanes;
    }
  }
}

// ---- every rtlgen component ------------------------------------------------

void grade_component_both_ways(const Netlist& nl, std::uint64_t seed) {
  SCOPED_TRACE(nl.name());
  const FaultUniverse u(nl);
  Rng rng(seed);
  if (nl.is_combinational()) {
    PatternSet ps(nl);
    for (int i = 0; i < 96; ++i) ps.add_random(rng);
    const CoverageResult plain = grade(nl, u.collapsed(), ps, false);
    const CoverageResult opt = grade(nl, u.collapsed(), ps, true);
    EXPECT_EQ(plain.detected_flags, opt.detected_flags);
  } else {
    SeqStimulus st(nl);
    for (int c = 0; c < 40; ++c) {
      std::vector<PortValue> values;
      for (const Port& p : nl.input_ports()) {
        values.emplace_back(p.name, rng.next64());
      }
      st.add_cycle(values, rng.chance(0.7));
    }
    SimOptions plain_opt;
    plain_opt.num_threads = 1;
    plain_opt.engine = Engine::kEvent;
    plain_opt.netlist_opt = 0;
    SimOptions opt_opt = plain_opt;
    opt_opt.netlist_opt = 1;
    const CoverageResult plain = fault::simulate_seq_parallel(
        nl, u.collapsed(), st, {}, plain_opt);
    const CoverageResult opt = fault::simulate_seq_parallel(
        nl, u.collapsed(), st, {}, opt_opt);
    EXPECT_EQ(plain.detected_flags, opt.detected_flags);
  }
}

TEST(NetlistOpt, RtlgenCombComponentsGradeIdentically) {
  grade_component_both_ways(rtlgen::build_alu({.width = 8}), 700);
  grade_component_both_ways(rtlgen::build_shifter({.width = 8}), 701);
  grade_component_both_ways(rtlgen::build_multiplier({.width = 8}), 702);
  grade_component_both_ways(rtlgen::build_comparator({.width = 8}), 703);
  grade_component_both_ways(rtlgen::build_control(), 704);
  grade_component_both_ways(rtlgen::build_forwarding_unit(), 705);
}

TEST(NetlistOpt, RtlgenSeqComponentsGradeIdentically) {
  grade_component_both_ways(rtlgen::build_pipe_reg({.width = 8}), 710);
  grade_component_both_ways(rtlgen::build_divider({.width = 8}), 711);
  grade_component_both_ways(rtlgen::build_regfile({.num_regs = 8, .width = 8}),
                            712);
  grade_component_both_ways(rtlgen::build_memctrl(), 713);
}

TEST(NetlistOpt, OptimizationShrinksRtlgenComponents) {
  // The passes must actually bite on real components, not just be safe.
  std::size_t total_plain = 0, total_opt = 0;
  for (const Netlist& nl :
       {rtlgen::build_alu({.width = 16}), rtlgen::build_control(),
        rtlgen::build_memctrl()}) {
    total_plain += CompiledNetlist(nl).live_gates();
    total_opt += CompiledNetlist(nl, CompileOptions::all()).live_gates();
  }
  EXPECT_LT(total_opt, total_plain);
}

}  // namespace
}  // namespace sbst::netlist
