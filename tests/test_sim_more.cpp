// Additional CPU/cache coverage: timing-model arithmetic, interlocks,
// cache bookkeeping, and ISA corner semantics.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "sim/cpu.hpp"

namespace sbst::sim {
namespace {

ExecStats run_source(Cpu& cpu, const char* source) {
  const isa::Program p = isa::assemble(source);
  cpu.reset();
  cpu.load(p);
  return cpu.run(0);
}

TEST(ExecStats, AnalyticModelArithmetic) {
  ExecStats s;
  s.instructions = 1000;
  s.cpu_cycles = 1200;
  s.pipeline_stall_cycles = 50;
  s.loads = 30;
  s.stores = 20;
  // accesses = instructions + loads + stores = 1050; 10% * 20 = 2 per access.
  EXPECT_EQ(s.analytic_total_cycles(0.10, 20), 1200u + 50u + 2100u);
  EXPECT_EQ(s.analytic_total_cycles(0.0, 20), 1250u);
  EXPECT_EQ(s.data_references(), 50u);
  EXPECT_DOUBLE_EQ(ExecStats{.cpu_cycles = 57}.seconds(57e6), 1e-6);
}

TEST(Cache, DirectMappedConflictEviction) {
  Cache c({.enabled = true, .line_words = 4, .lines = 4, .miss_penalty = 1});
  EXPECT_FALSE(c.access(0x00));  // miss, fill line 0
  EXPECT_TRUE(c.access(0x04));   // same line
  EXPECT_FALSE(c.access(0x40));  // line 0 conflict (4 lines * 16B = 64B)
  EXPECT_FALSE(c.access(0x00));  // evicted
  EXPECT_EQ(c.misses(), 3u);
  EXPECT_EQ(c.hits(), 1u);
  c.flush();
  EXPECT_FALSE(c.access(0x40));
  c.reset_stats();
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_DOUBLE_EQ(c.miss_rate(), 0.0);
}

TEST(Cache, DisabledCacheAlwaysHits) {
  Cache c({.enabled = false});
  for (std::uint32_t a = 0; a < 4096; a += 64) EXPECT_TRUE(c.access(a));
  EXPECT_EQ(c.misses(), 0u);
}

TEST(Cpu, BackToBackDividesInterlock) {
  Cpu cpu;  // div_cycles = 32
  const ExecStats s = run_source(cpu, R"(
    li $s0, 1000
    li $s1, 7
    divu $s0, $s1
    divu $s1, $s0    # must wait for the first divide
    mflo $t0
    break
  )");
  // Two serial divides cannot overlap: > 64 cycles total.
  EXPECT_GT(s.cpu_cycles, 64u);
}

TEST(Cpu, MultThenUnrelatedWorkHidesLatency) {
  Cpu cpu;
  const ExecStats hidden = run_source(cpu, R"(
    li $s0, 3
    li $s1, 5
    mult $s0, $s1
    addu $t0, $s0, $s1   # 4 unrelated instructions cover mult_cycles=4
    addu $t1, $t0, $t0
    addu $t2, $t1, $t1
    addu $t3, $t2, $t2
    mflo $t4
    break
  )");
  const ExecStats exposed = run_source(cpu, R"(
    li $s0, 3
    li $s1, 5
    mult $s0, $s1
    mflo $t4
    break
  )");
  EXPECT_LE(hidden.cpu_cycles, exposed.cpu_cycles + 4);
  EXPECT_EQ(cpu.reg(isa::kT4), 15u);
}

TEST(Cpu, VariableShiftsMaskTo5Bits) {
  Cpu cpu;
  run_source(cpu, R"(
    li $s0, 1
    li $s1, 33        # shamt 33 & 31 = 1
    sllv $t0, $s0, $s1
    break
  )");
  EXPECT_EQ(cpu.reg(isa::kT0), 2u);
}

TEST(Cpu, SltBoundaryComparisons) {
  Cpu cpu;
  run_source(cpu, R"(
    li $s0, 0x80000000   # INT_MIN
    li $s1, 0x7fffffff   # INT_MAX
    slt  $t0, $s0, $s1   # signed: 1
    sltu $t1, $s0, $s1   # unsigned: 0
    slt  $t2, $s1, $s0   # 0
    sltu $t3, $s1, $s0   # 1
    break
  )");
  EXPECT_EQ(cpu.reg(isa::kT0), 1u);
  EXPECT_EQ(cpu.reg(isa::kT1), 0u);
  EXPECT_EQ(cpu.reg(isa::kT2), 0u);
  EXPECT_EQ(cpu.reg(isa::kT3), 1u);
}

TEST(Cpu, StoreByteDoesNotDisturbNeighbours) {
  Cpu cpu;
  run_source(cpu, R"(
    li $s3, 0x2000
    li $s0, 0x11223344
    sw $s0, 0($s3)
    li $s1, 0xff
    sb $s1, 2($s3)
    lw $t0, 0($s3)
    break
  )");
  EXPECT_EQ(cpu.reg(isa::kT0), 0x11ff3344u);
}

TEST(Cpu, HiLoMoves) {
  Cpu cpu;
  run_source(cpu, R"(
    li $s0, 0xdead
    li $s1, 0xbeef
    mthi $s0
    mtlo $s1
    mfhi $t0
    mflo $t1
    break
  )");
  EXPECT_EQ(cpu.reg(isa::kT0), 0xdeadu);
  EXPECT_EQ(cpu.reg(isa::kT1), 0xbeefu);
  EXPECT_EQ(cpu.hi(), 0xdeadu);
  EXPECT_EQ(cpu.lo(), 0xbeefu);
}

TEST(Cpu, JumpDelaySlotExecutes) {
  Cpu cpu;
  run_source(cpu, R"(
    j target
    li $t0, 1       # delay slot executes
    li $t1, 2       # skipped
  target:
    break
  )");
  EXPECT_EQ(cpu.reg(isa::kT0), 1u);
  EXPECT_EQ(cpu.reg(isa::kT1), 0u);
}

TEST(Cpu, ResetClearsArchitecturalState) {
  Cpu cpu;
  run_source(cpu, "li $t0, 5\nmthi $t0\nbreak\n");
  EXPECT_EQ(cpu.reg(isa::kT0), 5u);
  cpu.reset();
  EXPECT_EQ(cpu.reg(isa::kT0), 0u);
  EXPECT_EQ(cpu.hi(), 0u);
}

TEST(Cpu, LoadRespectsMemoryBounds) {
  CpuConfig cfg;
  cfg.mem_bytes = 0x1000;
  Cpu cpu(cfg);
  EXPECT_THROW(run_source(cpu, R"(
    li $s3, 0x2000
    lw $t0, 0($s3)
  )"),
               CpuError);
}

TEST(Cpu, StallAccountingDistinguishesCategories) {
  CpuConfig cfg;
  cfg.icache = {.enabled = true, .line_words = 4, .lines = 8,
                .miss_penalty = 7};
  cfg.dcache.enabled = false;  // isolate instruction-side memory stalls
  Cpu cpu(cfg);
  const ExecStats s = run_source(cpu, R"(
    li $s3, 0x2000
    lw $t0, 0($s3)
    addu $t1, $t0, $t0   # load-use stall
    break
  )");
  EXPECT_EQ(s.pipeline_stall_cycles, 1u);
  EXPECT_EQ(s.memory_stall_cycles, s.icache_misses * 7);
  EXPECT_EQ(s.total_cycles(),
            s.cpu_cycles + s.pipeline_stall_cycles + s.memory_stall_cycles);
}

}  // namespace
}  // namespace sbst::sim
