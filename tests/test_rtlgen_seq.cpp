// Sequential component generators: divider, register file, memory
// controller, pipeline register, forwarding unit.
#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "netlist/eval.hpp"
#include "rtlgen/divider.hpp"
#include "rtlgen/memctrl.hpp"
#include "rtlgen/pipeline.hpp"
#include "rtlgen/regfile.hpp"

namespace sbst::rtlgen {
namespace {

using netlist::Evaluator;
using netlist::Netlist;

// ---------------------------------------------------------------- divider --

struct DivRun {
  std::uint32_t quotient;
  std::uint32_t remainder;
  bool done;
};

DivRun run_division(const Netlist& nl, Evaluator& ev, unsigned width,
                    std::uint32_t dividend, std::uint32_t divisor) {
  ev.set_bus(nl.input_port("start"), 1);
  ev.set_bus(nl.input_port("dividend"), dividend);
  ev.set_bus(nl.input_port("divisor"), divisor);
  ev.step();
  ev.set_bus(nl.input_port("start"), 0);
  for (unsigned i = 0; i < width; ++i) ev.step();
  ev.eval();
  return {static_cast<std::uint32_t>(ev.bus_value(nl.output_port("quotient"))),
          static_cast<std::uint32_t>(
              ev.bus_value(nl.output_port("remainder"))),
          (ev.value(nl.output_port("done")[0]) & 1u) != 0};
}

class DividerWidthTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DividerWidthTest, MatchesGoldenModel) {
  const unsigned width = GetParam();
  const Netlist nl = build_divider({.width = width});
  Evaluator ev(nl);
  ev.reset_state(false);
  Rng rng(width);
  const std::uint32_t mask = static_cast<std::uint32_t>(low_mask(width));
  auto check = [&](std::uint32_t dividend, std::uint32_t divisor) {
    const DivRun run = run_division(nl, ev, width, dividend, divisor);
    const DivRef expect = divider_ref(dividend, divisor, width);
    EXPECT_TRUE(run.done);
    EXPECT_EQ(run.quotient, expect.quotient)
        << dividend << "/" << divisor << " width=" << width;
    EXPECT_EQ(run.remainder, expect.remainder)
        << dividend << "%" << divisor << " width=" << width;
  };
  check(0, 1);
  check(mask, 1);
  check(mask, mask);
  check(1, mask);
  check(100 & mask, 7 & mask);
  for (int i = 0; i < 50; ++i) {
    check(rng.next32() & mask, (rng.next32() & mask) | 1u);
  }
  // Division by zero follows the restoring-datapath convention.
  const DivRun dz = run_division(nl, ev, width, 42 & mask, 0);
  EXPECT_EQ(dz.quotient, mask);
  EXPECT_EQ(dz.remainder, 42u & mask);
}

INSTANTIATE_TEST_SUITE_P(Widths, DividerWidthTest,
                         ::testing::Values(4u, 8u, 32u),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

TEST(Divider, BackToBackDivisions) {
  const Netlist nl = build_divider({.width = 8});
  Evaluator ev(nl);
  ev.reset_state(false);
  // State left by a previous division must not leak into the next.
  run_division(nl, ev, 8, 0xff, 0x3);
  const DivRun second = run_division(nl, ev, 8, 100, 7);
  EXPECT_EQ(second.quotient, 14u);
  EXPECT_EQ(second.remainder, 2u);
}

TEST(Divider, DoneStaysLowWhileBusy) {
  const Netlist nl = build_divider({.width = 8});
  Evaluator ev(nl);
  ev.reset_state(false);
  ev.set_bus(nl.input_port("start"), 1);
  ev.set_bus(nl.input_port("dividend"), 200);
  ev.set_bus(nl.input_port("divisor"), 9);
  ev.step();
  ev.set_bus(nl.input_port("start"), 0);
  for (unsigned i = 0; i < 8; ++i) {
    ev.eval();
    EXPECT_EQ(ev.value(nl.output_port("done")[0]) & 1u, 0u) << "cycle " << i;
    ev.step();
  }
  ev.eval();
  EXPECT_EQ(ev.value(nl.output_port("done")[0]) & 1u, 1u);
}

// ---------------------------------------------------------- register file --

struct RegFileHarness {
  Netlist nl;
  explicit RegFileHarness(unsigned n, unsigned w)
      : nl(build_regfile({.num_regs = n, .width = w})) {}

  void write(Evaluator& ev, unsigned addr, std::uint64_t data) {
    ev.set_bus(nl.input_port("waddr"), addr);
    ev.set_bus(nl.input_port("wdata"), data);
    ev.set_bus(nl.input_port("wen"), 1);
    ev.step();
    ev.set_bus(nl.input_port("wen"), 0);
  }
  std::uint64_t read1(Evaluator& ev, unsigned addr) {
    ev.set_bus(nl.input_port("raddr1"), addr);
    ev.eval();
    return ev.bus_value(nl.output_port("rdata1"));
  }
  std::uint64_t read2(Evaluator& ev, unsigned addr) {
    ev.set_bus(nl.input_port("raddr2"), addr);
    ev.eval();
    return ev.bus_value(nl.output_port("rdata2"));
  }
};

TEST(RegFile, WriteReadAllRegisters) {
  RegFileHarness h(16, 16);
  Evaluator ev(h.nl);
  ev.reset_state(false);
  for (unsigned r = 1; r < 16; ++r) {
    h.write(ev, r, 0x1000u + r);
  }
  for (unsigned r = 1; r < 16; ++r) {
    EXPECT_EQ(h.read1(ev, r), 0x1000u + r);
    EXPECT_EQ(h.read2(ev, r), 0x1000u + r);
  }
}

TEST(RegFile, RegisterZeroIsHardwired) {
  RegFileHarness h(8, 8);
  Evaluator ev(h.nl);
  ev.reset_state(false);
  h.write(ev, 0, 0xff);
  EXPECT_EQ(h.read1(ev, 0), 0u);
}

TEST(RegFile, WriteEnableGates) {
  RegFileHarness h(8, 8);
  Evaluator ev(h.nl);
  ev.reset_state(false);
  h.write(ev, 3, 0xaa);
  // Present new data with wen low: register must hold.
  ev.set_bus(h.nl.input_port("waddr"), 3);
  ev.set_bus(h.nl.input_port("wdata"), 0x55);
  ev.set_bus(h.nl.input_port("wen"), 0);
  ev.step();
  EXPECT_EQ(h.read1(ev, 3), 0xaau);
}

TEST(RegFile, WriteTargetsOnlyAddressedRegister) {
  RegFileHarness h(8, 8);
  Evaluator ev(h.nl);
  ev.reset_state(false);
  h.write(ev, 2, 0x22);
  h.write(ev, 5, 0x55);
  h.write(ev, 2, 0x23);
  EXPECT_EQ(h.read1(ev, 2), 0x23u);
  EXPECT_EQ(h.read2(ev, 5), 0x55u);
  EXPECT_EQ(h.read1(ev, 1), 0u);
}

TEST(RegFile, TwoReadPortsAreIndependent) {
  RegFileHarness h(8, 8);
  Evaluator ev(h.nl);
  ev.reset_state(false);
  h.write(ev, 1, 0x11);
  h.write(ev, 7, 0x77);
  ev.set_bus(h.nl.input_port("raddr1"), 1);
  ev.set_bus(h.nl.input_port("raddr2"), 7);
  ev.eval();
  EXPECT_EQ(ev.bus_value(h.nl.output_port("rdata1")), 0x11u);
  EXPECT_EQ(ev.bus_value(h.nl.output_port("rdata2")), 0x77u);
}

TEST(RegFile, GateCountDominatedByFlipFlops) {
  const Netlist nl = build_regfile({.num_regs = 32, .width = 32});
  // 31 writable registers x 32 bits.
  EXPECT_EQ(nl.dffs().size(), 31u * 32u);
  EXPECT_GT(nl.gate_equivalents(), 5000);
}

// ------------------------------------------------------- memory controller --

struct MemHarness {
  Netlist nl = build_memctrl();

  void issue(Evaluator& ev, std::uint32_t addr, std::uint32_t wdata,
             MemSize size, bool sign, bool wr) {
    ev.set_bus(nl.input_port("addr"), addr);
    ev.set_bus(nl.input_port("wdata"), wdata);
    ev.set_bus(nl.input_port("size"), static_cast<std::uint64_t>(size));
    ev.set_bus(nl.input_port("sign"), sign);
    ev.set_bus(nl.input_port("wr"), wr);
    ev.set_bus(nl.input_port("en"), 1);
    ev.step();
    ev.set_bus(nl.input_port("en"), 0);
  }
};

TEST(MemCtrl, StorePathMatchesGoldenModel) {
  MemHarness h;
  Evaluator ev(h.nl);
  ev.reset_state(false);
  Rng rng(23);
  for (MemSize size : {MemSize::kByte, MemSize::kHalf, MemSize::kWord}) {
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t addr = rng.next32() & ~0u;
      const std::uint32_t data = rng.next32();
      h.issue(ev, addr, data, size, false, true);
      ev.eval();
      const MemCtrlRef expect = memctrl_store_ref(addr, data, size, true);
      EXPECT_EQ(ev.bus_value(h.nl.output_port("mem_addr")), addr);
      EXPECT_EQ(ev.bus_value(h.nl.output_port("mem_wdata")),
                expect.mem_wdata);
      EXPECT_EQ(ev.bus_value(h.nl.output_port("byte_en")), expect.byte_en);
    }
  }
}

TEST(MemCtrl, LoadPathMatchesGoldenModel) {
  MemHarness h;
  Evaluator ev(h.nl);
  ev.reset_state(false);
  Rng rng(29);
  for (MemSize size : {MemSize::kByte, MemSize::kHalf, MemSize::kWord}) {
    for (bool sign : {false, true}) {
      for (int i = 0; i < 64; ++i) {
        std::uint32_t addr = rng.next32();
        if (size == MemSize::kHalf) addr &= ~1u;
        if (size == MemSize::kWord) addr &= ~3u;
        const std::uint32_t mem_word = rng.next32();
        h.issue(ev, addr, 0, size, sign, false);
        ev.set_bus(h.nl.input_port("mem_rdata"), mem_word);
        ev.eval();
        EXPECT_EQ(ev.bus_value(h.nl.output_port("rdata")),
                  memctrl_load_ref(addr, mem_word, size, sign))
            << "addr=" << addr << " size=" << static_cast<int>(size)
            << " sign=" << sign;
      }
    }
  }
}

TEST(MemCtrl, ByteEnableZeroOnReads) {
  MemHarness h;
  Evaluator ev(h.nl);
  ev.reset_state(false);
  h.issue(ev, 0x104, 0xdeadbeef, MemSize::kWord, false, false);
  ev.eval();
  EXPECT_EQ(ev.bus_value(h.nl.output_port("byte_en")), 0u);
}

TEST(MemCtrl, MarHoldsWithoutEnable) {
  MemHarness h;
  Evaluator ev(h.nl);
  ev.reset_state(false);
  h.issue(ev, 0x1234, 0, MemSize::kWord, false, false);
  ev.set_bus(h.nl.input_port("addr"), 0x9999);
  ev.step();  // en low: MAR must hold
  ev.eval();
  EXPECT_EQ(ev.bus_value(h.nl.output_port("mem_addr")), 0x1234u);
}

// --------------------------------------------------------------- pipeline --

TEST(PipeReg, CapturesHoldsAndFlushes) {
  const Netlist nl = build_pipe_reg({.width = 8});
  Evaluator ev(nl);
  ev.reset_state(false);
  ev.set_bus(nl.input_port("d"), 0x5a);
  ev.set_bus(nl.input_port("en"), 1);
  ev.set_bus(nl.input_port("flush"), 0);
  ev.step();
  ev.eval();
  EXPECT_EQ(ev.bus_value(nl.output_port("q")), 0x5au);

  ev.set_bus(nl.input_port("d"), 0xff);
  ev.set_bus(nl.input_port("en"), 0);  // stall
  ev.step();
  ev.eval();
  EXPECT_EQ(ev.bus_value(nl.output_port("q")), 0x5au);

  ev.set_bus(nl.input_port("flush"), 1);
  ev.step();
  ev.eval();
  EXPECT_EQ(ev.bus_value(nl.output_port("q")), 0u);
}

TEST(ForwardingUnit, MatchesGoldenModel) {
  const Netlist nl = build_forwarding_unit();
  Evaluator ev(nl);
  Rng rng(31);
  auto check = [&](unsigned rs, unsigned rt, unsigned ex_rd, bool ex_wen,
                   unsigned mem_rd, bool mem_wen) {
    ev.set_bus(nl.input_port("rs"), rs);
    ev.set_bus(nl.input_port("rt"), rt);
    ev.set_bus(nl.input_port("ex_rd"), ex_rd);
    ev.set_bus(nl.input_port("ex_wen"), ex_wen);
    ev.set_bus(nl.input_port("mem_rd"), mem_rd);
    ev.set_bus(nl.input_port("mem_wen"), mem_wen);
    ev.eval();
    const ForwardRef expect =
        forwarding_ref(rs, rt, ex_rd, ex_wen, mem_rd, mem_wen);
    EXPECT_EQ(ev.bus_value(nl.output_port("fwd_a")),
              static_cast<std::uint64_t>(expect.a));
    EXPECT_EQ(ev.bus_value(nl.output_port("fwd_b")),
              static_cast<std::uint64_t>(expect.b));
  };
  check(1, 2, 1, true, 2, true);    // EX hit on rs, MEM hit on rt
  check(1, 1, 1, true, 1, true);    // EX priority over MEM
  check(0, 0, 0, true, 0, true);    // $zero never forwards
  check(3, 4, 3, false, 4, false);  // disabled write enables
  for (int i = 0; i < 2000; ++i) {
    check(rng.below(32), rng.below(32), rng.below(32), rng.chance(0.5),
          rng.below(32), rng.chance(0.5));
  }
}

}  // namespace
}  // namespace sbst::rtlgen
