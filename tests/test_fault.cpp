// Fault universe, collapsing, and the three fault-simulation engines.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "fault/pattern.hpp"
#include "fault/sim.hpp"
#include "rtlgen/alu.hpp"
#include "rtlgen/divider.hpp"
#include "rtlgen/shifter.hpp"

namespace sbst::fault {
namespace {

using netlist::Netlist;
using netlist::NetId;

// c17-style tiny benchmark circuit: irredundant, fully testable.
Netlist make_c17() {
  Netlist nl("c17");
  const NetId i1 = nl.input("i1");
  const NetId i2 = nl.input("i2");
  const NetId i3 = nl.input("i3");
  const NetId i4 = nl.input("i4");
  const NetId i5 = nl.input("i5");
  const NetId g1 = nl.nand_(i1, i3);
  const NetId g2 = nl.nand_(i3, i4);
  const NetId g3 = nl.nand_(i2, g2);
  const NetId g4 = nl.nand_(g2, i5);
  nl.output("o1", nl.nand_(g1, g3));
  nl.output("o2", nl.nand_(g3, g4));
  return nl;
}

PatternSet exhaustive_patterns(const Netlist& nl) {
  PatternSet ps(nl);
  const std::size_t n = nl.inputs().size();
  for (std::uint64_t v = 0; v < (std::uint64_t{1} << n); ++v) {
    std::vector<PortValue> assignment;
    std::uint64_t rest = v;
    for (const netlist::Port& p : nl.input_ports()) {
      assignment.emplace_back(p.name, rest & low_mask(static_cast<unsigned>(
                                                p.nets.size())));
      rest >>= p.nets.size();
    }
    ps.add(assignment);
  }
  return ps;
}

TEST(FaultUniverse, CollapsingShrinksButKeepsAllClasses) {
  const Netlist nl = make_c17();
  FaultUniverse u(nl);
  EXPECT_GT(u.uncollapsed_count(), u.size());
  EXPECT_GT(u.size(), 0u);
  // Representatives must be unique.
  std::set<std::pair<std::uint64_t, bool>> seen;
  for (const Fault& f : u.collapsed()) {
    const auto key = std::make_pair(
        static_cast<std::uint64_t>(f.site.gate) * 256 + f.site.pin,
        f.stuck_value);
    EXPECT_TRUE(seen.insert(key).second) << fault_name(nl, f);
  }
}

TEST(FaultUniverse, C17FullyTestableByExhaustiveSet) {
  // c17 is irredundant: every collapsed fault must be detected by the
  // exhaustive pattern set.
  const Netlist nl = make_c17();
  FaultUniverse u(nl);
  const PatternSet ps = exhaustive_patterns(nl);
  const CoverageResult res = simulate_comb(nl, u.collapsed(), ps);
  EXPECT_EQ(res.detected, res.total);
  EXPECT_DOUBLE_EQ(res.percent(), 100.0);
}

TEST(FaultUniverse, ConstantsOnlyGetOppositePolarity) {
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId c1 = nl.constant(true);
  nl.output("x", nl.and_(a, c1));
  FaultUniverse u(nl);
  for (const Fault& f : u.collapsed()) {
    if (f.site.gate == c1 && f.site.is_output()) {
      EXPECT_FALSE(f.stuck_value);
    }
  }
}

TEST(FaultSim, SerialAndPpsfpAgreeOnC17) {
  const Netlist nl = make_c17();
  FaultUniverse u(nl);
  Rng rng(3);
  PatternSet ps(nl);
  for (int i = 0; i < 10; ++i) ps.add_random(rng);
  const CoverageResult serial = simulate_serial(nl, u.collapsed(), ps);
  const CoverageResult ppsfp = simulate_comb(nl, u.collapsed(), ps);
  ASSERT_EQ(serial.detected_flags.size(), ppsfp.detected_flags.size());
  for (std::size_t i = 0; i < serial.detected_flags.size(); ++i) {
    EXPECT_EQ(serial.detected_flags[i], ppsfp.detected_flags[i])
        << fault_name(nl, u.collapsed()[i]);
  }
}

TEST(FaultSim, SerialAndPpsfpAgreeOnAlu8) {
  const Netlist nl = rtlgen::build_alu({.width = 8});
  FaultUniverse u(nl);
  Rng rng(5);
  PatternSet ps(nl);
  for (int i = 0; i < 40; ++i) ps.add_random(rng);
  const CoverageResult serial = simulate_serial(nl, u.collapsed(), ps);
  const CoverageResult ppsfp = simulate_comb(nl, u.collapsed(), ps);
  EXPECT_EQ(serial.detected, ppsfp.detected);
  for (std::size_t i = 0; i < serial.detected_flags.size(); ++i) {
    EXPECT_EQ(serial.detected_flags[i], ppsfp.detected_flags[i])
        << fault_name(nl, u.collapsed()[i]);
  }
}

TEST(FaultSim, ObserveSetRestrictsDetection) {
  // Two disjoint cones: with only x observed, faults in y's cone must not
  // be credited.
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId c = nl.input("c");
  const NetId d = nl.input("d");
  nl.output("x", nl.and_(a, b));
  const NetId y = nl.xor_(c, d);
  nl.output("y", y);
  FaultUniverse u(nl);
  const PatternSet ps = exhaustive_patterns(nl);
  const ObserveSet only_x{nl.output_port("x")[0]};
  const CoverageResult partial = simulate_comb(nl, u.collapsed(), ps, only_x);
  const CoverageResult full = simulate_comb(nl, u.collapsed(), ps);
  EXPECT_LT(partial.detected, full.detected);
  for (std::size_t i = 0; i < u.size(); ++i) {
    if (u.collapsed()[i].site.gate == y) {
      EXPECT_EQ(partial.detected_flags[i], 0);
    }
  }
}

TEST(FaultSim, ValidLaneMaskPreventsPhantomDetections) {
  // A single pattern (1 valid lane in the block): faults detectable only by
  // other input values must stay undetected.
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId x = nl.and_(a, b);
  nl.output("x", x);
  FaultUniverse u(nl);
  PatternSet ps(nl);
  ps.add({{"a", 1}, {"b", 1}});  // detects only sa0-class faults
  const CoverageResult res = simulate_comb(nl, u.collapsed(), ps);
  for (std::size_t i = 0; i < u.size(); ++i) {
    const Fault& f = u.collapsed()[i];
    if (f.site.gate == x && f.site.is_output()) {
      EXPECT_EQ(res.detected_flags[i], f.stuck_value ? 0 : 1);
    }
  }
}

TEST(FaultSim, SequentialEngineMatchesCombOnCombinationalCircuit) {
  const Netlist nl = make_c17();
  FaultUniverse u(nl);
  Rng rng(9);
  PatternSet ps(nl);
  SeqStimulus seq(nl);
  for (int i = 0; i < 20; ++i) {
    std::vector<PortValue> assignment;
    for (const netlist::Port& p : nl.input_ports()) {
      assignment.emplace_back(p.name, rng.next64() & 1u);
    }
    ps.add(assignment);
    seq.add_cycle(assignment, /*observe=*/true);
  }
  const CoverageResult comb = simulate_comb(nl, u.collapsed(), ps);
  const CoverageResult sequential = simulate_seq(nl, u.collapsed(), seq);
  EXPECT_EQ(comb.detected, sequential.detected);
  for (std::size_t i = 0; i < comb.detected_flags.size(); ++i) {
    EXPECT_EQ(comb.detected_flags[i], sequential.detected_flags[i]);
  }
}

TEST(FaultSim, SequentialDividerDetectsDatapathFaults) {
  const Netlist nl = rtlgen::build_divider({.width = 4});
  FaultUniverse u(nl);
  SeqStimulus seq(nl);
  // A few divisions with varied operands, observing after completion.
  const std::pair<unsigned, unsigned> ops[] = {
      {15, 1}, {15, 15}, {9, 4}, {5, 10}, {0, 3}, {7, 2}, {12, 5}, {3, 3}};
  for (auto [dividend, divisor] : ops) {
    seq.add_cycle({{"start", 1},
                   {"dividend", dividend},
                   {"divisor", divisor}},
                  false);
    for (int i = 0; i < 4; ++i) {
      seq.add_cycle({{"start", 0}}, false);
    }
    // Results are read (and the hold paths exercised) after completion,
    // like the mflo/mfhi that follows a div instruction.
    seq.add_cycle({{"start", 0}}, true);
  }
  const CoverageResult res = simulate_seq(nl, u.collapsed(), seq);
  // The datapath is well exercised; expect solid (not necessarily full)
  // coverage from just 8 divisions observed only at their final results.
  EXPECT_GT(res.percent(), 65.0);
  EXPECT_LT(res.percent(), 100.0);  // control-path corners remain
}

TEST(FaultSim, MergeAccumulatesAcrossRoutines) {
  const Netlist nl = make_c17();
  FaultUniverse u(nl);
  PatternSet p1(nl), p2(nl);
  p1.add({{"i1", 1}, {"i2", 0}, {"i3", 1}, {"i4", 0}, {"i5", 1}});
  p2.add({{"i1", 0}, {"i2", 1}, {"i3", 0}, {"i4", 1}, {"i5", 0}});
  CoverageResult r1 = simulate_comb(nl, u.collapsed(), p1);
  const CoverageResult r2 = simulate_comb(nl, u.collapsed(), p2);
  const std::size_t d1 = r1.detected;
  r1.merge(r2);
  EXPECT_GE(r1.detected, d1);
  EXPECT_GE(r1.detected, r2.detected);
}

TEST(FaultSim, GoodResponsesMatchEvaluator) {
  const Netlist nl = rtlgen::build_shifter({.width = 8});
  Rng rng(21);
  PatternSet ps(nl);
  for (int i = 0; i < 100; ++i) ps.add_random(rng);
  const auto responses = good_responses(nl, ps);
  ASSERT_EQ(responses.size(), 100u);
  // Cross-check pattern 37 against a direct evaluation.
  netlist::Evaluator ev(nl);
  ev.set_bus(nl.input_port("a"), ps.value_of(37, "a"));
  ev.set_bus(nl.input_port("shamt"), ps.value_of(37, "shamt"));
  ev.set_bus(nl.input_port("op"), ps.value_of(37, "op"));
  ev.eval();
  const auto outs = nl.output_nets();
  for (std::size_t o = 0; o < outs.size(); ++o) {
    EXPECT_EQ(responses[37][o], (ev.value(outs[o]) & 1u) != 0);
  }
}

TEST(CoverageResult, PercentHandlesEmpty) {
  CoverageResult r;
  EXPECT_DOUBLE_EQ(r.percent(), 100.0);
}

}  // namespace
}  // namespace sbst::fault
