// Baseline generator (random-instruction functional SBST) and signature
// diagnosis.
#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/diagnose.hpp"
#include "core/inject.hpp"
#include "core/program.hpp"
#include "sim/cpu.hpp"

namespace sbst::core {
namespace {

TEST(Baseline, GeneratesValidTerminatingPrograms) {
  for (std::uint64_t seed : {1u, 7u, 99u}) {
    RandomProgramOptions opts;
    opts.instruction_count = 500;
    opts.seed = seed;
    TestProgramBuilder builder;
    const TestProgram p =
        builder.build_standalone(make_random_instruction_routine(opts));
    sim::Cpu cpu;
    cpu.reset();
    cpu.load(p.image);
    const sim::ExecStats s = cpu.run(p.entry, 200000);
    EXPECT_TRUE(s.halted) << "seed " << seed;
    EXPECT_NE(cpu.read_word(p.signature_address(7)), 0u);
  }
}

TEST(Baseline, DeterministicInSeed) {
  RandomProgramOptions opts;
  opts.instruction_count = 300;
  opts.seed = 5;
  const Routine a = make_random_instruction_routine(opts);
  const Routine b = make_random_instruction_routine(opts);
  EXPECT_EQ(a.assembly, b.assembly);
  opts.seed = 6;
  EXPECT_NE(make_random_instruction_routine(opts).assembly, a.assembly);
}

TEST(Baseline, SizeScalesWithInstructionCount) {
  RandomProgramOptions small, large;
  small.instruction_count = 256;
  large.instruction_count = 2048;
  TestProgramBuilder builder;
  const auto ps = builder.build_standalone(
      make_random_instruction_routine(small));
  const auto pl = builder.build_standalone(
      make_random_instruction_routine(large));
  // The paper's size argument: functional-random program size grows
  // linearly with the instruction budget.
  EXPECT_GT(pl.image.size_words(), 4 * ps.image.size_words() / 2);
}

TEST(Baseline, MemoryAccessesStayInSandbox) {
  RandomProgramOptions opts;
  opts.instruction_count = 2000;
  opts.seed = 11;
  opts.data_base = 0x40000;
  opts.data_bytes = 128;
  TestProgramBuilder builder;
  const TestProgram p =
      builder.build_standalone(make_random_instruction_routine(opts));
  sim::CpuConfig cfg;
  cfg.mem_bytes = 0x41000;  // just enough for image + sandbox
  sim::Cpu cpu(cfg);
  cpu.reset();
  cpu.load(p.image);
  EXPECT_NO_THROW(cpu.run(p.entry, 200000));  // no out-of-window access
}

// ---- diagnosis ---------------------------------------------------------------

struct DiagnosisFixture {
  ProcessorModel model;
  TestProgramBuilder builder;
  TestProgram program;
  DiagnosisFixture() {
    builder.add_default_routines(model);
    program = builder.build();
  }
};

DiagnosisFixture& fixture() {
  static DiagnosisFixture f;
  return f;
}

TEST(Diagnose, CleanSignaturesMeanNoFault) {
  const std::vector<std::uint32_t> sigs(kSignatureSlots, 0x1234);
  const Diagnosis d = diagnose(fixture().program, sigs, sigs);
  EXPECT_FALSE(d.fault_detected());
  EXPECT_TRUE(d.suspects.empty());
}

TEST(Diagnose, SizeMismatchRejected) {
  std::vector<std::uint32_t> a(8, 0), b(7, 0);
  EXPECT_THROW(diagnose(fixture().program, a, b), std::invalid_argument);
}

TEST(Diagnose, MultiplierFaultLocalisesToMultiplier) {
  DiagnosisFixture& f = fixture();
  const netlist::Netlist& nl = f.model.component(CutId::kMultiplier).netlist;
  fault::FaultUniverse u(nl);
  Rng rng(3);
  // Find an injected multiplier fault that fails exactly one signature.
  for (int attempt = 0; attempt < 10; ++attempt) {
    const fault::Fault fault = u.collapsed()[rng.below(u.size())];
    const InjectionOutcome out =
        run_with_injection(f.model, f.program, CutId::kMultiplier, fault);
    if (!out.detected) continue;
    const Diagnosis d = diagnose(f.program, out.good_signatures,
                                 out.faulty_signatures);
    ASSERT_TRUE(d.fault_detected());
    if (d.failing_slots.size() == 1) {
      EXPECT_EQ(d.suspects.size(), 1u);
      EXPECT_EQ(d.suspects[0], CutId::kMultiplier);
      return;
    }
  }
  FAIL() << "no single-signature multiplier failure found in 10 samples";
}

TEST(Diagnose, AluFaultImplicatesSharedResource) {
  // The ALU computes li/ori constants for every routine, so a strong ALU
  // fault fails many signatures and the diagnosis must lead with the ALU.
  DiagnosisFixture& f = fixture();
  const netlist::Netlist& nl = f.model.component(CutId::kAlu).netlist;
  fault::FaultUniverse u(nl);
  Rng rng(5);
  for (int attempt = 0; attempt < 15; ++attempt) {
    const fault::Fault fault = u.collapsed()[rng.below(u.size())];
    const InjectionOutcome out =
        run_with_injection(f.model, f.program, CutId::kAlu, fault);
    const Diagnosis d = diagnose(f.program, out.good_signatures,
                                 out.faulty_signatures);
    if (d.failing_slots.size() >= f.program.routines.size() / 2 + 1) {
      ASSERT_FALSE(d.suspects.empty());
      EXPECT_EQ(d.suspects[0], CutId::kAlu);
      return;
    }
  }
  FAIL() << "no broad ALU failure found in 15 samples";
}

}  // namespace
}  // namespace sbst::core
