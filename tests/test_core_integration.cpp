// Integration: full program build + evaluation, and end-to-end gate-level
// fault injection with signature-based detection — the complete SBST flow.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/evaluate.hpp"
#include "core/inject.hpp"

namespace sbst::core {
namespace {

// Expensive fixtures shared across tests in this file.
struct Fixture {
  ProcessorModel model;
  TestProgramBuilder builder;
  TestProgram program;
  Fixture() {
    builder.add_default_routines(model);
    program = builder.build();
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(Integration, ProgramBuildsWithSevenRoutines) {
  const TestProgram& p = fixture().program;
  EXPECT_EQ(p.routines.size(), 7u);
  EXPECT_EQ(p.sections.size(), 7u);
  for (const auto& section : p.sections) {
    EXPECT_GT(section.size_words(), 0u);
  }
  // Program sizes stay in the paper's regime (hundreds to ~2k words).
  EXPECT_LT(p.image.size_words(), 4000u);
}

TEST(Integration, DuplicateRoutineRejected) {
  TestProgramBuilder b;
  b.add(make_alu_routine({}));
  EXPECT_THROW(b.add(make_alu_routine({})), std::invalid_argument);
}

TEST(Integration, FullEvaluationMatchesPaperShape) {
  const Fixture& f = fixture();
  const ProgramEvaluation ev =
      evaluate_program(f.model, f.builder, f.program);

  // Paper-shape assertions (Table 1):
  EXPECT_TRUE(ev.total.halted);
  EXPECT_EQ(ev.total.pipeline_stall_cycles, 0u);   // no unresolved hazards
  EXPECT_LT(ev.total.data_references(), 200u);     // paper: 87
  EXPECT_GT(ev.overall_fc(), 93.0);                // paper: 95.6
  EXPECT_LT(ev.total.cpu_cycles, 60000u);          // paper: 9,905 (same order)

  // Per-CUT: D-VCs reach high coverage; A-VC-heavy memctrl is capped; the
  // HCs get meaningful side-effect coverage.
  EXPECT_GT(ev.cut(CutId::kAlu).coverage.percent(), 99.0);
  EXPECT_GT(ev.cut(CutId::kShifter).coverage.percent(), 97.0);
  EXPECT_GT(ev.cut(CutId::kMultiplier).coverage.percent(), 95.0);
  EXPECT_GT(ev.cut(CutId::kRegisterFile).coverage.percent(), 95.0);
  EXPECT_GT(ev.cut(CutId::kDivider).coverage.percent(), 85.0);
  const double mem_fc = ev.cut(CutId::kMemCtrl).coverage.percent();
  EXPECT_GT(mem_fc, 70.0);
  EXPECT_LT(mem_fc, 90.0);
  EXPECT_GT(ev.cut(CutId::kForwarding).coverage.percent(), 75.0);
  EXPECT_GT(ev.cut(CutId::kPipeline).coverage.percent(), 75.0);

  // Missing-FC accounting: contributions sum to 100 - overall.
  double missing = 0;
  for (const CutCoverage& c : ev.cuts) missing += ev.missing_fc(c.id);
  EXPECT_NEAR(missing, 100.0 - ev.overall_fc(), 1e-6);

  // Seven signatures unloaded (slot 7 is reserved for studies).
  for (const Routine& r : f.program.routines) {
    EXPECT_NE(ev.signatures[r.sig_slot], 0u) << r.name;
  }

  // Execution time: < a quantum at 57 MHz under the paper's cache
  // assumptions (5% miss rate, 20-cycle penalty).
  const double seconds =
      static_cast<double>(ev.total.analytic_total_cycles(0.05, 20)) / 57e6;
  EXPECT_LT(seconds, 0.2);  // paper quantum: a few hundred ms
}

TEST(Integration, ObservabilityRestrictionLowersCoverage) {
  // Architectural observability must never credit more than full-netlist
  // observability; for the memory controller (A-VC MAR excluded) it is
  // strictly lower.
  const Fixture& f = fixture();
  EvalOptions arch;
  EvalOptions full;
  full.architectural_observability = false;
  const ProgramEvaluation a = evaluate_program(f.model, f.builder,
                                               f.program, arch);
  const ProgramEvaluation b = evaluate_program(f.model, f.builder,
                                               f.program, full);
  for (const CutCoverage& c : a.cuts) {
    EXPECT_LE(c.coverage.detected, b.cut(c.id).coverage.detected)
        << f.model.component(c.id).name;
  }
  EXPECT_LT(a.cut(CutId::kMemCtrl).coverage.detected,
            b.cut(CutId::kMemCtrl).coverage.detected);
}

TEST(Integration, InjectedAluFaultsAreDetectedBySignatures) {
  // End-to-end: stuck-at faults injected into the gate-level ALU during
  // program execution must flip at least one signature word whenever the
  // component-level grading says they are covered.
  const Fixture& f = fixture();
  const netlist::Netlist& alu = f.model.component(CutId::kAlu).netlist;
  fault::FaultUniverse universe(alu);
  Rng rng(17);
  std::size_t checked = 0, detected = 0;
  for (int i = 0; i < 12; ++i) {
    const fault::Fault fault =
        universe.collapsed()[rng.below(universe.size())];
    const InjectionOutcome out =
        run_with_injection(f.model, f.program, CutId::kAlu, fault);
    ++checked;
    detected += out.detected;
  }
  // The ALU routine reaches ~99.9% coverage; allow at most one escapee in
  // the sample (e.g. a fault detectable only through the zero flag path).
  EXPECT_GE(detected + 1, checked);
}

TEST(Integration, InjectedShifterAndMultiplierFaultsDetected) {
  const Fixture& f = fixture();
  Rng rng(23);
  for (CutId cut : {CutId::kShifter, CutId::kMultiplier}) {
    const netlist::Netlist& nl = f.model.component(cut).netlist;
    fault::FaultUniverse universe(nl);
    std::size_t detected = 0;
    const int samples = 6;
    for (int i = 0; i < samples; ++i) {
      const fault::Fault fault =
          universe.collapsed()[rng.below(universe.size())];
      detected += run_with_injection(f.model, f.program, cut, fault).detected;
    }
    EXPECT_GE(detected, samples - 1) << static_cast<int>(cut);
  }
}

TEST(Integration, FaultFreeInjectionRunKeepsSignatures) {
  // Injecting a provably benign fault (stuck value equals the constant the
  // net always carries in this program) must not change signatures — guards
  // against false positives in the comparison logic.
  const Fixture& f = fixture();
  // Use an output stuck-at on a net that the masked comparison never
  // exercises: run with an injector whose fault never corrupts a result.
  const netlist::Netlist& alu = f.model.component(CutId::kAlu).netlist;
  fault::FaultUniverse universe(alu);
  // Find a fault the program provably does not detect (if any); otherwise
  // skip — full coverage is a fine outcome.
  EvalOptions opts;
  const ProgramEvaluation ev = evaluate_program(f.model, f.builder,
                                                f.program, opts);
  const auto& cc = ev.cut(CutId::kAlu);
  for (std::size_t i = 0; i < universe.size(); ++i) {
    if (!cc.coverage.detected_flags[i]) {
      const InjectionOutcome out = run_with_injection(
          f.model, f.program, CutId::kAlu, universe.collapsed()[i]);
      EXPECT_FALSE(out.detected);
      return;
    }
  }
  GTEST_SKIP() << "ALU fully covered; no undetected fault to validate";
}

TEST(Integration, StandalonePerRoutineStatsAreConsistent) {
  const Fixture& f = fixture();
  const ProgramEvaluation ev = evaluate_program(f.model, f.builder,
                                                f.program);
  ASSERT_EQ(ev.routines.size(), 7u);
  std::uint64_t cycles = 0;
  std::size_t words = 0;
  for (const RoutineStats& r : ev.routines) {
    EXPECT_TRUE(r.exec.halted) << r.name;
    cycles += r.exec.cpu_cycles;
    words += r.size_words;
  }
  // Routine cycles approximately compose into the program total (the
  // combined run shares one break and the MISR subroutines).
  EXPECT_NEAR(static_cast<double>(cycles),
              static_cast<double>(ev.total.cpu_cycles),
              0.1 * static_cast<double>(ev.total.cpu_cycles));
  EXPECT_LT(words, f.program.image.size_words());
}

}  // namespace
}  // namespace sbst::core
