// Combinational component generators vs their functional golden models.
#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "netlist/eval.hpp"
#include "rtlgen/alu.hpp"
#include "rtlgen/arith.hpp"
#include "rtlgen/comparator.hpp"
#include "rtlgen/multiplier.hpp"
#include "rtlgen/shifter.hpp"

namespace sbst::rtlgen {
namespace {

using netlist::Evaluator;
using netlist::Netlist;

// ---------------------------------------------------------------- adders --

struct AdderCase {
  unsigned width;
  AdderStyle style;
};

class AdderTest : public ::testing::TestWithParam<AdderCase> {};

TEST_P(AdderTest, MatchesIntegerAddition) {
  const auto [width, style] = GetParam();
  Netlist nl;
  const auto a = nl.input_bus("a", width);
  const auto b = nl.input_bus("b", width);
  const auto cin = nl.input("cin");
  const AdderResult r = build_adder(nl, a, b, cin, style);
  nl.output_bus("sum", r.sum);
  nl.output("cout", r.carry_out);

  Evaluator ev(nl);
  Rng rng(7);
  const std::uint64_t mask = low_mask(width);
  auto check = [&](std::uint64_t va, std::uint64_t vb, bool vc) {
    ev.set_bus(a, va);
    ev.set_bus(b, vb);
    ev.set_input(cin, vc);
    ev.eval();
    const std::uint64_t full = (va & mask) + (vb & mask) + vc;
    EXPECT_EQ(ev.bus_value(r.sum), full & mask) << va << "+" << vb << "+" << vc;
    EXPECT_EQ(ev.value(r.carry_out) & 1u, (full >> width) & 1u);
  };
  // Corners + random sweep.
  for (std::uint64_t va : {std::uint64_t{0}, mask, mask >> 1, std::uint64_t{1}}) {
    for (std::uint64_t vb : {std::uint64_t{0}, mask, std::uint64_t{1}}) {
      check(va, vb, false);
      check(va, vb, true);
    }
  }
  for (int i = 0; i < 300; ++i) {
    check(rng.next64() & mask, rng.next64() & mask, rng.chance(0.5));
  }
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndStyles, AdderTest,
    ::testing::Values(AdderCase{4, AdderStyle::kRippleCarry},
                      AdderCase{4, AdderStyle::kCarryLookahead},
                      AdderCase{8, AdderStyle::kRippleCarry},
                      AdderCase{8, AdderStyle::kCarryLookahead},
                      AdderCase{32, AdderStyle::kRippleCarry},
                      AdderCase{32, AdderStyle::kCarryLookahead},
                      AdderCase{33, AdderStyle::kRippleCarry},
                      AdderCase{33, AdderStyle::kCarryLookahead}),
    [](const auto& info) {
      return "w" + std::to_string(info.param.width) +
             (info.param.style == AdderStyle::kRippleCarry ? "_ripple"
                                                           : "_cla");
    });

TEST(AdderTest, ExhaustiveWidth4BothStyles) {
  for (AdderStyle style :
       {AdderStyle::kRippleCarry, AdderStyle::kCarryLookahead}) {
    Netlist nl;
    const auto a = nl.input_bus("a", 4);
    const auto b = nl.input_bus("b", 4);
    const auto cin = nl.input("cin");
    const AdderResult r = build_adder(nl, a, b, cin, style);
    nl.output_bus("sum", r.sum);
    Evaluator ev(nl);
    for (unsigned va = 0; va < 16; ++va) {
      for (unsigned vb = 0; vb < 16; ++vb) {
        for (unsigned vc = 0; vc < 2; ++vc) {
          ev.set_bus(a, va);
          ev.set_bus(b, vb);
          ev.set_input(cin, vc);
          ev.eval();
          EXPECT_EQ(ev.bus_value(r.sum), (va + vb + vc) & 0xfu);
          EXPECT_EQ(ev.value(r.carry_out) & 1u, (va + vb + vc) >> 4);
        }
      }
    }
  }
}

TEST(Incrementer, MatchesPlusOne) {
  Netlist nl;
  const auto a = nl.input_bus("a", 8);
  const auto sum = build_incrementer(nl, a);
  nl.output_bus("sum", sum);
  Evaluator ev(nl);
  for (unsigned v = 0; v < 256; ++v) {
    ev.set_bus(a, v);
    ev.eval();
    EXPECT_EQ(ev.bus_value(sum), (v + 1) & 0xffu);
  }
}

TEST(Negate, MatchesTwosComplement) {
  Netlist nl;
  const auto a = nl.input_bus("a", 8);
  const auto neg = build_negate(nl, a, AdderStyle::kRippleCarry);
  nl.output_bus("neg", neg);
  Evaluator ev(nl);
  for (unsigned v = 0; v < 256; ++v) {
    ev.set_bus(a, v);
    ev.eval();
    EXPECT_EQ(ev.bus_value(neg), (256u - v) & 0xffu);
  }
}

// ------------------------------------------------------------------- ALU --

class AluOpTest : public ::testing::TestWithParam<AluOp> {};

TEST_P(AluOpTest, MatchesGoldenModel32) {
  const AluOp op = GetParam();
  static const Netlist nl = build_alu({.width = 32});
  Evaluator ev(nl);
  const auto& a = nl.input_port("a");
  const auto& b = nl.input_port("b");
  const auto& opb = nl.input_port("op");
  const auto& result = nl.output_port("result");

  Rng rng(static_cast<std::uint64_t>(op) + 100);
  auto check = [&](std::uint32_t va, std::uint32_t vb) {
    ev.set_bus(a, va);
    ev.set_bus(b, vb);
    ev.set_bus(opb, static_cast<std::uint64_t>(op));
    ev.eval();
    const std::uint32_t expect = alu_ref(op, va, vb);
    EXPECT_EQ(ev.bus_value(result), expect)
        << "op=" << static_cast<int>(op) << " a=" << va << " b=" << vb;
    EXPECT_EQ(ev.value(nl.output_port("zero")[0]) & 1u,
              expect == 0 ? 1u : 0u);
  };
  const std::uint32_t corners[] = {0u,          1u,          0x7fffffffu,
                                   0x80000000u, 0xffffffffu, 0x55555555u,
                                   0xaaaaaaaau};
  for (std::uint32_t va : corners) {
    for (std::uint32_t vb : corners) check(va, vb);
  }
  for (int i = 0; i < 500; ++i) check(rng.next32(), rng.next32());
}

std::string alu_op_name(const ::testing::TestParamInfo<AluOp>& info) {
  static const char* names[] = {"and", "or",  "xor", "nor",
                                "add", "sub", "slt", "sltu"};
  return names[static_cast<int>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(AllOps, AluOpTest,
                         ::testing::Values(AluOp::kAnd, AluOp::kOr,
                                           AluOp::kXor, AluOp::kNor,
                                           AluOp::kAdd, AluOp::kSub,
                                           AluOp::kSlt, AluOp::kSltu),
                         alu_op_name);

TEST(Alu, ExhaustiveWidth4AllOps) {
  const Netlist nl = build_alu({.width = 4});
  Evaluator ev(nl);
  for (int op = 0; op < 8; ++op) {
    for (unsigned va = 0; va < 16; ++va) {
      for (unsigned vb = 0; vb < 16; ++vb) {
        ev.set_bus(nl.input_port("a"), va);
        ev.set_bus(nl.input_port("b"), vb);
        ev.set_bus(nl.input_port("op"), op);
        ev.eval();
        EXPECT_EQ(ev.bus_value(nl.output_port("result")),
                  alu_ref(static_cast<AluOp>(op), va, vb, 4))
            << "op=" << op << " a=" << va << " b=" << vb;
      }
    }
  }
}

TEST(Alu, CarryLookaheadVariantAgrees) {
  const Netlist cla = build_alu({.width = 8, .adder = AdderStyle::kCarryLookahead});
  Evaluator ev(cla);
  Rng rng(5);
  for (int op = 0; op < 8; ++op) {
    for (int i = 0; i < 200; ++i) {
      const std::uint32_t va = rng.next32() & 0xff;
      const std::uint32_t vb = rng.next32() & 0xff;
      ev.set_bus(cla.input_port("a"), va);
      ev.set_bus(cla.input_port("b"), vb);
      ev.set_bus(cla.input_port("op"), op);
      ev.eval();
      EXPECT_EQ(ev.bus_value(cla.output_port("result")),
                alu_ref(static_cast<AluOp>(op), va, vb, 8));
    }
  }
}

// --------------------------------------------------------------- shifter --

TEST(Shifter, AllOpsAllShamtsRandomOperands) {
  const Netlist nl = build_shifter({.width = 32});
  Evaluator ev(nl);
  Rng rng(11);
  for (ShiftOp op : {ShiftOp::kSll, ShiftOp::kSrl, ShiftOp::kSra}) {
    for (unsigned shamt = 0; shamt < 32; ++shamt) {
      for (int i = 0; i < 16; ++i) {
        const std::uint32_t va = i == 0 ? 0x80000001u : rng.next32();
        ev.set_bus(nl.input_port("a"), va);
        ev.set_bus(nl.input_port("shamt"), shamt);
        ev.set_bus(nl.input_port("op"), static_cast<std::uint64_t>(op));
        ev.eval();
        EXPECT_EQ(ev.bus_value(nl.output_port("result")),
                  shifter_ref(op, va, shamt))
            << "op=" << static_cast<int>(op) << " a=" << va
            << " shamt=" << shamt;
      }
    }
  }
}

TEST(Shifter, ExhaustiveWidth8) {
  const Netlist nl = build_shifter({.width = 8});
  Evaluator ev(nl);
  for (ShiftOp op : {ShiftOp::kSll, ShiftOp::kSrl, ShiftOp::kSra}) {
    for (unsigned shamt = 0; shamt < 8; ++shamt) {
      for (unsigned va = 0; va < 256; ++va) {
        ev.set_bus(nl.input_port("a"), va);
        ev.set_bus(nl.input_port("shamt"), shamt);
        ev.set_bus(nl.input_port("op"), static_cast<std::uint64_t>(op));
        ev.eval();
        EXPECT_EQ(ev.bus_value(nl.output_port("result")),
                  shifter_ref(op, va, shamt, 8));
      }
    }
  }
}

// ------------------------------------------------------------ multiplier --

TEST(Multiplier, ExhaustiveWidth4) {
  const Netlist nl = build_multiplier({.width = 4});
  Evaluator ev(nl);
  for (unsigned va = 0; va < 16; ++va) {
    for (unsigned vb = 0; vb < 16; ++vb) {
      ev.set_bus(nl.input_port("a"), va);
      ev.set_bus(nl.input_port("b"), vb);
      ev.eval();
      EXPECT_EQ(ev.bus_value(nl.output_port("product")), va * vb);
    }
  }
}

TEST(Multiplier, RandomWidth32) {
  const Netlist nl = build_multiplier({.width = 32});
  Evaluator ev(nl);
  Rng rng(13);
  const std::uint32_t corners[] = {0u, 1u, 0xffffffffu, 0x80000000u,
                                   0x55555555u};
  auto check = [&](std::uint32_t va, std::uint32_t vb) {
    ev.set_bus(nl.input_port("a"), va);
    ev.set_bus(nl.input_port("b"), vb);
    ev.eval();
    EXPECT_EQ(ev.bus_value(nl.output_port("product")), multiplier_ref(va, vb))
        << va << "*" << vb;
  };
  for (std::uint32_t va : corners) {
    for (std::uint32_t vb : corners) check(va, vb);
  }
  for (int i = 0; i < 100; ++i) check(rng.next32(), rng.next32());
}

TEST(Multiplier, GateCountIsArrayLike) {
  // ~w^2 partial products keep the multiplier the biggest D-VC, matching
  // the paper's area ranking (mul+div dominates at 11,601 of 26,080 gates).
  const Netlist nl = build_multiplier({.width = 32});
  EXPECT_GT(nl.gate_equivalents(), 4000);
}

// ------------------------------------------------------------ comparator --

TEST(Comparator, MatchesGoldenModel) {
  const Netlist nl = build_comparator({.width = 32});
  Evaluator ev(nl);
  Rng rng(17);
  auto check = [&](std::uint32_t va, std::uint32_t vb) {
    ev.set_bus(nl.input_port("a"), va);
    ev.set_bus(nl.input_port("b"), vb);
    ev.eval();
    const CmpRef expect = comparator_ref(va, vb);
    EXPECT_EQ(ev.value(nl.output_port("eq")[0]) & 1u, expect.eq);
    EXPECT_EQ(ev.value(nl.output_port("ne")[0]) & 1u, expect.ne);
    EXPECT_EQ(ev.value(nl.output_port("lt")[0]) & 1u, expect.lt);
    EXPECT_EQ(ev.value(nl.output_port("ltu")[0]) & 1u, expect.ltu);
  };
  check(0, 0);
  check(5, 5);
  check(0x80000000u, 0x7fffffffu);  // signed vs unsigned disagreement
  check(0x7fffffffu, 0x80000000u);
  for (int i = 0; i < 500; ++i) {
    const std::uint32_t va = rng.next32();
    check(va, rng.chance(0.3) ? va : rng.next32());
  }
}

}  // namespace
}  // namespace sbst::rtlgen
