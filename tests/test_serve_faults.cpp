// Fault-injection harness for the hardened `sbst serve` daemon: every
// scenario here must end in a structured `err ...` response or a clean
// recovery — never a crash, never a torn response stream.
//
//   * journal damage: truncated tails, byte flips, garbage files
//   * crash windows: begin-without-seal (SIGKILL mid-request), seal with a
//     diverged response hash
//   * storage failure: an unwritable artifact-store directory under load
//   * hostile input: malformed, oversized, and binary request lines
//
// The container runs as root (permission bits are bypassed), so failure
// injection uses filesystem shapes — a regular file squatting on a
// directory path — rather than chmod.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "serve/journal.hpp"
#include "serve/serve.hpp"

namespace fs = std::filesystem;

namespace sbst::serve {
namespace {

using core::ProcessorModel;

ProcessorModel& model() {
  static ProcessorModel m;
  return m;
}

ServeOptions fast_options() {
  ServeOptions options;
  options.sim.num_threads = 2;
  options.max_faults = 2;
  return options;
}

struct ServeResult {
  int status;
  std::string out;
  std::string err;
};

ServeResult run_script(const std::string& script, const ServeOptions& options,
                       std::shared_ptr<store::ArtifactStore> store = nullptr) {
  std::FILE* in = fmemopen(const_cast<char*>(script.data()),
                           script.size() ? script.size() : 1, "r");
  if (script.empty()) std::fgetc(in);
  char* out_buf = nullptr;
  std::size_t out_len = 0;
  std::FILE* out = open_memstream(&out_buf, &out_len);
  char* err_buf = nullptr;
  std::size_t err_len = 0;
  std::FILE* err = open_memstream(&err_buf, &err_len);

  ServeResult r;
  r.status = run_serve(model(), options, std::move(store), in, out, err);
  std::fclose(in);
  std::fclose(out);
  std::fclose(err);
  r.out.assign(out_buf, out_len);
  r.err.assign(err_buf, err_len);
  std::free(out_buf);
  std::free(err_buf);
  return r;
}

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::path(::testing::TempDir()) / (std::string("sbst-sf-") + tag);
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

std::vector<std::uint8_t> read_all(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_all(const fs::path& p, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// A journal holding one sealed work request, as a crashed-then-recovered
// daemon would leave it. Returns the file's bytes.
std::vector<std::uint8_t> sealed_journal_bytes(const fs::path& path) {
  ServeOptions options = fast_options();
  options.journal_path = path.string();
  const ServeResult r = run_script("campaign alu\nquit\n", options);
  EXPECT_EQ(r.status, 0);
  return read_all(path);
}

// ---- journal damage -------------------------------------------------------

TEST(ServeFaults, TruncatedJournalTailIsDetectedNotFatal) {
  TempDir dir("trunc");
  const fs::path wal = dir.path / "j.wal";
  const std::vector<std::uint8_t> full = sealed_journal_bytes(wal);
  ASSERT_GT(full.size(), 30u);
  // Every truncation point: the scan must never crash, and a cut inside a
  // record must raise truncated_tail (damage is counted, never trusted).
  for (std::size_t keep = 0; keep < full.size(); ++keep) {
    write_all(wal, std::vector<std::uint8_t>(full.begin(),
                                             full.begin() + keep));
    const JournalScan scan = Journal::scan_file(wal.string());
    EXPECT_LE(scan.records.size(), 2u) << "keep=" << keep;
    if (keep > 0 && scan.records.empty()) {
      EXPECT_TRUE(scan.truncated_tail || scan.corrupt_skipped > 0)
          << "keep=" << keep;
    }
  }
}

TEST(ServeFaults, TruncatedSealReplaysAsUnsealedRequest) {
  TempDir dir("trunc-seal");
  const fs::path wal = dir.path / "j.wal";
  {
    // Begin-only journal, the exact on-disk state a SIGKILL between begin
    // and seal leaves: build it by truncating a sealed journal to its
    // begin record (found by re-scanning prefixes).
    const std::vector<std::uint8_t> full = sealed_journal_bytes(wal);
    std::size_t begin_end = 0;
    for (std::size_t keep = 1; keep <= full.size(); ++keep) {
      write_all(wal, std::vector<std::uint8_t>(full.begin(),
                                               full.begin() + keep));
      const JournalScan scan = Journal::scan_file(wal.string());
      if (scan.records.size() == 1 && !scan.truncated_tail) {
        begin_end = keep;
        break;
      }
    }
    ASSERT_GT(begin_end, 0u);
    write_all(wal, std::vector<std::uint8_t>(full.begin(),
                                             full.begin() + begin_end));
  }
  ServeOptions options = fast_options();
  options.journal_path = wal.string();
  options.replay_journal = true;
  const ServeResult r = run_script("quit\n", options);
  EXPECT_EQ(r.status, 0);
  // The unsealed request was re-run and its full response emitted.
  EXPECT_NE(r.out.find("ok campaign"), std::string::npos);
  EXPECT_NE(r.err.find("recovered"), std::string::npos);
}

TEST(ServeFaults, CorruptJournalRecordIsSkippedAndCounted) {
  TempDir dir("flip");
  const fs::path wal = dir.path / "j.wal";
  const std::vector<std::uint8_t> full = sealed_journal_bytes(wal);
  // Flip one byte somewhere inside the first (begin) record's payload.
  std::vector<std::uint8_t> bad = full;
  bad[20] ^= 0xff;
  write_all(wal, bad);
  const JournalScan scan = Journal::scan_file(wal.string());
  EXPECT_GT(scan.corrupt_skipped, 0u);
  // Replaying over the damage must not crash; the orphaned seal (its begin
  // was destroyed) is dropped, so nothing executes or emits.
  ServeOptions options = fast_options();
  options.journal_path = wal.string();
  options.replay_journal = true;
  const ServeResult r = run_script("quit\n", options);
  EXPECT_EQ(r.status, 0);
  EXPECT_EQ(r.out, "ok quit\n");
}

TEST(ServeFaults, GarbageJournalFileIsHarmless) {
  TempDir dir("garbage");
  const fs::path wal = dir.path / "j.wal";
  std::vector<std::uint8_t> noise;
  for (int i = 0; i < 4096; ++i) {
    noise.push_back(static_cast<std::uint8_t>(i * 37 + 11));
  }
  write_all(wal, noise);
  const JournalScan scan = Journal::scan_file(wal.string());
  EXPECT_TRUE(scan.records.empty());
  ServeOptions options = fast_options();
  options.journal_path = wal.string();
  options.replay_journal = true;
  // The daemon trims the unusable bytes and serves from a clean journal.
  const ServeResult r = run_script("campaign alu\nquit\n", options);
  EXPECT_EQ(r.status, 0);
  EXPECT_NE(r.out.find("ok campaign"), std::string::npos);
  const std::vector<JournalEntry> entries =
      Journal::scan_file(wal.string()).entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(entries[0].sealed);
}

TEST(ServeFaults, SealedResponseHashMismatchIsReportedNotReemitted) {
  TempDir dir("mismatch");
  const fs::path wal = dir.path / "j.wal";
  {
    Journal j(wal.string());
    ASSERT_TRUE(j.open_append());
    ASSERT_TRUE(j.append_begin(0, "campaign alu"));
    // A seal whose recorded hash can never match the re-rendered bytes.
    ASSERT_TRUE(j.append_seal(0, 0, 12345, 0xdeadbeefull));
  }
  ServeOptions options = fast_options();
  options.journal_path = wal.string();
  options.replay_journal = true;
  const ServeResult r = run_script("stats\nquit\n", options);
  EXPECT_EQ(r.status, 0);
  // Sealed entries are audited, never re-emitted — even when they diverge.
  EXPECT_EQ(r.out.find("ok campaign"), std::string::npos);
  EXPECT_NE(r.err.find("MISMATCH"), std::string::npos);
  EXPECT_NE(r.out.find("mismatches 1"), std::string::npos);
}

TEST(ServeFaults, UnopenableJournalFailsSoftToUnjournaledServing) {
  TempDir dir("nojournal");
  const fs::path blocker = dir.path / "blocker";
  write_all(blocker, {0x00});  // a FILE where the journal's parent dir
  ServeOptions options = fast_options();
  options.journal_path = (blocker / "j.wal").string();
  const ServeResult r = run_script("ping\ncampaign alu\nquit\n", options);
  EXPECT_EQ(r.status, 0);
  EXPECT_NE(r.out.find("ok campaign"), std::string::npos);
  EXPECT_NE(r.err.find("unavailable; running unjournaled"),
            std::string::npos);
}

// ---- storage failure under load -------------------------------------------

TEST(ServeFaults, UnwritableStoreDirectoryDegradesToStorelessServing) {
  TempDir dir("badstore");
  const fs::path vdir =
      dir.path / ("v" + std::to_string(store::ArtifactStore::kFormatVersion));
  write_all(vdir, {0x00});  // regular file squats on the entry directory
  auto store = std::make_shared<store::ArtifactStore>(dir.str());
  ServeOptions options = fast_options();
  options.sim.store = store.get();
  // Work requests still succeed — every failed save is counted, none is
  // fatal, and the response bytes match a storeless daemon's.
  const ServeResult r =
      run_script("campaign alu\ncampaign alu\nquit\n", options, store);
  EXPECT_EQ(r.status, 0);
  const ServeResult baseline =
      run_script("campaign alu\ncampaign alu\nquit\n", fast_options());
  EXPECT_EQ(r.out, baseline.out);
  EXPECT_GT(store->stats().write_failures, 0u);
  EXPECT_EQ(store->stats().writes, 0u);
}

// ---- hostile input --------------------------------------------------------

TEST(ServeFaults, MalformedAndBinaryRequestLinesNeverKillTheLoop) {
  for (const unsigned threads : {1u, 2u}) {
    ServeOptions options = fast_options();
    options.serve_threads = threads;
    std::string script;
    script += "campaign alu extra junk words\n";
    script += "evaluate now\n";
    script += "conform\n";
    script += "conform run\n";
    script += "conform run a b c\n";
    script += "\x01\x02\x7f\n";
    script += "   \t  \n";
    script += "ping\nquit\n";
    const ServeResult r = run_script(script, options);
    EXPECT_EQ(r.status, 0) << "threads=" << threads;
    // Every malformed line answered `err ...`, blank/whitespace lines were
    // ignored, and the loop reached ping and quit.
    EXPECT_NE(r.out.find("err campaign: extra is not an injectable CUT"),
              std::string::npos);
    EXPECT_NE(r.out.find("err evaluate takes no arguments"),
              std::string::npos);
    EXPECT_NE(r.out.find("err unknown command: conform"), std::string::npos);
    EXPECT_NE(r.out.find("ok ping\nok quit\n"), std::string::npos);
  }
}

TEST(ServeFaults, OversizedRequestFloodKeepsRespondingInOrder) {
  const std::string huge(kMaxRequestLine + 100, 'A');
  for (const unsigned threads : {1u, 4u}) {
    ServeOptions options = fast_options();
    options.serve_threads = threads;
    std::string script;
    for (int k = 0; k < 5; ++k) script += huge + "\n";
    script += "ping\nquit\n";
    const ServeResult r = run_script(script, options);
    EXPECT_EQ(r.status, 0) << "threads=" << threads;
    std::string expected;
    for (int k = 0; k < 5; ++k) expected += "err request-too-long\n";
    expected += "ok ping\nok quit\n";
    EXPECT_EQ(r.out, expected) << "threads=" << threads;
  }
}

// ---- crash window: kill between begin and seal, then full recovery --------

TEST(ServeFaults, MidRequestCrashReplaysByteIdenticallyUnderDamage) {
  TempDir dir("crashmix");
  const fs::path wal = dir.path / "j.wal";
  // A journal carrying one sealed request, one unsealed request (the
  // "crash"), and trailing garbage (a torn in-flight append).
  {
    ServeOptions options = fast_options();
    options.journal_path = wal.string();
    EXPECT_EQ(run_script("campaign alu\nquit\n", options).status, 0);
    Journal j(wal.string());
    ASSERT_TRUE(j.open_append());
    ASSERT_TRUE(j.append_begin(1, "campaign shifter"));
  }
  {
    std::ofstream torn(wal, std::ios::binary | std::ios::app);
    torn.write("SBSTWAL", 7);  // a magic prefix cut off mid-header
  }

  ServeOptions options = fast_options();
  options.journal_path = wal.string();
  options.replay_journal = true;
  const ServeResult r = run_script("quit\n", options);
  EXPECT_EQ(r.status, 0);

  // Only the unsealed campaign re-emits, byte-identical to a normal serve
  // of the same request.
  const ServeResult direct =
      run_script("campaign shifter\nquit\n", fast_options());
  const std::size_t cut = direct.out.rfind("ok quit\n");
  ASSERT_NE(cut, std::string::npos);
  EXPECT_EQ(r.out, direct.out.substr(0, cut) + "ok quit\n");
  EXPECT_NE(r.err.find("verified"), std::string::npos);
  EXPECT_NE(r.err.find("recovered"), std::string::npos);
  EXPECT_NE(r.err.find("truncated tail"), std::string::npos);

  // After recovery the journal is fully sealed: a second replay audits
  // both entries and emits nothing.
  const ServeResult again = run_script("quit\n", options);
  EXPECT_EQ(again.out, "ok quit\n");
  EXPECT_EQ(again.err.find("campaign recovered"), std::string::npos);
  EXPECT_NE(again.err.find("recovered 0 verified 2"), std::string::npos);
}

}  // namespace
}  // namespace sbst::serve
