// Extension features: transition-fault model, netlist exporters, A-VC
// address routine, branch-prediction timing, XOR-compaction variant.
#include <gtest/gtest.h>

#include "core/codegen.hpp"
#include "core/evaluate.hpp"
#include "core/program.hpp"
#include "fault/transition.hpp"
#include "netlist/export.hpp"
#include "rtlgen/alu.hpp"
#include "rtlgen/divider.hpp"
#include "sim/cpu.hpp"

namespace sbst {
namespace {

using netlist::Netlist;
using netlist::NetId;

// ---- transition faults -------------------------------------------------------

TEST(TransitionFaults, RequiresLaunchAndCapturePair) {
  // y = a AND b. STR on y needs: pair with y=0 then y=1.
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId y = nl.and_(a, b);
  nl.output("y", y);
  const std::vector<fault::TransitionFault> faults = {
      {{y, netlist::Site::kOutputPin}, /*slow_to_rise=*/true}};

  // Rising pair (0,0) -> (1,1): detected.
  fault::PatternSet rising(nl);
  rising.add({{"a", 0}, {"b", 0}});
  rising.add({{"a", 1}, {"b", 1}});
  EXPECT_EQ(fault::simulate_transition(nl, faults, rising).detected, 1u);

  // Static 1 twice: no transition launched -> undetected.
  fault::PatternSet static1(nl);
  static1.add({{"a", 1}, {"b", 1}});
  static1.add({{"a", 1}, {"b", 1}});
  EXPECT_EQ(fault::simulate_transition(nl, faults, static1).detected, 0u);

  // Falling pair only: wrong polarity for STR.
  fault::PatternSet falling(nl);
  falling.add({{"a", 1}, {"b", 1}});
  falling.add({{"a", 0}, {"b", 0}});
  EXPECT_EQ(fault::simulate_transition(nl, faults, falling).detected, 0u);

  // But the falling pair detects the STF fault.
  const std::vector<fault::TransitionFault> stf = {
      {{y, netlist::Site::kOutputPin}, /*slow_to_rise=*/false}};
  EXPECT_EQ(fault::simulate_transition(nl, stf, falling).detected, 1u);
}

TEST(TransitionFaults, OrderMattersUnlikeStuckAt) {
  Netlist nl;
  const NetId a = nl.input("a");
  nl.output("y", nl.buf(a));
  const auto faults = fault::enumerate_transition_faults(nl);
  fault::PatternSet good_order(nl), bad_order(nl);
  good_order.add({{"a", 0}});
  good_order.add({{"a", 1}});
  good_order.add({{"a", 0}});
  bad_order.add({{"a", 1}});
  bad_order.add({{"a", 1}});
  bad_order.add({{"a", 0}});  // only the falling pair exists
  const auto g = fault::simulate_transition(nl, faults, good_order);
  const auto b = fault::simulate_transition(nl, faults, bad_order);
  EXPECT_GT(g.detected, b.detected);
}

TEST(TransitionFaults, CrossBlockPairsAreSeen) {
  // Put the launch in lane 63 and the capture in lane 0 of the next block.
  Netlist nl;
  const NetId a = nl.input("a");
  nl.output("y", nl.buf(a));
  const std::vector<fault::TransitionFault> faults = {
      {{a, netlist::Site::kOutputPin}, true}};
  fault::PatternSet ps(nl);
  for (int i = 0; i < 64; ++i) ps.add({{"a", 0}});
  ps.add({{"a", 1}});  // pattern 64 = lane 0 of block 1
  EXPECT_EQ(fault::simulate_transition(nl, faults, ps).detected, 1u);
}

TEST(TransitionFaults, CoverageBoundedByStuckAt) {
  const Netlist nl = rtlgen::build_alu({.width = 8});
  fault::FaultUniverse stuck(nl);
  Rng rng(3);
  fault::PatternSet ps(nl);
  for (int i = 0; i < 200; ++i) ps.add_random(rng);
  const auto sa = fault::simulate_comb(nl, stuck.collapsed(), ps);
  const auto tf = fault::enumerate_transition_faults(nl);
  const auto tr = fault::simulate_transition(nl, tf, ps);
  ASSERT_EQ(tf.size(), stuck.size());
  // Each transition detection implies the stuck-at detection of its capture
  // pattern; with the same list order the totals must satisfy <=.
  EXPECT_LE(tr.detected, sa.detected);
  EXPECT_GT(tr.percent(), 80.0);  // random pairs still work well at-speed
}

// ---- exporters -----------------------------------------------------------------

TEST(Export, VerilogContainsModulePortsAndGates) {
  const Netlist nl = rtlgen::build_alu({.width = 4});
  const std::string v = netlist::to_verilog(nl, "alu4");
  EXPECT_NE(v.find("module alu4 ("), std::string::npos);
  EXPECT_NE(v.find("input  wire [3:0] a"), std::string::npos);
  EXPECT_NE(v.find("output wire [3:0] result"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_EQ(v.find("clk"), std::string::npos);  // combinational: no clock
  // One primitive/assign per logic gate (spot check count of xor).
  std::size_t xors = 0;
  for (std::size_t at = v.find("\n  xor "); at != std::string::npos;
       at = v.find("\n  xor ", at + 1)) {
    ++xors;
  }
  std::size_t gate_xors = 0;
  for (const auto& g : nl.gates()) {
    gate_xors += g.kind == netlist::GateKind::kXor;
  }
  EXPECT_EQ(xors, gate_xors);
}

TEST(Export, SequentialVerilogHasClockAndRegs) {
  const Netlist nl = rtlgen::build_divider({.width = 4});
  const std::string v = netlist::to_verilog(nl);
  EXPECT_NE(v.find("input  wire clk"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("  reg  "), std::string::npos);
}

TEST(Export, BlifStructure) {
  const Netlist nl = rtlgen::build_alu({.width = 4});
  const std::string b = netlist::to_blif(nl, "alu4");
  EXPECT_EQ(b.find(".model alu4"), 0u);
  EXPECT_NE(b.find(".inputs"), std::string::npos);
  EXPECT_NE(b.find(".outputs"), std::string::npos);
  EXPECT_NE(b.find(".names"), std::string::npos);
  EXPECT_NE(b.find(".end"), std::string::npos);
  EXPECT_EQ(b.find(".latch"), std::string::npos);  // combinational
  const Netlist seq = rtlgen::build_divider({.width = 4});
  EXPECT_NE(netlist::to_blif(seq).find(".latch"), std::string::npos);
}

TEST(Export, NamesAreSanitized) {
  Netlist nl("weird name-1");
  nl.output("x", nl.not_(nl.input("in put")));
  const std::string v = netlist::to_verilog(nl);
  EXPECT_NE(v.find("module weird_name_1"), std::string::npos);
  EXPECT_NE(v.find("in_put"), std::string::npos);
}

// ---- A-VC routine ----------------------------------------------------------------

TEST(AvcRoutine, ImprovesMemCtrlCoverageAtCacheCost) {
  core::ProcessorModel model;
  core::CodegenOptions opts;

  core::TestProgramBuilder base;
  base.add(core::make_memctrl_routine(opts));
  const core::TestProgram p_base = base.build();

  core::TestProgramBuilder extended;
  extended.add(core::make_memctrl_routine(opts));
  extended.add(core::make_avc_address_routine(opts, 21));
  const core::TestProgram p_ext = extended.build();

  core::EvalOptions eval;
  eval.cpu.mem_bytes = 1u << 22;  // room for the walking addresses
  eval.observe_address_outputs = true;  // grade the MAR itself
  const auto ev_base = core::evaluate_program(model, base, p_base, eval);
  const auto ev_ext = core::evaluate_program(model, extended, p_ext, eval);

  // The A-VC sweep must raise memory-controller coverage (the gain is
  // bounded by how many MAR bits the system's memory lets the sweep reach).
  EXPECT_GT(ev_ext.cut(core::CutId::kMemCtrl).coverage.percent(),
            ev_base.cut(core::CutId::kMemCtrl).coverage.percent() + 3.0);
  // ...while making distributed references (the paper's stated cost).
  EXPECT_GT(ev_ext.total.data_references(),
            ev_base.total.data_references() + 20);
}

TEST(AvcRoutine, DistributedReferencesDefeatCacheLocality) {
  core::CodegenOptions opts;
  core::TestProgramBuilder b;
  const core::TestProgram avc =
      b.build_standalone(core::make_avc_address_routine(opts, 19));
  const core::TestProgram mem =
      b.build_standalone(core::make_memctrl_routine(opts));
  sim::CpuConfig cfg;
  cfg.mem_bytes = 1u << 21;
  cfg.dcache = {.enabled = true, .line_words = 4, .lines = 64,
                .miss_penalty = 20};
  auto run = [&](const core::TestProgram& p) {
    sim::Cpu cpu(cfg);
    cpu.reset();
    cpu.load(p.image);
    return cpu.run(p.entry);
  };
  // Every walking address opens a new line (the paired sw/lw on it then
  // hit), so the A-VC sweep pays a compulsory miss per address while the
  // locality-friendly D-VC routine reuses its two test words.
  const sim::ExecStats sa = run(avc);
  const sim::ExecStats sm = run(mem);
  const double avc_rate = static_cast<double>(sa.dcache_misses) /
                          static_cast<double>(sa.dcache_accesses);
  const double mem_rate = static_cast<double>(sm.dcache_misses) /
                          static_cast<double>(sm.dcache_accesses);
  EXPECT_GT(avc_rate, 0.2);
  EXPECT_LT(mem_rate, 0.1);
  EXPECT_GT(sa.dcache_misses, 4 * sm.dcache_misses);
}

// ---- branch-prediction timing -----------------------------------------------------

TEST(BranchPenalty, ChargesStallsOnTakenBranches) {
  const isa::Program p = isa::assemble(R"(
    li $s4, 10
    add $t0, $zero, $zero
  loop:
    addiu $t0, $t0, 1
    bne $s4, $t0, loop
    nop
    break
  )");
  sim::CpuConfig delay_slot;  // Plasma: penalty 0
  sim::CpuConfig predicted;
  predicted.branch_taken_penalty = 2;
  sim::Cpu a(delay_slot), b(predicted);
  a.reset();
  a.load(p);
  b.reset();
  b.load(p);
  const sim::ExecStats sa = a.run(0);
  const sim::ExecStats sb = b.run(0);
  EXPECT_EQ(sa.pipeline_stall_cycles, 0u);
  // 9 taken loop branches x 2 cycles.
  EXPECT_EQ(sb.pipeline_stall_cycles, 18u);
  EXPECT_EQ(sa.instructions, sb.instructions);
}

// ---- compaction variant --------------------------------------------------------------

TEST(Compaction, XorVariantRunsAndDiffersFromMisr) {
  const std::vector<core::AluOpnd> tests = {
      {rtlgen::AluOp::kAdd, 0x1111u, 0x2222u},
      {rtlgen::AluOp::kXor, 0xaaaau, 0x5555u}};
  core::TestProgramBuilder b;
  auto run = [&](core::Compaction c) {
    const core::TestProgram p = b.build_standalone(
        core::make_fig1_immediate_routine(tests, {}, c));
    sim::Cpu cpu;
    cpu.reset();
    cpu.load(p.image);
    cpu.run(p.entry);
    return cpu.read_word(p.signature_address(7));
  };
  const std::uint32_t misr = run(core::Compaction::kMisr);
  const std::uint32_t x = run(core::Compaction::kXorAccumulate);
  EXPECT_NE(misr, 0u);
  EXPECT_NE(x, 0u);
  EXPECT_NE(misr, x);
  // The XOR accumulate is exactly seed ^ r1 ^ r2.
  const std::uint32_t r1 = rtlgen::alu_ref(rtlgen::AluOp::kAdd, 0x1111,
                                           0x2222);
  const std::uint32_t r2 = rtlgen::alu_ref(rtlgen::AluOp::kXor, 0xaaaa,
                                           0x5555);
  core::CodegenOptions opts;
  EXPECT_EQ(x, opts.misr_seed ^ r1 ^ r2);
}

}  // namespace
}  // namespace sbst
