// March algorithms and quantum chunking.
#include <gtest/gtest.h>

#include "core/march.hpp"
#include "core/periodic.hpp"
#include "core/program.hpp"
#include "fault/sim.hpp"
#include "rtlgen/regfile.hpp"
#include "sim/cpu.hpp"

namespace sbst::core {
namespace {

TEST(March, AlgorithmComplexities) {
  EXPECT_EQ(mats_plus().ops_per_cell(), 5u);
  EXPECT_EQ(march_x().ops_per_cell(), 6u);
  EXPECT_EQ(march_c_minus().ops_per_cell(), 10u);
}

TEST(March, StimulusCycleCountMatchesComplexity) {
  const netlist::Netlist rf = rtlgen::build_regfile({.num_regs = 8,
                                                     .width = 8});
  const auto seq = march_regfile_stimulus(rf, march_c_minus(), 1, 7,
                                          {0x00000000u});
  // 10 ops per cell x 7 cells x 1 background.
  EXPECT_EQ(seq.size(), 70u);
}

class MarchAlgorithmTest
    : public ::testing::TestWithParam<const MarchAlgorithm*> {};

TEST_P(MarchAlgorithmTest, ReachesSolidCoverageOnSmallRegfile) {
  const netlist::Netlist rf = rtlgen::build_regfile({.num_regs = 8,
                                                     .width = 8});
  fault::FaultUniverse u(rf);
  const auto seq = march_regfile_stimulus(rf, *GetParam(), 1, 7,
                                          {0x00000000u, 0x55555555u});
  const auto cov = fault::simulate_seq(rf, u.collapsed(), seq);
  EXPECT_GT(cov.percent(), 80.0) << GetParam()->name;
}

INSTANTIATE_TEST_SUITE_P(All, MarchAlgorithmTest,
                         ::testing::Values(&mats_plus(), &march_x(),
                                           &march_c_minus()),
                         [](const auto& info) {
                           std::string n = info.param->name;
                           for (char& c : n) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return n;
                         });

TEST(March, StrongerAlgorithmsCoverMore) {
  const netlist::Netlist rf = rtlgen::build_regfile({.num_regs = 8,
                                                     .width = 8});
  fault::FaultUniverse u(rf);
  auto fc = [&](const MarchAlgorithm& a) {
    const auto seq = march_regfile_stimulus(rf, a, 1, 7, {0u});
    return fault::simulate_seq(rf, u.collapsed(), seq).percent();
  };
  EXPECT_LE(fc(mats_plus()), fc(march_c_minus()) + 1e-9);
}

TEST(March, RoutineRunsAndIsStallFree) {
  TestProgramBuilder builder;
  const TestProgram p = builder.build_standalone(
      make_march_regfile_routine(march_x(), {}));
  sim::Cpu cpu;
  cpu.reset();
  cpu.load(p.image);
  const sim::ExecStats s = cpu.run(p.entry);
  EXPECT_TRUE(s.halted);
  EXPECT_EQ(s.pipeline_stall_cycles, 0u);
  EXPECT_EQ(s.data_references(), 1u);  // two-phase: only the signature store
  EXPECT_NE(cpu.read_word(p.signature_address(7)), 0u);
}

// ---- quantum chunking ---------------------------------------------------------

TEST(Chunking, SingleChunkWhenProgramFitsQuantum) {
  const ChunkingReport r = chunked_execution(12000, 11400000, 5000, 20000);
  EXPECT_EQ(r.chunks, 1u);
  EXPECT_EQ(r.switch_overhead_cycles, 0u);
  EXPECT_EQ(r.total_cycles, 12000u);
  EXPECT_DOUBLE_EQ(r.overhead_fraction(), 0.0);
}

TEST(Chunking, OverheadGrowsWithChunkCount) {
  // A (hypothetical) 100k-cycle test under a 30k-cycle quantum: 4 chunks,
  // 3 context switches + 3 cache refills.
  const ChunkingReport r = chunked_execution(100000, 30000, 5000, 20000);
  EXPECT_EQ(r.chunks, 4u);
  EXPECT_EQ(r.switch_overhead_cycles, 15000u);
  EXPECT_EQ(r.cache_refill_cycles, 60000u);
  EXPECT_EQ(r.total_cycles, 175000u);
  EXPECT_GT(r.overhead_fraction(), 0.4);
}

TEST(Chunking, RealProgramFitsOneQuantumComfortably) {
  // The paper's argument made executable: the SBST program at 57 MHz fits
  // a 200 ms quantum thousands of times over.
  const std::uint64_t program_cycles = 35000;      // ~ measured with misses
  const std::uint64_t quantum_cycles = 11400000;   // 200 ms @ 57 MHz
  const ChunkingReport r =
      chunked_execution(program_cycles, quantum_cycles, 5000, 20000);
  EXPECT_EQ(r.chunks, 1u);
}

}  // namespace
}  // namespace sbst::core
