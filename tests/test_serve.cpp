// `sbst serve` protocol loop: sequential requests over one warm session,
// deterministic response bytes (a repeated request renders identically, and
// identically to the one-shot renderer — for ANY worker count), error
// handling that keeps the loop alive, clean EOF/quit shutdown, per-request
// deadlines, overload shedding, bounded request lines, and the write-ahead
// journal round trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "serve/journal.hpp"
#include "serve/serve.hpp"

namespace sbst::serve {
namespace {

using core::ProcessorModel;

ProcessorModel& model() {
  static ProcessorModel m;
  return m;
}

// Small request budget so campaign gradings stay fast.
ServeOptions fast_options() {
  ServeOptions options;
  options.sim.num_threads = 2;
  options.max_faults = 2;
  return options;
}

struct ServeResult {
  int status;
  std::string out;
  std::string err;
};

// Feeds `script` to run_serve over in-memory streams.
ServeResult run_script(const std::string& script,
                       const ServeOptions& options,
                       std::shared_ptr<store::ArtifactStore> store = nullptr) {
  std::FILE* in = fmemopen(const_cast<char*>(script.data()),
                           script.size() ? script.size() : 1, "r");
  if (script.empty()) {
    // fmemopen needs a nonzero size; emulate EOF with an already-consumed
    // one-byte stream.
    std::fgetc(in);
  }
  char* out_buf = nullptr;
  std::size_t out_len = 0;
  std::FILE* out = open_memstream(&out_buf, &out_len);
  char* err_buf = nullptr;
  std::size_t err_len = 0;
  std::FILE* err = open_memstream(&err_buf, &err_len);

  ServeResult r;
  r.status = run_serve(model(), options, std::move(store), in, out, err);
  std::fclose(in);
  std::fclose(out);
  std::fclose(err);
  r.out.assign(out_buf, out_len);
  r.err.assign(err_buf, err_len);
  std::free(out_buf);
  std::free(err_buf);
  return r;
}

// Splits a response stream into per-request segments, each ending at its
// `ok <verb>` / `err ...` terminator line.
std::vector<std::string> split_responses(const std::string& out) {
  std::vector<std::string> segments;
  std::string current;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t eol = out.find('\n', pos);
    const std::string line = out.substr(pos, eol - pos);
    current += line + "\n";
    if (line.rfind("ok ", 0) == 0 || line.rfind("err ", 0) == 0) {
      segments.push_back(current);
      current.clear();
    }
    pos = eol == std::string::npos ? out.size() : eol + 1;
  }
  EXPECT_TRUE(current.empty()) << "unterminated response: " << current;
  return segments;
}

TEST(Serve, PingStatsAndQuit) {
  const ServeResult r = run_script("ping\nstats\nquit\n", fast_options());
  EXPECT_EQ(r.status, 0);
  const std::vector<std::string> seg = split_responses(r.out);
  ASSERT_EQ(seg.size(), 3u);
  EXPECT_EQ(seg[0], "ok ping\n");
  EXPECT_NE(seg[1].find("session: universe 0/0"), std::string::npos);
  EXPECT_NE(seg[1].find("store: none"), std::string::npos);
  EXPECT_NE(seg[1].find("ok stats"), std::string::npos);
  EXPECT_EQ(seg[2], "ok quit\n");
}

TEST(Serve, EofAndBlankLinesExitCleanly) {
  EXPECT_EQ(run_script("", fast_options()).status, 0);
  EXPECT_EQ(run_script("\n\n", fast_options()).status, 0);
}

TEST(Serve, ErrorsKeepTheLoopAlive) {
  const ServeResult r = run_script(
      "bogus\ncampaign div\nconform run /nonexistent-dir\nping\nquit\n",
      fast_options());
  EXPECT_EQ(r.status, 0);
  const std::vector<std::string> seg = split_responses(r.out);
  ASSERT_EQ(seg.size(), 5u);
  EXPECT_EQ(seg[0], "err unknown command: bogus\n");
  EXPECT_NE(seg[1].find("err campaign: div is not an injectable CUT"),
            std::string::npos);
  EXPECT_EQ(seg[2].rfind("err conform:", 0), 0u);
  EXPECT_EQ(seg[3], "ok ping\n");
  EXPECT_EQ(seg[4], "ok quit\n");
}

TEST(Serve, RepeatedCampaignRendersIdenticalBytesWarm) {
  const ServeResult r =
      run_script("campaign alu\ncampaign alu\nquit\n", fast_options());
  EXPECT_EQ(r.status, 0);
  const std::vector<std::string> seg = split_responses(r.out);
  ASSERT_EQ(seg.size(), 3u);
  // Second request runs fully warm off the shared session yet renders the
  // exact same bytes as the cold first request.
  EXPECT_GT(seg[0].size(), std::string("ok campaign\n").size());
  EXPECT_EQ(seg[0], seg[1]);
  EXPECT_NE(seg[0].find("ok campaign"), std::string::npos);
}

TEST(Serve, CampaignResponseMatchesOneShotRenderer) {
  const ServeOptions options = fast_options();
  const ServeResult r = run_script("campaign alu\nquit\n", options);
  const std::vector<std::string> seg = split_responses(r.out);
  ASSERT_EQ(seg.size(), 2u);

  // Render the same campaign through the renderer directly (what the
  // one-shot CLI command does) and compare bytes.
  core::SessionOptions sopts;
  sopts.num_threads = options.sim.num_threads;
  sopts.budget_factor = options.budget_factor;
  core::GradingSession session(model(), sopts);
  char* buf = nullptr;
  std::size_t len = 0;
  std::FILE* out = open_memstream(&buf, &len);
  char* err_buf = nullptr;
  std::size_t err_len = 0;
  std::FILE* err = open_memstream(&err_buf, &err_len);
  const int status = render_campaign(session, options.sim,
                                     options.max_faults,
                                     {core::CutId::kAlu}, out, err);
  std::fclose(out);
  std::fclose(err);
  EXPECT_EQ(status, 0);
  const std::string direct(buf, len);
  std::free(buf);
  std::free(err_buf);
  EXPECT_EQ(seg[0], direct + "ok campaign\n");
}

TEST(Serve, StatsReflectWorkAndStoreUsage) {
  const ServeResult r =
      run_script("campaign alu\nstats\nquit\n", fast_options());
  const std::vector<std::string> seg = split_responses(r.out);
  ASSERT_EQ(seg.size(), 3u);
  // After a campaign the session has built artifacts; with no store
  // configured the store line stays "none".
  EXPECT_EQ(seg[1].find("universe 0/0"), std::string::npos);
  EXPECT_NE(seg[1].find("store: none"), std::string::npos);
}

// ---- concurrent loop ------------------------------------------------------

TEST(Serve, ConcurrentLoopRendersIdenticalBytesToSerial) {
  // A mixed script — work verbs, probes, errors — through the serial loop
  // and through 2- and 4-worker concurrent loops. The ordered emitter must
  // make the response streams byte-identical, including the stats barrier
  // (whose counters depend on every earlier request having finished).
  const std::string script =
      "ping\ncampaign alu\nbogus\ncampaign alu shifter\nstats\n"
      "campaign mul\nping\nstats\nquit\n";
  ServeOptions serial = fast_options();
  const ServeResult base = run_script(script, serial);
  EXPECT_EQ(base.status, 0);
  for (const unsigned threads : {2u, 4u}) {
    ServeOptions options = fast_options();
    options.serve_threads = threads;
    const ServeResult r = run_script(script, options);
    EXPECT_EQ(r.status, 0);
    EXPECT_EQ(r.out, base.out) << "serve_threads=" << threads;
  }
}

TEST(Serve, ConcurrentLoopHandlesErrorsAndQuit) {
  ServeOptions options = fast_options();
  options.serve_threads = 2;
  const ServeResult r = run_script(
      "bogus\ncampaign div\nconform run /nonexistent-dir\nping\nquit\n",
      options);
  EXPECT_EQ(r.status, 0);
  const std::vector<std::string> seg = split_responses(r.out);
  ASSERT_EQ(seg.size(), 5u);
  EXPECT_EQ(seg[0], "err unknown command: bogus\n");
  EXPECT_NE(seg[1].find("err campaign: div is not an injectable CUT"),
            std::string::npos);
  EXPECT_EQ(seg[2].rfind("err conform:", 0), 0u);
  EXPECT_EQ(seg[3], "ok ping\n");
  EXPECT_EQ(seg[4], "ok quit\n");
}

TEST(Serve, ConcurrentLoopShedsWhenQueueIsFull) {
  ServeOptions options = fast_options();
  options.serve_threads = 2;
  options.queue_depth = 1;
  std::string script;
  const std::size_t kRequests = 8;
  for (std::size_t k = 0; k < kRequests; ++k) script += "campaign alu\n";
  script += "quit\n";
  const ServeResult r = run_script(script, options);
  EXPECT_EQ(r.status, 0);
  const std::vector<std::string> seg = split_responses(r.out);
  ASSERT_EQ(seg.size(), kRequests + 1);
  std::size_t ok = 0, shed = 0;
  for (std::size_t k = 0; k < kRequests; ++k) {
    if (seg[k].find("ok campaign") != std::string::npos) {
      ++ok;
    } else {
      EXPECT_EQ(seg[k].rfind("err overloaded retry-after=", 0), 0u)
          << seg[k];
      ++shed;
    }
  }
  // The first request always admits; the reader outpaces sub-second
  // campaigns so at least one later request must find the queue full.
  EXPECT_GE(ok, 1u);
  EXPECT_GE(shed, 1u);
  EXPECT_EQ(seg[kRequests], "ok quit\n");
}

// ---- deadlines ------------------------------------------------------------

TEST(Serve, DeadlineTimeoutIsStructuredAndKeepsTheLoopAlive) {
  for (const unsigned threads : {1u, 2u}) {
    ServeOptions options = fast_options();
    options.serve_threads = threads;
    options.request_deadline_ms = 1;  // no campaign finishes in 1 ms
    const ServeResult r =
        run_script("campaign alu\nping\nquit\n", options);
    EXPECT_EQ(r.status, 0);
    const std::vector<std::string> seg = split_responses(r.out);
    ASSERT_EQ(seg.size(), 3u) << "threads=" << threads;
    // The timed-out response is ONE structured line — the partially
    // rendered table is discarded, never emitted torn.
    EXPECT_EQ(seg[0], "err timeout deadline=1ms\n");
    EXPECT_EQ(seg[1], "ok ping\n");
    EXPECT_EQ(seg[2], "ok quit\n");
  }
}

TEST(Serve, AutoDeadlineLeavesHealthyRequestsAlone) {
  // "auto" derives each verb's deadline from its last good run: the first
  // campaign runs unlimited, the second warm one finishes far inside
  // 8 x the cold wall time. Both must succeed.
  ServeOptions options = fast_options();
  options.request_deadline_ms = -1;
  const ServeResult r =
      run_script("campaign alu\ncampaign alu\nquit\n", options);
  EXPECT_EQ(r.status, 0);
  const std::vector<std::string> seg = split_responses(r.out);
  ASSERT_EQ(seg.size(), 3u);
  EXPECT_NE(seg[0].find("ok campaign"), std::string::npos);
  EXPECT_EQ(seg[0], seg[1]);
}

// ---- bounded request lines ------------------------------------------------

TEST(Serve, OversizedRequestLineAnswersAndSurvives) {
  const std::string huge(2 * kMaxRequestLine, 'x');
  for (const unsigned threads : {1u, 2u}) {
    ServeOptions options = fast_options();
    options.serve_threads = threads;
    const ServeResult r =
        run_script(huge + "\nping\nquit\n", options);
    EXPECT_EQ(r.status, 0);
    const std::vector<std::string> seg = split_responses(r.out);
    ASSERT_EQ(seg.size(), 3u) << "threads=" << threads;
    EXPECT_EQ(seg[0], "err request-too-long\n");
    EXPECT_EQ(seg[1], "ok ping\n");
    EXPECT_EQ(seg[2], "ok quit\n");
  }
}

// ---- write-ahead journal --------------------------------------------------

struct TempJournal {
  std::filesystem::path path;
  explicit TempJournal(const std::string& tag) {
    path = std::filesystem::path(::testing::TempDir()) /
           (std::string("sbst-journal-") + tag + ".wal");
    std::filesystem::remove(path);
  }
  ~TempJournal() {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
  std::string str() const { return path.string(); }
};

TEST(Serve, JournalRecordsBeginsAndSealsForWorkVerbs) {
  TempJournal journal("roundtrip");
  ServeOptions options = fast_options();
  options.journal_path = journal.str();
  const ServeResult r =
      run_script("ping\ncampaign alu\nstats\nquit\n", options);
  EXPECT_EQ(r.status, 0);
  // Only the work verb is journaled: ping and stats are probes whose
  // replayed bytes could never verify.
  const JournalScan scan = Journal::scan_file(journal.str());
  EXPECT_FALSE(scan.missing);
  EXPECT_FALSE(scan.truncated_tail);
  EXPECT_EQ(scan.corrupt_skipped, 0u);
  const std::vector<JournalEntry> entries = scan.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].line, "campaign alu");
  EXPECT_TRUE(entries[0].sealed);
  EXPECT_EQ(entries[0].status, 0);
  EXPECT_GT(entries[0].response_size, 0u);
  // The stats response reports the journal's counters.
  const std::vector<std::string> seg = split_responses(r.out);
  ASSERT_EQ(seg.size(), 4u);
  EXPECT_NE(seg[2].find("journal: begins 1 seals 1"), std::string::npos);
}

TEST(Serve, JournalSequencesContinueAcrossRestarts) {
  TempJournal journal("restart");
  ServeOptions options = fast_options();
  options.journal_path = journal.str();
  EXPECT_EQ(run_script("campaign alu\nquit\n", options).status, 0);
  EXPECT_EQ(run_script("campaign alu\nquit\n", options).status, 0);
  const std::vector<JournalEntry> entries =
      Journal::scan_file(journal.str()).entries();
  ASSERT_EQ(entries.size(), 2u);
  // The second daemon scanned the existing file and continued numbering —
  // colliding sequence numbers would corrupt begin/seal pairing on replay.
  EXPECT_EQ(entries[0].seq, 0u);
  EXPECT_EQ(entries[1].seq, 1u);
  EXPECT_TRUE(entries[0].sealed);
  EXPECT_TRUE(entries[1].sealed);
}

TEST(Serve, ReplayRecoversUnsealedRequestByteIdentically) {
  TempJournal journal("replay");
  // Simulate a crash between begin and seal: a begin record with no seal,
  // exactly what a SIGKILL mid-campaign leaves behind.
  {
    Journal j(journal.str());
    ASSERT_TRUE(j.open_append());
    ASSERT_TRUE(j.append_begin(0, "campaign alu"));
  }
  ServeOptions options = fast_options();
  options.journal_path = journal.str();
  options.replay_journal = true;
  const ServeResult recovered = run_script("quit\n", options);
  EXPECT_EQ(recovered.status, 0);

  // The recovered response must be byte-identical to serving the request
  // normally (minus the trailing quit acknowledgement).
  const ServeResult direct = run_script("campaign alu\nquit\n",
                                        fast_options());
  const std::vector<std::string> direct_seg = split_responses(direct.out);
  ASSERT_EQ(direct_seg.size(), 2u);
  EXPECT_EQ(recovered.out, direct_seg[0] + "ok quit\n");

  // The replay sealed the entry: a second replay verifies instead of
  // re-emitting.
  const std::vector<JournalEntry> entries =
      Journal::scan_file(journal.str()).entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(entries[0].sealed);
  const ServeResult verified = run_script("quit\n", options);
  EXPECT_EQ(verified.out, "ok quit\n");
  EXPECT_NE(verified.err.find("verified"), std::string::npos);
}

TEST(Serve, ParseCutNameAndInjectableCut) {
  core::CutId id;
  ASSERT_TRUE(parse_cut_name("alu", id));
  EXPECT_EQ(id, core::CutId::kAlu);
  ASSERT_TRUE(parse_cut_name("div", id));
  EXPECT_EQ(id, core::CutId::kDivider);
  EXPECT_FALSE(parse_cut_name("nope", id));
  EXPECT_TRUE(injectable_cut(core::CutId::kAlu));
  EXPECT_TRUE(injectable_cut(core::CutId::kShifter));
  EXPECT_TRUE(injectable_cut(core::CutId::kMultiplier));
  EXPECT_FALSE(injectable_cut(core::CutId::kDivider));
  EXPECT_FALSE(injectable_cut(core::CutId::kControl));
}

}  // namespace
}  // namespace sbst::serve
