// `sbst serve` protocol loop: sequential requests over one warm session,
// deterministic response bytes (a repeated request renders identically, and
// identically to the one-shot renderer), error handling that keeps the loop
// alive, and clean EOF/quit shutdown.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "serve/serve.hpp"

namespace sbst::serve {
namespace {

using core::ProcessorModel;

ProcessorModel& model() {
  static ProcessorModel m;
  return m;
}

// Small request budget so campaign gradings stay fast.
ServeOptions fast_options() {
  ServeOptions options;
  options.sim.num_threads = 2;
  options.max_faults = 2;
  return options;
}

struct ServeResult {
  int status;
  std::string out;
  std::string err;
};

// Feeds `script` to run_serve over in-memory streams.
ServeResult run_script(const std::string& script,
                       const ServeOptions& options,
                       std::shared_ptr<store::ArtifactStore> store = nullptr) {
  std::FILE* in = fmemopen(const_cast<char*>(script.data()),
                           script.size() ? script.size() : 1, "r");
  if (script.empty()) {
    // fmemopen needs a nonzero size; emulate EOF with an already-consumed
    // one-byte stream.
    std::fgetc(in);
  }
  char* out_buf = nullptr;
  std::size_t out_len = 0;
  std::FILE* out = open_memstream(&out_buf, &out_len);
  char* err_buf = nullptr;
  std::size_t err_len = 0;
  std::FILE* err = open_memstream(&err_buf, &err_len);

  ServeResult r;
  r.status = run_serve(model(), options, std::move(store), in, out, err);
  std::fclose(in);
  std::fclose(out);
  std::fclose(err);
  r.out.assign(out_buf, out_len);
  r.err.assign(err_buf, err_len);
  std::free(out_buf);
  std::free(err_buf);
  return r;
}

// Splits a response stream into per-request segments, each ending at its
// `ok <verb>` / `err ...` terminator line.
std::vector<std::string> split_responses(const std::string& out) {
  std::vector<std::string> segments;
  std::string current;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t eol = out.find('\n', pos);
    const std::string line = out.substr(pos, eol - pos);
    current += line + "\n";
    if (line.rfind("ok ", 0) == 0 || line.rfind("err ", 0) == 0) {
      segments.push_back(current);
      current.clear();
    }
    pos = eol == std::string::npos ? out.size() : eol + 1;
  }
  EXPECT_TRUE(current.empty()) << "unterminated response: " << current;
  return segments;
}

TEST(Serve, PingStatsAndQuit) {
  const ServeResult r = run_script("ping\nstats\nquit\n", fast_options());
  EXPECT_EQ(r.status, 0);
  const std::vector<std::string> seg = split_responses(r.out);
  ASSERT_EQ(seg.size(), 3u);
  EXPECT_EQ(seg[0], "ok ping\n");
  EXPECT_NE(seg[1].find("session: universe 0/0"), std::string::npos);
  EXPECT_NE(seg[1].find("store: none"), std::string::npos);
  EXPECT_NE(seg[1].find("ok stats"), std::string::npos);
  EXPECT_EQ(seg[2], "ok quit\n");
}

TEST(Serve, EofAndBlankLinesExitCleanly) {
  EXPECT_EQ(run_script("", fast_options()).status, 0);
  EXPECT_EQ(run_script("\n\n", fast_options()).status, 0);
}

TEST(Serve, ErrorsKeepTheLoopAlive) {
  const ServeResult r = run_script(
      "bogus\ncampaign div\nconform run /nonexistent-dir\nping\nquit\n",
      fast_options());
  EXPECT_EQ(r.status, 0);
  const std::vector<std::string> seg = split_responses(r.out);
  ASSERT_EQ(seg.size(), 5u);
  EXPECT_EQ(seg[0], "err unknown command: bogus\n");
  EXPECT_NE(seg[1].find("err campaign: div is not an injectable CUT"),
            std::string::npos);
  EXPECT_EQ(seg[2].rfind("err conform:", 0), 0u);
  EXPECT_EQ(seg[3], "ok ping\n");
  EXPECT_EQ(seg[4], "ok quit\n");
}

TEST(Serve, RepeatedCampaignRendersIdenticalBytesWarm) {
  const ServeResult r =
      run_script("campaign alu\ncampaign alu\nquit\n", fast_options());
  EXPECT_EQ(r.status, 0);
  const std::vector<std::string> seg = split_responses(r.out);
  ASSERT_EQ(seg.size(), 3u);
  // Second request runs fully warm off the shared session yet renders the
  // exact same bytes as the cold first request.
  EXPECT_GT(seg[0].size(), std::string("ok campaign\n").size());
  EXPECT_EQ(seg[0], seg[1]);
  EXPECT_NE(seg[0].find("ok campaign"), std::string::npos);
}

TEST(Serve, CampaignResponseMatchesOneShotRenderer) {
  const ServeOptions options = fast_options();
  const ServeResult r = run_script("campaign alu\nquit\n", options);
  const std::vector<std::string> seg = split_responses(r.out);
  ASSERT_EQ(seg.size(), 2u);

  // Render the same campaign through the renderer directly (what the
  // one-shot CLI command does) and compare bytes.
  core::SessionOptions sopts;
  sopts.num_threads = options.sim.num_threads;
  sopts.budget_factor = options.budget_factor;
  core::GradingSession session(model(), sopts);
  char* buf = nullptr;
  std::size_t len = 0;
  std::FILE* out = open_memstream(&buf, &len);
  char* err_buf = nullptr;
  std::size_t err_len = 0;
  std::FILE* err = open_memstream(&err_buf, &err_len);
  const int status = render_campaign(session, options.sim,
                                     options.max_faults,
                                     {core::CutId::kAlu}, out, err);
  std::fclose(out);
  std::fclose(err);
  EXPECT_EQ(status, 0);
  const std::string direct(buf, len);
  std::free(buf);
  std::free(err_buf);
  EXPECT_EQ(seg[0], direct + "ok campaign\n");
}

TEST(Serve, StatsReflectWorkAndStoreUsage) {
  const ServeResult r =
      run_script("campaign alu\nstats\nquit\n", fast_options());
  const std::vector<std::string> seg = split_responses(r.out);
  ASSERT_EQ(seg.size(), 3u);
  // After a campaign the session has built artifacts; with no store
  // configured the store line stays "none".
  EXPECT_EQ(seg[1].find("universe 0/0"), std::string::npos);
  EXPECT_NE(seg[1].find("store: none"), std::string::npos);
}

TEST(Serve, ParseCutNameAndInjectableCut) {
  core::CutId id;
  ASSERT_TRUE(parse_cut_name("alu", id));
  EXPECT_EQ(id, core::CutId::kAlu);
  ASSERT_TRUE(parse_cut_name("div", id));
  EXPECT_EQ(id, core::CutId::kDivider);
  EXPECT_FALSE(parse_cut_name("nope", id));
  EXPECT_TRUE(injectable_cut(core::CutId::kAlu));
  EXPECT_TRUE(injectable_cut(core::CutId::kShifter));
  EXPECT_TRUE(injectable_cut(core::CutId::kMultiplier));
  EXPECT_FALSE(injectable_cut(core::CutId::kDivider));
  EXPECT_FALSE(injectable_cut(core::CutId::kControl));
}

}  // namespace
}  // namespace sbst::serve
