// Persistent artifact store: file-level robustness (truncation, bit flips,
// wrong format version, wrong content hash all read as misses and trigger a
// clean rebuild), artifact codec round-trips, and the store differential
// guarantee — evaluate_program returns bitwise-identical results with the
// store off, cold, or warm, for every engine / lane width / thread count.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/serialize.hpp"
#include "core/evaluate.hpp"
#include "store/artifact_store.hpp"

namespace fs = std::filesystem;

namespace sbst::core {
namespace {

// Fresh per-test store directory under the gtest temp root, removed on
// destruction so repeated runs never see each other's entries.
struct TempStoreDir {
  fs::path path;
  explicit TempStoreDir(const std::string& tag) {
    path = fs::path(::testing::TempDir()) /
           (std::string("sbst-store-") + tag);
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempStoreDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

std::vector<std::uint8_t> read_all(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_all(const fs::path& p, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// The single entry file a one-save store holds.
fs::path only_entry(const fs::path& dir) {
  fs::path found;
  std::size_t count = 0;
  for (const auto& e : fs::recursive_directory_iterator(dir)) {
    if (e.is_regular_file()) {
      found = e.path();
      ++count;
    }
  }
  EXPECT_EQ(count, 1u);
  return found;
}

const std::vector<std::uint8_t> kKey = {1, 2, 3, 4, 5};
const std::vector<std::uint8_t> kPayload = {9, 8, 7, 6, 5, 4, 3, 2, 1, 0};

// ---- store file-level robustness ------------------------------------------

TEST(ArtifactStore, RoundTripAndStats) {
  TempStoreDir dir("roundtrip");
  store::ArtifactStore s(dir.str());
  EXPECT_TRUE(s.save("universe", kKey, kPayload));
  const auto got = s.load("universe", kKey);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, kPayload);
  const store::StoreStats st = s.stats();
  EXPECT_EQ(st.writes, 1u);
  EXPECT_EQ(st.loads, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 0u);
  EXPECT_EQ(st.invalid, 0u);
}

TEST(ArtifactStore, AbsentKeyIsAMiss) {
  TempStoreDir dir("miss");
  store::ArtifactStore s(dir.str());
  EXPECT_FALSE(s.load("universe", kKey).has_value());
  EXPECT_EQ(s.stats().misses, 1u);
  EXPECT_EQ(s.stats().invalid, 0u);
}

TEST(ArtifactStore, KindsAndKeysSelectDistinctEntries) {
  TempStoreDir dir("distinct");
  store::ArtifactStore s(dir.str());
  const std::vector<std::uint8_t> other_key = {1, 2, 3, 4, 6};
  const std::vector<std::uint8_t> other_payload = {42};
  EXPECT_TRUE(s.save("universe", kKey, kPayload));
  EXPECT_TRUE(s.save("universe", other_key, other_payload));
  EXPECT_TRUE(s.save("compiled", kKey, other_payload));
  EXPECT_EQ(*s.load("universe", kKey), kPayload);
  EXPECT_EQ(*s.load("universe", other_key), other_payload);
  EXPECT_EQ(*s.load("compiled", kKey), other_payload);
}

TEST(ArtifactStore, TruncatedEntriesAreRejected) {
  TempStoreDir dir("truncate");
  store::ArtifactStore s(dir.str());
  ASSERT_TRUE(s.save("universe", kKey, kPayload));
  const fs::path entry = only_entry(dir.path);
  const std::vector<std::uint8_t> full = read_all(entry);
  ASSERT_GT(full.size(), 8u);
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{4}, full.size() / 2, full.size() - 1}) {
    write_all(entry, std::vector<std::uint8_t>(full.begin(),
                                               full.begin() + keep));
    EXPECT_FALSE(s.load("universe", kKey).has_value())
        << "truncated to " << keep << " of " << full.size() << " bytes";
  }
  // An overlong file (trailing garbage) is rejected too.
  std::vector<std::uint8_t> padded = full;
  padded.push_back(0);
  write_all(entry, padded);
  EXPECT_FALSE(s.load("universe", kKey).has_value());
  EXPECT_GT(s.stats().invalid, 0u);
  EXPECT_EQ(s.stats().hits, 0u);
}

TEST(ArtifactStore, EveryFlippedByteIsRejected) {
  TempStoreDir dir("bitflip");
  store::ArtifactStore s(dir.str());
  ASSERT_TRUE(s.save("universe", kKey, kPayload));
  const fs::path entry = only_entry(dir.path);
  const std::vector<std::uint8_t> full = read_all(entry);
  // Flipping ANY single byte — magic, version, kind, sizes, key bytes,
  // either hash, or payload — must read as a miss, never as wrong data.
  for (std::size_t i = 0; i < full.size(); ++i) {
    std::vector<std::uint8_t> bad = full;
    bad[i] ^= 0x40;
    write_all(entry, bad);
    EXPECT_FALSE(s.load("universe", kKey).has_value())
        << "byte " << i << " of " << full.size();
  }
  write_all(entry, full);
  EXPECT_TRUE(s.load("universe", kKey).has_value());
}

TEST(ArtifactStore, WrongFormatVersionIsRejected) {
  TempStoreDir dir("version");
  store::ArtifactStore s(dir.str());
  ASSERT_TRUE(s.save("universe", kKey, kPayload));
  const fs::path entry = only_entry(dir.path);
  std::vector<std::uint8_t> bytes = read_all(entry);
  // Header layout: magic u64 at 0, format version u32 at 8.
  bytes[8] = static_cast<std::uint8_t>(store::ArtifactStore::kFormatVersion +
                                       1);
  write_all(entry, bytes);
  EXPECT_FALSE(s.load("universe", kKey).has_value());
  EXPECT_GT(s.stats().invalid, 0u);
}

TEST(ArtifactStore, WrongContentHashIsRejected) {
  TempStoreDir dir("hash");
  store::ArtifactStore s(dir.str());
  ASSERT_TRUE(s.save("universe", kKey, kPayload));
  const fs::path entry = only_entry(dir.path);
  std::vector<std::uint8_t> bytes = read_all(entry);
  // payload_hash is the last header field, just before the key bytes:
  // magic(8) + version(4) + kind(8+len) + key_size(8) + payload_size(8) +
  // key_hash(8) + payload_hash(8).
  const std::size_t off = 8 + 4 + (8 + std::strlen("universe")) + 8 + 8 + 8;
  for (std::size_t i = 0; i < 8; ++i) bytes[off + i] ^= 0xff;
  write_all(entry, bytes);
  EXPECT_FALSE(s.load("universe", kKey).has_value());
  EXPECT_GT(s.stats().invalid, 0u);
}

TEST(ArtifactStore, SaveOverwritesACorruptEntry) {
  TempStoreDir dir("overwrite");
  store::ArtifactStore s(dir.str());
  ASSERT_TRUE(s.save("universe", kKey, kPayload));
  const fs::path entry = only_entry(dir.path);
  write_all(entry, {0xde, 0xad});
  EXPECT_FALSE(s.load("universe", kKey).has_value());
  EXPECT_TRUE(s.save("universe", kKey, kPayload));
  EXPECT_EQ(*s.load("universe", kKey), kPayload);
}

// ---- write-failure paths --------------------------------------------------
// The container runs as root, where permission bits are bypassed, so the
// failure injections use filesystem-shape tricks instead of chmod: a regular
// file where the entry DIRECTORY should be kills create_directories/fopen,
// and a non-empty directory at the entry FILE path kills the rename.

// The exact path a save("<kind>", key, ...) writes: the layout is part of
// the store's documented contract (header comment of artifact_store.hpp).
fs::path entry_path_for(const fs::path& dir, const std::string& kind,
                        const std::vector<std::uint8_t>& key) {
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(
                    common::fnv1a_bytes(key.data(), key.size())));
  return dir /
         ("v" + std::to_string(store::ArtifactStore::kFormatVersion)) /
         (kind + "-" + hex + ".bin");
}

TEST(ArtifactStore, UnwritableEntryDirCountsWriteFailureAndRecovers) {
  TempStoreDir dir("wfail-dir");
  const fs::path vdir =
      dir.path / ("v" + std::to_string(store::ArtifactStore::kFormatVersion));
  write_all(vdir, {0x00});  // a FILE squats on the entry-directory path
  store::ArtifactStore s(dir.str());
  EXPECT_FALSE(s.save("universe", kKey, kPayload));
  EXPECT_EQ(s.stats().write_failures, 1u);
  EXPECT_EQ(s.stats().writes, 0u);
  // Loads through the broken dir are plain misses, never crashes.
  EXPECT_FALSE(s.load("universe", kKey).has_value());
  // Once the obstruction is gone the same store object works again.
  fs::remove(vdir);
  EXPECT_TRUE(s.save("universe", kKey, kPayload));
  EXPECT_EQ(*s.load("universe", kKey), kPayload);
}

TEST(ArtifactStore, RenameFailureCountsWriteFailureAndCleansTmp) {
  TempStoreDir dir("wfail-rename");
  const fs::path entry = entry_path_for(dir.path, "universe", kKey);
  // A non-empty directory at the entry path: the tmp write succeeds but the
  // atomic rename over it cannot.
  fs::create_directories(entry / "occupied");
  store::ArtifactStore s(dir.str());
  EXPECT_FALSE(s.save("universe", kKey, kPayload));
  EXPECT_EQ(s.stats().write_failures, 1u);
  // The failed save removed its own temporary file.
  std::size_t tmp_files = 0;
  for (const auto& e : fs::recursive_directory_iterator(dir.path)) {
    if (e.is_regular_file() &&
        e.path().string().find(".tmp") != std::string::npos) {
      ++tmp_files;
    }
  }
  EXPECT_EQ(tmp_files, 0u);
  EXPECT_FALSE(s.load("universe", kKey).has_value());
}

// ---- size budget / LRU eviction -------------------------------------------

TEST(ArtifactStore, EvictsLeastRecentlyUsedWhenOverBudget) {
  TempStoreDir dir("evict-lru");
  store::ArtifactStore s(dir.str());
  const std::vector<std::uint8_t> key_a = {1};
  const std::vector<std::uint8_t> key_b = {2};
  const std::vector<std::uint8_t> key_c = {3};
  ASSERT_TRUE(s.save("universe", key_a, kPayload));
  ASSERT_TRUE(s.save("universe", key_b, kPayload));
  const fs::path entry_a = entry_path_for(dir.path, "universe", key_a);
  const fs::path entry_b = entry_path_for(dir.path, "universe", key_b);
  const std::uint64_t entry_size = fs::file_size(entry_a);
  ASSERT_EQ(entry_size, fs::file_size(entry_b));

  // Backdate both entries, A older than B, then touch A through a budgeted
  // load hit — the hit must refresh A's recency or eviction is
  // least-recently-WRITTEN, not least-recently-used.
  const auto now = fs::file_time_type::clock::now();
  fs::last_write_time(entry_a, now - std::chrono::hours(2));
  fs::last_write_time(entry_b, now - std::chrono::hours(1));
  s.set_budget(2 * entry_size);
  ASSERT_TRUE(s.load("universe", key_a).has_value());

  // Budget holds two entries; saving C must evict exactly one, and it must
  // be B (A was just used, C is the entry being written).
  ASSERT_TRUE(s.save("universe", key_c, kPayload));
  EXPECT_TRUE(s.load("universe", key_a).has_value());
  EXPECT_FALSE(s.load("universe", key_b).has_value());
  EXPECT_TRUE(s.load("universe", key_c).has_value());
  const store::StoreStats st = s.stats();
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.evicted_bytes, entry_size);
  EXPECT_EQ(s.budget(), 2 * entry_size);
}

TEST(ArtifactStore, EvictionSweepsStaleTmpFilesOnly) {
  TempStoreDir dir("evict-tmp");
  store::ArtifactStore s(dir.str());
  ASSERT_TRUE(s.save("universe", kKey, kPayload));
  const fs::path vdir =
      dir.path / ("v" + std::to_string(store::ArtifactStore::kFormatVersion));
  // A crashed writer's leftover (old) and a live writer's tmp (fresh).
  const fs::path stale = vdir / "universe-0000000000000000.bin.tmp12345";
  const fs::path fresh = vdir / "universe-1111111111111111.bin.tmp67890";
  write_all(stale, {1, 2, 3});
  write_all(fresh, {4, 5, 6});
  fs::last_write_time(stale, fs::file_time_type::clock::now() -
                                 std::chrono::hours(1));

  s.set_budget(1 << 20);  // comfortably over the total: no entry evictions
  ASSERT_TRUE(s.save("compiled", kKey, kPayload));
  EXPECT_FALSE(fs::exists(stale));
  EXPECT_TRUE(fs::exists(fresh));
  const store::StoreStats st = s.stats();
  EXPECT_EQ(st.stale_tmp_removed, 1u);
  EXPECT_EQ(st.evictions, 0u);
  // Entries are untouched by the sweep.
  EXPECT_TRUE(s.load("universe", kKey).has_value());
  EXPECT_TRUE(s.load("compiled", kKey).has_value());
}

// ---- directory resolution -------------------------------------------------

TEST(ArtifactStore, ResolveDirHonorsExplicitPathAutoAndFailsSoft) {
  EXPECT_EQ(store::ArtifactStore::resolve_dir("/tmp/explicit"),
            "/tmp/explicit");

  const char* xdg = std::getenv("XDG_CACHE_HOME");
  const char* home = std::getenv("HOME");
  const std::string saved_xdg = xdg ? xdg : "";
  const std::string saved_home = home ? home : "";
  const bool had_xdg = xdg != nullptr;
  const bool had_home = home != nullptr;

  setenv("XDG_CACHE_HOME", "/xdg-cache", 1);
  EXPECT_EQ(store::ArtifactStore::resolve_dir("auto"), "/xdg-cache/sbst");
  unsetenv("XDG_CACHE_HOME");
  setenv("HOME", "/home/u", 1);
  EXPECT_EQ(store::ArtifactStore::default_dir(), "/home/u/.cache/sbst");
  // Both unset: no sane cache root exists. The contract is an EMPTY result
  // (callers run storeless with a warning), not a .sbst-store dropped into
  // the current directory.
  unsetenv("HOME");
  EXPECT_TRUE(store::ArtifactStore::default_dir().empty());
  EXPECT_TRUE(store::ArtifactStore::resolve_dir("auto").empty());
  EXPECT_TRUE(store::ArtifactStore::resolve_dir("").empty());

  if (had_xdg) {
    setenv("XDG_CACHE_HOME", saved_xdg.c_str(), 1);
  } else {
    unsetenv("XDG_CACHE_HOME");
  }
  if (had_home) {
    setenv("HOME", saved_home.c_str(), 1);
  } else {
    unsetenv("HOME");
  }
}

// ---- artifact codec round-trips -------------------------------------------

const netlist::Netlist& alu_netlist() {
  static ProcessorModel model;
  return model.component(CutId::kAlu).netlist;
}

std::vector<std::uint8_t> universe_image(const fault::FaultUniverse& u) {
  common::ByteWriter w;
  u.serialize(w);
  return w.bytes();
}

TEST(ArtifactCodec, FaultUniverseRoundTrip) {
  const netlist::Netlist& nl = alu_netlist();
  const fault::FaultUniverse original(nl);
  const std::vector<std::uint8_t> image = universe_image(original);

  common::ByteReader r(image.data(), image.size());
  const auto copy = fault::FaultUniverse::deserialize(nl, r);
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->uncollapsed_count(), original.uncollapsed_count());
  ASSERT_EQ(copy->size(), original.size());
  EXPECT_EQ(universe_image(*copy), image);
}

TEST(ArtifactCodec, FaultUniverseRejectsMalformedImages) {
  const netlist::Netlist& nl = alu_netlist();
  const fault::FaultUniverse original(nl);
  const std::vector<std::uint8_t> image = universe_image(original);

  {  // wrong codec version
    std::vector<std::uint8_t> bad = image;
    bad[0] ^= 0xff;
    common::ByteReader r(bad.data(), bad.size());
    EXPECT_EQ(fault::FaultUniverse::deserialize(nl, r), nullptr);
  }
  {  // truncated
    common::ByteReader r(image.data(), image.size() / 2);
    EXPECT_EQ(fault::FaultUniverse::deserialize(nl, r), nullptr);
  }
  {  // out-of-range gate index in the first fault record
    common::ByteWriter w;
    w.put_u32(fault::FaultUniverse::kSerialVersion);
    w.put_u64(1);
    w.put_u64(1);
    w.put_u32(static_cast<std::uint32_t>(nl.size()));  // one past the end
    w.put_u8(0);
    w.put_bool(false);
    const std::vector<std::uint8_t> bad = w.bytes();
    common::ByteReader r(bad.data(), bad.size());
    EXPECT_EQ(fault::FaultUniverse::deserialize(nl, r), nullptr);
  }
  {  // empty
    common::ByteReader r(image.data(), 0);
    EXPECT_EQ(fault::FaultUniverse::deserialize(nl, r), nullptr);
  }
}

TEST(ArtifactCodec, CompiledNetlistRoundTripAcrossOptions) {
  const netlist::Netlist& nl = alu_netlist();
  for (const netlist::CompileOptions opts :
       {netlist::CompileOptions{}, netlist::CompileOptions::all()}) {
    const netlist::CompiledNetlist original(nl, opts);
    common::ByteWriter w;
    original.serialize(w);
    const std::vector<std::uint8_t> image = w.bytes();

    common::ByteReader r(image.data(), image.size());
    const auto copy = netlist::CompiledNetlist::deserialize(nl, r);
    ASSERT_NE(copy, nullptr);
    EXPECT_EQ(copy->size(), original.size());
    EXPECT_EQ(copy->live_gates(), original.live_gates());
    EXPECT_EQ(copy->levels(), original.levels());
    common::ByteWriter w2;
    copy->serialize(w2);
    EXPECT_EQ(w2.bytes(), image);

    common::ByteReader half(image.data(), image.size() / 2);
    EXPECT_EQ(netlist::CompiledNetlist::deserialize(nl, half), nullptr);
  }
}

TEST(ArtifactCodec, DecodedProgramRoundTrip) {
  TestProgramBuilder builder;
  builder.add(make_alu_routine({}));
  const TestProgram program = builder.build();
  const isa::DecodedProgram original(program.image);

  common::ByteWriter w;
  original.serialize(w);
  const std::vector<std::uint8_t> image = w.bytes();

  common::ByteReader r(image.data(), image.size());
  const auto copy = isa::DecodedProgram::deserialize(r);
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->base(), original.base());
  EXPECT_EQ(copy->size(), original.size());
  EXPECT_EQ(copy->end_address(), original.end_address());
  common::ByteWriter w2;
  copy->serialize(w2);
  EXPECT_EQ(w2.bytes(), image);

  common::ByteReader half(image.data(), image.size() / 2);
  EXPECT_EQ(isa::DecodedProgram::deserialize(half), nullptr);
}

TEST(ArtifactCodec, PatternSetRoundTrip) {
  const netlist::Netlist& nl = alu_netlist();
  fault::PatternSet original(nl);
  Rng rng(7);
  for (int i = 0; i < 70; ++i) original.add_random(rng);  // 2 lane blocks

  common::ByteWriter w;
  original.serialize(w);
  const std::vector<std::uint8_t> image = w.bytes();

  common::ByteReader r(image.data(), image.size());
  const auto copy = fault::PatternSet::deserialize(nl, r);
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->size(), original.size());
  ASSERT_EQ(copy->block_count(), original.block_count());
  for (std::size_t b = 0; b < original.block_count(); ++b) {
    EXPECT_EQ(copy->block(b), original.block(b)) << "block " << b;
    EXPECT_EQ(copy->valid_lanes(b), original.valid_lanes(b)) << "block " << b;
  }

  common::ByteReader half(image.data(), image.size() / 2);
  EXPECT_EQ(fault::PatternSet::deserialize(nl, half), nullptr);
}

// ---- session-level store behavior -----------------------------------------

struct Fixture {
  ProcessorModel model;
  TestProgramBuilder builder;
  TestProgram program;
  Fixture() {
    builder.add(make_alu_routine({}));
    builder.add(make_memctrl_routine({}));
    program = builder.build();
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

EvalOptions small_options() {
  EvalOptions options;
  options.regfile_cycle_cap = 32;
  options.pipeline_cycle_cap = 256;
  return options;
}

void expect_same_exec(const sim::ExecStats& a, const sim::ExecStats& b,
                      const std::string& what) {
  EXPECT_EQ(a.instructions, b.instructions) << what;
  EXPECT_EQ(a.cpu_cycles, b.cpu_cycles) << what;
  EXPECT_EQ(a.pipeline_stall_cycles, b.pipeline_stall_cycles) << what;
  EXPECT_EQ(a.memory_stall_cycles, b.memory_stall_cycles) << what;
  EXPECT_EQ(a.loads, b.loads) << what;
  EXPECT_EQ(a.stores, b.stores) << what;
  EXPECT_EQ(a.halted, b.halted) << what;
}

void expect_same_evaluation(const ProgramEvaluation& a,
                            const ProgramEvaluation& b,
                            const std::string& what) {
  ASSERT_EQ(a.cuts.size(), b.cuts.size()) << what;
  for (std::size_t i = 0; i < a.cuts.size(); ++i) {
    EXPECT_EQ(a.cuts[i].id, b.cuts[i].id) << what;
    EXPECT_EQ(a.cuts[i].collapsed_faults, b.cuts[i].collapsed_faults) << what;
    EXPECT_EQ(a.cuts[i].coverage.detected, b.cuts[i].coverage.detected)
        << what;
    EXPECT_EQ(a.cuts[i].coverage.detected_flags,
              b.cuts[i].coverage.detected_flags)
        << what << " cut " << static_cast<int>(a.cuts[i].id);
  }
  EXPECT_EQ(a.signatures, b.signatures) << what;
  expect_same_exec(a.total, b.total, what + " total");
}

SessionOptions store_session_options(
    std::shared_ptr<store::ArtifactStore> store, fault::Engine engine,
    unsigned lanes, unsigned threads) {
  SessionOptions sopts;
  sopts.num_threads = threads;
  sopts.lanes = lanes;
  sopts.store = std::move(store);
  (void)engine;  // engine rides in EvalOptions; lanes/threads in the session
  return sopts;
}

TEST(StoreSession, ColdAndWarmAreBitwiseIdenticalToStoreOff) {
  const Fixture& f = fixture();

  EvalOptions base_options = small_options();
  GradingSession base_session(f.model, {.num_threads = 1});
  const ProgramEvaluation baseline =
      evaluate_program(base_session, f.builder, f.program, base_options);
  EXPECT_GT(baseline.overall_fc(), 0.0);

  for (fault::Engine engine :
       {fault::Engine::kCompiled, fault::Engine::kEvent}) {
    for (unsigned lanes : {1u, 4u}) {
      TempStoreDir dir(std::string("diff-") + fault::engine_name(engine) +
                       "-" + std::to_string(lanes));
      for (unsigned threads : {1u, 2u}) {
        const std::string what = std::string("engine=") +
                                 fault::engine_name(engine) + " lanes=" +
                                 std::to_string(lanes) + " threads=" +
                                 std::to_string(threads);
        EvalOptions options = small_options();
        options.sim.engine = engine;

        // Cold pass: first thread count populates the store; warm pass
        // reloads every artifact. Both must match the store-off baseline.
        auto store = std::make_shared<store::ArtifactStore>(dir.str());
        options.sim.store = store.get();
        GradingSession session(
            f.model, store_session_options(store, engine, lanes, threads));
        const ProgramEvaluation ev =
            evaluate_program(session, f.builder, f.program, options);
        expect_same_evaluation(baseline, ev, what);

        const SessionStats stats = session.stats();
        EXPECT_EQ(stats.store_loads,
                  stats.store_hits + stats.store_misses + stats.store_invalid)
            << what;
        if (threads == 1u) {
          // First run against this directory: everything missed and was
          // written back.
          EXPECT_GT(stats.store_misses, 0u) << what;
          EXPECT_GT(stats.store_writes, 0u) << what;
        } else {
          // Warm run: the store-served artifacts are never rebuilt.
          EXPECT_GT(stats.store_hits, 0u) << what;
          EXPECT_EQ(stats.universe_builds, 0u) << what;
          EXPECT_EQ(stats.decode_builds, 0u) << what;
          EXPECT_EQ(stats.goodrun_builds, 0u) << what;
        }
      }
    }
  }
}

TEST(StoreSession, CorruptStoreFallsBackToCleanRebuild) {
  const Fixture& f = fixture();
  TempStoreDir dir("corrupt");
  const EvalOptions options = small_options();

  GradingSession base_session(f.model, {.num_threads = 2});
  const ProgramEvaluation baseline =
      evaluate_program(base_session, f.builder, f.program, options);

  {  // populate
    auto store = std::make_shared<store::ArtifactStore>(dir.str());
    GradingSession session(f.model,
                           {.num_threads = 2, .store = store});
    evaluate_program(session, f.builder, f.program, options);
    EXPECT_GT(session.stats().store_writes, 0u);
  }

  // Vandalize every entry: truncate even files, flip a byte in odd ones.
  std::size_t n = 0, corrupted = 0;
  for (const auto& e : fs::recursive_directory_iterator(dir.path)) {
    if (!e.is_regular_file()) continue;
    std::vector<std::uint8_t> bytes = read_all(e.path());
    if (n % 2 == 0) {
      bytes.resize(bytes.size() / 2);
    } else {
      bytes[bytes.size() / 2] ^= 0x01;
    }
    write_all(e.path(), bytes);
    ++n;
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0u);

  auto store = std::make_shared<store::ArtifactStore>(dir.str());
  GradingSession session(f.model, {.num_threads = 2, .store = store});
  const ProgramEvaluation ev =
      evaluate_program(session, f.builder, f.program, options);
  expect_same_evaluation(baseline, ev, "after corruption");
  // Every probe fell back to a rebuild; file-level damage shows up in the
  // store's own counters, not as a crash or wrong data.
  EXPECT_EQ(session.stats().store_hits, 0u);
  EXPECT_GT(session.stats().universe_builds, 0u);
  EXPECT_GT(store->stats().invalid, 0u);
  // The rebuilds re-wrote the damaged entries: a third session runs warm.
  auto store2 = std::make_shared<store::ArtifactStore>(dir.str());
  GradingSession warm(f.model, {.num_threads = 2, .store = store2});
  const ProgramEvaluation ev2 =
      evaluate_program(warm, f.builder, f.program, options);
  expect_same_evaluation(baseline, ev2, "after rewrite");
  EXPECT_GT(warm.stats().store_hits, 0u);
  EXPECT_EQ(warm.stats().universe_builds, 0u);
}

TEST(StoreSession, CodecRejectedPayloadCountsInvalidAndRebuilds) {
  const Fixture& f = fixture();
  TempStoreDir dir("badpayload");
  auto store = std::make_shared<store::ArtifactStore>(dir.str());

  // A well-formed store entry whose payload the FaultUniverse codec
  // rejects, planted under the exact key the session will probe.
  const netlist::Netlist& nl = f.model.component(CutId::kAlu).netlist;
  store::ArtifactKey key;
  key.kind = "universe";
  key.version = fault::FaultUniverse::kSerialVersion;
  key.content = nl.content_hash();
  ASSERT_TRUE(store->save(key, {0xff, 0xff, 0xff, 0xff}));

  GradingSession session(f.model, {.num_threads = 1, .store = store});
  const fault::FaultUniverse& u = session.universe(CutId::kAlu);
  EXPECT_GT(u.size(), 0u);
  EXPECT_EQ(session.stats().store_invalid, 1u);
  EXPECT_EQ(session.stats().universe_builds, 1u);
  // The rebuild overwrote the bogus entry, so a fresh session hits.
  auto store2 = std::make_shared<store::ArtifactStore>(dir.str());
  GradingSession session2(f.model, {.num_threads = 1, .store = store2});
  const fault::FaultUniverse& u2 = session2.universe(CutId::kAlu);
  EXPECT_EQ(u2.size(), u.size());
  EXPECT_EQ(session2.stats().store_hits, 1u);
  EXPECT_EQ(session2.stats().universe_builds, 0u);
}

TEST(StoreSession, PatternsAccessorCachesAndPersists) {
  const Fixture& f = fixture();
  TempStoreDir dir("patterns");
  const auto build = [](const netlist::Netlist& nl) {
    fault::PatternSet ps(nl);
    Rng rng(3);
    for (int i = 0; i < 10; ++i) ps.add_random(rng);
    return ps;
  };

  auto store = std::make_shared<store::ArtifactStore>(dir.str());
  GradingSession session(f.model, {.num_threads = 1, .store = store});
  const fault::PatternSet& a = session.patterns(CutId::kAlu, "t", build);
  EXPECT_EQ(a.size(), 10u);
  EXPECT_EQ(session.stats().patterns_builds, 1u);
  // Same tag: session-cache hit. New tag: distinct artifact.
  session.patterns(CutId::kAlu, "t", build);
  EXPECT_EQ(session.stats().patterns_hits, 1u);
  session.patterns(CutId::kAlu, "t2", build);
  EXPECT_EQ(session.stats().patterns_builds, 2u);

  auto store2 = std::make_shared<store::ArtifactStore>(dir.str());
  GradingSession warm(f.model, {.num_threads = 1, .store = store2});
  const fault::PatternSet& b = warm.patterns(CutId::kAlu, "t", build);
  ASSERT_EQ(b.block_count(), a.block_count());
  for (std::size_t blk = 0; blk < a.block_count(); ++blk) {
    EXPECT_EQ(b.block(blk), a.block(blk));
  }
  EXPECT_EQ(warm.stats().patterns_builds, 0u);
  EXPECT_EQ(warm.stats().store_hits, 1u);
}

}  // namespace
}  // namespace sbst::core
