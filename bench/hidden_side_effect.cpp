// Experiment E4b — the §3.2 side-effect claims:
//  * "hidden components, especially those used for data pipelining, are
//    sufficiently tested as a side-effect of testing the D-VCs";
//  * A-VCs are "partially tested as a side-effect of testing the D-VCs"
//    and are deliberately not targeted by the periodic test.
#include <cstdio>

#include "common/tablefmt.hpp"
#include "core/evaluate.hpp"

using namespace sbst;
using namespace sbst::core;

namespace {

ProgramEvaluation eval_with(const ProcessorModel& model,
                            TestProgramBuilder& builder,
                            const EvalOptions& opts = {}) {
  const TestProgram program = builder.build();
  return evaluate_program(model, builder, program, opts);
}

}  // namespace

int main() {
  std::puts("==============================================================");
  std::puts(" E4b: hidden-component and A-VC side-effect coverage");
  std::puts("==============================================================");
  ProcessorModel model;

  // Full program vs a single D-VC routine: even one routine's instruction
  // stream exercises the forwarding unit and pipeline registers.
  TestProgramBuilder full;
  full.add_default_routines(model);
  const ProgramEvaluation ev_full = eval_with(model, full);

  TestProgramBuilder only_alu;
  only_alu.add(make_alu_routine({}));
  const ProgramEvaluation ev_alu = eval_with(model, only_alu);

  std::puts("Hidden components: no routine ever targets them, yet --");
  Table t({"HC", "FC from ALU routine alone (%)",
           "FC from full program (%)"});
  for (CutId id : {CutId::kForwarding, CutId::kPipeline}) {
    t.add_row({model.component(id).name,
               Table::num(ev_alu.cut(id).coverage.percent(), 1),
               Table::num(ev_full.cut(id).coverage.percent(), 1)});
  }
  t.print();

  // A-VC ablation: what would including the MAR as an observation point buy
  // (i.e. what the periodic test deliberately leaves on the table).
  std::puts("\nA-VC ablation on the memory controller:");
  EvalOptions with_avc;
  with_avc.observe_address_outputs = true;
  const ProgramEvaluation ev_avc = eval_with(model, full, with_avc);
  Table a({"Observation set", "Memory controller FC (%)",
           "Overall FC (%)"});
  a.add_row({"periodic (MAR excluded)",
             Table::num(ev_full.cut(CutId::kMemCtrl).coverage.percent(), 1),
             Table::num(ev_full.overall_fc(), 1)});
  a.add_row({"with A-VC MAR observed",
             Table::num(ev_avc.cut(CutId::kMemCtrl).coverage.percent(), 1),
             Table::num(ev_avc.overall_fc(), 1)});
  a.print();
  std::puts("-> the A-VC share (MAR) accounts for most of the memory\n"
            "   controller's uncovered faults; testing it would need\n"
            "   distributed memory references that defeat cache locality\n"
            "   (the paper's reason for deferring A-VCs).");

  // Component contribution profile of the full program.
  std::puts("\nMissing-coverage profile (full program):");
  Table m({"Component", "Class", "FC (%)", "Miss. FC (%)"});
  for (const CutCoverage& c : ev_full.cuts) {
    const ComponentInfo& info = model.component(c.id);
    m.add_row({info.name, class_name(info.cls),
               Table::num(c.coverage.percent(), 1),
               Table::num(ev_full.missing_fc(c.id), 2)});
  }
  m.print();
  std::printf("Overall FC: %.2f%% (paper: 95.6%%)\n", ev_full.overall_fc());
  return 0;
}
