// Experiment B1 — the paper's §1 comparison against functional SBST from
// randomized instruction sequences (refs [5]-[7]):
//
//   "Such techniques have low test development cost ... but they also have
//    the drawback of achieving immediate to high fault coverage using a
//    large number of instruction sequences. Thus, the derived test program
//    has large size and requires excessive test execution time. ...
//    Therefore, these techniques are not suitable to on-line periodic
//    testing."
//
// This bench generates random-instruction programs of growing size and
// compares size / cycles / stalls / per-component coverage against the
// structural SBST program.
#include <cstdio>

#include "common/tablefmt.hpp"
#include "core/baseline.hpp"
#include "core/evaluate.hpp"

using namespace sbst;
using namespace sbst::core;

namespace {

struct Run {
  std::string label;
  std::size_t words;
  sim::ExecStats stats;
  double fc_alu, fc_shifter, fc_mul, fc_div, fc_rf, fc_ctrl;
};

Run grade_program(const ProcessorModel& model, const std::string& label,
                  TestProgramBuilder& builder, const TestProgram& program,
                  std::size_t regfile_cycle_cap) {
  TraceCollector trace(model);
  trace.set_regfile_cycle_cap(regfile_cycle_cap);
  // Attribute register-file stimulus to the routine that targets it, as
  // the evaluator does; random programs have no such section.
  for (std::size_t i = 0; i < program.routines.size(); ++i) {
    if (program.routines[i].target == CutId::kRegisterFile) {
      trace.restrict_regfile(program.sections[i].begin_addr,
                             program.sections[i].end_addr);
    }
  }
  sim::Cpu cpu;
  cpu.reset();
  cpu.load(program.image);
  cpu.set_hooks(&trace);
  Run run{label, program.image.size_words(), cpu.run(program.entry),
          0,     0,
          0,     0,
          0,     0};
  (void)builder;

  auto comb = [&](CutId id, const fault::PatternSet& ps) {
    const ComponentInfo& info = model.component(id);
    fault::FaultUniverse u(info.netlist);
    EvalOptions opts;
    return fault::simulate_comb(info.netlist, u.collapsed(), ps,
                                observation_points(info, opts))
        .percent();
  };
  auto seq = [&](CutId id, const fault::SeqStimulus& st) {
    const ComponentInfo& info = model.component(id);
    fault::FaultUniverse u(info.netlist);
    EvalOptions opts;
    return fault::simulate_seq(info.netlist, u.collapsed(), st,
                               observation_points(info, opts))
        .percent();
  };
  run.fc_alu = comb(CutId::kAlu, trace.alu_patterns());
  run.fc_shifter = comb(CutId::kShifter, trace.shifter_patterns());
  run.fc_mul = comb(CutId::kMultiplier, trace.multiplier_patterns());
  run.fc_ctrl = comb(CutId::kControl, trace.control_patterns());
  run.fc_div = seq(CutId::kDivider, trace.divider_stimulus());
  run.fc_rf = seq(CutId::kRegisterFile, trace.regfile_stimulus());
  return run;
}

}  // namespace

int main() {
  std::puts("==============================================================");
  std::puts(" B1: structural SBST vs random-instruction functional SBST");
  std::puts("==============================================================");
  ProcessorModel model;
  std::vector<Run> runs;

  // Structural program (the paper's approach).
  {
    TestProgramBuilder builder;
    builder.add_default_routines(model);
    const TestProgram program = builder.build();
    runs.push_back(
        grade_program(model, "structural SBST", builder, program, 2000));
  }
  // Random-instruction baselines of growing size. Register-file grading is
  // capped at the structural program's stimulus length so the comparison
  // is per-cycle fair (noted below).
  for (std::size_t n : {1024u, 4096u, 12288u}) {
    RandomProgramOptions opts;
    opts.instruction_count = n;
    opts.seed = 42 + n;
    TestProgramBuilder builder;
    builder.add(make_random_instruction_routine(opts));
    const TestProgram program = builder.build();
    runs.push_back(grade_program(model,
                                 "random, " + std::to_string(n) + " instr",
                                 builder, program, 2000));
  }

  Table t({"Program", "Words", "Cycles", "Stalls", "ALU FC%", "Shift FC%",
           "Mul FC%", "Div FC%", "RegFile FC%*", "Control FC%"});
  for (const Run& r : runs) {
    t.add_row({r.label, Table::num(static_cast<std::uint64_t>(r.words)),
               Table::num(r.stats.total_cycles()),
               Table::num(r.stats.pipeline_stall_cycles),
               Table::num(r.fc_alu, 1), Table::num(r.fc_shifter, 1),
               Table::num(r.fc_mul, 1), Table::num(r.fc_div, 1),
               Table::num(r.fc_rf, 1), Table::num(r.fc_ctrl, 1)});
  }
  t.print();
  std::puts("* register-file stimulus: the structural program's dedicated "
            "~900-cycle routine vs the random programs' first 2,000 cycles "
            "of traffic (more cycles than the structural routine gets).");
  std::puts("\nPaper claims checked:");
  std::puts(" - random programs are an order of magnitude larger and slower"
            " for less coverage on every regular component;");
  std::puts(" - they also carry pipeline stalls (unscheduled load-use"
            " hazards), violating the s2 requirements;");
  std::puts(" - the structural program dominates everywhere except the"
            " control decoder, where random opcode mixes are competitive --"
            " which is why FT-style functional tests remain the right tool"
            " for the PVC.");
  return 0;
}
