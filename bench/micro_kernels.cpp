// Experiment M1 — infrastructure micro-benchmarks (google-benchmark):
// packed vs serial fault simulation, PODEM throughput, CPU simulation rate,
// netlist evaluation, assembler speed. Also the DESIGN.md ablation for
// decision 1 (64-lane packed logic vs serial reference).
#include <benchmark/benchmark.h>

#include "atpg/podem.hpp"
#include "common/rng.hpp"
#include "core/codegen.hpp"
#include "core/program.hpp"
#include "fault/sim.hpp"
#include "isa/assembler.hpp"
#include "rtlgen/alu.hpp"
#include "rtlgen/multiplier.hpp"
#include "sim/cpu.hpp"
#include "sim/exec.hpp"

using namespace sbst;

namespace {

// Minimal trace sink for run_sink<TraceSink>: counts every hook event so
// nothing is optimised away, does no per-event allocation.
struct CountingTrace {
  std::uint64_t events = 0;
  void on_instruction_start(std::uint32_t) { ++events; }
  void on_alu(rtlgen::AluOp, std::uint32_t, std::uint32_t) { ++events; }
  void on_shift(rtlgen::ShiftOp, std::uint32_t, std::uint32_t) { ++events; }
  void on_mult(std::uint32_t, std::uint32_t) { ++events; }
  void on_div(std::uint32_t, std::uint32_t) { ++events; }
  void on_regfile(std::uint8_t, std::uint32_t, bool, std::uint8_t,
                  std::uint8_t) {
    ++events;
  }
  void on_mem(std::uint32_t, std::uint32_t, rtlgen::MemSize, bool, bool,
              std::uint32_t) {
    ++events;
  }
  void on_control(std::uint8_t, std::uint8_t) { ++events; }
  void on_forward(std::uint8_t, std::uint8_t, std::uint8_t, bool,
                  std::uint8_t, bool) {
    ++events;
  }
  void on_branch_flush() { ++events; }
  void on_branch_target(std::uint32_t, std::uint32_t) { ++events; }
};

const netlist::Netlist& alu16() {
  static const netlist::Netlist nl = rtlgen::build_alu({.width = 16});
  return nl;
}

fault::PatternSet random_patterns(const netlist::Netlist& nl, std::size_t n) {
  Rng rng(5);
  fault::PatternSet ps(nl);
  for (std::size_t i = 0; i < n; ++i) ps.add_random(rng);
  return ps;
}

void BM_NetlistEval(benchmark::State& state) {
  const netlist::Netlist nl =
      rtlgen::build_multiplier({.width = static_cast<unsigned>(state.range(0))});
  netlist::Evaluator ev(nl);
  Rng rng(1);
  for (auto _ : state) {
    ev.set_bus(nl.input_port("a"), rng.next32());
    ev.set_bus(nl.input_port("b"), rng.next32());
    ev.eval();
    benchmark::DoNotOptimize(ev.bus_value(nl.output_port("product")));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(nl.size()));
}
BENCHMARK(BM_NetlistEval)->Arg(8)->Arg(16)->Arg(32);

void BM_FaultSimPpsfp(benchmark::State& state) {
  const netlist::Netlist& nl = alu16();
  const fault::FaultUniverse u(nl);
  const fault::PatternSet ps =
      random_patterns(nl, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fault::simulate_comb(nl, u.collapsed(), ps).detected);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(u.size() * ps.size()));
}
BENCHMARK(BM_FaultSimPpsfp)->Arg(64)->Arg(256);

void BM_FaultSimSerialReference(benchmark::State& state) {
  // Ablation (DESIGN.md decision 1): the unpacked reference simulator.
  const netlist::Netlist& nl = alu16();
  const fault::FaultUniverse u(nl);
  const fault::PatternSet ps =
      random_patterns(nl, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fault::simulate_serial(nl, u.collapsed(), ps).detected);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(u.size() * ps.size()));
}
BENCHMARK(BM_FaultSimSerialReference)->Arg(64);

void BM_PodemPerFault(benchmark::State& state) {
  const netlist::Netlist& nl = alu16();
  const fault::FaultUniverse u(nl);
  atpg::Podem podem(nl);
  Rng rng(9);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        podem.generate(u.collapsed()[i % u.size()], rng).status);
    ++i;
  }
}
BENCHMARK(BM_PodemPerFault);

core::TestProgram alu_program() {
  core::TestProgramBuilder builder;
  return builder.build_standalone(core::make_alu_routine({}));
}

void BM_CpuSimulation(benchmark::State& state) {
  // Instruction throughput of the decoded micro-op core (the default run()
  // path) on the real SBST ALU routine.
  const core::TestProgram p = alu_program();
  sim::Cpu cpu;
  cpu.load(p.image);
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    cpu.reset();
    const sim::ExecStats s = cpu.run(p.entry);
    instructions += s.instructions;
    benchmark::DoNotOptimize(s.cpu_cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instructions));
}
BENCHMARK(BM_CpuSimulation);

void BM_CpuSimulationInterpreter(benchmark::State& state) {
  // The pre-decode switch-on-fields interpreter, kept as the golden
  // reference; the decoded core is measured against this baseline.
  const core::TestProgram p = alu_program();
  sim::Cpu cpu;
  cpu.load(p.image);
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    cpu.reset();
    const sim::ExecStats s = cpu.run_interpreter(p.entry);
    instructions += s.instructions;
    benchmark::DoNotOptimize(s.cpu_cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instructions));
}
BENCHMARK(BM_CpuSimulationInterpreter);

void BM_CpuSimulationTraced(benchmark::State& state) {
  // Decoded core with a full trace sink attached (the evaluator's
  // configuration): every on_* hook fires through the sink policy.
  const core::TestProgram p = alu_program();
  sim::Cpu cpu;
  cpu.load(p.image);
  CountingTrace trace;
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    cpu.reset();
    sim::TraceSink<CountingTrace> sink{&trace};
    const sim::ExecStats s = cpu.run_sink(p.entry, sink);
    instructions += s.instructions;
    benchmark::DoNotOptimize(trace.events);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instructions));
}
BENCHMARK(BM_CpuSimulationTraced);

void BM_Assembler(benchmark::State& state) {
  const std::string source =
      core::make_alu_routine({}).assembly + core::misr_subroutines() +
      "signatures:\n  .word 0,0,0,0,0,0,0,0\n";
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::assemble(source).words.size());
  }
}
BENCHMARK(BM_Assembler);

}  // namespace

BENCHMARK_MAIN();
