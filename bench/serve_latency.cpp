// `sbst serve` request-latency benchmark: percentile latencies, overload
// shedding, and write-ahead-journal overhead for the hardened daemon.
//
// Three measurements, all driven through run_serve() with in-memory
// streams (the same harness the serve tests use, so the numbers describe
// the daemon loop itself, not pipe or process overhead):
//
//   shed     a burst of campaign requests against the concurrent loop
//            (--serve-threads 2) at queue depths 1 / 4 / 16: how many
//            complete, how many shed with `err overloaded`, and the
//            p50/p99 execution wall of the completed ones
//   journal  the same serial request sequence with and without --journal,
//            isolating the cost of the two fwrite+fflush records that
//            bracket every work request
//
// Per-request walls come from the daemon's own `# serve: <verb> <wall> s`
// stderr lines — execution time, not queue wait, which is what the journal
// and deadline machinery act on.
//
// Campaigns run with a reduced fault sample (--max-faults analogue) so the
// full burst matrix finishes in seconds; the ratios, not the absolute
// walls, are the product here.
//
// Usage: serve_latency   Emits a table to stdout and BENCH_serve.json.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/tablefmt.hpp"
#include "core/component.hpp"
#include "serve/serve.hpp"

using namespace sbst;
using namespace sbst::common;

namespace {

struct ServeRun {
  int status = 0;
  std::string out;
  std::string err;
};

ServeRun run_script(const core::ProcessorModel& model, const std::string& script,
                    const serve::ServeOptions& options) {
  std::FILE* in = fmemopen(const_cast<char*>(script.data()), script.size(), "r");
  char* out_buf = nullptr;
  std::size_t out_len = 0;
  std::FILE* out = open_memstream(&out_buf, &out_len);
  char* err_buf = nullptr;
  std::size_t err_len = 0;
  std::FILE* err = open_memstream(&err_buf, &err_len);

  ServeRun r;
  r.status = serve::run_serve(model, options, nullptr, in, out, err);
  std::fclose(in);
  std::fclose(out);
  std::fclose(err);
  r.out.assign(out_buf, out_len);
  r.err.assign(err_buf, err_len);
  std::free(out_buf);
  std::free(err_buf);
  return r;
}

// Execution walls from the daemon's own `# serve: <verb> <wall> s` lines.
std::vector<double> request_walls(const std::string& err) {
  std::vector<double> walls;
  std::size_t pos = 0;
  while ((pos = err.find("# serve: ", pos)) != std::string::npos) {
    const std::size_t eol = err.find('\n', pos);
    const std::string line = err.substr(pos, eol - pos);
    double w = 0;
    char verb[32];
    if (std::sscanf(line.c_str(), "# serve: %31s %lf s", verb, &w) == 2) {
      walls.push_back(w);
    }
    pos = eol == std::string::npos ? err.size() : eol + 1;
  }
  return walls;
}

std::size_t count_of(const std::string& hay, const std::string& needle) {
  std::size_t n = 0, pos = 0;
  while ((pos = hay.find(needle, pos)) != std::string::npos) {
    ++n;
    pos += needle.size();
  }
  return n;
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const double idx = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

struct ShedPoint {
  std::size_t queue_depth = 0;
  std::size_t requests = 0;
  std::size_t shed = 0;
  std::size_t completed = 0;
  double p50 = 0, p99 = 0;
};

struct JournalPoint {
  std::string key;
  std::size_t requests = 0;
  double p50 = 0, p99 = 0, mean = 0;
};

constexpr std::size_t kBurst = 24;
constexpr std::size_t kSerial = 8;

std::string burst_script(std::size_t n) {
  static const char* kCuts[] = {"alu", "shifter", "mul"};
  std::string s;
  for (std::size_t i = 0; i < n; ++i) {
    s += "campaign ";
    s += kCuts[i % 3];
    s += '\n';
  }
  s += "quit\n";
  return s;
}

}  // namespace

int main() {
  core::ProcessorModel model;
  serve::ServeOptions base;
  base.sim.num_threads = 2;
  base.max_faults = 8;  // sampled campaigns: burst matrix in seconds

  // --- shedding vs queue depth (concurrent loop, 2 workers) ---------------
  std::vector<ShedPoint> shed_points;
  for (std::size_t depth : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    serve::ServeOptions options = base;
    options.serve_threads = 2;
    options.queue_depth = depth;
    const ServeRun r = run_script(model, burst_script(kBurst), options);
    if (r.status != 0) {
      std::fprintf(stderr, "FAIL: burst at queue depth %zu exited %d\n", depth,
                   r.status);
      return 1;
    }
    ShedPoint p;
    p.queue_depth = depth;
    p.requests = kBurst;
    p.shed = count_of(r.out, "err overloaded");
    p.completed = count_of(r.out, "ok campaign");
    if (p.shed + p.completed != kBurst) {
      std::fprintf(stderr, "FAIL: burst accounting %zu shed + %zu ok != %zu\n",
                   p.shed, p.completed, kBurst);
      return 1;
    }
    const std::vector<double> walls = request_walls(r.err);
    p.p50 = percentile(walls, 0.50);
    p.p99 = percentile(walls, 0.99);
    shed_points.push_back(p);
  }

  // --- journal on/off overhead (serial loop, identical request stream) ----
  const std::string wal = "BENCH_serve.wal";
  std::vector<JournalPoint> journal_points;
  for (const bool journaled : {false, true}) {
    serve::ServeOptions options = base;
    if (journaled) {
      std::filesystem::remove(wal);
      options.journal_path = wal;
    }
    const ServeRun r = run_script(model, burst_script(kSerial), options);
    if (r.status != 0) {
      std::fprintf(stderr, "FAIL: serial %s run exited %d\n",
                   journaled ? "journaled" : "unjournaled", r.status);
      return 1;
    }
    const std::vector<double> walls = request_walls(r.err);
    JournalPoint p;
    p.key = journaled ? "on" : "off";
    p.requests = walls.size();
    p.p50 = percentile(walls, 0.50);
    p.p99 = percentile(walls, 0.99);
    for (double w : walls) p.mean += w;
    if (!walls.empty()) p.mean /= static_cast<double>(walls.size());
    journal_points.push_back(p);
  }
  std::filesystem::remove(wal);
  const double journal_overhead =
      journal_points[1].mean - journal_points[0].mean;

  Table shed_table({"Queue depth", "Requests", "Completed", "Shed",
                    "Shed rate", "p50 (s)", "p99 (s)"});
  for (const ShedPoint& p : shed_points) {
    shed_table.add_row(
        {Table::num(static_cast<std::uint64_t>(p.queue_depth)),
         Table::num(static_cast<std::uint64_t>(p.requests)),
         Table::num(static_cast<std::uint64_t>(p.completed)),
         Table::num(static_cast<std::uint64_t>(p.shed)),
         Table::num(static_cast<double>(p.shed) / p.requests, 3),
         Table::num(p.p50, 4), Table::num(p.p99, 4)});
  }
  shed_table.print();

  Table journal_table({"Journal", "Requests", "p50 (s)", "p99 (s)",
                       "Mean (s)"});
  for (const JournalPoint& p : journal_points) {
    journal_table.add_row({p.key,
                           Table::num(static_cast<std::uint64_t>(p.requests)),
                           Table::num(p.p50, 4), Table::num(p.p99, 4),
                           Table::num(p.mean, 4)});
  }
  journal_table.print();
  std::printf("journal overhead: %+.4f s mean per request\n", journal_overhead);

  std::FILE* json = std::fopen("BENCH_serve.json", "w");
  if (!json) {
    std::perror("BENCH_serve.json");
    return 1;
  }
  std::fprintf(json, "{\n  \"shed\": [\n");
  bool first = true;
  for (const ShedPoint& p : shed_points) {
    std::fprintf(json,
                 "%s    {\"queue_depth\": %zu, \"requests\": %zu, "
                 "\"completed\": %zu, \"shed\": %zu, \"shed_rate\": %.4f, "
                 "\"p50_s\": %.6f, \"p99_s\": %.6f}",
                 first ? "" : ",\n", p.queue_depth, p.requests, p.completed,
                 p.shed, static_cast<double>(p.shed) / p.requests, p.p50,
                 p.p99);
    first = false;
  }
  std::fprintf(json, "\n  ],\n  \"journal\": [\n");
  first = true;
  for (const JournalPoint& p : journal_points) {
    std::fprintf(json,
                 "%s    {\"journal\": \"%s\", \"requests\": %zu, "
                 "\"p50_s\": %.6f, \"p99_s\": %.6f, \"mean_s\": %.6f}",
                 first ? "" : ",\n", p.key.c_str(), p.requests, p.p50, p.p99,
                 p.mean);
    first = false;
  }
  std::fprintf(json,
               "\n  ],\n  \"journal_overhead_mean_s\": %.6f\n}\n",
               journal_overhead);
  std::fclose(json);
  std::puts("wrote BENCH_serve.json");
  return 0;
}
