// Experiment E2 — the §3.3 TPG-strategy applicability analysis:
//   * deterministic ATPG: few patterns, needs gate-level model
//   * pseudorandom: code-cheap but needs many patterns (FC vs N curves;
//     random-pattern-resistant structures plateau)
//   * regular deterministic: constant/linear sets, implementation
//     independent, the workhorse for regular D-VCs
// Compared on the ALU and the shifter, with routine-level costs.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "atpg/testgen.hpp"
#include "store/artifact_store.hpp"
#include "common/tablefmt.hpp"
#include "conform/excite.hpp"
#include "conform/gen.hpp"
#include "core/codegen.hpp"
#include "core/program.hpp"
#include "core/session.hpp"
#include "core/tpg.hpp"
#include "fault/sim_parallel.hpp"
#include "sim/cpu.hpp"

using namespace sbst;
using namespace sbst::core;

namespace {

struct CutUnderStudy {
  const char* name;
  CutId id;
  const netlist::Netlist* nl;
  fault::ObserveSet observe;
};

// Grades on the session pool with the session's cached compiled netlist;
// coverage percentages are identical to the serial reference grading.
double grade(GradingSession& session, const CutUnderStudy& cut,
             const fault::PatternSet& ps,
             const std::vector<fault::Fault>& faults) {
  fault::SimOptions sim;
  sim.pool = &session.pool();
  sim.compiled = &session.compiled(cut.id);
  sim.lanes = session.lanes();
  sim.netlist_opt = session.options().netlist_opt;
  return fault::simulate_comb_parallel(*cut.nl, faults, ps, cut.observe, sim)
      .percent();
}

}  // namespace

int main() {
  std::puts("==============================================================");
  std::puts(" E2: TPG strategy applicability (paper s3.3)");
  std::puts("==============================================================");
  ProcessorModel model;
  // Pin the grading configuration explicitly: lane width and compile-opt
  // setting key the session's compiled-netlist cache, so relying on env
  // defaults would make bench numbers (and cache keys) vary run to run.
  // SBST_STORE is honored like the CLI honors it: a second bench run
  // against the same store reloads the ATPG pattern sets (and the other
  // persisted artifacts) instead of re-deriving them.
  SessionOptions sopts{.lanes = 1, .netlist_opt = 0};
  if (const char* spec = std::getenv("SBST_STORE")) {
    sopts.store = std::make_shared<store::ArtifactStore>(
        store::ArtifactStore::resolve_dir(spec));
  }
  GradingSession session(model, sopts);
  const auto& alu_info = model.component(CutId::kAlu);
  const auto& sh_info = model.component(CutId::kShifter);

  fault::ObserveSet alu_obs = alu_info.netlist.output_port("result");
  alu_obs.push_back(alu_info.netlist.output_port("zero")[0]);
  const CutUnderStudy cuts[] = {
      {"ALU", CutId::kAlu, &alu_info.netlist, alu_obs},
      {"Shifter", CutId::kShifter, &sh_info.netlist,
       sh_info.netlist.output_nets()},
  };

  for (const CutUnderStudy& cut : cuts) {
    const fault::FaultUniverse& universe = session.universe(cut.id);
    std::printf("\n--- %s: %zu collapsed faults (%zu uncollapsed) ---\n",
                cut.name, universe.size(), universe.uncollapsed_count());

    // Pseudorandom FC-vs-N curve.
    Table r({"Pseudorandom N", "FC (%)"});
    for (std::size_t n : {16u, 32u, 64u, 128u, 256u, 512u, 1024u, 4096u}) {
      const fault::PatternSet ps = atpg::generate_random_tests(*cut.nl, n, 7);
      r.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 Table::num(grade(session, cut, ps, universe.collapsed()),
                            2)});
    }
    r.print();

    // Deterministic ATPG (unconstrained here; the shifter routine uses the
    // per-op constrained variant). Generated through the session's named
    // pattern-set slot: the tag names the generator configuration, so with
    // a persistent store the PODEM run happens once and later bench
    // invocations reload the patterns instead of re-deriving them.
    const fault::PatternSet& det = session.patterns(
        cut.id, "atpg-podem-bt200000",
        [&](const netlist::Netlist& nl) {
          atpg::TestGenOptions tg;
          tg.random_warmup = 0;
          tg.podem.backtrack_limit = 200000;
          tg.compiled = &session.compiled(cut.id);
          return atpg::generate_atpg_tests(nl, universe.collapsed(), {}, tg,
                                           cut.observe)
              .patterns;
        });
    std::printf("deterministic ATPG: %zu patterns -> FC %.2f%%\n",
                det.size(),
                grade(session, cut, det, universe.collapsed()));

    // Regular deterministic.
    fault::PatternSet regular(*cut.nl);
    if (cut.nl == &alu_info.netlist) {
      regular = alu_pattern_set(*cut.nl, regular_alu_tests(32));
    } else {
      regular = shifter_pattern_set(*cut.nl, regular_shifter_tests(32));
    }
    std::printf("regular deterministic: %zu patterns -> FC %.2f%%\n",
                regular.size(),
                grade(session, cut, regular, universe.collapsed()));
  }

  // Routine-level costs on the ALU: same strategy comparison, but measured
  // as executable self-test routines.
  std::puts("\nRoutine-level comparison on the ALU (executable code):");
  TestProgramBuilder builder;
  struct Row {
    const char* label;
    Routine routine;
  };
  const std::vector<AluOpnd> regs = regular_alu_tests(32);
  const std::vector<AluOpnd> first16(regs.begin(), regs.begin() + 16);
  Row rows[] = {
      {"RegD (L + I) full routine", make_alu_routine({})},
      {"PR (L), 1024 iterations",
       make_fig3_lfsr_routine(rtlgen::AluOp::kAdd, 0x1357u, 0x2468u, 1024,
                              {})},
      {"AtpgD (I), 16 immediates", make_fig1_immediate_routine(first16, {})},
  };
  Table t({"Strategy/routine", "Words", "CPU cycles", "Data refs"});
  for (const Row& row : rows) {
    const TestProgram p = builder.build_standalone(row.routine);
    sim::Cpu cpu;
    cpu.reset();
    cpu.load(p.image);
    const sim::ExecStats s = cpu.run(p.entry);
    t.add_row({row.label,
               Table::num(static_cast<std::uint64_t>(
                   p.sections[0].size_words())),
               Table::num(s.cpu_cycles), Table::num(s.data_references())});
  }
  t.print();

  // A fourth source: the randomized conformance corpus replayed with the
  // coverage tracer. Single-instruction cases with random pre-states are an
  // instruction-level pseudorandom TPG — notably for the hidden components
  // (forwarding logic) no dedicated routine excites directly.
  std::puts("\nCorpus-derived excitation (conformance pre-states as TPG):");
  const conform::CaseGen corpus_gen({.seed = 11, .count = 440});
  const conform::Corpus corpus = corpus_gen.generate();
  const conform::CorpusExcitation excite(model, corpus);
  const CutId corpus_cuts[] = {CutId::kForwarding, CutId::kBranchAdder};
  Table ct({"Component", "Class", "Patterns", "FC (%)"});
  for (const CutId id : corpus_cuts) {
    const auto& info = model.component(id);
    const fault::FaultUniverse& universe = session.universe(id);
    const fault::PatternSet& ps = excite.patterns(id);
    fault::SimOptions sim;
    sim.pool = &session.pool();
    sim.compiled = &session.compiled(id);
    sim.lanes = session.lanes();
    sim.netlist_opt = session.options().netlist_opt;
    const double fc =
        fault::simulate_comb_parallel(
            info.netlist, universe.collapsed(), ps,
            session.observe(id, ObserveMode::kArchitectural), sim)
            .percent();
    ct.add_row({info.name, class_name(info.cls),
                Table::num(static_cast<std::uint64_t>(ps.size())),
                Table::num(fc, 2)});
  }
  ct.print();
  std::printf("corpus: %zu cases, %zu classes (seed 11)\n",
              corpus.cases.size(),
              conform::corpus_class_names(corpus).size());

  std::puts("\nConclusions checked (paper s3.3):");
  std::puts(" - ATPG yields the smallest pattern counts but needs the");
  std::puts("   gate-level model and per-instruction constraints.");
  std::puts(" - Pseudorandom needs orders of magnitude more patterns to");
  std::puts("   approach deterministic coverage (execution time grows");
  std::puts("   linearly with N).");
  std::puts(" - Regular deterministic reaches near-ATPG coverage from a");
  std::puts("   constant/linear, implementation-independent set -- the");
  std::puts("   right choice for the regular D-VCs that dominate area.");
  return 0;
}
