// Fault-simulation throughput: evaluation-engine x scheduling sweep.
//
// Grades the collapsed fault universe of a parallel multiplier (the largest
// combinational CUT family in the model) against random patterns with every
// combination of evaluation engine (reference / compiled / event, see
// fault/engine.hpp) and scheduling (single-thread PPSFP, threaded block,
// threaded lane-packed), reporting faults x patterns / second. The serial
// oracle is timed on a reduced pattern count (its throughput is per-pattern,
// so the normalized number is comparable). Every configuration must produce
// identical detection flags; any mismatch is a hard failure.
//
// Also reports the average active-cone size per fault for the event engine —
// the number of gates actually re-evaluated per fault injection, the quantity
// the event-driven scheduler exists to minimize.
//
// Usage: faultsim_throughput [width] [patterns] [threads]
// Emits a table to stdout and machine-readable BENCH_faultsim.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/tablefmt.hpp"
#include "fault/engine.hpp"
#include "fault/fault.hpp"
#include "fault/sim.hpp"
#include "fault/sim_parallel.hpp"
#include "netlist/compiled.hpp"
#include "rtlgen/multiplier.hpp"

using namespace sbst;
using fault::CoverageResult;
using fault::Engine;
using fault::PatternSet;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct BenchRow {
  std::string key;     // JSON key, e.g. "comb_event"
  std::string label;   // table label
  std::string engine;  // engine name
  std::size_t patterns = 0;
  double seconds = 0;
  double throughput = 0;  // faults x patterns / second
  std::size_t detected = 0;
  std::vector<std::uint8_t> flags;
};

template <typename Fn>
BenchRow time_config(std::string key, std::string label, Engine engine,
                     std::size_t n_faults, std::size_t n_patterns,
                     const Fn& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  CoverageResult res = fn();
  BenchRow row;
  row.key = std::move(key);
  row.label = std::move(label);
  row.engine = fault::engine_name(engine);
  row.patterns = n_patterns;
  row.seconds = seconds_since(t0);
  row.throughput = static_cast<double>(n_faults) *
                   static_cast<double>(n_patterns) / row.seconds;
  row.detected = res.detected;
  row.flags = std::move(res.detected_flags);
  return row;
}

/// Average number of gates the event engine re-evaluates per fault injection
/// (one pattern block applied, every fault injected/evaluated/reverted once).
double avg_active_cone(const netlist::Netlist& nl,
                       const std::vector<fault::Fault>& faults,
                       const PatternSet& patterns) {
  const netlist::CompiledNetlist cn(nl);
  netlist::CompiledEvaluator ev(cn, /*event_driven=*/true);
  const auto& inputs = nl.inputs();
  const auto& words = patterns.block(0);
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    ev.set_input_word(inputs[k], words[k]);
  }
  ev.eval();
  ev.reset_stats();
  for (const fault::Fault& f : faults) {
    ev.inject(f.site, f.stuck_value, ~std::uint64_t{0});
    ev.eval();
    ev.clear_faults();
  }
  return faults.empty() ? 0.0
                        : static_cast<double>(ev.gate_evals()) /
                              static_cast<double>(faults.size());
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned width = argc > 1 ? std::atoi(argv[1]) : 24;
  const std::size_t n_patterns =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 256;
  const unsigned threads =
      fault::resolve_thread_count(argc > 3 ? std::atoi(argv[3]) : 0);

  const netlist::Netlist nl = rtlgen::build_multiplier({.width = width});
  const fault::FaultUniverse universe(nl);
  const auto& faults = universe.collapsed();

  Rng rng(0xbe7c);
  PatternSet patterns(nl);
  for (std::size_t i = 0; i < n_patterns; ++i) patterns.add_random(rng);
  // The serial oracle runs one full-netlist eval per fault per pattern; cap
  // its patterns so the reference row finishes in seconds.
  const std::size_t serial_patterns = std::min<std::size_t>(n_patterns, 64);
  PatternSet serial_ps(nl);
  {
    Rng srng(0xbe7c);
    for (std::size_t i = 0; i < serial_patterns; ++i) serial_ps.add_random(srng);
  }

  const double cone = avg_active_cone(nl, faults, patterns);

  std::printf("multiplier %ux%u: %zu gates, %zu collapsed faults, "
              "%zu patterns, %u threads, avg event cone %.1f gates\n",
              width, width, nl.logic_gate_count(), faults.size(), n_patterns,
              threads, cone);

  const Engine engines[] = {Engine::kReference, Engine::kCompiled,
                            Engine::kEvent};
  std::vector<BenchRow> rows;

  // Serial oracle, reference engine only (anchor row; reduced patterns).
  rows.push_back(time_config(
      "serial_reference", "serial", Engine::kReference, faults.size(),
      serial_patterns, [&] {
        return fault::simulate_serial(nl, faults, serial_ps, {},
                                      Engine::kReference);
      }));

  for (Engine e : engines) {
    const std::string en = fault::engine_name(e);
    rows.push_back(time_config(
        "comb_" + en, "comb x1", e, faults.size(), n_patterns,
        [&] { return fault::simulate_comb(nl, faults, patterns, {}, e); }));
    for (bool lanes : {false, true}) {
      fault::SimOptions opt;
      opt.num_threads = threads;
      opt.lane_parallel = lanes;
      opt.engine = e;
      const char* sched = lanes ? "lane" : "block";
      rows.push_back(time_config(
          std::string(sched) + "_" + en,
          std::string("threaded ") + sched, e, faults.size(), n_patterns,
          [&] {
            return fault::simulate_comb_parallel(nl, faults, patterns, {},
                                                 opt);
          }));
    }
  }

  Table t({"Config", "Engine", "Patterns", "Seconds", "Faults x pat / s",
           "Detected"});
  for (const BenchRow& r : rows) {
    t.add_row({r.label, r.engine,
               Table::num(static_cast<std::uint64_t>(r.patterns)),
               Table::num(r.seconds, 3), Table::num(r.throughput, 0),
               Table::num(static_cast<std::uint64_t>(r.detected))});
  }
  t.print();

  // Every full-pattern configuration must agree flag-for-flag (the serial
  // row uses fewer patterns and is excluded).
  for (std::size_t i = 2; i < rows.size(); ++i) {
    if (rows[i].flags != rows[1].flags) {
      std::fprintf(stderr, "FAIL: %s flags differ from %s\n",
                   rows[i].key.c_str(), rows[1].key.c_str());
      return 1;
    }
  }

  const double ref_comb_s = rows[1].seconds;  // comb_reference
  double event_comb_s = 0;
  for (const BenchRow& r : rows) {
    if (r.key == "comb_event") event_comb_s = r.seconds;
  }
  const double speedup_event = ref_comb_s / event_comb_s;
  std::printf("single-thread event vs reference: %.2fx\n", speedup_event);

  std::FILE* json = std::fopen("BENCH_faultsim.json", "w");
  if (!json) {
    std::perror("BENCH_faultsim.json");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"netlist\": \"multiplier\",\n"
               "  \"width\": %u,\n"
               "  \"gates\": %zu,\n"
               "  \"faults\": %zu,\n"
               "  \"patterns\": %zu,\n"
               "  \"threads\": %u,\n"
               "  \"avg_active_cone\": %.2f,\n"
               "  \"engines\": {\n",
               width, nl.logic_gate_count(), faults.size(), n_patterns,
               threads, cone);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(json,
                 "    \"%s\": {\"engine\": \"%s\", \"patterns\": %zu, "
                 "\"seconds\": %.6f, \"throughput\": %.0f, "
                 "\"detected\": %zu}%s\n",
                 rows[i].key.c_str(), rows[i].engine.c_str(),
                 rows[i].patterns, rows[i].seconds, rows[i].throughput,
                 rows[i].detected, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json,
               "  },\n"
               "  \"speedup_event_vs_reference\": %.3f\n"
               "}\n",
               speedup_event);
  std::fclose(json);
  std::puts("wrote BENCH_faultsim.json");
  return 0;
}
