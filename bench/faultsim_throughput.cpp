// Fault-simulation throughput: serial vs PPSFP vs lane-parallel vs threaded.
//
// Grades the collapsed fault universe of a parallel multiplier (the largest
// combinational CUT family in the model) against random patterns with every
// combinational engine and reports faults x patterns / second, plus the
// speedup of the threaded engines over single-threaded simulate_comb. The
// serial oracle is timed on a reduced pattern count (its throughput is
// per-pattern, so the normalized number is comparable).
//
// Usage: faultsim_throughput [width] [patterns] [threads]
// Emits a table to stdout and machine-readable BENCH_faultsim.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/tablefmt.hpp"
#include "fault/fault.hpp"
#include "fault/sim.hpp"
#include "fault/sim_parallel.hpp"
#include "rtlgen/multiplier.hpp"

using namespace sbst;
using fault::CoverageResult;
using fault::PatternSet;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct EngineRow {
  std::string name;
  std::size_t patterns = 0;
  double seconds = 0;
  double throughput = 0;  // faults x patterns / second
  std::size_t detected = 0;
};

template <typename Fn>
EngineRow time_engine(const std::string& name, std::size_t n_faults,
                      std::size_t n_patterns, const Fn& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  const CoverageResult res = fn();
  EngineRow row;
  row.name = name;
  row.patterns = n_patterns;
  row.seconds = seconds_since(t0);
  row.throughput = static_cast<double>(n_faults) *
                   static_cast<double>(n_patterns) / row.seconds;
  row.detected = res.detected;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned width = argc > 1 ? std::atoi(argv[1]) : 24;
  const std::size_t n_patterns =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 256;
  const unsigned threads =
      fault::resolve_thread_count(argc > 3 ? std::atoi(argv[3]) : 0);

  const netlist::Netlist nl = rtlgen::build_multiplier({.width = width});
  const fault::FaultUniverse universe(nl);
  const auto& faults = universe.collapsed();

  Rng rng(0xbe7c);
  PatternSet patterns(nl);
  for (std::size_t i = 0; i < n_patterns; ++i) patterns.add_random(rng);
  // The serial oracle runs one full-netlist eval per fault per pattern; cap
  // its patterns so the reference row finishes in seconds.
  const std::size_t serial_patterns = std::min<std::size_t>(n_patterns, 64);
  PatternSet serial_ps(nl);
  {
    Rng srng(0xbe7c);
    for (std::size_t i = 0; i < serial_patterns; ++i) serial_ps.add_random(srng);
  }

  std::printf("multiplier %ux%u: %zu gates, %zu collapsed faults, "
              "%zu patterns, %u threads\n",
              width, width, nl.logic_gate_count(), faults.size(), n_patterns,
              threads);

  std::vector<EngineRow> rows;
  rows.push_back(time_engine("serial", faults.size(), serial_patterns, [&] {
    return fault::simulate_serial(nl, faults, serial_ps);
  }));
  rows.push_back(time_engine("comb (PPSFP)", faults.size(), n_patterns, [&] {
    return fault::simulate_comb(nl, faults, patterns);
  }));
  rows.push_back(time_engine("lane x1", faults.size(), n_patterns, [&] {
    return fault::simulate_comb_parallel(nl, faults, patterns, {},
                                         {.num_threads = 1,
                                          .lane_parallel = true});
  }));
  rows.push_back(
      time_engine("threaded block", faults.size(), n_patterns, [&] {
        return fault::simulate_comb_parallel(nl, faults, patterns, {},
                                             {.num_threads = threads,
                                              .lane_parallel = false});
      }));
  rows.push_back(time_engine("threaded lane", faults.size(), n_patterns, [&] {
    return fault::simulate_comb_parallel(nl, faults, patterns, {},
                                         {.num_threads = threads,
                                          .lane_parallel = true});
  }));

  Table t({"Engine", "Patterns", "Seconds", "Faults x pat / s", "Detected"});
  for (const EngineRow& r : rows) {
    t.add_row({r.name, Table::num(static_cast<std::uint64_t>(r.patterns)),
               Table::num(r.seconds, 3), Table::num(r.throughput, 0),
               Table::num(static_cast<std::uint64_t>(r.detected))});
  }
  t.print();

  // All full-pattern engines must agree (the serial row uses fewer patterns).
  for (std::size_t i = 2; i < rows.size(); ++i) {
    if (rows[i].detected != rows[1].detected) {
      std::fprintf(stderr, "FAIL: %s detected %zu != comb %zu\n",
                   rows[i].name.c_str(), rows[i].detected, rows[1].detected);
      return 1;
    }
  }

  const double comb_s = rows[1].seconds;
  const double speedup_block = comb_s / rows[3].seconds;
  const double speedup_lane = comb_s / rows[4].seconds;
  std::printf("speedup vs comb: threaded block %.2fx, threaded lane %.2fx\n",
              speedup_block, speedup_lane);

  std::FILE* json = std::fopen("BENCH_faultsim.json", "w");
  if (!json) {
    std::perror("BENCH_faultsim.json");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"netlist\": \"multiplier\",\n"
               "  \"width\": %u,\n"
               "  \"gates\": %zu,\n"
               "  \"faults\": %zu,\n"
               "  \"patterns\": %zu,\n"
               "  \"threads\": %u,\n"
               "  \"engines\": {\n",
               width, nl.logic_gate_count(), faults.size(), n_patterns,
               threads);
  const char* keys[] = {"serial", "comb", "lane_x1", "threaded_block",
                        "threaded_lane"};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(json,
                 "    \"%s\": {\"patterns\": %zu, \"seconds\": %.6f, "
                 "\"throughput\": %.0f, \"detected\": %zu}%s\n",
                 keys[i], rows[i].patterns, rows[i].seconds,
                 rows[i].throughput, rows[i].detected,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json,
               "  },\n"
               "  \"speedup_threaded_block_vs_comb\": %.3f,\n"
               "  \"speedup_threaded_lane_vs_comb\": %.3f\n"
               "}\n",
               speedup_block, speedup_lane);
  std::fclose(json);
  std::puts("wrote BENCH_faultsim.json");
  return 0;
}
