// Fault-simulation throughput: evaluation-engine x scheduling x lane sweep.
//
// Grades the collapsed fault universe of a parallel multiplier (the largest
// combinational CUT family in the model) against random patterns with every
// combination of evaluation engine (reference / compiled / event, see
// fault/engine.hpp) and scheduling (single-thread PPSFP, threaded block,
// threaded lane-packed), reporting faults x patterns / second. The serial
// oracle is timed on a reduced pattern count (its throughput is per-pattern,
// so the normalized number is comparable). Every configuration must produce
// identical detection flags; any mismatch is a hard failure.
//
// The engine x scheduling rows are pinned at lane width 1 with the
// netlist-compile optimization passes off — the historical configuration —
// so their keys stay comparable across revisions. A dedicated baseline row
// re-measures the pre-multi-word lane grading loop (worklist scheduling,
// W=1, no compile passes), and a single-thread sweep varies lane-block
// width {1,4} x optimization {off,on} on the event engine, reporting the
// blocked-SIMD + compile-opt speedup over that live baseline.
//
// Also reports the average active-cone size per fault for the event engine —
// the number of gates actually re-evaluated per fault injection, the quantity
// the event-driven scheduler exists to minimize.
//
// Usage: faultsim_throughput [width] [patterns] [threads]
// Emits a table to stdout and machine-readable BENCH_faultsim.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/tablefmt.hpp"
#include "fault/engine.hpp"
#include "fault/fault.hpp"
#include "fault/sim.hpp"
#include "fault/sim_parallel.hpp"
#include "netlist/compiled.hpp"
#include "rtlgen/multiplier.hpp"

using namespace sbst;
using fault::CoverageResult;
using fault::Engine;
using fault::PatternSet;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct BenchRow {
  std::string key;     // JSON key, e.g. "comb_event"
  std::string label;   // table label
  std::string engine;  // engine name
  unsigned lanes = 1;  // lane-block width in words
  bool netlist_opt = false;
  std::size_t gates_after_opt = 0;  // live gates after compile passes
  std::size_t patterns = 0;
  double seconds = 0;
  double throughput = 0;        // faults x patterns / second
  double faults_per_sec = 0;    // faults graded / second
  std::size_t detected = 0;
  std::vector<std::uint8_t> flags;
};

/// Times `fn` `reps` times (the configs are deterministic) and keeps the
/// fastest run — the rows that feed speedup ratios use reps > 1 so a CPU
/// spike during one row cannot fabricate or destroy a speedup.
template <typename Fn>
BenchRow time_config(std::string key, std::string label, Engine engine,
                     std::size_t n_faults, std::size_t n_patterns,
                     const Fn& fn, unsigned reps = 1) {
  BenchRow row;
  row.seconds = 0;
  for (unsigned r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    CoverageResult res = fn();
    const double s = seconds_since(t0);
    if (r == 0) {
      row.seconds = s;
      row.detected = res.detected;
      row.flags = std::move(res.detected_flags);
    } else {
      row.seconds = std::min(row.seconds, s);
    }
  }
  row.key = std::move(key);
  row.label = std::move(label);
  row.engine = fault::engine_name(engine);
  row.patterns = n_patterns;
  row.throughput = static_cast<double>(n_faults) *
                   static_cast<double>(n_patterns) / row.seconds;
  row.faults_per_sec = static_cast<double>(n_faults) / row.seconds;
  return row;
}

/// The lane-packed grading loop exactly as it shipped before the multi-word
/// blocks landed: W=1, no compile passes, and an event-driven worklist pass
/// per broadcast pattern (no full-sweep hint). This is the event-engine
/// baseline the W x opt sweep is judged against; keeping it as a live row
/// (instead of a number quoted from an old run) means the speedup is always
/// measured under the same machine conditions as the numerator.
CoverageResult grade_lanes_worklist(const netlist::Netlist& nl,
                                    const std::vector<fault::Fault>& faults,
                                    const PatternSet& patterns) {
  const netlist::CompiledNetlist cn(nl);
  netlist::CompiledEvaluator ev(cn, /*event_driven=*/true);
  const auto& inputs = nl.inputs();
  const std::vector<netlist::NetId> outputs = nl.output_nets();
  CoverageResult res;
  res.total = faults.size();
  res.detected_flags.assign(faults.size(), 0);
  for (std::size_t base = 0; base < faults.size(); base += 63) {
    const std::size_t batch = std::min<std::size_t>(63, faults.size() - base);
    ev.clear_faults();
    std::uint64_t batch_lanes = 0;
    for (std::size_t j = 0; j < batch; ++j) {
      ev.inject_lane(faults[base + j].site, faults[base + j].stuck_value,
                     static_cast<unsigned>(j + 1));
      batch_lanes |= std::uint64_t{1} << (j + 1);
    }
    std::uint64_t detected = 0;
    for (std::size_t p = 0;
         p < patterns.size() && (detected & batch_lanes) != batch_lanes; ++p) {
      const auto& words = patterns.block(p / 64);
      const unsigned lane = p % 64;
      for (std::size_t k = 0; k < inputs.size(); ++k) {
        ev.set_input(inputs[k], (words[k] >> lane) & 1u);
      }
      ev.eval();
      for (netlist::NetId out : outputs) detected |= ev.diff_mask(out, 0);
    }
    for (std::size_t j = 0; j < batch; ++j) {
      if ((detected >> (j + 1)) & 1u) res.detected_flags[base + j] = 1;
    }
  }
  res.recount();
  return res;
}

/// Average number of gates the event engine re-evaluates per fault injection
/// (one pattern block applied, every fault injected/evaluated/reverted once).
double avg_active_cone(const netlist::Netlist& nl,
                       const std::vector<fault::Fault>& faults,
                       const PatternSet& patterns) {
  const netlist::CompiledNetlist cn(nl);
  netlist::CompiledEvaluator ev(cn, /*event_driven=*/true);
  const auto& inputs = nl.inputs();
  const auto& words = patterns.block(0);
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    ev.set_input_word(inputs[k], words[k]);
  }
  ev.eval();
  ev.reset_stats();
  for (const fault::Fault& f : faults) {
    ev.inject(f.site, f.stuck_value, ~std::uint64_t{0});
    ev.eval();
    ev.clear_faults();
  }
  return faults.empty() ? 0.0
                        : static_cast<double>(ev.gate_evals()) /
                              static_cast<double>(faults.size());
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned width = argc > 1 ? std::atoi(argv[1]) : 24;
  const std::size_t n_patterns =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 256;
  const unsigned threads =
      fault::resolve_thread_count(argc > 3 ? std::atoi(argv[3]) : 0);

  const netlist::Netlist nl = rtlgen::build_multiplier({.width = width});
  const fault::FaultUniverse universe(nl);
  const auto& faults = universe.collapsed();

  Rng rng(0xbe7c);
  PatternSet patterns(nl);
  for (std::size_t i = 0; i < n_patterns; ++i) patterns.add_random(rng);
  // The serial oracle runs one full-netlist eval per fault per pattern; cap
  // its patterns so the reference row finishes in seconds.
  const std::size_t serial_patterns = std::min<std::size_t>(n_patterns, 64);
  PatternSet serial_ps(nl);
  {
    Rng srng(0xbe7c);
    for (std::size_t i = 0; i < serial_patterns; ++i) serial_ps.add_random(srng);
  }

  const double cone = avg_active_cone(nl, faults, patterns);
  const std::size_t gates_plain = netlist::CompiledNetlist(nl).live_gates();
  const std::size_t gates_opt =
      netlist::CompiledNetlist(nl, netlist::CompileOptions::all())
          .live_gates();

  std::printf("multiplier %ux%u: %zu gates, %zu collapsed faults, "
              "%zu patterns, %u threads, avg event cone %.1f gates, "
              "%zu live gates after compile opt\n",
              width, width, nl.logic_gate_count(), faults.size(), n_patterns,
              threads, cone, gates_opt);

  // Grades with an explicit engine/scheduling/lane/opt configuration.
  // num_threads == 1 runs the plan on the calling thread, so single-thread
  // rows measure pure engine throughput.
  auto run = [&](Engine e, unsigned nthreads, bool lane_parallel,
                 unsigned lanes, bool opt) {
    fault::SimOptions so;
    so.num_threads = nthreads;
    so.lane_parallel = lane_parallel;
    so.engine = e;
    so.lanes = lanes;
    so.netlist_opt = opt ? 1 : 0;
    return fault::simulate_comb_parallel(nl, faults, patterns, {}, so);
  };

  const Engine engines[] = {Engine::kReference, Engine::kCompiled,
                            Engine::kEvent};
  std::vector<BenchRow> rows;

  // Serial oracle, reference engine only (anchor row; reduced patterns).
  rows.push_back(time_config(
      "serial_reference", "serial", Engine::kReference, faults.size(),
      serial_patterns, [&] {
        return fault::simulate_serial(nl, faults, serial_ps, {},
                                      Engine::kReference);
      }));

  // Engine x scheduling sweep, pinned at the historical lanes=1 / opt-off
  // configuration so these keys stay comparable across revisions.
  for (Engine e : engines) {
    const std::string en = fault::engine_name(e);
    rows.push_back(time_config(
        "comb_" + en, "comb x1", e, faults.size(), n_patterns,
        [&] { return run(e, 1, false, 1, false); }));
    for (bool lanes : {false, true}) {
      const char* sched = lanes ? "lane" : "block";
      rows.push_back(time_config(
          std::string(sched) + "_" + en,
          std::string("threaded ") + sched, e, faults.size(), n_patterns,
          [&] { return run(e, threads, lanes, 1, false); }));
    }
  }
  for (BenchRow& r : rows) r.gates_after_opt = gates_plain;

  // The PR-6 event-engine baseline: lane-packed grading driven by the
  // worklist scheduler, W=1, no compile passes (best of 3 runs — this row
  // is a speedup denominator).
  {
    BenchRow row = time_config(
        "lane_event_worklist", "lane worklist", Engine::kEvent, faults.size(),
        n_patterns, [&] { return grade_lanes_worklist(nl, faults, patterns); },
        /*reps=*/3);
    row.gates_after_opt = gates_plain;
    rows.push_back(std::move(row));
  }

  // Lane-block width x compile-opt sweep: single-thread fault-lane-packed
  // grading on the event engine — one pass carries the good machine in lane
  // 0 and 64*W-1 faulty machines in the remaining lanes, so W=4 grades 255
  // faults per pass against each pattern block (best of 3 runs each).
  for (unsigned lanes : {1u, 4u}) {
    for (bool opt : {false, true}) {
      std::string key = "sweep_event_l" + std::to_string(lanes) +
                        (opt ? "_opt" : "");
      std::string label = "sweep W=" + std::to_string(lanes) +
                          (opt ? " +opt" : "");
      BenchRow row = time_config(
          std::move(key), std::move(label), Engine::kEvent, faults.size(),
          n_patterns, [&] { return run(Engine::kEvent, 1, true, lanes, opt); },
          /*reps=*/3);
      row.lanes = lanes;
      row.netlist_opt = opt;
      row.gates_after_opt = opt ? gates_opt : gates_plain;
      rows.push_back(std::move(row));
    }
  }

  // Fault-model sweep: the full collapsed universe of each taxonomy model
  // graded through the same engine front door (event engine, single-thread
  // lane-packed, W=4, compile passes on — the fast configuration). Every
  // model rides the identical scheduling/lane machinery; only the
  // per-model activation semantics differ, so these rows price the
  // taxonomy itself.
  struct ModelRow {
    fault::FaultModel model;
    std::size_t faults = 0;
    double seconds = 0;
    double faults_per_sec = 0;
    std::size_t detected = 0;
  };
  std::vector<ModelRow> model_rows;
  for (const fault::FaultModel fm :
       {fault::FaultModel::kStuckAt, fault::FaultModel::kTransition,
        fault::FaultModel::kTransientSEU, fault::FaultModel::kIntermittent}) {
    const fault::FaultUniverse mu(nl, fm);
    ModelRow mr;
    mr.model = fm;
    mr.faults = mu.size();
    const auto t0 = std::chrono::steady_clock::now();
    fault::SimOptions so;
    so.num_threads = 1;
    so.lane_parallel = true;  // kTransition takes its block-major path
    so.engine = Engine::kEvent;
    so.lanes = 4;
    so.netlist_opt = 1;
    const CoverageResult res =
        fault::simulate_comb_parallel(nl, mu.collapsed(), patterns, {}, so);
    mr.seconds = seconds_since(t0);
    mr.faults_per_sec = static_cast<double>(mr.faults) / mr.seconds;
    mr.detected = res.detected;
    model_rows.push_back(mr);
  }

  Table t({"Config", "Engine", "W", "Opt", "Gates", "Patterns", "Seconds",
           "Faults x pat / s", "Faults / s", "Detected"});
  for (const BenchRow& r : rows) {
    t.add_row({r.label, r.engine, Table::num(std::uint64_t{r.lanes}),
               std::string(r.netlist_opt ? "on" : "off"),
               Table::num(static_cast<std::uint64_t>(r.gates_after_opt)),
               Table::num(static_cast<std::uint64_t>(r.patterns)),
               Table::num(r.seconds, 3), Table::num(r.throughput, 0),
               Table::num(r.faults_per_sec, 0),
               Table::num(static_cast<std::uint64_t>(r.detected))});
  }
  t.print();

  Table mt({"Model", "Faults", "Seconds", "Faults / s", "Detected"});
  for (const ModelRow& r : model_rows) {
    mt.add_row({fault::fault_model_name(r.model),
                Table::num(static_cast<std::uint64_t>(r.faults)),
                Table::num(r.seconds, 3), Table::num(r.faults_per_sec, 0),
                Table::num(static_cast<std::uint64_t>(r.detected))});
  }
  mt.print();

  // Every full-pattern configuration must agree flag-for-flag (the serial
  // row uses fewer patterns and is excluded).
  for (std::size_t i = 2; i < rows.size(); ++i) {
    if (rows[i].flags != rows[1].flags) {
      std::fprintf(stderr, "FAIL: %s flags differ from %s\n",
                   rows[i].key.c_str(), rows[1].key.c_str());
      return 1;
    }
  }

  auto row_by_key = [&](const char* key) -> const BenchRow& {
    for (const BenchRow& r : rows) {
      if (r.key == key) return r;
    }
    std::fprintf(stderr, "missing row %s\n", key);
    std::exit(1);
  };
  const double speedup_event =
      row_by_key("comb_reference").seconds / row_by_key("comb_event").seconds;
  const double speedup_simd = row_by_key("lane_event_worklist").seconds /
                              row_by_key("sweep_event_l4_opt").seconds;
  std::printf("single-thread event vs reference: %.2fx\n", speedup_event);
  std::printf(
      "single-thread W=4+opt vs the worklist event-engine baseline: %.2fx\n",
      speedup_simd);

  std::FILE* json = std::fopen("BENCH_faultsim.json", "w");
  if (!json) {
    std::perror("BENCH_faultsim.json");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"netlist\": \"multiplier\",\n"
               "  \"width\": %u,\n"
               "  \"gates\": %zu,\n"
               "  \"gates_after_opt\": %zu,\n"
               "  \"faults\": %zu,\n"
               "  \"patterns\": %zu,\n"
               "  \"threads\": %u,\n"
               "  \"avg_active_cone\": %.2f,\n"
               "  \"engines\": {\n",
               width, nl.logic_gate_count(), gates_opt, faults.size(),
               n_patterns, threads, cone);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(json,
                 "    \"%s\": {\"engine\": \"%s\", \"lanes\": %u, "
                 "\"netlist_opt\": %s, \"gates_after_opt\": %zu, "
                 "\"patterns\": %zu, \"seconds\": %.6f, "
                 "\"throughput\": %.0f, \"faults_graded_per_sec\": %.0f, "
                 "\"detected\": %zu}%s\n",
                 rows[i].key.c_str(), rows[i].engine.c_str(), rows[i].lanes,
                 rows[i].netlist_opt ? "true" : "false",
                 rows[i].gates_after_opt, rows[i].patterns, rows[i].seconds,
                 rows[i].throughput, rows[i].faults_per_sec,
                 rows[i].detected, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  },\n  \"fault_models\": {\n");
  for (std::size_t i = 0; i < model_rows.size(); ++i) {
    const ModelRow& r = model_rows[i];
    std::fprintf(json,
                 "    \"%s\": {\"model\": \"%s\", \"faults\": %zu, "
                 "\"seconds\": %.6f, \"faults_graded_per_sec\": %.0f, "
                 "\"detected\": %zu}%s\n",
                 fault::fault_model_name(r.model),
                 fault::fault_model_name(r.model), r.faults, r.seconds,
                 r.faults_per_sec, r.detected,
                 i + 1 < model_rows.size() ? "," : "");
  }
  std::fprintf(json,
               "  },\n"
               "  \"speedup_event_vs_reference\": %.3f,\n"
               "  \"speedup_l4opt_vs_event_baseline\": %.3f\n"
               "}\n",
               speedup_event, speedup_simd);
  std::fclose(json);
  std::puts("wrote BENCH_faultsim.json");
  return 0;
}
