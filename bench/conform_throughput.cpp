// Conformance-corpus replay throughput: cases / second per executor.
//
// Generates a randomized corpus in memory, then replays every case through
// each of the three executors (reference interpreter, predecoded micro-op
// core, guarded watchdog run) separately, timing each leg. Every replay is
// also diffed against the case's recorded post-state — a throughput number
// from a diverging executor would be meaningless, so any mismatch is a hard
// failure.
//
// Usage: conform_throughput [count] [seed]
// Emits a table to stdout and machine-readable BENCH_conform.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/tablefmt.hpp"
#include "conform/gen.hpp"
#include "conform/runner.hpp"
#include "core/component.hpp"
#include "core/session.hpp"

using namespace sbst;
using conform::Executor;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct BenchRow {
  std::string key;
  double seconds = 0;
  double cases_per_sec = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t count =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2200;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  const conform::CaseGen gen({.seed = seed, .count = count});
  const auto t_gen = std::chrono::steady_clock::now();
  const conform::Corpus corpus = gen.generate();
  const double gen_s = seconds_since(t_gen);

  std::size_t traps = 0;
  for (const conform::ConformCase& c : corpus.cases) {
    if (!c.trap.empty()) ++traps;
  }
  std::printf("corpus: %zu cases, %zu classes, %zu trap cases, seed %llu, "
              "content hash %016llx\n",
              corpus.cases.size(),
              conform::corpus_class_names(corpus).size(), traps,
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(
                  conform::corpus_content_hash(corpus)));

  std::vector<BenchRow> rows;
  rows.push_back({"generate", gen_s,
                  static_cast<double>(count) / gen_s});

  // The session hands each replay leg the shared predecoded image from its
  // content-addressed cache. Its grading configuration is pinned explicitly —
  // lane width and compile-opt setting key the session caches, so relying on
  // env defaults would let SBST_LANES / SBST_NETLIST_OPT silently change
  // what this bench measures.
  core::ProcessorModel model;
  core::GradingSession session(model,
                               {.num_threads = 1, .lanes = 1,
                                .netlist_opt = 0});

  const Executor executors[] = {Executor::kInterpreter, Executor::kDecoded,
                                Executor::kGuarded};
  for (const Executor exec : executors) {
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t mismatches = 0;
    for (const conform::ConformCase& c : corpus.cases) {
      isa::Program image;
      image.base = c.entry;
      image.words = c.code;
      const conform::Replay r =
          conform::replay_case(c, exec, session.decoded(image));
      if (r.state != c.final_state || r.trap != c.trap) ++mismatches;
    }
    const double s = seconds_since(t0);
    if (mismatches != 0) {
      std::fprintf(stderr, "FAIL: %zu mismatches on %s\n", mismatches,
                   conform::executor_name(exec));
      return 1;
    }
    rows.push_back({conform::executor_name(exec), s,
                    static_cast<double>(count) / s});
  }

  Table t({"Stage", "Seconds", "Cases / s"});
  for (const BenchRow& r : rows) {
    t.add_row({r.key, Table::num(r.seconds, 3),
               Table::num(r.cases_per_sec, 0)});
  }
  t.print();

  std::FILE* json = std::fopen("BENCH_conform.json", "w");
  if (!json) {
    std::perror("BENCH_conform.json");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"cases\": %zu,\n"
               "  \"classes\": %zu,\n"
               "  \"trap_cases\": %zu,\n"
               "  \"seed\": %llu,\n"
               "  \"content_hash\": \"%016llx\",\n"
               "  \"stages\": {\n",
               corpus.cases.size(),
               conform::corpus_class_names(corpus).size(), traps,
               static_cast<unsigned long long>(seed),
               static_cast<unsigned long long>(
                   conform::corpus_content_hash(corpus)));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(json,
                 "    \"%s\": {\"seconds\": %.6f, \"cases_per_sec\": %.0f}"
                 "%s\n",
                 rows[i].key.c_str(), rows[i].seconds, rows[i].cases_per_sec,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  }\n}\n");
  std::fclose(json);
  std::puts("wrote BENCH_conform.json");
  return 0;
}
