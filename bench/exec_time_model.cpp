// Experiment E1 — the execution-time requirement of paper §2/§4:
//
//   CPU-execution-time = clock-cycle-time * (CPU-clock-cycles
//       + pipeline-stall-cycles + memory-stall-cycles)
//
// The paper's headline: 808 words / 9,905 CPU cycles; assuming an average
// instruction/data cache miss rate of 5% and a 20-cycle penalty the test
// runs in < 12,000 cycles, i.e. < 200 us at 57 MHz — far below a quantum
// (hundreds of ms). This bench evaluates both the analytic model (miss-rate
// sweep) and measured direct-mapped caches of several sizes.
#include <chrono>
#include <cstdio>
#include <functional>

#include "common/tablefmt.hpp"
#include "core/evaluate.hpp"
#include "sim/exec.hpp"

using namespace sbst;
using namespace sbst::core;

namespace {

// Wall-clock instruction throughput of one run() variant. Repeats until the
// sample is long enough to trust (>= 0.2 s), never fewer than 8 runs.
double instructions_per_sec(const std::function<sim::ExecStats()>& run_once) {
  using clock = std::chrono::steady_clock;
  std::uint64_t instructions = 0;
  std::size_t iterations = 0;
  const clock::time_point start = clock::now();
  double elapsed = 0.0;
  do {
    instructions += run_once().instructions;
    ++iterations;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (iterations < 8 || elapsed < 0.2);
  return static_cast<double>(instructions) / elapsed;
}

}  // namespace

int main() {
  std::puts("==============================================================");
  std::puts(" E1: execution-time model (CPU-time equation, paper s2/s4)");
  std::puts("==============================================================");
  constexpr double kClockHz = 57e6;  // the paper's Plasma clock
  constexpr double kQuantumS = 0.2;  // representative round-robin quantum

  ProcessorModel model;
  TestProgramBuilder builder;
  builder.add_default_routines(model);
  const TestProgram program = builder.build();

  // Base execution without cache stalls.
  EvalOptions base;
  base.cpu.icache.enabled = false;
  base.cpu.dcache.enabled = false;
  sim::Cpu cpu(base.cpu);
  cpu.reset();
  cpu.load(program.image);
  const sim::ExecStats stats = cpu.run(program.entry);

  std::printf("SBST program: %zu words, %llu instructions, %llu CPU cycles,"
              " %llu pipeline stalls, %llu data refs\n\n",
              program.image.size_words(),
              static_cast<unsigned long long>(stats.instructions),
              static_cast<unsigned long long>(stats.cpu_cycles),
              static_cast<unsigned long long>(stats.pipeline_stall_cycles),
              static_cast<unsigned long long>(stats.data_references()));

  std::puts("Analytic model: total cycles and time vs miss rate x penalty");
  Table t({"Miss rate (%)", "Penalty (cycles)", "Total cycles", "Time (us)",
           "Fraction of quantum (%)"});
  for (double miss : {0.0, 0.01, 0.02, 0.05, 0.10}) {
    for (unsigned penalty : {10u, 20u, 50u}) {
      const std::uint64_t cycles = stats.analytic_total_cycles(miss, penalty);
      const double us = 1e6 * static_cast<double>(cycles) / kClockHz;
      t.add_row({Table::num(100 * miss, 0),
                 Table::num(static_cast<std::uint64_t>(penalty)),
                 Table::num(cycles), Table::num(us, 1),
                 Table::num(100 * us / 1e6 / kQuantumS, 4)});
    }
  }
  t.print();
  const std::uint64_t paper_point = stats.analytic_total_cycles(0.05, 20);
  const double paper_us = 1e6 * static_cast<double>(paper_point) / kClockHz;
  std::printf(
      "\nPaper's operating point (5%% miss, 20-cycle penalty): %llu cycles "
      "= %.1f us at 57 MHz.\n"
      "The paper's 808-word program fits in <12,000 cycles (<200 us); ours "
      "is ~2x larger but, like theirs, consumes a vanishing %.3f%% of a "
      "200 ms quantum -- the section-2 requirement holds.\n",
      static_cast<unsigned long long>(paper_point), paper_us,
      100 * paper_us / 1e6 / kQuantumS);

  // Measured caches.
  std::puts("\nMeasured direct-mapped caches (20-cycle miss penalty):");
  Table m({"I$ size", "D$ size", "I-miss rate (%)", "D-miss rate (%)",
           "Memory stalls", "Total cycles", "Time (us)"});
  struct CacheCase {
    unsigned ilines, dlines;
  };
  for (const CacheCase& c : {CacheCase{32, 16}, CacheCase{128, 64},
                             CacheCase{512, 256}, CacheCase{2048, 512}}) {
    EvalOptions opts;
    opts.cpu.icache = {.enabled = true, .line_words = 4, .lines = c.ilines,
                       .miss_penalty = 20};
    opts.cpu.dcache = {.enabled = true, .line_words = 4, .lines = c.dlines,
                       .miss_penalty = 20};
    sim::Cpu cached(opts.cpu);
    cached.reset();
    cached.load(program.image);
    const sim::ExecStats s = cached.run(program.entry);
    const double imiss = s.icache_accesses == 0
                             ? 0
                             : 100.0 * static_cast<double>(s.icache_misses) /
                                   static_cast<double>(s.icache_accesses);
    const double dmiss = s.dcache_accesses == 0
                             ? 0
                             : 100.0 * static_cast<double>(s.dcache_misses) /
                                   static_cast<double>(s.dcache_accesses);
    const double us = 1e6 * static_cast<double>(s.total_cycles()) / kClockHz;
    m.add_row({std::to_string(c.ilines * 16) + " B",
               std::to_string(c.dlines * 16) + " B", Table::num(imiss, 2),
               Table::num(dmiss, 2), Table::num(s.memory_stall_cycles),
               Table::num(s.total_cycles()), Table::num(us, 1)});
  }
  m.print();

  // A3: §2's pipeline remarks made measurable. (a) Without forwarding, the
  // same routines are rescheduled with nops ("nop instructions are inserted
  // accordingly when forwarding is not supported"); (b) with branch
  // prediction instead of a delay slot, "pipeline stalls are unavoidable".
  std::puts("\nPipeline-variant ablation (ALU routine):");
  {
    Table v({"Machine", "Program words", "CPU cycles", "Pipeline stalls"});
    TestProgramBuilder fw_builder;
    const TestProgram fw_prog =
        fw_builder.build_standalone(make_alu_routine({}));
    CodegenOptions nf_opts;
    nf_opts.schedule_for_no_forwarding = true;
    TestProgramBuilder nf_builder(nf_opts);
    const TestProgram nf_prog =
        nf_builder.build_standalone(make_alu_routine({}));

    auto row = [&](const char* label, const TestProgram& p,
                   const sim::CpuConfig& cfg) {
      sim::Cpu c(cfg);
      c.reset();
      c.load(p.image);
      const sim::ExecStats s = c.run(p.entry);
      v.add_row({label, Table::num(static_cast<std::uint64_t>(
                            p.image.size_words())),
                 Table::num(s.cpu_cycles),
                 Table::num(s.pipeline_stall_cycles)});
    };
    sim::CpuConfig plain;
    plain.icache.enabled = plain.dcache.enabled = false;
    sim::CpuConfig no_fwd = plain;
    no_fwd.forwarding = false;
    sim::CpuConfig predicted = plain;
    predicted.branch_taken_penalty = 2;
    row("forwarding + delay slot (Plasma)", fw_prog, plain);
    row("no forwarding, unscheduled code", fw_prog, no_fwd);
    row("no forwarding, nop-scheduled code", nf_prog, no_fwd);
    row("predict-not-taken (2-cycle flush)", fw_prog, predicted);
    v.print();
  }

  // Locality claims: compact loops vs straight-line under a tiny cache.
  std::puts("\nLocality check (paper s2): loop styles have lower instruction"
            " miss rates than straight-line code under a small I-cache");
  TestProgramBuilder b2;
  const Routine fig4 = make_fig4_regular_routine(rtlgen::AluOp::kAdd, {});
  const Routine alu = make_alu_routine({});
  Table l({"Routine", "Style", "Instructions", "I-misses",
           "I-miss rate (%)"});
  for (const Routine* r : {&fig4, &alu}) {
    const TestProgram p = b2.build_standalone(*r);
    sim::CpuConfig cfg;
    cfg.icache = {.enabled = true, .line_words = 4, .lines = 16,
                  .miss_penalty = 20};
    sim::Cpu c(cfg);
    c.reset();
    c.load(p.image);
    const sim::ExecStats s = c.run(p.entry);
    l.add_row({r->name, r->style, Table::num(s.instructions),
               Table::num(s.icache_misses),
               Table::num(100.0 * static_cast<double>(s.icache_misses) /
                              static_cast<double>(s.icache_accesses),
                          2)});
  }
  l.print();

  // Machine-readable throughput sample for CI trend tracking: interpreter
  // vs decoded core vs decoded-with-trace-sink on the full SBST program.
  // Goes to BENCH_exec.json + stderr only; stdout above is diffed in CI.
  {
    struct NullTrace {
      void on_instruction_start(std::uint32_t) {}
      void on_alu(rtlgen::AluOp, std::uint32_t, std::uint32_t) {}
      void on_shift(rtlgen::ShiftOp, std::uint32_t, std::uint32_t) {}
      void on_mult(std::uint32_t, std::uint32_t) {}
      void on_div(std::uint32_t, std::uint32_t) {}
      void on_regfile(std::uint8_t, std::uint32_t, bool, std::uint8_t,
                      std::uint8_t) {}
      void on_mem(std::uint32_t, std::uint32_t, rtlgen::MemSize, bool, bool,
                  std::uint32_t) {}
      void on_control(std::uint8_t, std::uint8_t) {}
      void on_forward(std::uint8_t, std::uint8_t, std::uint8_t, bool,
                      std::uint8_t, bool) {}
      void on_branch_flush() {}
      void on_branch_target(std::uint32_t, std::uint32_t) {}
    };
    sim::Cpu bench_cpu(base.cpu);
    bench_cpu.load(program.image);
    const double interp = instructions_per_sec([&] {
      bench_cpu.reset();
      return bench_cpu.run_interpreter(program.entry);
    });
    const double decoded = instructions_per_sec([&] {
      bench_cpu.reset();
      return bench_cpu.run(program.entry);
    });
    NullTrace trace;
    const double traced = instructions_per_sec([&] {
      bench_cpu.reset();
      sim::TraceSink<NullTrace> sink{&trace};
      return bench_cpu.run_sink(program.entry, sink);
    });
    if (std::FILE* f = std::fopen("BENCH_exec.json", "w")) {
      std::fprintf(f,
                   "{\n"
                   "  \"bench\": \"exec_time_model\",\n"
                   "  \"program_words\": %zu,\n"
                   "  \"instructions_per_run\": %llu,\n"
                   "  \"interpreter_instr_per_sec\": %.0f,\n"
                   "  \"decoded_instr_per_sec\": %.0f,\n"
                   "  \"traced_instr_per_sec\": %.0f,\n"
                   "  \"decoded_speedup_vs_interpreter\": %.3f,\n"
                   "  \"traced_speedup_vs_interpreter\": %.3f\n"
                   "}\n",
                   program.image.size_words(),
                   static_cast<unsigned long long>(stats.instructions),
                   interp, decoded, traced, decoded / interp,
                   traced / interp);
      std::fclose(f);
    }
    std::fprintf(stderr,
                 "# throughput (Minstr/s): interpreter %.1f, decoded %.1f "
                 "(%.2fx), traced %.1f (%.2fx) -> BENCH_exec.json\n",
                 interp / 1e6, decoded / 1e6, decoded / interp, traced / 1e6,
                 traced / interp);
  }
  return 0;
}
