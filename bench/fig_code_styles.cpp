// Experiments F1-F4 — reproduces the paper's Figures 1-4: the four
// self-test routine code styles, their generated assembly, and the §3.3
// characteristics analysis (code size / data size / execution time /
// instruction- and data-reference behaviour per style).
#include <cstdio>

#include "atpg/testgen.hpp"
#include "common/tablefmt.hpp"
#include "core/codegen.hpp"
#include "core/evaluate.hpp"
#include "core/program.hpp"
#include "isa/disasm.hpp"

using namespace sbst;
using namespace sbst::core;

namespace {

struct StyleRun {
  std::string label;
  Routine routine;
  TestProgram program;
  sim::ExecStats stats;
  double alu_fc = 0;
};

StyleRun run_style(const ProcessorModel& model, std::string label,
                   Routine routine) {
  TestProgramBuilder builder;
  StyleRun out{std::move(label), routine, builder.build_standalone(routine),
               {}, 0};
  TraceCollector trace(model);
  sim::Cpu cpu;
  cpu.reset();
  cpu.load(out.program.image);
  cpu.set_hooks(&trace);
  out.stats = cpu.run(out.program.entry);
  const auto& alu = model.component(CutId::kAlu);
  fault::FaultUniverse universe(alu.netlist);
  fault::ObserveSet obs = alu.netlist.output_port("result");
  obs.push_back(alu.netlist.output_port("zero")[0]);
  out.alu_fc = fault::simulate_comb(alu.netlist, universe.collapsed(),
                                    trace.alu_patterns(), obs)
                   .percent();
  return out;
}

// The deterministic pattern list shared by the Figure 1 / Figure 2 styles:
// a small constrained-ATPG set for the ALU adder through addu.
std::vector<AluOpnd> atpg_add_patterns(const ProcessorModel& model,
                                       std::size_t limit) {
  const netlist::Netlist& nl = model.component(CutId::kAlu).netlist;
  fault::FaultUniverse universe(nl);
  atpg::InputConstraints cons;
  cons.fix_port(nl, "op",
                static_cast<std::uint64_t>(rtlgen::AluOp::kAdd));
  atpg::TestGenOptions tg;
  tg.random_warmup = 0;
  tg.podem.backtrack_limit = 50000;
  const atpg::TestGenResult res =
      atpg::generate_atpg_tests(nl, universe.collapsed(), cons, tg);
  std::vector<AluOpnd> out;
  for (std::size_t i = 0; i < res.patterns.size() && i < limit; ++i) {
    out.push_back({rtlgen::AluOp::kAdd,
                   static_cast<std::uint32_t>(res.patterns.value_of(i, "a")),
                   static_cast<std::uint32_t>(res.patterns.value_of(i, "b"))});
  }
  return out;
}

void print_listing_head(const StyleRun& run, unsigned lines) {
  std::printf("--- %s: generated routine (first %u instructions) ---\n",
              run.label.c_str(), lines);
  const auto& words = run.program.image.words;
  const auto& section = run.program.sections[0];
  for (unsigned i = 0; i < lines; ++i) {
    const std::uint32_t addr = section.begin_addr + i * 4;
    if (addr >= section.end_addr) break;
    const std::uint32_t w = words[(addr - run.program.image.base) / 4];
    std::printf("  0x%04x: %08x  %s\n", addr, w,
                isa::disassemble(w, addr).c_str());
  }
  std::puts("  ...");
}

}  // namespace

int main() {
  std::puts("==============================================================");
  std::puts(" F1-F4: the four self-test code styles (paper Figures 1-4)");
  std::puts("==============================================================");
  ProcessorModel model;

  const auto det = atpg_add_patterns(model, 24);
  std::printf("deterministic ATPG set for the constrained ALU adder: %zu "
              "patterns\n\n",
              det.size());

  std::vector<StyleRun> runs;
  runs.push_back(run_style(model, "Fig.1 AtpgD (I) immediate",
                           make_fig1_immediate_routine(det, {})));
  runs.push_back(run_style(
      model, "Fig.2 AtpgD (L) data fetch",
      make_fig2_datafetch_routine(det, rtlgen::AluOp::kAdd, {})));
  runs.push_back(run_style(model, "Fig.3 PR (L) software LFSR",
                           make_fig3_lfsr_routine(rtlgen::AluOp::kAdd,
                                                  0x13572468u, 0x2468ace1u,
                                                  256, {})));
  runs.push_back(run_style(model, "Fig.4 RegD (L) regular loop",
                           make_fig4_regular_routine(rtlgen::AluOp::kAdd,
                                                     {})));

  for (const StyleRun& run : runs) print_listing_head(run, 10);

  std::puts("");
  std::puts("Code-style characteristics (paper section 3.3 analysis):");
  Table t({"Style", "Patterns", "Code (words)", "Total image (words)",
           "CPU cycles", "Loads", "Stores", "Stalls", "ALU adder FC (%)"});
  for (const StyleRun& run : runs) {
    t.add_row({run.label,
               Table::num(static_cast<std::uint64_t>(
                   run.routine.pattern_count)),
               Table::num(static_cast<std::uint64_t>(
                   run.program.sections[0].size_words())),
               Table::num(static_cast<std::uint64_t>(
                   run.program.image.size_words())),
               Table::num(run.stats.cpu_cycles),
               Table::num(run.stats.loads), Table::num(run.stats.stores),
               Table::num(run.stats.pipeline_stall_cycles),
               Table::num(run.alu_fc, 1)});
  }
  t.print();

  std::puts("");
  std::puts("Checks against the paper's claims:");
  std::printf(
      "  Fig.1 code grows linearly with patterns; Fig.2 code is constant "
      "(patterns moved to data memory: %zu loads vs %zu).\n",
      static_cast<std::size_t>(runs[1].stats.loads),
      static_cast<std::size_t>(runs[0].stats.loads));
  std::printf(
      "  Fig.3 applies %zu pseudorandom patterns from a 5-instruction "
      "LFSR step per operand; code stays small (%zu words).\n",
      runs[2].routine.pattern_count,
      runs[2].program.sections[0].size_words());
  std::printf(
      "  Fig.4 applies %zu regular patterns from a %zu-word nested loop "
      "(constant code size, linear run time).\n",
      runs[3].routine.pattern_count,
      runs[3].program.sections[0].size_words());

  // Figure-2 trade-off sweep: immediate vs data-fetch execution time as a
  // function of pattern count (the paper: "selection is mainly based on
  // test routine execution time and ... CPI ... of instruction lw").
  std::puts("");
  std::puts("Fig.1-vs-Fig.2 execution-time crossover (pattern sweep):");
  Table x({"Patterns", "Fig.1 cycles", "Fig.2 cycles", "Fig.1 words",
           "Fig.2 words (code+data)"});
  for (std::size_t n : {4u, 8u, 16u, 24u}) {
    std::vector<AluOpnd> subset(det.begin(),
                                det.begin() + std::min(n, det.size()));
    const StyleRun f1 = run_style(model, "f1",
                                  make_fig1_immediate_routine(subset, {}));
    const StyleRun f2 = run_style(
        model, "f2",
        make_fig2_datafetch_routine(subset, rtlgen::AluOp::kAdd, {}));
    x.add_row({Table::num(static_cast<std::uint64_t>(subset.size())),
               Table::num(f1.stats.cpu_cycles),
               Table::num(f2.stats.cpu_cycles),
               Table::num(static_cast<std::uint64_t>(
                   f1.program.sections[0].size_words())),
               Table::num(static_cast<std::uint64_t>(
                   f2.program.image.size_words()))});
  }
  x.print();
  return 0;
}
