// Experiment T1 + E4 — reproduces paper Table 1:
//   "Component gate count and classification, self-test program statistics
//    and fault coverage of MIPS Plasma for on-line periodic testing"
// plus the §4 area-classification claims (D-VCs dominate the area).
//
// Paper reference values (0.35um synthesis, FlexTest fault grading):
//   Component          Gates   Class      Style       Words  Cycles  Refs  FC%
//   Parallel Mul+Div   11,601  D-VC       RegD (L+I)     68   6,152     2  (n/r)
//   Register File       9,905  D-VC       RegD (I)      278   1,285     1  (n/r)
//   Memory controller   1,119  73% D-VC   RegD (I)       70     229    80  (n/r)
//   Shifter               682  D-VC       AtpgD (I)      77     113     1  (n/r)
//   ALU                   491  D-VC       RegD (L+I)     60      89     1  (n/r)
//   Control Logic         230  PVC        FT             30     117     0  (n/r)
//   Pipeline              885  HC         (side-effect)   -       -     -  (n/r)
//   Total              26,080  92% D-VC                 808   9,905    87  95.6
// Emits a table to stdout and machine-readable BENCH_table1.json with
// per-stage wall-clock timings (trace, collapse, compile, grade,
// standalone-runs) for both evaluations sharing one GradingSession — the
// second run's near-zero collapse/compile stages are the cache at work.
#include <chrono>
#include <cstdio>

#include "common/tablefmt.hpp"
#include "core/evaluate.hpp"

using namespace sbst;
using namespace sbst::core;

namespace {

struct PaperRow {
  const char* component;
  const char* gates;
  const char* cls;
  const char* style;
  const char* words;
  const char* cycles;
  const char* refs;
};

// Table 1 of the paper (mul and div share one row there).
constexpr PaperRow kPaper[] = {
    {"Parallel Mul. + Serial Div.", "11,601", "D-VC", "RegD (L + I)", "68",
     "6,152", "2"},
    {"Register File", "9,905", "D-VC", "RegD (I)", "278", "1,285", "1"},
    {"Memory controller", "1,119", "73% D-VC", "RegD (I)", "70", "229",
     "80"},
    {"Shifter", "682", "D-VC", "AtpgD (I)", "77", "113", "1"},
    {"ALU", "491", "D-VC", "RegD (L + I)", "60", "89", "1"},
    {"Control Logic", "230", "PVC", "FT", "30", "117", "0"},
    {"Pipeline", "885", "HC", "side-effect", "-", "-", "-"},
};

const RoutineStats* find_routine(const ProgramEvaluation& ev,
                                 const std::string& name) {
  for (const RoutineStats& r : ev.routines) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

}  // namespace

int main() {
  std::puts("==============================================================");
  std::puts(" T1: Table 1 reproduction - SBST program for periodic testing");
  std::puts("==============================================================");

  ProcessorModel model;
  TestProgramBuilder builder;
  builder.add_default_routines(model);
  const TestProgram program = builder.build();
  GradingSession session(model);
  const auto t_arch = std::chrono::steady_clock::now();
  const ProgramEvaluation ev = evaluate_program(session, builder, program);
  const double arch_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_arch)
          .count();

  // ---- measured per-component table ---------------------------------------
  Table t({"Component", "GE (gates)", "Class", "Code Style", "Size (words)",
           "CPU Clock Cycles", "Data Refer.", "FC (%)", "Miss. FC (%)"});
  struct RowSpec {
    CutId cut;
    const char* routine;  // nullptr = side-effect only
  };
  const RowSpec rows[] = {
      {CutId::kMultiplier, "mul"},   {CutId::kDivider, "div"},
      {CutId::kRegisterFile, "rf"},  {CutId::kMemCtrl, "mem"},
      {CutId::kShifter, "shifter"},  {CutId::kAlu, "alu"},
      {CutId::kControl, "ctrl"},     {CutId::kForwarding, nullptr},
      {CutId::kPipeline, nullptr},   {CutId::kBranchAdder, nullptr},
  };
  std::size_t total_words = 0;
  std::uint64_t total_cycles = 0, total_refs = 0;
  for (const RowSpec& row : rows) {
    const ComponentInfo& info = model.component(row.cut);
    const CutCoverage& cc = ev.cut(row.cut);
    std::vector<std::string> cells;
    cells.push_back(info.name);
    cells.push_back(Table::num(static_cast<std::uint64_t>(
        info.gate_equivalents())));
    cells.push_back(class_name(info.cls));
    if (row.routine) {
      const RoutineStats* rs = find_routine(ev, row.routine);
      cells.push_back(rs->style);
      cells.push_back(Table::num(static_cast<std::uint64_t>(rs->size_words)));
      cells.push_back(Table::num(rs->exec.cpu_cycles));
      cells.push_back(Table::num(rs->exec.data_references()));
      total_words += rs->size_words;
      total_cycles += rs->exec.cpu_cycles;
      total_refs += rs->exec.data_references();
    } else {
      cells.push_back("side-effect");
      cells.push_back("-");
      cells.push_back("-");
      cells.push_back("-");
    }
    cells.push_back(Table::num(cc.coverage.percent(), 1));
    cells.push_back(Table::num(ev.missing_fc(row.cut), 2));
    t.add_row(cells);
  }
  t.add_rule();
  t.add_row({"Total",
             Table::num(static_cast<std::uint64_t>(
                 model.total_gate_equivalents())),
             "", "", Table::num(static_cast<std::uint64_t>(total_words)),
             Table::num(total_cycles), Table::num(total_refs),
             Table::num(ev.overall_fc(), 1), ""});
  t.print();

  // ---- paper reference ------------------------------------------------------
  std::puts("");
  std::puts("Paper Table 1 (for comparison; authors' 0.35um synthesis):");
  Table p({"Component", "Gates", "Class", "Code Style", "Size (words)",
           "CPU Clock Cycles", "Data Refer."});
  for (const PaperRow& row : kPaper) {
    p.add_row({row.component, row.gates, row.cls, row.style, row.words,
               row.cycles, row.refs});
  }
  p.add_rule();
  p.add_row({"Total", "26,080", "92% D-VC", "", "808", "9,905", "87"});
  p.print();
  std::puts("Paper overall single stuck-at fault coverage: 95.6 %");

  // ---- E4: classification area shares ---------------------------------------
  std::puts("");
  std::puts("E4: area by classification (paper: D-VCs dominate at 92%)");
  Table a({"Class", "Area share (%)", "Note"});
  a.add_row({"D-VC",
             Table::num(100 * model.class_area_fraction(
                                  ComponentClass::kDataVisible), 1),
             "highest test priority, cache-friendly routines"});
  a.add_row({"A-VC",
             Table::num(100 * model.class_area_fraction(
                                  ComponentClass::kAddressVisible), 1),
             "excluded from periodic testing (distributed refs)"});
  a.add_row({"PVC",
             Table::num(100 * model.class_area_fraction(
                                  ComponentClass::kPartiallyVisible), 1),
             "functional test (all opcodes)"});
  a.add_row({"HC",
             Table::num(100 * model.class_area_fraction(
                                  ComponentClass::kHidden), 1),
             "side-effect of D-VC routines"});
  a.print();

  // ---- §2 stringent-characteristics check ------------------------------------
  std::puts("");
  std::puts("SBST program stringent characteristics (paper section 2):");
  std::printf("  combined program:      %zu words, %llu instructions\n",
              program.image.size_words(),
              static_cast<unsigned long long>(ev.total.instructions));
  std::printf("  pipeline stall cycles: %llu (requirement: 0)\n",
              static_cast<unsigned long long>(
                  ev.total.pipeline_stall_cycles));
  std::printf("  data memory refs:      %llu (paper: 87)\n",
              static_cast<unsigned long long>(ev.total.data_references()));
  const std::uint64_t analytic = ev.total.analytic_total_cycles(0.05, 20);
  const double us = 1e6 * static_cast<double>(analytic) / 57e6;
  std::printf(
      "  CPU cycles %llu; with 5%% miss/20-cycle penalty: %llu cycles = "
      "%.1f us @57MHz\n"
      "  (paper's smaller program: <12,000 cycles = <200 us; both are "
      "<<1%% of a 200 ms quantum: ours %.3f%%)\n",
      static_cast<unsigned long long>(ev.total.cpu_cycles),
      static_cast<unsigned long long>(analytic), us, 100 * us / 1e6 / 0.2);
  std::printf("  signatures unloaded:   %zu words at 0x%x\n",
              program.routines.size(), program.signature_base);

  // ---- ablation: observability requirement ------------------------------------
  std::puts("");
  std::puts("Ablation: architectural vs full-netlist observability");
  EvalOptions full;
  full.architectural_observability = false;
  // Same session: the fault universes and compiled netlists are reused; only
  // the full-netlist observe sets and cones are new.
  const auto t_full = std::chrono::steady_clock::now();
  const ProgramEvaluation ev_full =
      evaluate_program(session, builder, program, full);
  const double full_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_full)
          .count();
  Table ab({"Component", "FC architectural (%)", "FC full-netlist (%)"});
  for (const RowSpec& row : rows) {
    ab.add_row({model.component(row.cut).name,
                Table::num(ev.cut(row.cut).coverage.percent(), 1),
                Table::num(ev_full.cut(row.cut).coverage.percent(), 1)});
  }
  ab.add_row({"Overall", Table::num(ev.overall_fc(), 1),
              Table::num(ev_full.overall_fc(), 1)});
  ab.print();

  // ---- machine-readable timing report ----------------------------------------
  const SessionStats stats = session.stats();
  std::FILE* json = std::fopen("BENCH_table1.json", "w");
  if (!json) {
    std::perror("BENCH_table1.json");
    return 1;
  }
  auto stages = [&](const char* key, const EvalStageTimes& s, double total) {
    std::fprintf(json,
                 "  \"%s\": {\"trace\": %.6f, \"collapse\": %.6f, "
                 "\"compile\": %.6f, \"grade\": %.6f, \"standalone\": %.6f, "
                 "\"total\": %.6f},\n",
                 key, s.trace, s.collapse, s.compile, s.grade, s.standalone,
                 total);
  };
  std::fprintf(json,
               "{\n"
               "  \"threads\": %u,\n"
               "  \"overall_fc\": %.4f,\n"
               "  \"overall_fc_full_netlist\": %.4f,\n",
               session.pool().size(), ev.overall_fc(), ev_full.overall_fc());
  stages("stages_architectural", ev.stages, arch_s);
  stages("stages_full_netlist", ev_full.stages, full_s);
  std::fprintf(json,
               "  \"session\": {\"universe_builds\": %zu, "
               "\"universe_hits\": %zu, \"compile_builds\": %zu, "
               "\"compile_hits\": %zu, \"observe_builds\": %zu, "
               "\"observe_hits\": %zu, \"cone_builds\": %zu, "
               "\"cone_hits\": %zu}\n"
               "}\n",
               stats.universe_builds, stats.universe_hits,
               stats.compile_builds, stats.compile_hits, stats.observe_builds,
               stats.observe_hits, stats.cone_builds, stats.cone_hits);
  std::fclose(json);
  std::printf("\nwrote BENCH_table1.json (arch eval %.2fs, full-netlist "
              "eval %.2fs; cache reuse: %zu universe hits, %zu compile "
              "hits)\n",
              arch_s, full_s, stats.universe_hits, stats.compile_hits);
  return 0;
}
