// Persistent-store warm-start: cold vs warm per-stage build times.
//
// Runs the full-program evaluation three times, each in a FRESH
// GradingSession (so nothing carries over in memory):
//
//   off    no persistent store — every artifact built from scratch
//   cold   fresh store directory — builds everything, writes it back
//   warm   same directory again — every store-covered artifact deserializes
//          instead of rebuilding
//
// Each pass times the artifact stages separately (fault-universe collapse,
// netlist compile, program decode, fault-free good run) by touching them
// through the session accessors before the final grading, exactly as
// evaluate_program would. The three evaluations are also diffed — a warm
// speedup that changed coverage numbers would be a correctness bug, so any
// mismatch is a hard failure.
//
// Usage: store_warmstart [store-dir]   (default: ./.bench-store, wiped)
// Emits a table to stdout and machine-readable BENCH_store.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/tablefmt.hpp"
#include "core/evaluate.hpp"
#include "store/artifact_store.hpp"

using namespace sbst;
using namespace sbst::core;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct PassTimes {
  std::string key;
  double collapse = 0, compile = 0, decode = 0, goodrun = 0, grade = 0;
  double total() const {
    return collapse + compile + decode + goodrun + grade;
  }
  SessionStats stats;
  double fc = 0;
};

PassTimes run_pass(const std::string& key, const ProcessorModel& model,
                   TestProgramBuilder& builder, const TestProgram& program,
                   std::shared_ptr<store::ArtifactStore> store) {
  PassTimes t;
  t.key = key;
  SessionOptions sopts;
  sopts.store = store;
  GradingSession session(model, sopts);
  const EvalOptions options;

  auto t0 = std::chrono::steady_clock::now();
  for (const ComponentInfo& c : model.components()) session.universe(c.id);
  t.collapse = seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  for (const ComponentInfo& c : model.components()) session.compiled(c.id);
  t.compile = seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  session.decoded(program.image);
  t.decode = seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  session.good_run(program);
  t.goodrun = seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  const ProgramEvaluation ev =
      evaluate_program(session, builder, program, options);
  t.grade = seconds_since(t0);

  t.stats = session.stats();
  t.fc = ev.overall_fc();
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : ".bench-store";
  std::filesystem::remove_all(dir);

  ProcessorModel model;
  TestProgramBuilder builder;
  builder.add_default_routines(model);
  const TestProgram program = builder.build();

  const PassTimes off = run_pass("off", model, builder, program, nullptr);
  auto store = std::make_shared<store::ArtifactStore>(dir);
  const PassTimes cold = run_pass("cold", model, builder, program, store);
  const PassTimes warm = run_pass("warm", model, builder, program, store);

  if (warm.fc != cold.fc || cold.fc != off.fc) {
    std::fprintf(stderr,
                 "FAIL: coverage diverged (off %.6f cold %.6f warm %.6f)\n",
                 off.fc, cold.fc, warm.fc);
    return 1;
  }
  if (warm.stats.store_hits == 0) {
    std::fprintf(stderr, "FAIL: warm pass had no store hits\n");
    return 1;
  }
  if (warm.stats.universe_builds != 0 || warm.stats.decode_builds != 0 ||
      warm.stats.goodrun_builds != 0) {
    std::fprintf(stderr, "FAIL: warm pass rebuilt store-covered artifacts\n");
    return 1;
  }

  Table t({"Pass", "Collapse (s)", "Compile (s)", "Decode (s)",
           "Good run (s)", "Grade (s)", "Total (s)", "Store hits",
           "Store writes"});
  for (const PassTimes* p : {&off, &cold, &warm}) {
    t.add_row({p->key, Table::num(p->collapse, 4), Table::num(p->compile, 4),
               Table::num(p->decode, 4), Table::num(p->goodrun, 4),
               Table::num(p->grade, 4), Table::num(p->total(), 4),
               Table::num(static_cast<std::uint64_t>(p->stats.store_hits)),
               Table::num(static_cast<std::uint64_t>(p->stats.store_writes))});
  }
  t.print();
  const double prep_cold =
      cold.collapse + cold.compile + cold.decode + cold.goodrun;
  const double prep_warm =
      warm.collapse + warm.compile + warm.decode + warm.goodrun;
  std::printf("warm-start: artifact prep %.4f s cold -> %.4f s warm "
              "(%.2fx), overall FC %.2f%% in all passes\n",
              prep_cold, prep_warm,
              prep_warm > 0 ? prep_cold / prep_warm : 0.0, warm.fc);

  std::FILE* json = std::fopen("BENCH_store.json", "w");
  if (!json) {
    std::perror("BENCH_store.json");
    return 1;
  }
  std::fprintf(json, "{\n  \"passes\": [\n");
  bool first = true;
  for (const PassTimes* p : {&off, &cold, &warm}) {
    std::fprintf(
        json,
        "%s    {\"pass\": \"%s\", \"collapse_s\": %.6f, \"compile_s\": %.6f, "
        "\"decode_s\": %.6f, \"goodrun_s\": %.6f, \"grade_s\": %.6f, "
        "\"total_s\": %.6f, \"store_hits\": %zu, \"store_misses\": %zu, "
        "\"store_writes\": %zu}",
        first ? "" : ",\n", p->key.c_str(), p->collapse, p->compile,
        p->decode,
        p->goodrun, p->grade, p->total(), p->stats.store_hits,
        p->stats.store_misses, p->stats.store_writes);
    first = false;
  }
  std::fprintf(json,
               "\n  ],\n  \"prep_cold_s\": %.6f,\n  \"prep_warm_s\": %.6f,\n"
               "  \"prep_speedup\": %.3f,\n  \"overall_fc\": %.6f\n}\n",
               prep_cold, prep_warm,
               prep_warm > 0 ? prep_cold / prep_warm : 0.0, warm.fc);
  std::fclose(json);
  std::puts("wrote BENCH_store.json");
  return 0;
}
