// Extension — March algorithms vs the paper's checkerboard scheme on the
// register file. The memory-test literature's standard algorithms (MATS+,
// March X, March C-) transplant directly into the SBST setting under the
// same two-phase constraint; this bench compares their fault coverage and
// routine cost against the paper-style RegD (I) routine.
#include <cstdio>

#include "common/tablefmt.hpp"
#include "core/evaluate.hpp"
#include "core/march.hpp"

using namespace sbst;
using namespace sbst::core;

namespace {

struct Row {
  std::string label;
  std::size_t words;
  std::uint64_t cycles;
  double fc;
};

Row run_routine(const ProcessorModel& model, const std::string& label,
                const Routine& routine) {
  TestProgramBuilder builder;
  const TestProgram p = builder.build_standalone(routine);
  TraceCollector trace(model);
  trace.restrict_regfile(p.sections[0].begin_addr, p.sections[0].end_addr);
  sim::Cpu cpu;
  cpu.reset();
  cpu.load(p.image);
  cpu.set_hooks(&trace);
  const sim::ExecStats stats = cpu.run(p.entry);
  const ComponentInfo& rf = model.component(CutId::kRegisterFile);
  fault::FaultUniverse u(rf.netlist);
  const double fc =
      fault::simulate_seq(rf.netlist, u.collapsed(), trace.regfile_stimulus())
          .percent();
  return {label, p.sections[0].size_words(), stats.cpu_cycles, fc};
}

}  // namespace

int main() {
  std::puts("==============================================================");
  std::puts(" Extension: March algorithms vs the paper's RegD(I) scheme");
  std::puts("==============================================================");
  ProcessorModel model;
  CodegenOptions opts;

  Table t({"Routine", "Ops/cell", "Words", "CPU cycles", "RegFile FC (%)"});
  const Row paper = run_routine(model, "RegD (I) checkerboard+unique",
                                make_regfile_routine(opts));
  t.add_row({paper.label, "~7", Table::num(static_cast<std::uint64_t>(
                                    paper.words)),
             Table::num(paper.cycles), Table::num(paper.fc, 2)});
  for (const MarchAlgorithm* alg :
       {&mats_plus(), &march_x(), &march_c_minus()}) {
    const Row r = run_routine(
        model, alg->name, make_march_regfile_routine(*alg, opts));
    t.add_row({r.label,
               Table::num(static_cast<std::uint64_t>(alg->ops_per_cell())) +
                   "n",
               Table::num(static_cast<std::uint64_t>(r.words)),
               Table::num(r.cycles), Table::num(r.fc, 2)});
  }
  t.print();

  // Netlist-level comparison with richer backgrounds (what the algorithms
  // could do with more data polarities).
  std::puts("\nNetlist-level March C- with growing background sets:");
  const netlist::Netlist& rf = model.component(CutId::kRegisterFile).netlist;
  fault::FaultUniverse u(rf);
  Table b({"Backgrounds", "Stimulus cycles", "FC (%)"});
  const std::vector<std::vector<std::uint32_t>> sets = {
      {0x00000000u},
      {0x00000000u, 0x55555555u},
      {0x00000000u, 0x55555555u, 0x33333333u, 0x0f0f0f0fu},
  };
  for (const auto& bgs : sets) {
    const auto seq = march_regfile_stimulus(rf, march_c_minus(), 1, 31, bgs);
    const auto cov = fault::simulate_seq(rf, u.collapsed(), seq);
    b.add_row({Table::num(static_cast<std::uint64_t>(bgs.size())),
               Table::num(static_cast<std::uint64_t>(seq.size())),
               Table::num(cov.percent(), 2)});
  }
  b.print();
  std::puts("\n-> the classic algorithms transplant cleanly (March C- ~93%"
            " as a routine, ~95% at netlist level), but the paper-style"
            " scheme still wins: its unique-value pass catches the decoder-"
            "aliasing and read-mux faults that uniform March backgrounds"
            " cannot distinguish, at a lower ops/cell budget.");
  return 0;
}
