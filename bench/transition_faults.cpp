// Extension — transition (gross-delay) faults: the follow-on direction of
// the SBST literature (software-based delay fault testing). The same
// self-test routines apply pattern *pairs* through consecutive
// instructions; this bench grades the stuck-at-oriented pattern streams
// against the transition fault model and shows what at-speed SBST buys.
#include <cstdio>

#include "atpg/testgen.hpp"
#include "common/tablefmt.hpp"
#include "core/evaluate.hpp"
#include "fault/transition.hpp"

using namespace sbst;
using namespace sbst::core;

int main() {
  std::puts("==============================================================");
  std::puts(" Extension: transition-fault grading of the SBST streams");
  std::puts("==============================================================");
  ProcessorModel model;

  // Capture the real instruction-applied pattern streams.
  TestProgramBuilder builder;
  builder.add(make_alu_routine(builder.options()))
      .add(make_shifter_routine(model, builder.options()));
  const TestProgram program = builder.build();
  TraceCollector trace(model);
  sim::Cpu cpu;
  cpu.reset();
  cpu.load(program.image);
  cpu.set_hooks(&trace);
  cpu.run(program.entry);

  Table t({"Component", "Stuck-at FC (%)", "Transition FC (%)",
           "Transition faults"});
  struct Row {
    CutId cut;
    const fault::PatternSet* stream;
  };
  for (const Row& row : {Row{CutId::kAlu, &trace.alu_patterns()},
                         Row{CutId::kShifter, &trace.shifter_patterns()}}) {
    const ComponentInfo& info = model.component(row.cut);
    fault::FaultUniverse stuck(info.netlist);
    const auto sa =
        fault::simulate_comb(info.netlist, stuck.collapsed(), *row.stream);
    const auto tf = fault::enumerate_transition_faults(info.netlist);
    const auto tr = fault::simulate_transition(info.netlist, tf, *row.stream);
    t.add_row({info.name, Table::num(sa.percent(), 2),
               Table::num(tr.percent(), 2),
               Table::num(static_cast<std::uint64_t>(tf.size()))});
  }
  t.print();

  std::puts("\nPattern-pair sensitivity: pseudorandom streams of growing "
            "length on the ALU");
  const netlist::Netlist& alu = model.component(CutId::kAlu).netlist;
  const auto tf = fault::enumerate_transition_faults(alu);
  fault::FaultUniverse stuck(alu);
  Table p({"Random patterns", "Stuck-at FC (%)", "Transition FC (%)"});
  for (std::size_t n : {32u, 128u, 512u, 2048u}) {
    const fault::PatternSet ps = atpg::generate_random_tests(alu, n, 5);
    p.add_row({Table::num(static_cast<std::uint64_t>(n)),
               Table::num(fault::simulate_comb(alu, stuck.collapsed(), ps)
                              .percent(),
                          2),
               Table::num(fault::simulate_transition(alu, tf, ps).percent(),
                          2)});
  }
  p.print();
  std::puts("\n-> transition coverage trails stuck-at coverage (every "
            "detection needs a launch pattern immediately before it), but "
            "at-speed SBST execution delivers it with the same routines -- "
            "the property later delay-fault SBST papers build on.");
  return 0;
}
