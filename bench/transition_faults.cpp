// Extension — per-model grading of the SBST streams: the follow-on
// direction of the SBST literature (software-based delay fault testing and
// on-line soft-error screening). The same self-test routines apply pattern
// *pairs* through consecutive instructions; this bench grades the
// stuck-at-oriented pattern streams under every model of the unified fault
// taxonomy (stuck-at / transition / transient-SEU / intermittent) through
// the same FaultUniverse + simulate_comb front door and shows what at-speed
// SBST buys. The taxonomy-routed transition grading is cross-checked
// flag-for-flag against the legacy simulate_transition oracle.
//
// Emits a table to stdout and machine-readable BENCH_transition.json with
// one row per (component, model): model, faults, fc_percent,
// faults_graded_per_sec.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "atpg/testgen.hpp"
#include "common/tablefmt.hpp"
#include "core/evaluate.hpp"
#include "fault/transition.hpp"

using namespace sbst;
using namespace sbst::core;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

constexpr fault::FaultModel kModels[] = {
    fault::FaultModel::kStuckAt, fault::FaultModel::kTransition,
    fault::FaultModel::kTransientSEU, fault::FaultModel::kIntermittent};

struct BenchRow {
  std::string component;
  fault::FaultModel model;
  std::size_t faults = 0;
  double fc = 0;
  double seconds = 0;
  double faults_per_sec = 0;
};

}  // namespace

int main() {
  std::puts("==============================================================");
  std::puts(" Extension: per-model grading of the SBST streams");
  std::puts("==============================================================");
  ProcessorModel model;

  // Capture the real instruction-applied pattern streams.
  TestProgramBuilder builder;
  builder.add(make_alu_routine(builder.options()))
      .add(make_shifter_routine(model, builder.options()));
  const TestProgram program = builder.build();
  TraceCollector trace(model);
  sim::Cpu cpu;
  cpu.reset();
  cpu.load(program.image);
  cpu.set_hooks(&trace);
  cpu.run(program.entry);

  std::vector<BenchRow> rows;
  Table t({"Component", "Model", "Faults", "FC (%)", "Faults / s"});
  struct Cut {
    CutId cut;
    const fault::PatternSet* stream;
  };
  for (const Cut& c : {Cut{CutId::kAlu, &trace.alu_patterns()},
                       Cut{CutId::kShifter, &trace.shifter_patterns()}}) {
    const ComponentInfo& info = model.component(c.cut);
    for (const fault::FaultModel fm : kModels) {
      const fault::FaultUniverse universe(info.netlist, fm);
      BenchRow row;
      row.component = info.name;
      row.model = fm;
      row.faults = universe.size();
      const auto t0 = std::chrono::steady_clock::now();
      const auto res =
          fault::simulate_comb(info.netlist, universe.collapsed(), *c.stream);
      row.seconds = seconds_since(t0);
      row.fc = res.percent();
      row.faults_per_sec = static_cast<double>(row.faults) / row.seconds;
      rows.push_back(row);
      t.add_row({row.component, fault::fault_model_name(fm),
                 Table::num(static_cast<std::uint64_t>(row.faults)),
                 Table::num(row.fc, 2), Table::num(row.faults_per_sec, 0)});

      if (fm == fault::FaultModel::kTransition) {
        // The unified-universe transition grading must match the legacy
        // pairwise oracle flag-for-flag (enumeration order is pinned).
        const auto tf = fault::enumerate_transition_faults(info.netlist);
        const auto legacy =
            fault::simulate_transition(info.netlist, tf, *c.stream);
        if (legacy.detected_flags != res.detected_flags) {
          std::fprintf(stderr,
                       "FAIL: %s taxonomy-routed transition flags differ "
                       "from the legacy simulate_transition oracle\n",
                       info.name.c_str());
          return 1;
        }
      }
    }
  }
  t.print();

  std::puts("\nPattern-pair sensitivity: pseudorandom streams of growing "
            "length on the ALU");
  const netlist::Netlist& alu = model.component(CutId::kAlu).netlist;
  const fault::FaultUniverse stuck(alu);
  const fault::FaultUniverse transition(alu, fault::FaultModel::kTransition);
  Table p({"Random patterns", "Stuck-at FC (%)", "Transition FC (%)"});
  for (std::size_t n : {32u, 128u, 512u, 2048u}) {
    const fault::PatternSet ps = atpg::generate_random_tests(alu, n, 5);
    p.add_row({Table::num(static_cast<std::uint64_t>(n)),
               Table::num(fault::simulate_comb(alu, stuck.collapsed(), ps)
                              .percent(),
                          2),
               Table::num(
                   fault::simulate_comb(alu, transition.collapsed(), ps)
                       .percent(),
                   2)});
  }
  p.print();
  std::puts("\n-> transition coverage trails stuck-at coverage (every "
            "detection needs a launch pattern immediately before it), but "
            "at-speed SBST execution delivers it with the same routines -- "
            "the property later delay-fault SBST papers build on.");

  std::FILE* json = std::fopen("BENCH_transition.json", "w");
  if (!json) {
    std::perror("BENCH_transition.json");
    return 1;
  }
  std::fprintf(json, "{\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    std::fprintf(json,
                 "    {\"component\": \"%s\", \"model\": \"%s\", "
                 "\"faults\": %zu, \"fc_percent\": %.2f, "
                 "\"seconds\": %.6f, \"faults_graded_per_sec\": %.0f}%s\n",
                 r.component.c_str(), fault::fault_model_name(r.model),
                 r.faults, r.fc, r.seconds, r.faults_per_sec,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::puts("wrote BENCH_transition.json");
  return 0;
}
