// Ablation — response compaction: the paper's shared 8-word software MISR
// ("with negligible aliasing") vs a 1-word inline XOR accumulate.
//
// XOR is cheaper per response but order-insensitive and self-cancelling:
// an error appearing in an even number of responses at the same bit
// positions vanishes. The MISR's shift-and-feedback makes each response's
// contribution position-dependent, driving aliasing to ~2^-32. This bench
// measures both costs and real aliasing escapes under gate-level fault
// injection.
#include <cstdio>

#include "common/rng.hpp"
#include "common/tablefmt.hpp"
#include "core/inject.hpp"
#include "core/program.hpp"
#include "core/session.hpp"
#include "core/tpg.hpp"
#include "sim/cpu.hpp"

using namespace sbst;
using namespace sbst::core;

namespace {

struct Variant {
  const char* label;
  Compaction compaction;
  TestProgram program;
  sim::ExecStats stats;
};

}  // namespace

int main() {
  std::puts("==============================================================");
  std::puts(" Ablation: MISR subroutine vs inline XOR compaction");
  std::puts("==============================================================");
  ProcessorModel model;
  TestProgramBuilder builder;

  // Same regular ALU pattern list through both compaction schemes.
  const auto tests = regular_alu_tests(32);
  std::vector<Variant> variants;
  for (auto [label, compaction] :
       {std::pair{"MISR subroutine (paper)", Compaction::kMisr},
        std::pair{"inline XOR accumulate", Compaction::kXorAccumulate}}) {
    Variant v{label, compaction,
              builder.build_standalone(make_fig1_immediate_routine(
                  tests, {}, compaction)),
              {}};
    sim::Cpu cpu;
    cpu.reset();
    cpu.load(v.program.image);
    v.stats = cpu.run(v.program.entry);
    variants.push_back(std::move(v));
  }

  Table t({"Compaction", "Words", "CPU cycles", "Cycles per response"});
  for (const Variant& v : variants) {
    t.add_row({v.label,
               Table::num(static_cast<std::uint64_t>(
                   v.program.image.size_words())),
               Table::num(v.stats.cpu_cycles),
               Table::num(static_cast<double>(v.stats.cpu_cycles) /
                              static_cast<double>(tests.size()),
                          1)});
  }
  t.print();

  // Aliasing study: inject sampled ALU faults under both schemes and count
  // escapes among faults whose results were actually corrupted.
  std::puts("\nAliasing under gate-level fault injection (sampled faults "
            "whose responses were corrupted at least once):");
  // One session: the ALU universe is collapsed once and the compiled netlist
  // is shared across all 80 injection campaigns.
  GradingSession session(model);
  const fault::FaultUniverse& universe = session.universe(CutId::kAlu);
  Rng rng(77);
  std::vector<fault::Fault> sample;
  for (int i = 0; i < 40; ++i) {
    sample.push_back(universe.collapsed()[rng.below(universe.size())]);
  }

  Table a({"Compaction", "Corrupting faults", "Detected", "Aliased escapes"});
  for (const Variant& v : variants) {
    std::size_t corrupting = 0, detected = 0;
    for (const fault::Fault& f : sample) {
      const InjectionOutcome out =
          run_with_injection(session, v.program, CutId::kAlu, f);
      if (out.corrupted_results == 0) continue;  // never excited: not
                                                 // compaction's fault
      ++corrupting;
      detected += out.detected;
    }
    a.add_row({v.label,
               Table::num(static_cast<std::uint64_t>(corrupting)),
               Table::num(static_cast<std::uint64_t>(detected)),
               Table::num(static_cast<std::uint64_t>(corrupting - detected))});
  }
  a.print();
  std::puts("\n-> XOR halves the per-response cost but loses corrupted "
            "responses to self-cancellation;\n   the paper's software MISR "
            "keeps aliasing negligible for a 10-cycle absorb.");
  return 0;
}
