// Experiment E3 — on-line periodic testing claims (paper §1-§2):
//  * permanent faults are detected with latency bounded by the test period;
//  * intermittent faults "with fairly large duration" are detected when the
//    test is applied periodically;
//  * short transients are the domain of concurrent schemes;
//  * CPU overhead is test_time/period and stays negligible because the SBST
//    program runs in far less than a quantum.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/rng.hpp"
#include "common/tablefmt.hpp"
#include "core/evaluate.hpp"
#include "core/inject.hpp"
#include "core/periodic.hpp"
#include "fault/sim.hpp"
#include "fault/thread_pool.hpp"

using namespace sbst;
using namespace sbst::core;

int main() {
  std::puts("==============================================================");
  std::puts(" E3: on-line periodic testing (latency / detection / overhead)");
  std::puts("==============================================================");

  // Derive the test execution time and coverage from the real SBST program.
  ProcessorModel model;
  TestProgramBuilder builder;
  builder.add_default_routines(model);
  const TestProgram program = builder.build();
  const ProgramEvaluation ev = evaluate_program(model, builder, program);
  const double test_exec_s =
      static_cast<double>(ev.total.analytic_total_cycles(0.05, 20)) / 57e6;
  const double coverage = ev.overall_fc() / 100.0;
  std::printf("SBST program: exec %.1f us, overall FC %.1f%%\n\n",
              1e6 * test_exec_s, 100 * coverage);

  Rng rng(2026);
  PeriodicConfig cfg;
  cfg.test_exec_s = test_exec_s;
  cfg.fault_coverage = coverage;
  cfg.horizon_s = 600.0;

  std::puts("Permanent faults: latency and detection vs test period");
  Table t({"Test period (s)", "Detection prob.", "Mean latency (s)",
           "Max latency (s)", "CPU overhead (%)"});
  for (double period : {0.1, 0.5, 1.0, 5.0, 30.0}) {
    cfg.test_period_s = period;
    const PeriodicResult r = simulate_periodic(
        cfg, {.kind = FaultKind::kPermanent, .arrival_s = 10.0}, 400, rng);
    t.add_row({Table::num(period, 1), Table::num(r.detection_probability, 3),
               Table::num(r.mean_latency_s, 3),
               Table::num(r.max_latency_s, 3),
               Table::num(100 * r.cpu_overhead, 4)});
  }
  t.print();

  std::puts("\nIntermittent faults (period 2 s): detection vs active duration");
  cfg.test_period_s = 0.5;
  Table i({"Active per 2 s (s)", "Duty (%)", "Detection prob.",
           "Mean latency (s)"});
  for (double active : {0.001, 0.01, 0.1, 0.5, 1.0, 1.9}) {
    const FaultProcess f{.kind = FaultKind::kIntermittent,
                         .arrival_s = 5.0,
                         .period_s = 2.0,
                         .active_s = active};
    const PeriodicResult r = simulate_periodic(cfg, f, 400, rng);
    i.add_row({Table::num(active, 3),
               Table::num(100 * intermittent_duty_cycle(f), 1),
               Table::num(r.detection_probability, 3),
               Table::num(r.mean_latency_s, 2)});
  }
  i.print();
  std::puts("-> intermittent faults with fairly large duration are detected"
            " (paper s1); very short activations escape, as conceded.");

  std::puts("\nTransient faults: detection vs duration (period 0.5 s)");
  Table tr({"Transient duration (s)", "Detection prob."});
  for (double active : {1e-4, 1e-2, 0.25, 1.0, 10.0}) {
    const FaultProcess f{.kind = FaultKind::kTransient,
                         .arrival_s = 7.0,
                         .active_s = active};
    const PeriodicResult r = simulate_periodic(cfg, f, 400, rng);
    tr.add_row({Table::num(active, 4),
                Table::num(r.detection_probability, 3)});
  }
  tr.print();

  std::puts("\nLaunch policies (permanent fault, period 1 s):");
  Table p({"Policy", "Detection prob.", "Mean latency (s)"});
  for (LaunchPolicy policy :
       {LaunchPolicy::kTimer, LaunchPolicy::kIdle, LaunchPolicy::kStartup}) {
    PeriodicConfig c = cfg;
    c.test_period_s = 1.0;
    c.policy = policy;
    const PeriodicResult r = simulate_periodic(
        c, {.kind = FaultKind::kPermanent, .arrival_s = 20.0}, 400, rng);
    const char* name = policy == LaunchPolicy::kTimer  ? "timer"
                       : policy == LaunchPolicy::kIdle ? "idle slots"
                                                       : "startup only";
    p.add_row({name, Table::num(r.detection_probability, 3),
               Table::num(r.mean_latency_s, 2)});
  }
  p.print();
  std::puts("-> startup-only testing leaves faults undetected for the whole"
            " uptime (paper: 'imposes large fault detection latency').");

  std::printf(
      "\nQuantum check: the SBST program (%.1f us) uses %.5f%% of a 200 ms "
      "quantum -- periodic testing never spans a context switch.\n",
      1e6 * test_exec_s, 100 * test_exec_s / 0.2);

  // What spanning quanta would cost (paper: "this will lead to further
  // system operation overhead due to larger context switch overheads").
  std::puts("\nQuantum chunking: overhead if the quantum were tiny");
  const std::uint64_t program_cycles =
      ev.total.analytic_total_cycles(0.05, 20);
  Table q({"Quantum (cycles)", "Chunks", "Switch+refill cycles",
           "Overhead (%)"});
  for (std::uint64_t quantum :
       {std::uint64_t{11400000}, std::uint64_t{57000},
        std::uint64_t{20000}, std::uint64_t{5000}}) {
    const ChunkingReport r =
        chunked_execution(program_cycles, quantum, 5000, 20000);
    q.add_row({Table::num(quantum),
               Table::num(static_cast<std::uint64_t>(r.chunks)),
               Table::num(r.switch_overhead_cycles + r.cache_refill_cycles),
               Table::num(100 * r.overhead_fraction(), 1)});
  }
  q.print();
  std::puts("-> with a realistic quantum (first row: 200 ms at 57 MHz) the"
            " whole test is one chunk; only absurdly small quanta make the"
            " paper's warned-about context-switch overhead material.");

  // Machine-readable campaign timing for CI trend tracking. A periodic
  // testing deployment re-runs the injected SBST program once per modelled
  // fault; this measures that campaign serial (1 worker) vs pooled, plus
  // the Monte-Carlo periodic campaign itself. BENCH_periodic.json + stderr
  // only; stdout above stays untouched.
  {
    using clock = std::chrono::steady_clock;
    auto seconds = [](clock::time_point a, clock::time_point b) {
      return std::chrono::duration<double>(b - a).count();
    };
    // Multiplier faults corrupt data but never control flow, so every
    // faulty run halts normally and the campaign finishes in seconds while
    // still measuring the real scheduling path. (A shifter fault can hang
    // the program into the instruction cap: ~14 s per fault.)
    const netlist::Netlist& cut_nl =
        model.component(CutId::kMultiplier).netlist;
    std::vector<fault::Fault> faults = fault::FaultUniverse(cut_nl).collapsed();
    if (faults.size() > 32) faults.resize(32);  // keep the bench short

    GradingSession serial_session(model, {.num_threads = 1});
    const clock::time_point t0 = clock::now();
    const auto serial_out = run_injection_campaign(serial_session, program,
                                                   CutId::kMultiplier, faults);
    const clock::time_point t1 = clock::now();
    GradingSession pooled_session(model, {});
    const auto pooled_out = run_injection_campaign(pooled_session, program,
                                                   CutId::kMultiplier, faults);
    const clock::time_point t2 = clock::now();
    const double serial_s = seconds(t0, t1);
    const double pooled_s = seconds(t1, t2);
    std::size_t detected = 0;
    for (std::size_t k = 0; k < pooled_out.size(); ++k) {
      if (pooled_out[k].detected) ++detected;
      if (pooled_out[k].detected != serial_out[k].detected) {
        std::fprintf(stderr, "# campaign mismatch at fault %zu\n", k);
        return 1;
      }
    }

    fault::ThreadPool mc_pool(0);  // hardware concurrency
    std::vector<FaultProcess> processes(
        64, {.kind = FaultKind::kPermanent, .arrival_s = 10.0});
    const clock::time_point t3 = clock::now();
    const auto mc = simulate_periodic_campaign(mc_pool, cfg, processes, 400,
                                               2026);
    const clock::time_point t4 = clock::now();

    if (std::FILE* f = std::fopen("BENCH_periodic.json", "w")) {
      std::fprintf(
          f,
          "{\n"
          "  \"bench\": \"periodic_testing\",\n"
          "  \"injection_faults\": %zu,\n"
          "  \"injection_detected\": %zu,\n"
          "  \"injection_serial_s\": %.4f,\n"
          "  \"injection_pooled_s\": %.4f,\n"
          "  \"injection_per_fault_ms\": %.4f,\n"
          "  \"injection_pool_speedup\": %.3f,\n"
          "  \"periodic_mc_faults\": %zu,\n"
          "  \"periodic_mc_s\": %.4f\n"
          "}\n",
          faults.size(), detected, serial_s, pooled_s,
          1e3 * pooled_s / static_cast<double>(faults.size()),
          serial_s / pooled_s, mc.size(), seconds(t3, t4));
      std::fclose(f);
    }
    std::fprintf(stderr,
                 "# injection campaign: %zu faults, serial %.3f s, pooled "
                 "%.3f s (%.2fx, %.3f ms/fault) -> BENCH_periodic.json\n",
                 faults.size(), serial_s, pooled_s, serial_s / pooled_s,
                 1e3 * pooled_s / static_cast<double>(faults.size()));
  }
  return 0;
}
