// Experiment E3 — on-line periodic testing claims (paper §1-§2):
//  * permanent faults are detected with latency bounded by the test period;
//  * intermittent faults "with fairly large duration" are detected when the
//    test is applied periodically;
//  * short transients are the domain of concurrent schemes;
//  * CPU overhead is test_time/period and stays negligible because the SBST
//    program runs in far less than a quantum.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/rng.hpp"
#include "common/tablefmt.hpp"
#include "core/evaluate.hpp"
#include "core/inject.hpp"
#include "core/periodic.hpp"
#include "fault/sim.hpp"
#include "fault/thread_pool.hpp"

using namespace sbst;
using namespace sbst::core;

int main() {
  std::puts("==============================================================");
  std::puts(" E3: on-line periodic testing (latency / detection / overhead)");
  std::puts("==============================================================");

  // Derive the test execution time and coverage from the real SBST program.
  ProcessorModel model;
  TestProgramBuilder builder;
  builder.add_default_routines(model);
  const TestProgram program = builder.build();
  const ProgramEvaluation ev = evaluate_program(model, builder, program);
  const double test_exec_s =
      static_cast<double>(ev.total.analytic_total_cycles(0.05, 20)) / 57e6;
  const double coverage = ev.overall_fc() / 100.0;
  std::printf("SBST program: exec %.1f us, overall FC %.1f%%\n\n",
              1e6 * test_exec_s, 100 * coverage);

  Rng rng(2026);
  PeriodicConfig cfg;
  cfg.test_exec_s = test_exec_s;
  cfg.fault_coverage = coverage;
  cfg.horizon_s = 600.0;

  std::puts("Permanent faults: latency and detection vs test period");
  Table t({"Test period (s)", "Detection prob.", "Mean latency (s)",
           "Max latency (s)", "CPU overhead (%)"});
  for (double period : {0.1, 0.5, 1.0, 5.0, 30.0}) {
    cfg.test_period_s = period;
    const PeriodicResult r = simulate_periodic(
        cfg, {.kind = FaultKind::kPermanent, .arrival_s = 10.0}, 400, rng);
    t.add_row({Table::num(period, 1), Table::num(r.detection_probability, 3),
               Table::num(r.mean_latency_s, 3),
               Table::num(r.max_latency_s, 3),
               Table::num(100 * r.cpu_overhead, 4)});
  }
  t.print();

  std::puts("\nIntermittent faults (period 2 s): detection vs active duration");
  cfg.test_period_s = 0.5;
  Table i({"Active per 2 s (s)", "Duty (%)", "Detection prob.",
           "Mean latency (s)"});
  for (double active : {0.001, 0.01, 0.1, 0.5, 1.0, 1.9}) {
    const FaultProcess f{.kind = FaultKind::kIntermittent,
                         .arrival_s = 5.0,
                         .period_s = 2.0,
                         .active_s = active};
    const PeriodicResult r = simulate_periodic(cfg, f, 400, rng);
    i.add_row({Table::num(active, 3),
               Table::num(100 * intermittent_duty_cycle(f), 1),
               Table::num(r.detection_probability, 3),
               Table::num(r.mean_latency_s, 2)});
  }
  i.print();
  std::puts("-> intermittent faults with fairly large duration are detected"
            " (paper s1); very short activations escape, as conceded.");

  std::puts("\nTransient faults: detection vs duration (period 0.5 s)");
  Table tr({"Transient duration (s)", "Detection prob."});
  for (double active : {1e-4, 1e-2, 0.25, 1.0, 10.0}) {
    const FaultProcess f{.kind = FaultKind::kTransient,
                         .arrival_s = 7.0,
                         .active_s = active};
    const PeriodicResult r = simulate_periodic(cfg, f, 400, rng);
    tr.add_row({Table::num(active, 4),
                Table::num(r.detection_probability, 3)});
  }
  tr.print();

  std::puts("\nLaunch policies (permanent fault, period 1 s):");
  Table p({"Policy", "Detection prob.", "Mean latency (s)"});
  for (LaunchPolicy policy :
       {LaunchPolicy::kTimer, LaunchPolicy::kIdle, LaunchPolicy::kStartup}) {
    PeriodicConfig c = cfg;
    c.test_period_s = 1.0;
    c.policy = policy;
    const PeriodicResult r = simulate_periodic(
        c, {.kind = FaultKind::kPermanent, .arrival_s = 20.0}, 400, rng);
    const char* name = policy == LaunchPolicy::kTimer  ? "timer"
                       : policy == LaunchPolicy::kIdle ? "idle slots"
                                                       : "startup only";
    p.add_row({name, Table::num(r.detection_probability, 3),
               Table::num(r.mean_latency_s, 2)});
  }
  p.print();
  std::puts("-> startup-only testing leaves faults undetected for the whole"
            " uptime (paper: 'imposes large fault detection latency').");

  std::printf(
      "\nQuantum check: the SBST program (%.1f us) uses %.5f%% of a 200 ms "
      "quantum -- periodic testing never spans a context switch.\n",
      1e6 * test_exec_s, 100 * test_exec_s / 0.2);

  // What spanning quanta would cost (paper: "this will lead to further
  // system operation overhead due to larger context switch overheads").
  std::puts("\nQuantum chunking: overhead if the quantum were tiny");
  const std::uint64_t program_cycles =
      ev.total.analytic_total_cycles(0.05, 20);
  Table q({"Quantum (cycles)", "Chunks", "Switch+refill cycles",
           "Overhead (%)"});
  for (std::uint64_t quantum :
       {std::uint64_t{11400000}, std::uint64_t{57000},
        std::uint64_t{20000}, std::uint64_t{5000}}) {
    const ChunkingReport r =
        chunked_execution(program_cycles, quantum, 5000, 20000);
    q.add_row({Table::num(quantum),
               Table::num(static_cast<std::uint64_t>(r.chunks)),
               Table::num(r.switch_overhead_cycles + r.cache_refill_cycles),
               Table::num(100 * r.overhead_fraction(), 1)});
  }
  q.print();
  std::puts("-> with a realistic quantum (first row: 200 ms at 57 MHz) the"
            " whole test is one chunk; only absurdly small quanta make the"
            " paper's warned-about context-switch overhead material.");

  // Machine-readable campaign timing for CI trend tracking. A periodic
  // testing deployment re-runs the injected SBST program once per modelled
  // fault; this measures that campaign serial (1 worker) vs pooled, runs
  // the FULL multiplier + shifter fault lists under the hardened runtime
  // (watchdog budgets + store guard), and feeds the measured
  // signature-vs-symptom split back into the Monte-Carlo periodic model.
  // BENCH_periodic.json + stderr carry the timings; the stdout tables above
  // stay untouched.
  using clock = std::chrono::steady_clock;
  auto seconds = [](clock::time_point a, clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  };

  // Serial-vs-pooled scheduling on a fixed 32-fault subset per CUT. The
  // shifter is affordable again: its faults hang the program, and the
  // watchdog budget ends each hanging run after ~8x the good run's
  // resources instead of the legacy global 1<<24-instruction cap (~14 s
  // per fault).
  double subset_serial_s = 0, subset_pooled_s = 0;
  std::size_t subset_faults = 0, subset_detected = 0;
  {
    GradingSession serial_session(model, {.num_threads = 1});
    GradingSession pooled_session(model, {});
    for (CutId cut : {CutId::kMultiplier, CutId::kShifter}) {
      std::vector<fault::Fault> faults =
          fault::FaultUniverse(model.component(cut).netlist).collapsed();
      if (faults.size() > 32) faults.resize(32);
      const clock::time_point t0 = clock::now();
      const auto serial_out =
          run_injection_campaign(serial_session, program, cut, faults);
      const clock::time_point t1 = clock::now();
      const auto pooled_out =
          run_injection_campaign(pooled_session, program, cut, faults);
      const clock::time_point t2 = clock::now();
      subset_serial_s += seconds(t0, t1);
      subset_pooled_s += seconds(t1, t2);
      subset_faults += faults.size();
      for (std::size_t k = 0; k < pooled_out.size(); ++k) {
        if (pooled_out[k].detected) ++subset_detected;
        if (pooled_out[k].detected != serial_out[k].detected ||
            pooled_out[k].outcome != serial_out[k].outcome) {
          std::fprintf(stderr, "# campaign mismatch at fault %zu\n", k);
          return 1;
        }
      }
    }
  }
  std::fprintf(stderr,
               "# injection subsets: %zu faults, serial %.3f s, pooled "
               "%.3f s (%.2fx, %.3f ms/fault)\n",
               subset_faults, subset_serial_s, subset_pooled_s,
               subset_serial_s / subset_pooled_s,
               1e3 * subset_pooled_s / static_cast<double>(subset_faults));

  // Full-universe campaigns: every collapsed multiplier and shifter fault
  // through a guarded whole-program run, classified by RunOutcome. The
  // watchdog makes this tractable; no run may fall through to the legacy
  // global instruction cap.
  std::puts("\nOutcome taxonomy: full multiplier + shifter fault lists");
  struct FullCampaign {
    const char* name = "";
    CutId cut = CutId::kMultiplier;
    std::size_t faults = 0;
    OutcomeHistogram h;
    double wall_s = 0;
    std::uint64_t max_instructions = 0;
  };
  FullCampaign full[2];
  full[0].name = "Parallel Mul.";
  full[0].cut = CutId::kMultiplier;
  full[1].name = "Shifter";
  full[1].cut = CutId::kShifter;
  OutcomeHistogram totals;
  GradingSession session(model, {});
  for (FullCampaign& fc : full) {
    const std::vector<fault::Fault>& faults =
        session.universe(fc.cut).collapsed();
    fc.faults = faults.size();
    const clock::time_point t0 = clock::now();
    const auto out = run_injection_campaign(session, program, fc.cut, faults);
    fc.wall_s = seconds(t0, clock::now());
    fc.h = histogram_of(out);
    for (const InjectionOutcome& o : out) {
      fc.max_instructions =
          std::max(fc.max_instructions, o.faulty_stats.instructions);
    }
    if (fc.max_instructions >= (std::uint64_t{1} << 24)) {
      std::fprintf(stderr, "# %s: a run hit the legacy instruction cap\n",
                   fc.name);
      return 1;
    }
    for (std::size_t i = 0; i < kRunOutcomeCount; ++i) {
      totals.counts[i] += fc.h.counts[i];
    }
    std::fprintf(stderr, "# full campaign %s: %zu faults, %.1f s\n", fc.name,
                 fc.faults, fc.wall_s);
  }
  Table oc({"Component", "Faults", "Sig", "Hang", "Trap", "Wild", "Ok",
            "Infra", "Det (%)"});
  for (const FullCampaign& fc : full) {
    oc.add_row({fc.name, Table::num(static_cast<std::uint64_t>(fc.faults)),
                Table::num(static_cast<std::uint64_t>(
                    fc.h.detected_by_signature())),
                Table::num(static_cast<std::uint64_t>(
                    fc.h.count(RunOutcome::kDetectedHang))),
                Table::num(static_cast<std::uint64_t>(
                    fc.h.count(RunOutcome::kDetectedTrap))),
                Table::num(static_cast<std::uint64_t>(
                    fc.h.count(RunOutcome::kDetectedWildStore))),
                Table::num(static_cast<std::uint64_t>(
                    fc.h.count(RunOutcome::kOkMatch))),
                Table::num(static_cast<std::uint64_t>(
                    fc.h.count(RunOutcome::kInfraError))),
                Table::num(100.0 * static_cast<double>(fc.h.detected()) /
                               static_cast<double>(fc.h.total()),
                           1)});
  }
  oc.print();
  const double hang_fraction =
      totals.detected() == 0
          ? 0.0
          : static_cast<double>(totals.detected_by_symptom()) /
                static_cast<double>(totals.detected());
  std::printf("-> %.1f%% of detections are symptoms (hang/trap/wild store):"
              " the OS watchdog reports them without reading a signature.\n",
              100.0 * hang_fraction);

  // Feed the measured split back into the periodic model: symptom
  // detections complete when the watchdog fires (a budget of ~8x the test's
  // execution time), not at the signature unload.
  std::puts("\nPeriodic testing with the measured symptom split");
  PeriodicConfig hang_cfg = cfg;
  hang_cfg.test_period_s = 1.0;
  hang_cfg.hang_fraction = hang_fraction;
  hang_cfg.watchdog_s = 8.0 * test_exec_s;
  const PeriodicResult hang_r = simulate_periodic(
      hang_cfg, {.kind = FaultKind::kPermanent, .arrival_s = 10.0}, 400, rng);
  std::printf("detected %zu/%zu (%zu by watchdog), mean latency %.3f s,"
              " mean watchdog latency %.3f s\n",
              hang_r.detected, hang_r.trials, hang_r.detected_by_hang,
              hang_r.mean_latency_s, hang_r.mean_hang_latency_s);

  fault::ThreadPool mc_pool(0);  // hardware concurrency
  std::vector<FaultProcess> processes(
      64, {.kind = FaultKind::kPermanent, .arrival_s = 10.0});
  const clock::time_point t3 = clock::now();
  const auto mc = simulate_periodic_campaign(mc_pool, cfg, processes, 400,
                                             2026);
  const clock::time_point t4 = clock::now();

  if (std::FILE* f = std::fopen("BENCH_periodic.json", "w")) {
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"periodic_testing\",\n"
        "  \"injection_faults\": %zu,\n"
        "  \"injection_detected\": %zu,\n"
        "  \"injection_serial_s\": %.4f,\n"
        "  \"injection_pooled_s\": %.4f,\n"
        "  \"injection_per_fault_ms\": %.4f,\n"
        "  \"injection_pool_speedup\": %.3f,\n",
        subset_faults, subset_detected, subset_serial_s, subset_pooled_s,
        1e3 * subset_pooled_s / static_cast<double>(subset_faults),
        subset_serial_s / subset_pooled_s);
    for (const FullCampaign& fc : full) {
      const char* key = fc.cut == CutId::kMultiplier ? "mul" : "shifter";
      std::fprintf(
          f,
          "  \"full_%s_faults\": %zu,\n"
          "  \"full_%s_signature\": %zu,\n"
          "  \"full_%s_hang\": %zu,\n"
          "  \"full_%s_trap\": %zu,\n"
          "  \"full_%s_wild_store\": %zu,\n"
          "  \"full_%s_ok\": %zu,\n"
          "  \"full_%s_infra\": %zu,\n"
          "  \"full_%s_max_instructions\": %llu,\n"
          "  \"full_%s_s\": %.4f,\n",
          key, fc.faults, key, fc.h.detected_by_signature(), key,
          fc.h.count(RunOutcome::kDetectedHang), key,
          fc.h.count(RunOutcome::kDetectedTrap), key,
          fc.h.count(RunOutcome::kDetectedWildStore), key,
          fc.h.count(RunOutcome::kOkMatch), key,
          fc.h.count(RunOutcome::kInfraError), key,
          static_cast<unsigned long long>(fc.max_instructions), key,
          fc.wall_s);
    }
    std::fprintf(
        f,
        "  \"hang_fraction\": %.4f,\n"
        "  \"periodic_hang_detected\": %zu,\n"
        "  \"periodic_mean_hang_latency_s\": %.6f,\n"
        "  \"periodic_mc_faults\": %zu,\n"
        "  \"periodic_mc_s\": %.4f\n"
        "}\n",
        hang_fraction, hang_r.detected_by_hang, hang_r.mean_hang_latency_s,
        mc.size(), seconds(t3, t4));
    std::fclose(f);
  }
  std::fprintf(stderr,
               "# periodic MC: %zu faults, %.3f s -> BENCH_periodic.json\n",
               mc.size(), seconds(t3, t4));
  return 0;
}
