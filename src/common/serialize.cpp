#include "common/serialize.hpp"

#include <cstring>

namespace sbst::common {

void ByteWriter::put_u16(std::uint16_t v) {
  put_u8(v & 0xffu);
  put_u8((v >> 8) & 0xffu);
}

void ByteWriter::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8((v >> (i * 8)) & 0xffu);
}

void ByteWriter::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) put_u8((v >> (i * 8)) & 0xffu);
}

void ByteWriter::put_bytes(const void* data, std::size_t n) {
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  out_.insert(out_.end(), p, p + n);
}

void ByteWriter::put_string(std::string_view s) {
  put_u64(s.size());
  put_bytes(s.data(), s.size());
}

void ByteWriter::put_vec_u8(const std::vector<std::uint8_t>& v) {
  put_u64(v.size());
  put_bytes(v.data(), v.size());
}

void ByteWriter::put_vec_u32(const std::vector<std::uint32_t>& v) {
  put_u64(v.size());
  for (const std::uint32_t x : v) put_u32(x);
}

void ByteWriter::put_vec_u64(const std::vector<std::uint64_t>& v) {
  put_u64(v.size());
  for (const std::uint64_t x : v) put_u64(x);
}

std::uint8_t ByteReader::get_u8() {
  if (!ok_ || pos_ >= size_) {
    ok_ = false;
    return 0;
  }
  return data_[pos_++];
}

std::uint16_t ByteReader::get_u16() {
  std::uint16_t v = get_u8();
  v |= static_cast<std::uint16_t>(get_u8()) << 8;
  return ok_ ? v : 0;
}

std::uint32_t ByteReader::get_u32() {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(get_u8()) << (i * 8);
  }
  return ok_ ? v : 0;
}

std::uint64_t ByteReader::get_u64() {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(get_u8()) << (i * 8);
  }
  return ok_ ? v : 0;
}

void ByteReader::get_bytes(void* out, std::size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    std::memset(out, 0, n);
    return;
  }
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
}

std::size_t ByteReader::get_count(std::size_t elem_size) {
  const std::uint64_t count = get_u64();
  // elem_size >= 1 for every caller; the division keeps the overflow check
  // exact for multi-byte elements.
  if (!ok_ || (elem_size != 0 && count > remaining() / elem_size)) {
    ok_ = false;
    return 0;
  }
  return static_cast<std::size_t>(count);
}

std::string ByteReader::get_string() {
  const std::size_t n = get_count(1);
  std::string s(n, '\0');
  if (n != 0) get_bytes(s.data(), n);
  return ok_ ? s : std::string{};
}

std::vector<std::uint8_t> ByteReader::get_vec_u8() {
  const std::size_t n = get_count(1);
  std::vector<std::uint8_t> v(n);
  if (n != 0) get_bytes(v.data(), n);
  if (!ok_) v.clear();
  return v;
}

std::vector<std::uint32_t> ByteReader::get_vec_u32() {
  const std::size_t n = get_count(4);
  std::vector<std::uint32_t> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(get_u32());
  if (!ok_) v.clear();
  return v;
}

std::vector<std::uint64_t> ByteReader::get_vec_u64() {
  const std::size_t n = get_count(8);
  std::vector<std::uint64_t> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(get_u64());
  if (!ok_) v.clear();
  return v;
}

}  // namespace sbst::common
