// Bounds-checked binary serialization primitives for artifact persistence.
//
// Every expensive grading artifact (compiled netlists, collapsed fault
// universes, decoded programs, good runs, pattern sets) encodes itself with
// a ByteWriter and rebuilds itself with a ByteReader. The contract that
// makes the on-disk store safe:
//
//  * ByteWriter emits fixed-width little-endian integers, so images are
//    byte-identical across hosts and a content hash of the bytes is a
//    stable identity.
//  * ByteReader NEVER reads out of bounds and NEVER throws: any overrun or
//    malformed length sets a sticky failure flag and yields zeros from then
//    on. Decoders check ok() (plus their own semantic validation) and
//    report failure; the store then falls back to a clean rebuild. A
//    truncated or bit-flipped blob must never crash the process or smuggle
//    in garbage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sbst::common {

class ByteWriter {
 public:
  const std::vector<std::uint8_t>& bytes() const { return out_; }
  std::vector<std::uint8_t> take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

  void put_u8(std::uint8_t v) { out_.push_back(v); }
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_bytes(const void* data, std::size_t n);
  /// Length-prefixed (u64) string.
  void put_string(std::string_view s);

  /// Length-prefixed (u64 count) vector of fixed-width integers.
  void put_vec_u8(const std::vector<std::uint8_t>& v);
  void put_vec_u32(const std::vector<std::uint32_t>& v);
  void put_vec_u64(const std::vector<std::uint64_t>& v);

 private:
  std::vector<std::uint8_t> out_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t n)
      : data_(data), size_(n) {}
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  /// False once any read overran the buffer or a length prefix was
  /// implausible. Sticky: all subsequent reads yield zeros/empties.
  bool ok() const { return ok_; }
  /// True when every byte has been consumed and no read failed — decoders
  /// use this to reject trailing garbage.
  bool at_end() const { return ok_ && pos_ == size_; }
  std::size_t remaining() const { return ok_ ? size_ - pos_ : 0; }

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  bool get_bool() { return get_u8() != 0; }
  /// Copies `n` bytes out; zero-fills (and fails) on overrun.
  void get_bytes(void* out, std::size_t n);
  std::string get_string();

  std::vector<std::uint8_t> get_vec_u8();
  std::vector<std::uint32_t> get_vec_u32();
  std::vector<std::uint64_t> get_vec_u64();

  /// Reads a u64 element count and fails unless count * elem_size bytes
  /// actually remain — the guard that keeps a corrupt length prefix from
  /// requesting a multi-gigabyte allocation.
  std::size_t get_count(std::size_t elem_size);

  void fail() { ok_ = false; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace sbst::common
