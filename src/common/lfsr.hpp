// Linear-feedback shift registers.
//
// Two roles in this project:
//  * Lfsr32 is the reference model of the *software LFSR* that the paper's
//    pseudorandom code style (Figure 3) implements in MIPS assembly; the
//    generated self-test routine must produce exactly this sequence.
//  * Misr32 models the software MISR used for response compaction ("a shared
//    software MISR routine"); the test-program builder emits assembly whose
//    final signature equals Misr32's.
#pragma once

#include <cstdint>

namespace sbst {

/// Galois-configuration 32-bit LFSR.
///
/// step(): if the LSB is 1, shift right and XOR the polynomial mask; else
/// just shift right. With a primitive polynomial this cycles through all
/// 2^32-1 non-zero states. The same recurrence is cheap in MIPS assembly
/// (andi/srl/xor/bne), which is why the Figure 3 code style uses it.
class Lfsr32 {
 public:
  /// Taps of x^32+x^22+x^2+x^1+1 (primitive), Galois mask form.
  static constexpr std::uint32_t kDefaultPoly = 0x80200003u;

  explicit Lfsr32(std::uint32_t seed = 1u, std::uint32_t poly = kDefaultPoly)
      : state_(seed), poly_(poly) {}

  std::uint32_t state() const { return state_; }
  std::uint32_t poly() const { return poly_; }

  /// Advances one step and returns the new state.
  std::uint32_t step() {
    const bool lsb = state_ & 1u;
    state_ >>= 1;
    if (lsb) state_ ^= poly_;
    return state_;
  }

 private:
  std::uint32_t state_;
  std::uint32_t poly_;
};

/// 32-bit multiple-input signature register (software model).
///
/// absorb(r): signature <- lfsr_step(signature) XOR r. Aliasing probability
/// for a random error stream is ~2^-32 per the standard MISR analysis.
class Misr32 {
 public:
  explicit Misr32(std::uint32_t seed = 0xffffffffu,
                  std::uint32_t poly = Lfsr32::kDefaultPoly)
      : state_(seed), poly_(poly) {}

  std::uint32_t signature() const { return state_; }

  void absorb(std::uint32_t response) {
    const bool lsb = state_ & 1u;
    state_ >>= 1;
    if (lsb) state_ ^= poly_;
    state_ ^= response;
  }

 private:
  std::uint32_t state_;
  std::uint32_t poly_;
};

}  // namespace sbst
