#include "common/rng.hpp"

#include <bit>

namespace sbst {

std::uint64_t Rng::next64() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

}  // namespace sbst
