// Minimal fixed-column table printer used by the bench harnesses to emit
// paper-style tables (e.g. Table 1) to stdout.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sbst {

/// Accumulates rows of strings and prints them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; it may have fewer cells than the header (padded empty).
  void add_row(std::vector<std::string> cells);

  /// Inserts a horizontal rule before the next row.
  void add_rule();

  /// Renders the table with ' | ' separators and a rule under the header.
  std::string str() const;

  /// Convenience: renders and writes to stdout.
  void print() const;

  static std::string num(double v, int precision = 1);
  static std::string num(std::uint64_t v);
  static std::string num(int v) { return num(static_cast<std::uint64_t>(v)); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == rule
};

}  // namespace sbst
