#include "common/hash.hpp"

namespace sbst::common {

void Fnv1a::mix_bytes(const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) mix_byte(p[i]);
}

std::uint64_t fnv1a_bytes(const void* data, std::size_t n,
                          std::uint64_t seed) {
  Fnv1a acc(seed);
  acc.mix_bytes(data, n);
  return acc.value();
}

}  // namespace sbst::common
