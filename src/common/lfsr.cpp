#include "common/lfsr.hpp"

// Header-only implementation; this TU anchors the library target.
