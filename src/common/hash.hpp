// Shared 64-bit FNV-1a hashing.
//
// One implementation serves every content-addressing use in the tree: the
// conformance-corpus identity stamp (conform/case.cpp), the session's
// program-cache scan keys (core/session.cpp), and the artifact-store entry
// keys and payload checksums (store/artifact_store.cpp). FNV-1a is not
// collision-resistant, so every consumer either compares the full key bytes
// after the hash narrows the search (session caches, store entries) or
// treats the value as an identity stamp over bytes it also stores verbatim
// (the corpus manifest).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sbst::common {

inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Incremental FNV-1a accumulator. Multi-byte integers are mixed in
/// little-endian byte order regardless of host endianness, so hashes are
/// stable across platforms (they end up in on-disk store keys).
class Fnv1a {
 public:
  constexpr Fnv1a() = default;
  explicit constexpr Fnv1a(std::uint64_t seed) : state_(seed) {}

  constexpr void mix_byte(std::uint8_t b) {
    state_ ^= b;
    state_ *= kFnvPrime;
  }
  void mix_bytes(const void* data, std::size_t n);
  void mix_string(std::string_view s) { mix_bytes(s.data(), s.size()); }
  constexpr void mix_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) mix_byte((v >> (i * 8)) & 0xffu);
  }
  constexpr void mix_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte((v >> (i * 8)) & 0xffu);
  }

  constexpr std::uint64_t value() const { return state_; }

 private:
  std::uint64_t state_ = kFnvOffsetBasis;
};

/// One-shot FNV-1a over a byte range.
std::uint64_t fnv1a_bytes(const void* data, std::size_t n,
                          std::uint64_t seed = kFnvOffsetBasis);

/// Folds the 8 little-endian bytes of `v` into a running hash — the legacy
/// session-cache mixing step (bit-compatible with the fnv64 helper this
/// replaces).
constexpr std::uint64_t fnv1a_mix_u64(std::uint64_t h, std::uint64_t v) {
  Fnv1a acc(h);
  acc.mix_u64(v);
  return acc.value();
}

}  // namespace sbst::common
