// Deterministic pseudo-random number generation.
//
// A small xoshiro-style generator is used instead of <random> engines so that
// pattern streams are reproducible across platforms and cheap to fork: every
// experiment in bench/ seeds its generators explicitly.
#pragma once

#include <cstdint>

namespace sbst {

/// splitmix64: used to expand a single seed into independent stream seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, reproducible PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    for (auto& word : s_) word = splitmix64(seed);
  }

  std::uint64_t next64();

  /// Uniform in [0, 2^32).
  std::uint32_t next32() { return static_cast<std::uint32_t>(next64() >> 32); }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next64() % bound; }

  /// Bernoulli(p).
  bool chance(double p) {
    return static_cast<double>(next64() >> 11) * 0x1.0p-53 < p;
  }

 private:
  std::uint64_t s_[4]{};
};

}  // namespace sbst
