#include "common/bits.hpp"

#include <cstdio>

namespace sbst {

std::string to_binary(std::uint64_t v, unsigned width) {
  std::string s(width, '0');
  for (unsigned i = 0; i < width; ++i) {
    if (bit(v, width - 1 - i)) s[i] = '1';
  }
  return s;
}

std::string to_hex32(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08x", v);
  return buf;
}

}  // namespace sbst
