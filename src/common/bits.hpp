// Bit-manipulation utilities shared across the sbst libraries.
//
// All word-level helpers operate on uint32_t (the processor word size of the
// MIPS/Plasma model) or uint64_t (the packed pattern word used by the
// parallel fault simulators).
#pragma once

#include <bit>
#include <cstdint>
#include <string>

namespace sbst {

/// Returns the n-th bit (0 = LSB) of `w`.
constexpr bool bit(std::uint64_t w, unsigned n) { return (w >> n) & 1u; }

/// Returns `w` with bit `n` set to `v`.
constexpr std::uint64_t with_bit(std::uint64_t w, unsigned n, bool v) {
  return v ? (w | (std::uint64_t{1} << n)) : (w & ~(std::uint64_t{1} << n));
}

/// A mask with the low `n` bits set (n in [0, 64]).
constexpr std::uint64_t low_mask(unsigned n) {
  return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/// Sign-extends the low `bits` bits of `v` to 32 bits.
constexpr std::uint32_t sign_extend32(std::uint32_t v, unsigned bits) {
  const std::uint32_t m = std::uint32_t{1} << (bits - 1);
  v &= static_cast<std::uint32_t>(low_mask(bits));
  return (v ^ m) - m;
}

/// Number of set bits.
constexpr unsigned popcount64(std::uint64_t w) {
  return static_cast<unsigned>(std::popcount(w));
}

/// Parity (XOR-reduction) of all bits of `w`.
constexpr bool parity64(std::uint64_t w) { return std::popcount(w) & 1; }

/// Renders `v` as a fixed-width binary string, MSB first.
std::string to_binary(std::uint64_t v, unsigned width);

/// Renders `v` as 0x%08x.
std::string to_hex32(std::uint32_t v);

}  // namespace sbst
