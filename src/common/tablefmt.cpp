#include "common/tablefmt.hpp"

#include <algorithm>
#include <cstdio>

namespace sbst {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(std::max(cells.size(), std::size_t{1}));
  rows_.push_back(std::move(cells));
}

void Table::add_rule() { rows_.emplace_back(); }

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::num(std::uint64_t v) {
  // Thousands separators for readability (matches the paper's "26,080").
  std::string digits = std::to_string(v);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out += cell;
      out.append(width[c] - cell.size(), ' ');
      if (c + 1 < header_.size()) out += " | ";
    }
    // Trim trailing spaces.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };

  std::string out;
  emit_row(header_, out);
  std::size_t total = 0;
  for (std::size_t c = 0; c < header_.size(); ++c) total += width[c] + 3;
  out.append(total > 3 ? total - 3 : total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    if (row.empty()) {
      out.append(total > 3 ? total - 3 : total, '-');
      out += '\n';
    } else {
      emit_row(row, out);
    }
  }
  return out;
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace sbst
