#include "isa/disasm.hpp"

#include <cstdio>

#include "isa/encoding.hpp"

namespace sbst::isa {

namespace {

std::string hex16(std::uint16_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", v);
  return buf;
}

std::string hex32(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", v);
  return buf;
}

std::string r3(const char* m, const Fields& f) {
  return std::string(m) + " " + register_name(f.rd) + ", " +
         register_name(f.rs) + ", " + register_name(f.rt);
}

std::string mem(const char* m, const Fields& f) {
  const std::int16_t off = static_cast<std::int16_t>(f.imm);
  return std::string(m) + " " + register_name(f.rt) + ", " +
         std::to_string(off) + "(" + register_name(f.rs) + ")";
}

std::string imm_arith(const char* m, const Fields& f, bool sign) {
  const std::string i = sign
                            ? std::to_string(static_cast<std::int16_t>(f.imm))
                            : hex16(f.imm);
  return std::string(m) + " " + register_name(f.rt) + ", " +
         register_name(f.rs) + ", " + i;
}

std::string branch(const char* m, const Fields& f, std::uint32_t pc) {
  const std::uint32_t target =
      pc + 4 + (static_cast<std::int32_t>(static_cast<std::int16_t>(f.imm))
                << 2);
  return std::string(m) + " " + register_name(f.rs) + ", " +
         register_name(f.rt) + ", " + hex32(target);
}

std::string rtype(const Fields& f) {
  switch (f.funct) {
    case 0x00:
      if (f.rd == 0 && f.rt == 0 && f.shamt == 0) return "nop";
      return "sll " + register_name(f.rd) + ", " + register_name(f.rt) +
             ", " + std::to_string(f.shamt);
    case 0x02:
      return "srl " + register_name(f.rd) + ", " + register_name(f.rt) +
             ", " + std::to_string(f.shamt);
    case 0x03:
      return "sra " + register_name(f.rd) + ", " + register_name(f.rt) +
             ", " + std::to_string(f.shamt);
    case 0x04:
      return "sllv " + register_name(f.rd) + ", " + register_name(f.rt) +
             ", " + register_name(f.rs);
    case 0x06:
      return "srlv " + register_name(f.rd) + ", " + register_name(f.rt) +
             ", " + register_name(f.rs);
    case 0x07:
      return "srav " + register_name(f.rd) + ", " + register_name(f.rt) +
             ", " + register_name(f.rs);
    case 0x08: return "jr " + register_name(f.rs);
    case 0x0d: return "break";
    case 0x10: return "mfhi " + register_name(f.rd);
    case 0x11: return "mthi " + register_name(f.rs);
    case 0x12: return "mflo " + register_name(f.rd);
    case 0x13: return "mtlo " + register_name(f.rs);
    case 0x18: return "mult " + register_name(f.rs) + ", " + register_name(f.rt);
    case 0x19: return "multu " + register_name(f.rs) + ", " + register_name(f.rt);
    case 0x1a: return "div " + register_name(f.rs) + ", " + register_name(f.rt);
    case 0x1b: return "divu " + register_name(f.rs) + ", " + register_name(f.rt);
    case 0x20: return r3("add", f);
    case 0x21: return r3("addu", f);
    case 0x22: return r3("sub", f);
    case 0x23: return r3("subu", f);
    case 0x24: return r3("and", f);
    case 0x25: return r3("or", f);
    case 0x26: return r3("xor", f);
    case 0x27: return r3("nor", f);
    case 0x2a: return r3("slt", f);
    case 0x2b: return r3("sltu", f);
    default: return "<illegal funct " + hex16(f.funct) + ">";
  }
}

}  // namespace

std::string disassemble(std::uint32_t word, std::uint32_t pc) {
  const Fields f = decode(word);
  switch (f.opcode) {
    case 0x00: return rtype(f);
    case 0x02: return "j " + hex32(f.target << 2);
    case 0x03: return "jal " + hex32(f.target << 2);
    case 0x04: return branch("beq", f, pc);
    case 0x05: return branch("bne", f, pc);
    case 0x08: return imm_arith("addi", f, true);
    case 0x09: return imm_arith("addiu", f, true);
    case 0x0a: return imm_arith("slti", f, true);
    case 0x0b: return imm_arith("sltiu", f, true);
    case 0x0c: return imm_arith("andi", f, false);
    case 0x0d: return imm_arith("ori", f, false);
    case 0x0e: return imm_arith("xori", f, false);
    case 0x0f:
      return "lui " + register_name(f.rt) + ", " + hex16(f.imm);
    case 0x20: return mem("lb", f);
    case 0x21: return mem("lh", f);
    case 0x23: return mem("lw", f);
    case 0x24: return mem("lbu", f);
    case 0x25: return mem("lhu", f);
    case 0x28: return mem("sb", f);
    case 0x29: return mem("sh", f);
    case 0x2b: return mem("sw", f);
    default: return "<illegal opcode " + hex16(f.opcode) + ">";
  }
}

std::string listing(const std::vector<std::uint32_t>& words,
                    std::uint32_t base) {
  std::string out;
  for (std::size_t i = 0; i < words.size(); ++i) {
    const std::uint32_t pc = base + static_cast<std::uint32_t>(i) * 4;
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%04x: %08x  ", pc, words[i]);
    out += buf;
    out += disassemble(words[i], pc);
    out += '\n';
  }
  return out;
}

}  // namespace sbst::isa
