#include "isa/assembler.hpp"

#include <cctype>
#include <cstdlib>
#include <optional>

#include "isa/encoding.hpp"

namespace sbst::isa {

std::uint32_t Program::symbol(const std::string& name) const {
  auto it = symbols.find(name);
  if (it == symbols.end()) {
    throw std::out_of_range("program: no symbol '" + name + "'");
  }
  return it->second;
}

namespace {

struct Statement {
  std::size_t line = 0;
  std::string mnemonic;               // lower-case; empty for pure labels
  std::vector<std::string> operands;  // raw operand strings
  std::uint32_t address = 0;          // assigned in pass 1
  std::uint32_t word_count = 0;
};

std::string trim(const std::string& s) {
  std::size_t a = 0, b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
  return s.substr(a, b - a);
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

// Splits operands on commas that are not inside parentheses.
std::vector<std::string> split_operands(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  for (char c : s) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  const std::string last = trim(cur);
  if (!last.empty()) out.push_back(last);
  return out;
}

bool is_ident(const std::string& s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_') {
    return false;
  }
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return true;
}

class Assembler {
 public:
  Program run(const std::string& source, std::uint32_t base) {
    program_.base = base;
    parse(source);
    layout(base);
    emit();
    return std::move(program_);
  }

 private:
  // ---- pass 0: parse into statements -------------------------------------
  void parse(const std::string& source) {
    std::size_t line_no = 0;
    std::size_t pos = 0;
    while (pos <= source.size()) {
      const std::size_t eol = source.find('\n', pos);
      std::string line = source.substr(
          pos, eol == std::string::npos ? std::string::npos : eol - pos);
      pos = eol == std::string::npos ? source.size() + 1 : eol + 1;
      ++line_no;

      // Strip comments.
      for (const char* marker : {"#", ";", "//"}) {
        const std::size_t at = line.find(marker);
        if (at != std::string::npos) line = line.substr(0, at);
      }
      line = trim(line);

      // Peel off leading labels.
      for (;;) {
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos) break;
        const std::string name = trim(line.substr(0, colon));
        if (!is_ident(name)) {
          throw AsmError(line_no, "bad label '" + name + "'");
        }
        pending_labels_.emplace_back(line_no, name);
        line = trim(line.substr(colon + 1));
      }
      if (line.empty()) continue;

      Statement st;
      st.line = line_no;
      const std::size_t sp = line.find_first_of(" \t");
      st.mnemonic = lower(line.substr(0, sp));
      if (sp != std::string::npos) {
        st.operands = split_operands(trim(line.substr(sp + 1)));
      }
      attach_labels(st);
      statements_.push_back(std::move(st));
    }
    // Trailing labels bind to the end address via a sentinel.
    if (!pending_labels_.empty()) {
      Statement sentinel;
      sentinel.line = line_no;
      sentinel.mnemonic = ".end_sentinel";
      attach_labels(sentinel);
      statements_.push_back(std::move(sentinel));
    }
  }

  void attach_labels(Statement& st) {
    for (auto& [line, name] : pending_labels_) {
      labels_.emplace_back(name, statements_.size());
      if (!defined_.insert(name).second) {
        throw AsmError(line, "duplicate label '" + name + "'");
      }
    }
    (void)st;
    pending_labels_.clear();
  }

  // ---- pass 1: addresses ---------------------------------------------------
  void layout(std::uint32_t base) {
    std::uint32_t addr = base;
    for (Statement& st : statements_) {
      st.address = addr;
      st.word_count = size_of(st, addr);
      addr += st.word_count * 4;
    }
    for (auto& [name, index] : labels_) {
      const std::uint32_t value = index < statements_.size()
                                      ? statements_[index].address
                                      : addr;
      program_.symbols[name] = value;
    }
  }

  std::uint32_t size_of(const Statement& st, std::uint32_t addr) const {
    const std::string& m = st.mnemonic;
    if (m == ".end_sentinel") return 0;
    if (m == ".word") {
      return static_cast<std::uint32_t>(st.operands.size());
    }
    if (m == ".org") {
      const std::uint32_t target = parse_literal(st, st.operands, 0);
      if (target < addr || (target - addr) % 4 != 0) {
        throw AsmError(st.line, ".org target unreachable");
      }
      return (target - addr) / 4;
    }
    if (m == ".align") {
      const std::uint32_t n = parse_literal(st, st.operands, 0);
      const std::uint32_t size = 1u << n;
      const std::uint32_t target = (addr + size - 1) & ~(size - 1);
      return (target - addr) / 4;
    }
    if (m == "li" || m == "la") {
      if (st.operands.size() != 2) {
        throw AsmError(st.line, m + " needs 2 operands");
      }
      // Symbols assemble as lui+ori; numeric literals may shrink.
      if (!is_numeric(st.operands[1])) return 2;
      return li_words(parse_numeric(st, st.operands[1]));
    }
    return 1;
  }

  static std::uint32_t li_words(std::uint32_t value) {
    const std::int32_t sv = static_cast<std::int32_t>(value);
    if (value <= 0xffff || (sv >= -0x8000 && sv < 0)) return 1;  // ori/addiu
    if ((value & 0xffff) == 0) return 1;                          // lui
    return 2;                                                     // lui+ori
  }

  // ---- pass 2: encoding ----------------------------------------------------
  void emit() {
    for (const Statement& st : statements_) {
      if (st.mnemonic == ".end_sentinel") continue;
      encode_statement(st);
      if (program_.words.size() !=
          (st.address - program_.base) / 4 + st.word_count) {
        throw AsmError(st.line, "internal: size mismatch for '" +
                                    st.mnemonic + "'");
      }
    }
  }

  void put(std::uint32_t word) { program_.words.push_back(word); }

  void encode_statement(const Statement& st) {
    const std::string& m = st.mnemonic;
    const auto& ops = st.operands;
    auto need = [&](std::size_t n) {
      if (ops.size() != n) {
        throw AsmError(st.line, m + " expects " + std::to_string(n) +
                                    " operands, got " +
                                    std::to_string(ops.size()));
      }
    };
    auto reg = [&](std::size_t i) {
      const auto r = parse_register(ops[i]);
      if (!r) throw AsmError(st.line, "bad register '" + ops[i] + "'");
      return *r;
    };
    auto val = [&](std::size_t i) { return parse_value(st, ops[i]); };
    auto imm16s = [&](std::size_t i) {
      const std::int64_t v = static_cast<std::int32_t>(val(i));
      if (v < -0x8000 || v > 0x7fff) {
        throw AsmError(st.line, "immediate out of signed 16-bit range");
      }
      return static_cast<std::int16_t>(v);
    };
    auto imm16u = [&](std::size_t i) {
      const std::uint32_t v = val(i);
      if (v > 0xffff) {
        throw AsmError(st.line, "immediate out of 16-bit range");
      }
      return static_cast<std::uint16_t>(v);
    };
    auto branch_offset = [&](std::size_t i) {
      const std::uint32_t target = val(i);
      const std::int64_t delta =
          (static_cast<std::int64_t>(target) - (st.address + 4)) / 4;
      if ((target & 3u) || delta < -0x8000 || delta > 0x7fff) {
        throw AsmError(st.line, "branch target out of range");
      }
      return static_cast<std::int16_t>(delta);
    };
    auto mem_operand = [&](std::size_t i) -> std::pair<std::int16_t,
                                                       std::uint8_t> {
      // "offset(base)" or "(base)" or "offset" with base $zero.
      const std::string& s = ops[i];
      const std::size_t paren = s.find('(');
      if (paren == std::string::npos) {
        return {static_cast<std::int16_t>(
                    static_cast<std::int32_t>(parse_value(st, s))),
                kZero};
      }
      const std::string off = trim(s.substr(0, paren));
      const std::size_t close = s.find(')', paren);
      if (close == std::string::npos) {
        throw AsmError(st.line, "missing ')' in memory operand");
      }
      const std::string base = trim(s.substr(paren + 1, close - paren - 1));
      const auto b = parse_register(base);
      if (!b) throw AsmError(st.line, "bad base register '" + base + "'");
      std::int32_t offv = 0;
      if (!off.empty()) offv = static_cast<std::int32_t>(parse_value(st, off));
      if (offv < -0x8000 || offv > 0x7fff) {
        throw AsmError(st.line, "memory offset out of range");
      }
      return {static_cast<std::int16_t>(offv), *b};
    };

    if (m == ".word") {
      for (std::size_t i = 0; i < ops.size(); ++i) put(val(i));
    } else if (m == ".org" || m == ".align") {
      for (std::uint32_t i = 0; i < st.word_count; ++i) put(0);
    } else if (m == "nop") {
      need(0);
      put(nop());
    } else if (m == "break") {
      if (!ops.empty()) need(0);
      put(brk());
    } else if (m == "add" || m == "addu" || m == "sub" || m == "subu" ||
               m == "and" || m == "or" || m == "xor" || m == "nor" ||
               m == "slt" || m == "sltu") {
      need(3);
      using Fn = std::uint32_t (*)(std::uint8_t, std::uint8_t, std::uint8_t);
      const Fn fn = m == "add"    ? add
                    : m == "addu" ? addu
                    : m == "sub"  ? sub
                    : m == "subu" ? subu
                    : m == "and"  ? and_
                    : m == "or"   ? or_
                    : m == "xor"  ? xor_
                    : m == "nor"  ? nor_
                    : m == "slt"  ? slt
                                  : sltu;
      put(fn(reg(0), reg(1), reg(2)));
    } else if (m == "sll" || m == "srl" || m == "sra") {
      need(3);
      const std::uint32_t sh = val(2);
      if (sh > 31) throw AsmError(st.line, "shift amount out of range");
      using Fn = std::uint32_t (*)(std::uint8_t, std::uint8_t, std::uint8_t);
      const Fn fn = m == "sll" ? sll : m == "srl" ? srl : sra;
      put(fn(reg(0), reg(1), static_cast<std::uint8_t>(sh)));
    } else if (m == "sllv" || m == "srlv" || m == "srav") {
      need(3);
      using Fn = std::uint32_t (*)(std::uint8_t, std::uint8_t, std::uint8_t);
      const Fn fn = m == "sllv" ? sllv : m == "srlv" ? srlv : srav;
      put(fn(reg(0), reg(1), reg(2)));
    } else if (m == "jr") {
      need(1);
      put(jr(reg(0)));
    } else if (m == "mfhi" || m == "mflo") {
      need(1);
      put(m == "mfhi" ? mfhi(reg(0)) : mflo(reg(0)));
    } else if (m == "mthi" || m == "mtlo") {
      need(1);
      put(m == "mthi" ? mthi(reg(0)) : mtlo(reg(0)));
    } else if (m == "mult" || m == "multu" || m == "div" || m == "divu") {
      need(2);
      using Fn = std::uint32_t (*)(std::uint8_t, std::uint8_t);
      const Fn fn = m == "mult"    ? mult
                    : m == "multu" ? multu
                    : m == "div"   ? div
                                   : divu;
      put(fn(reg(0), reg(1)));
    } else if (m == "addi" || m == "addiu" || m == "slti" || m == "sltiu") {
      need(3);
      using Fn = std::uint32_t (*)(std::uint8_t, std::uint8_t, std::int16_t);
      const Fn fn = m == "addi"    ? addi
                    : m == "addiu" ? addiu
                    : m == "slti"  ? slti
                                   : sltiu;
      put(fn(reg(0), reg(1), imm16s(2)));
    } else if (m == "andi" || m == "ori" || m == "xori") {
      need(3);
      using Fn = std::uint32_t (*)(std::uint8_t, std::uint8_t, std::uint16_t);
      const Fn fn = m == "andi" ? andi : m == "ori" ? ori : xori;
      put(fn(reg(0), reg(1), imm16u(2)));
    } else if (m == "lui") {
      need(2);
      put(lui(reg(0), imm16u(1)));
    } else if (m == "lb" || m == "lh" || m == "lw" || m == "lbu" ||
               m == "lhu" || m == "sb" || m == "sh" || m == "sw") {
      need(2);
      const auto [offset, base] = mem_operand(1);
      using Fn =
          std::uint32_t (*)(std::uint8_t, std::int16_t, std::uint8_t);
      const Fn fn = m == "lb"    ? lb
                    : m == "lh"  ? lh
                    : m == "lw"  ? lw
                    : m == "lbu" ? lbu
                    : m == "lhu" ? lhu
                    : m == "sb"  ? sb
                    : m == "sh"  ? sh
                                 : sw;
      put(fn(reg(0), offset, base));
    } else if (m == "beq" || m == "bne") {
      need(3);
      const std::int16_t off = branch_offset(2);
      put(m == "beq" ? beq(reg(0), reg(1), off) : bne(reg(0), reg(1), off));
    } else if (m == "b") {
      need(1);
      put(beq(kZero, kZero, branch_offset(0)));
    } else if (m == "j" || m == "jal") {
      need(1);
      const std::uint32_t target = val(0);
      if (target & 3u) throw AsmError(st.line, "jump target misaligned");
      put(m == "j" ? j(target >> 2) : jal(target >> 2));
    } else if (m == "move") {
      need(2);
      put(addu(reg(0), reg(1), kZero));
    } else if (m == "li" || m == "la") {
      need(2);
      const std::uint8_t rt = reg(0);
      const std::uint32_t value = val(1);
      emit_li(st, rt, value);
    } else {
      throw AsmError(st.line, "unknown mnemonic '" + m + "'");
    }
  }

  void emit_li(const Statement& st, std::uint8_t rt, std::uint32_t value) {
    const std::uint32_t words = st.word_count;
    if (words == 2) {
      put(lui(rt, static_cast<std::uint16_t>(value >> 16)));
      put(ori(rt, rt, static_cast<std::uint16_t>(value & 0xffff)));
      return;
    }
    // Single-word forms.
    const std::int32_t sv = static_cast<std::int32_t>(value);
    if (value <= 0xffff) {
      put(ori(rt, kZero, static_cast<std::uint16_t>(value)));
    } else if (sv >= -0x8000 && sv < 0) {
      put(addiu(rt, kZero, static_cast<std::int16_t>(sv)));
    } else if ((value & 0xffff) == 0) {
      put(lui(rt, static_cast<std::uint16_t>(value >> 16)));
    } else {
      throw AsmError(st.line, "internal: li sizing disagreement");
    }
  }

  // ---- literals / expressions ---------------------------------------------
  static bool is_numeric(const std::string& s) {
    if (s.empty()) return false;
    const std::size_t start = (s[0] == '-' || s[0] == '+') ? 1 : 0;
    return start < s.size() &&
           std::isdigit(static_cast<unsigned char>(s[start]));
  }

  static std::uint32_t parse_numeric(const Statement& st,
                                     const std::string& s) {
    char* end = nullptr;
    const long long v = std::strtoll(s.c_str(), &end, 0);
    if (!end || *end != '\0' || v > 0xffffffffLL || v < -0x80000000LL) {
      throw AsmError(st.line, "bad numeric literal '" + s + "'");
    }
    return static_cast<std::uint32_t>(v);
  }

  std::uint32_t parse_literal(const Statement& st,
                              const std::vector<std::string>& ops,
                              std::size_t i) const {
    if (i >= ops.size()) throw AsmError(st.line, "missing operand");
    if (!is_numeric(ops[i])) {
      throw AsmError(st.line, "expected numeric literal");
    }
    return parse_numeric(st, ops[i]);
  }

  // value := numeric | symbol | symbol+numeric | symbol-numeric
  //        | %hi(value) | %lo(value)
  std::uint32_t parse_value(const Statement& st, const std::string& s) const {
    if (s.size() > 4 && s[0] == '%' && s.back() == ')') {
      const std::string fn = s.substr(1, 2);
      const std::string inner = trim(s.substr(4, s.size() - 5));
      if (fn == "hi") return parse_value(st, inner) >> 16;
      if (fn == "lo") return parse_value(st, inner) & 0xffffu;
      throw AsmError(st.line, "unknown operator '" + s + "'");
    }
    if (is_numeric(s)) return parse_numeric(st, s);
    std::size_t split = std::string::npos;
    for (std::size_t i = 1; i < s.size(); ++i) {
      if (s[i] == '+' || s[i] == '-') split = i;
    }
    std::string sym = s, rest;
    if (split != std::string::npos) {
      sym = trim(s.substr(0, split));
      rest = trim(s.substr(split));  // includes sign
    }
    if (!is_ident(sym)) {
      throw AsmError(st.line, "bad operand '" + s + "'");
    }
    const auto it = program_.symbols.find(sym);
    if (it == program_.symbols.end()) {
      throw AsmError(st.line, "undefined symbol '" + sym + "'");
    }
    std::uint32_t value = it->second;
    if (!rest.empty()) {
      value += parse_numeric(st, rest);
    }
    return value;
  }

  Program program_;
  std::vector<Statement> statements_;
  std::vector<std::pair<std::size_t, std::string>> pending_labels_;
  std::vector<std::pair<std::string, std::size_t>> labels_;
  std::set<std::string> defined_;
};

}  // namespace

Program assemble(const std::string& source, std::uint32_t base) {
  Assembler assembler;
  return assembler.run(source, base);
}

}  // namespace sbst::isa
