// Disassembler for debug output, program listings, and round-trip tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sbst::isa {

/// One instruction, e.g. "addu $s2, $s0, $s1" or "lw $s0, 4($s3)".
/// Branch/jump targets are rendered as absolute hex addresses using `pc`
/// (the address of this instruction).
std::string disassemble(std::uint32_t word, std::uint32_t pc = 0);

/// Whole-program listing: "0x0000: 3c10aaaa  lui $s0, 0xaaaa" per line.
std::string listing(const std::vector<std::uint32_t>& words,
                    std::uint32_t base = 0);

}  // namespace sbst::isa
