#include "isa/decode.hpp"

#include <stdexcept>

#include "common/bits.hpp"

namespace sbst::isa {

namespace {

// Hazard metadata mirrors the interpreter's operand-read table: which of
// rs/rt an instruction actually reads decides load-use and RAW interlocks.
std::uint8_t flags_of(const Fields& f) {
  if (f.opcode == 0x00) {
    switch (f.funct) {
      case 0x00: case 0x02: case 0x03:  // immediate shifts read rt only
        return kUopReadsRt;
      case 0x08: case 0x11: case 0x13:  // jr, mthi, mtlo
        return kUopReadsRs;
      case 0x10: case 0x12: case 0x0d:  // mfhi, mflo, break
        return 0;
      default:
        return kUopReadsRs | kUopReadsRt;
    }
  }
  switch (f.opcode) {
    case 0x02: case 0x03: case 0x0f:  // j, jal, lui
      return 0;
    case 0x04: case 0x05:  // branches
      return kUopReadsRs | kUopReadsRt;
    case 0x28: case 0x29: case 0x2b:  // stores read base + data
      return kUopReadsRs | kUopReadsRt;
    default:  // immediate ALU ops and loads read rs
      return kUopReadsRs;
  }
}

UopKind rtype_kind(std::uint8_t funct) {
  switch (funct) {
    case 0x00: return UopKind::kSll;
    case 0x02: return UopKind::kSrl;
    case 0x03: return UopKind::kSra;
    case 0x04: return UopKind::kSllv;
    case 0x06: return UopKind::kSrlv;
    case 0x07: return UopKind::kSrav;
    case 0x08: return UopKind::kJr;
    case 0x0d: return UopKind::kBreak;
    case 0x10: return UopKind::kMfhi;
    case 0x11: return UopKind::kMthi;
    case 0x12: return UopKind::kMflo;
    case 0x13: return UopKind::kMtlo;
    case 0x18: return UopKind::kMult;
    case 0x19: return UopKind::kMultu;
    case 0x1a: return UopKind::kDiv;
    case 0x1b: return UopKind::kDivu;
    case 0x20: case 0x21: return UopKind::kAddR;
    case 0x22: case 0x23: return UopKind::kSubR;
    case 0x24: return UopKind::kAndR;
    case 0x25: return UopKind::kOrR;
    case 0x26: return UopKind::kXorR;
    case 0x27: return UopKind::kNorR;
    case 0x2a: return UopKind::kSltR;
    case 0x2b: return UopKind::kSltuR;
    default: return UopKind::kIllegalFunct;
  }
}

UopKind itype_kind(std::uint8_t opcode) {
  switch (opcode) {
    case 0x02: return UopKind::kJ;
    case 0x03: return UopKind::kJal;
    case 0x04: return UopKind::kBeq;
    case 0x05: return UopKind::kBne;
    case 0x08: case 0x09: return UopKind::kAddImm;
    case 0x0a: return UopKind::kSltImm;
    case 0x0b: return UopKind::kSltuImm;
    case 0x0c: return UopKind::kAndImm;
    case 0x0d: return UopKind::kOrImm;
    case 0x0e: return UopKind::kXorImm;
    case 0x0f: return UopKind::kLui;
    case 0x20: return UopKind::kLb;
    case 0x21: return UopKind::kLh;
    case 0x23: return UopKind::kLw;
    case 0x24: return UopKind::kLbu;
    case 0x25: return UopKind::kLhu;
    case 0x28: return UopKind::kSb;
    case 0x29: return UopKind::kSh;
    case 0x2b: return UopKind::kSw;
    default: return UopKind::kIllegalOpcode;
  }
}

// The immediate in the form the execute loop consumes it.
std::uint32_t imm_of(UopKind kind, const Fields& f) {
  switch (kind) {
    case UopKind::kJ:
    case UopKind::kJal:
      return f.target << 2;  // byte offset within the 256 MB segment
    case UopKind::kBeq:
    case UopKind::kBne:
      return sign_extend32(f.imm, 16) << 2;  // branch byte offset
    case UopKind::kAndImm:
    case UopKind::kOrImm:
    case UopKind::kXorImm:
      return f.imm;  // zero-extended logical immediate
    case UopKind::kLui:
      return static_cast<std::uint32_t>(f.imm) << 16;
    default:
      return sign_extend32(f.imm, 16);  // arithmetic / load-store offset
  }
}

}  // namespace

MicroOp decode_uop(std::uint32_t word) {
  const Fields f = decode(word);
  MicroOp op;
  op.kind = f.opcode == 0x00 ? rtype_kind(f.funct) : itype_kind(f.opcode);
  op.rs = f.rs;
  op.rt = f.rt;
  op.rd = f.rd;
  op.shamt = f.shamt;
  op.opcode = f.opcode;
  op.funct = f.funct;
  op.flags = flags_of(f);
  op.imm = imm_of(op.kind, f);
  return op;
}

DecodedProgram::DecodedProgram(std::uint32_t base, const std::uint32_t* words,
                               std::size_t count)
    : base_(base), bytes_(static_cast<std::uint32_t>(count * 4)) {
  if (base & 3u) {
    throw std::invalid_argument("DecodedProgram base must be word-aligned");
  }
  ops_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) ops_.push_back(decode_uop(words[i]));
}

DecodedProgram::DecodedProgram(const Program& program)
    : DecodedProgram(program.base, program.words.data(),
                     program.words.size()) {}

void DecodedProgram::patch(std::uint32_t addr, std::uint32_t word) {
  const std::uint32_t off = addr - base_;
  if ((off & 3u) || off >= bytes_) return;
  ops_[off >> 2] = decode_uop(word);
}

void DecodedProgram::serialize(common::ByteWriter& w) const {
  w.put_u32(kSerialVersion);
  w.put_u32(base_);
  w.put_u64(ops_.size());
  for (const MicroOp& op : ops_) {
    w.put_u8(static_cast<std::uint8_t>(op.kind));
    w.put_u8(op.rs);
    w.put_u8(op.rt);
    w.put_u8(op.rd);
    w.put_u8(op.shamt);
    w.put_u8(op.opcode);
    w.put_u8(op.funct);
    w.put_u8(op.flags);
    w.put_u32(op.imm);
  }
}

std::unique_ptr<DecodedProgram> DecodedProgram::deserialize(
    common::ByteReader& r) {
  if (r.get_u32() != kSerialVersion) return nullptr;
  const std::uint32_t base = r.get_u32();
  const std::size_t count = r.get_count(12);
  // bytes_ is a 32-bit byte length; a count that overflows it is corrupt.
  if ((base & 3u) || count > (std::uint32_t{0xffffffff} >> 2)) return nullptr;
  auto dp = std::make_unique<DecodedProgram>();
  dp->base_ = base;
  dp->bytes_ = static_cast<std::uint32_t>(count * 4);
  dp->ops_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    MicroOp op;
    const std::uint8_t kind = r.get_u8();
    if (kind > static_cast<std::uint8_t>(UopKind::kIllegalOpcode)) {
      return nullptr;
    }
    op.kind = static_cast<UopKind>(kind);
    op.rs = r.get_u8();
    op.rt = r.get_u8();
    op.rd = r.get_u8();
    op.shamt = r.get_u8();
    // Register indices and shamt are 5-bit fields; anything wider would
    // index out of the CPU's register file.
    if ((op.rs | op.rt | op.rd | op.shamt) & ~0x1fu) return nullptr;
    op.opcode = r.get_u8();
    op.funct = r.get_u8();
    op.flags = r.get_u8();
    op.imm = r.get_u32();
    dp->ops_.push_back(op);
  }
  if (!r.ok()) return nullptr;
  return dp;
}

}  // namespace sbst::isa
