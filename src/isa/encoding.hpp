// MIPS-I subset instruction encoding (the Plasma-supported instructions the
// SBST code styles are written in).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace sbst::isa {

/// Architectural register numbers by ABI name.
enum Reg : std::uint8_t {
  kZero = 0, kAt = 1, kV0 = 2, kV1 = 3,
  kA0 = 4, kA1 = 5, kA2 = 6, kA3 = 7,
  kT0 = 8, kT1 = 9, kT2 = 10, kT3 = 11, kT4 = 12, kT5 = 13, kT6 = 14,
  kT7 = 15,
  kS0 = 16, kS1 = 17, kS2 = 18, kS3 = 19, kS4 = 20, kS5 = 21, kS6 = 22,
  kS7 = 23,
  kT8 = 24, kT9 = 25, kK0 = 26, kK1 = 27,
  kGp = 28, kSp = 29, kFp = 30, kRa = 31,
};

/// Raw instruction fields (union of the R/I/J formats).
struct Fields {
  std::uint8_t opcode = 0;
  std::uint8_t rs = 0;
  std::uint8_t rt = 0;
  std::uint8_t rd = 0;
  std::uint8_t shamt = 0;
  std::uint8_t funct = 0;
  std::uint16_t imm = 0;       // I-type immediate
  std::uint32_t target = 0;    // J-type 26-bit word target
};

std::uint32_t encode(const Fields& f);
Fields decode(std::uint32_t word);

/// Register name -> number ("$s0", "$5", "$zero"). nullopt if not a register.
std::optional<std::uint8_t> parse_register(const std::string& token);
/// Canonical ABI name for a register number.
std::string register_name(std::uint8_t reg);

// ---- word builders used by the self-test code generators ------------------
// R-type
std::uint32_t sll(std::uint8_t rd, std::uint8_t rt, std::uint8_t shamt);
std::uint32_t srl(std::uint8_t rd, std::uint8_t rt, std::uint8_t shamt);
std::uint32_t sra(std::uint8_t rd, std::uint8_t rt, std::uint8_t shamt);
std::uint32_t sllv(std::uint8_t rd, std::uint8_t rt, std::uint8_t rs);
std::uint32_t srlv(std::uint8_t rd, std::uint8_t rt, std::uint8_t rs);
std::uint32_t srav(std::uint8_t rd, std::uint8_t rt, std::uint8_t rs);
std::uint32_t jr(std::uint8_t rs);
std::uint32_t brk();  // break: architectural halt in this model
std::uint32_t mfhi(std::uint8_t rd);
std::uint32_t mthi(std::uint8_t rs);
std::uint32_t mflo(std::uint8_t rd);
std::uint32_t mtlo(std::uint8_t rs);
std::uint32_t mult(std::uint8_t rs, std::uint8_t rt);
std::uint32_t multu(std::uint8_t rs, std::uint8_t rt);
std::uint32_t div(std::uint8_t rs, std::uint8_t rt);
std::uint32_t divu(std::uint8_t rs, std::uint8_t rt);
std::uint32_t add(std::uint8_t rd, std::uint8_t rs, std::uint8_t rt);
std::uint32_t addu(std::uint8_t rd, std::uint8_t rs, std::uint8_t rt);
std::uint32_t sub(std::uint8_t rd, std::uint8_t rs, std::uint8_t rt);
std::uint32_t subu(std::uint8_t rd, std::uint8_t rs, std::uint8_t rt);
std::uint32_t and_(std::uint8_t rd, std::uint8_t rs, std::uint8_t rt);
std::uint32_t or_(std::uint8_t rd, std::uint8_t rs, std::uint8_t rt);
std::uint32_t xor_(std::uint8_t rd, std::uint8_t rs, std::uint8_t rt);
std::uint32_t nor_(std::uint8_t rd, std::uint8_t rs, std::uint8_t rt);
std::uint32_t slt(std::uint8_t rd, std::uint8_t rs, std::uint8_t rt);
std::uint32_t sltu(std::uint8_t rd, std::uint8_t rs, std::uint8_t rt);
// I-type
std::uint32_t beq(std::uint8_t rs, std::uint8_t rt, std::int16_t offset);
std::uint32_t bne(std::uint8_t rs, std::uint8_t rt, std::int16_t offset);
std::uint32_t addi(std::uint8_t rt, std::uint8_t rs, std::int16_t imm);
std::uint32_t addiu(std::uint8_t rt, std::uint8_t rs, std::int16_t imm);
std::uint32_t slti(std::uint8_t rt, std::uint8_t rs, std::int16_t imm);
std::uint32_t sltiu(std::uint8_t rt, std::uint8_t rs, std::int16_t imm);
std::uint32_t andi(std::uint8_t rt, std::uint8_t rs, std::uint16_t imm);
std::uint32_t ori(std::uint8_t rt, std::uint8_t rs, std::uint16_t imm);
std::uint32_t xori(std::uint8_t rt, std::uint8_t rs, std::uint16_t imm);
std::uint32_t lui(std::uint8_t rt, std::uint16_t imm);
std::uint32_t lb(std::uint8_t rt, std::int16_t offset, std::uint8_t base);
std::uint32_t lh(std::uint8_t rt, std::int16_t offset, std::uint8_t base);
std::uint32_t lw(std::uint8_t rt, std::int16_t offset, std::uint8_t base);
std::uint32_t lbu(std::uint8_t rt, std::int16_t offset, std::uint8_t base);
std::uint32_t lhu(std::uint8_t rt, std::int16_t offset, std::uint8_t base);
std::uint32_t sb(std::uint8_t rt, std::int16_t offset, std::uint8_t base);
std::uint32_t sh(std::uint8_t rt, std::int16_t offset, std::uint8_t base);
std::uint32_t sw(std::uint8_t rt, std::int16_t offset, std::uint8_t base);
// J-type
std::uint32_t j(std::uint32_t word_target);
std::uint32_t jal(std::uint32_t word_target);
// Pseudo
inline std::uint32_t nop() { return 0; }

}  // namespace sbst::isa
