// Micro-op predecode: splitting instruction decode from execution.
//
// The CPU simulator used to call isa::decode on every retired instruction
// and re-derive hazard metadata (which register operands are read) inside
// the execute loop. For the paper's workloads — self-test routines executed
// once per period, once per injected fault, once per candidate routine —
// the same few hundred words are decoded millions of times. A MicroOp
// precomputes everything that is a pure function of the instruction word:
//
//  * a dense semantic class (`UopKind`, one enum value per executable
//    operation, so the dispatch switch compiles to a jump table);
//  * register indices and the shift amount;
//  * the immediate in its *consumed* form (sign- or zero-extended, shifted
//    for branches/jumps, pre-shifted <<16 for lui);
//  * hazard metadata (which of rs/rt the instruction actually reads — the
//    interlock checks of the 3-stage pipeline model);
//  * the raw opcode/funct byte pair (the control-decoder trace stream sees
//    exactly what the hardware decoder sees).
//
// decode_uop never throws: data words and unsupported encodings map to
// kIllegalFunct / kIllegalOpcode micro-ops that only raise an error when
// executed, exactly like the interpreter's lazy illegal-instruction check.
//
// A DecodedProgram is the predecoded image of a code region: one contiguous
// micro-op array indexed by word address. It is immutable under execution
// except for `patch`, which re-decodes a single word after a store into the
// code region (the CPU keeps a copy-on-write reference so a shared cache
// entry is never mutated).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/serialize.hpp"
#include "isa/assembler.hpp"
#include "isa/encoding.hpp"

namespace sbst::isa {

/// Semantic class of one instruction. Dense and closed: every supported
/// (opcode, funct) combination maps to exactly one kind.
enum class UopKind : std::uint8_t {
  // R-type shifts (immediate shamt, then register shamt).
  kSll, kSrl, kSra, kSllv, kSrlv, kSrav,
  // R-type control / HI-LO plumbing.
  kJr, kBreak, kMfhi, kMthi, kMflo, kMtlo,
  // Multi-cycle arithmetic.
  kMult, kMultu, kDiv, kDivu,
  // R-type ALU (add/addu and sub/subu share semantics in this model).
  kAddR, kSubR, kAndR, kOrR, kXorR, kNorR, kSltR, kSltuR,
  // Jumps and branches.
  kJ, kJal, kBeq, kBne,
  // Immediate ALU (addi/addiu share semantics; imm is pre-extended).
  kAddImm, kSltImm, kSltuImm, kAndImm, kOrImm, kXorImm, kLui,
  // Memory.
  kLb, kLh, kLw, kLbu, kLhu, kSb, kSh, kSw,
  // Unsupported encodings: raise CpuError only if executed.
  kIllegalFunct, kIllegalOpcode,
};

/// MicroOp::flags bits.
inline constexpr std::uint8_t kUopReadsRs = 1u << 0;
inline constexpr std::uint8_t kUopReadsRt = 1u << 1;

/// One predecoded instruction (12 bytes, contiguous in DecodedProgram).
struct MicroOp {
  UopKind kind = UopKind::kIllegalOpcode;
  std::uint8_t rs = 0;
  std::uint8_t rt = 0;
  std::uint8_t rd = 0;
  std::uint8_t shamt = 0;
  std::uint8_t opcode = 0;  // raw field: control-decoder trace + error text
  std::uint8_t funct = 0;   // raw field: control-decoder trace + error text
  std::uint8_t flags = 0;   // kUopReadsRs / kUopReadsRt hazard metadata
  /// Precomputed immediate in consumed form: sign-extended I-type immediate
  /// (also the load/store offset), zero-extended logical immediate, the
  /// lui value (<<16), the branch byte offset (simm<<2), or the jump target
  /// byte offset within the 256 MB segment (target<<2).
  std::uint32_t imm = 0;

  bool reads_rs() const { return flags & kUopReadsRs; }
  bool reads_rt() const { return flags & kUopReadsRt; }
};

static_assert(sizeof(MicroOp) == 12, "MicroOp must stay packed");

/// Predecodes one instruction word. Never throws; unsupported encodings
/// yield kIllegalFunct/kIllegalOpcode.
MicroOp decode_uop(std::uint32_t word);

/// Predecoded image of a code region: micro-ops for every word in
/// [base, base + 4*size). `base` must be word-aligned.
class DecodedProgram {
 public:
  DecodedProgram() = default;
  DecodedProgram(std::uint32_t base, const std::uint32_t* words,
                 std::size_t count);
  /// Predecodes a whole assembled image.
  explicit DecodedProgram(const Program& program);

  std::uint32_t base() const { return base_; }
  std::size_t size() const { return ops_.size(); }  // words
  std::uint32_t end_address() const { return base_ + bytes_; }

  /// Micro-op at byte address `addr`, or nullptr when `addr` is misaligned
  /// or outside the region (the caller falls back to decode-on-fetch).
  const MicroOp* lookup(std::uint32_t addr) const {
    const std::uint32_t off = addr - base_;  // wraps for addr < base_
    if ((off & 3u) || off >= bytes_) return nullptr;
    return &ops_[off >> 2];
  }

  /// Whether a word-aligned byte address lies inside the region.
  bool contains(std::uint32_t addr) const {
    return (addr - base_) < bytes_;
  }

  /// Re-decodes the word at `addr` (a store hit the code region).
  void patch(std::uint32_t addr, std::uint32_t word);

  /// Binary-image format version (part of the artifact-store key).
  static constexpr std::uint32_t kSerialVersion = 1;

  /// Appends a versioned binary image of the predecoded region to `w`.
  void serialize(common::ByteWriter& w) const;

  /// Rebuilds a predecoded region from serialize() bytes. Returns nullptr
  /// on any malformed image (wrong version, truncation, misaligned base,
  /// out-of-range kind bytes); the caller then re-decodes from scratch.
  static std::unique_ptr<DecodedProgram> deserialize(common::ByteReader& r);

 private:
  std::uint32_t base_ = 0;
  std::uint32_t bytes_ = 0;
  std::vector<MicroOp> ops_;
};

}  // namespace sbst::isa
