// Two-pass MIPS assembler.
//
// Supports exactly the Plasma-model subset plus the pseudo-instructions the
// paper's code styles rely on:
//   li  rt, imm32     -> lui/ori (or a single instruction when it fits,
//                        matching "the assembler decomposes li to lui and
//                        ori", paper Fig. 1 discussion)
//   la  rt, symbol    -> lui/ori of the symbol's address
//   move rd, rs       -> addu rd, rs, $zero
//   b   label         -> beq $zero, $zero, label
//   nop               -> sll $zero, $zero, 0
//
// Directives: `.word v[, v...]`, `.org addr` (pad to addr), `.align n`
// (pad to 2^n bytes). Labels are `ident:`; operands may be registers,
// numeric literals (decimal/0x hex, optionally negative), symbols, or
// `symbol+offset` / `symbol-offset` expressions. Comments start with `#`
// or `;`.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace sbst::isa {

/// Assembled memory image.
struct Program {
  std::uint32_t base = 0;           // byte address of words[0]
  std::vector<std::uint32_t> words;
  std::map<std::string, std::uint32_t> symbols;  // label -> byte address

  std::uint32_t end_address() const {
    return base + static_cast<std::uint32_t>(words.size()) * 4;
  }
  std::uint32_t symbol(const std::string& name) const;
  /// Number of 32-bit words (the paper's "Size (words)" metric).
  std::size_t size_words() const { return words.size(); }
};

class AsmError : public std::runtime_error {
 public:
  AsmError(std::size_t line, const std::string& message)
      : std::runtime_error("asm line " + std::to_string(line) + ": " +
                           message),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Assembles `source` at load address `base`. Throws AsmError on any
/// syntactic or semantic error.
Program assemble(const std::string& source, std::uint32_t base = 0);

}  // namespace sbst::isa
