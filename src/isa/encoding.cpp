#include "isa/encoding.hpp"

#include <array>
#include <cstdlib>

namespace sbst::isa {

std::uint32_t encode(const Fields& f) {
  if (f.opcode == 0x02 || f.opcode == 0x03) {
    return (static_cast<std::uint32_t>(f.opcode) << 26) |
           (f.target & 0x03ffffffu);
  }
  if (f.opcode == 0x00) {
    return (static_cast<std::uint32_t>(f.rs) << 21) |
           (static_cast<std::uint32_t>(f.rt) << 16) |
           (static_cast<std::uint32_t>(f.rd) << 11) |
           (static_cast<std::uint32_t>(f.shamt) << 6) | f.funct;
  }
  return (static_cast<std::uint32_t>(f.opcode) << 26) |
         (static_cast<std::uint32_t>(f.rs) << 21) |
         (static_cast<std::uint32_t>(f.rt) << 16) | f.imm;
}

Fields decode(std::uint32_t word) {
  Fields f;
  f.opcode = (word >> 26) & 0x3f;
  f.rs = (word >> 21) & 0x1f;
  f.rt = (word >> 16) & 0x1f;
  f.rd = (word >> 11) & 0x1f;
  f.shamt = (word >> 6) & 0x1f;
  f.funct = word & 0x3f;
  f.imm = word & 0xffff;
  f.target = word & 0x03ffffff;
  return f;
}

namespace {
constexpr std::array<const char*, 32> kRegNames = {
    "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
    "$t0",   "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
    "$s0",   "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
    "$t8",   "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra"};
}  // namespace

std::optional<std::uint8_t> parse_register(const std::string& token) {
  if (token.size() < 2 || token[0] != '$') return std::nullopt;
  for (std::uint8_t r = 0; r < 32; ++r) {
    if (token == kRegNames[r]) return r;
  }
  if (token == "$s8") return 30;
  // Numeric form $0..$31.
  char* end = nullptr;
  const long v = std::strtol(token.c_str() + 1, &end, 10);
  if (end && *end == '\0' && v >= 0 && v < 32) {
    return static_cast<std::uint8_t>(v);
  }
  return std::nullopt;
}

std::string register_name(std::uint8_t reg) {
  return reg < 32 ? kRegNames[reg] : "$?";
}

namespace {

std::uint32_t rtype(std::uint8_t funct, std::uint8_t rs, std::uint8_t rt,
                    std::uint8_t rd, std::uint8_t shamt = 0) {
  return encode({.opcode = 0, .rs = rs, .rt = rt, .rd = rd, .shamt = shamt,
                 .funct = funct});
}

std::uint32_t itype(std::uint8_t opcode, std::uint8_t rs, std::uint8_t rt,
                    std::uint16_t imm) {
  return encode({.opcode = opcode, .rs = rs, .rt = rt, .imm = imm});
}

std::uint16_t u16(std::int16_t v) { return static_cast<std::uint16_t>(v); }

}  // namespace

std::uint32_t sll(std::uint8_t rd, std::uint8_t rt, std::uint8_t shamt) {
  return rtype(0x00, 0, rt, rd, shamt);
}
std::uint32_t srl(std::uint8_t rd, std::uint8_t rt, std::uint8_t shamt) {
  return rtype(0x02, 0, rt, rd, shamt);
}
std::uint32_t sra(std::uint8_t rd, std::uint8_t rt, std::uint8_t shamt) {
  return rtype(0x03, 0, rt, rd, shamt);
}
std::uint32_t sllv(std::uint8_t rd, std::uint8_t rt, std::uint8_t rs) {
  return rtype(0x04, rs, rt, rd);
}
std::uint32_t srlv(std::uint8_t rd, std::uint8_t rt, std::uint8_t rs) {
  return rtype(0x06, rs, rt, rd);
}
std::uint32_t srav(std::uint8_t rd, std::uint8_t rt, std::uint8_t rs) {
  return rtype(0x07, rs, rt, rd);
}
std::uint32_t jr(std::uint8_t rs) { return rtype(0x08, rs, 0, 0); }
std::uint32_t brk() { return rtype(0x0d, 0, 0, 0); }
std::uint32_t mfhi(std::uint8_t rd) { return rtype(0x10, 0, 0, rd); }
std::uint32_t mthi(std::uint8_t rs) { return rtype(0x11, rs, 0, 0); }
std::uint32_t mflo(std::uint8_t rd) { return rtype(0x12, 0, 0, rd); }
std::uint32_t mtlo(std::uint8_t rs) { return rtype(0x13, rs, 0, 0); }
std::uint32_t mult(std::uint8_t rs, std::uint8_t rt) {
  return rtype(0x18, rs, rt, 0);
}
std::uint32_t multu(std::uint8_t rs, std::uint8_t rt) {
  return rtype(0x19, rs, rt, 0);
}
std::uint32_t div(std::uint8_t rs, std::uint8_t rt) {
  return rtype(0x1a, rs, rt, 0);
}
std::uint32_t divu(std::uint8_t rs, std::uint8_t rt) {
  return rtype(0x1b, rs, rt, 0);
}
std::uint32_t add(std::uint8_t rd, std::uint8_t rs, std::uint8_t rt) {
  return rtype(0x20, rs, rt, rd);
}
std::uint32_t addu(std::uint8_t rd, std::uint8_t rs, std::uint8_t rt) {
  return rtype(0x21, rs, rt, rd);
}
std::uint32_t sub(std::uint8_t rd, std::uint8_t rs, std::uint8_t rt) {
  return rtype(0x22, rs, rt, rd);
}
std::uint32_t subu(std::uint8_t rd, std::uint8_t rs, std::uint8_t rt) {
  return rtype(0x23, rs, rt, rd);
}
std::uint32_t and_(std::uint8_t rd, std::uint8_t rs, std::uint8_t rt) {
  return rtype(0x24, rs, rt, rd);
}
std::uint32_t or_(std::uint8_t rd, std::uint8_t rs, std::uint8_t rt) {
  return rtype(0x25, rs, rt, rd);
}
std::uint32_t xor_(std::uint8_t rd, std::uint8_t rs, std::uint8_t rt) {
  return rtype(0x26, rs, rt, rd);
}
std::uint32_t nor_(std::uint8_t rd, std::uint8_t rs, std::uint8_t rt) {
  return rtype(0x27, rs, rt, rd);
}
std::uint32_t slt(std::uint8_t rd, std::uint8_t rs, std::uint8_t rt) {
  return rtype(0x2a, rs, rt, rd);
}
std::uint32_t sltu(std::uint8_t rd, std::uint8_t rs, std::uint8_t rt) {
  return rtype(0x2b, rs, rt, rd);
}

std::uint32_t beq(std::uint8_t rs, std::uint8_t rt, std::int16_t offset) {
  return itype(0x04, rs, rt, u16(offset));
}
std::uint32_t bne(std::uint8_t rs, std::uint8_t rt, std::int16_t offset) {
  return itype(0x05, rs, rt, u16(offset));
}
std::uint32_t addi(std::uint8_t rt, std::uint8_t rs, std::int16_t imm) {
  return itype(0x08, rs, rt, u16(imm));
}
std::uint32_t addiu(std::uint8_t rt, std::uint8_t rs, std::int16_t imm) {
  return itype(0x09, rs, rt, u16(imm));
}
std::uint32_t slti(std::uint8_t rt, std::uint8_t rs, std::int16_t imm) {
  return itype(0x0a, rs, rt, u16(imm));
}
std::uint32_t sltiu(std::uint8_t rt, std::uint8_t rs, std::int16_t imm) {
  return itype(0x0b, rs, rt, u16(imm));
}
std::uint32_t andi(std::uint8_t rt, std::uint8_t rs, std::uint16_t imm) {
  return itype(0x0c, rs, rt, imm);
}
std::uint32_t ori(std::uint8_t rt, std::uint8_t rs, std::uint16_t imm) {
  return itype(0x0d, rs, rt, imm);
}
std::uint32_t xori(std::uint8_t rt, std::uint8_t rs, std::uint16_t imm) {
  return itype(0x0e, rs, rt, imm);
}
std::uint32_t lui(std::uint8_t rt, std::uint16_t imm) {
  return itype(0x0f, 0, rt, imm);
}
std::uint32_t lb(std::uint8_t rt, std::int16_t offset, std::uint8_t base) {
  return itype(0x20, base, rt, u16(offset));
}
std::uint32_t lh(std::uint8_t rt, std::int16_t offset, std::uint8_t base) {
  return itype(0x21, base, rt, u16(offset));
}
std::uint32_t lw(std::uint8_t rt, std::int16_t offset, std::uint8_t base) {
  return itype(0x23, base, rt, u16(offset));
}
std::uint32_t lbu(std::uint8_t rt, std::int16_t offset, std::uint8_t base) {
  return itype(0x24, base, rt, u16(offset));
}
std::uint32_t lhu(std::uint8_t rt, std::int16_t offset, std::uint8_t base) {
  return itype(0x25, base, rt, u16(offset));
}
std::uint32_t sb(std::uint8_t rt, std::int16_t offset, std::uint8_t base) {
  return itype(0x28, base, rt, u16(offset));
}
std::uint32_t sh(std::uint8_t rt, std::int16_t offset, std::uint8_t base) {
  return itype(0x29, base, rt, u16(offset));
}
std::uint32_t sw(std::uint8_t rt, std::int16_t offset, std::uint8_t base) {
  return itype(0x2b, base, rt, u16(offset));
}

std::uint32_t j(std::uint32_t word_target) {
  return encode({.opcode = 0x02, .target = word_target});
}
std::uint32_t jal(std::uint32_t word_target) {
  return encode({.opcode = 0x03, .target = word_target});
}

}  // namespace sbst::isa
