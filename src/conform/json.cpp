#include "conform/json.hpp"

#include <cctype>

namespace sbst::conform {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value(int depth) {
    if (depth > 64) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{': {
        ++pos_;
        v.kind = JsonValue::Kind::kObject;
        skip_ws();
        if (consume('}')) return v;
        for (;;) {
          skip_ws();
          std::string key = parse_string_body();
          skip_ws();
          expect(':');
          v.object.emplace_back(std::move(key), parse_value(depth + 1));
          skip_ws();
          if (consume(',')) continue;
          expect('}');
          return v;
        }
      }
      case '[': {
        ++pos_;
        v.kind = JsonValue::Kind::kArray;
        skip_ws();
        if (consume(']')) return v;
        for (;;) {
          v.array.push_back(parse_value(depth + 1));
          skip_ws();
          if (consume(',')) continue;
          expect(']');
          return v;
        }
      }
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string_body();
        return v;
      case 't':
        if (!consume_word("true")) fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_word("false")) fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_word("null")) fail("bad literal");
        return v;
      case '-':
        fail("negative numbers are not valid in a corpus document");
      default:
        break;
    }
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      fail(std::string("unexpected character '") + c + "'");
    }
    v.kind = JsonValue::Kind::kNumber;
    std::uint64_t n = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      const std::uint64_t digit =
          static_cast<std::uint64_t>(text_[pos_] - '0');
      if (n > (UINT64_MAX - digit) / 10) fail("number out of range");
      n = n * 10 + digit;
      ++pos_;
    }
    if (pos_ < text_.size() &&
        (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      fail("fractional numbers are not valid in a corpus document");
    }
    v.number = n;
    return v;
  }

  std::string parse_string_body() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        default: fail(std::string("unsupported escape '\\") + e + "'");
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  if (kind != Kind::kObject) {
    throw JsonError("json: member lookup '" + std::string(key) +
                    "' on a non-object value");
  }
  const JsonValue* v = find(key);
  if (!v) throw JsonError("json: missing member '" + std::string(key) + "'");
  return *v;
}

std::uint64_t JsonValue::as_u64() const {
  if (kind != Kind::kNumber) throw JsonError("json: expected a number");
  return number;
}

std::uint32_t JsonValue::as_u32() const {
  const std::uint64_t n = as_u64();
  if (n > UINT32_MAX) throw JsonError("json: number does not fit 32 bits");
  return static_cast<std::uint32_t>(n);
}

bool JsonValue::as_bool() const {
  if (kind != Kind::kBool) throw JsonError("json: expected a boolean");
  return boolean;
}

const std::string& JsonValue::as_string() const {
  if (kind != Kind::kString) throw JsonError("json: expected a string");
  return string;
}

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace sbst::conform
