// Three-executor differential replay of a conformance corpus.
//
// Every case runs through:
//   * Cpu::run_interpreter      — the golden fetch-decode-execute reference;
//   * Cpu::run_sink<NoSink>     — the predecoded micro-op core;
//   * Cpu::run_guarded<NoSink>  — the watchdog executor, with a generous
//     RunBudget and a StoreGuard spanning the code region and the data
//     window, so a clean case must end in kHalted / kInstructionBudget and
//     a trap case in kTrap (never kWildStore).
//
// The post-state (registers, HI/LO, code + window memory), the trap text,
// and the cycle accounting are diffed bitwise against the case's recorded
// final state. On an interpreter-vs-decoded divergence the case is re-run
// with event-recording sinks and the first differing hook event is
// reported (first-divergence minimization).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "conform/case.hpp"
#include "sim/exec.hpp"

namespace sbst::core {
class GradingSession;
}

namespace sbst::conform {

enum class Executor : std::uint8_t { kInterpreter, kDecoded, kGuarded };
inline constexpr std::size_t kExecutorCount = 3;

const char* executor_name(Executor e);

/// One executor's observation of a case.
struct Replay {
  ArchState state;
  CycleStats cycles;
  std::string trap;
  /// Guarded executor only; kHalted for the unguarded legs.
  sim::StopReason stop = sim::StopReason::kHalted;
};

/// Builds the pre-state of `c` into a fresh Cpu: loads the code image
/// (optionally sharing `decoded`), writes the data window, and sets
/// registers and HI/LO.
void prepare_cpu(sim::Cpu& cpu, const ConformCase& c,
                 std::shared_ptr<const isa::DecodedProgram> decoded);

/// Replays `c` on one executor. `decoded` (optional) is the shared
/// predecoded image for the decoded/guarded legs — e.g. a GradingSession
/// cache handout; when null those legs predecode locally. The interpreter
/// leg never uses it (it decodes every retired instruction by definition).
Replay replay_case(const ConformCase& c, Executor exec,
                   std::shared_ptr<const isa::DecodedProgram> decoded =
                       nullptr);

/// The generous guarded budget for a case: the exact instruction count,
/// unlimited cycles/stores.
sim::RunBudget case_budget(const ConformCase& c);
/// StoreGuard regions: the code span and the data window.
sim::StoreGuard case_store_guard(const ConformCase& c);

struct ClassTally {
  std::string cls;
  std::size_t cases = 0;
  std::size_t pass = 0;
  std::size_t fail = 0;
};

struct CaseFailure {
  std::string name;
  std::string cls;
  Executor exec = Executor::kInterpreter;
  /// First bitwise difference (field, expected vs got) and — for an
  /// interpreter/decoded split — the first differing hook event.
  std::string detail;
};

struct ConformReport {
  std::vector<ClassTally> by_class;  // corpus first-appearance order
  std::size_t cases = 0;
  std::size_t passed = 0;
  std::size_t failed = 0;
  std::vector<CaseFailure> failures;

  bool ok() const { return failed == 0; }
};

/// Replays a corpus through all three executors.
class ConformRunner {
 public:
  /// `session` (optional) serves the decoded/guarded legs from the
  /// session's content-addressed DecodedProgram cache.
  explicit ConformRunner(core::GradingSession* session = nullptr)
      : session_(session) {}

  ConformReport run(const Corpus& corpus) const;

 private:
  core::GradingSession* session_;
};

}  // namespace sbst::conform
