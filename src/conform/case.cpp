#include "conform/case.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/hash.hpp"
#include "conform/json.hpp"

namespace sbst::conform {

namespace {

namespace fs = std::filesystem;

// ---- canonical writer ------------------------------------------------------
// Hand-built strings, not a generic serializer: the byte sequence is part of
// the corpus identity (content hash, golden diffs), so key order and the
// absence of whitespace are fixed here once.

void put_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void put_key(std::string& out, const char* key) {
  out += '"';
  out += key;
  out += "\":";
}

void put_kv(std::string& out, const char* key, std::uint64_t v) {
  put_key(out, key);
  put_u64(out, v);
  out += ',';
}

void put_kv_bool(std::string& out, const char* key, bool v) {
  put_key(out, key);
  out += v ? "true" : "false";
  out += ',';
}

void put_cache(std::string& out, const char* key, const CacheParams& c) {
  put_key(out, key);
  out += '{';
  put_kv_bool(out, "enabled", c.enabled);
  put_kv(out, "line_words", c.line_words);
  put_kv(out, "lines", c.lines);
  put_key(out, "miss_penalty");
  put_u64(out, c.miss_penalty);
  out += "},";
}

void put_state(std::string& out, const char* key, const ArchState& s) {
  put_key(out, key);
  out += "{\"regs\":[";
  for (unsigned r = 0; r < 32; ++r) {
    if (r) out += ',';
    put_u64(out, s.regs[r]);
  }
  out += "],";
  put_kv(out, "hi", s.hi);
  put_kv(out, "lo", s.lo);
  out += "\"mem\":[";
  for (std::size_t i = 0; i < s.mem.size(); ++i) {
    if (i) out += ',';
    out += '[';
    put_u64(out, s.mem[i].addr);
    out += ',';
    put_u64(out, s.mem[i].word);
    out += ']';
  }
  out += "]},";
}

// ---- typed JSON extraction -------------------------------------------------

CacheParams cache_of(const JsonValue& v) {
  CacheParams c;
  c.enabled = v.at("enabled").as_bool();
  c.line_words = v.at("line_words").as_u32();
  c.lines = v.at("lines").as_u32();
  c.miss_penalty = v.at("miss_penalty").as_u32();
  return c;
}

ArchState state_of(const JsonValue& v) {
  ArchState s;
  const JsonValue& regs = v.at("regs");
  if (regs.kind != JsonValue::Kind::kArray || regs.array.size() != 32) {
    throw ConformError("corpus: \"regs\" must be an array of 32 words");
  }
  for (unsigned r = 0; r < 32; ++r) s.regs[r] = regs.array[r].as_u32();
  s.hi = v.at("hi").as_u32();
  s.lo = v.at("lo").as_u32();
  for (const JsonValue& m : v.at("mem").array) {
    if (m.kind != JsonValue::Kind::kArray || m.array.size() != 2) {
      throw ConformError("corpus: \"mem\" entries must be [addr, word]");
    }
    s.mem.push_back({m.array[0].as_u32(), m.array[1].as_u32()});
  }
  return s;
}

std::string manifest_file_name(const std::string& cls) {
  return cls + ".json";
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ConformError("corpus: cannot open " + path.string());
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

sim::CpuConfig CaseConfig::cpu_config() const {
  sim::CpuConfig cfg;
  cfg.forwarding = forwarding;
  cfg.mem_access_cycles = mem_access_cycles;
  cfg.mult_cycles = mult_cycles;
  cfg.div_cycles = div_cycles;
  cfg.branch_taken_penalty = branch_taken_penalty;
  cfg.mem_bytes = mem_bytes;
  cfg.icache = {icache.enabled, icache.line_words, icache.lines,
                icache.miss_penalty};
  cfg.dcache = {dcache.enabled, dcache.line_words, dcache.lines,
                dcache.miss_penalty};
  return cfg;
}

CycleStats CycleStats::of(const sim::ExecStats& s) {
  CycleStats c;
  c.instructions = s.instructions;
  c.cpu_cycles = s.cpu_cycles;
  c.pipeline_stall_cycles = s.pipeline_stall_cycles;
  c.memory_stall_cycles = s.memory_stall_cycles;
  c.loads = s.loads;
  c.stores = s.stores;
  c.icache_misses = s.icache_misses;
  c.dcache_misses = s.dcache_misses;
  c.icache_accesses = s.icache_accesses;
  c.dcache_accesses = s.dcache_accesses;
  c.halted = s.halted;
  return c;
}

std::string write_case(const ConformCase& c) {
  std::string out;
  out.reserve(1024);
  out += "{\"name\":\"";
  out += json_escape(c.name);
  out += "\",\"class\":\"";
  out += json_escape(c.cls);
  out += "\",";
  put_kv(out, "seed", c.seed);

  put_key(out, "initial");
  out += '{';
  put_kv(out, "entry", c.entry);
  out += "\"code\":[";
  for (std::size_t i = 0; i < c.code.size(); ++i) {
    if (i) out += ',';
    put_u64(out, c.code[i]);
  }
  out += "],";
  put_key(out, "config");
  out += '{';
  put_kv_bool(out, "forwarding", c.config.forwarding);
  put_kv(out, "mem_access_cycles", c.config.mem_access_cycles);
  put_kv(out, "mult_cycles", c.config.mult_cycles);
  put_kv(out, "div_cycles", c.config.div_cycles);
  put_kv(out, "branch_taken_penalty", c.config.branch_taken_penalty);
  put_kv(out, "mem_bytes", c.config.mem_bytes);
  put_cache(out, "icache", c.config.icache);
  put_cache(out, "dcache", c.config.dcache);
  out.back() = '}';  // replace trailing comma
  out += ',';
  put_state(out, "state", c.initial);
  out.back() = '}';
  out += ',';

  put_state(out, "final", c.final_state);
  out += "\"trap\":\"";
  out += json_escape(c.trap);
  out += "\",";

  put_key(out, "cycles");
  out += '{';
  put_kv(out, "instructions", c.cycles.instructions);
  put_kv(out, "cpu_cycles", c.cycles.cpu_cycles);
  put_kv(out, "pipeline_stall_cycles", c.cycles.pipeline_stall_cycles);
  put_kv(out, "memory_stall_cycles", c.cycles.memory_stall_cycles);
  put_kv(out, "loads", c.cycles.loads);
  put_kv(out, "stores", c.cycles.stores);
  put_kv(out, "icache_misses", c.cycles.icache_misses);
  put_kv(out, "dcache_misses", c.cycles.dcache_misses);
  put_kv(out, "icache_accesses", c.cycles.icache_accesses);
  put_kv(out, "dcache_accesses", c.cycles.dcache_accesses);
  put_key(out, "halted");
  out += c.cycles.halted ? "true" : "false";
  out += "}}";
  return out;
}

namespace {

ConformCase case_of(const JsonValue& v) {
  try {
    ConformCase c;
    c.name = v.at("name").as_string();
    c.cls = v.at("class").as_string();
    c.seed = v.at("seed").as_u64();

    const JsonValue& init = v.at("initial");
    c.entry = init.at("entry").as_u32();
    for (const JsonValue& w : init.at("code").array) {
      c.code.push_back(w.as_u32());
    }
    if (c.code.empty()) throw ConformError("corpus: case has no code");
    const JsonValue& cfg = init.at("config");
    c.config.forwarding = cfg.at("forwarding").as_bool();
    c.config.mem_access_cycles = cfg.at("mem_access_cycles").as_u32();
    c.config.mult_cycles = cfg.at("mult_cycles").as_u32();
    c.config.div_cycles = cfg.at("div_cycles").as_u32();
    c.config.branch_taken_penalty = cfg.at("branch_taken_penalty").as_u32();
    c.config.mem_bytes = cfg.at("mem_bytes").as_u32();
    c.config.icache = cache_of(cfg.at("icache"));
    c.config.dcache = cache_of(cfg.at("dcache"));
    c.initial = state_of(init.at("state"));

    c.final_state = state_of(v.at("final"));
    c.trap = v.at("trap").as_string();

    const JsonValue& cy = v.at("cycles");
    c.cycles.instructions = cy.at("instructions").as_u64();
    c.cycles.cpu_cycles = cy.at("cpu_cycles").as_u64();
    c.cycles.pipeline_stall_cycles = cy.at("pipeline_stall_cycles").as_u64();
    c.cycles.memory_stall_cycles = cy.at("memory_stall_cycles").as_u64();
    c.cycles.loads = cy.at("loads").as_u64();
    c.cycles.stores = cy.at("stores").as_u64();
    c.cycles.icache_misses = cy.at("icache_misses").as_u64();
    c.cycles.dcache_misses = cy.at("dcache_misses").as_u64();
    c.cycles.icache_accesses = cy.at("icache_accesses").as_u64();
    c.cycles.dcache_accesses = cy.at("dcache_accesses").as_u64();
    c.cycles.halted = cy.at("halted").as_bool();
    return c;
  } catch (const JsonError& e) {
    throw ConformError(std::string("corpus: malformed case: ") + e.what());
  }
}

}  // namespace

ConformCase parse_case(const std::string& line) {
  try {
    return case_of(json_parse(line));
  } catch (const JsonError& e) {
    throw ConformError(std::string("corpus: malformed case: ") + e.what());
  }
}

std::uint64_t corpus_content_hash(const Corpus& corpus) {
  common::Fnv1a h;
  // Serialization order (class-grouped), NOT raw corpus order: a freshly
  // generated corpus interleaves classes while a loaded one is grouped per
  // file, and the identity stamp must agree between the two.
  for (const std::string& cls : corpus_class_names(corpus)) {
    for (const ConformCase& c : corpus.cases) {
      if (c.cls != cls) continue;
      h.mix_string(write_case(c));
      h.mix_byte('\n');
    }
  }
  return h.value();
}

std::vector<std::string> corpus_class_names(const Corpus& corpus) {
  std::vector<std::string> names;
  for (const ConformCase& c : corpus.cases) {
    if (std::find(names.begin(), names.end(), c.cls) == names.end()) {
      names.push_back(c.cls);
    }
  }
  return names;
}

void save_corpus(const Corpus& corpus, const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw ConformError("corpus: cannot create " + dir + ": " + ec.message());
  }

  const std::vector<std::string> classes = corpus_class_names(corpus);
  for (const std::string& cls : classes) {
    std::string body = "{\"class\":\"" + json_escape(cls) +
                       "\",\"cases\":[\n";
    bool first = true;
    for (const ConformCase& c : corpus.cases) {
      if (c.cls != cls) continue;
      if (!first) body += ",\n";
      body += write_case(c);
      first = false;
    }
    body += "\n]}\n";
    const fs::path path = fs::path(dir) / manifest_file_name(cls);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << body;
    if (!out) throw ConformError("corpus: write failed: " + path.string());
  }

  char hash[20];
  std::snprintf(hash, sizeof(hash), "%016llx",
                static_cast<unsigned long long>(corpus_content_hash(corpus)));
  std::string manifest = "{\"version\":\"" + json_escape(corpus.version) +
                         "\",";
  put_kv(manifest, "seed", corpus.seed);
  put_kv(manifest, "count", corpus.cases.size());
  manifest += "\"content_hash\":\"";
  manifest += hash;
  manifest += "\",\"files\":[";
  for (std::size_t i = 0; i < classes.size(); ++i) {
    if (i) manifest += ',';
    manifest += '"' + json_escape(manifest_file_name(classes[i])) + '"';
  }
  manifest += "]}\n";
  const fs::path path = fs::path(dir) / "corpus.json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << manifest;
  if (!out) throw ConformError("corpus: write failed: " + path.string());
}

Corpus load_corpus(const std::string& dir) {
  JsonValue manifest;
  try {
    manifest = json_parse(read_file(fs::path(dir) / "corpus.json"));
  } catch (const JsonError& e) {
    throw ConformError(std::string("corpus: malformed manifest: ") +
                       e.what());
  }

  Corpus corpus;
  try {
    corpus.version = manifest.at("version").as_string();
    if (corpus.version != kCorpusVersion) {
      throw ConformError("corpus: unsupported version \"" + corpus.version +
                         "\" (this build reads " + kCorpusVersion + ")");
    }
    corpus.seed = manifest.at("seed").as_u64();
    const std::uint64_t count = manifest.at("count").as_u64();
    const std::string declared_hash = manifest.at("content_hash").as_string();

    for (const JsonValue& f : manifest.at("files").array) {
      const std::string& file = f.as_string();
      JsonValue doc;
      try {
        doc = json_parse(read_file(fs::path(dir) / file));
      } catch (const JsonError& e) {
        throw ConformError("corpus: malformed " + file + ": " + e.what());
      }
      const std::string& cls = doc.at("class").as_string();
      for (const JsonValue& cv : doc.at("cases").array) {
        ConformCase c = case_of(cv);
        if (c.cls != cls) {
          throw ConformError("corpus: case " + c.name + " in " + file +
                             " declares class " + c.cls);
        }
        corpus.cases.push_back(std::move(c));
      }
    }

    if (corpus.cases.size() != count) {
      throw ConformError("corpus: manifest count " + std::to_string(count) +
                         " != " + std::to_string(corpus.cases.size()) +
                         " loaded cases");
    }
    char hash[20];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(
                      corpus_content_hash(corpus)));
    if (declared_hash != hash) {
      throw ConformError("corpus: content hash mismatch (manifest " +
                         declared_hash + ", computed " + hash + ")");
    }
  } catch (const JsonError& e) {
    throw ConformError(std::string("corpus: malformed manifest: ") +
                       e.what());
  }
  return corpus;
}

}  // namespace sbst::conform
