// Conformance-corpus data model: one randomized single-instruction test
// with full pre/post architectural state, ProcessorTests-style.
//
// A case pins down everything the three executors need to agree on:
//
//   initial — registers, HI/LO, a small data-memory window, and the
//             cache/pipeline configuration the CPU is built with;
//   code    — one instruction word (two for the hazard/delay-slot classes)
//             at a randomized entry address;
//   final   — the bitwise post-state after executing exactly
//             `code.size()` instructions on the reference interpreter,
//             including the code-region words (self-modifying cases);
//   cycles  — the full ExecStats breakdown, so the timing model (stalls,
//             interlocks, cache misses) is conformance-checked too;
//   trap    — non-empty when the case ends in a CPU trap: every executor
//             must raise the identical message.
//
// Serialization is canonical one-line JSON per case, grouped into one file
// per instruction class plus a corpus.json manifest stamped with an FNV-1a
// content hash over the case lines (the versioned-corpus policy of
// SNIPPETS.md §2).
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/cpu.hpp"

namespace sbst::conform {

class ConformError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Corpus format version. Bump on any serialization or generation change
/// that alters checked-in bytes; old directories keep their version string.
inline constexpr const char* kCorpusVersion = "v1";

/// Data-memory window size per case, in words.
inline constexpr unsigned kWindowWords = 8;

/// Cache geometry drawn per case (a compact mirror of sim::CacheConfig).
struct CacheParams {
  bool enabled = false;
  std::uint32_t line_words = 4;
  std::uint32_t lines = 128;
  std::uint32_t miss_penalty = 20;

  friend bool operator==(const CacheParams&, const CacheParams&) = default;
};

/// The per-case CPU build configuration.
struct CaseConfig {
  bool forwarding = true;
  std::uint32_t mem_access_cycles = 1;
  std::uint32_t mult_cycles = 4;
  std::uint32_t div_cycles = 32;
  std::uint32_t branch_taken_penalty = 0;
  std::uint32_t mem_bytes = 1u << 16;
  CacheParams icache;
  CacheParams dcache;

  sim::CpuConfig cpu_config() const;

  friend bool operator==(const CaseConfig&, const CaseConfig&) = default;
};

/// One observed memory word.
struct MemWord {
  std::uint32_t addr = 0;
  std::uint32_t word = 0;

  friend bool operator==(const MemWord&, const MemWord&) = default;
};

/// Register/HI/LO/memory snapshot. `mem` holds the data window pre-state;
/// the post-state additionally lists the code-region words first (so
/// self-modifying stores are part of the bitwise comparison).
struct ArchState {
  std::array<std::uint32_t, 32> regs{};
  std::uint32_t hi = 0;
  std::uint32_t lo = 0;
  std::vector<MemWord> mem;

  friend bool operator==(const ArchState&, const ArchState&) = default;
};

/// Full ExecStats mirror: the cycle-accounting side of conformance.
struct CycleStats {
  std::uint64_t instructions = 0;
  std::uint64_t cpu_cycles = 0;
  std::uint64_t pipeline_stall_cycles = 0;
  std::uint64_t memory_stall_cycles = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t icache_misses = 0;
  std::uint64_t dcache_misses = 0;
  std::uint64_t icache_accesses = 0;
  std::uint64_t dcache_accesses = 0;
  bool halted = false;

  static CycleStats of(const sim::ExecStats& s);

  friend bool operator==(const CycleStats&, const CycleStats&) = default;
};

struct ConformCase {
  std::string name;   // "<class>_<ordinal>", unique within a corpus
  std::string cls;    // instruction-class key (encoder builder name)
  std::uint64_t seed = 0;  // this case's independent RNG stream seed
  std::uint32_t entry = 0;
  std::vector<std::uint32_t> code;
  CaseConfig config;
  ArchState initial;
  ArchState final_state;
  /// Non-empty: executing the case must raise exactly this CpuError text.
  std::string trap;
  /// For trap cases these are the guarded run's partial-progress stats.
  CycleStats cycles;

  friend bool operator==(const ConformCase&, const ConformCase&) = default;
};

struct Corpus {
  std::string version = kCorpusVersion;
  std::uint64_t seed = 0;
  std::vector<ConformCase> cases;
};

/// Canonical one-line JSON for a case (no trailing newline).
std::string write_case(const ConformCase& c);
/// Inverse of write_case. Throws ConformError on missing/ill-typed fields.
ConformCase parse_case(const std::string& line);

/// FNV-1a 64 over every case line + newline separators, iterated in
/// serialization order (class-grouped, classes in first-appearance order):
/// the corpus identity stamped into the manifest and the run summary. The
/// grouped order makes the hash agree between a freshly generated corpus
/// (class-interleaved) and one reloaded from disk (grouped per file).
std::uint64_t corpus_content_hash(const Corpus& corpus);

/// Class keys in first-appearance order.
std::vector<std::string> corpus_class_names(const Corpus& corpus);

/// Writes `dir/corpus.json` (manifest: version, seed, count, content hash,
/// file list) plus one `<class>.json` case file per instruction class.
/// Creates `dir` if needed. Throws ConformError on I/O failure.
void save_corpus(const Corpus& corpus, const std::string& dir);

/// Loads a directory written by save_corpus. Verifies the manifest version,
/// the per-file case classes, and the content hash; throws ConformError on
/// any mismatch or malformed file.
Corpus load_corpus(const std::string& dir);

}  // namespace sbst::conform
