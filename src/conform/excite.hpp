// Corpus-as-TPG hook: replaying conformance cases with the coverage
// evaluator's TraceCollector turns the randomized pre-states into
// excitation PatternSets — an instruction-level pseudorandom stimulus
// source for the components no dedicated routine targets directly (the
// hidden forwarding unit, the M-VC branch adder, the control decoder).
#pragma once

#include "conform/case.hpp"
#include "core/evaluate.hpp"

namespace sbst::conform {

/// Replays a whole corpus through the traced decoded executor and exposes
/// the per-component excitation streams.
class CorpusExcitation {
 public:
  CorpusExcitation(const core::ProcessorModel& model, const Corpus& corpus);

  const core::TraceCollector& collector() const { return collector_; }

  /// The deduplicated combinational pattern stream a component received
  /// across the corpus. Supported: kAlu, kShifter, kMultiplier, kControl,
  /// kForwarding, kBranchAdder; throws ConformError otherwise.
  const fault::PatternSet& patterns(core::CutId id) const;

 private:
  core::TraceCollector collector_;
};

}  // namespace sbst::conform
