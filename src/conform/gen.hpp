// Randomized conformance-case generation (ProcessorTests-style).
//
// CaseGen covers every word builder in src/isa/encoding (46 single-
// instruction classes) plus the hazard / delay-slot / self-modifying /
// misaligned corner classes that need a second instruction, cycling through
// the class table case by case. Each case draws its own architectural
// pre-state AND its own CPU build configuration (forwarding, memory
// latency, mul/div latency, branch penalty, cache geometry), then executes
// on the reference interpreter to record the post-state.
//
// Determinism contract: case `i` is generated on its own golden-ratio-
// derived RNG stream (seed ^ 0x9e3779b97f4a7c15 * (i+1), the same stream-
// split idiom as the periodic-test campaign), so the bytes of case `i`
// depend only on (corpus seed, i) — never on generation order, batch size,
// or thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "conform/case.hpp"

namespace sbst::conform {

struct GenOptions {
  std::uint64_t seed = 1;
  std::size_t count = 500;
};

class CaseGen {
 public:
  explicit CaseGen(const GenOptions& options = {}) : options_(options) {}

  /// The fixed class table (one key per encoder builder + corner classes).
  static const std::vector<const char*>& class_names();

  /// Generates case `index` of this corpus on its independent RNG stream.
  ConformCase make_case(std::size_t index) const;

  /// All `options.count` cases, in index order.
  Corpus generate() const;

 private:
  GenOptions options_;
};

}  // namespace sbst::conform
