#include "conform/runner.hpp"

#include <cstdio>

#include "common/bits.hpp"
#include "core/session.hpp"

namespace sbst::conform {

namespace {

/// Records every trace hook as a formatted line: the replayable event
/// stream used for first-divergence minimization. Final, so the TraceSink
/// calls devirtualize.
class EventRecorder final : public sim::CpuHooks {
 public:
  std::vector<std::string>& events() { return events_; }

  void on_instruction_start(std::uint32_t pc) override {
    add("instr pc=" + to_hex32(pc));
  }
  void on_alu(rtlgen::AluOp op, std::uint32_t a, std::uint32_t b) override {
    add("alu op=" + std::to_string(static_cast<int>(op)) + " a=" +
        to_hex32(a) + " b=" + to_hex32(b));
  }
  void on_shift(rtlgen::ShiftOp op, std::uint32_t value,
                std::uint32_t shamt) override {
    add("shift op=" + std::to_string(static_cast<int>(op)) + " value=" +
        to_hex32(value) + " shamt=" + std::to_string(shamt));
  }
  void on_mult(std::uint32_t a, std::uint32_t b) override {
    add("mult a=" + to_hex32(a) + " b=" + to_hex32(b));
  }
  void on_div(std::uint32_t a, std::uint32_t b) override {
    add("div a=" + to_hex32(a) + " b=" + to_hex32(b));
  }
  void on_regfile(std::uint8_t waddr, std::uint32_t wdata, bool wen,
                  std::uint8_t raddr1, std::uint8_t raddr2) override {
    add("regfile waddr=" + std::to_string(waddr) + " wdata=" +
        to_hex32(wdata) + " wen=" + std::to_string(wen) + " raddr1=" +
        std::to_string(raddr1) + " raddr2=" + std::to_string(raddr2));
  }
  void on_mem(std::uint32_t addr, std::uint32_t wdata, rtlgen::MemSize size,
              bool sign, bool wr, std::uint32_t rdata) override {
    add("mem addr=" + to_hex32(addr) + " wdata=" + to_hex32(wdata) +
        " size=" + std::to_string(static_cast<int>(size)) + " sign=" +
        std::to_string(sign) + " wr=" + std::to_string(wr) + " rdata=" +
        to_hex32(rdata));
  }
  void on_control(std::uint8_t opcode, std::uint8_t funct) override {
    add("control opcode=" + std::to_string(opcode) + " funct=" +
        std::to_string(funct));
  }
  void on_forward(std::uint8_t rs, std::uint8_t rt, std::uint8_t ex_rd,
                  bool ex_wen, std::uint8_t mem_rd, bool mem_wen) override {
    add("forward rs=" + std::to_string(rs) + " rt=" + std::to_string(rt) +
        " ex_rd=" + std::to_string(ex_rd) + " ex_wen=" +
        std::to_string(ex_wen) + " mem_rd=" + std::to_string(mem_rd) +
        " mem_wen=" + std::to_string(mem_wen));
  }
  void on_branch_flush() override { add("branch_flush"); }
  void on_branch_target(std::uint32_t pc_plus4,
                        std::uint32_t offset) override {
    add("branch_target pc_plus4=" + to_hex32(pc_plus4) + " offset=" +
        to_hex32(offset));
  }

 private:
  void add(std::string s) { events_.push_back(std::move(s)); }
  std::vector<std::string> events_;
};

ArchState read_state(const sim::Cpu& cpu, const ConformCase& c) {
  ArchState s;
  for (unsigned r = 0; r < 32; ++r) s.regs[r] = cpu.reg(r);
  s.hi = cpu.hi();
  s.lo = cpu.lo();
  for (std::size_t i = 0; i < c.code.size(); ++i) {
    const std::uint32_t addr = c.entry + static_cast<std::uint32_t>(4 * i);
    s.mem.push_back({addr, cpu.read_word(addr)});
  }
  for (const MemWord& m : c.initial.mem) {
    s.mem.push_back({m.addr, cpu.read_word(m.addr)});
  }
  return s;
}

std::string hex_pair(const char* field, std::uint32_t expected,
                     std::uint32_t got) {
  return std::string(field) + ": expected " + to_hex32(expected) + ", got " +
         to_hex32(got);
}

std::string num_pair(const char* field, std::uint64_t expected,
                     std::uint64_t got) {
  return std::string(field) + ": expected " + std::to_string(expected) +
         ", got " + std::to_string(got);
}

/// First bitwise difference between the recorded post-state and one
/// executor's replay; empty when they agree.
std::string diff_replay(const ConformCase& c, const Replay& rep,
                        Executor exec) {
  if (rep.trap != c.trap) {
    return "trap: expected \"" + c.trap + "\", got \"" + rep.trap + "\"";
  }
  for (unsigned r = 0; r < 32; ++r) {
    if (rep.state.regs[r] != c.final_state.regs[r]) {
      return hex_pair(("regs[" + std::to_string(r) + "]").c_str(),
                      c.final_state.regs[r], rep.state.regs[r]);
    }
  }
  if (rep.state.hi != c.final_state.hi) {
    return hex_pair("hi", c.final_state.hi, rep.state.hi);
  }
  if (rep.state.lo != c.final_state.lo) {
    return hex_pair("lo", c.final_state.lo, rep.state.lo);
  }
  if (rep.state.mem.size() != c.final_state.mem.size()) {
    return num_pair("mem entries", c.final_state.mem.size(),
                    rep.state.mem.size());
  }
  for (std::size_t i = 0; i < rep.state.mem.size(); ++i) {
    if (rep.state.mem[i] != c.final_state.mem[i]) {
      return hex_pair(
          ("mem[" + to_hex32(c.final_state.mem[i].addr) + "]").c_str(),
          c.final_state.mem[i].word, rep.state.mem[i].word);
    }
  }
  // The interpreter/decoded legs lose their stats when a trap unwinds, so
  // the recorded cycle breakdown (taken from the guarded run's
  // partial-progress stats) is only checked on the guarded leg there.
  const bool check_cycles = exec == Executor::kGuarded || c.trap.empty();
  if (check_cycles && rep.cycles != c.cycles) {
    const CycleStats& e = c.cycles;
    const CycleStats& g = rep.cycles;
    if (e.instructions != g.instructions) {
      return num_pair("cycles.instructions", e.instructions, g.instructions);
    }
    if (e.cpu_cycles != g.cpu_cycles) {
      return num_pair("cycles.cpu_cycles", e.cpu_cycles, g.cpu_cycles);
    }
    if (e.pipeline_stall_cycles != g.pipeline_stall_cycles) {
      return num_pair("cycles.pipeline_stall_cycles", e.pipeline_stall_cycles,
                      g.pipeline_stall_cycles);
    }
    if (e.memory_stall_cycles != g.memory_stall_cycles) {
      return num_pair("cycles.memory_stall_cycles", e.memory_stall_cycles,
                      g.memory_stall_cycles);
    }
    if (e.loads != g.loads) return num_pair("cycles.loads", e.loads, g.loads);
    if (e.stores != g.stores) {
      return num_pair("cycles.stores", e.stores, g.stores);
    }
    if (e.icache_misses != g.icache_misses) {
      return num_pair("cycles.icache_misses", e.icache_misses,
                      g.icache_misses);
    }
    if (e.dcache_misses != g.dcache_misses) {
      return num_pair("cycles.dcache_misses", e.dcache_misses,
                      g.dcache_misses);
    }
    if (e.icache_accesses != g.icache_accesses) {
      return num_pair("cycles.icache_accesses", e.icache_accesses,
                      g.icache_accesses);
    }
    if (e.dcache_accesses != g.dcache_accesses) {
      return num_pair("cycles.dcache_accesses", e.dcache_accesses,
                      g.dcache_accesses);
    }
    if (e.halted != g.halted) {
      return num_pair("cycles.halted", e.halted, g.halted);
    }
  }
  if (exec == Executor::kGuarded) {
    const sim::StopReason expect =
        !c.trap.empty() ? sim::StopReason::kTrap
        : c.cycles.halted ? sim::StopReason::kHalted
                          : sim::StopReason::kInstructionBudget;
    if (rep.stop != expect) {
      return std::string("stop reason: expected ") +
             sim::stop_reason_name(expect) + ", got " +
             sim::stop_reason_name(rep.stop);
    }
  }
  return {};
}

/// Replays the case on the interpreter and decoded executors with event
/// recording and reports the first differing hook event — the minimized
/// divergence witness.
std::string first_divergence(const ConformCase& c) {
  EventRecorder ref;
  {
    sim::Cpu cpu(c.config.cpu_config());
    prepare_cpu(cpu, c, nullptr);
    cpu.set_hooks(&ref);
    try {
      cpu.run_interpreter(c.entry, c.code.size());
    } catch (const sim::CpuError&) {
    }
  }
  EventRecorder dec;
  {
    sim::Cpu cpu(c.config.cpu_config());
    prepare_cpu(cpu, c, nullptr);
    sim::TraceSink<EventRecorder> sink{&dec};
    try {
      cpu.run_sink(c.entry, sink, c.code.size());
    } catch (const sim::CpuError&) {
    }
  }
  const std::vector<std::string>& a = ref.events();
  const std::vector<std::string>& b = dec.events();
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) {
      return "first differing event [" + std::to_string(i) +
             "]: interpreter {" + a[i] + "} vs decoded {" + b[i] + "}";
    }
  }
  if (a.size() != b.size()) {
    const bool ref_longer = a.size() > b.size();
    return "event streams diverge at [" + std::to_string(n) + "]: " +
           (ref_longer ? "interpreter" : "decoded") + " continues with {" +
           (ref_longer ? a[n] : b[n]) + "}";
  }
  return "hook event streams identical (" + std::to_string(a.size()) +
         " events)";
}

}  // namespace

const char* executor_name(Executor e) {
  switch (e) {
    case Executor::kInterpreter: return "interpreter";
    case Executor::kDecoded: return "decoded";
    case Executor::kGuarded: return "guarded";
  }
  return "?";
}

void prepare_cpu(sim::Cpu& cpu, const ConformCase& c,
                 std::shared_ptr<const isa::DecodedProgram> decoded) {
  cpu.reset();
  isa::Program image;
  image.base = c.entry;
  image.words = c.code;
  cpu.load(image, std::move(decoded));
  for (const MemWord& m : c.initial.mem) cpu.write_word(m.addr, m.word);
  for (unsigned r = 1; r < 32; ++r) cpu.set_reg(r, c.initial.regs[r]);
  cpu.set_hi(c.initial.hi);
  cpu.set_lo(c.initial.lo);
}

sim::RunBudget case_budget(const ConformCase& c) {
  sim::RunBudget budget;
  budget.max_instructions = c.code.size();
  budget.max_cycles = 0;   // unlimited
  budget.max_stores = 0;   // unlimited
  return budget;
}

sim::StoreGuard case_store_guard(const ConformCase& c) {
  sim::StoreGuard guard;
  guard.regions.push_back(
      {c.entry, c.entry + static_cast<std::uint32_t>(4 * c.code.size())});
  if (!c.initial.mem.empty()) {
    guard.regions.push_back(
        {c.initial.mem.front().addr, c.initial.mem.back().addr + 4});
  }
  return guard;
}

Replay replay_case(const ConformCase& c, Executor exec,
                   std::shared_ptr<const isa::DecodedProgram> decoded) {
  sim::Cpu cpu(c.config.cpu_config());
  prepare_cpu(cpu, c,
              exec == Executor::kInterpreter ? nullptr : std::move(decoded));
  const std::uint64_t len = c.code.size();
  Replay rep;
  switch (exec) {
    case Executor::kInterpreter:
      try {
        rep.cycles = CycleStats::of(cpu.run_interpreter(c.entry, len));
      } catch (const sim::CpuError& e) {
        rep.trap = e.what();
      }
      break;
    case Executor::kDecoded: {
      sim::NoSink sink;
      try {
        rep.cycles = CycleStats::of(cpu.run_sink(c.entry, sink, len));
      } catch (const sim::CpuError& e) {
        rep.trap = e.what();
      }
      break;
    }
    case Executor::kGuarded: {
      sim::NoSink sink;
      const sim::RunBudget budget = case_budget(c);
      const sim::StoreGuard guard = case_store_guard(c);
      const sim::GuardedResult r =
          cpu.run_guarded(c.entry, sink, budget, &guard);
      rep.cycles = CycleStats::of(r.stats);
      rep.stop = r.reason;
      if (r.reason == sim::StopReason::kTrap) {
        rep.trap = r.trap_message;
      } else if (r.reason == sim::StopReason::kWildStore) {
        rep.trap = "wild store at " + to_hex32(r.wild_store_addr);
      }
      break;
    }
  }
  rep.state = read_state(cpu, c);
  return rep;
}

ConformReport ConformRunner::run(const Corpus& corpus) const {
  constexpr std::size_t kMaxReportedFailures = 10;
  ConformReport report;
  for (const ConformCase& c : corpus.cases) {
    ClassTally* tally = nullptr;
    for (ClassTally& t : report.by_class) {
      if (t.cls == c.cls) {
        tally = &t;
        break;
      }
    }
    if (!tally) {
      report.by_class.push_back({c.cls, 0, 0, 0});
      tally = &report.by_class.back();
    }
    ++report.cases;
    ++tally->cases;

    isa::Program image;
    image.base = c.entry;
    image.words = c.code;
    const std::shared_ptr<const isa::DecodedProgram> decoded =
        session_ ? session_->decoded(image)
                 : std::make_shared<const isa::DecodedProgram>(image);

    bool ok = true;
    for (std::size_t e = 0; e < kExecutorCount; ++e) {
      const Executor exec = static_cast<Executor>(e);
      const Replay rep = replay_case(c, exec, decoded);
      const std::string diff = diff_replay(c, rep, exec);
      if (diff.empty()) continue;
      ok = false;
      if (report.failures.size() < kMaxReportedFailures) {
        report.failures.push_back(
            {c.name, c.cls, exec,
             diff + "; " + first_divergence(c)});
      }
    }
    if (ok) {
      ++report.passed;
      ++tally->pass;
    } else {
      ++report.failed;
      ++tally->fail;
    }
  }
  return report;
}

}  // namespace sbst::conform
