// Minimal JSON reader/writer for the conformance corpus.
//
// The corpus format (ProcessorTests-style pre/post state pairs) only needs
// objects, arrays, strings, booleans and unsigned integers, so this is a
// deliberately small hand-rolled parser rather than a dependency: numbers
// are uint64 (register words, cycle counts, seeds), and the writer emits a
// canonical byte sequence (no whitespace variation, fixed key order chosen
// by the caller) so corpora can be golden-diffed and content-hashed.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sbst::conform {

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One parsed JSON value. Object member order is preserved.
struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  std::uint64_t number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member by key; throws JsonError when missing or not an object.
  const JsonValue& at(std::string_view key) const;
  /// Object member by key, nullptr when missing.
  const JsonValue* find(std::string_view key) const;

  // Typed accessors with clear errors (used all over corpus loading).
  std::uint64_t as_u64() const;
  std::uint32_t as_u32() const;
  bool as_bool() const;
  const std::string& as_string() const;
};

/// Parses one JSON document. Throws JsonError on malformed input, negative
/// or fractional numbers (the corpus stores unsigned integers only), depth
/// beyond 64, or trailing garbage.
JsonValue json_parse(std::string_view text);

/// Escapes a string for embedding between double quotes.
std::string json_escape(std::string_view s);

}  // namespace sbst::conform
