#include "conform/gen.hpp"

#include <cstdio>

#include "common/rng.hpp"
#include "conform/runner.hpp"
#include "isa/decode.hpp"
#include "isa/encoding.hpp"

namespace sbst::conform {

namespace {

/// Mutable working state handed to each class emitter: the case under
/// construction (config and pre-state already drawn) plus draw helpers.
/// Emitters may adjust pre-state registers (memory targeting, forced branch
/// equality) — that is part of the case's pre-state, not a side channel.
struct Draft {
  Rng& rng;
  ConformCase& c;
  std::uint32_t window_base;

  std::uint8_t reg() { return static_cast<std::uint8_t>(1 + rng.below(31)); }
  std::uint8_t any_reg() {
    return static_cast<std::uint8_t>(rng.below(32));
  }
  std::uint8_t shamt() { return static_cast<std::uint8_t>(rng.below(32)); }
  std::int16_t imm16() { return static_cast<std::int16_t>(rng.next32()); }
  std::uint16_t uimm16() { return static_cast<std::uint16_t>(rng.next32()); }

  /// A memory operand hitting a `align`-aligned address inside the data
  /// window: picks the address, then solves regs[base] = addr - offset.
  struct MemRef {
    std::uint8_t base = 0;
    std::int16_t off = 0;
  };
  MemRef mem_ref(unsigned align) {
    const std::uint32_t span = kWindowWords * 4;
    const std::uint32_t addr =
        window_base +
        static_cast<std::uint32_t>(rng.below(span / align)) * align;
    return solve(addr);
  }
  /// Same, but the address violates `align` (the trap class).
  MemRef misaligned_ref(unsigned align) {
    const std::uint32_t word_addr =
        window_base + static_cast<std::uint32_t>(rng.below(kWindowWords)) * 4;
    const std::uint32_t skew =
        align == 2 ? 1 : static_cast<std::uint32_t>(1 + rng.below(3));
    return solve(word_addr + skew);
  }
  MemRef solve(std::uint32_t addr) {
    MemRef m;
    m.base = reg();
    m.off = imm16();
    c.initial.regs[m.base] =
        addr - static_cast<std::uint32_t>(static_cast<std::int32_t>(m.off));
    return m;
  }

  /// Forces regs[a] == regs[b] (taken-branch coin flip).
  void force_equal(std::uint8_t a, std::uint8_t b) {
    if (b != 0) {
      c.initial.regs[b] = c.initial.regs[a];
    } else if (a != 0) {
      c.initial.regs[a] = 0;
    }
  }

  void emit(std::uint32_t word) { c.code.push_back(word); }
};

using Emit = void (*)(Draft&);

std::uint32_t draw_value(Rng& rng) {
  // Corner values often enough that sign/carry/overflow paths are hit.
  static constexpr std::uint32_t kSpecial[] = {
      0u, 1u, 0xffffffffu, 0x80000000u, 0x7fffffffu, 0xaaaaaaaau,
      0x55555555u, 0x0000ffffu,
  };
  if (rng.chance(0.25)) {
    return kSpecial[rng.below(sizeof(kSpecial) / sizeof(kSpecial[0]))];
  }
  return rng.next32();
}

CacheParams draw_cache(Rng& rng) {
  CacheParams p;
  p.enabled = rng.chance(0.5);
  static constexpr std::uint32_t kLineWords[] = {2, 4, 8};
  static constexpr std::uint32_t kLines[] = {16, 64, 128};
  p.line_words = kLineWords[rng.below(3)];
  p.lines = kLines[rng.below(3)];
  p.miss_penalty = 5 + static_cast<std::uint32_t>(rng.below(28));
  return p;
}

CaseConfig draw_config(Rng& rng) {
  CaseConfig cfg;
  cfg.forwarding = rng.chance(0.5);
  cfg.mem_access_cycles = 1 + static_cast<std::uint32_t>(rng.below(2));
  cfg.mult_cycles = 1 + static_cast<std::uint32_t>(rng.below(8));
  cfg.div_cycles = 8 + static_cast<std::uint32_t>(rng.below(33));
  cfg.branch_taken_penalty = static_cast<std::uint32_t>(rng.below(3));
  cfg.mem_bytes = 1u << 16;
  cfg.icache = draw_cache(rng);
  cfg.dcache = draw_cache(rng);
  return cfg;
}

// ---- class emitters --------------------------------------------------------

namespace emitters {

using namespace sbst::isa;

// R-type shifts.
void e_sll(Draft& d) { d.emit(sll(d.any_reg(), d.any_reg(), d.shamt())); }
void e_srl(Draft& d) { d.emit(srl(d.any_reg(), d.any_reg(), d.shamt())); }
void e_sra(Draft& d) { d.emit(sra(d.any_reg(), d.any_reg(), d.shamt())); }
void e_sllv(Draft& d) { d.emit(sllv(d.any_reg(), d.any_reg(), d.any_reg())); }
void e_srlv(Draft& d) { d.emit(srlv(d.any_reg(), d.any_reg(), d.any_reg())); }
void e_srav(Draft& d) { d.emit(srav(d.any_reg(), d.any_reg(), d.any_reg())); }
// R-type control / HI-LO.
void e_jr(Draft& d) { d.emit(jr(d.reg())); }
void e_break(Draft& d) { d.emit(brk()); }
void e_mfhi(Draft& d) { d.emit(mfhi(d.any_reg())); }
void e_mthi(Draft& d) { d.emit(mthi(d.any_reg())); }
void e_mflo(Draft& d) { d.emit(mflo(d.any_reg())); }
void e_mtlo(Draft& d) { d.emit(mtlo(d.any_reg())); }
// Multi-cycle arithmetic; divisor forced to 0 now and then.
void e_mult(Draft& d) { d.emit(mult(d.any_reg(), d.any_reg())); }
void e_multu(Draft& d) { d.emit(multu(d.any_reg(), d.any_reg())); }
void e_div(Draft& d) {
  const std::uint8_t rs = d.any_reg();
  const std::uint8_t rt = d.any_reg();
  if (rt != 0 && d.rng.chance(0.125)) d.c.initial.regs[rt] = 0;
  d.emit(isa::div(rs, rt));
}
void e_divu(Draft& d) {
  const std::uint8_t rs = d.any_reg();
  const std::uint8_t rt = d.any_reg();
  if (rt != 0 && d.rng.chance(0.125)) d.c.initial.regs[rt] = 0;
  d.emit(isa::divu(rs, rt));
}
// R-type ALU.
void e_add(Draft& d) { d.emit(add(d.any_reg(), d.any_reg(), d.any_reg())); }
void e_addu(Draft& d) { d.emit(addu(d.any_reg(), d.any_reg(), d.any_reg())); }
void e_sub(Draft& d) { d.emit(sub(d.any_reg(), d.any_reg(), d.any_reg())); }
void e_subu(Draft& d) { d.emit(subu(d.any_reg(), d.any_reg(), d.any_reg())); }
void e_and(Draft& d) { d.emit(and_(d.any_reg(), d.any_reg(), d.any_reg())); }
void e_or(Draft& d) { d.emit(or_(d.any_reg(), d.any_reg(), d.any_reg())); }
void e_xor(Draft& d) { d.emit(xor_(d.any_reg(), d.any_reg(), d.any_reg())); }
void e_nor(Draft& d) { d.emit(nor_(d.any_reg(), d.any_reg(), d.any_reg())); }
void e_slt(Draft& d) { d.emit(slt(d.any_reg(), d.any_reg(), d.any_reg())); }
void e_sltu(Draft& d) { d.emit(sltu(d.any_reg(), d.any_reg(), d.any_reg())); }
// Branches (single-instruction form: the delay slot is not executed).
void e_beq(Draft& d) {
  const std::uint8_t rs = d.any_reg();
  const std::uint8_t rt = d.any_reg();
  if (d.rng.chance(0.5)) d.force_equal(rs, rt);
  d.emit(beq(rs, rt, d.imm16()));
}
void e_bne(Draft& d) {
  const std::uint8_t rs = d.any_reg();
  const std::uint8_t rt = d.any_reg();
  if (d.rng.chance(0.5)) d.force_equal(rs, rt);
  d.emit(bne(rs, rt, d.imm16()));
}
// Immediate ALU.
void e_addi(Draft& d) { d.emit(addi(d.any_reg(), d.any_reg(), d.imm16())); }
void e_addiu(Draft& d) { d.emit(addiu(d.any_reg(), d.any_reg(), d.imm16())); }
void e_slti(Draft& d) { d.emit(slti(d.any_reg(), d.any_reg(), d.imm16())); }
void e_sltiu(Draft& d) { d.emit(sltiu(d.any_reg(), d.any_reg(), d.imm16())); }
void e_andi(Draft& d) { d.emit(andi(d.any_reg(), d.any_reg(), d.uimm16())); }
void e_ori(Draft& d) { d.emit(ori(d.any_reg(), d.any_reg(), d.uimm16())); }
void e_xori(Draft& d) { d.emit(xori(d.any_reg(), d.any_reg(), d.uimm16())); }
void e_lui(Draft& d) { d.emit(lui(d.any_reg(), d.uimm16())); }
// Memory.
void e_lb(Draft& d) {
  const Draft::MemRef m = d.mem_ref(1);
  d.emit(lb(d.any_reg(), m.off, m.base));
}
void e_lh(Draft& d) {
  const Draft::MemRef m = d.mem_ref(2);
  d.emit(lh(d.any_reg(), m.off, m.base));
}
void e_lw(Draft& d) {
  const Draft::MemRef m = d.mem_ref(4);
  d.emit(lw(d.any_reg(), m.off, m.base));
}
void e_lbu(Draft& d) {
  const Draft::MemRef m = d.mem_ref(1);
  d.emit(lbu(d.any_reg(), m.off, m.base));
}
void e_lhu(Draft& d) {
  const Draft::MemRef m = d.mem_ref(2);
  d.emit(lhu(d.any_reg(), m.off, m.base));
}
void e_sb(Draft& d) {
  const Draft::MemRef m = d.mem_ref(1);
  d.emit(sb(d.any_reg(), m.off, m.base));
}
void e_sh(Draft& d) {
  const Draft::MemRef m = d.mem_ref(2);
  d.emit(sh(d.any_reg(), m.off, m.base));
}
void e_sw(Draft& d) {
  const Draft::MemRef m = d.mem_ref(4);
  d.emit(sw(d.any_reg(), m.off, m.base));
}
// Jumps (single-instruction form).
void e_j(Draft& d) { d.emit(j(d.rng.next32() & 0x03ffffffu)); }
void e_jal(Draft& d) { d.emit(jal(d.rng.next32() & 0x03ffffffu)); }
void e_nop(Draft& d) { d.emit(nop()); }

// ---- hazard / corner classes (two instructions) ----------------------------

/// Load-use: a load feeding the very next instruction (the one-bubble
/// forwarding gap).
void e_loaduse(Draft& d) {
  const Draft::MemRef m = d.mem_ref(4);
  const std::uint8_t rt = d.reg();
  d.emit(lw(rt, m.off, m.base));
  d.emit(addu(d.any_reg(), rt, d.any_reg()));
}
/// RAW at distance 1 without forwarding (the 2-stall regime).
void e_rawhazard(Draft& d) {
  d.c.config.forwarding = false;
  const std::uint8_t rd = d.reg();
  d.emit(addu(rd, d.any_reg(), d.any_reg()));
  d.emit(xor_(d.any_reg(), rd, d.any_reg()));
}
/// HI/LO interlock: read HI/LO while a mult/div is still in flight.
void e_muldiv_interlock(Draft& d) {
  if (d.rng.chance(0.5)) {
    d.emit(d.rng.chance(0.5) ? mult(d.any_reg(), d.any_reg())
                             : multu(d.any_reg(), d.any_reg()));
  } else {
    d.emit(d.rng.chance(0.5) ? isa::div(d.any_reg(), d.any_reg())
                             : isa::divu(d.any_reg(), d.any_reg()));
  }
  d.emit(d.rng.chance(0.5) ? mfhi(d.any_reg()) : mflo(d.any_reg()));
}
/// Branch with its delay slot executed (taken-branch flush accounting).
void e_branch_delay(Draft& d) {
  const std::uint8_t rs = d.any_reg();
  const std::uint8_t rt = d.any_reg();
  if (d.rng.chance(0.5)) d.force_equal(rs, rt);
  d.emit(d.rng.chance(0.5) ? beq(rs, rt, d.imm16())
                           : bne(rs, rt, d.imm16()));
  d.emit(addu(d.any_reg(), d.any_reg(), d.any_reg()));
}
/// Jump with its delay slot executed ($ra link for jal).
void e_jump_delay(Draft& d) {
  const std::uint32_t target = d.rng.next32() & 0x03ffffffu;
  d.emit(d.rng.chance(0.5) ? j(target) : jal(target));
  d.emit(ori(d.any_reg(), d.any_reg(), d.uimm16()));
}
/// jr with its delay slot executed.
void e_jr_delay(Draft& d) {
  d.emit(jr(d.reg()));
  d.emit(addu(d.any_reg(), d.any_reg(), d.any_reg()));
}
/// Self-modifying code: the first instruction stores a new word over the
/// second before it is fetched (exercises the copy-on-write decode patch).
/// The stored word is filtered to non-store kinds so the StoreGuard verdict
/// cannot depend on random wild addresses.
void e_smc(Draft& d) {
  const std::uint32_t patch_addr = d.c.entry + 4;
  const std::uint8_t data = d.reg();
  std::uint32_t word;
  for (;;) {
    word = d.rng.chance(0.25) ? brk() : d.rng.next32();
    const isa::UopKind k = isa::decode_uop(word).kind;
    if (k != isa::UopKind::kSb && k != isa::UopKind::kSh &&
        k != isa::UopKind::kSw) {
      break;
    }
  }
  d.c.initial.regs[data] = word;
  // The base register must differ from the data register, or solving the
  // address would clobber the stored word.
  std::uint8_t base = d.reg();
  while (base == data) base = d.reg();
  const std::int16_t off = d.imm16();
  d.c.initial.regs[base] =
      patch_addr - static_cast<std::uint32_t>(static_cast<std::int32_t>(off));
  d.emit(sw(data, off, base));
  d.emit(addu(d.any_reg(), d.any_reg(), d.any_reg()));  // gets overwritten
}
/// Misaligned access: all three executors must raise the identical trap.
void e_misaligned(Draft& d) {
  switch (d.rng.below(5)) {
    case 0: {
      const Draft::MemRef m = d.misaligned_ref(2);
      d.emit(lh(d.any_reg(), m.off, m.base));
      break;
    }
    case 1: {
      const Draft::MemRef m = d.misaligned_ref(2);
      d.emit(lhu(d.any_reg(), m.off, m.base));
      break;
    }
    case 2: {
      const Draft::MemRef m = d.misaligned_ref(4);
      d.emit(lw(d.any_reg(), m.off, m.base));
      break;
    }
    case 3: {
      const Draft::MemRef m = d.misaligned_ref(2);
      d.emit(sh(d.any_reg(), m.off, m.base));
      break;
    }
    default: {
      const Draft::MemRef m = d.misaligned_ref(4);
      d.emit(sw(d.any_reg(), m.off, m.base));
      break;
    }
  }
}

}  // namespace emitters

struct ClassSpec {
  const char* name;
  Emit emit;
};

const std::vector<ClassSpec>& class_specs() {
  using namespace emitters;
  static const std::vector<ClassSpec> kSpecs = {
      {"sll", e_sll}, {"srl", e_srl}, {"sra", e_sra},
      {"sllv", e_sllv}, {"srlv", e_srlv}, {"srav", e_srav},
      {"jr", e_jr}, {"break", e_break},
      {"mfhi", e_mfhi}, {"mthi", e_mthi}, {"mflo", e_mflo},
      {"mtlo", e_mtlo},
      {"mult", e_mult}, {"multu", e_multu}, {"div", e_div},
      {"divu", e_divu},
      {"add", e_add}, {"addu", e_addu}, {"sub", e_sub}, {"subu", e_subu},
      {"and", e_and}, {"or", e_or}, {"xor", e_xor}, {"nor", e_nor},
      {"slt", e_slt}, {"sltu", e_sltu},
      {"beq", e_beq}, {"bne", e_bne},
      {"addi", e_addi}, {"addiu", e_addiu}, {"slti", e_slti},
      {"sltiu", e_sltiu},
      {"andi", e_andi}, {"ori", e_ori}, {"xori", e_xori}, {"lui", e_lui},
      {"lb", e_lb}, {"lh", e_lh}, {"lw", e_lw}, {"lbu", e_lbu},
      {"lhu", e_lhu},
      {"sb", e_sb}, {"sh", e_sh}, {"sw", e_sw},
      {"j", e_j}, {"jal", e_jal}, {"nop", e_nop},
      {"loaduse", e_loaduse}, {"rawhazard", e_rawhazard},
      {"muldiv_interlock", e_muldiv_interlock},
      {"branch_delay", e_branch_delay}, {"jump_delay", e_jump_delay},
      {"jr_delay", e_jr_delay}, {"smc", e_smc},
      {"misaligned", e_misaligned},
  };
  return kSpecs;
}

}  // namespace

const std::vector<const char*>& CaseGen::class_names() {
  static const std::vector<const char*> kNames = [] {
    std::vector<const char*> names;
    for (const ClassSpec& s : class_specs()) names.push_back(s.name);
    return names;
  }();
  return kNames;
}

ConformCase CaseGen::make_case(std::size_t index) const {
  const std::vector<ClassSpec>& specs = class_specs();
  const std::size_t ci = index % specs.size();
  // Golden-ratio stream split (same idiom as the periodic-test campaign):
  // case i always sees the same draws no matter how the corpus is produced.
  const std::uint64_t case_seed =
      options_.seed ^ (0x9e3779b97f4a7c15ull * (index + 1));
  Rng rng(case_seed);

  ConformCase c;
  c.cls = specs[ci].name;
  c.seed = case_seed;
  char ordinal[16];
  std::snprintf(ordinal, sizeof(ordinal), "%04zu", index / specs.size());
  c.name = c.cls + std::string("_") + ordinal;

  c.config = draw_config(rng);
  c.entry = 0x1000 + 4 * static_cast<std::uint32_t>(rng.below(0x400));
  const std::uint32_t window_base =
      0x8000 + kWindowWords * 4 * static_cast<std::uint32_t>(rng.below(256));
  for (unsigned r = 1; r < 32; ++r) c.initial.regs[r] = draw_value(rng);
  c.initial.hi = draw_value(rng);
  c.initial.lo = draw_value(rng);
  for (unsigned w = 0; w < kWindowWords; ++w) {
    c.initial.mem.push_back({window_base + 4 * w, rng.next32()});
  }

  Draft draft{rng, c, window_base};
  specs[ci].emit(draft);

  // Reference execution fixes the post-state. Trap cases take their cycle
  // breakdown from the guarded executor's partial-progress stats (the
  // interpreter loses its stats when the trap unwinds).
  const Replay ref = replay_case(c, Executor::kInterpreter);
  c.trap = ref.trap;
  c.final_state = ref.state;
  c.cycles =
      c.trap.empty() ? ref.cycles : replay_case(c, Executor::kGuarded).cycles;
  return c;
}

Corpus CaseGen::generate() const {
  Corpus corpus;
  corpus.seed = options_.seed;
  corpus.cases.reserve(options_.count);
  for (std::size_t i = 0; i < options_.count; ++i) {
    corpus.cases.push_back(make_case(i));
  }
  return corpus;
}

}  // namespace sbst::conform
