#include "conform/excite.hpp"

#include "conform/runner.hpp"
#include "sim/exec.hpp"

namespace sbst::conform {

CorpusExcitation::CorpusExcitation(const core::ProcessorModel& model,
                                   const Corpus& corpus)
    : collector_(model) {
  for (const ConformCase& c : corpus.cases) {
    sim::Cpu cpu(c.config.cpu_config());
    prepare_cpu(cpu, c, nullptr);
    sim::TraceSink<core::TraceCollector> sink{&collector_};
    try {
      cpu.run_sink(c.entry, sink, c.code.size());
    } catch (const sim::CpuError&) {
      // Trap cases still contribute every event up to the trap.
    }
  }
}

const fault::PatternSet& CorpusExcitation::patterns(core::CutId id) const {
  switch (id) {
    case core::CutId::kAlu: return collector_.alu_patterns();
    case core::CutId::kShifter: return collector_.shifter_patterns();
    case core::CutId::kMultiplier: return collector_.multiplier_patterns();
    case core::CutId::kControl: return collector_.control_patterns();
    case core::CutId::kForwarding: return collector_.forwarding_patterns();
    case core::CutId::kBranchAdder:
      return collector_.branch_adder_patterns();
    default:
      throw ConformError(
          "corpus excitation: component has no combinational pattern "
          "stream");
  }
}

}  // namespace sbst::conform
