// Hidden-component generators: pipeline register bank and forwarding unit.
//
// Classification: HC (paper §3.2) — invisible to the assembly programmer,
// added for performance. The paper's claim, which bench/hidden_side_effect
// reproduces, is that the data-pipelining HCs are "sufficiently tested as a
// side-effect of testing the D-VCs": the operand/result streams of the D-VC
// routines flow through these structures.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"

namespace sbst::rtlgen {

struct PipeRegOptions {
  unsigned width = 32;
  bool with_flush = true;  // synchronous clear (branch recovery)
};

/// Pipeline register with write-enable (stall) and synchronous flush.
/// Ports: in "d"[w], "en"[1], "flush"[1]; out "q"[w].
netlist::Netlist build_pipe_reg(const PipeRegOptions& opts = {});

/// Forwarding select per operand: 00 = register file, 01 = from EX stage,
/// 10 = from MEM stage.
enum class Forward : std::uint8_t { kNone = 0, kFromEx = 1, kFromMem = 2 };

/// Forwarding unit of a MIPS-style pipeline.
/// Ports: in "rs"[5], "rt"[5], "ex_rd"[5], "ex_wen"[1], "mem_rd"[5],
/// "mem_wen"[1]; out "fwd_a"[2], "fwd_b"[2]. EX has priority over MEM;
/// register 0 never forwards.
netlist::Netlist build_forwarding_unit();

struct ForwardRef {
  Forward a;
  Forward b;
};
ForwardRef forwarding_ref(unsigned rs, unsigned rt, unsigned ex_rd,
                          bool ex_wen, unsigned mem_rd, bool mem_wen);

}  // namespace sbst::rtlgen
