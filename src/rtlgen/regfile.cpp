#include "rtlgen/regfile.hpp"

#include <bit>
#include <stdexcept>
#include <vector>

namespace sbst::rtlgen {

netlist::Netlist build_regfile(const RegFileOptions& opts) {
  using netlist::Bus;
  using netlist::NetId;
  const unsigned n = opts.num_regs;
  const unsigned w = opts.width;
  if (!std::has_single_bit(n)) {
    throw std::invalid_argument("build_regfile: num_regs must be 2^k");
  }
  const unsigned abits = static_cast<unsigned>(std::countr_zero(n));

  netlist::Netlist nl("regfile" + std::to_string(n) + "x" +
                      std::to_string(w));
  const Bus waddr = nl.input_bus("waddr", abits);
  const Bus wdata = nl.input_bus("wdata", w);
  const NetId wen = nl.input("wen");
  const Bus raddr1 = nl.input_bus("raddr1", abits);
  const Bus raddr2 = nl.input_bus("raddr2", abits);

  // Write decoder: sel[r] = wen & (waddr == r). No decode term is built
  // for a hardwired register 0 (synthesis prunes the dead cone).
  const Bus waddr_n = nl.not_bus(waddr);
  const unsigned first_decoded = opts.reg0_is_zero ? 1 : 0;
  std::vector<NetId> wsel(n);
  for (unsigned r = first_decoded; r < n; ++r) {
    Bus terms(abits + 1);
    for (unsigned b = 0; b < abits; ++b) {
      terms[b] = (r >> b) & 1u ? waddr[b] : waddr_n[b];
    }
    terms[abits] = wen;
    wsel[r] = nl.and_reduce(terms);
  }

  // Storage: per register, recirculation mux + DFF per bit.
  const unsigned first = opts.reg0_is_zero ? 1 : 0;
  std::vector<Bus> regs(n);
  if (opts.reg0_is_zero) regs[0] = nl.const_bus(0, w);
  for (unsigned r = first; r < n; ++r) {
    regs[r] = nl.dff_bus("r" + std::to_string(r), w);
    for (unsigned b = 0; b < w; ++b) {
      nl.connect_dff(regs[r][b], nl.mux2(wsel[r], regs[r][b], wdata[b]));
    }
  }

  // Read ports: binary mux tree per bit.
  auto read_port = [&](const Bus& raddr) {
    std::vector<Bus> level = regs;
    for (unsigned b = 0; b < abits; ++b) {
      std::vector<Bus> next(level.size() / 2);
      for (std::size_t i = 0; i < next.size(); ++i) {
        next[i] = nl.mux2_bus(raddr[b], level[2 * i], level[2 * i + 1]);
      }
      level = std::move(next);
    }
    return level[0];
  };
  nl.output_bus("rdata1", read_port(raddr1));
  nl.output_bus("rdata2", read_port(raddr2));
  return nl;
}

}  // namespace sbst::rtlgen
