// Barrel shifter generator (sll/srl/sra), log-depth mux network.
//
// Classification: D-VC. The paper tests the Plasma shifter with the
// ATPG-deterministic strategy (AtpgD, immediate instructions) because the
// mux network is compact but its test set is small only under ATPG.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"

namespace sbst::rtlgen {

// Encoding mirrors the low bits of the MIPS shift functs: bit1 = right,
// bit0 = arithmetic.
enum class ShiftOp : std::uint8_t {
  kSll = 0,  // logical left   (00)
  kSrl = 2,  // logical right  (10)
  kSra = 3,  // arithmetic right (11)
};
inline constexpr unsigned kShiftOpBits = 2;

struct ShifterOptions {
  unsigned width = 32;  // must be a power of two
};

/// Ports: in "a"[w], "shamt"[log2 w], "op"[2]; out "result"[w].
netlist::Netlist build_shifter(const ShifterOptions& opts = {});

/// Functional golden model matching build_shifter.
std::uint32_t shifter_ref(ShiftOp op, std::uint32_t a, unsigned shamt,
                          unsigned width = 32);

}  // namespace sbst::rtlgen
