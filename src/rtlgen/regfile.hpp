// Register-file generator.
//
// num_regs x width bits, register 0 hardwired to zero (MIPS convention),
// one write port, two read ports. Structure: write-address decoder,
// write-enable recirculation muxes in front of the flip-flop array, and a
// mux tree per read port.
//
// Classification: D-VC — the dominant-area component of the processor
// (paper Table 1: 9,905 of 26,080 gates). Tested with the regular
// deterministic strategy in two phases (paper §3.3): each half of the file
// receives the checkerboard pair while the other half accumulates the MISR,
// so no data-memory stores are needed during the test.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"

namespace sbst::rtlgen {

struct RegFileOptions {
  unsigned num_regs = 32;  // power of two
  unsigned width = 32;
  bool reg0_is_zero = true;
};

/// Ports: in "waddr"[log2 n], "wdata"[w], "wen"[1], "raddr1"[log2 n],
/// "raddr2"[log2 n]; out "rdata1"[w], "rdata2"[w].
netlist::Netlist build_regfile(const RegFileOptions& opts = {});

}  // namespace sbst::rtlgen
