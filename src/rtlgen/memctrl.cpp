#include "rtlgen/memctrl.hpp"

#include <stdexcept>

#include "common/bits.hpp"

namespace sbst::rtlgen {

netlist::Netlist build_memctrl(const MemCtrlOptions& opts) {
  using netlist::Bus;
  using netlist::NetId;
  if (opts.width != 32) {
    throw std::invalid_argument("build_memctrl: only width 32 supported");
  }

  netlist::Netlist nl("memctrl");
  const Bus addr = nl.input_bus("addr", 32);
  const Bus wdata = nl.input_bus("wdata", 32);
  const Bus mem_rdata = nl.input_bus("mem_rdata", 32);
  const Bus size = nl.input_bus("size", 2);
  const NetId sign = nl.input("sign");
  const NetId wr = nl.input("wr");
  const NetId en = nl.input("en");

  const NetId is_word = size[1];
  const NetId is_half = nl.and_(nl.not_(size[1]), size[0]);
  const NetId is_byte = nl.nor_(size[1], size[0]);

  auto slice = [&](const Bus& b, unsigned lo) {
    return Bus(b.begin() + lo, b.begin() + lo + 8);
  };

  // ---- store path ---------------------------------------------------------
  // Byte-lane replication (little endian): sb drives all lanes with byte 0,
  // sh drives both halves with half 0.
  const Bus lane0 = slice(wdata, 0);
  const Bus lane1 = nl.mux2_bus(is_byte, slice(wdata, 8), slice(wdata, 0));
  const Bus lane2 = nl.mux2_bus(is_word, slice(wdata, 0), slice(wdata, 16));
  const Bus lane3 = nl.mux2_bus(
      is_word, nl.mux2_bus(is_byte, slice(wdata, 8), slice(wdata, 0)),
      slice(wdata, 24));

  // Byte enables.
  const NetId a0 = addr[0];
  const NetId a1 = addr[1];
  const NetId na0 = nl.not_(a0);
  const NetId na1 = nl.not_(a1);
  Bus be(4);
  const NetId half_lo = nl.and_(is_half, na1);
  const NetId half_hi = nl.and_(is_half, a1);
  be[0] = nl.and_(wr, nl.or_(is_word,
                             nl.or_(half_lo, nl.and_(is_byte,
                                                     nl.and_(na1, na0)))));
  be[1] = nl.and_(wr, nl.or_(is_word,
                             nl.or_(half_lo, nl.and_(is_byte,
                                                     nl.and_(na1, a0)))));
  be[2] = nl.and_(wr, nl.or_(is_word,
                             nl.or_(half_hi, nl.and_(is_byte,
                                                     nl.and_(a1, na0)))));
  be[3] = nl.and_(wr, nl.or_(is_word,
                             nl.or_(half_hi, nl.and_(is_byte,
                                                     nl.and_(a1, a0)))));

  // ---- registers (MAR, MDR, byte enables) ---------------------------------
  auto capture = [&](const Bus& d, const std::string& name) {
    Bus q = nl.dff_bus(name, static_cast<unsigned>(d.size()));
    for (std::size_t i = 0; i < d.size(); ++i) {
      nl.connect_dff(q[i], nl.mux2(en, q[i], d[i]));
    }
    return q;
  };
  const Bus mar = capture(addr, "MAR");
  Bus mdr_d;
  mdr_d.insert(mdr_d.end(), lane0.begin(), lane0.end());
  mdr_d.insert(mdr_d.end(), lane1.begin(), lane1.end());
  mdr_d.insert(mdr_d.end(), lane2.begin(), lane2.end());
  mdr_d.insert(mdr_d.end(), lane3.begin(), lane3.end());
  const Bus mdr = capture(mdr_d, "MDR");
  const Bus be_q = capture(be, "BE");

  nl.output_bus("mem_addr", mar);
  nl.output_bus("mem_wdata", mdr);
  nl.output_bus("byte_en", be_q);

  // ---- load path ----------------------------------------------------------
  const NetId ma0 = mar[0];
  const NetId ma1 = mar[1];
  const Bus byte_lo = nl.mux2_bus(ma0, slice(mem_rdata, 0),
                                  slice(mem_rdata, 8));
  const Bus byte_hi = nl.mux2_bus(ma0, slice(mem_rdata, 16),
                                  slice(mem_rdata, 24));
  const Bus byte_sel = nl.mux2_bus(ma1, byte_lo, byte_hi);

  Bus half_sel(16);
  for (unsigned i = 0; i < 16; ++i) {
    half_sel[i] = nl.mux2(ma1, mem_rdata[i], mem_rdata[16 + i]);
  }

  const NetId byte_ext = nl.and_(sign, byte_sel[7]);
  const NetId half_ext = nl.and_(sign, half_sel[15]);

  Bus rdata(32);
  for (unsigned i = 0; i < 8; ++i) {
    rdata[i] = nl.mux2(is_word,
                       nl.mux2(is_byte, half_sel[i], byte_sel[i]),
                       mem_rdata[i]);
  }
  for (unsigned i = 8; i < 16; ++i) {
    rdata[i] = nl.mux2(is_word,
                       nl.mux2(is_byte, half_sel[i], byte_ext),
                       mem_rdata[i]);
  }
  for (unsigned i = 16; i < 32; ++i) {
    rdata[i] = nl.mux2(is_word,
                       nl.mux2(is_byte, half_ext, byte_ext),
                       mem_rdata[i]);
  }
  nl.output_bus("rdata", rdata);
  return nl;
}

MemCtrlRef memctrl_store_ref(std::uint32_t addr, std::uint32_t wdata,
                             MemSize size, bool wr) {
  MemCtrlRef out{0, 0};
  const std::uint32_t b0 = wdata & 0xff;
  const std::uint32_t h0 = wdata & 0xffff;
  switch (size) {
    case MemSize::kByte:
      out.mem_wdata = b0 | (b0 << 8) | (b0 << 16) | (b0 << 24);
      out.byte_en = static_cast<std::uint8_t>(1u << (addr & 3u));
      break;
    case MemSize::kHalf:
      out.mem_wdata = h0 | (h0 << 16);
      out.byte_en = (addr & 2u) ? 0b1100 : 0b0011;
      break;
    case MemSize::kWord:
      out.mem_wdata = wdata;
      out.byte_en = 0b1111;
      break;
  }
  if (!wr) out.byte_en = 0;
  return out;
}

std::uint32_t memctrl_load_ref(std::uint32_t addr, std::uint32_t mem_rdata,
                               MemSize size, bool sign_extend) {
  switch (size) {
    case MemSize::kByte: {
      const std::uint32_t b = (mem_rdata >> ((addr & 3u) * 8)) & 0xff;
      return sign_extend ? sign_extend32(b, 8) : b;
    }
    case MemSize::kHalf: {
      const std::uint32_t h = (mem_rdata >> ((addr & 2u) * 8)) & 0xffff;
      return sign_extend ? sign_extend32(h, 16) : h;
    }
    case MemSize::kWord:
      return mem_rdata;
  }
  return mem_rdata;
}

}  // namespace sbst::rtlgen
