#include "rtlgen/alu.hpp"

#include <stdexcept>

#include "common/bits.hpp"

namespace sbst::rtlgen {

netlist::Netlist build_alu(const AluOptions& opts) {
  const unsigned w = opts.width;
  netlist::Netlist nl("alu" + std::to_string(w));
  const Bus a = nl.input_bus("a", w);
  const Bus b = nl.input_bus("b", w);
  const Bus op = nl.input_bus("op", kAluOpBits);

  // op encoding: bit2 selects arithmetic group (ADD/SUB/SLT/SLTU),
  // within arithmetic, bit0|bit1 request subtraction (SUB/SLT/SLTU).
  const NetId is_arith = op[2];
  const NetId is_sub = nl.and_(is_arith, nl.or_(op[0], op[1]));

  // Shared adder with B inverted for subtraction (cin = is_sub).
  const Bus b_eff = nl.mux2_bus(is_sub, b, nl.not_bus(b));
  const AdderResult add = build_adder(nl, a, b_eff, is_sub, opts.adder);

  // Logic unit.
  const Bus and_r = nl.and_bus(a, b);
  const Bus or_r = nl.or_bus(a, b);
  const Bus xor_r = nl.xor_bus(a, b);
  const Bus nor_r = nl.nor_bus(a, b);

  // SLT: sign of (a-b) corrected for overflow; SLTU: !carry_out.
  const NetId ovf = nl.xor_(add.carry_out, add.carry_into_msb);
  const NetId slt_bit = nl.xor_(add.sum[w - 1], ovf);
  const NetId sltu_bit = nl.not_(add.carry_out);
  const NetId is_slt_any = nl.and_(is_arith, op[1]);  // SLT (110) or SLTU (111)
  const NetId slt_sel = nl.mux2(op[0], slt_bit, sltu_bit);

  // Result select: logic group muxed by op[1:0], then arithmetic override.
  Bus result(w);
  for (unsigned i = 0; i < w; ++i) {
    const NetId logic_lo = nl.mux2(op[0], and_r[i], or_r[i]);
    const NetId logic_hi = nl.mux2(op[0], xor_r[i], nor_r[i]);
    const NetId logic_r = nl.mux2(op[1], logic_lo, logic_hi);
    const NetId arith_r =
        i == 0 ? nl.mux2(is_slt_any, add.sum[0], slt_sel)
               : nl.and_(add.sum[i], nl.not_(is_slt_any));
    result[i] = nl.mux2(is_arith, logic_r, arith_r);
  }

  nl.output_bus("result", result);
  nl.output("zero", nl.not_(nl.or_reduce(result)));
  nl.output("cout", add.carry_out);
  nl.output("ovf", ovf);
  return nl;
}

std::uint32_t alu_ref(AluOp op, std::uint32_t a, std::uint32_t b,
                      unsigned width) {
  const std::uint32_t mask = static_cast<std::uint32_t>(low_mask(width));
  a &= mask;
  b &= mask;
  const std::uint32_t sign = std::uint32_t{1} << (width - 1);
  switch (op) {
    case AluOp::kAnd:
      return a & b;
    case AluOp::kOr:
      return a | b;
    case AluOp::kXor:
      return a ^ b;
    case AluOp::kNor:
      return ~(a | b) & mask;
    case AluOp::kAdd:
      return (a + b) & mask;
    case AluOp::kSub:
      return (a - b) & mask;
    case AluOp::kSlt: {
      const std::int64_t sa = static_cast<std::int64_t>((a ^ sign)) - sign;
      const std::int64_t sb = static_cast<std::int64_t>((b ^ sign)) - sign;
      return sa < sb ? 1u : 0u;
    }
    case AluOp::kSltu:
      return a < b ? 1u : 0u;
  }
  throw std::invalid_argument("alu_ref: bad op");
}

}  // namespace sbst::rtlgen
