// Parallel array multiplier generator (the "fast parallel multiplier" the
// Plasma core was enhanced with, paper §4 / ref [14]).
//
// Structure: AND partial-product array reduced by a carry-save adder array,
// final ripple-carry merge. Unsigned w x w -> 2w product; the MIPS
// mult/multu semantics are built on top of it in the CPU model.
// Classification: D-VC (operands via registers, product via HI/LO).
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"

namespace sbst::rtlgen {

struct MultiplierOptions {
  unsigned width = 32;
};

/// Ports: in "a"[w], "b"[w]; out "product"[2w].
netlist::Netlist build_multiplier(const MultiplierOptions& opts = {});

/// Functional golden model.
std::uint64_t multiplier_ref(std::uint32_t a, std::uint32_t b,
                             unsigned width = 32);

}  // namespace sbst::rtlgen
