#include "rtlgen/pipeline.hpp"

namespace sbst::rtlgen {

netlist::Netlist build_pipe_reg(const PipeRegOptions& opts) {
  using netlist::Bus;
  using netlist::NetId;
  netlist::Netlist nl("pipe_reg" + std::to_string(opts.width));
  const Bus d = nl.input_bus("d", opts.width);
  const NetId en = nl.input("en");
  const NetId flush =
      opts.with_flush ? nl.input("flush") : nl.constant(false);
  const Bus q = nl.dff_bus("q", opts.width);
  const NetId keep = nl.not_(flush);
  for (unsigned i = 0; i < opts.width; ++i) {
    const NetId held = nl.mux2(en, q[i], d[i]);
    nl.connect_dff(q[i], nl.and_(held, keep));
  }
  nl.output_bus("q", q);
  return nl;
}

netlist::Netlist build_forwarding_unit() {
  using netlist::Bus;
  using netlist::NetId;
  netlist::Netlist nl("forwarding_unit");
  const Bus rs = nl.input_bus("rs", 5);
  const Bus rt = nl.input_bus("rt", 5);
  const Bus ex_rd = nl.input_bus("ex_rd", 5);
  const NetId ex_wen = nl.input("ex_wen");
  const Bus mem_rd = nl.input_bus("mem_rd", 5);
  const NetId mem_wen = nl.input("mem_wen");

  auto eq5 = [&](const Bus& a, const Bus& b) {
    Bus bits(5);
    for (unsigned i = 0; i < 5; ++i) bits[i] = nl.xnor_(a[i], b[i]);
    return nl.and_reduce(bits);
  };
  auto nonzero = [&](const Bus& a) { return nl.or_reduce(a); };

  auto fwd = [&](const Bus& reg, const char* name) {
    const NetId live = nonzero(reg);  // $zero never forwards
    const NetId from_ex = nl.and_(nl.and_(ex_wen, eq5(reg, ex_rd)), live);
    const NetId from_mem = nl.and_(
        nl.and_(mem_wen, eq5(reg, mem_rd)),
        nl.and_(live, nl.not_(from_ex)));  // EX has priority
    Bus out(2);
    out[0] = from_ex;
    out[1] = from_mem;
    nl.output_bus(name, out);
  };
  fwd(rs, "fwd_a");
  fwd(rt, "fwd_b");
  return nl;
}

ForwardRef forwarding_ref(unsigned rs, unsigned rt, unsigned ex_rd,
                          bool ex_wen, unsigned mem_rd, bool mem_wen) {
  auto one = [&](unsigned reg) {
    if (reg != 0 && ex_wen && reg == ex_rd) return Forward::kFromEx;
    if (reg != 0 && mem_wen && reg == mem_rd) return Forward::kFromMem;
    return Forward::kNone;
  };
  return {one(rs), one(rt)};
}

}  // namespace sbst::rtlgen
