// Gate-level ALU generator (Plasma-class MIPS execute unit).
//
// Classification (paper §3.2): D-VC — both operands are data visible through
// register/immediate addressing, the result is data visible through the
// register file.
#pragma once

#include <cstdint>

#include "rtlgen/arith.hpp"

namespace sbst::rtlgen {

/// ALU operation select encoding, shared with the CPU simulator so that
/// traced operations map 1:1 onto the netlist's "op" port.
enum class AluOp : std::uint8_t {
  kAnd = 0,
  kOr = 1,
  kXor = 2,
  kNor = 3,
  kAdd = 4,
  kSub = 5,
  kSlt = 6,   // signed set-less-than
  kSltu = 7,  // unsigned set-less-than
};
inline constexpr unsigned kAluOpBits = 3;

struct AluOptions {
  unsigned width = 32;
  AdderStyle adder = AdderStyle::kRippleCarry;
};

/// Ports: in "a"[w], "b"[w], "op"[3]; out "result"[w], "zero"[1], "cout"[1],
/// "ovf"[1].
netlist::Netlist build_alu(const AluOptions& opts = {});

/// Functional golden model matching build_alu's netlist bit-for-bit.
std::uint32_t alu_ref(AluOp op, std::uint32_t a, std::uint32_t b,
                      unsigned width = 32);

}  // namespace sbst::rtlgen
