// Arithmetic building blocks instantiated inside component generators.
//
// These helpers append logic to an existing Netlist and return the result
// buses; they do not declare ports. Two adder styles are provided so that the
// "regular deterministic test sets are implementation-independent" property
// (paper §3.3, strategy 3) can be validated against structurally different
// gate-level realisations.
#pragma once

#include "netlist/netlist.hpp"

namespace sbst::rtlgen {

using netlist::Bus;
using netlist::Netlist;
using netlist::NetId;

enum class AdderStyle {
  kRippleCarry,     // chain of full adders
  kCarryLookahead,  // 4-bit lookahead blocks, ripple between blocks
};

struct AdderResult {
  Bus sum;
  NetId carry_out;
  NetId carry_into_msb;  // for signed-overflow detection
};

/// sum = a + b + cin. Widths of a and b must match.
AdderResult build_adder(Netlist& nl, const Bus& a, const Bus& b, NetId cin,
                        AdderStyle style);

/// a + 1 (half-adder chain); returns sum only.
Bus build_incrementer(Netlist& nl, const Bus& a);

/// Two's complement negation (~a + 1).
Bus build_negate(Netlist& nl, const Bus& a, AdderStyle style);

}  // namespace sbst::rtlgen
