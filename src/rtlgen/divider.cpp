#include "rtlgen/divider.hpp"

#include "common/bits.hpp"
#include "rtlgen/arith.hpp"

namespace sbst::rtlgen {

netlist::Netlist build_divider(const DividerOptions& opts) {
  using netlist::Bus;
  using netlist::NetId;
  const unsigned w = opts.width;
  unsigned cnt_bits = 1;
  while ((1u << cnt_bits) <= w) ++cnt_bits;  // counter holds values w..0

  netlist::Netlist nl("div" + std::to_string(w));
  const NetId start = nl.input("start");
  const Bus dividend = nl.input_bus("dividend", w);
  const Bus divisor = nl.input_bus("divisor", w);

  // State: partial remainder R (w+1 bits), quotient/dividend shift Q (w),
  // latched divisor D (w), step counter, busy flag.
  const Bus r = nl.dff_bus("R", w + 1);
  const Bus q = nl.dff_bus("Q", w);
  const Bus d = nl.dff_bus("D", w);
  const Bus cnt = nl.dff_bus("CNT", cnt_bits);
  const NetId busy = nl.dff("BUSY");

  // One restoring step: shifted = {R[w-1:0], Q[w-1]}; T = shifted - D;
  // if T >= 0 (no borrow) R <- T, quotient bit 1, else R <- shifted.
  Bus shifted(w + 1);
  shifted[0] = q[w - 1];
  for (unsigned i = 1; i <= w; ++i) shifted[i] = r[i - 1];

  Bus d_ext(w + 1);
  for (unsigned i = 0; i < w; ++i) d_ext[i] = d[i];
  d_ext[w] = nl.constant(false);

  const AdderResult sub = build_adder(nl, shifted, nl.not_bus(d_ext),
                                      nl.constant(true),
                                      AdderStyle::kRippleCarry);
  const NetId geq = sub.carry_out;  // no borrow -> shifted >= D

  const Bus r_step = nl.mux2_bus(geq, shifted, sub.sum);
  Bus q_step(w);
  q_step[0] = geq;
  for (unsigned i = 1; i < w; ++i) q_step[i] = q[i - 1];

  // Counter decrement (borrow chain).
  Bus cnt_step(cnt_bits);
  NetId borrow = nl.constant(true);
  for (unsigned i = 0; i < cnt_bits; ++i) {
    cnt_step[i] = nl.xor_(cnt[i], borrow);
    if (i + 1 < cnt_bits) borrow = nl.and_(nl.not_(cnt[i]), borrow);
  }
  // last_step: cnt == 1.
  Bus cnt_is_one(cnt_bits);
  cnt_is_one[0] = cnt[0];
  for (unsigned i = 1; i < cnt_bits; ++i) cnt_is_one[i] = nl.not_(cnt[i]);
  const NetId last_step = nl.and_reduce(cnt_is_one);

  // Next-state: start loads, busy steps, idle holds.
  auto next = [&](NetId cur, NetId step_v, NetId load_v) {
    return nl.mux2(start, nl.mux2(busy, cur, step_v), load_v);
  };
  const NetId zero = nl.constant(false);
  for (unsigned i = 0; i <= w; ++i) {
    nl.connect_dff(r[i], next(r[i], r_step[i], zero));
  }
  for (unsigned i = 0; i < w; ++i) {
    nl.connect_dff(q[i], next(q[i], q_step[i], dividend[i]));
    nl.connect_dff(d[i], next(d[i], d[i], divisor[i]));
  }
  for (unsigned i = 0; i < cnt_bits; ++i) {
    nl.connect_dff(cnt[i], next(cnt[i], cnt_step[i],
                                nl.constant(bit(w, i))));
  }
  nl.connect_dff(busy, next(busy, nl.not_(last_step), nl.constant(true)));

  nl.output_bus("quotient", q);
  Bus rem(w);
  for (unsigned i = 0; i < w; ++i) rem[i] = r[i];
  nl.output_bus("remainder", rem);
  nl.output("done", nl.not_(busy));
  return nl;
}

DivRef divider_ref(std::uint32_t dividend, std::uint32_t divisor,
                   unsigned width) {
  const std::uint32_t mask = static_cast<std::uint32_t>(low_mask(width));
  dividend &= mask;
  divisor &= mask;
  std::uint64_t r = 0;
  std::uint32_t q = dividend;
  for (unsigned i = 0; i < width; ++i) {
    r = (r << 1) | ((q >> (width - 1)) & 1u);
    q = (q << 1) & mask;
    if (r >= divisor) {
      // divisor == 0 always subtracts 0 and sets the quotient bit, matching
      // the hardware's restoring datapath.
      r -= divisor;
      q |= 1u;
    }
  }
  return {q, static_cast<std::uint32_t>(r & mask)};
}

}  // namespace sbst::rtlgen
