#include "rtlgen/comparator.hpp"

#include "common/bits.hpp"
#include "rtlgen/arith.hpp"

namespace sbst::rtlgen {

netlist::Netlist build_comparator(const ComparatorOptions& opts) {
  using netlist::Bus;
  using netlist::NetId;
  const unsigned w = opts.width;
  netlist::Netlist nl("cmp" + std::to_string(w));
  const Bus a = nl.input_bus("a", w);
  const Bus b = nl.input_bus("b", w);

  Bus eq_bits(w);
  for (unsigned i = 0; i < w; ++i) eq_bits[i] = nl.xnor_(a[i], b[i]);
  const NetId eq = nl.and_reduce(eq_bits);
  nl.output("eq", eq);
  nl.output("ne", nl.not_(eq));

  if (opts.with_magnitude) {
    // a - b; borrow (=!carry_out) gives unsigned less-than; signed less-than
    // corrects the sign of the difference by the overflow flag.
    const AdderResult sub = build_adder(nl, a, nl.not_bus(b),
                                        nl.constant(true),
                                        AdderStyle::kRippleCarry);
    const NetId ovf = nl.xor_(sub.carry_out, sub.carry_into_msb);
    nl.output("lt", nl.xor_(sub.sum[w - 1], ovf));
    nl.output("ltu", nl.not_(sub.carry_out));
  }
  return nl;
}

CmpRef comparator_ref(std::uint32_t a, std::uint32_t b, unsigned width) {
  const std::uint32_t mask = static_cast<std::uint32_t>(low_mask(width));
  a &= mask;
  b &= mask;
  const std::uint32_t sign = std::uint32_t{1} << (width - 1);
  const std::int64_t sa = static_cast<std::int64_t>(a ^ sign) - sign;
  const std::int64_t sb = static_cast<std::int64_t>(b ^ sign) - sign;
  return {a == b, a != b, sa < sb, a < b};
}

}  // namespace sbst::rtlgen
