// Serial restoring divider generator (the Plasma serial divider).
//
// Sequential component: one quotient bit per clock, `width` cycles per
// division. Classification: D-VC (operands via registers, quotient/remainder
// via HI/LO), tested with the regular deterministic strategy through
// div/divu instruction loops.
//
// Protocol:
//   cycle 0:  start=1, dividend/divisor valid -> internal registers load
//   cycles 1..width: shift/subtract steps (start=0)
//   after `width` steps: done=1, "quotient"/"remainder" valid.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"

namespace sbst::rtlgen {

struct DividerOptions {
  unsigned width = 32;
};

/// Ports: in "start"[1], "dividend"[w], "divisor"[w];
/// out "quotient"[w], "remainder"[w], "done"[1].
netlist::Netlist build_divider(const DividerOptions& opts = {});

struct DivRef {
  std::uint32_t quotient;
  std::uint32_t remainder;
};

/// Unsigned division reference; divisor==0 yields quotient=all-ones,
/// remainder=dividend (matching the restoring-array behaviour).
DivRef divider_ref(std::uint32_t dividend, std::uint32_t divisor,
                   unsigned width = 32);

}  // namespace sbst::rtlgen
