// Memory controller generator (Plasma mem_ctrl).
//
// Registers the outgoing address (MAR) and write data (MDR, with byte-lane
// replication for sb/sh), produces byte enables, and aligns/extends incoming
// read data for lb/lbu/lh/lhu/lw.
//
// Classification (paper §4): mixed — by area roughly 73 % D-VC (MDR and the
// read/write data multiplexers), 23 % A-VC (MAR) and 4 % PVC (special
// control). The D-VC share is tested with the regular deterministic
// strategy through lb/lh/lw/sb/sh/sw sequences; testing the MAR requires
// distributed memory references, so it is deliberately excluded from the
// periodic test (paper §3.2, A-VC discussion).
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"

namespace sbst::rtlgen {

/// Access size encoding on the "size" port.
enum class MemSize : std::uint8_t { kByte = 0, kHalf = 1, kWord = 2 };

struct MemCtrlOptions {
  unsigned width = 32;  // fixed at 32 in the Plasma model
};

/// Ports:
///   in  "addr"[32]      CPU effective address
///       "wdata"[32]     CPU store data
///       "mem_rdata"[32] data returned by the memory system
///       "size"[2]       MemSize
///       "sign"[1]       sign-extend loads (lb/lh vs lbu/lhu)
///       "wr"[1]         1 = store
///       "en"[1]         capture MAR/MDR this cycle
///   out "mem_addr"[32]  registered MAR
///       "mem_wdata"[32] registered MDR (byte lanes replicated)
///       "byte_en"[4]    registered store byte enables
///       "rdata"[32]     aligned & extended load data (combinational from
///                       mem_rdata and the registered MAR low bits)
netlist::Netlist build_memctrl(const MemCtrlOptions& opts = {});

struct MemCtrlRef {
  std::uint32_t mem_wdata;
  std::uint8_t byte_en;
};
/// Store-path golden model: replicated write data + byte enables.
MemCtrlRef memctrl_store_ref(std::uint32_t addr, std::uint32_t wdata,
                             MemSize size, bool wr);
/// Load-path golden model: align + extend.
std::uint32_t memctrl_load_ref(std::uint32_t addr, std::uint32_t mem_rdata,
                               MemSize size, bool sign_extend);

}  // namespace sbst::rtlgen
