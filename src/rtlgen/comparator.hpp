// Comparator generator (branch condition / forwarding-match class).
//
// The paper lists comparators among the inherently regular components that
// the regular deterministic TPG strategy covers with constant-size test
// sets. The Plasma model uses equality comparators for beq/bne and for the
// forwarding unit's register-index matches.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"

namespace sbst::rtlgen {

struct ComparatorOptions {
  unsigned width = 32;
  bool with_magnitude = true;  // also emit lt (signed) and ltu outputs
};

/// Ports: in "a"[w], "b"[w]; out "eq"[1], "ne"[1], and if with_magnitude:
/// "lt"[1] (signed a<b), "ltu"[1] (unsigned a<b).
netlist::Netlist build_comparator(const ComparatorOptions& opts = {});

struct CmpRef {
  bool eq, ne, lt, ltu;
};
CmpRef comparator_ref(std::uint32_t a, std::uint32_t b, unsigned width = 32);

}  // namespace sbst::rtlgen
