#include "rtlgen/multiplier.hpp"

#include <deque>
#include <vector>

#include "common/bits.hpp"

namespace sbst::rtlgen {

netlist::Netlist build_multiplier(const MultiplierOptions& opts) {
  using netlist::Bus;
  using netlist::NetId;
  const unsigned w = opts.width;
  netlist::Netlist nl("mul" + std::to_string(w));
  const Bus a = nl.input_bus("a", w);
  const Bus b = nl.input_bus("b", w);

  // Column-compression array: column `col` holds the partial-product bits of
  // weight 2^col. Full adders compress three bits into (sum, carry-out),
  // half adders compress two; the array terminates with <= 2 bits per column
  // which a final ripple-carry adder merges.
  std::vector<std::deque<NetId>> columns(2 * w);
  for (unsigned r = 0; r < w; ++r) {
    for (unsigned c = 0; c < w; ++c) {
      columns[r + c].push_back(nl.and_(a[c], b[r]));
    }
  }

  for (unsigned col = 0; col < 2 * w; ++col) {
    auto& bits = columns[col];
    while (bits.size() > 2) {
      const NetId x = bits.front();
      bits.pop_front();
      const NetId y = bits.front();
      bits.pop_front();
      const NetId z = bits.front();
      bits.pop_front();
      const NetId xy = nl.xor_(x, y);
      bits.push_back(nl.xor_(xy, z));
      if (col + 1 < 2 * w) {
        const NetId carry = nl.or_(nl.and_(x, y), nl.and_(xy, z));
        columns[col + 1].push_back(carry);
      }
      // else: a carry of weight 2^2w is provably 0 (product < 2^2w); not
      // instantiating it avoids redundant, untestable logic.
    }
    if (bits.size() == 2 && col + 1 < 2 * w) {
      // Half-adder so the final stage is a plain two-operand ripple add.
      const NetId x = bits.front();
      bits.pop_front();
      const NetId y = bits.front();
      bits.pop_front();
      bits.push_back(nl.xor_(x, y));
      columns[col + 1].push_back(nl.and_(x, y));
    }
  }

  // After compression every column has at most 2 bits; merge with a ripple
  // carry chain.
  Bus product(2 * w);
  const NetId zero = nl.constant(false);
  NetId carry = zero;
  for (unsigned col = 0; col < 2 * w; ++col) {
    const auto& bits = columns[col];
    const NetId x = bits.empty() ? zero : bits[0];
    const NetId y = bits.size() > 1 ? bits[1] : zero;
    const NetId xy = nl.xor_(x, y);
    product[col] = nl.xor_(xy, carry);
    carry = nl.or_(nl.and_(x, y), nl.and_(xy, carry));
  }
  nl.output_bus("product", product);
  return nl;
}

std::uint64_t multiplier_ref(std::uint32_t a, std::uint32_t b,
                             unsigned width) {
  const std::uint64_t mask = low_mask(width);
  return (static_cast<std::uint64_t>(a & mask) *
          static_cast<std::uint64_t>(b & mask)) &
         low_mask(2 * width);
}

}  // namespace sbst::rtlgen
