#include "rtlgen/control.hpp"

#include "rtlgen/alu.hpp"
#include "rtlgen/memctrl.hpp"
#include "rtlgen/shifter.hpp"

namespace sbst::rtlgen {

namespace {

constexpr std::uint8_t kOpRtype = 0x00;

ControlWord rtype_word(std::uint8_t funct) {
  ControlWord w;
  auto alu = [&](AluOp op) {
    w.alu_op = static_cast<std::uint8_t>(op);
    w.reg_write = true;
    w.reg_dst_rd = true;
  };
  auto shift = [&](ShiftOp op, bool from_reg) {
    w.is_shift = true;
    w.shift_op = static_cast<std::uint8_t>(op);
    w.shift_from_reg = from_reg;
    w.reg_write = true;
    w.reg_dst_rd = true;
  };
  switch (funct) {
    case 0x00: shift(ShiftOp::kSll, false); break;
    case 0x02: shift(ShiftOp::kSrl, false); break;
    case 0x03: shift(ShiftOp::kSra, false); break;
    case 0x04: shift(ShiftOp::kSll, true); break;
    case 0x06: shift(ShiftOp::kSrl, true); break;
    case 0x07: shift(ShiftOp::kSra, true); break;
    case 0x08: w.jump_reg = true; break;
    case 0x0d: break;  // break: architectural halt in this model
    case 0x10: w.move_from_hi = true; w.reg_write = true; w.reg_dst_rd = true; break;
    case 0x11: w.move_to_hi = true; break;
    case 0x12: w.move_from_lo = true; w.reg_write = true; w.reg_dst_rd = true; break;
    case 0x13: w.move_to_lo = true; break;
    case 0x18: w.mult_start = true; w.md_signed = true; break;
    case 0x19: w.mult_start = true; break;
    case 0x1a: w.div_start = true; w.md_signed = true; break;
    case 0x1b: w.div_start = true; break;
    case 0x20: case 0x21: alu(AluOp::kAdd); break;
    case 0x22: case 0x23: alu(AluOp::kSub); break;
    case 0x24: alu(AluOp::kAnd); break;
    case 0x25: alu(AluOp::kOr); break;
    case 0x26: alu(AluOp::kXor); break;
    case 0x27: alu(AluOp::kNor); break;
    case 0x2a: alu(AluOp::kSlt); break;
    case 0x2b: alu(AluOp::kSltu); break;
    default: w.illegal = true; w.mem_size = 0; break;  // all-zero control word
  }
  return w;
}

ControlWord itype_word(std::uint8_t opcode) {
  ControlWord w;
  auto alu_imm = [&](AluOp op, bool zero_ext) {
    w.alu_op = static_cast<std::uint8_t>(op);
    w.alu_src_imm = true;
    w.imm_zero_ext = zero_ext;
    w.reg_write = true;
  };
  auto load = [&](MemSize size, bool sign) {
    w.mem_read = true;
    w.mem_to_reg = true;
    w.reg_write = true;
    w.alu_op = static_cast<std::uint8_t>(AluOp::kAdd);
    w.alu_src_imm = true;
    w.mem_size = static_cast<std::uint8_t>(size);
    w.load_signed = sign;
  };
  auto store = [&](MemSize size) {
    w.mem_write = true;
    w.alu_op = static_cast<std::uint8_t>(AluOp::kAdd);
    w.alu_src_imm = true;
    w.mem_size = static_cast<std::uint8_t>(size);
  };
  switch (opcode) {
    case 0x02: w.jump = true; break;
    case 0x03: w.jump = true; w.link = true; w.reg_write = true; break;
    case 0x04: w.branch_eq = true;
               w.alu_op = static_cast<std::uint8_t>(AluOp::kSub); break;
    case 0x05: w.branch_ne = true;
               w.alu_op = static_cast<std::uint8_t>(AluOp::kSub); break;
    case 0x08: case 0x09: alu_imm(AluOp::kAdd, false); break;
    case 0x0a: alu_imm(AluOp::kSlt, false); break;
    case 0x0b: alu_imm(AluOp::kSltu, false); break;
    case 0x0c: alu_imm(AluOp::kAnd, true); break;
    case 0x0d: alu_imm(AluOp::kOr, true); break;
    case 0x0e: alu_imm(AluOp::kXor, true); break;
    case 0x0f: w.is_lui = true; w.reg_write = true; w.alu_src_imm = true; break;
    case 0x20: load(MemSize::kByte, true); break;
    case 0x21: load(MemSize::kHalf, true); break;
    case 0x23: load(MemSize::kWord, false); break;
    case 0x24: load(MemSize::kByte, false); break;
    case 0x25: load(MemSize::kHalf, false); break;
    case 0x28: store(MemSize::kByte); break;
    case 0x29: store(MemSize::kHalf); break;
    case 0x2b: store(MemSize::kWord); break;
    default: w.illegal = true; w.mem_size = 0; break;  // all-zero control word
  }
  return w;
}

}  // namespace

ControlWord control_ref(std::uint8_t opcode, std::uint8_t funct) {
  return opcode == kOpRtype ? rtype_word(funct) : itype_word(opcode);
}

const std::vector<OpcodePair>& all_instruction_opcodes() {
  static const std::vector<OpcodePair> kTable = {
      {0x00, 0x00, "sll"},   {0x00, 0x02, "srl"},   {0x00, 0x03, "sra"},
      {0x00, 0x04, "sllv"},  {0x00, 0x06, "srlv"},  {0x00, 0x07, "srav"},
      {0x00, 0x08, "jr"},    {0x00, 0x0d, "break"}, {0x00, 0x10, "mfhi"},
      {0x00, 0x11, "mthi"},  {0x00, 0x12, "mflo"},  {0x00, 0x13, "mtlo"},
      {0x00, 0x18, "mult"},  {0x00, 0x19, "multu"}, {0x00, 0x1a, "div"},
      {0x00, 0x1b, "divu"},  {0x00, 0x20, "add"},   {0x00, 0x21, "addu"},
      {0x00, 0x22, "sub"},   {0x00, 0x23, "subu"},  {0x00, 0x24, "and"},
      {0x00, 0x25, "or"},    {0x00, 0x26, "xor"},   {0x00, 0x27, "nor"},
      {0x00, 0x2a, "slt"},   {0x00, 0x2b, "sltu"},  {0x02, 0x00, "j"},
      {0x03, 0x00, "jal"},   {0x04, 0x00, "beq"},   {0x05, 0x00, "bne"},
      {0x08, 0x00, "addi"},  {0x09, 0x00, "addiu"}, {0x0a, 0x00, "slti"},
      {0x0b, 0x00, "sltiu"}, {0x0c, 0x00, "andi"},  {0x0d, 0x00, "ori"},
      {0x0e, 0x00, "xori"},  {0x0f, 0x00, "lui"},   {0x20, 0x00, "lb"},
      {0x21, 0x00, "lh"},    {0x23, 0x00, "lw"},    {0x24, 0x00, "lbu"},
      {0x25, 0x00, "lhu"},   {0x28, 0x00, "sb"},    {0x29, 0x00, "sh"},
      {0x2b, 0x00, "sw"},
  };
  return kTable;
}

netlist::Netlist build_control() {
  using netlist::Bus;
  using netlist::NetId;
  netlist::Netlist nl("control");
  const Bus opcode = nl.input_bus("opcode", 6);
  const Bus funct = nl.input_bus("funct", 6);
  const Bus opcode_n = nl.not_bus(opcode);
  const Bus funct_n = nl.not_bus(funct);

  auto match_bits = [&](const Bus& v, const Bus& vn, std::uint8_t pattern) {
    Bus terms(6);
    for (unsigned b = 0; b < 6; ++b) {
      terms[b] = (pattern >> b) & 1u ? v[b] : vn[b];
    }
    return nl.and_reduce(terms);
  };

  // One match line per instruction; the control word is generated from the
  // golden decoder so the netlist is correct by construction.
  struct Line {
    NetId match;
    ControlWord word;
  };
  std::vector<Line> lines;
  const NetId op_is_rtype = match_bits(opcode, opcode_n, kOpRtype);
  for (const OpcodePair& ins : all_instruction_opcodes()) {
    NetId m;
    if (ins.opcode == kOpRtype) {
      m = nl.and_(op_is_rtype, match_bits(funct, funct_n, ins.funct));
    } else {
      m = match_bits(opcode, opcode_n, ins.opcode);
    }
    lines.push_back({m, control_ref(ins.opcode, ins.funct)});
  }

  auto or_of = [&](auto predicate) -> NetId {
    Bus terms;
    for (const Line& line : lines) {
      if (predicate(line.word)) terms.push_back(line.match);
    }
    if (terms.empty()) return nl.constant(false);
    return nl.or_reduce(terms);
  };
  auto scalar = [&](const char* name, bool ControlWord::* field) {
    nl.output(name, or_of([field](const ControlWord& w) { return w.*field; }));
  };
  auto field_bus = [&](const char* name, unsigned bits,
                       std::uint8_t ControlWord::* field) {
    Bus out(bits);
    for (unsigned b = 0; b < bits; ++b) {
      out[b] = or_of(
          [field, b](const ControlWord& w) { return (w.*field >> b) & 1u; });
    }
    nl.output_bus(name, out);
  };

  scalar("reg_write", &ControlWord::reg_write);
  scalar("reg_dst_rd", &ControlWord::reg_dst_rd);
  scalar("alu_src_imm", &ControlWord::alu_src_imm);
  scalar("imm_zero_ext", &ControlWord::imm_zero_ext);
  field_bus("alu_op", 3, &ControlWord::alu_op);
  scalar("is_shift", &ControlWord::is_shift);
  scalar("shift_from_reg", &ControlWord::shift_from_reg);
  field_bus("shift_op", 2, &ControlWord::shift_op);
  scalar("mem_read", &ControlWord::mem_read);
  scalar("mem_write", &ControlWord::mem_write);
  scalar("mem_to_reg", &ControlWord::mem_to_reg);
  field_bus("mem_size", 2, &ControlWord::mem_size);
  scalar("load_signed", &ControlWord::load_signed);
  scalar("branch_eq", &ControlWord::branch_eq);
  scalar("branch_ne", &ControlWord::branch_ne);
  scalar("jump", &ControlWord::jump);
  scalar("link", &ControlWord::link);
  scalar("jump_reg", &ControlWord::jump_reg);
  scalar("is_lui", &ControlWord::is_lui);
  scalar("mult_start", &ControlWord::mult_start);
  scalar("div_start", &ControlWord::div_start);
  scalar("md_signed", &ControlWord::md_signed);
  scalar("move_from_hi", &ControlWord::move_from_hi);
  scalar("move_from_lo", &ControlWord::move_from_lo);
  scalar("move_to_hi", &ControlWord::move_to_hi);
  scalar("move_to_lo", &ControlWord::move_to_lo);

  // illegal = no match line asserted.
  Bus all_matches;
  for (const Line& line : lines) all_matches.push_back(line.match);
  nl.output("illegal", nl.not_(nl.or_reduce(all_matches)));
  return nl;
}

}  // namespace sbst::rtlgen
