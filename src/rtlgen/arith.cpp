#include "rtlgen/arith.hpp"

#include <stdexcept>

namespace sbst::rtlgen {

namespace {

// Full adder: sum = a^b^c, carry = ab | c(a^b).
struct FullAdder {
  NetId sum;
  NetId carry;
};

FullAdder full_adder(Netlist& nl, NetId a, NetId b, NetId c) {
  const NetId axb = nl.xor_(a, b);
  const NetId sum = nl.xor_(axb, c);
  const NetId carry = nl.or_(nl.and_(a, b), nl.and_(axb, c));
  return {sum, carry};
}

AdderResult ripple_adder(Netlist& nl, const Bus& a, const Bus& b, NetId cin) {
  AdderResult out;
  out.sum.resize(a.size());
  NetId carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.carry_into_msb = carry;  // last assignment is the carry into the MSB
    const FullAdder fa = full_adder(nl, a[i], b[i], carry);
    out.sum[i] = fa.sum;
    carry = fa.carry;
  }
  out.carry_out = carry;
  return out;
}

AdderResult cla_adder(Netlist& nl, const Bus& a, const Bus& b, NetId cin) {
  // 4-bit carry-lookahead blocks, block carries rippled.
  AdderResult out;
  const std::size_t width = a.size();
  out.sum.resize(width);
  NetId carry = cin;
  for (std::size_t base = 0; base < width; base += 4) {
    const std::size_t n = std::min<std::size_t>(4, width - base);
    Bus g(n), p(n), c(n);  // generate, propagate, carry-in per position
    for (std::size_t i = 0; i < n; ++i) {
      g[i] = nl.and_(a[base + i], b[base + i]);
      p[i] = nl.xor_(a[base + i], b[base + i]);
    }
    c[0] = carry;
    for (std::size_t i = 1; i < n; ++i) {
      // c[i] = g[i-1] | p[i-1]g[i-2] | ... | p[i-1]..p[0]c0, expanded.
      Bus terms;
      terms.push_back(g[i - 1]);
      for (std::size_t j = 0; j + 1 < i; ++j) {
        NetId t = g[j];
        for (std::size_t k = j + 1; k < i; ++k) t = nl.and_(t, p[k]);
        terms.push_back(t);
      }
      NetId t = c[0];
      for (std::size_t k = 0; k < i; ++k) t = nl.and_(t, p[k]);
      terms.push_back(t);
      c[i] = nl.or_reduce(terms);
    }
    for (std::size_t i = 0; i < n; ++i) {
      out.sum[base + i] = nl.xor_(p[i], c[i]);
      if (base + i + 1 == width) out.carry_into_msb = c[i];
    }
    // Block carry-out.
    NetId t = c[0];
    for (std::size_t k = 0; k < n; ++k) t = nl.and_(t, p[k]);
    Bus terms;
    terms.push_back(g[n - 1]);
    for (std::size_t j = 0; j + 1 < n; ++j) {
      NetId u = g[j];
      for (std::size_t k = j + 1; k < n; ++k) u = nl.and_(u, p[k]);
      terms.push_back(u);
    }
    terms.push_back(t);
    carry = nl.or_reduce(terms);
  }
  out.carry_out = carry;
  return out;
}

}  // namespace

AdderResult build_adder(Netlist& nl, const Bus& a, const Bus& b, NetId cin,
                        AdderStyle style) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("build_adder: width mismatch");
  }
  switch (style) {
    case AdderStyle::kRippleCarry:
      return ripple_adder(nl, a, b, cin);
    case AdderStyle::kCarryLookahead:
      return cla_adder(nl, a, b, cin);
  }
  throw std::invalid_argument("build_adder: bad style");
}

Bus build_incrementer(Netlist& nl, const Bus& a) {
  Bus sum(a.size());
  NetId carry = nl.constant(true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum[i] = nl.xor_(a[i], carry);
    if (i + 1 < a.size()) carry = nl.and_(a[i], carry);
  }
  return sum;
}

Bus build_negate(Netlist& nl, const Bus& a, AdderStyle style) {
  const Bus na = nl.not_bus(a);
  const Bus zero = nl.const_bus(0, static_cast<unsigned>(a.size()));
  return build_adder(nl, na, zero, nl.constant(true), style).sum;
}

}  // namespace sbst::rtlgen
