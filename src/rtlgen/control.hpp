// Control-logic decoder generator (Plasma control unit).
//
// Two-level decoded logic from (opcode, funct) to the datapath control
// signals. Classification: PVC — outputs steer visible components, so the
// paper tests it with a functional test (FT): execute every supported
// instruction opcode and observe the side effects through the D-VCs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace sbst::rtlgen {

/// Decoded control word, in output-port order of build_control.
/// One bit per field unless noted.
struct ControlWord {
  bool reg_write = false;
  bool reg_dst_rd = false;    // destination is rd (R-type) vs rt
  bool alu_src_imm = false;   // ALU operand B from immediate
  bool imm_zero_ext = false;  // andi/ori/xori zero-extend
  std::uint8_t alu_op = 0;    // rtlgen::AluOp encoding, 3 bits
  bool is_shift = false;
  bool shift_from_reg = false;  // sllv/srlv/srav
  std::uint8_t shift_op = 0;    // rtlgen::ShiftOp encoding, 2 bits
  bool mem_read = false;
  bool mem_write = false;
  bool mem_to_reg = false;
  std::uint8_t mem_size = 2;  // MemSize encoding, 2 bits
  bool load_signed = false;
  bool branch_eq = false;
  bool branch_ne = false;
  bool jump = false;
  bool link = false;  // jal
  bool jump_reg = false;
  bool is_lui = false;
  bool mult_start = false;  // mult/multu
  bool div_start = false;   // div/divu
  bool md_signed = false;   // signed mult/div
  bool move_from_hi = false;
  bool move_from_lo = false;
  bool move_to_hi = false;
  bool move_to_lo = false;
  bool illegal = false;  // no instruction matched

  friend bool operator==(const ControlWord&, const ControlWord&) = default;
};

/// Ports: in "opcode"[6], "funct"[6]; out one scalar/bus per ControlWord
/// field (see control.cpp for the exact port list).
netlist::Netlist build_control();

/// Functional golden decoder matching build_control.
ControlWord control_ref(std::uint8_t opcode, std::uint8_t funct);

/// All (opcode, funct) pairs of supported instructions — the paper's
/// "application of all instruction opcodes" functional test for the PVC.
struct OpcodePair {
  std::uint8_t opcode;
  std::uint8_t funct;  // 0 unless opcode == 0
  const char* mnemonic;
};
const std::vector<OpcodePair>& all_instruction_opcodes();

}  // namespace sbst::rtlgen
