#include "rtlgen/shifter.hpp"

#include <bit>
#include <stdexcept>

#include "common/bits.hpp"

namespace sbst::rtlgen {

netlist::Netlist build_shifter(const ShifterOptions& opts) {
  const unsigned w = opts.width;
  if (!std::has_single_bit(w)) {
    throw std::invalid_argument("build_shifter: width must be a power of 2");
  }
  const unsigned log_w = static_cast<unsigned>(std::countr_zero(w));

  netlist::Netlist nl("shifter" + std::to_string(w));
  const netlist::Bus a = nl.input_bus("a", w);
  const netlist::Bus shamt = nl.input_bus("shamt", log_w);
  const netlist::Bus op = nl.input_bus("op", kShiftOpBits);

  // op[1] = right shift (srl/sra), op[0] = arithmetic.
  const netlist::NetId right = op[1];
  const netlist::NetId fill = nl.and_(op[0], a[w - 1]);  // sra sign fill
  const netlist::NetId zero = nl.constant(false);

  // Reverse the operand for left shifts so all stages shift right; reverse
  // the result back at the end. This shares one mux network for all 3 ops.
  netlist::Bus cur(w);
  for (unsigned i = 0; i < w; ++i) {
    cur[i] = nl.mux2(right, a[w - 1 - i], a[i]);
  }
  for (unsigned stage = 0; stage < log_w; ++stage) {
    const unsigned dist = 1u << stage;
    const netlist::NetId sel = shamt[stage];
    // Left shifts use zero fill even through the shared right-shift network.
    const netlist::NetId stage_fill = nl.mux2(right, zero, fill);
    netlist::Bus next(w);
    for (unsigned i = 0; i < w; ++i) {
      const netlist::NetId shifted =
          i + dist < w ? cur[i + dist] : stage_fill;
      next[i] = nl.mux2(sel, cur[i], shifted);
    }
    cur = std::move(next);
  }
  netlist::Bus result(w);
  for (unsigned i = 0; i < w; ++i) {
    result[i] = nl.mux2(right, cur[w - 1 - i], cur[i]);
  }
  nl.output_bus("result", result);
  return nl;
}

std::uint32_t shifter_ref(ShiftOp op, std::uint32_t a, unsigned shamt,
                          unsigned width) {
  const std::uint32_t mask = static_cast<std::uint32_t>(low_mask(width));
  a &= mask;
  shamt &= width - 1;
  switch (op) {
    case ShiftOp::kSll:
      return (a << shamt) & mask;
    case ShiftOp::kSrl:
      return a >> shamt;
    case ShiftOp::kSra: {
      const bool neg = bit(a, width - 1);
      std::uint32_t r = a >> shamt;
      if (neg && shamt > 0) {
        r |= mask & ~static_cast<std::uint32_t>(low_mask(width - shamt));
      }
      return r;
    }
  }
  throw std::invalid_argument("shifter_ref: bad op");
}

}  // namespace sbst::rtlgen
