// Direct-mapped cache model (instruction and data caches of the embedded
// system the paper's execution-time analysis assumes).
//
// The paper's headline execution-time figure uses an analytic model (miss
// rate x penalty); this simulated cache provides measured miss rates for
// the same programs so bench/exec_time_model can report both.
#pragma once

#include <cstdint>
#include <vector>

namespace sbst::sim {

struct CacheConfig {
  bool enabled = true;
  unsigned line_words = 4;     // words per line
  unsigned lines = 128;        // direct-mapped line count
  unsigned miss_penalty = 20;  // stall cycles per miss (paper's value)
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Accesses byte address `addr`; returns true on hit. Misses fill the
  /// line. Disabled caches always hit (no memory-stall accounting).
  bool access(std::uint32_t addr);

  void flush();

  const CacheConfig& config() const { return config_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double miss_rate() const {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(misses_) /
                            static_cast<double>(total);
  }
  void reset_stats() { hits_ = misses_ = 0; }

 private:
  CacheConfig config_;
  std::vector<std::uint32_t> tags_;
  std::vector<std::uint8_t> valid_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace sbst::sim
