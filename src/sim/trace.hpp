// Execution hooks: component operand tracing and gate-level result override.
//
// Tracing (`on_*`) is how the SBST coverage evaluator captures exactly the
// pattern streams a self-test routine applies to each component under test;
// the streams are replayed on the rtlgen netlists by the fault simulators.
//
// Overriding (`*_result`) is how gate-level faults are injected into
// program execution: a hook can compute the result through a faulty netlist
// and return it, making the architectural state (and eventually the MISR
// signature) diverge exactly as real silicon would.
#pragma once

#include <cstdint>
#include <optional>

#include "rtlgen/alu.hpp"
#include "rtlgen/memctrl.hpp"
#include "rtlgen/shifter.hpp"

namespace sbst::sim {

class CpuHooks {
 public:
  virtual ~CpuHooks() = default;

  // ---- component operand traces -------------------------------------------
  /// Called first for every retired instruction with its PC; lets a trace
  /// collector attribute events to program sections (self-test routines).
  virtual void on_instruction_start(std::uint32_t /*pc*/) {}
  /// Every ALU evaluation: explicit ALU instructions, address adds of
  /// loads/stores, and branch comparisons (Plasma shares one ALU).
  virtual void on_alu(rtlgen::AluOp, std::uint32_t /*a*/,
                      std::uint32_t /*b*/) {}
  virtual void on_shift(rtlgen::ShiftOp, std::uint32_t /*value*/,
                        std::uint32_t /*shamt*/) {}
  /// Operands as presented to the unsigned parallel array (mult/multu;
  /// signed operands arrive as magnitudes).
  virtual void on_mult(std::uint32_t /*a*/, std::uint32_t /*b*/) {}
  /// Operands as presented to the unsigned serial divider.
  virtual void on_div(std::uint32_t /*dividend*/, std::uint32_t /*divisor*/) {}
  /// One register-file cycle per retired instruction. Unused read ports are
  /// addressed to $zero (reading $zero cannot propagate a fault).
  virtual void on_regfile(std::uint8_t /*waddr*/, std::uint32_t /*wdata*/,
                          bool /*wen*/, std::uint8_t /*raddr1*/,
                          std::uint8_t /*raddr2*/) {}
  /// One memory-controller transaction per load/store.
  virtual void on_mem(std::uint32_t /*addr*/, std::uint32_t /*wdata*/,
                      rtlgen::MemSize, bool /*sign*/, bool /*wr*/,
                      std::uint32_t /*mem_rdata*/) {}
  /// One decode per retired instruction (the PVC functional-test stream).
  virtual void on_control(std::uint8_t /*opcode*/, std::uint8_t /*funct*/) {}
  /// Forwarding-unit inputs per retired instruction (HC side-effect trace).
  virtual void on_forward(std::uint8_t /*rs*/, std::uint8_t /*rt*/,
                          std::uint8_t /*ex_rd*/, bool /*ex_wen*/,
                          std::uint8_t /*mem_rd*/, bool /*mem_wen*/) {}
  /// A taken branch/jump: the fetch-stage pipeline register is flushed.
  virtual void on_branch_flush() {}
  /// Branch-target computation (every beq/bne, taken or not): the
  /// PC-relative adder sees pc+4 and the shifted sign-extended offset.
  virtual void on_branch_target(std::uint32_t /*pc_plus4*/,
                                std::uint32_t /*offset*/) {}

  // ---- gate-level fault injection ------------------------------------------
  /// Return a value to replace the functional result (faulty execution),
  /// or nullopt to keep it.
  virtual std::optional<std::uint32_t> alu_result(rtlgen::AluOp,
                                                  std::uint32_t /*a*/,
                                                  std::uint32_t /*b*/) {
    return std::nullopt;
  }
  virtual std::optional<std::uint32_t> shift_result(rtlgen::ShiftOp,
                                                    std::uint32_t /*value*/,
                                                    std::uint32_t /*shamt*/) {
    return std::nullopt;
  }
  virtual std::optional<std::uint64_t> mult_result(std::uint32_t /*a*/,
                                                   std::uint32_t /*b*/) {
    return std::nullopt;
  }
};

}  // namespace sbst::sim
