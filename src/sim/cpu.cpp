#include "sim/cpu.hpp"

#include <cstring>

#include "common/bits.hpp"
#include "rtlgen/divider.hpp"
#include "rtlgen/multiplier.hpp"
#include "sim/exec.hpp"

namespace sbst::sim {

using isa::Fields;
using rtlgen::AluOp;
using rtlgen::MemSize;
using rtlgen::ShiftOp;

WildStoreError::WildStoreError(std::uint32_t addr)
    : CpuError("wild store at " + to_hex32(addr)), addr_(addr) {}

const char* stop_reason_name(StopReason reason) {
  switch (reason) {
    case StopReason::kHalted: return "halted";
    case StopReason::kInstructionBudget: return "instruction_budget";
    case StopReason::kCycleBudget: return "cycle_budget";
    case StopReason::kStoreBudget: return "store_budget";
    case StopReason::kWildStore: return "wild_store";
    case StopReason::kTrap: return "trap";
  }
  return "unknown";
}

std::uint64_t ExecStats::analytic_total_cycles(double miss_rate,
                                               unsigned miss_penalty) const {
  const double accesses = static_cast<double>(instructions + loads + stores);
  const double mem_stalls = accesses * miss_rate * miss_penalty;
  return cpu_cycles + pipeline_stall_cycles +
         static_cast<std::uint64_t>(mem_stalls);
}

Cpu::Cpu(const CpuConfig& config)
    : config_(config),
      memory_(config.mem_bytes, 0),
      icache_(config.icache),
      dcache_(config.dcache) {}

void Cpu::reset() {
  regs_.fill(0);
  hi_ = lo_ = 0;
  icache_.flush();
  dcache_.flush();
  icache_.reset_stats();
  dcache_.reset_stats();
  prev_dest_ = prev2_dest_ = 0;
  prev_was_load_ = false;
  muldiv_ready_ = 0;
  cycle_now_ = 0;
}

void Cpu::load(const isa::Program& program,
               std::shared_ptr<const isa::DecodedProgram> decoded) {
  if (program.end_address() > memory_.size()) {
    throw CpuError("program does not fit in memory");
  }
  // Drop the previous predecoded view first so the copy loop below does not
  // clone-and-patch it word by word.
  decoded_ = nullptr;
  decoded_shared_.reset();
  decoded_owned_.reset();
  for (std::size_t i = 0; i < program.words.size(); ++i) {
    write_word(program.base + static_cast<std::uint32_t>(i * 4),
               program.words[i]);
  }
  if (decoded) {
    if (decoded->base() != program.base ||
        decoded->size() != program.words.size()) {
      throw CpuError("decoded program does not match image");
    }
    decoded_shared_ = std::move(decoded);
    decoded_ = decoded_shared_.get();
  } else {
    decoded_owned_ = std::make_unique<isa::DecodedProgram>(program);
    decoded_ = decoded_owned_.get();
  }
}

std::uint32_t Cpu::read_word(std::uint32_t addr) const {
  if (addr + 4 > memory_.size() || (addr & 3u)) {
    throw CpuError("bad word read at " + to_hex32(addr));
  }
  std::uint32_t v;
  std::memcpy(&v, memory_.data() + addr, 4);
  return v;
}

void Cpu::write_word(std::uint32_t addr, std::uint32_t value) {
  if (addr + 4 > memory_.size() || (addr & 3u)) {
    throw CpuError("bad word write at " + to_hex32(addr));
  }
  std::memcpy(memory_.data() + addr, &value, 4);
  if (decoded_ && decoded_->contains(addr)) {
    if (!decoded_owned_) {  // never mutate a shared predecoded image
      decoded_owned_ = std::make_unique<isa::DecodedProgram>(*decoded_);
      decoded_shared_.reset();
      decoded_ = decoded_owned_.get();
    }
    decoded_owned_->patch(addr, value);
  }
}

std::uint32_t Cpu::fetch(std::uint32_t pc, ExecStats& stats) {
  ++stats.icache_accesses;
  if (!icache_.access(pc)) {
    ++stats.icache_misses;
    stats.memory_stall_cycles += icache_.config().miss_penalty;
  }
  return read_word(pc);
}

std::uint32_t Cpu::alu(AluOp op, std::uint32_t a, std::uint32_t b) {
  std::uint32_t r = rtlgen::alu_ref(op, a, b);
  if (hooks_) {
    hooks_->on_alu(op, a, b);
    if (const auto forced = hooks_->alu_result(op, a, b)) r = *forced;
  }
  return r;
}

std::uint32_t Cpu::shift(ShiftOp op, std::uint32_t value,
                         std::uint32_t shamt) {
  shamt &= 31u;
  std::uint32_t r = rtlgen::shifter_ref(op, value, shamt);
  if (hooks_) {
    hooks_->on_shift(op, value, shamt);
    if (const auto forced = hooks_->shift_result(op, value, shamt)) {
      r = *forced;
    }
  }
  return r;
}

std::uint32_t Cpu::mem_load(std::uint32_t addr, MemSize size, bool sign,
                            ExecStats& stats) {
  const unsigned bytes = size == MemSize::kByte ? 1
                         : size == MemSize::kHalf ? 2
                                                  : 4;
  if (addr % bytes != 0) {
    throw CpuError("misaligned load at " + to_hex32(addr));
  }
  ++stats.loads;
  ++stats.dcache_accesses;
  stats.cpu_cycles += config_.mem_access_cycles;
  cycle_now_ += config_.mem_access_cycles;
  if (!dcache_.access(addr)) {
    ++stats.dcache_misses;
    stats.memory_stall_cycles += dcache_.config().miss_penalty;
  }
  const std::uint32_t word = read_word(addr & ~3u);
  if (hooks_) hooks_->on_mem(addr, 0, size, sign, false, word);
  return rtlgen::memctrl_load_ref(addr, word, size, sign);
}

void Cpu::mem_store(std::uint32_t addr, std::uint32_t value, MemSize size,
                    ExecStats& stats) {
  const unsigned bytes = size == MemSize::kByte ? 1
                         : size == MemSize::kHalf ? 2
                                                  : 4;
  if (addr % bytes != 0) {
    throw CpuError("misaligned store at " + to_hex32(addr));
  }
  ++stats.stores;
  ++stats.dcache_accesses;
  stats.cpu_cycles += config_.mem_access_cycles;
  cycle_now_ += config_.mem_access_cycles;
  if (!dcache_.access(addr)) {
    ++stats.dcache_misses;
    stats.memory_stall_cycles += dcache_.config().miss_penalty;
  }
  const std::uint32_t old = read_word(addr & ~3u);
  if (hooks_) hooks_->on_mem(addr, value, size, false, true, old);
  const auto ref = rtlgen::memctrl_store_ref(addr, value, size, true);
  std::uint32_t merged = old;
  for (unsigned lane = 0; lane < 4; ++lane) {
    if ((ref.byte_en >> lane) & 1u) {
      merged = (merged & ~(0xffu << (lane * 8))) |
               (ref.mem_wdata & (0xffu << (lane * 8)));
    }
  }
  write_word(addr & ~3u, merged);
}

namespace {

// Which architectural registers an instruction reads (for hazard checks).
struct RegReads {
  bool rs = false;
  bool rt = false;
};

RegReads reads_of(const Fields& f) {
  RegReads r;
  if (f.opcode == 0x00) {
    switch (f.funct) {
      case 0x00: case 0x02: case 0x03:  // immediate shifts read rt only
        r.rt = true;
        break;
      case 0x08: case 0x11: case 0x13:  // jr, mthi, mtlo
        r.rs = true;
        break;
      case 0x10: case 0x12: case 0x0d:  // mfhi, mflo, break
        break;
      default:
        r.rs = r.rt = true;
    }
    return r;
  }
  switch (f.opcode) {
    case 0x02: case 0x03: case 0x0f:  // j, jal, lui
      break;
    case 0x04: case 0x05:  // branches
      r.rs = r.rt = true;
      break;
    case 0x28: case 0x29: case 0x2b:  // stores read base + data
      r.rs = r.rt = true;
      break;
    default:  // immediate ALU ops and loads read rs
      r.rs = true;
  }
  return r;
}

std::uint32_t magnitude(std::uint32_t v) {
  return static_cast<std::int32_t>(v) < 0 ? 0u - v : v;
}

}  // namespace

void Cpu::charge_hazards(const Fields& f, ExecStats& stats) {
  const RegReads r = reads_of(f);
  auto uses = [&](std::uint8_t reg) {
    return reg != 0 && ((r.rs && f.rs == reg) || (r.rt && f.rt == reg));
  };
  unsigned stall = 0;
  if (config_.forwarding) {
    // Only a load feeding the very next instruction bubbles.
    if (prev_was_load_ && uses(prev_dest_)) stall = 1;
  } else {
    if (prev_dest_ != 0 && uses(prev_dest_)) {
      stall = 2;
    } else if (prev2_dest_ != 0 && uses(prev2_dest_)) {
      stall = 1;
    }
  }
  stats.pipeline_stall_cycles += stall;
  cycle_now_ += stall;
}

void Cpu::wait_muldiv(ExecStats& stats) {
  if (cycle_now_ < muldiv_ready_) {
    const std::uint64_t wait = muldiv_ready_ - cycle_now_;
    // Multi-cycle arithmetic latency counts as CPU clock cycles, matching
    // the paper's accounting for the mul/div routine.
    stats.cpu_cycles += wait;
    cycle_now_ += wait;
  }
}

ExecStats Cpu::run(std::uint32_t entry, std::uint64_t max_instructions) {
  if (hooks_) {
    HookSink sink{hooks_};
    return run_sink(entry, sink, max_instructions);
  }
  NoSink sink;
  return run_sink(entry, sink, max_instructions);
}

ExecStats Cpu::run_interpreter(std::uint32_t entry,
                               std::uint64_t max_instructions) {
  ExecStats stats;
  std::uint32_t pc = entry;
  std::uint32_t next_pc = entry + 4;

  while (stats.instructions < max_instructions) {
    const std::uint32_t word = fetch(pc, stats);
    const Fields f = isa::decode(word);
    ++stats.instructions;
    ++stats.cpu_cycles;
    ++cycle_now_;
    charge_hazards(f, stats);
    if (hooks_) {
      hooks_->on_instruction_start(pc);
      hooks_->on_control(f.opcode, f.funct);
    }

    std::uint32_t new_next = next_pc + 4;
    const std::uint32_t rs_v = regs_[f.rs];
    const std::uint32_t rt_v = regs_[f.rt];
    const std::uint32_t simm =
        sign_extend32(f.imm, 16);

    std::uint8_t dest = 0;
    std::uint32_t dest_value = 0;
    bool write = false;
    bool is_load = false;
    bool halted = false;

    auto set_dest = [&](std::uint8_t reg, std::uint32_t value) {
      dest = reg;
      dest_value = value;
      write = reg != 0;
    };

    if (f.opcode == 0x00) {
      switch (f.funct) {
        case 0x00: set_dest(f.rd, shift(ShiftOp::kSll, rt_v, f.shamt)); break;
        case 0x02: set_dest(f.rd, shift(ShiftOp::kSrl, rt_v, f.shamt)); break;
        case 0x03: set_dest(f.rd, shift(ShiftOp::kSra, rt_v, f.shamt)); break;
        case 0x04: set_dest(f.rd, shift(ShiftOp::kSll, rt_v, rs_v)); break;
        case 0x06: set_dest(f.rd, shift(ShiftOp::kSrl, rt_v, rs_v)); break;
        case 0x07: set_dest(f.rd, shift(ShiftOp::kSra, rt_v, rs_v)); break;
        case 0x08: new_next = rs_v; break;  // jr
        case 0x0d: halted = true; break;    // break
        case 0x10: wait_muldiv(stats); set_dest(f.rd, hi_); break;
        case 0x11: wait_muldiv(stats); hi_ = rs_v; break;
        case 0x12: wait_muldiv(stats); set_dest(f.rd, lo_); break;
        case 0x13: wait_muldiv(stats); lo_ = rs_v; break;
        case 0x18:    // mult
        case 0x19: {  // multu
          wait_muldiv(stats);
          const bool is_signed = f.funct == 0x18;
          const std::uint32_t au = is_signed ? magnitude(rs_v) : rs_v;
          const std::uint32_t bu = is_signed ? magnitude(rt_v) : rt_v;
          std::uint64_t product = rtlgen::multiplier_ref(au, bu);
          if (hooks_) {
            hooks_->on_mult(au, bu);
            if (const auto forced = hooks_->mult_result(au, bu)) {
              product = *forced;
            }
          }
          if (is_signed && (static_cast<std::int32_t>(rs_v) < 0) !=
                               (static_cast<std::int32_t>(rt_v) < 0)) {
            product = 0u - product;
          }
          lo_ = static_cast<std::uint32_t>(product);
          hi_ = static_cast<std::uint32_t>(product >> 32);
          muldiv_ready_ = cycle_now_ + config_.mult_cycles;
          break;
        }
        case 0x1a:    // div
        case 0x1b: {  // divu
          wait_muldiv(stats);
          const bool is_signed = f.funct == 0x1a;
          const std::uint32_t au = is_signed ? magnitude(rs_v) : rs_v;
          const std::uint32_t bu = is_signed ? magnitude(rt_v) : rt_v;
          if (hooks_) hooks_->on_div(au, bu);
          const rtlgen::DivRef d = rtlgen::divider_ref(au, bu);
          std::uint32_t q = d.quotient;
          std::uint32_t r = d.remainder;
          if (is_signed && bu != 0) {
            if ((static_cast<std::int32_t>(rs_v) < 0) !=
                (static_cast<std::int32_t>(rt_v) < 0)) {
              q = 0u - q;
            }
            if (static_cast<std::int32_t>(rs_v) < 0) r = 0u - r;
          }
          lo_ = q;
          hi_ = r;
          muldiv_ready_ = cycle_now_ + config_.div_cycles;
          break;
        }
        case 0x20: case 0x21:
          set_dest(f.rd, alu(AluOp::kAdd, rs_v, rt_v));
          break;
        case 0x22: case 0x23:
          set_dest(f.rd, alu(AluOp::kSub, rs_v, rt_v));
          break;
        case 0x24: set_dest(f.rd, alu(AluOp::kAnd, rs_v, rt_v)); break;
        case 0x25: set_dest(f.rd, alu(AluOp::kOr, rs_v, rt_v)); break;
        case 0x26: set_dest(f.rd, alu(AluOp::kXor, rs_v, rt_v)); break;
        case 0x27: set_dest(f.rd, alu(AluOp::kNor, rs_v, rt_v)); break;
        case 0x2a: set_dest(f.rd, alu(AluOp::kSlt, rs_v, rt_v)); break;
        case 0x2b: set_dest(f.rd, alu(AluOp::kSltu, rs_v, rt_v)); break;
        default:
          throw CpuError("illegal funct " + to_hex32(f.funct) + " at pc " +
                         to_hex32(pc));
      }
    } else {
      switch (f.opcode) {
        case 0x02:  // j
          new_next = (pc & 0xf0000000u) | (f.target << 2);
          break;
        case 0x03:  // jal
          set_dest(isa::kRa, pc + 8);
          new_next = (pc & 0xf0000000u) | (f.target << 2);
          break;
        case 0x04:  // beq
          if (hooks_) {
            hooks_->on_branch_target(pc + 4, sign_extend32(f.imm, 16) << 2);
          }
          if (alu(AluOp::kSub, rs_v, rt_v) == 0) {
            new_next = pc + 4 + (sign_extend32(f.imm, 16) << 2);
          }
          break;
        case 0x05:  // bne
          if (hooks_) {
            hooks_->on_branch_target(pc + 4, sign_extend32(f.imm, 16) << 2);
          }
          if (alu(AluOp::kSub, rs_v, rt_v) != 0) {
            new_next = pc + 4 + (sign_extend32(f.imm, 16) << 2);
          }
          break;
        case 0x08: case 0x09:
          set_dest(f.rt, alu(AluOp::kAdd, rs_v, simm));
          break;
        case 0x0a: set_dest(f.rt, alu(AluOp::kSlt, rs_v, simm)); break;
        case 0x0b: set_dest(f.rt, alu(AluOp::kSltu, rs_v, simm)); break;
        case 0x0c: set_dest(f.rt, alu(AluOp::kAnd, rs_v, f.imm)); break;
        case 0x0d: set_dest(f.rt, alu(AluOp::kOr, rs_v, f.imm)); break;
        case 0x0e: set_dest(f.rt, alu(AluOp::kXor, rs_v, f.imm)); break;
        case 0x0f:  // lui
          set_dest(f.rt, static_cast<std::uint32_t>(f.imm) << 16);
          break;
        case 0x20:
          is_load = true;
          set_dest(f.rt, mem_load(alu(AluOp::kAdd, rs_v, simm),
                                  MemSize::kByte, true, stats));
          break;
        case 0x21:
          is_load = true;
          set_dest(f.rt, mem_load(alu(AluOp::kAdd, rs_v, simm),
                                  MemSize::kHalf, true, stats));
          break;
        case 0x23:
          is_load = true;
          set_dest(f.rt, mem_load(alu(AluOp::kAdd, rs_v, simm),
                                  MemSize::kWord, false, stats));
          break;
        case 0x24:
          is_load = true;
          set_dest(f.rt, mem_load(alu(AluOp::kAdd, rs_v, simm),
                                  MemSize::kByte, false, stats));
          break;
        case 0x25:
          is_load = true;
          set_dest(f.rt, mem_load(alu(AluOp::kAdd, rs_v, simm),
                                  MemSize::kHalf, false, stats));
          break;
        case 0x28:
          mem_store(alu(AluOp::kAdd, rs_v, simm), rt_v, MemSize::kByte,
                    stats);
          break;
        case 0x29:
          mem_store(alu(AluOp::kAdd, rs_v, simm), rt_v, MemSize::kHalf,
                    stats);
          break;
        case 0x2b:
          mem_store(alu(AluOp::kAdd, rs_v, simm), rt_v, MemSize::kWord,
                    stats);
          break;
        default:
          throw CpuError("illegal opcode " + to_hex32(f.opcode) + " at pc " +
                         to_hex32(pc));
      }
    }

    // Register-file and hidden-component traces.
    if (hooks_) {
      const RegReads r = reads_of(f);
      hooks_->on_regfile(write ? dest : 0, dest_value, write,
                         r.rs ? f.rs : 0, r.rt ? f.rt : 0);
      hooks_->on_forward(r.rs ? f.rs : 0, r.rt ? f.rt : 0, prev_dest_,
                         prev_dest_ != 0, prev2_dest_, prev2_dest_ != 0);
    }
    if (write) regs_[dest] = dest_value;

    prev2_dest_ = prev_dest_;
    prev_dest_ = write ? dest : 0;
    prev_was_load_ = is_load;

    if (halted) {
      stats.halted = true;
      break;
    }
    if (new_next != next_pc + 4) {
      if (hooks_) hooks_->on_branch_flush();
      stats.pipeline_stall_cycles += config_.branch_taken_penalty;
      cycle_now_ += config_.branch_taken_penalty;
    }
    pc = next_pc;
    next_pc = new_next;
  }
  return stats;
}

}  // namespace sbst::sim
