// Structural 3-stage pipeline CPU (Plasma organisation).
//
// Where sim::Cpu is a functional interpreter with timing *accounting*, this
// model moves instructions through explicit stage latches cycle by cycle:
//
//   F  fetch            — I-cache access, PC management
//   X  decode/execute   — register read with forwarding from the X/M latch,
//                         ALU/shifter, branch resolution (one architectural
//                         delay slot falls out of the stage timing), load
//                         interlock, multi-cycle mult/div unit
//   M  memory/writeback — D-cache access, register-file write
//
// It exists (a) as an independent implementation to cross-validate the
// functional model against — tests run whole SBST programs on both and
// require identical architectural results — and (b) to ground the paper's
// hidden-component story: the forwarding decisions and stage latches here
// are the HCs the D-VC routines cover as a side effect.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "isa/assembler.hpp"
#include "isa/encoding.hpp"
#include "sim/cache.hpp"
#include "sim/cpu.hpp"

namespace sbst::sim {

class PipelinedCpu {
 public:
  explicit PipelinedCpu(const CpuConfig& config = {});

  void load(const isa::Program& program);
  void reset();

  /// Runs until `break` retires or `max_cycles` elapse.
  ExecStats run(std::uint32_t entry, std::uint64_t max_cycles = 1u << 26);

  std::uint32_t reg(unsigned index) const { return regs_[index]; }
  std::uint32_t hi() const { return hi_; }
  std::uint32_t lo() const { return lo_; }
  std::uint32_t read_word(std::uint32_t addr) const;
  void write_word(std::uint32_t addr, std::uint32_t value);

 private:
  // ---- stage latches --------------------------------------------------------
  struct FetchLatch {  // F -> X
    bool valid = false;
    std::uint32_t pc = 0;
    std::uint32_t instr = 0;
  };
  struct ExecLatch {  // X -> M
    bool valid = false;
    std::uint32_t pc = 0;
    isa::Fields fields{};
    std::uint8_t dest = 0;        // 0 = no register write
    std::uint32_t result = 0;     // ALU/shift/link value
    std::uint32_t store_value = 0;
    bool is_load = false;
    bool is_store = false;
    rtlgen::MemSize size = rtlgen::MemSize::kWord;
    bool load_signed = false;
    bool is_break = false;
  };

  struct XResult {
    bool stall = false;      // X could not issue this cycle
    bool redirect = false;   // branch/jump resolved
    std::uint32_t target = 0;
  };

  void stage_mem(ExecStats& stats);
  XResult stage_execute(ExecStats& stats);

  std::uint32_t forwarded(std::uint8_t reg) const;
  bool operand_ready(std::uint8_t reg) const;

  CpuConfig config_;
  std::array<std::uint32_t, 32> regs_{};
  std::uint32_t hi_ = 0, lo_ = 0;
  std::vector<std::uint8_t> memory_;
  Cache icache_;
  Cache dcache_;

  FetchLatch f_;
  ExecLatch x_;
  // Memory-stage result available for forwarding *next* cycle.
  std::uint8_t wb_dest_ = 0;
  std::uint32_t wb_value_ = 0;
  bool wb_from_load_ = false;

  std::uint64_t muldiv_busy_ = 0;  // remaining cycles of the md unit
  std::uint32_t pc_ = 0;
  bool halted_ = false;
};

}  // namespace sbst::sim
