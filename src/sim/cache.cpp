#include "sim/cache.hpp"

namespace sbst::sim {

Cache::Cache(const CacheConfig& config)
    : config_(config),
      tags_(config.lines, 0),
      valid_(config.lines, 0) {}

bool Cache::access(std::uint32_t addr) {
  if (!config_.enabled) {
    ++hits_;
    return true;
  }
  const std::uint32_t line_bytes = config_.line_words * 4;
  const std::uint32_t line_addr = addr / line_bytes;
  const std::uint32_t index = line_addr % config_.lines;
  const std::uint32_t tag = line_addr / config_.lines;
  if (valid_[index] && tags_[index] == tag) {
    ++hits_;
    return true;
  }
  ++misses_;
  valid_[index] = 1;
  tags_[index] = tag;
  return false;
}

void Cache::flush() {
  std::fill(valid_.begin(), valid_.end(), 0);
}

}  // namespace sbst::sim
