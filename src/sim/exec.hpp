// Sink-policy execution core: one templated dispatch loop over predecoded
// micro-ops, instantiated per observation policy.
//
// The interpreter delivered every ALU / shifter / memory / register-file
// event through the virtual CpuHooks interface, so even pure timing runs
// paid a null check and the traced runs paid a virtual call per event. The
// sink policy moves that decision to compile time:
//
//   NoSink          — pure timing runs; every trace/override site compiles
//                     out (the common case: good-machine runs, periodic-test
//                     cost measurement).
//   TraceSink<T>    — trace events delivered by direct (devirtualized when T
//                     is final) call; no override queries. Used by the
//                     coverage evaluator's TraceCollector.
//   InjectSink<T>   — override queries only (gate-level fault injection);
//                     no trace events, matching GateLevelFaultInjector's
//                     contract, which implements only the *_result points.
//   HookSink        — both, through the virtual CpuHooks base: the adapter
//                     for external users of Cpu::set_hooks.
//
// All four instantiations execute the same loop and are bitwise-identical
// to Cpu::run_interpreter in ExecStats, architectural state, and event
// order (differentially tested in tests/test_decode_roundtrip.cpp).
#pragma once

#include <cstdint>

#include "common/bits.hpp"
#include "isa/decode.hpp"
#include "rtlgen/divider.hpp"
#include "sim/cpu.hpp"

namespace sbst::sim {

/// Pure timing: no trace events, no override queries.
struct NoSink {
  static constexpr bool kTraces = false;
  static constexpr bool kOverrides = false;
};

/// Statically-typed sink around an event consumer `T` (a CpuHooks-shaped
/// class; calls devirtualize when T is a final class).
template <class T, bool Traces, bool Overrides>
struct SinkRef {
  static constexpr bool kTraces = Traces;
  static constexpr bool kOverrides = Overrides;
  T* t;
};

/// Trace-only consumer (coverage evaluation).
template <class T>
using TraceSink = SinkRef<T, true, false>;
/// Override-only consumer (gate-level fault injection).
template <class T>
using InjectSink = SinkRef<T, false, true>;
/// Virtual adapter: full CpuHooks contract for external users.
using HookSink = SinkRef<CpuHooks, true, true>;

namespace exec_detail {

// Inline width-32 replicas of the rtlgen golden models, so the hot loop has
// no cross-TU calls for single-cycle datapath operations. Fuzz-tested
// bit-for-bit against alu_ref / shifter_ref / memctrl_*_ref.

inline std::uint32_t alu32(rtlgen::AluOp op, std::uint32_t a,
                           std::uint32_t b) {
  switch (op) {
    case rtlgen::AluOp::kAnd: return a & b;
    case rtlgen::AluOp::kOr: return a | b;
    case rtlgen::AluOp::kXor: return a ^ b;
    case rtlgen::AluOp::kNor: return ~(a | b);
    case rtlgen::AluOp::kAdd: return a + b;
    case rtlgen::AluOp::kSub: return a - b;
    case rtlgen::AluOp::kSlt:
      return static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b)
                 ? 1u
                 : 0u;
    case rtlgen::AluOp::kSltu: return a < b ? 1u : 0u;
  }
  return 0;  // unreachable: all AluOp values handled above
}

/// `shamt` must already be masked to 0..31.
inline std::uint32_t shift32(rtlgen::ShiftOp op, std::uint32_t a,
                             std::uint32_t shamt) {
  switch (op) {
    case rtlgen::ShiftOp::kSll: return a << shamt;
    case rtlgen::ShiftOp::kSrl: return a >> shamt;
    case rtlgen::ShiftOp::kSra:
      return static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >>
                                        shamt);
  }
  return 0;  // unreachable
}

/// Lane extraction of memctrl_load_ref.
inline std::uint32_t load_extract(std::uint32_t addr, std::uint32_t word,
                                  rtlgen::MemSize size, bool sign) {
  switch (size) {
    case rtlgen::MemSize::kByte: {
      const std::uint32_t b = (word >> ((addr & 3u) * 8)) & 0xffu;
      return sign ? sign_extend32(b, 8) : b;
    }
    case rtlgen::MemSize::kHalf: {
      const std::uint32_t h = (word >> ((addr & 2u) * 8)) & 0xffffu;
      return sign ? sign_extend32(h, 16) : h;
    }
    case rtlgen::MemSize::kWord: return word;
  }
  return word;
}

/// Byte-enable merge of memctrl_store_ref into the old memory word.
inline std::uint32_t store_merge(std::uint32_t addr, std::uint32_t old,
                                 std::uint32_t value, rtlgen::MemSize size) {
  switch (size) {
    case rtlgen::MemSize::kByte: {
      const std::uint32_t off = (addr & 3u) * 8;
      return (old & ~(0xffu << off)) | ((value & 0xffu) << off);
    }
    case rtlgen::MemSize::kHalf: {
      const std::uint32_t off = (addr & 2u) * 8;
      return (old & ~(0xffffu << off)) | ((value & 0xffffu) << off);
    }
    case rtlgen::MemSize::kWord: return value;
  }
  return value;
}

inline std::uint32_t magnitude(std::uint32_t v) {
  return static_cast<std::int32_t>(v) < 0 ? 0u - v : v;
}

inline std::uint64_t mult64(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b);
}

}  // namespace exec_detail

// The shared loop. `stats` is caller-owned so partial progress survives a
// thrown trap (run_guarded reports it in GuardedResult::stats). When
// `Guarded` is false every budget/guard check beyond the instruction cap
// compiles out and the loop is the original run_sink hot path.
template <class Sink, bool Guarded>
StopReason Cpu::run_sink_impl(std::uint32_t entry, Sink& sink,
                              ExecStats& stats, const RunBudget& budget,
                              [[maybe_unused]] const StoreGuard* guard) {
  using exec_detail::alu32;
  using exec_detail::load_extract;
  using exec_detail::magnitude;
  using exec_detail::shift32;
  using exec_detail::store_merge;
  using isa::UopKind;
  using rtlgen::AluOp;
  using rtlgen::MemSize;
  using rtlgen::ShiftOp;

  std::uint32_t pc = entry;
  std::uint32_t next_pc = entry + 4;

  auto alu_s = [&](AluOp op, std::uint32_t a,
                   std::uint32_t b) -> std::uint32_t {
    std::uint32_t r = alu32(op, a, b);
    if constexpr (Sink::kTraces) sink.t->on_alu(op, a, b);
    if constexpr (Sink::kOverrides) {
      if (const auto forced = sink.t->alu_result(op, a, b)) r = *forced;
    }
    return r;
  };
  auto shift_s = [&](ShiftOp op, std::uint32_t value,
                     std::uint32_t shamt) -> std::uint32_t {
    shamt &= 31u;
    std::uint32_t r = shift32(op, value, shamt);
    if constexpr (Sink::kTraces) sink.t->on_shift(op, value, shamt);
    if constexpr (Sink::kOverrides) {
      if (const auto forced = sink.t->shift_result(op, value, shamt)) {
        r = *forced;
      }
    }
    return r;
  };
  auto mem_load_s = [&](std::uint32_t addr, MemSize size,
                        bool sign) -> std::uint32_t {
    const unsigned bytes = size == MemSize::kByte ? 1
                           : size == MemSize::kHalf ? 2
                                                    : 4;
    if (addr % bytes != 0) {
      throw CpuError("misaligned load at " + to_hex32(addr));
    }
    ++stats.loads;
    ++stats.dcache_accesses;
    stats.cpu_cycles += config_.mem_access_cycles;
    cycle_now_ += config_.mem_access_cycles;
    if (!dcache_.access(addr)) {
      ++stats.dcache_misses;
      stats.memory_stall_cycles += dcache_.config().miss_penalty;
    }
    const std::uint32_t word = read_word(addr & ~3u);
    if constexpr (Sink::kTraces) {
      sink.t->on_mem(addr, 0, size, sign, false, word);
    }
    return load_extract(addr, word, size, sign);
  };
  auto mem_store_s = [&](std::uint32_t addr, std::uint32_t value,
                         MemSize size) {
    const unsigned bytes = size == MemSize::kByte ? 1
                           : size == MemSize::kHalf ? 2
                                                    : 4;
    if constexpr (Guarded) {
      // Software MPU: the store address is checked before the access, like
      // a protection unit would, so a wild store never mutates memory.
      if (guard && !guard->allows(addr)) throw WildStoreError(addr);
    }
    if (addr % bytes != 0) {
      throw CpuError("misaligned store at " + to_hex32(addr));
    }
    ++stats.stores;
    ++stats.dcache_accesses;
    stats.cpu_cycles += config_.mem_access_cycles;
    cycle_now_ += config_.mem_access_cycles;
    if (!dcache_.access(addr)) {
      ++stats.dcache_misses;
      stats.memory_stall_cycles += dcache_.config().miss_penalty;
    }
    const std::uint32_t old = read_word(addr & ~3u);
    if constexpr (Sink::kTraces) {
      sink.t->on_mem(addr, value, size, false, true, old);
    }
    write_word(addr & ~3u, store_merge(addr, old, value, size));
  };
  auto wait_muldiv_s = [&] {
    if (cycle_now_ < muldiv_ready_) {
      const std::uint64_t wait = muldiv_ready_ - cycle_now_;
      stats.cpu_cycles += wait;
      cycle_now_ += wait;
    }
  };

  while (stats.instructions < budget.max_instructions) {
    if constexpr (Guarded) {
      if (budget.max_cycles != 0 && stats.total_cycles() >= budget.max_cycles) {
        return StopReason::kCycleBudget;
      }
      if (budget.max_stores != 0 && stats.stores >= budget.max_stores) {
        return StopReason::kStoreBudget;
      }
    }
    ++stats.icache_accesses;
    if (!icache_.access(pc)) {
      ++stats.icache_misses;
      stats.memory_stall_cycles += icache_.config().miss_penalty;
    }
    // Read decoded_ every iteration: a store into the code region swaps the
    // active view to an owned clone mid-run.
    isa::MicroOp tmp;
    const isa::MicroOp* op = decoded_ ? decoded_->lookup(pc) : nullptr;
    if (!op) {
      tmp = isa::decode_uop(read_word(pc));  // throws on bad pc, like fetch
      op = &tmp;
    }
    ++stats.instructions;
    ++stats.cpu_cycles;
    ++cycle_now_;

    {
      const std::uint8_t flags = op->flags;
      const auto uses = [&](std::uint8_t reg) {
        return reg != 0 &&
               (((flags & isa::kUopReadsRs) && op->rs == reg) ||
                ((flags & isa::kUopReadsRt) && op->rt == reg));
      };
      unsigned stall = 0;
      if (config_.forwarding) {
        // Only a load feeding the very next instruction bubbles.
        if (prev_was_load_ && uses(prev_dest_)) stall = 1;
      } else {
        if (prev_dest_ != 0 && uses(prev_dest_)) {
          stall = 2;
        } else if (prev2_dest_ != 0 && uses(prev2_dest_)) {
          stall = 1;
        }
      }
      stats.pipeline_stall_cycles += stall;
      cycle_now_ += stall;
    }
    if constexpr (Sink::kTraces) {
      sink.t->on_instruction_start(pc);
      sink.t->on_control(op->opcode, op->funct);
    }

    std::uint32_t new_next = next_pc + 4;
    const std::uint32_t rs_v = regs_[op->rs];
    const std::uint32_t rt_v = regs_[op->rt];

    std::uint8_t dest = 0;
    std::uint32_t dest_value = 0;
    bool write = false;
    bool is_load = false;
    bool halted = false;

    auto set_dest = [&](std::uint8_t reg, std::uint32_t value) {
      dest = reg;
      dest_value = value;
      write = reg != 0;
    };

    switch (op->kind) {
      case UopKind::kSll:
        set_dest(op->rd, shift_s(ShiftOp::kSll, rt_v, op->shamt));
        break;
      case UopKind::kSrl:
        set_dest(op->rd, shift_s(ShiftOp::kSrl, rt_v, op->shamt));
        break;
      case UopKind::kSra:
        set_dest(op->rd, shift_s(ShiftOp::kSra, rt_v, op->shamt));
        break;
      case UopKind::kSllv:
        set_dest(op->rd, shift_s(ShiftOp::kSll, rt_v, rs_v));
        break;
      case UopKind::kSrlv:
        set_dest(op->rd, shift_s(ShiftOp::kSrl, rt_v, rs_v));
        break;
      case UopKind::kSrav:
        set_dest(op->rd, shift_s(ShiftOp::kSra, rt_v, rs_v));
        break;
      case UopKind::kJr:
        new_next = rs_v;
        break;
      case UopKind::kBreak:
        halted = true;
        break;
      case UopKind::kMfhi:
        wait_muldiv_s();
        set_dest(op->rd, hi_);
        break;
      case UopKind::kMthi:
        wait_muldiv_s();
        hi_ = rs_v;
        break;
      case UopKind::kMflo:
        wait_muldiv_s();
        set_dest(op->rd, lo_);
        break;
      case UopKind::kMtlo:
        wait_muldiv_s();
        lo_ = rs_v;
        break;
      case UopKind::kMult:
      case UopKind::kMultu: {
        wait_muldiv_s();
        const bool is_signed = op->kind == UopKind::kMult;
        const std::uint32_t au = is_signed ? magnitude(rs_v) : rs_v;
        const std::uint32_t bu = is_signed ? magnitude(rt_v) : rt_v;
        std::uint64_t product = exec_detail::mult64(au, bu);
        if constexpr (Sink::kTraces) sink.t->on_mult(au, bu);
        if constexpr (Sink::kOverrides) {
          if (const auto forced = sink.t->mult_result(au, bu)) {
            product = *forced;
          }
        }
        if (is_signed && (static_cast<std::int32_t>(rs_v) < 0) !=
                             (static_cast<std::int32_t>(rt_v) < 0)) {
          product = 0u - product;
        }
        lo_ = static_cast<std::uint32_t>(product);
        hi_ = static_cast<std::uint32_t>(product >> 32);
        muldiv_ready_ = cycle_now_ + config_.mult_cycles;
        break;
      }
      case UopKind::kDiv:
      case UopKind::kDivu: {
        wait_muldiv_s();
        const bool is_signed = op->kind == UopKind::kDiv;
        const std::uint32_t au = is_signed ? magnitude(rs_v) : rs_v;
        const std::uint32_t bu = is_signed ? magnitude(rt_v) : rt_v;
        if constexpr (Sink::kTraces) sink.t->on_div(au, bu);
        const rtlgen::DivRef d = rtlgen::divider_ref(au, bu);
        std::uint32_t q = d.quotient;
        std::uint32_t r = d.remainder;
        if (is_signed && bu != 0) {
          if ((static_cast<std::int32_t>(rs_v) < 0) !=
              (static_cast<std::int32_t>(rt_v) < 0)) {
            q = 0u - q;
          }
          if (static_cast<std::int32_t>(rs_v) < 0) r = 0u - r;
        }
        lo_ = q;
        hi_ = r;
        muldiv_ready_ = cycle_now_ + config_.div_cycles;
        break;
      }
      case UopKind::kAddR:
        set_dest(op->rd, alu_s(AluOp::kAdd, rs_v, rt_v));
        break;
      case UopKind::kSubR:
        set_dest(op->rd, alu_s(AluOp::kSub, rs_v, rt_v));
        break;
      case UopKind::kAndR:
        set_dest(op->rd, alu_s(AluOp::kAnd, rs_v, rt_v));
        break;
      case UopKind::kOrR:
        set_dest(op->rd, alu_s(AluOp::kOr, rs_v, rt_v));
        break;
      case UopKind::kXorR:
        set_dest(op->rd, alu_s(AluOp::kXor, rs_v, rt_v));
        break;
      case UopKind::kNorR:
        set_dest(op->rd, alu_s(AluOp::kNor, rs_v, rt_v));
        break;
      case UopKind::kSltR:
        set_dest(op->rd, alu_s(AluOp::kSlt, rs_v, rt_v));
        break;
      case UopKind::kSltuR:
        set_dest(op->rd, alu_s(AluOp::kSltu, rs_v, rt_v));
        break;
      case UopKind::kJ:
        new_next = (pc & 0xf0000000u) | op->imm;
        break;
      case UopKind::kJal:
        set_dest(isa::kRa, pc + 8);
        new_next = (pc & 0xf0000000u) | op->imm;
        break;
      case UopKind::kBeq:
        if constexpr (Sink::kTraces) {
          sink.t->on_branch_target(pc + 4, op->imm);
        }
        if (alu_s(AluOp::kSub, rs_v, rt_v) == 0) {
          new_next = pc + 4 + op->imm;
        }
        break;
      case UopKind::kBne:
        if constexpr (Sink::kTraces) {
          sink.t->on_branch_target(pc + 4, op->imm);
        }
        if (alu_s(AluOp::kSub, rs_v, rt_v) != 0) {
          new_next = pc + 4 + op->imm;
        }
        break;
      case UopKind::kAddImm:
        set_dest(op->rt, alu_s(AluOp::kAdd, rs_v, op->imm));
        break;
      case UopKind::kSltImm:
        set_dest(op->rt, alu_s(AluOp::kSlt, rs_v, op->imm));
        break;
      case UopKind::kSltuImm:
        set_dest(op->rt, alu_s(AluOp::kSltu, rs_v, op->imm));
        break;
      case UopKind::kAndImm:
        set_dest(op->rt, alu_s(AluOp::kAnd, rs_v, op->imm));
        break;
      case UopKind::kOrImm:
        set_dest(op->rt, alu_s(AluOp::kOr, rs_v, op->imm));
        break;
      case UopKind::kXorImm:
        set_dest(op->rt, alu_s(AluOp::kXor, rs_v, op->imm));
        break;
      case UopKind::kLui:
        set_dest(op->rt, op->imm);
        break;
      case UopKind::kLb:
        is_load = true;
        set_dest(op->rt, mem_load_s(alu_s(AluOp::kAdd, rs_v, op->imm),
                                    MemSize::kByte, true));
        break;
      case UopKind::kLh:
        is_load = true;
        set_dest(op->rt, mem_load_s(alu_s(AluOp::kAdd, rs_v, op->imm),
                                    MemSize::kHalf, true));
        break;
      case UopKind::kLw:
        is_load = true;
        set_dest(op->rt, mem_load_s(alu_s(AluOp::kAdd, rs_v, op->imm),
                                    MemSize::kWord, false));
        break;
      case UopKind::kLbu:
        is_load = true;
        set_dest(op->rt, mem_load_s(alu_s(AluOp::kAdd, rs_v, op->imm),
                                    MemSize::kByte, false));
        break;
      case UopKind::kLhu:
        is_load = true;
        set_dest(op->rt, mem_load_s(alu_s(AluOp::kAdd, rs_v, op->imm),
                                    MemSize::kHalf, false));
        break;
      case UopKind::kSb:
        mem_store_s(alu_s(AluOp::kAdd, rs_v, op->imm), rt_v, MemSize::kByte);
        break;
      case UopKind::kSh:
        mem_store_s(alu_s(AluOp::kAdd, rs_v, op->imm), rt_v, MemSize::kHalf);
        break;
      case UopKind::kSw:
        mem_store_s(alu_s(AluOp::kAdd, rs_v, op->imm), rt_v, MemSize::kWord);
        break;
      case UopKind::kIllegalFunct:
        throw CpuError("illegal funct " + to_hex32(op->funct) + " at pc " +
                       to_hex32(pc));
      case UopKind::kIllegalOpcode:
        throw CpuError("illegal opcode " + to_hex32(op->opcode) + " at pc " +
                       to_hex32(pc));
    }

    // Register-file and hidden-component traces.
    if constexpr (Sink::kTraces) {
      const std::uint8_t rrs = op->reads_rs() ? op->rs : 0;
      const std::uint8_t rrt = op->reads_rt() ? op->rt : 0;
      sink.t->on_regfile(write ? dest : 0, dest_value, write, rrs, rrt);
      sink.t->on_forward(rrs, rrt, prev_dest_, prev_dest_ != 0, prev2_dest_,
                         prev2_dest_ != 0);
    }
    if (write) regs_[dest] = dest_value;

    prev2_dest_ = prev_dest_;
    prev_dest_ = write ? dest : 0;
    prev_was_load_ = is_load;

    if (halted) {
      stats.halted = true;
      break;
    }
    if (new_next != next_pc + 4) {
      if constexpr (Sink::kTraces) sink.t->on_branch_flush();
      stats.pipeline_stall_cycles += config_.branch_taken_penalty;
      cycle_now_ += config_.branch_taken_penalty;
    }
    pc = next_pc;
    next_pc = new_next;
  }
  return stats.halted ? StopReason::kHalted : StopReason::kInstructionBudget;
}

template <class Sink>
ExecStats Cpu::run_sink(std::uint32_t entry, Sink& sink,
                        std::uint64_t max_instructions) {
  ExecStats stats;
  RunBudget budget;
  budget.max_instructions = max_instructions;
  run_sink_impl<Sink, false>(entry, sink, stats, budget, nullptr);
  return stats;
}

template <class Sink>
GuardedResult Cpu::run_guarded(std::uint32_t entry, Sink& sink,
                               const RunBudget& budget,
                               const StoreGuard* guard) {
  GuardedResult out;
  try {
    out.reason = run_sink_impl<Sink, true>(entry, sink, out.stats, budget, guard);
  } catch (const WildStoreError& e) {
    out.reason = StopReason::kWildStore;
    out.wild_store_addr = e.addr();
  } catch (const CpuError& e) {
    out.reason = StopReason::kTrap;
    out.trap_message = e.what();
  }
  return out;
}

}  // namespace sbst::sim
