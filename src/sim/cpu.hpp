// Plasma-class CPU simulator: MIPS-I subset, functional execution with
// cycle-approximate accounting of the paper's CPU-time equation
//
//   t = T_clk * (CPU_clock_cycles + pipeline_stall_cycles
//                + memory_stall_cycles)
//
// Timing model (3-stage pipeline with forwarding and branch delay slots,
// like the Plasma core of paper §4):
//  * 1 base cycle per instruction; loads/stores add mem_access_cycles.
//  * Branch delay slots are architectural — taken branches cost nothing.
//  * Load-use hazard: 1 pipeline-stall cycle (forwarding cannot cover a
//    load feeding the very next instruction).
//  * Without forwarding: RAW distance 1 costs 2 stalls, distance 2 costs 1
//    (the "nop insertion" regime the paper mentions).
//  * mult takes mult_cycles, div takes div_cycles (serial divider, one bit
//    per cycle); reading HI/LO — or starting a new operation — before
//    completion interlocks, counted as CPU clock cycles like the paper's
//    mul/div routine (6,152 cycles for 68 words).
//  * I-/D-cache misses add miss_penalty memory-stall cycles each.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/assembler.hpp"
#include "isa/decode.hpp"
#include "isa/encoding.hpp"
#include "sim/cache.hpp"
#include "sim/trace.hpp"

namespace sbst::sim {

struct CpuConfig {
  bool forwarding = true;
  unsigned mem_access_cycles = 1;  // extra cycles per data memory access
  unsigned mult_cycles = 4;        // fast parallel multiplier latency
  unsigned div_cycles = 32;        // serial divider: 1 bit/cycle
  /// Extra pipeline-stall cycles per taken branch/jump. 0 models the
  /// Plasma's architectural delay slot (the slot instruction always does
  /// useful work); >0 models a deeper pipeline with predict-not-taken,
  /// where "pipeline stalls are unavoidable when branch prediction is
  /// used" (paper §2).
  unsigned branch_taken_penalty = 0;
  std::uint32_t mem_bytes = 1u << 20;
  CacheConfig icache{};
  CacheConfig dcache{};
};

struct ExecStats {
  std::uint64_t instructions = 0;
  std::uint64_t cpu_cycles = 0;
  std::uint64_t pipeline_stall_cycles = 0;
  std::uint64_t memory_stall_cycles = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t icache_misses = 0;
  std::uint64_t dcache_misses = 0;
  std::uint64_t icache_accesses = 0;
  std::uint64_t dcache_accesses = 0;
  bool halted = false;  // reached a break instruction

  std::uint64_t data_references() const { return loads + stores; }
  std::uint64_t total_cycles() const {
    return cpu_cycles + pipeline_stall_cycles + memory_stall_cycles;
  }
  /// Execution time at `clock_hz` (57 MHz for the paper's Plasma).
  double seconds(double clock_hz) const {
    return static_cast<double>(total_cycles()) / clock_hz;
  }
  /// The paper's analytic variant: replaces measured cache misses with an
  /// assumed miss rate and penalty over all memory accesses.
  std::uint64_t analytic_total_cycles(double miss_rate,
                                      unsigned miss_penalty) const;
};

class CpuError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A guarded store outside every StoreGuard region (the software-MPU
/// violation). Thrown from inside guarded execution; run_guarded() converts
/// it into StopReason::kWildStore.
class WildStoreError : public CpuError {
 public:
  explicit WildStoreError(std::uint32_t addr);
  std::uint32_t addr() const { return addr_; }

 private:
  std::uint32_t addr_;
};

/// Per-run watchdog budgets for guarded (faulty) execution, modelling the
/// OS-level monitor an in-field periodic test runs under: the test must
/// finish within its quantum budget, so a run exceeding k× the good
/// machine's resources is declared hung instead of simulated to a global
/// cap. 0 means "unlimited" for cycles/stores; max_instructions always
/// bounds the run.
struct RunBudget {
  std::uint64_t max_instructions = 1u << 24;
  std::uint64_t max_cycles = 0;
  std::uint64_t max_stores = 0;
};

/// Software MPU model: the address ranges a program may legitimately store
/// to (its declared code/data regions). A guarded run treats a store
/// outside every region as a wild store — the symptom an in-field memory
/// protection unit would trap on.
struct StoreGuard {
  struct Region {
    std::uint32_t lo = 0;  // inclusive
    std::uint32_t hi = 0;  // exclusive
  };
  std::vector<Region> regions;

  bool allows(std::uint32_t addr) const {
    for (const Region& r : regions) {
      if (addr >= r.lo && addr < r.hi) return true;
    }
    return false;
  }
};

/// Why a guarded run stopped. Everything except kHalted is a symptom an
/// on-line monitor observes without ever reading a signature word.
enum class StopReason : std::uint8_t {
  kHalted,             // reached a break instruction (clean completion)
  kInstructionBudget,  // watchdog: instruction budget exhausted
  kCycleBudget,        // watchdog: cycle budget exhausted
  kStoreBudget,        // watchdog: store budget exhausted
  kWildStore,          // software-MPU violation (store outside regions)
  kTrap,               // illegal instruction / misaligned or bus error
};

const char* stop_reason_name(StopReason reason);

/// Result of a guarded run. `stats` is complete up to the stopping point
/// even for traps and wild stores (partial-progress accounting for
/// detection-latency models).
struct GuardedResult {
  ExecStats stats;
  StopReason reason = StopReason::kHalted;
  std::uint32_t wild_store_addr = 0;  // valid when reason == kWildStore
  std::string trap_message;           // valid when reason == kTrap
};

class Cpu {
 public:
  explicit Cpu(const CpuConfig& config = {});

  /// Copies a program image into memory. Does not set the PC. When a
  /// predecoded image is supplied (e.g. from a GradingSession cache) it is
  /// shared read-only; otherwise the program is predecoded locally. Stores
  /// into the code region clone-then-patch, so a shared DecodedProgram is
  /// never mutated (self-modifying code stays correct).
  void load(const isa::Program& program,
            std::shared_ptr<const isa::DecodedProgram> decoded = nullptr);

  /// Runs from `entry` until a break instruction or `max_instructions`,
  /// dispatching over the predecoded micro-op array. Bitwise-identical
  /// stats, architectural state, and hook streams to run_interpreter().
  ExecStats run(std::uint32_t entry, std::uint64_t max_instructions = 1u << 24);

  /// The original fetch-decode-execute interpreter (decodes every retired
  /// instruction, virtual hook dispatch). Kept as the golden reference the
  /// decoded core is differentially tested against.
  ExecStats run_interpreter(std::uint32_t entry,
                            std::uint64_t max_instructions = 1u << 24);

  /// Statically-dispatched executor core: `Sink` decides at compile time
  /// whether trace events and result overrides are delivered (see
  /// sim/exec.hpp for the sink policies and the definition).
  template <class Sink>
  ExecStats run_sink(std::uint32_t entry, Sink& sink,
                     std::uint64_t max_instructions = 1u << 24);

  /// Guarded variant of run_sink for faulty-machine execution: enforces the
  /// full RunBudget (instructions / cycles / stores), optionally checks
  /// every store against a StoreGuard, and converts CPU traps into a
  /// classified GuardedResult instead of propagating exceptions. The
  /// unguarded run_sink hot path is unchanged — the extra checks compile
  /// away in that instantiation.
  template <class Sink>
  GuardedResult run_guarded(std::uint32_t entry, Sink& sink,
                            const RunBudget& budget,
                            const StoreGuard* guard = nullptr);

  // Architectural state access (test/bench observation).
  std::uint32_t reg(unsigned index) const { return regs_[index]; }
  void set_reg(unsigned index, std::uint32_t value) {
    if (index != 0) regs_[index] = value;
  }
  std::uint32_t hi() const { return hi_; }
  std::uint32_t lo() const { return lo_; }
  void set_hi(std::uint32_t value) { hi_ = value; }
  void set_lo(std::uint32_t value) { lo_ = value; }
  std::uint32_t read_word(std::uint32_t addr) const;
  void write_word(std::uint32_t addr, std::uint32_t value);

  void set_hooks(CpuHooks* hooks) { hooks_ = hooks; }

  Cache& icache() { return icache_; }
  Cache& dcache() { return dcache_; }
  const CpuConfig& config() const { return config_; }

  /// Clears registers, HI/LO and cache contents (not memory).
  void reset();

 private:
  template <class Sink, bool Guarded>
  StopReason run_sink_impl(std::uint32_t entry, Sink& sink, ExecStats& stats,
                           const RunBudget& budget, const StoreGuard* guard);

  std::uint32_t fetch(std::uint32_t pc, ExecStats& stats);
  std::uint32_t mem_load(std::uint32_t addr, rtlgen::MemSize size, bool sign,
                         ExecStats& stats);
  void mem_store(std::uint32_t addr, std::uint32_t value,
                 rtlgen::MemSize size, ExecStats& stats);
  std::uint32_t alu(rtlgen::AluOp op, std::uint32_t a, std::uint32_t b);
  std::uint32_t shift(rtlgen::ShiftOp op, std::uint32_t value,
                      std::uint32_t shamt);
  void charge_hazards(const isa::Fields& f, ExecStats& stats);
  void wait_muldiv(ExecStats& stats);

  CpuConfig config_;
  std::array<std::uint32_t, 32> regs_{};
  std::uint32_t hi_ = 0;
  std::uint32_t lo_ = 0;
  std::vector<std::uint8_t> memory_;
  Cache icache_;
  Cache dcache_;
  CpuHooks* hooks_ = nullptr;

  // Predecoded view of the loaded program. Either shared read-only (cache
  // handout) or locally owned; a store into the code region switches to an
  // owned clone before patching. `decoded_` is the active view.
  std::shared_ptr<const isa::DecodedProgram> decoded_shared_;
  std::unique_ptr<isa::DecodedProgram> decoded_owned_;
  const isa::DecodedProgram* decoded_ = nullptr;

  // Hazard bookkeeping.
  std::uint8_t prev_dest_ = 0;       // destination of previous instruction
  bool prev_was_load_ = false;
  std::uint8_t prev2_dest_ = 0;
  std::uint64_t muldiv_ready_ = 0;   // cycle when HI/LO become available
  std::uint64_t cycle_now_ = 0;      // running cpu_cycles view for interlocks
};

}  // namespace sbst::sim
