#include "sim/pipeline.hpp"

#include <cstring>

#include "common/bits.hpp"
#include "rtlgen/divider.hpp"
#include "rtlgen/memctrl.hpp"
#include "rtlgen/multiplier.hpp"
#include "rtlgen/shifter.hpp"

namespace sbst::sim {

using isa::Fields;
using rtlgen::AluOp;
using rtlgen::MemSize;
using rtlgen::ShiftOp;

namespace {

bool uses_rs(const Fields& f) {
  if (f.opcode == 0x00) {
    switch (f.funct) {
      case 0x00: case 0x02: case 0x03: case 0x10: case 0x12: case 0x0d:
        return false;
      default:
        return true;
    }
  }
  switch (f.opcode) {
    case 0x02: case 0x03: case 0x0f:
      return false;
    default:
      return true;
  }
}

bool uses_rt(const Fields& f) {
  if (f.opcode == 0x00) {
    switch (f.funct) {
      case 0x08: case 0x0d: case 0x10: case 0x11: case 0x12: case 0x13:
        return false;
      default:
        return true;
    }
  }
  switch (f.opcode) {
    case 0x04: case 0x05: case 0x28: case 0x29: case 0x2b:
      return true;
    default:
      return false;
  }
}

std::uint32_t magnitude(std::uint32_t v) {
  return static_cast<std::int32_t>(v) < 0 ? 0u - v : v;
}

}  // namespace

PipelinedCpu::PipelinedCpu(const CpuConfig& config)
    : config_(config),
      memory_(config.mem_bytes, 0),
      icache_(config.icache),
      dcache_(config.dcache) {}

void PipelinedCpu::reset() {
  regs_.fill(0);
  hi_ = lo_ = 0;
  icache_.flush();
  dcache_.flush();
  f_ = {};
  x_ = {};
  wb_dest_ = 0;
  wb_value_ = 0;
  wb_from_load_ = false;
  muldiv_busy_ = 0;
  pc_ = 0;
  halted_ = false;
}

void PipelinedCpu::load(const isa::Program& program) {
  if (program.end_address() > memory_.size()) {
    throw CpuError("pipeline: program does not fit in memory");
  }
  for (std::size_t i = 0; i < program.words.size(); ++i) {
    write_word(program.base + static_cast<std::uint32_t>(i * 4),
               program.words[i]);
  }
}

std::uint32_t PipelinedCpu::read_word(std::uint32_t addr) const {
  if (addr + 4 > memory_.size() || (addr & 3u)) {
    throw CpuError("pipeline: bad word read at " + to_hex32(addr));
  }
  std::uint32_t v;
  std::memcpy(&v, memory_.data() + addr, 4);
  return v;
}

void PipelinedCpu::write_word(std::uint32_t addr, std::uint32_t value) {
  if (addr + 4 > memory_.size() || (addr & 3u)) {
    throw CpuError("pipeline: bad word write at " + to_hex32(addr));
  }
  std::memcpy(memory_.data() + addr, &value, 4);
}

void PipelinedCpu::stage_mem(ExecStats& stats) {
  if (!x_.valid) return;
  if (x_.is_load || x_.is_store) {
    const unsigned bytes = x_.size == MemSize::kByte    ? 1
                           : x_.size == MemSize::kHalf ? 2
                                                       : 4;
    if (x_.result % bytes != 0) {
      throw CpuError("pipeline: misaligned access at " + to_hex32(x_.result));
    }
    stats.cpu_cycles += config_.mem_access_cycles;
    ++stats.dcache_accesses;
    if (!dcache_.access(x_.result)) {
      ++stats.dcache_misses;
      stats.memory_stall_cycles += dcache_.config().miss_penalty;
    }
  }
  if (x_.is_load) {
    ++stats.loads;
    const std::uint32_t word = read_word(x_.result & ~3u);
    const std::uint32_t value =
        rtlgen::memctrl_load_ref(x_.result, word, x_.size, x_.load_signed);
    if (x_.dest != 0) regs_[x_.dest] = value;
  } else if (x_.is_store) {
    ++stats.stores;
    const std::uint32_t old = read_word(x_.result & ~3u);
    const auto ref =
        rtlgen::memctrl_store_ref(x_.result, x_.store_value, x_.size, true);
    std::uint32_t merged = old;
    for (unsigned lane = 0; lane < 4; ++lane) {
      if ((ref.byte_en >> lane) & 1u) {
        merged = (merged & ~(0xffu << (lane * 8))) |
                 (ref.mem_wdata & (0xffu << (lane * 8)));
      }
    }
    write_word(x_.result & ~3u, merged);
  } else if (x_.dest != 0) {
    regs_[x_.dest] = x_.result;
  }
  x_.valid = false;
}

PipelinedCpu::XResult PipelinedCpu::stage_execute(ExecStats& stats) {
  XResult out;
  if (!f_.valid) return out;

  const Fields f = isa::decode(f_.instr);
  const std::uint32_t pc = f_.pc;
  const std::uint32_t rs_v = regs_[f.rs];
  const std::uint32_t rt_v = regs_[f.rt];
  const std::uint32_t simm = sign_extend32(f.imm, 16);

  ExecLatch next;
  next.valid = true;
  next.pc = pc;
  next.fields = f;

  auto set_dest = [&](std::uint8_t reg, std::uint32_t value) {
    next.dest = reg;
    next.result = value;
  };
  auto memop = [&](bool is_load, MemSize size, bool sign) {
    next.result = rs_v + simm;  // effective address
    next.is_load = is_load;
    next.is_store = !is_load;
    next.size = size;
    next.load_signed = sign;
    if (is_load) {
      next.dest = f.rt;
    } else {
      next.store_value = rt_v;
    }
  };
  auto need_md_unit = [&]() {
    if (muldiv_busy_ > 0) {
      out.stall = true;
      return true;
    }
    return false;
  };

  if (f.opcode == 0x00) {
    switch (f.funct) {
      case 0x00: set_dest(f.rd, rtlgen::shifter_ref(ShiftOp::kSll, rt_v, f.shamt)); break;
      case 0x02: set_dest(f.rd, rtlgen::shifter_ref(ShiftOp::kSrl, rt_v, f.shamt)); break;
      case 0x03: set_dest(f.rd, rtlgen::shifter_ref(ShiftOp::kSra, rt_v, f.shamt)); break;
      case 0x04: set_dest(f.rd, rtlgen::shifter_ref(ShiftOp::kSll, rt_v, rs_v & 31)); break;
      case 0x06: set_dest(f.rd, rtlgen::shifter_ref(ShiftOp::kSrl, rt_v, rs_v & 31)); break;
      case 0x07: set_dest(f.rd, rtlgen::shifter_ref(ShiftOp::kSra, rt_v, rs_v & 31)); break;
      case 0x08:  // jr
        out.redirect = true;
        out.target = rs_v;
        break;
      case 0x0d:  // break
        next.is_break = true;
        break;
      case 0x10: if (need_md_unit()) return out; set_dest(f.rd, hi_); break;
      case 0x11: if (need_md_unit()) return out; hi_ = rs_v; break;
      case 0x12: if (need_md_unit()) return out; set_dest(f.rd, lo_); break;
      case 0x13: if (need_md_unit()) return out; lo_ = rs_v; break;
      case 0x18:
      case 0x19: {
        if (need_md_unit()) return out;
        const bool is_signed = f.funct == 0x18;
        const std::uint32_t au = is_signed ? magnitude(rs_v) : rs_v;
        const std::uint32_t bu = is_signed ? magnitude(rt_v) : rt_v;
        std::uint64_t product = rtlgen::multiplier_ref(au, bu);
        if (is_signed && (static_cast<std::int32_t>(rs_v) < 0) !=
                             (static_cast<std::int32_t>(rt_v) < 0)) {
          product = 0u - product;
        }
        lo_ = static_cast<std::uint32_t>(product);
        hi_ = static_cast<std::uint32_t>(product >> 32);
        muldiv_busy_ = config_.mult_cycles;
        break;
      }
      case 0x1a:
      case 0x1b: {
        if (need_md_unit()) return out;
        const bool is_signed = f.funct == 0x1a;
        const std::uint32_t au = is_signed ? magnitude(rs_v) : rs_v;
        const std::uint32_t bu = is_signed ? magnitude(rt_v) : rt_v;
        const rtlgen::DivRef d = rtlgen::divider_ref(au, bu);
        std::uint32_t q = d.quotient, r = d.remainder;
        if (is_signed && bu != 0) {
          if ((static_cast<std::int32_t>(rs_v) < 0) !=
              (static_cast<std::int32_t>(rt_v) < 0)) {
            q = 0u - q;
          }
          if (static_cast<std::int32_t>(rs_v) < 0) r = 0u - r;
        }
        lo_ = q;
        hi_ = r;
        muldiv_busy_ = config_.div_cycles;
        break;
      }
      case 0x20: case 0x21: set_dest(f.rd, rs_v + rt_v); break;
      case 0x22: case 0x23: set_dest(f.rd, rs_v - rt_v); break;
      case 0x24: set_dest(f.rd, rs_v & rt_v); break;
      case 0x25: set_dest(f.rd, rs_v | rt_v); break;
      case 0x26: set_dest(f.rd, rs_v ^ rt_v); break;
      case 0x27: set_dest(f.rd, ~(rs_v | rt_v)); break;
      case 0x2a:
        set_dest(f.rd, static_cast<std::int32_t>(rs_v) <
                               static_cast<std::int32_t>(rt_v)
                           ? 1
                           : 0);
        break;
      case 0x2b: set_dest(f.rd, rs_v < rt_v ? 1 : 0); break;
      default:
        throw CpuError("pipeline: illegal funct at " + to_hex32(pc));
    }
  } else {
    switch (f.opcode) {
      case 0x02:
        out.redirect = true;
        out.target = (pc & 0xf0000000u) | (f.target << 2);
        break;
      case 0x03:
        set_dest(isa::kRa, pc + 8);
        out.redirect = true;
        out.target = (pc & 0xf0000000u) | (f.target << 2);
        break;
      case 0x04:
        if (rs_v == rt_v) {
          out.redirect = true;
          out.target = pc + 4 + (simm << 2);
        }
        break;
      case 0x05:
        if (rs_v != rt_v) {
          out.redirect = true;
          out.target = pc + 4 + (simm << 2);
        }
        break;
      case 0x08: case 0x09: set_dest(f.rt, rs_v + simm); break;
      case 0x0a:
        set_dest(f.rt, static_cast<std::int32_t>(rs_v) <
                               static_cast<std::int32_t>(simm)
                           ? 1
                           : 0);
        break;
      case 0x0b: set_dest(f.rt, rs_v < simm ? 1 : 0); break;
      case 0x0c: set_dest(f.rt, rs_v & f.imm); break;
      case 0x0d: set_dest(f.rt, rs_v | f.imm); break;
      case 0x0e: set_dest(f.rt, rs_v ^ f.imm); break;
      case 0x0f: set_dest(f.rt, static_cast<std::uint32_t>(f.imm) << 16); break;
      case 0x20: memop(true, MemSize::kByte, true); break;
      case 0x21: memop(true, MemSize::kHalf, true); break;
      case 0x23: memop(true, MemSize::kWord, false); break;
      case 0x24: memop(true, MemSize::kByte, false); break;
      case 0x25: memop(true, MemSize::kHalf, false); break;
      case 0x28: memop(false, MemSize::kByte, false); break;
      case 0x29: memop(false, MemSize::kHalf, false); break;
      case 0x2b: memop(false, MemSize::kWord, false); break;
      default:
        throw CpuError("pipeline: illegal opcode at " + to_hex32(pc));
    }
  }

  ++stats.instructions;
  f_.valid = false;
  x_ = next;
  return out;
}

ExecStats PipelinedCpu::run(std::uint32_t entry, std::uint64_t max_cycles) {
  ExecStats stats;
  pc_ = entry;
  f_ = {};
  x_ = {};
  halted_ = false;

  for (std::uint64_t cycle = 0; cycle < max_cycles && !halted_; ++cycle) {
    // Load-use interlock: the instruction in X needs a register the load in
    // M only produces at the end of this cycle.
    bool load_use = false;
    if (f_.valid && x_.valid && x_.is_load && x_.dest != 0) {
      const Fields f = isa::decode(f_.instr);
      load_use = (uses_rs(f) && f.rs == x_.dest) ||
                 (uses_rt(f) && f.rt == x_.dest);
    }

    // M retires the older instruction either way.
    const bool was_break = x_.valid && x_.is_break;
    stage_mem(stats);
    if (was_break) {
      stats.halted = true;
      halted_ = true;
      ++stats.cpu_cycles;
      break;
    }

    XResult xr;
    if (load_use) {
      stats.pipeline_stall_cycles += 1;
    } else {
      xr = stage_execute(stats);
      if (xr.stall) {
        // Multiply/divide unit interlock: counted as CPU cycles, matching
        // the functional model's accounting.
      }
      ++stats.cpu_cycles;
    }
    if (load_use) {
      // The bubble cycle still advances the md unit below, but fetch holds.
    } else if (!xr.stall) {
      // F fetches the next instruction (the delay slot keeps flowing: the
      // redirect from X only affects *next* cycle's fetch address).
      if (!f_.valid) {
        ++stats.icache_accesses;
        if (!icache_.access(pc_)) {
          ++stats.icache_misses;
          stats.memory_stall_cycles += icache_.config().miss_penalty;
        }
        f_ = {true, pc_, read_word(pc_)};
        pc_ = xr.redirect ? xr.target : pc_ + 4;
      }
    }
    if (muldiv_busy_ > 0) --muldiv_busy_;
  }
  return stats;
}

}  // namespace sbst::sim
