#include "atpg/testgen.hpp"

namespace sbst::atpg {

using fault::CoverageResult;
using fault::Fault;
using fault::PatternSet;
using fault::PortValue;
using netlist::Netlist;
using netlist::NetId;

namespace {

// Converts a raw per-input-net assignment into {port, value} pairs.
std::vector<PortValue> to_port_values(const Netlist& nl,
                                      const std::vector<bool>& bits) {
  std::vector<std::size_t> index(nl.size(), 0);
  const auto& ins = nl.inputs();
  for (std::size_t k = 0; k < ins.size(); ++k) index[ins[k]] = k;

  std::vector<PortValue> out;
  out.reserve(nl.input_ports().size());
  for (const netlist::Port& p : nl.input_ports()) {
    std::uint64_t v = 0;
    for (std::size_t b = 0; b < p.nets.size(); ++b) {
      if (bits[index[p.nets[b]]]) v |= std::uint64_t{1} << b;
    }
    out.emplace_back(p.name, v);
  }
  return out;
}

}  // namespace

TestGenResult generate_atpg_tests(const Netlist& nl,
                                  const std::vector<Fault>& faults,
                                  const InputConstraints& constraints,
                                  const TestGenOptions& options,
                                  const fault::ObserveSet& observe) {
  TestGenResult res{PatternSet(nl), {}, 0, 0, 0};
  res.coverage.total = faults.size();
  res.coverage.detected_flags.assign(faults.size(), 0);

  Rng rng(options.seed);
  Podem podem(nl, constraints, options.podem);

  // One engine context for every fault-dropping pass: compilation and cone
  // marking happen once (or are borrowed from a session), and already-set
  // flags short-circuit re-simulation of retired faults.
  const fault::EngineContext ctx(options.engine, nl, observe,
                                 options.compiled, /*reach=*/nullptr,
                                 /*lanes=*/0, /*netlist_opt=*/-1,
                                 options.store);

  // Pending patterns not yet fault-simulated.
  PatternSet pending(nl);
  auto flush_pending = [&]() {
    if (pending.size() == 0) return;
    fault::simulate_comb_into(ctx, faults, pending,
                              res.coverage.detected_flags.data());
    pending = PatternSet(nl);
  };

  // Cheap pre-drop with constrained random patterns.
  if (options.random_warmup > 0) {
    PatternSet warm(nl);
    for (unsigned i = 0; i < options.random_warmup; ++i) {
      std::vector<bool> bits;
      bits.reserve(nl.inputs().size());
      for (NetId pi : nl.inputs()) {
        bits.push_back(constraints.is_fixed(pi) ? constraints.value_of(pi)
                                                : rng.chance(0.5));
      }
      const auto pv = to_port_values(nl, bits);
      warm.add(pv);
      res.patterns.add(pv);
    }
    fault::simulate_comb_into(ctx, faults, warm,
                              res.coverage.detected_flags.data());
  }

  for (std::size_t f = 0; f < faults.size(); ++f) {
    if (res.coverage.detected_flags[f]) continue;
    if (pending.size() >= options.drop_batch) flush_pending();
    if (res.coverage.detected_flags[f]) continue;

    ++res.atpg_calls;
    const AtpgOutcome outcome = podem.generate(faults[f], rng);
    switch (outcome.status) {
      case AtpgStatus::kDetected: {
        const auto pv = to_port_values(nl, outcome.pattern);
        pending.add(pv);
        res.patterns.add(pv);
        // The target fault is detected by construction; mark it now so an
        // abort later in the batch cannot resurrect it.
        res.coverage.detected_flags[f] = 1;
        break;
      }
      case AtpgStatus::kUntestable:
        ++res.untestable;
        break;
      case AtpgStatus::kAborted:
        ++res.aborted;
        break;
    }
  }
  flush_pending();

  res.coverage.detected = 0;
  for (auto flag : res.coverage.detected_flags) {
    res.coverage.detected += flag;
  }
  return res;
}

PatternSet generate_random_tests(const Netlist& nl, std::size_t count,
                                 std::uint32_t seed, std::uint32_t poly,
                                 const InputConstraints& constraints) {
  PatternSet out(nl);
  // One LFSR stream per input port, seeded distinctly but deterministically
  // (the software routine updates one register per operand).
  std::vector<Lfsr32> streams;
  std::uint32_t s = seed == 0 ? 1u : seed;
  for (std::size_t k = 0; k < nl.input_ports().size(); ++k) {
    streams.emplace_back(s, poly);
    s = s * 0x9e3779b9u + 1u;
    if (s == 0) s = 1;
  }
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<PortValue> pv;
    pv.reserve(nl.input_ports().size());
    for (std::size_t k = 0; k < nl.input_ports().size(); ++k) {
      const netlist::Port& p = nl.input_ports()[k];
      std::uint64_t v = streams[k].step();
      if (p.nets.size() > 32) {
        v |= static_cast<std::uint64_t>(streams[k].step()) << 32;
      }
      // Apply constraints bit-by-bit.
      for (std::size_t b = 0; b < p.nets.size(); ++b) {
        if (constraints.is_fixed(p.nets[b])) {
          v = constraints.value_of(p.nets[b])
                  ? (v | (std::uint64_t{1} << b))
                  : (v & ~(std::uint64_t{1} << b));
        }
      }
      pv.emplace_back(p.name, v);
    }
    out.add(pv);
  }
  return out;
}

}  // namespace sbst::atpg
