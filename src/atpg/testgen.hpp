// Test-set generation drivers on top of PODEM.
//
// generate_atpg_tests implements the paper's deterministic-ATPG TPG
// strategy: walk the collapsed fault list, generate a test per undetected
// fault (under the instruction-imposed constraints), random-fill don't
// cares, and fault-simulate each new pattern against the remaining faults
// so that one pattern usually retires many faults (test compaction by fault
// dropping).
//
// generate_random_tests implements the pseudorandom TPG strategy's pattern
// source for coverage analysis: N patterns from the same 32-bit LFSR the
// software routine of Figure 3 implements.
#pragma once

#include <cstdint>
#include <vector>

#include "atpg/podem.hpp"
#include "common/lfsr.hpp"
#include "fault/pattern.hpp"
#include "fault/sim.hpp"

namespace sbst::atpg {

struct TestGenResult {
  fault::PatternSet patterns;
  fault::CoverageResult coverage;  // over the supplied fault list
  std::size_t atpg_calls = 0;
  std::size_t untestable = 0;
  std::size_t aborted = 0;
};

struct TestGenOptions {
  PodemOptions podem;
  /// Patterns accumulated between fault-dropping simulation passes.
  unsigned drop_batch = 16;
  /// Random patterns simulated before any deterministic generation (cheap
  /// pre-drop of the easy faults). 0 disables.
  unsigned random_warmup = 64;
  std::uint64_t seed = 1;
  /// Evaluation engine for the fault-dropping passes (detection flags — and
  /// therefore the generated test set — are identical for every choice).
  fault::Engine engine = fault::default_engine();
  /// Pre-compiled netlist lent in by a long-lived caller (GradingSession);
  /// must match the netlist under test. nullptr = compile per call.
  const netlist::CompiledNetlist* compiled = nullptr;
  /// Persistent artifact store for the fault-dropping engine's compiled
  /// netlist when none is lent in; generated tests are identical either way.
  store::ArtifactStore* store = nullptr;
};

TestGenResult generate_atpg_tests(const netlist::Netlist& nl,
                                  const std::vector<fault::Fault>& faults,
                                  const InputConstraints& constraints = {},
                                  const TestGenOptions& options = {},
                                  const fault::ObserveSet& observe = {});

/// LFSR-derived pseudorandom patterns. Each primary-input port is fed from
/// an independent software-LFSR stream, mirroring the per-operand LFSR
/// updates of the Figure 3 code style. Constrained inputs keep their fixed
/// values.
fault::PatternSet generate_random_tests(const netlist::Netlist& nl,
                                        std::size_t count,
                                        std::uint32_t seed = 1,
                                        std::uint32_t poly = Lfsr32::kDefaultPoly,
                                        const InputConstraints& constraints = {});

}  // namespace sbst::atpg
