// PODEM combinational ATPG with instruction-imposed input constraints.
//
// The deterministic-ATPG TPG strategy of the paper (§3.3, strategy 1)
// requires "instruction-imposed constraint ATPG": when a self-test routine
// excites a component through instruction `function`, some CUT inputs are
// not freely controllable — e.g. the ALU "op" port is pinned to the opcode's
// operation, a shifter tested through `sll` has its op port pinned to 00.
//
// PODEM searches the primary-input space, which makes constraints trivial to
// honour: constrained inputs are pre-assigned before the search and
// therefore never appear as X, so the backtrace can never select them.
// Faults untestable under the constraints fall out as kUntestable.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "netlist/netlist.hpp"

namespace sbst::atpg {

/// Fixed primary-input values imposed by the exciting instruction.
class InputConstraints {
 public:
  InputConstraints() = default;

  /// Pins every bit of input port `port` to the corresponding bit of value.
  void fix_port(const netlist::Netlist& nl, const std::string& port,
                std::uint64_t value);
  /// Pins a single input net.
  void fix_net(netlist::NetId net, bool value) { fixed_[net] = value; }

  bool is_fixed(netlist::NetId net) const { return fixed_.count(net) != 0; }
  bool value_of(netlist::NetId net) const { return fixed_.at(net); }
  const std::unordered_map<netlist::NetId, bool>& all() const {
    return fixed_;
  }

 private:
  std::unordered_map<netlist::NetId, bool> fixed_;
};

enum class AtpgStatus : std::uint8_t {
  kDetected,    // test generated
  kUntestable,  // proven untestable under the constraints
  kAborted,     // backtrack limit exceeded
};

struct AtpgOutcome {
  AtpgStatus status = AtpgStatus::kAborted;
  /// Input assignment (per input net, in netlist().inputs() order) when
  /// status == kDetected. Unassigned (X) positions were filled randomly.
  std::vector<bool> pattern;
  unsigned backtracks = 0;
};

struct PodemOptions {
  unsigned backtrack_limit = 2000;
};

/// Single-fault PODEM on a combinational netlist.
class Podem {
 public:
  Podem(const netlist::Netlist& nl, InputConstraints constraints = {},
        PodemOptions options = {});

  /// Attempts to generate a test for `fault`. `rng` fills don't-care inputs.
  AtpgOutcome generate(const fault::Fault& fault, Rng& rng);

  const netlist::Netlist& netlist() const { return *nl_; }

 private:
  // Three-valued logic: 0, 1, X.
  enum V : std::uint8_t { kV0 = 0, kV1 = 1, kVX = 2 };
  static V from_bool(bool b) { return b ? kV1 : kV0; }

  void imply();  // full 3-valued good+faulty evaluation from PI assignments
  V eval_gate(const std::uint8_t* vals, netlist::NetId id, bool faulty) const;
  V pin_value(const std::uint8_t* vals, netlist::NetId g, unsigned pin,
              bool faulty) const;

  bool error_at_output() const;
  bool fault_excitable() const;
  bool x_path_exists() const;
  bool is_d(netlist::NetId net) const {
    return good_[net] != kVX && bad_[net] != kVX && good_[net] != bad_[net];
  }

  struct Objective {
    netlist::NetId net;
    bool value;
  };
  std::optional<Objective> pick_objective();
  std::optional<Objective> backtrace(Objective obj) const;

  bool search(unsigned& backtracks);

  const netlist::Netlist* nl_;
  InputConstraints constraints_;
  PodemOptions options_;
  fault::Fault fault_{};
  netlist::NetId fault_line_ = netlist::kNoNet;  // net carrying the fault

  std::vector<std::uint8_t> pi_assign_;  // per net: V (PIs only meaningful)
  std::vector<std::uint8_t> good_;
  std::vector<std::uint8_t> bad_;
  std::vector<netlist::NetId> outputs_;
};

}  // namespace sbst::atpg
