#include "atpg/podem.hpp"

#include <stdexcept>

namespace sbst::atpg {

using netlist::Gate;
using netlist::GateKind;
using netlist::Netlist;
using netlist::NetId;

void InputConstraints::fix_port(const Netlist& nl, const std::string& port,
                                std::uint64_t value) {
  const netlist::Bus& bus = nl.input_port(port);
  for (std::size_t i = 0; i < bus.size(); ++i) {
    fixed_[bus[i]] = (value >> i) & 1u;
  }
}

Podem::Podem(const Netlist& nl, InputConstraints constraints,
             PodemOptions options)
    : nl_(&nl),
      constraints_(std::move(constraints)),
      options_(options),
      pi_assign_(nl.size(), kVX),
      good_(nl.size(), kVX),
      bad_(nl.size(), kVX),
      outputs_(nl.output_nets()) {
  if (!nl.is_combinational()) {
    throw std::invalid_argument("Podem: combinational netlists only");
  }
}

Podem::V Podem::pin_value(const std::uint8_t* vals, NetId g, unsigned pin,
                          bool faulty) const {
  if (faulty && !fault_.site.is_output() && fault_.site.gate == g &&
      fault_.site.pin == pin) {
    return from_bool(fault_.stuck_value);
  }
  return static_cast<V>(vals[nl_->gate(g).in[pin]]);
}

Podem::V Podem::eval_gate(const std::uint8_t* vals, NetId id,
                          bool faulty) const {
  const Gate& g = nl_->gate(id);
  auto in = [&](unsigned p) { return pin_value(vals, id, p, faulty); };
  auto not3 = [](V a) { return a == kVX ? kVX : (a == kV0 ? kV1 : kV0); };
  auto and3 = [](V a, V b) {
    if (a == kV0 || b == kV0) return kV0;
    if (a == kV1 && b == kV1) return kV1;
    return kVX;
  };
  auto or3 = [](V a, V b) {
    if (a == kV1 || b == kV1) return kV1;
    if (a == kV0 && b == kV0) return kV0;
    return kVX;
  };
  auto xor3 = [](V a, V b) {
    if (a == kVX || b == kVX) return kVX;
    return a == b ? kV0 : kV1;
  };

  V v;
  switch (g.kind) {
    case GateKind::kInput:
      v = static_cast<V>(pi_assign_[id]);
      break;
    case GateKind::kConst0: v = kV0; break;
    case GateKind::kConst1: v = kV1; break;
    case GateKind::kBuf: v = in(0); break;
    case GateKind::kNot: v = not3(in(0)); break;
    case GateKind::kAnd: v = and3(in(0), in(1)); break;
    case GateKind::kNand: v = not3(and3(in(0), in(1))); break;
    case GateKind::kOr: v = or3(in(0), in(1)); break;
    case GateKind::kNor: v = not3(or3(in(0), in(1))); break;
    case GateKind::kXor: v = xor3(in(0), in(1)); break;
    case GateKind::kXnor: v = not3(xor3(in(0), in(1))); break;
    case GateKind::kMux2: {
      const V s = in(0), d0 = in(1), d1 = in(2);
      if (s == kV0) v = d0;
      else if (s == kV1) v = d1;
      else if (d0 == d1 && d0 != kVX) v = d0;
      else v = kVX;
      break;
    }
    default:
      throw std::logic_error("Podem: unsupported gate kind");
  }
  if (faulty && fault_.site.is_output() && fault_.site.gate == id) {
    v = from_bool(fault_.stuck_value);
  }
  return v;
}

void Podem::imply() {
  for (NetId id : nl_->topo_order()) {
    good_[id] = eval_gate(good_.data(), id, false);
    bad_[id] = eval_gate(bad_.data(), id, true);
  }
}

bool Podem::error_at_output() const {
  for (NetId out : outputs_) {
    if (is_d(out)) return true;
  }
  return false;
}

bool Podem::fault_excitable() const {
  const V g = static_cast<V>(good_[fault_line_]);
  return g == kVX || g == from_bool(!fault_.stuck_value);
}

bool Podem::x_path_exists() const {
  // Seeds: every net carrying a D, plus (for branch faults) the faulted
  // gate's output while it is still X — the error lives on the branch and
  // has not yet materialised on any net.
  std::vector<std::uint8_t> carries(nl_->size(), 0);
  bool any_seed = false;
  for (NetId id = 0; id < nl_->size(); ++id) {
    if (is_d(id)) {
      carries[id] = 1;
      any_seed = true;
    }
  }
  if (!fault_.site.is_output()) {
    const NetId g = fault_.site.gate;
    if ((good_[g] == kVX || bad_[g] == kVX) &&
        good_[fault_line_] == from_bool(!fault_.stuck_value)) {
      carries[g] = 1;
      any_seed = true;
    }
  }
  if (!any_seed) {
    // Nothing excited yet: possible iff the fault can still be excited.
    return fault_excitable();
  }
  // Forward closure: an error can cross a gate whose output is still X.
  for (NetId id : nl_->topo_order()) {
    if (carries[id]) continue;
    if (good_[id] != kVX && bad_[id] != kVX) continue;
    const Gate& g = nl_->gate(id);
    const unsigned n = fanin_count(g.kind);
    for (unsigned p = 0; p < n; ++p) {
      if (carries[g.in[p]]) {
        carries[id] = 1;
        break;
      }
    }
  }
  for (NetId out : outputs_) {
    if (carries[out]) return true;
  }
  return false;
}

std::optional<Podem::Objective> Podem::pick_objective() {
  // 1. Excite the fault if the fault line is still X.
  if (good_[fault_line_] == kVX) {
    return Objective{fault_line_, !fault_.stuck_value};
  }
  if (good_[fault_line_] == from_bool(fault_.stuck_value)) {
    return std::nullopt;  // constrained/implied to the stuck value
  }

  // 2. Advance the D-frontier. For a branch fault whose error has not yet
  //    reached a net, the frontier is the faulted gate itself.
  auto frontier_objective = [&](NetId gid,
                                int d_pin) -> std::optional<Objective> {
    const Gate& g = nl_->gate(gid);
    auto x_input = [&](int exclude) -> int {
      const unsigned n = fanin_count(g.kind);
      for (unsigned p = 0; p < n; ++p) {
        if (static_cast<int>(p) == exclude) continue;
        if (good_[g.in[p]] == kVX) return static_cast<int>(p);
      }
      return -1;
    };
    switch (g.kind) {
      case GateKind::kAnd:
      case GateKind::kNand: {
        const int p = x_input(d_pin);
        if (p < 0) return std::nullopt;
        return Objective{g.in[p], true};
      }
      case GateKind::kOr:
      case GateKind::kNor: {
        const int p = x_input(d_pin);
        if (p < 0) return std::nullopt;
        return Objective{g.in[p], false};
      }
      case GateKind::kXor:
      case GateKind::kXnor: {
        const int p = x_input(d_pin);
        if (p < 0) return std::nullopt;
        return Objective{g.in[p], false};
      }
      case GateKind::kMux2: {
        if (d_pin == 0 || is_d(g.in[0])) {
          // Error on the select: the data inputs must differ.
          const V d0 = static_cast<V>(good_[g.in[1]]);
          const V d1 = static_cast<V>(good_[g.in[2]]);
          if (d0 == kVX && d1 != kVX) return Objective{g.in[1], d1 == kV0};
          if (d1 == kVX && d0 != kVX) return Objective{g.in[2], d0 == kV0};
          if (d0 == kVX && d1 == kVX) return Objective{g.in[1], false};
          return std::nullopt;
        }
        // Error on a data input: steer the select toward it.
        const bool on_d1 = d_pin == 2 || (d_pin < 0 && is_d(g.in[2]));
        if (good_[g.in[0]] == kVX) return Objective{g.in[0], on_d1};
        return std::nullopt;
      }
      default:
        return std::nullopt;  // BUF/NOT propagate implicitly
    }
  };

  if (!fault_.site.is_output()) {
    const NetId gid = fault_.site.gate;
    if (good_[gid] == kVX || bad_[gid] == kVX) {
      if (auto obj = frontier_objective(gid, fault_.site.pin)) return obj;
    }
  }
  for (NetId id : nl_->topo_order()) {
    if (good_[id] != kVX && bad_[id] != kVX) continue;  // already resolved
    const Gate& g = nl_->gate(id);
    const unsigned n = fanin_count(g.kind);
    bool has_d_input = false;
    int d_pin = -1;
    for (unsigned p = 0; p < n; ++p) {
      if (is_d(g.in[p])) {
        has_d_input = true;
        d_pin = static_cast<int>(p);
        break;
      }
    }
    if (!has_d_input) continue;
    if (auto obj = frontier_objective(id, d_pin)) return obj;
  }
  return std::nullopt;
}

std::optional<Podem::Objective> Podem::backtrace(Objective obj) const {
  NetId net = obj.net;
  bool v = obj.value;
  for (;;) {
    const Gate& g = nl_->gate(net);
    auto first_x = [&]() -> int {
      const unsigned n = fanin_count(g.kind);
      for (unsigned p = 0; p < n; ++p) {
        if (good_[g.in[p]] == kVX) return static_cast<int>(p);
      }
      return -1;
    };
    switch (g.kind) {
      case GateKind::kInput:
        return Objective{net, v};
      case GateKind::kConst0:
      case GateKind::kConst1:
        return std::nullopt;  // cannot change a constant
      case GateKind::kBuf:
        net = g.in[0];
        break;
      case GateKind::kNot:
        net = g.in[0];
        v = !v;
        break;
      case GateKind::kAnd:
      case GateKind::kNand:
      case GateKind::kOr:
      case GateKind::kNor: {
        bool v_eff = v;
        if (g.kind == GateKind::kNand || g.kind == GateKind::kNor) {
          v_eff = !v;
        }
        const bool controlling =
            (g.kind == GateKind::kAnd || g.kind == GateKind::kNand) ? false
                                                                    : true;
        const int p = first_x();
        if (p < 0) return std::nullopt;
        net = g.in[p];
        // Output at controlling value: one controlling input suffices.
        // Output at non-controlling value: all inputs non-controlling.
        v = (v_eff == controlling) ? controlling : !controlling;
        break;
      }
      case GateKind::kXor:
      case GateKind::kXnor: {
        const int p = first_x();
        if (p < 0) return std::nullopt;
        const NetId other = g.in[1 - p];
        bool target = v;
        if (g.kind == GateKind::kXnor) target = !target;
        if (good_[other] != kVX) target = target ^ (good_[other] == kV1);
        net = g.in[p];
        v = target;
        break;
      }
      case GateKind::kMux2: {
        const V s = static_cast<V>(good_[g.in[0]]);
        if (s == kV0) {
          net = g.in[1];
        } else if (s == kV1) {
          net = g.in[2];
        } else {
          // Prefer a data input that already carries the target value.
          if (good_[g.in[1]] == from_bool(v)) {
            net = g.in[0];
            v = false;
          } else if (good_[g.in[2]] == from_bool(v)) {
            net = g.in[0];
            v = true;
          } else {
            net = g.in[0];
            v = false;
          }
        }
        break;
      }
      default:
        return std::nullopt;
    }
  }
}

bool Podem::search(unsigned& backtracks) {
  imply();
  if (error_at_output()) return true;
  if (!fault_excitable()) return false;
  if (!x_path_exists()) return false;

  const auto obj = pick_objective();
  if (!obj) return false;
  const auto pi = backtrace(*obj);
  if (!pi) return false;

  pi_assign_[pi->net] = from_bool(pi->value);
  if (search(backtracks)) return true;
  if (++backtracks > options_.backtrack_limit) {
    pi_assign_[pi->net] = kVX;
    return false;
  }
  pi_assign_[pi->net] = from_bool(!pi->value);
  if (search(backtracks)) return true;
  pi_assign_[pi->net] = kVX;
  return false;
}

AtpgOutcome Podem::generate(const fault::Fault& fault, Rng& rng) {
  fault_ = fault;
  fault_line_ = fault.site.is_output()
                    ? fault.site.gate
                    : nl_->gate(fault.site.gate).in[fault.site.pin];

  std::fill(pi_assign_.begin(), pi_assign_.end(), kVX);
  for (const auto& [net, value] : constraints_.all()) {
    pi_assign_[net] = from_bool(value);
  }

  AtpgOutcome out;
  unsigned backtracks = 0;
  const bool found = search(backtracks);
  out.backtracks = backtracks;
  if (found) {
    out.status = AtpgStatus::kDetected;
    out.pattern.reserve(nl_->inputs().size());
    for (NetId pi : nl_->inputs()) {
      const V v = static_cast<V>(pi_assign_[pi]);
      out.pattern.push_back(v == kVX ? rng.chance(0.5) : v == kV1);
    }
  } else {
    out.status = backtracks > options_.backtrack_limit ? AtpgStatus::kAborted
                                                       : AtpgStatus::kUntestable;
  }
  return out;
}

}  // namespace sbst::atpg
