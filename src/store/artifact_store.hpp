// Persistent content-addressed artifact store.
//
// Grading a processor component repeatedly pays the same fixed costs before
// the first fault is ever simulated: collapsing the fault universe, levelizing
// and compiling the netlist, predecoding the self-test routine, and running
// the fault-free reference execution. For the paper's on-line periodic-test
// setting — the same test programs graded against the same components across
// many invocations — those artifacts are pure functions of (netlist contents,
// build options). The store persists their binary images on disk keyed by
// content, so a warm process skips straight to fault grading.
//
// Layout: one file per artifact under `<dir>/v1/`, named
// `<kind>-<fnv1a(key) as 16 hex digits>.bin`. Each file carries a fixed
// header (magic, store format version, kind, sizes, FNV-1a hashes of key and
// payload), the full key bytes verbatim, then the payload. Loads compare the
// stored key byte-for-byte against the requested key — a hash collision reads
// as a miss, never as aliased data.
//
// Robustness contract: load() returns nullopt on ANY validation failure —
// missing file, short read, bad magic, version skew, kind/key/size mismatch,
// payload hash mismatch, trailing garbage. The caller rebuilds from scratch
// and (typically) overwrites the bad entry via save(). Saves write to a
// temporary file in the same directory and rename() it into place, so a
// crashed or concurrent writer can never leave a torn entry under the final
// name. All failures are silent by design: the store is a cache, and a cache
// that can crash the tool is worse than no cache.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sbst::store {

/// Canonical identity of one cached artifact: a single struct carrying every
/// axis that can distinguish two artifacts, replacing the per-kind parallel
/// keys (component index + options vector + mode array slot) the session
/// cache used to juggle. Axes irrelevant to a kind stay at their zero value,
/// so equal artifacts always produce equal keys:
///
///   universe:  kind, version, content (netlist hash)
///   compiled:  kind, version, lanes, opts, content
///   observe:   kind, cut, mode, content            (in-memory only)
///   cone:      kind, cut, mode, content            (in-memory only)
///   patterns:  kind, version, content, tag
///
/// Ordered (default <=>) for use as a std::map key in core::GradingSession;
/// bytes() serializes the whole struct for use as the on-disk store key.
/// Program-scoped artifacts (decoded programs, good runs) use bespoke key
/// bytes carrying the full program image instead — their "content" would
/// otherwise be only a hash, and the store's exact-key-comparison guarantee
/// must cover the real key material.
struct ArtifactKey {
  std::string kind;           // "universe", "compiled", "patterns", ...
  std::uint32_t version = 0;  // the artifact codec's kSerialVersion
  std::uint32_t cut = 0;      // component id when content alone is not a key
  std::uint8_t mode = 0;      // ObserveMode for observe/cone slots
  std::uint8_t lanes = 0;     // lane-block width for compiled netlists
  std::uint8_t opts = 0;      // CompileOptions bits for compiled netlists
  std::uint64_t content = 0;  // content hash of the underlying model
  std::string tag;            // free-form qualifier (e.g. pattern-set name)

  friend auto operator<=>(const ArtifactKey&, const ArtifactKey&) = default;

  /// Serialized key material for the on-disk store.
  std::vector<std::uint8_t> bytes() const;
};

/// Counters for cache-effectiveness reporting (sbst stats / stderr summary).
/// `loads` = hits + misses + invalid; `invalid` counts files that existed
/// but failed validation (corruption, version skew, key collision).
struct StoreStats {
  std::uint64_t loads = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalid = 0;
  std::uint64_t writes = 0;
  std::uint64_t write_failures = 0;
  /// Size-budget enforcement (zero unless a budget is set): entries removed
  /// by LRU-by-mtime eviction, bytes they held, and stale temporary files
  /// (a crashed writer's leftovers) swept during eviction scans.
  std::uint64_t evictions = 0;
  std::uint64_t evicted_bytes = 0;
  std::uint64_t stale_tmp_removed = 0;
};

class ArtifactStore {
 public:
  /// On-disk store format version; bumped when the header layout changes.
  /// Entries from other versions live in a different subdirectory and are
  /// simply never seen.
  static constexpr std::uint32_t kFormatVersion = 1;

  explicit ArtifactStore(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Total-size budget in bytes; 0 (the default) = unlimited. With a budget
  /// set, every save() ends with an eviction sweep: entry files are removed
  /// oldest-mtime-first (load hits touch the mtime, so eviction order is
  /// LRU) until the store fits the budget, and stale temporary files left
  /// by crashed writers are swept. The entry just written is never evicted
  /// by its own sweep. Deletes are single atomic unlink()s, so a concurrent
  /// reader sees either the full entry or a plain miss — a full disk
  /// degrades to cold rebuilds, never to write failures or torn reads.
  void set_budget(std::uint64_t bytes);
  std::uint64_t budget() const;

  /// Loads the payload for (kind, key), or nullopt when absent or invalid.
  std::optional<std::vector<std::uint8_t>> load(
      std::string_view kind, const std::vector<std::uint8_t>& key);

  /// Persists payload under (kind, key), atomically replacing any existing
  /// entry. Returns false (and counts a write failure) if the filesystem
  /// refuses; the in-memory artifact is unaffected either way.
  bool save(std::string_view kind, const std::vector<std::uint8_t>& key,
            const std::vector<std::uint8_t>& payload);

  /// ArtifactKey conveniences: kind comes from the key, bytes from bytes().
  std::optional<std::vector<std::uint8_t>> load(const ArtifactKey& key) {
    return load(key.kind, key.bytes());
  }
  bool save(const ArtifactKey& key,
            const std::vector<std::uint8_t>& payload) {
    return save(key.kind, key.bytes(), payload);
  }

  StoreStats stats() const;

  /// `$XDG_CACHE_HOME/sbst` when set, else `$HOME/.cache/sbst`. When BOTH
  /// are unset there is no sane cache root: returns empty, which callers
  /// must treat as "store disabled" (fail soft with one stderr warning, run
  /// without persistence) rather than scribbling into the working
  /// directory.
  static std::string default_dir();

  /// Maps a user-facing store spec to a directory: "auto" (or empty) means
  /// default_dir() — possibly empty, see above — anything else is taken
  /// literally.
  static std::string resolve_dir(std::string_view spec);

 private:
  std::string entry_path(std::string_view kind,
                         const std::vector<std::uint8_t>& key) const;
  void evict_over_budget_locked(const std::string& keep_path);

  std::string dir_;
  mutable std::mutex mu_;
  StoreStats stats_;
  std::uint64_t budget_ = 0;
};

}  // namespace sbst::store
