#include "store/artifact_store.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

#include "common/hash.hpp"
#include "common/serialize.hpp"

namespace sbst::store {

namespace fs = std::filesystem;

namespace {

// "SBSTORE\0" little-endian; first 8 bytes of every entry.
constexpr std::uint64_t kMagic = 0x0045524f54534253ull;

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

// The whole file is read up front; entries are small (at most a few MB for
// the largest compiled netlist) and a single read keeps validation simple.
std::optional<std::vector<std::uint8_t>> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) return std::nullopt;
  return bytes;
}

}  // namespace

std::vector<std::uint8_t> ArtifactKey::bytes() const {
  common::ByteWriter w;
  w.put_string(kind);
  w.put_u32(version);
  w.put_u32(cut);
  w.put_u8(mode);
  w.put_u8(lanes);
  w.put_u8(opts);
  w.put_u64(content);
  w.put_string(tag);
  return w.take();
}

ArtifactStore::ArtifactStore(std::string dir) : dir_(std::move(dir)) {}

std::string ArtifactStore::entry_path(
    std::string_view kind, const std::vector<std::uint8_t>& key) const {
  const std::uint64_t kh = common::fnv1a_bytes(key.data(), key.size());
  std::string p = dir_;
  p += "/v";
  p += std::to_string(kFormatVersion);
  p += "/";
  p.append(kind.data(), kind.size());
  p += "-";
  p += hex16(kh);
  p += ".bin";
  return p;
}

void ArtifactStore::set_budget(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_ = bytes;
}

std::uint64_t ArtifactStore::budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_;
}

std::optional<std::vector<std::uint8_t>> ArtifactStore::load(
    std::string_view kind, const std::vector<std::uint8_t>& key) {
  const std::string path = entry_path(kind, key);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.loads;

  auto bytes = read_file(path);
  if (!bytes) {
    ++stats_.misses;
    return std::nullopt;
  }

  common::ByteReader r(*bytes);
  const std::uint64_t magic = r.get_u64();
  const std::uint32_t version = r.get_u32();
  const std::string stored_kind = r.get_string();
  const std::uint64_t key_size = r.get_u64();
  const std::uint64_t payload_size = r.get_u64();
  const std::uint64_t key_hash = r.get_u64();
  const std::uint64_t payload_hash = r.get_u64();
  bool valid = r.ok() && magic == kMagic && version == kFormatVersion &&
               stored_kind == kind && key_size == key.size() &&
               key_size + payload_size == r.remaining();
  if (valid) {
    std::vector<std::uint8_t> stored_key(key.size());
    r.get_bytes(stored_key.data(), stored_key.size());
    valid = r.ok() && stored_key == key &&
            key_hash == common::fnv1a_bytes(key.data(), key.size());
  }
  std::vector<std::uint8_t> payload;
  if (valid) {
    payload.resize(static_cast<std::size_t>(payload_size));
    r.get_bytes(payload.data(), payload.size());
    valid = r.at_end() &&
            payload_hash == common::fnv1a_bytes(payload.data(), payload.size());
  }
  if (!valid) {
    ++stats_.invalid;
    return std::nullopt;
  }
  ++stats_.hits;
  // With a budget set, a hit refreshes the entry's mtime so the eviction
  // sweep's oldest-mtime-first order really is least-recently-USED, not
  // least-recently-written.
  if (budget_ > 0) {
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  }
  return payload;
}

bool ArtifactStore::save(std::string_view kind,
                         const std::vector<std::uint8_t>& key,
                         const std::vector<std::uint8_t>& payload) {
  const std::string path = entry_path(kind, key);
  std::lock_guard<std::mutex> lock(mu_);

  common::ByteWriter w;
  w.put_u64(kMagic);
  w.put_u32(kFormatVersion);
  w.put_string(kind);
  w.put_u64(key.size());
  w.put_u64(payload.size());
  w.put_u64(common::fnv1a_bytes(key.data(), key.size()));
  w.put_u64(common::fnv1a_bytes(payload.data(), payload.size()));
  w.put_bytes(key.data(), key.size());
  w.put_bytes(payload.data(), payload.size());

  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);

  // Temp file in the same directory (so rename is atomic), pid-tagged so
  // concurrent processes writing the same entry never collide mid-write.
  const std::string tmp =
      path + ".tmp" + std::to_string(static_cast<long long>(getpid()));
  bool ok = false;
  if (std::FILE* f = std::fopen(tmp.c_str(), "wb")) {
    ok = std::fwrite(w.bytes().data(), 1, w.size(), f) == w.size();
    ok = (std::fclose(f) == 0) && ok;
  }
  if (ok) {
    fs::rename(tmp, path, ec);
    ok = !ec;
  }
  if (!ok) {
    fs::remove(tmp, ec);
    ++stats_.write_failures;
    return false;
  }
  ++stats_.writes;
  if (budget_ > 0) evict_over_budget_locked(path);
  return true;
}

// LRU-by-mtime eviction sweep, run after a budgeted save (mu_ held).
// Scans the versioned entry directory once: stale temporary files (crashed
// writers' leftovers, older than a grace window so a live writer's tmp is
// never pulled out from under it) are removed unconditionally; entry files
// are removed oldest-mtime-first (name as the deterministic tie-break)
// until the remaining total fits the budget. The just-written entry
// `keep_path` is exempt so a sweep can never undo its own save.
void ArtifactStore::evict_over_budget_locked(const std::string& keep_path) {
  struct EntryFile {
    std::string path;
    std::uint64_t size = 0;
    fs::file_time_type mtime;
  };
  const fs::path root = fs::path(dir_) / ("v" + std::to_string(kFormatVersion));
  std::error_code ec;
  std::vector<EntryFile> entries;
  std::uint64_t total = 0;
  const auto stale_cutoff =
      fs::file_time_type::clock::now() - std::chrono::minutes(10);
  for (fs::directory_iterator it(root, ec), end; !ec && it != end;
       it.increment(ec)) {
    std::error_code fec;
    if (!it->is_regular_file(fec) || fec) continue;
    const std::string path = it->path().string();
    const std::uint64_t size = it->file_size(fec);
    if (fec) continue;
    const fs::file_time_type mtime = it->last_write_time(fec);
    if (fec) continue;
    if (path.find(".tmp") != std::string::npos) {
      if (mtime < stale_cutoff) {
        std::error_code rec;
        if (fs::remove(path, rec) && !rec) ++stats_.stale_tmp_removed;
      }
      continue;
    }
    if (path == keep_path) continue;
    entries.push_back({path, size, mtime});
    total += size;
  }
  std::uint64_t keep_size = 0;
  {
    std::error_code fec;
    const std::uintmax_t s = fs::file_size(keep_path, fec);
    if (!fec) keep_size = static_cast<std::uint64_t>(s);
  }
  total += keep_size;
  if (total <= budget_) return;
  std::sort(entries.begin(), entries.end(),
            [](const EntryFile& a, const EntryFile& b) {
              if (a.mtime != b.mtime) return a.mtime < b.mtime;
              return a.path < b.path;
            });
  for (const EntryFile& e : entries) {
    if (total <= budget_) break;
    std::error_code rec;
    if (fs::remove(e.path, rec) && !rec) {
      total -= e.size;
      ++stats_.evictions;
      stats_.evicted_bytes += e.size;
    }
  }
}

StoreStats ArtifactStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string ArtifactStore::default_dir() {
  if (const char* xdg = std::getenv("XDG_CACHE_HOME"); xdg && *xdg) {
    return std::string(xdg) + "/sbst";
  }
  if (const char* home = std::getenv("HOME"); home && *home) {
    return std::string(home) + "/.cache/sbst";
  }
  // No $XDG_CACHE_HOME and no $HOME: there is nowhere sensible to persist.
  // Empty means "store disabled" — callers warn once and run without
  // persistence instead of dropping a .sbst-store into whatever the
  // current directory happens to be.
  return std::string();
}

std::string ArtifactStore::resolve_dir(std::string_view spec) {
  if (spec.empty() || spec == "auto") return default_dir();
  return std::string(spec);
}

}  // namespace sbst::store
