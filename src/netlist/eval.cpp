#include "netlist/eval.hpp"

#include <stdexcept>

namespace sbst::netlist {

Evaluator::Evaluator(const Netlist& nl)
    : nl_(&nl),
      values_(nl.size(), 0),
      inputs_(nl.size(), 0),
      state_(nl.size(), 0),
      force0_(nl.size(), 0),
      force1_(nl.size(), 0) {
  nl.topo_order();  // validate acyclicity up front
}

void Evaluator::set_bus(const Bus& bus, std::uint64_t value) {
  for (std::size_t i = 0; i < bus.size(); ++i) {
    set_input(bus[i], (value >> i) & 1u);
  }
}

// Inputs are read from the pristine store so that fault forcing on an input
// net (which rewrites values_) cannot leak into later evaluations.

std::uint64_t Evaluator::bus_value(const Bus& bus, unsigned lane) const {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < bus.size(); ++i) {
    out |= ((values_[bus[i]] >> lane) & 1u) << i;
  }
  return out;
}

void Evaluator::inject(const Site& site, bool stuck_value,
                       std::uint64_t lane_mask) {
  has_faults_ = true;
  if (site.is_output()) {
    if ((force0_[site.gate] | force1_[site.gate]) == 0) {
      touched_forces_.push_back(site.gate);
    }
    (stuck_value ? force1_ : force0_)[site.gate] |= lane_mask;
  } else {
    PinForce& pf = pin_forces_[std::uint64_t{site.gate} * 4 + site.pin];
    (stuck_value ? pf.f1 : pf.f0) |= lane_mask;
  }
}

void Evaluator::release(const Site& site, std::uint64_t lane_mask) {
  if (!has_faults_) return;
  if (site.is_output()) {
    // The net stays on touched_forces_ (a zero force is identity, and
    // clear_faults() zeroing it again is harmless), so a later re-inject
    // pushing a duplicate entry costs nothing.
    force0_[site.gate] &= ~lane_mask;
    force1_[site.gate] &= ~lane_mask;
  } else {
    auto it = pin_forces_.find(std::uint64_t{site.gate} * 4 + site.pin);
    if (it != pin_forces_.end()) {
      it->second.f0 &= ~lane_mask;
      it->second.f1 &= ~lane_mask;
    }
  }
}

void Evaluator::clear_faults() {
  if (!has_faults_) return;
  // Only the injected sites carry nonzero masks; reverting just those makes
  // teardown O(faults in the batch) instead of O(nets) — this runs once per
  // fault in the inner loops of all three reference simulators.
  for (NetId id : touched_forces_) force0_[id] = force1_[id] = 0;
  touched_forces_.clear();
  pin_forces_.clear();
  has_faults_ = false;
}

std::uint64_t Evaluator::fetch(NetId gate, unsigned pin) const {
  std::uint64_t v = values_[nl_->gate(gate).in[pin]];
  // Good-machine passes skip the hash probe entirely: without has_faults_
  // the map is guaranteed empty-of-effect even if its buckets are warm from
  // a previous batch.
  if (has_faults_ && !pin_forces_.empty()) {
    auto it = pin_forces_.find(std::uint64_t{gate} * 4 + pin);
    if (it != pin_forces_.end()) {
      v |= it->second.f1;
      v &= ~it->second.f0;
    }
  }
  return v;
}

void Evaluator::eval() {
  for (NetId id : nl_->topo_order()) {
    const Gate& g = nl_->gate(id);
    std::uint64_t v;
    switch (g.kind) {
      case GateKind::kInput:
        v = inputs_[id];
        break;
      case GateKind::kConst0:
        v = 0;
        break;
      case GateKind::kConst1:
        v = ~std::uint64_t{0};
        break;
      case GateKind::kDff:
        v = state_[id];
        break;
      case GateKind::kBuf:
        v = fetch(id, 0);
        break;
      case GateKind::kNot:
        v = ~fetch(id, 0);
        break;
      case GateKind::kAnd:
        v = fetch(id, 0) & fetch(id, 1);
        break;
      case GateKind::kOr:
        v = fetch(id, 0) | fetch(id, 1);
        break;
      case GateKind::kNand:
        v = ~(fetch(id, 0) & fetch(id, 1));
        break;
      case GateKind::kNor:
        v = ~(fetch(id, 0) | fetch(id, 1));
        break;
      case GateKind::kXor:
        v = fetch(id, 0) ^ fetch(id, 1);
        break;
      case GateKind::kXnor:
        v = ~(fetch(id, 0) ^ fetch(id, 1));
        break;
      case GateKind::kMux2: {
        const std::uint64_t sel = fetch(id, 0);
        v = (sel & fetch(id, 2)) | (~sel & fetch(id, 1));
        break;
      }
      default:
        throw std::logic_error("eval: unknown gate kind");
    }
    values_[id] = apply_output_force(id, v);
  }
}

void Evaluator::step() {
  eval();
  for (NetId q : nl_->dffs()) {
    const NetId d = nl_->gate(q).in[0];
    if (d == kNoNet) {
      throw std::logic_error("eval: DFF with unconnected D input");
    }
    state_[q] = values_[d];
  }
}

void Evaluator::reset_state(bool value) {
  const std::uint64_t w = value ? ~std::uint64_t{0} : 0;
  for (NetId q : nl_->dffs()) state_[q] = w;
}

std::uint64_t Evaluator::diff_mask(NetId net, unsigned ref_lane) const {
  const std::uint64_t v = values_[net];
  const std::uint64_t ref = (v >> ref_lane) & 1u ? ~std::uint64_t{0} : 0;
  return v ^ ref;
}

}  // namespace sbst::netlist
