// Compiled levelized netlist evaluation: multi-word SIMD lane blocks,
// event-driven incremental re-evaluation, and compile-time netlist
// optimization passes.
//
// The reference Evaluator (eval.hpp) walks the Gate structs in topological
// order on every eval(), probing a hash map for pin forces on each fetch.
// For fault grading — thousands of eval() calls against one netlist — that
// per-gate pointer chasing and hashing dominates. This engine compiles the
// netlist ONCE into a contiguous structure-of-arrays program:
//
//  * CompiledNetlist: immutable, shareable across threads. Opcode and dense
//    input-net indices per gate, a level-major evaluation order, a fanout
//    CSR over combinational edges, and per-gate combinational levels.
//  * CompiledEvaluatorT<W>: per-thread mutable state. Every net carries a
//    W-word block (uint64_t[W], W in {1, 4}) of 64*W independent lanes;
//    the per-word inner loops are plain element-wise ops, so the
//    autovectorizer emits SSE2/AVX2 for W=4 (see the SBST_NATIVE build
//    knob). Forces live in dense per-net (stem) and per-pin-slot (branch,
//    slot = gate*3 + pin) blocks — no hash map — and only the touched
//    entries are reverted on clear_faults().
//
// Event-driven mode: every mutation (set_input, inject, clear_faults, DFF
// state change) schedules the affected gate on a level-bucketed worklist;
// eval() re-evaluates scheduled gates level by level, propagating to a
// gate's fanout only when its W-word block actually changed, and stops as
// soon as the frontier is empty. A single stuck-at fault therefore
// re-simulates only its fanout cone. While a transient fault is active
// (inject ... clear_faults with no input/state change in between), changed
// blocks are recorded in an undo log so teardown restores the fault-free
// baseline in O(touched) without re-evaluating anything.
//
// Compile-time optimization passes (CompileOptions, off by default so a
// bare CompiledNetlist stays bit-for-bit the reference structure):
//
//  * fuse_inverters: every gate input pin that reads a kBuf/kNot chain is
//    retargeted to the chain's source with the chain's inversion parity
//    folded into a per-pin invert mask in the opcode table. DFF D pins are
//    never fused (the reference quirk below). Faults on bypassed chain
//    gates are remapped at inject() time onto the retargeted pin slots
//    (with parity), so detection flags never change.
//  * const_prop: gates whose (post-fusion) pins are tied to constants are
//    folded to cheaper ops (Buf/Not/And/Or/Const). A folded gate keeps its
//    original opcode and inputs on the side; whenever a pin force or a
//    fault on a consumed constant is active on it, evaluation falls back
//    to the original form, so fault behavior is exact.
//  * dead_sweep: gates outside the union of observe cones (the fanin cone
//    of ALL declared outputs, plus everything the fallback paths above may
//    read) are dropped from the evaluation order and the fanout CSR. A
//    fault on a swept gate is unobservable in the reference engine too, so
//    flags are unchanged.
//
// The lane semantics, the force semantics (including the reference quirk
// that DFFs ignore pin forces on their D input), and every value observable
// on a live net are bitwise-identical to the reference Evaluator for any
// call sequence that injects at most one stuck-at fault per lane (the
// contract every fault simulator in src/fault obeys). Without optimization
// passes the equivalence holds for arbitrary force combinations and every
// net.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/serialize.hpp"
#include "netlist/eval.hpp"
#include "netlist/netlist.hpp"

// The compute helpers sit on the innermost path of the full sweep (gates x
// W words per eval). Left to its own devices GCC outlines them (one call +
// vzeroupper + a ymm spill per gate), which costs more than the gate
// function itself — force the inline. `out` is declared restrict: it points
// at the gate's own value block, which no pin read of the same gate can
// alias (the netlist is cycle-checked, so in[p] != g), and the promise is
// what lets the per-case W-word store loops SLP-vectorize after inlining.
#if defined(__GNUC__) || defined(__clang__)
#define SBST_ALWAYS_INLINE __attribute__((always_inline))
#define SBST_RESTRICT __restrict__
#else
#define SBST_ALWAYS_INLINE
#define SBST_RESTRICT
#endif

namespace sbst::netlist {

/// Compile-time netlist optimization toggles. Default: all off (the
/// compiled structure mirrors the Netlist gate-for-gate).
struct CompileOptions {
  bool const_prop = false;
  bool fuse_inverters = false;
  bool dead_sweep = false;

  bool any() const { return const_prop || fuse_inverters || dead_sweep; }
  static constexpr CompileOptions all() {
    return CompileOptions{true, true, true};
  }
  friend bool operator==(const CompileOptions&,
                         const CompileOptions&) = default;
};

class CompiledNetlist {
 public:
  explicit CompiledNetlist(const Netlist& nl,
                           const CompileOptions& opts = {});

  const Netlist& netlist() const { return *nl_; }
  std::size_t size() const { return op_.size(); }
  const CompileOptions& options() const { return opts_; }

  /// Gates that survived the optimization passes (== size() when no pass
  /// ran); the number of gates a full sweep evaluates.
  std::size_t live_gates() const { return order_.size(); }

  /// Number of combinational levels (sources are level 0).
  unsigned levels() const { return n_levels_; }

  /// Marks every gate in the transitive fanin of `roots` (roots included),
  /// traversing ORIGINAL combinational edges and DFF D edges — the
  /// pre-optimization structure, so the prefilter is identical for every
  /// CompileOptions. A stuck-at fault at a gate outside this cone can never
  /// change a root's value, so fault simulation may skip it without
  /// altering detection flags.
  std::vector<std::uint8_t> fanin_cone(const std::vector<NetId>& roots) const;

  /// Binary-image format version. Part of every artifact-store key, so a
  /// layout change makes old entries miss (and rebuild) instead of
  /// deserializing garbage.
  static constexpr std::uint32_t kSerialVersion = 1;

  /// Appends a versioned binary image of the compiled structure to `w`.
  /// The image captures only what compilation derived — the source netlist
  /// is re-bound on deserialize, so the blob is valid exactly for netlists
  /// with the content the store key names.
  void serialize(common::ByteWriter& w) const;

  /// Rebuilds a compiled netlist from serialize() bytes produced against a
  /// structurally identical `nl`. Returns nullptr on ANY malformed or
  /// inconsistent image — wrong version, truncation, out-of-range indices —
  /// in which case the caller compiles from scratch.
  static std::unique_ptr<CompiledNetlist> deserialize(
      const Netlist& nl, common::ByteReader& r);

 private:
  template <unsigned W>
  friend class CompiledEvaluatorT;

  /// inject() side effect on a retargeted pin: force slot `slot` to the
  /// injected value xor `invert`.
  struct Remap {
    std::uint32_t slot;
    std::uint8_t invert;
  };

  struct DeserializeTag {};
  /// Shell for deserialize(): binds the netlist, fills nothing.
  CompiledNetlist(const Netlist& nl, const CompileOptions& opts,
                  DeserializeTag)
      : nl_(&nl), opts_(opts) {}

  void build_order_and_fanout();
  void optimize();

  const std::uint8_t* orig_ops() const {
    return orig_op_.empty() ? op_.data() : orig_op_.data();
  }
  const NetId* orig_ins() const {
    return orig_in_.empty() ? in_.data() : orig_in_.data();
  }

  const Netlist* nl_;
  CompileOptions opts_;
  std::vector<std::uint8_t> op_;          // GateKind, indexed by net id
  std::vector<NetId> in_;                 // 3 slots per gate, kNoNet padded
  std::vector<std::uint8_t> inv_;         // per-pin invert mask, bit p
  std::vector<std::uint8_t> orig_op_;     // pre-optimization opcode (if any())
  std::vector<NetId> orig_in_;            // pre-optimization inputs (if any())
  std::vector<std::uint8_t> folded_;      // const-folded: fall back under forces
  std::vector<std::uint8_t> live_;        // survives dead sweep
  std::vector<std::uint32_t> level_;      // combinational level per gate
  std::vector<NetId> order_;              // live gates, level-major, id-minor
  std::vector<std::uint32_t> fan_begin_;  // CSR offsets into fan_, size n+1
  std::vector<NetId> fan_;                // combinational fanout targets (live)
  std::vector<NetId> dffs_;               // live DFFs
  // Fusion fault remap: per gate, the retargeted pin slots a force injected
  // on this gate must be copied to. Empty vectors when no pass ran.
  std::vector<std::uint32_t> remap_begin_;
  std::vector<Remap> remap_;
  // Const-prop fault markers: per gate, the folded gates whose original
  // evaluation must be re-activated while a fault sits on this gate.
  std::vector<std::uint32_t> marker_begin_;
  std::vector<NetId> marker_;
  unsigned n_levels_ = 0;
};

/// Drop-in replacement for Evaluator (same stimulus / inject / observe API)
/// backed by a CompiledNetlist, evaluating W-word lane blocks per net.
/// W=1 (the CompiledEvaluator alias) is the classic 64-lane evaluator; W=4
/// carries 256 lanes so one lane-packed grading pass covers 255 faults plus
/// the good machine in lane 0. Construct from a shared CompiledNetlist to
/// amortize compilation across per-thread instances, or directly from a
/// Netlist for convenience.
template <unsigned W>
class CompiledEvaluatorT {
 public:
  static_assert(W == 1 || W == 4, "supported lane widths: 1 or 4 words");
  static constexpr unsigned kWords = W;
  static constexpr unsigned kLanes = 64 * W;

  explicit CompiledEvaluatorT(const CompiledNetlist& cn,
                              bool event_driven = true);
  explicit CompiledEvaluatorT(const Netlist& nl, bool event_driven = true);
  explicit CompiledEvaluatorT(std::shared_ptr<const CompiledNetlist> cn,
                              bool event_driven = true);

  const Netlist& netlist() const { return cn_->netlist(); }
  const CompiledNetlist& compiled() const { return *cn_; }
  bool event_driven() const { return event_driven_; }

  // ---- stimulus (mirrors Evaluator) ---------------------------------------

  /// Broadcasts a scalar into all 64*W lanes.
  void set_input(NetId net, bool value) {
    const std::uint64_t w = value ? ~std::uint64_t{0} : 0;
    std::uint64_t block[W];
    for (unsigned i = 0; i < W; ++i) block[i] = w;
    set_input_block(net, block);
  }
  /// Replicates one 64-lane word into every word of the block (on W=1 this
  /// is the classic raw-word setter).
  void set_input_word(NetId net, std::uint64_t word) {
    std::uint64_t block[W];
    for (unsigned i = 0; i < W; ++i) block[i] = word;
    set_input_block(net, block);
  }
  /// Sets the full W-word lane block of an input net.
  void set_input_block(NetId net, const std::uint64_t* words);
  void set_bus(const Bus& bus, std::uint64_t value);
  std::uint64_t bus_value(const Bus& bus, unsigned lane = 0) const;

  // ---- fault injection ----------------------------------------------------

  /// Forces lanes of word 0 (compat form; lanes 64.. of wider blocks are
  /// untouched).
  void inject(const Site& site, bool stuck_value, std::uint64_t lane_mask) {
    std::uint64_t mask[W] = {};
    mask[0] = lane_mask;
    inject_block(site, stuck_value, mask);
  }
  /// Forces a single lane in [0, 64*W).
  void inject_lane(const Site& site, bool stuck_value, unsigned lane) {
    std::uint64_t mask[W] = {};
    mask[lane / 64] = std::uint64_t{1} << (lane % 64);
    inject_block(site, stuck_value, mask);
  }
  /// Forces every lane of every word.
  void inject_broadcast(const Site& site, bool stuck_value) {
    std::uint64_t mask[W];
    for (unsigned i = 0; i < W; ++i) mask[i] = ~std::uint64_t{0};
    inject_block(site, stuck_value, mask);
  }
  /// Forces `site` to `stuck_value` in the lanes selected per word.
  void inject_block(const Site& site, bool stuck_value,
                    const std::uint64_t* lane_mask);
  /// Removes any force on `site` — both polarities, including the fused
  /// remap slots — in the lanes selected per word, leaving forces in other
  /// lanes (and on other sites) untouched. The site stays listed for
  /// clear_faults() teardown and its const-prop fallback activations stay
  /// in place (the original evaluation computes the same values as the
  /// folded form once the force is zero), so releasing and re-injecting
  /// between evaluations is cheap and safe. This is the cycle-windowed
  /// injection primitive the transient-SEU / intermittent fault models use
  /// to toggle a lane's fault between sequential cycles; the block-granular
  /// undo log keeps working across it.
  void release_block(const Site& site, const std::uint64_t* lane_mask);
  /// Releases a single lane in [0, 64*W).
  void release_lane(const Site& site, unsigned lane) {
    std::uint64_t mask[W] = {};
    mask[lane / 64] = std::uint64_t{1} << (lane % 64);
    release_block(site, mask);
  }
  /// Releases every lane of every word of one site.
  void release_broadcast(const Site& site) {
    std::uint64_t mask[W];
    for (unsigned i = 0; i < W; ++i) mask[i] = ~std::uint64_t{0};
    release_block(site, mask);
  }
  void clear_faults();
  bool has_faults() const { return has_faults_; }

  // ---- evaluation ---------------------------------------------------------

  void eval();
  void step();
  void reset_state(bool value = false);

  /// Marks the next eval() as a full sweep. Callers that change the whole
  /// stimulus at once (a lane-packed grader broadcasting a fresh pattern to
  /// every input) issue this instead of letting the worklist rediscover a
  /// netlist-wide frontier: the level-major sweep skips queue bookkeeping
  /// and per-gate changed-checks and is what the autovectorizer turns into
  /// W-word SIMD. Values are identical either way; full_eval() invalidates
  /// the undo log exactly as the equivalent chain of recorded events would.
  void request_full_eval() { full_pending_ = true; }

  /// Word 0 of a net's lane block.
  std::uint64_t value(NetId net) const { return values_[net * W]; }
  /// Word `w` of a net's lane block.
  std::uint64_t value_word(NetId net, unsigned w) const {
    return values_[net * W + w];
  }
  /// Lanes of word 0 differing from lane `ref_lane` (of word 0).
  std::uint64_t diff_mask(NetId net, unsigned ref_lane = 0) const {
    return diff_word(net, 0, ref_lane);
  }
  /// Lanes of word `w` differing from reference lane `ref_lane` of word 0
  /// (the good-machine lane for lane-packed grading).
  std::uint64_t diff_word(NetId net, unsigned w, unsigned ref_lane = 0) const {
    const std::uint64_t ref =
        (values_[net * W] >> ref_lane) & 1u ? ~std::uint64_t{0} : 0;
    return values_[net * W + w] ^ ref;
  }

  // ---- instrumentation ----------------------------------------------------

  /// Cumulative count of gate evaluations performed by eval() calls (a full
  /// sweep adds live_gates(); an event pass adds only the gates it visited).
  /// Used by the throughput bench to report average active-cone size per
  /// fault.
  std::uint64_t gate_evals() const { return gate_evals_; }
  void reset_stats() { gate_evals_ = 0; }

 private:
  CompiledEvaluatorT(std::shared_ptr<const CompiledNetlist> owned,
                     const CompiledNetlist& cn, bool event_driven);
  SBST_ALWAYS_INLINE void compute(NetId g,
                                  std::uint64_t* SBST_RESTRICT out) const;
  SBST_ALWAYS_INLINE void compute_plain(NetId g,
                                        std::uint64_t* SBST_RESTRICT out) const;
  SBST_ALWAYS_INLINE void compute_orig(NetId g,
                                       std::uint64_t* SBST_RESTRICT out) const;
  template <bool kForces>
  void full_sweep();
  void full_eval();
  void event_eval();
  void schedule(NetId g);
  void schedule_live(NetId g) {
    if (cn_->live_[g]) schedule(g);
  }
  void invalidate_undo();
  void force_slot(std::uint32_t slot, bool stuck_value,
                  const std::uint64_t* lane_mask);
  void update_dispatch(NetId g);

  std::shared_ptr<const CompiledNetlist> owned_;  // only for the Netlist ctor
  const CompiledNetlist* cn_;
  bool event_driven_;
  bool opt_;  // any optimization pass ran (enables the fallback machinery)

  std::vector<std::uint64_t> values_;  // net * W + word
  std::vector<std::uint64_t> inputs_;
  std::vector<std::uint64_t> state_;

  // Dense force stores; invariant: every gate/slot with a nonzero block is
  // listed in the corresponding touched_ vector and counted in the per-gate
  // bytes below, so teardown is O(touched) and the hot loop can skip force
  // loads for unforced gates.
  std::vector<std::uint64_t> out_f0_, out_f1_;  // net * W + word
  std::vector<std::uint64_t> pin_f0_, pin_f1_;  // (gate*3 + pin) * W + word
  std::vector<std::uint8_t> out_forced_;        // per gate
  std::vector<std::uint8_t> pin_forced_;        // forced slots per gate (0..3)
  // Per-slot membership of touched_pin_. Listing is decided by this flag —
  // NOT by whether the force blocks are nonzero — so a slot whose lanes were
  // all release_block()ed (blocks back to zero) is not double-listed (and
  // pin_forced_ not double-counted) when re-injected.
  std::vector<std::uint8_t> pin_listed_;
  std::vector<std::uint16_t> fallback_cnt_;     // const-marker activations
  // Per-gate compute dispatch, folded from the force state above so the hot
  // loops do one predictable byte test instead of three scattered loads:
  // 0 = compute_plain and no output force; else kDispatchOrig/Pins selects
  // the compute routine and kDispatchOut requests the output-force blend.
  static constexpr std::uint8_t kDispatchOrig = 1;
  static constexpr std::uint8_t kDispatchPins = 2;
  static constexpr std::uint8_t kDispatchOut = 4;
  std::vector<std::uint8_t> dispatch_;
  std::vector<NetId> touched_out_;
  std::vector<std::uint32_t> touched_pin_;
  std::vector<NetId> touched_fallback_;  // one entry per activation
  bool has_faults_ = false;

  // Event machinery.
  std::vector<std::vector<NetId>> queue_;  // one bucket per level
  std::vector<std::uint8_t> queued_;       // dedupe marks
  std::size_t pending_ = 0;
  bool full_pending_ = true;  // first eval() must be a full sweep

  // Undo log: (net, previous block) in overwrite order; valid only while
  // the sole perturbations since the last fault-free eval() are injected
  // forces.
  struct UndoEntry {
    NetId net;
    std::array<std::uint64_t, W> prev;
  };
  std::vector<UndoEntry> undo_;
  bool undo_active_ = false;

  std::uint64_t gate_evals_ = 0;
};

/// The classic single-word (64-lane) evaluator.
using CompiledEvaluator = CompiledEvaluatorT<1>;

extern template class CompiledEvaluatorT<1>;
extern template class CompiledEvaluatorT<4>;

}  // namespace sbst::netlist
