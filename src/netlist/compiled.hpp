// Compiled levelized netlist evaluation with event-driven incremental
// re-evaluation.
//
// The reference Evaluator (eval.hpp) walks the Gate structs in topological
// order on every eval(), probing a hash map for pin forces on each fetch.
// For fault grading — thousands of eval() calls against one netlist — that
// per-gate pointer chasing and hashing dominates. This engine compiles the
// netlist ONCE into a contiguous structure-of-arrays program:
//
//  * CompiledNetlist: immutable, shareable across threads. Opcode and dense
//    input-net indices per gate, a level-major evaluation order, a fanout
//    CSR over combinational edges, and per-gate combinational levels.
//  * CompiledEvaluator: per-thread mutable state. Forces live in dense
//    per-net (stem) and per-pin-slot (branch, slot = gate*3 + pin) arrays —
//    no hash map — and only the touched entries are reverted on
//    clear_faults().
//
// Event-driven mode: every mutation (set_input, inject, clear_faults, DFF
// state change) schedules the affected gate on a level-bucketed worklist;
// eval() re-evaluates scheduled gates level by level, propagating to a
// gate's fanout only when its 64-lane word actually changed, and stops as
// soon as the frontier is empty. A single stuck-at fault therefore
// re-simulates only its fanout cone. While a transient fault is active
// (inject ... clear_faults with no input/state change in between), changed
// words are recorded in an undo log so teardown restores the fault-free
// baseline in O(touched) without re-evaluating anything.
//
// The lane semantics, the force semantics (including the reference quirk
// that DFFs ignore pin forces on their D input), and every observable value
// are bitwise-identical to the reference Evaluator for any call sequence.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "netlist/eval.hpp"
#include "netlist/netlist.hpp"

namespace sbst::netlist {

class CompiledNetlist {
 public:
  explicit CompiledNetlist(const Netlist& nl);

  const Netlist& netlist() const { return *nl_; }
  std::size_t size() const { return op_.size(); }

  /// Number of combinational levels (sources are level 0).
  unsigned levels() const { return n_levels_; }

  /// Marks every gate in the transitive fanin of `roots` (roots included),
  /// traversing combinational edges and DFF D edges. A stuck-at fault at a
  /// gate outside this cone can never change a root's value, so fault
  /// simulation may skip it without altering detection flags.
  std::vector<std::uint8_t> fanin_cone(const std::vector<NetId>& roots) const;

 private:
  friend class CompiledEvaluator;

  const Netlist* nl_;
  std::vector<std::uint8_t> op_;          // GateKind, indexed by net id
  std::vector<NetId> in_;                 // 3 slots per gate, kNoNet padded
  std::vector<std::uint32_t> level_;      // combinational level per gate
  std::vector<NetId> order_;              // level-major, id-minor eval order
  std::vector<std::uint32_t> fan_begin_;  // CSR offsets into fan_, size n+1
  std::vector<NetId> fan_;                // combinational fanout targets
  std::vector<NetId> dffs_;
  unsigned n_levels_ = 0;
};

/// Drop-in replacement for Evaluator (same stimulus / inject / observe API)
/// backed by a CompiledNetlist. Construct from a shared CompiledNetlist to
/// amortize compilation across per-thread instances, or directly from a
/// Netlist for convenience.
class CompiledEvaluator {
 public:
  explicit CompiledEvaluator(const CompiledNetlist& cn,
                             bool event_driven = true);
  explicit CompiledEvaluator(const Netlist& nl, bool event_driven = true);
  explicit CompiledEvaluator(std::shared_ptr<const CompiledNetlist> cn,
                             bool event_driven = true);

  const Netlist& netlist() const { return cn_->netlist(); }
  const CompiledNetlist& compiled() const { return *cn_; }
  bool event_driven() const { return event_driven_; }

  // ---- stimulus (mirrors Evaluator) ---------------------------------------

  void set_input(NetId net, bool value) {
    set_input_word(net, value ? ~std::uint64_t{0} : 0);
  }
  void set_input_word(NetId net, std::uint64_t word);
  void set_bus(const Bus& bus, std::uint64_t value);
  std::uint64_t bus_value(const Bus& bus, unsigned lane = 0) const;

  // ---- fault injection ----------------------------------------------------

  void inject(const Site& site, bool stuck_value, std::uint64_t lane_mask);
  void clear_faults();
  bool has_faults() const { return has_faults_; }

  // ---- evaluation ---------------------------------------------------------

  void eval();
  void step();
  void reset_state(bool value = false);

  std::uint64_t value(NetId net) const { return values_[net]; }
  std::uint64_t diff_mask(NetId net, unsigned ref_lane = 0) const;

  // ---- instrumentation ----------------------------------------------------

  /// Cumulative count of gate evaluations performed by eval() calls (a full
  /// sweep adds size(); an event pass adds only the gates it visited). Used
  /// by the throughput bench to report average active-cone size per fault.
  std::uint64_t gate_evals() const { return gate_evals_; }
  void reset_stats() { gate_evals_ = 0; }

 private:
  CompiledEvaluator(std::shared_ptr<const CompiledNetlist> owned,
                    const CompiledNetlist& cn, bool event_driven);
  template <bool kForces>
  std::uint64_t compute(NetId g) const;
  template <bool kForces>
  void full_sweep();
  void full_eval();
  void event_eval();
  void schedule(NetId g);
  void invalidate_undo();

  std::shared_ptr<const CompiledNetlist> owned_;  // only for the Netlist ctor
  const CompiledNetlist* cn_;
  bool event_driven_;

  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> inputs_;
  std::vector<std::uint64_t> state_;

  // Dense force stores; invariant: every nonzero entry is listed in the
  // corresponding touched_ vector, so teardown is O(touched).
  std::vector<std::uint64_t> out_f0_, out_f1_;  // per net
  std::vector<std::uint64_t> pin_f0_, pin_f1_;  // per pin slot (gate*3 + pin)
  std::vector<NetId> touched_out_;
  std::vector<std::uint32_t> touched_pin_;
  bool has_faults_ = false;

  // Event machinery.
  std::vector<std::vector<NetId>> queue_;  // one bucket per level
  std::vector<std::uint8_t> queued_;       // dedupe marks
  std::size_t pending_ = 0;
  bool full_pending_ = true;  // first eval() must be a full sweep

  // Undo log: (net, previous word) in overwrite order; valid only while the
  // sole perturbations since the last fault-free eval() are injected forces.
  std::vector<std::pair<NetId, std::uint64_t>> undo_;
  bool undo_active_ = false;

  std::uint64_t gate_evals_ = 0;
};

}  // namespace sbst::netlist
