#include "netlist/compiled.hpp"

#include <algorithm>
#include <stdexcept>

namespace sbst::netlist {

CompiledNetlist::CompiledNetlist(const Netlist& nl) : nl_(&nl) {
  const std::size_t n = nl.size();
  op_.resize(n);
  in_.assign(n * 3, kNoNet);
  level_.assign(n, 0);

  for (NetId id = 0; id < n; ++id) {
    const Gate& g = nl.gate(id);
    op_[id] = static_cast<std::uint8_t>(g.kind);
    for (unsigned p = 0; p < 3; ++p) in_[id * 3 + p] = g.in[p];
    if (g.kind == GateKind::kDff) dffs_.push_back(id);
  }

  // Levels from the (cycle-checked) topological order. DFF outputs are
  // sources: their D edge is sequential and does not contribute to depth.
  for (NetId id : nl.topo_order()) {
    const Gate& g = nl.gate(id);
    if (g.kind == GateKind::kDff) continue;
    const unsigned pins = fanin_count(g.kind);
    std::uint32_t lvl = 0;
    for (unsigned p = 0; p < pins; ++p) {
      lvl = std::max(lvl, level_[g.in[p]] + 1);
    }
    level_[id] = lvl;
  }

  std::uint32_t max_level = 0;
  for (NetId id = 0; id < n; ++id) max_level = std::max(max_level, level_[id]);
  n_levels_ = n == 0 ? 0 : max_level + 1;

  // Level-major, id-minor order via counting sort (deterministic and
  // identical in effect to any valid topological order).
  std::vector<std::uint32_t> level_count(n_levels_ + 1, 0);
  for (NetId id = 0; id < n; ++id) ++level_count[level_[id] + 1];
  for (unsigned l = 1; l <= n_levels_; ++l) level_count[l] += level_count[l - 1];
  order_.resize(n);
  {
    std::vector<std::uint32_t> cursor(level_count.begin(),
                                      level_count.end() - 1);
    for (NetId id = 0; id < n; ++id) order_[cursor[level_[id]]++] = id;
  }

  // Fanout CSR over combinational edges only (DFF D edges are clocked by
  // step(), never by value propagation).
  fan_begin_.assign(n + 1, 0);
  for (NetId id = 0; id < n; ++id) {
    const GateKind kind = static_cast<GateKind>(op_[id]);
    if (kind == GateKind::kDff) continue;
    const unsigned pins = fanin_count(kind);
    for (unsigned p = 0; p < pins; ++p) ++fan_begin_[in_[id * 3 + p] + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) fan_begin_[i] += fan_begin_[i - 1];
  fan_.resize(fan_begin_[n]);
  {
    std::vector<std::uint32_t> cursor(fan_begin_.begin(), fan_begin_.end() - 1);
    for (NetId id = 0; id < n; ++id) {
      const GateKind kind = static_cast<GateKind>(op_[id]);
      if (kind == GateKind::kDff) continue;
      const unsigned pins = fanin_count(kind);
      for (unsigned p = 0; p < pins; ++p) fan_[cursor[in_[id * 3 + p]]++] = id;
    }
  }
}

std::vector<std::uint8_t> CompiledNetlist::fanin_cone(
    const std::vector<NetId>& roots) const {
  std::vector<std::uint8_t> mask(size(), 0);
  std::vector<NetId> stack;
  for (NetId r : roots) {
    if (r < mask.size() && !mask[r]) {
      mask[r] = 1;
      stack.push_back(r);
    }
  }
  while (!stack.empty()) {
    const NetId g = stack.back();
    stack.pop_back();
    // DFF D edges are included: a fault can propagate into state and be
    // observed on a later cycle.
    const unsigned pins = fanin_count(static_cast<GateKind>(op_[g]));
    for (unsigned p = 0; p < pins; ++p) {
      const NetId src = in_[g * 3 + p];
      if (src != kNoNet && !mask[src]) {
        mask[src] = 1;
        stack.push_back(src);
      }
    }
  }
  return mask;
}

CompiledEvaluator::CompiledEvaluator(
    std::shared_ptr<const CompiledNetlist> owned, const CompiledNetlist& cn,
    bool event_driven)
    : owned_(std::move(owned)),
      cn_(&cn),
      event_driven_(event_driven),
      values_(cn.size(), 0),
      inputs_(cn.size(), 0),
      state_(cn.size(), 0),
      out_f0_(cn.size(), 0),
      out_f1_(cn.size(), 0),
      pin_f0_(cn.size() * 3, 0),
      pin_f1_(cn.size() * 3, 0),
      queue_(cn.levels()),
      queued_(cn.size(), 0) {}

CompiledEvaluator::CompiledEvaluator(const CompiledNetlist& cn,
                                     bool event_driven)
    : CompiledEvaluator(nullptr, cn, event_driven) {}

CompiledEvaluator::CompiledEvaluator(const Netlist& nl, bool event_driven)
    : CompiledEvaluator(std::make_shared<CompiledNetlist>(nl), event_driven) {}

CompiledEvaluator::CompiledEvaluator(
    std::shared_ptr<const CompiledNetlist> cn, bool event_driven)
    : CompiledEvaluator(cn, *cn, event_driven) {}

void CompiledEvaluator::set_bus(const Bus& bus, std::uint64_t value) {
  for (std::size_t i = 0; i < bus.size(); ++i) {
    set_input(bus[i], (value >> i) & 1u);
  }
}

std::uint64_t CompiledEvaluator::bus_value(const Bus& bus,
                                           unsigned lane) const {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < bus.size(); ++i) {
    out |= ((values_[bus[i]] >> lane) & 1u) << i;
  }
  return out;
}

std::uint64_t CompiledEvaluator::diff_mask(NetId net, unsigned ref_lane) const {
  const std::uint64_t v = values_[net];
  const std::uint64_t ref = (v >> ref_lane) & 1u ? ~std::uint64_t{0} : 0;
  return v ^ ref;
}

void CompiledEvaluator::schedule(NetId g) {
  if (!queued_[g]) {
    queued_[g] = 1;
    queue_[cn_->level_[g]].push_back(g);
    ++pending_;
  }
}

void CompiledEvaluator::invalidate_undo() {
  undo_active_ = false;
  undo_.clear();
}

void CompiledEvaluator::set_input_word(NetId net, std::uint64_t word) {
  if (inputs_[net] == word) return;
  inputs_[net] = word;
  // The baseline shifts under the injected faults; teardown must
  // re-propagate instead of replaying stale words.
  if (has_faults_) invalidate_undo();
  if (event_driven_ && !full_pending_) schedule(net);
}

void CompiledEvaluator::inject(const Site& site, bool stuck_value,
                               std::uint64_t lane_mask) {
  if (!has_faults_) {
    // Undo-log teardown is only sound when a fault-free baseline exists in
    // values_: at least one eval() ran, and no input/state events are still
    // waiting to be consumed (those would be replayed away with the fault).
    undo_active_ = event_driven_ && !full_pending_ && pending_ == 0;
    has_faults_ = true;
  }
  if (site.is_output()) {
    if ((out_f0_[site.gate] | out_f1_[site.gate]) == 0) {
      touched_out_.push_back(site.gate);
    }
    (stuck_value ? out_f1_ : out_f0_)[site.gate] |= lane_mask;
  } else {
    const std::uint32_t slot = site.gate * 3 + site.pin;
    if ((pin_f0_[slot] | pin_f1_[slot]) == 0) touched_pin_.push_back(slot);
    (stuck_value ? pin_f1_ : pin_f0_)[slot] |= lane_mask;
  }
  if (event_driven_ && !full_pending_) schedule(site.gate);
}

void CompiledEvaluator::clear_faults() {
  if (!has_faults_) return;
  if (undo_active_) {
    // Every word perturbed since injection was recorded; restoring them in
    // reverse overwrite order reinstates the fault-free baseline exactly.
    for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
      values_[it->first] = it->second;
    }
  } else if (event_driven_ && !full_pending_) {
    // No replayable log (inputs/state moved, or a full sweep ran while the
    // faults were active): re-propagate from the fault sites instead.
    for (NetId g : touched_out_) schedule(g);
    for (std::uint32_t slot : touched_pin_) schedule(slot / 3);
  }
  for (NetId g : touched_out_) out_f0_[g] = out_f1_[g] = 0;
  for (std::uint32_t slot : touched_pin_) pin_f0_[slot] = pin_f1_[slot] = 0;
  touched_out_.clear();
  touched_pin_.clear();
  invalidate_undo();
  has_faults_ = false;
}

template <bool kForces>
std::uint64_t CompiledEvaluator::compute(NetId g) const {
  const NetId* in = &cn_->in_[g * 3];
  const std::uint64_t* pf0 = &pin_f0_[g * 3];
  const std::uint64_t* pf1 = &pin_f1_[g * 3];
  auto pin = [&](unsigned p) {
    std::uint64_t v = values_[in[p]];
    if constexpr (kForces) {
      v |= pf1[p];
      v &= ~pf0[p];
    }
    return v;
  };
  std::uint64_t v;
  switch (static_cast<GateKind>(cn_->op_[g])) {
    case GateKind::kInput:
      v = inputs_[g];
      break;
    case GateKind::kConst0:
      v = 0;
      break;
    case GateKind::kConst1:
      v = ~std::uint64_t{0};
      break;
    case GateKind::kDff:
      // Matches the reference evaluator: DFFs ignore pin forces on D.
      v = state_[g];
      break;
    case GateKind::kBuf:
      v = pin(0);
      break;
    case GateKind::kNot:
      v = ~pin(0);
      break;
    case GateKind::kAnd:
      v = pin(0) & pin(1);
      break;
    case GateKind::kOr:
      v = pin(0) | pin(1);
      break;
    case GateKind::kNand:
      v = ~(pin(0) & pin(1));
      break;
    case GateKind::kNor:
      v = ~(pin(0) | pin(1));
      break;
    case GateKind::kXor:
      v = pin(0) ^ pin(1);
      break;
    case GateKind::kXnor:
      v = ~(pin(0) ^ pin(1));
      break;
    case GateKind::kMux2: {
      const std::uint64_t sel = pin(0);
      v = (sel & pin(2)) | (~sel & pin(1));
      break;
    }
    default:
      throw std::logic_error("compiled eval: unknown gate kind");
  }
  if constexpr (kForces) {
    v |= out_f1_[g];
    v &= ~out_f0_[g];
  }
  return v;
}

template <bool kForces>
void CompiledEvaluator::full_sweep() {
  for (NetId g : cn_->order_) values_[g] = compute<kForces>(g);
}

void CompiledEvaluator::full_eval() {
  if (has_faults_) {
    full_sweep<true>();
    // values_ now carry faulty words nobody recorded; a later undo replay
    // would restore garbage.
    invalidate_undo();
  } else {
    full_sweep<false>();
  }
  // The sweep subsumes any queued events.
  for (auto& q : queue_) {
    for (NetId g : q) queued_[g] = 0;
    q.clear();
  }
  pending_ = 0;
  full_pending_ = false;
  gate_evals_ += cn_->size();
}

void CompiledEvaluator::event_eval() {
  const std::size_t n_levels = queue_.size();
  for (std::size_t lvl = 0; lvl < n_levels && pending_ > 0; ++lvl) {
    std::vector<NetId>& q = queue_[lvl];
    // Fanout targets land on strictly higher levels, so q is stable here.
    for (NetId g : q) {
      queued_[g] = 0;
      --pending_;
      ++gate_evals_;
      const std::uint64_t v =
          has_faults_ ? compute<true>(g) : compute<false>(g);
      if (v == values_[g]) continue;
      if (undo_active_) undo_.emplace_back(g, values_[g]);
      values_[g] = v;
      const std::uint32_t begin = cn_->fan_begin_[g];
      const std::uint32_t end = cn_->fan_begin_[g + 1];
      for (std::uint32_t e = begin; e < end; ++e) schedule(cn_->fan_[e]);
    }
    q.clear();
  }
}

void CompiledEvaluator::eval() {
  if (!event_driven_ || full_pending_) {
    full_eval();
  } else {
    event_eval();
  }
}

void CompiledEvaluator::step() {
  eval();
  bool state_changed = false;
  for (NetId q : cn_->dffs_) {
    const NetId d = cn_->in_[q * 3];
    if (d == kNoNet) {
      throw std::logic_error("eval: DFF with unconnected D input");
    }
    const std::uint64_t nd = values_[d];
    if (state_[q] != nd) {
      state_[q] = nd;
      state_changed = true;
      if (event_driven_ && !full_pending_) schedule(q);
    }
  }
  if (state_changed && has_faults_) invalidate_undo();
}

void CompiledEvaluator::reset_state(bool value) {
  const std::uint64_t w = value ? ~std::uint64_t{0} : 0;
  bool state_changed = false;
  for (NetId q : cn_->dffs_) {
    if (state_[q] != w) {
      state_[q] = w;
      state_changed = true;
      if (event_driven_ && !full_pending_) schedule(q);
    }
  }
  if (state_changed && has_faults_) invalidate_undo();
}

}  // namespace sbst::netlist
