#include "netlist/compiled.hpp"

#include <algorithm>
#include <stdexcept>

namespace sbst::netlist {

namespace {

constexpr std::uint8_t kUnknown = 2;  // const-prop lattice: 0, 1, unknown

bool is_chain(GateKind k) { return k == GateKind::kBuf || k == GateKind::kNot; }

}  // namespace

CompiledNetlist::CompiledNetlist(const Netlist& nl, const CompileOptions& opts)
    : nl_(&nl), opts_(opts) {
  const std::size_t n = nl.size();
  op_.resize(n);
  in_.assign(n * 3, kNoNet);
  inv_.assign(n, 0);
  level_.assign(n, 0);
  live_.assign(n, 1);

  for (NetId id = 0; id < n; ++id) {
    const Gate& g = nl.gate(id);
    op_[id] = static_cast<std::uint8_t>(g.kind);
    for (unsigned p = 0; p < 3; ++p) in_[id * 3 + p] = g.in[p];
  }

  if (opts_.any()) optimize();

  for (NetId id = 0; id < n; ++id) {
    if (op_[id] == static_cast<std::uint8_t>(GateKind::kDff) && live_[id]) {
      dffs_.push_back(id);
    }
  }

  build_order_and_fanout();
}

// Fuses kBuf/kNot chains into per-pin invert bits, folds const-tied pins,
// and sweeps gates nothing observable reads. Fault exactness relies on
// three side tables built here:
//  * remap_: forces injected on a bypassed chain gate are copied (with
//    parity) onto every pin slot that was retargeted past it;
//  * marker_: forces injected on a consumed constant re-activate the
//    original evaluation of every transitively folded consumer;
//  * the liveness rule that a folded gate keeps ALL its original inputs
//    alive, so the fallback path always reads current values.
void CompiledNetlist::optimize() {
  const std::size_t n = op_.size();
  orig_op_ = op_;
  orig_in_ = in_;
  folded_.assign(n, 0);

  const std::vector<NetId>& topo = nl_->topo_order();

  // ---- inverter-chain fusion ----------------------------------------------
  if (opts_.fuse_inverters) {
    for (NetId g : topo) {
      const GateKind kind = static_cast<GateKind>(op_[g]);
      if (kind == GateKind::kDff) continue;  // DFFs ignore pin forces on D
      const unsigned pins = fanin_count(kind);
      for (unsigned p = 0; p < pins; ++p) {
        NetId s = in_[g * 3 + p];
        unsigned parity = 0;
        // Chain gates were already resolved (topo order), so each hop lands
        // on a non-chain source after folding in the hop's own parity.
        while (is_chain(static_cast<GateKind>(op_[s]))) {
          parity ^= (static_cast<GateKind>(op_[s]) == GateKind::kNot ? 1u : 0u) ^
                    (inv_[s] & 1u);
          s = in_[s * 3];
        }
        in_[g * 3 + p] = s;
        if (parity) inv_[g] |= std::uint8_t{1} << p;
      }
    }
  }

  // ---- constant propagation -----------------------------------------------
  // dropped[g]: original-position pins whose (constant) source the folded
  // form no longer reads — the marker graph edges.
  std::vector<std::array<NetId, 3>> dropped(n, {kNoNet, kNoNet, kNoNet});
  std::vector<std::uint8_t> cval(n, kUnknown);
  if (opts_.const_prop) {
    for (NetId g : topo) {
      const GateKind kind = static_cast<GateKind>(op_[g]);
      const unsigned pins = fanin_count(kind);
      std::uint8_t cv[3] = {kUnknown, kUnknown, kUnknown};
      for (unsigned p = 0; p < pins; ++p) {
        const std::uint8_t c = cval[in_[g * 3 + p]];
        cv[p] = c == kUnknown ? kUnknown : c ^ ((inv_[g] >> p) & 1u);
      }
      NetId src[3];
      std::uint8_t pinv[3];
      for (unsigned p = 0; p < 3; ++p) {
        src[p] = in_[g * 3 + p];
        pinv[p] = (inv_[g] >> p) & 1u;
      }
      // new_* describe the replacement; op stays unchanged unless set.
      GateKind new_op = kind;
      NetId n0 = kNoNet, n1 = kNoNet;
      std::uint8_t ninv = 0;
      bool fold = false;
      auto to_const = [&](bool v) {
        new_op = v ? GateKind::kConst1 : GateKind::kConst0;
        fold = true;
      };
      // Keep pin `keep`, optionally inverted on top of its own inv bit.
      auto to_buf = [&](unsigned keep, unsigned extra_inv) {
        new_op = GateKind::kBuf;
        n0 = src[keep];
        ninv = pinv[keep] ^ extra_inv;
        fold = true;
      };
      auto to_pair = [&](GateKind op2, unsigned a, std::uint8_t ainv,
                         unsigned b, std::uint8_t binv) {
        new_op = op2;
        n0 = src[a];
        n1 = src[b];
        ninv = static_cast<std::uint8_t>((pinv[a] ^ ainv) |
                                         ((pinv[b] ^ binv) << 1));
        fold = true;
      };
      switch (kind) {
        case GateKind::kConst0:
          cval[g] = 0;
          break;
        case GateKind::kConst1:
          cval[g] = 1;
          break;
        case GateKind::kBuf:
          if (cv[0] != kUnknown) to_const(cv[0]);
          break;
        case GateKind::kNot:
          if (cv[0] != kUnknown) to_const(!cv[0]);
          break;
        case GateKind::kAnd:
          if (cv[0] == 0 || cv[1] == 0) to_const(false);
          else if (cv[0] == 1 && cv[1] == 1) to_const(true);
          else if (cv[0] == 1) to_buf(1, 0);
          else if (cv[1] == 1) to_buf(0, 0);
          break;
        case GateKind::kOr:
          if (cv[0] == 1 || cv[1] == 1) to_const(true);
          else if (cv[0] == 0 && cv[1] == 0) to_const(false);
          else if (cv[0] == 0) to_buf(1, 0);
          else if (cv[1] == 0) to_buf(0, 0);
          break;
        case GateKind::kNand:
          if (cv[0] == 0 || cv[1] == 0) to_const(true);
          else if (cv[0] == 1 && cv[1] == 1) to_const(false);
          else if (cv[0] == 1) to_buf(1, 1);
          else if (cv[1] == 1) to_buf(0, 1);
          break;
        case GateKind::kNor:
          if (cv[0] == 1 || cv[1] == 1) to_const(false);
          else if (cv[0] == 0 && cv[1] == 0) to_const(true);
          else if (cv[0] == 0) to_buf(1, 1);
          else if (cv[1] == 0) to_buf(0, 1);
          break;
        case GateKind::kXor:
          if (cv[0] != kUnknown && cv[1] != kUnknown) to_const(cv[0] ^ cv[1]);
          else if (cv[0] != kUnknown) to_buf(1, cv[0]);
          else if (cv[1] != kUnknown) to_buf(0, cv[1]);
          break;
        case GateKind::kXnor:
          if (cv[0] != kUnknown && cv[1] != kUnknown) to_const(!(cv[0] ^ cv[1]));
          else if (cv[0] != kUnknown) to_buf(1, !cv[0]);
          else if (cv[1] != kUnknown) to_buf(0, !cv[1]);
          break;
        case GateKind::kMux2:
          // pins: 0 = sel, 1 = d0, 2 = d1; out = sel ? d1 : d0.
          if (cv[0] != kUnknown) to_buf(cv[0] ? 2 : 1, 0);
          else if (cv[1] != kUnknown && cv[2] != kUnknown) {
            if (cv[1] == cv[2]) to_const(cv[1]);
            else if (cv[1] == 0) to_pair(GateKind::kAnd, 0, 0, 2, 0);
            else to_pair(GateKind::kOr, 0, 1, 2, 0);  // d0==1: ~sel | d1
          } else if (cv[2] != kUnknown) {
            if (cv[2] == 0) to_pair(GateKind::kAnd, 0, 1, 1, 0);  // ~sel & d0
            else to_pair(GateKind::kOr, 0, 0, 1, 0);              // sel | d0
          } else if (cv[1] != kUnknown) {
            if (cv[1] == 0) to_pair(GateKind::kAnd, 0, 0, 2, 0);  // sel & d1
            else to_pair(GateKind::kOr, 0, 1, 2, 0);              // ~sel | d1
          }
          break;
        default:
          break;  // kInput, kDff: never folded
      }
      if (!fold) continue;
      // Record which constant sources the fold consumed: every original-
      // position pin whose source is no longer read by the replacement and
      // was constant-valued. (Non-constant dropped pins — a mux data leg
      // behind a constant select — cannot influence the output and need no
      // marker.)
      const std::array<NetId, 3> old_src = {src[0], src[1], src[2]};
      folded_[g] = 1;
      op_[g] = static_cast<std::uint8_t>(new_op);
      in_[g * 3 + 0] = n0;
      in_[g * 3 + 1] = n1;
      in_[g * 3 + 2] = kNoNet;
      inv_[g] = ninv;
      for (unsigned p = 0; p < pins; ++p) {
        const NetId s = old_src[p];
        if (cval[s] == kUnknown) continue;
        if (s == n0 || s == n1) continue;  // still read
        dropped[g][p] = s;
      }
      if (new_op == GateKind::kConst0) cval[g] = 0;
      if (new_op == GateKind::kConst1) cval[g] = 1;
    }
  }

  // ---- liveness + dead sweep ----------------------------------------------
  // Roots: every declared output net (the union of all observe cones is a
  // subset of their fanin). Live folded gates keep their ORIGINAL inputs
  // alive so the fallback path reads current values; live DFFs keep their D
  // source alive.
  if (opts_.dead_sweep) {
    live_.assign(n, 0);
    std::vector<NetId> stack;
    auto mark = [&](NetId g) {
      if (g != kNoNet && !live_[g]) {
        live_[g] = 1;
        stack.push_back(g);
      }
    };
    for (NetId r : nl_->output_nets()) mark(r);
    while (!stack.empty()) {
      const NetId g = stack.back();
      stack.pop_back();
      const GateKind kind = static_cast<GateKind>(op_[g]);
      if (kind == GateKind::kDff) {
        mark(in_[g * 3]);
        continue;
      }
      for (unsigned p = 0; p < fanin_count(kind); ++p) mark(in_[g * 3 + p]);
      if (folded_[g]) {
        const GateKind ok = static_cast<GateKind>(orig_op_[g]);
        for (unsigned p = 0; p < fanin_count(ok); ++p) {
          mark(orig_in_[g * 3 + p]);
        }
      }
    }
  }

  // ---- fusion fault remap -------------------------------------------------
  // For every retargeted live pin slot, walk the bypassed original chain
  // and give each chain gate an entry forcing that slot (with the parity
  // accumulated between the chain gate and the slot's original read point).
  {
    std::vector<std::vector<Remap>> per_gate(n);
    for (NetId g = 0; g < n; ++g) {
      if (!live_[g]) continue;
      const GateKind kind = static_cast<GateKind>(orig_op_[g]);
      if (kind == GateKind::kDff) continue;
      for (unsigned p = 0; p < fanin_count(kind); ++p) {
        if (in_[g * 3 + p] == orig_in_[g * 3 + p] && !folded_[g]) continue;
        NetId b = orig_in_[g * 3 + p];
        if (!is_chain(static_cast<GateKind>(orig_op_[b]))) continue;
        const std::uint32_t slot = g * 3 + p;
        std::uint8_t parity = 0;
        while (is_chain(static_cast<GateKind>(orig_op_[b]))) {
          per_gate[b].push_back(Remap{slot, parity});
          parity ^= static_cast<GateKind>(orig_op_[b]) == GateKind::kNot;
          b = orig_in_[b * 3];
        }
      }
    }
    remap_begin_.assign(n + 1, 0);
    for (NetId g = 0; g < n; ++g) {
      remap_begin_[g + 1] = remap_begin_[g] +
                            static_cast<std::uint32_t>(per_gate[g].size());
    }
    remap_.reserve(remap_begin_[n]);
    for (NetId g = 0; g < n; ++g) {
      remap_.insert(remap_.end(), per_gate[g].begin(), per_gate[g].end());
    }
  }

  // ---- const-prop fault markers -------------------------------------------
  // Marker graph: dropped-const edges (source -> folded consumer). A fault
  // anywhere on gate u must re-activate the original evaluation of every
  // folded gate reachable from u through const nets.
  {
    std::vector<std::vector<NetId>> readers(n);  // const src -> folded gates
    for (NetId g = 0; g < n; ++g) {
      if (!folded_[g] || !live_[g]) continue;
      for (unsigned p = 0; p < 3; ++p) {
        if (dropped[g][p] != kNoNet) readers[dropped[g][p]].push_back(g);
      }
    }
    marker_begin_.assign(n + 1, 0);
    std::vector<std::vector<NetId>> lists(n);
    std::vector<std::uint8_t> seen(n, 0);
    std::vector<NetId> touched;
    for (NetId u = 0; u < n; ++u) {
      // Only const nets and folded gates can deviate transitively.
      if (readers[u].empty() && !folded_[u]) continue;
      std::vector<NetId> stack{u};
      seen[u] = 1;
      touched.push_back(u);
      while (!stack.empty()) {
        const NetId v = stack.back();
        stack.pop_back();
        for (NetId r : readers[v]) {
          if (seen[r]) continue;
          seen[r] = 1;
          touched.push_back(r);
          lists[u].push_back(r);
          // Deviation only continues past gates folded to constants.
          if (cval[r] != kUnknown) stack.push_back(r);
        }
      }
      for (NetId t : touched) seen[t] = 0;
      touched.clear();
    }
    for (NetId g = 0; g < n; ++g) {
      marker_begin_[g + 1] = marker_begin_[g] +
                             static_cast<std::uint32_t>(lists[g].size());
    }
    marker_.reserve(marker_begin_[n]);
    for (NetId g = 0; g < n; ++g) {
      marker_.insert(marker_.end(), lists[g].begin(), lists[g].end());
    }
  }
}

void CompiledNetlist::build_order_and_fanout() {
  const std::size_t n = op_.size();
  // Per-gate "union" input set: the optimized pins plus, for folded gates,
  // the original pins (the fallback path reads them, so their changes must
  // re-schedule the gate). DFF D edges are sequential and excluded.
  auto for_each_union_input = [&](NetId g, auto&& fn) {
    const GateKind kind = static_cast<GateKind>(op_[g]);
    if (kind == GateKind::kDff) return;
    for (unsigned p = 0; p < fanin_count(kind); ++p) {
      const NetId s = in_[g * 3 + p];
      if (s != kNoNet) fn(s);
    }
    if (!folded_.empty() && folded_[g]) {
      const GateKind ok = static_cast<GateKind>(orig_op_[g]);
      for (unsigned p = 0; p < fanin_count(ok); ++p) {
        const NetId s = orig_in_[g * 3 + p];
        if (s == kNoNet) continue;
        bool dup = false;
        for (unsigned q = 0; q < fanin_count(kind); ++q) {
          if (in_[g * 3 + q] == s) dup = true;
        }
        if (!dup) fn(s);
      }
    }
  };

  // Levels from the (cycle-checked) topological order, which remains valid
  // for the union graph: fusion only retargets pins to transitive original
  // ancestors. DFF outputs are sources.
  for (NetId id : nl_->topo_order()) {
    if (static_cast<GateKind>(op_[id]) == GateKind::kDff) continue;
    std::uint32_t lvl = 0;
    for_each_union_input(id, [&](NetId s) {
      lvl = std::max(lvl, level_[s] + 1);
    });
    level_[id] = lvl;
  }

  std::uint32_t max_level = 0;
  for (NetId id = 0; id < n; ++id) max_level = std::max(max_level, level_[id]);
  n_levels_ = n == 0 ? 0 : max_level + 1;

  // Level-major, id-minor order over LIVE gates via counting sort
  // (deterministic and identical in effect to any valid topological order).
  std::vector<std::uint32_t> level_count(n_levels_ + 1, 0);
  std::size_t n_live = 0;
  for (NetId id = 0; id < n; ++id) {
    if (!live_[id]) continue;
    ++level_count[level_[id] + 1];
    ++n_live;
  }
  for (unsigned l = 1; l <= n_levels_; ++l) level_count[l] += level_count[l - 1];
  order_.resize(n_live);
  {
    std::vector<std::uint32_t> cursor(level_count.begin(),
                                      level_count.end() - 1);
    for (NetId id = 0; id < n; ++id) {
      if (live_[id]) order_[cursor[level_[id]]++] = id;
    }
  }
  // Within each level, group gates by opcode (id-minor for determinism).
  // Same-level gates never read each other, so any intra-level permutation
  // is a valid evaluation order; grouping turns the full sweep's per-gate
  // opcode dispatch into long predictable runs of the same branch target.
  for (unsigned l = 0; l < n_levels_; ++l) {
    std::stable_sort(order_.begin() + level_count[l],
                     order_.begin() + level_count[l + 1],
                     [&](NetId a, NetId b) { return op_[a] < op_[b]; });
  }

  // Fanout CSR over the union edges of live gates.
  fan_begin_.assign(n + 1, 0);
  for (NetId id = 0; id < n; ++id) {
    if (!live_[id]) continue;
    for_each_union_input(id, [&](NetId s) { ++fan_begin_[s + 1]; });
  }
  for (std::size_t i = 1; i <= n; ++i) fan_begin_[i] += fan_begin_[i - 1];
  fan_.resize(fan_begin_[n]);
  {
    std::vector<std::uint32_t> cursor(fan_begin_.begin(), fan_begin_.end() - 1);
    for (NetId id = 0; id < n; ++id) {
      if (!live_[id]) continue;
      for_each_union_input(id, [&](NetId s) { fan_[cursor[s]++] = id; });
    }
  }
}

std::vector<std::uint8_t> CompiledNetlist::fanin_cone(
    const std::vector<NetId>& roots) const {
  const std::uint8_t* ops = orig_ops();
  const NetId* ins = orig_ins();
  std::vector<std::uint8_t> mask(size(), 0);
  std::vector<NetId> stack;
  for (NetId r : roots) {
    if (r < mask.size() && !mask[r]) {
      mask[r] = 1;
      stack.push_back(r);
    }
  }
  while (!stack.empty()) {
    const NetId g = stack.back();
    stack.pop_back();
    // DFF D edges are included: a fault can propagate into state and be
    // observed on a later cycle.
    const unsigned pins = fanin_count(static_cast<GateKind>(ops[g]));
    for (unsigned p = 0; p < pins; ++p) {
      const NetId src = ins[g * 3 + p];
      if (src != kNoNet && !mask[src]) {
        mask[src] = 1;
        stack.push_back(src);
      }
    }
  }
  return mask;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

void CompiledNetlist::serialize(common::ByteWriter& w) const {
  w.put_u32(kSerialVersion);
  w.put_bool(opts_.const_prop);
  w.put_bool(opts_.fuse_inverters);
  w.put_bool(opts_.dead_sweep);
  w.put_u32(n_levels_);
  w.put_vec_u8(op_);
  w.put_vec_u32(in_);
  w.put_vec_u8(inv_);
  w.put_vec_u8(orig_op_);
  w.put_vec_u32(orig_in_);
  w.put_vec_u8(folded_);
  w.put_vec_u8(live_);
  w.put_vec_u32(level_);
  w.put_vec_u32(order_);
  w.put_vec_u32(fan_begin_);
  w.put_vec_u32(fan_);
  w.put_vec_u32(dffs_);
  w.put_vec_u32(remap_begin_);
  w.put_u64(remap_.size());
  for (const Remap& rm : remap_) {
    w.put_u32(rm.slot);
    w.put_u8(rm.invert);
  }
  w.put_vec_u32(marker_begin_);
  w.put_vec_u32(marker_);
}

std::unique_ptr<CompiledNetlist> CompiledNetlist::deserialize(
    const Netlist& nl, common::ByteReader& r) {
  if (r.get_u32() != kSerialVersion) return nullptr;
  CompileOptions opts;
  opts.const_prop = r.get_bool();
  opts.fuse_inverters = r.get_bool();
  opts.dead_sweep = r.get_bool();
  auto cn = std::unique_ptr<CompiledNetlist>(
      new CompiledNetlist(nl, opts, DeserializeTag{}));
  cn->n_levels_ = r.get_u32();
  cn->op_ = r.get_vec_u8();
  cn->in_ = r.get_vec_u32();
  cn->inv_ = r.get_vec_u8();
  cn->orig_op_ = r.get_vec_u8();
  cn->orig_in_ = r.get_vec_u32();
  cn->folded_ = r.get_vec_u8();
  cn->live_ = r.get_vec_u8();
  cn->level_ = r.get_vec_u32();
  cn->order_ = r.get_vec_u32();
  cn->fan_begin_ = r.get_vec_u32();
  cn->fan_ = r.get_vec_u32();
  cn->dffs_ = r.get_vec_u32();
  cn->remap_begin_ = r.get_vec_u32();
  const std::size_t n_remap = r.get_count(5);
  cn->remap_.reserve(n_remap);
  for (std::size_t i = 0; i < n_remap; ++i) {
    Remap rm;
    rm.slot = r.get_u32();
    rm.invert = r.get_u8();
    cn->remap_.push_back(rm);
  }
  cn->marker_begin_ = r.get_vec_u32();
  cn->marker_ = r.get_vec_u32();
  if (!r.ok()) return nullptr;

  // Structural validation: the evaluators index these tables without bounds
  // checks, so a blob that decoded cleanly but names out-of-range gates,
  // inconsistent sizes, or broken CSR offsets is rejected rather than
  // trusted. (The store's payload hash makes this unreachable for honest
  // corruption; it guards key collisions and hand-edited files.)
  const std::size_t n = nl.size();
  const bool any = opts.any();
  auto ids_ok = [n](const std::vector<NetId>& v, bool allow_no_net = false) {
    for (const NetId id : v) {
      if (id >= n && !(allow_no_net && id == kNoNet)) return false;
    }
    return true;
  };
  auto csr_ok = [n](const std::vector<std::uint32_t>& begin,
                    std::size_t entries) {
    if (begin.size() != n + 1 || begin.front() != 0 ||
        begin.back() != entries) {
      return false;
    }
    for (std::size_t i = 0; i + 1 < begin.size(); ++i) {
      if (begin[i] > begin[i + 1]) return false;
    }
    return true;
  };
  if (cn->op_.size() != n || cn->in_.size() != n * 3 ||
      cn->inv_.size() != n || cn->live_.size() != n ||
      cn->level_.size() != n) {
    return nullptr;
  }
  if (any ? (cn->orig_op_.size() != n || cn->orig_in_.size() != n * 3 ||
             cn->folded_.size() != n)
          : (!cn->orig_op_.empty() || !cn->orig_in_.empty() ||
             !cn->folded_.empty())) {
    return nullptr;
  }
  if (!ids_ok(cn->in_, /*allow_no_net=*/true) ||
      !ids_ok(cn->orig_in_, /*allow_no_net=*/true) || !ids_ok(cn->order_) ||
      !ids_ok(cn->fan_) || !ids_ok(cn->dffs_) || !ids_ok(cn->marker_)) {
    return nullptr;
  }
  if (!csr_ok(cn->fan_begin_, cn->fan_.size())) return nullptr;
  if (any) {
    if (!csr_ok(cn->remap_begin_, cn->remap_.size()) ||
        !csr_ok(cn->marker_begin_, cn->marker_.size())) {
      return nullptr;
    }
    for (const Remap& rm : cn->remap_) {
      if (rm.slot >= n * 3) return nullptr;
    }
  } else if (!cn->remap_begin_.empty() || !cn->remap_.empty() ||
             !cn->marker_begin_.empty() || !cn->marker_.empty()) {
    return nullptr;
  }
  for (const NetId g : cn->order_) {
    if (cn->level_[g] >= cn->n_levels_) return nullptr;
  }
  return cn;
}

// ---------------------------------------------------------------------------
// CompiledEvaluatorT
// ---------------------------------------------------------------------------

template <unsigned W>
CompiledEvaluatorT<W>::CompiledEvaluatorT(
    std::shared_ptr<const CompiledNetlist> owned, const CompiledNetlist& cn,
    bool event_driven)
    : owned_(std::move(owned)),
      cn_(&cn),
      event_driven_(event_driven),
      opt_(cn.options().any()),
      values_(cn.size() * W, 0),
      inputs_(cn.size() * W, 0),
      state_(cn.size() * W, 0),
      out_f0_(cn.size() * W, 0),
      out_f1_(cn.size() * W, 0),
      pin_f0_(cn.size() * 3 * W, 0),
      pin_f1_(cn.size() * 3 * W, 0),
      out_forced_(cn.size(), 0),
      pin_forced_(cn.size(), 0),
      pin_listed_(cn.size() * 3, 0),
      fallback_cnt_(opt_ ? cn.size() : 0, 0),
      dispatch_(cn.size(), 0),
      queue_(cn.levels()),
      queued_(cn.size(), 0) {}

template <unsigned W>
CompiledEvaluatorT<W>::CompiledEvaluatorT(const CompiledNetlist& cn,
                                          bool event_driven)
    : CompiledEvaluatorT(nullptr, cn, event_driven) {}

template <unsigned W>
CompiledEvaluatorT<W>::CompiledEvaluatorT(const Netlist& nl, bool event_driven)
    : CompiledEvaluatorT(std::make_shared<CompiledNetlist>(nl), event_driven) {}

template <unsigned W>
CompiledEvaluatorT<W>::CompiledEvaluatorT(
    std::shared_ptr<const CompiledNetlist> cn, bool event_driven)
    : CompiledEvaluatorT(cn, *cn, event_driven) {}

template <unsigned W>
void CompiledEvaluatorT<W>::set_bus(const Bus& bus, std::uint64_t value) {
  for (std::size_t i = 0; i < bus.size(); ++i) {
    set_input(bus[i], (value >> i) & 1u);
  }
}

template <unsigned W>
std::uint64_t CompiledEvaluatorT<W>::bus_value(const Bus& bus,
                                               unsigned lane) const {
  const unsigned w = lane / 64, bit = lane % 64;
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < bus.size(); ++i) {
    out |= ((values_[bus[i] * W + w] >> bit) & 1u) << i;
  }
  return out;
}

template <unsigned W>
void CompiledEvaluatorT<W>::schedule(NetId g) {
  if (!queued_[g]) {
    queued_[g] = 1;
    queue_[cn_->level_[g]].push_back(g);
    ++pending_;
  }
}

template <unsigned W>
void CompiledEvaluatorT<W>::invalidate_undo() {
  undo_active_ = false;
  undo_.clear();
}

template <unsigned W>
void CompiledEvaluatorT<W>::set_input_block(NetId net,
                                            const std::uint64_t* words) {
  bool changed = false;
  for (unsigned i = 0; i < W; ++i) {
    changed |= inputs_[net * W + i] != words[i];
  }
  if (!changed) return;
  for (unsigned i = 0; i < W; ++i) inputs_[net * W + i] = words[i];
  // The baseline shifts under the injected faults; teardown must
  // re-propagate instead of replaying stale blocks.
  if (has_faults_) invalidate_undo();
  if (event_driven_ && !full_pending_) schedule_live(net);
}

// Re-derives a gate's dispatch byte from its current force state. Called on
// every per-gate transition (first force / teardown); the touched lists keep
// the number of calls proportional to the active fault set.
template <unsigned W>
void CompiledEvaluatorT<W>::update_dispatch(NetId g) {
  const bool pf = pin_forced_[g] != 0;
  const bool fb = opt_ && fallback_cnt_[g] != 0;
  std::uint8_t m = 0;
  if (opt_ && cn_->folded_[g] && (pf || fb)) {
    m = kDispatchOrig;
  } else if (pf) {
    m = kDispatchPins;
  }
  if (out_forced_[g]) m |= kDispatchOut;
  dispatch_[g] = m;
}

template <unsigned W>
void CompiledEvaluatorT<W>::force_slot(std::uint32_t slot, bool stuck_value,
                                       const std::uint64_t* lane_mask) {
  // List on the explicit flag, not on "blocks were zero": release_block can
  // zero an already-listed slot, and re-listing it would double-count
  // pin_forced_ (underflowing at teardown).
  if (!pin_listed_[slot]) {
    pin_listed_[slot] = 1;
    touched_pin_.push_back(slot);
    ++pin_forced_[slot / 3];
    update_dispatch(slot / 3);
  }
  std::uint64_t* f = stuck_value ? &pin_f1_[slot * W] : &pin_f0_[slot * W];
  for (unsigned i = 0; i < W; ++i) f[i] |= lane_mask[i];
}

template <unsigned W>
void CompiledEvaluatorT<W>::inject_block(const Site& site, bool stuck_value,
                                         const std::uint64_t* lane_mask) {
  if (!has_faults_) {
    // Undo-log teardown is only sound when a fault-free baseline exists in
    // values_: at least one eval() ran, and no input/state events are still
    // waiting to be consumed (those would be replayed away with the fault).
    undo_active_ = event_driven_ && !full_pending_ && pending_ == 0;
    has_faults_ = true;
  }
  if (site.is_output()) {
    // Same listing discipline as force_slot: the flag, not the block
    // contents, decides whether the gate joins touched_out_ (release_block
    // can zero a listed gate's blocks without delisting it).
    if (!out_forced_[site.gate]) {
      out_forced_[site.gate] = 1;
      touched_out_.push_back(site.gate);
      update_dispatch(site.gate);
    }
    std::uint64_t* f = stuck_value ? &out_f1_[site.gate * W]
                                   : &out_f0_[site.gate * W];
    for (unsigned i = 0; i < W; ++i) f[i] |= lane_mask[i];
  } else {
    force_slot(site.gate * 3 + site.pin, stuck_value, lane_mask);
  }
  if (event_driven_ && !full_pending_) schedule_live(site.gate);
  if (!opt_) return;

  // Fusion remap: copy the force (with parity) onto every pin slot that was
  // retargeted past this gate. A pin-site force on a chain gate reaches its
  // consumers through the gate's own function, hence the extra inversion
  // for kNot.
  const std::uint32_t rb = cn_->remap_begin_[site.gate];
  const std::uint32_t re = cn_->remap_begin_[site.gate + 1];
  if (re != rb) {
    const unsigned extra =
        site.is_output()
            ? 0u
            : (static_cast<GateKind>(cn_->orig_ops()[site.gate]) ==
                       GateKind::kNot
                   ? 1u
                   : 0u);
    for (std::uint32_t r = rb; r < re; ++r) {
      const CompiledNetlist::Remap& m = cn_->remap_[r];
      const NetId target = m.slot / 3;
      if (!cn_->live_[target]) continue;
      force_slot(m.slot, stuck_value ^ (m.invert ^ extra),  lane_mask);
      if (event_driven_ && !full_pending_) schedule(target);
    }
  }

  // Const-prop markers: a fault on a consumed constant re-activates the
  // original evaluation of every transitively folded consumer (which then
  // reads its original, still-live inputs directly — no force value
  // needed).
  const std::uint32_t mb = cn_->marker_begin_[site.gate];
  const std::uint32_t me = cn_->marker_begin_[site.gate + 1];
  for (std::uint32_t m = mb; m < me; ++m) {
    const NetId target = cn_->marker_[m];
    ++fallback_cnt_[target];
    touched_fallback_.push_back(target);
    update_dispatch(target);
    if (event_driven_ && !full_pending_) schedule(target);
  }
}

template <unsigned W>
void CompiledEvaluatorT<W>::release_block(const Site& site,
                                          const std::uint64_t* lane_mask) {
  if (!has_faults_) return;
  auto strip = [&](std::uint64_t* f0, std::uint64_t* f1) {
    for (unsigned i = 0; i < W; ++i) {
      f0[i] &= ~lane_mask[i];
      f1[i] &= ~lane_mask[i];
    }
  };
  if (site.is_output()) {
    strip(&out_f0_[site.gate * W], &out_f1_[site.gate * W]);
  } else {
    strip(&pin_f0_[(site.gate * 3 + site.pin) * W],
          &pin_f1_[(site.gate * 3 + site.pin) * W]);
  }
  if (event_driven_ && !full_pending_) schedule_live(site.gate);
  if (!opt_) return;
  // Strip the fusion-remapped copies too. Both polarities go, so the remap
  // inversion parity is irrelevant. Const-prop fallback activations are
  // deliberately left in place: with zero forces the original evaluation
  // computes the same value as the folded one, and keeping the refcount
  // symmetric with inject/clear avoids underflow at teardown.
  const std::uint32_t rb = cn_->remap_begin_[site.gate];
  const std::uint32_t re = cn_->remap_begin_[site.gate + 1];
  for (std::uint32_t r = rb; r < re; ++r) {
    const CompiledNetlist::Remap& m = cn_->remap_[r];
    const NetId target = m.slot / 3;
    if (!cn_->live_[target]) continue;
    strip(&pin_f0_[m.slot * W], &pin_f1_[m.slot * W]);
    if (event_driven_ && !full_pending_) schedule(target);
  }
}

template <unsigned W>
void CompiledEvaluatorT<W>::clear_faults() {
  if (!has_faults_) return;
  if (undo_active_) {
    // Every block perturbed since injection was recorded; restoring them in
    // reverse overwrite order reinstates the fault-free baseline exactly.
    for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
      for (unsigned i = 0; i < W; ++i) {
        values_[it->net * W + i] = it->prev[i];
      }
    }
  } else if (event_driven_ && !full_pending_) {
    // No replayable log (inputs/state moved, or a full sweep ran while the
    // faults were active): re-propagate from the fault sites instead.
    for (NetId g : touched_out_) schedule_live(g);
    for (std::uint32_t slot : touched_pin_) schedule_live(slot / 3);
    for (NetId g : touched_fallback_) schedule(g);
  }
  for (NetId g : touched_out_) {
    for (unsigned i = 0; i < W; ++i) {
      out_f0_[g * W + i] = out_f1_[g * W + i] = 0;
    }
    out_forced_[g] = 0;
    update_dispatch(g);
  }
  for (std::uint32_t slot : touched_pin_) {
    for (unsigned i = 0; i < W; ++i) {
      pin_f0_[slot * W + i] = pin_f1_[slot * W + i] = 0;
    }
    pin_listed_[slot] = 0;
    --pin_forced_[slot / 3];
    update_dispatch(slot / 3);
  }
  for (NetId g : touched_fallback_) {
    --fallback_cnt_[g];
    update_dispatch(g);
  }
  touched_out_.clear();
  touched_pin_.clear();
  touched_fallback_.clear();
  invalidate_undo();
  has_faults_ = false;
}

// Computes the optimized form with per-pin inversion; kPinF selects whether
// pin forces are applied (post-inversion, matching what the pin would have
// read from the pre-fusion source).
template <unsigned W>
inline void CompiledEvaluatorT<W>::compute_plain(
    NetId g, std::uint64_t* SBST_RESTRICT out) const {
  const NetId* in = &cn_->in_[g * 3];
  const std::uint8_t inv = cn_->inv_[g];
  auto pin = [&](unsigned p, std::uint64_t* dst) SBST_ALWAYS_INLINE {
    const std::uint64_t* v = &values_[in[p] * W];
    const std::uint64_t m = (inv >> p) & 1u ? ~std::uint64_t{0} : 0;
    for (unsigned i = 0; i < W; ++i) dst[i] = v[i] ^ m;
  };
  std::uint64_t a[W], b[W];
  switch (static_cast<GateKind>(cn_->op_[g])) {
    case GateKind::kInput:
      for (unsigned i = 0; i < W; ++i) out[i] = inputs_[g * W + i];
      break;
    case GateKind::kConst0:
      for (unsigned i = 0; i < W; ++i) out[i] = 0;
      break;
    case GateKind::kConst1:
      for (unsigned i = 0; i < W; ++i) out[i] = ~std::uint64_t{0};
      break;
    case GateKind::kDff:
      // Matches the reference evaluator: DFFs ignore pin forces on D.
      for (unsigned i = 0; i < W; ++i) out[i] = state_[g * W + i];
      break;
    case GateKind::kBuf:
      pin(0, out);
      break;
    case GateKind::kNot:
      pin(0, a);
      for (unsigned i = 0; i < W; ++i) out[i] = ~a[i];
      break;
    case GateKind::kAnd:
      pin(0, a);
      pin(1, b);
      for (unsigned i = 0; i < W; ++i) out[i] = a[i] & b[i];
      break;
    case GateKind::kOr:
      pin(0, a);
      pin(1, b);
      for (unsigned i = 0; i < W; ++i) out[i] = a[i] | b[i];
      break;
    case GateKind::kNand:
      pin(0, a);
      pin(1, b);
      for (unsigned i = 0; i < W; ++i) out[i] = ~(a[i] & b[i]);
      break;
    case GateKind::kNor:
      pin(0, a);
      pin(1, b);
      for (unsigned i = 0; i < W; ++i) out[i] = ~(a[i] | b[i]);
      break;
    case GateKind::kXor:
      pin(0, a);
      pin(1, b);
      for (unsigned i = 0; i < W; ++i) out[i] = a[i] ^ b[i];
      break;
    case GateKind::kXnor:
      pin(0, a);
      pin(1, b);
      for (unsigned i = 0; i < W; ++i) out[i] = ~(a[i] ^ b[i]);
      break;
    case GateKind::kMux2: {
      std::uint64_t sel[W];
      pin(0, sel);
      pin(1, a);
      pin(2, b);
      for (unsigned i = 0; i < W; ++i) {
        out[i] = (sel[i] & b[i]) | (~sel[i] & a[i]);
      }
      break;
    }
    default:
      throw std::logic_error("compiled eval: unknown gate kind");
  }
}

// Optimized form with pin forces applied after inversion.
template <unsigned W>
inline void CompiledEvaluatorT<W>::compute(
    NetId g, std::uint64_t* SBST_RESTRICT out) const {
  const NetId* in = &cn_->in_[g * 3];
  const std::uint8_t inv = cn_->inv_[g];
  auto pin = [&](unsigned p, std::uint64_t* dst) SBST_ALWAYS_INLINE {
    const std::uint64_t* v = &values_[in[p] * W];
    const std::uint64_t* pf0 = &pin_f0_[(g * 3 + p) * W];
    const std::uint64_t* pf1 = &pin_f1_[(g * 3 + p) * W];
    const std::uint64_t m = (inv >> p) & 1u ? ~std::uint64_t{0} : 0;
    for (unsigned i = 0; i < W; ++i) {
      dst[i] = ((v[i] ^ m) | pf1[i]) & ~pf0[i];
    }
  };
  std::uint64_t a[W], b[W];
  switch (static_cast<GateKind>(cn_->op_[g])) {
    case GateKind::kInput:
      for (unsigned i = 0; i < W; ++i) out[i] = inputs_[g * W + i];
      break;
    case GateKind::kConst0:
      for (unsigned i = 0; i < W; ++i) out[i] = 0;
      break;
    case GateKind::kConst1:
      for (unsigned i = 0; i < W; ++i) out[i] = ~std::uint64_t{0};
      break;
    case GateKind::kDff:
      for (unsigned i = 0; i < W; ++i) out[i] = state_[g * W + i];
      break;
    case GateKind::kBuf:
      pin(0, out);
      break;
    case GateKind::kNot:
      pin(0, a);
      for (unsigned i = 0; i < W; ++i) out[i] = ~a[i];
      break;
    case GateKind::kAnd:
      pin(0, a);
      pin(1, b);
      for (unsigned i = 0; i < W; ++i) out[i] = a[i] & b[i];
      break;
    case GateKind::kOr:
      pin(0, a);
      pin(1, b);
      for (unsigned i = 0; i < W; ++i) out[i] = a[i] | b[i];
      break;
    case GateKind::kNand:
      pin(0, a);
      pin(1, b);
      for (unsigned i = 0; i < W; ++i) out[i] = ~(a[i] & b[i]);
      break;
    case GateKind::kNor:
      pin(0, a);
      pin(1, b);
      for (unsigned i = 0; i < W; ++i) out[i] = ~(a[i] | b[i]);
      break;
    case GateKind::kXor:
      pin(0, a);
      pin(1, b);
      for (unsigned i = 0; i < W; ++i) out[i] = a[i] ^ b[i];
      break;
    case GateKind::kXnor:
      pin(0, a);
      pin(1, b);
      for (unsigned i = 0; i < W; ++i) out[i] = ~(a[i] ^ b[i]);
      break;
    case GateKind::kMux2: {
      std::uint64_t sel[W];
      pin(0, sel);
      pin(1, a);
      pin(2, b);
      for (unsigned i = 0; i < W; ++i) {
        out[i] = (sel[i] & b[i]) | (~sel[i] & a[i]);
      }
      break;
    }
    default:
      throw std::logic_error("compiled eval: unknown gate kind");
  }
}

// Original (pre-optimization) form: original opcode and inputs, pin forces
// at original positions, NO inversion masks — exactly the unoptimized
// force-aware compute. Runs for const-folded gates while a pin force or a
// const marker is active on them.
template <unsigned W>
inline void CompiledEvaluatorT<W>::compute_orig(
    NetId g, std::uint64_t* SBST_RESTRICT out) const {
  const NetId* in = &cn_->orig_ins()[g * 3];
  auto pin = [&](unsigned p, std::uint64_t* dst) SBST_ALWAYS_INLINE {
    const std::uint64_t* v = &values_[in[p] * W];
    const std::uint64_t* pf0 = &pin_f0_[(g * 3 + p) * W];
    const std::uint64_t* pf1 = &pin_f1_[(g * 3 + p) * W];
    for (unsigned i = 0; i < W; ++i) {
      dst[i] = (v[i] | pf1[i]) & ~pf0[i];
    }
  };
  std::uint64_t a[W], b[W];
  switch (static_cast<GateKind>(cn_->orig_ops()[g])) {
    case GateKind::kBuf:
      pin(0, out);
      break;
    case GateKind::kNot:
      pin(0, a);
      for (unsigned i = 0; i < W; ++i) out[i] = ~a[i];
      break;
    case GateKind::kAnd:
      pin(0, a);
      pin(1, b);
      for (unsigned i = 0; i < W; ++i) out[i] = a[i] & b[i];
      break;
    case GateKind::kOr:
      pin(0, a);
      pin(1, b);
      for (unsigned i = 0; i < W; ++i) out[i] = a[i] | b[i];
      break;
    case GateKind::kNand:
      pin(0, a);
      pin(1, b);
      for (unsigned i = 0; i < W; ++i) out[i] = ~(a[i] & b[i]);
      break;
    case GateKind::kNor:
      pin(0, a);
      pin(1, b);
      for (unsigned i = 0; i < W; ++i) out[i] = ~(a[i] | b[i]);
      break;
    case GateKind::kXor:
      pin(0, a);
      pin(1, b);
      for (unsigned i = 0; i < W; ++i) out[i] = a[i] ^ b[i];
      break;
    case GateKind::kXnor:
      pin(0, a);
      pin(1, b);
      for (unsigned i = 0; i < W; ++i) out[i] = ~(a[i] ^ b[i]);
      break;
    case GateKind::kMux2: {
      std::uint64_t sel[W];
      pin(0, sel);
      pin(1, a);
      pin(2, b);
      for (unsigned i = 0; i < W; ++i) {
        out[i] = (sel[i] & b[i]) | (~sel[i] & a[i]);
      }
      break;
    }
    default:
      // Only logic gates are ever const-folded.
      throw std::logic_error("compiled eval: fallback on non-logic gate");
  }
}

template <unsigned W>
template <bool kForces>
void CompiledEvaluatorT<W>::full_sweep() {
  // The unforced paths write straight into the gate's values_ block: routing
  // them through a shared local buffer merges the stores of every opcode
  // case behind one phi, which blocks SLP vectorization of the W-word loops.
  for (NetId g : cn_->order_) {
    if constexpr (!kForces) {
      compute_plain(g, &values_[g * W]);
    } else {
      // Per-gate fast path: with hundreds of lane-packed faults active, most
      // gates still carry no force at all — one predictable byte test skips
      // every force load for them.
      const std::uint8_t m = dispatch_[g];
      if (m == 0) {
        compute_plain(g, &values_[g * W]);
      } else {
        std::uint64_t v[W];
        if (m & kDispatchOrig) {
          compute_orig(g, v);
        } else if (m & kDispatchPins) {
          compute(g, v);
        } else {
          compute_plain(g, v);
        }
        if (m & kDispatchOut) {
          const std::uint64_t* f0 = &out_f0_[g * W];
          const std::uint64_t* f1 = &out_f1_[g * W];
          for (unsigned i = 0; i < W; ++i) v[i] = (v[i] | f1[i]) & ~f0[i];
        }
        for (unsigned i = 0; i < W; ++i) values_[g * W + i] = v[i];
      }
    }
  }
}

template <unsigned W>
void CompiledEvaluatorT<W>::full_eval() {
  if (has_faults_) {
    full_sweep<true>();
    // values_ now carry faulty blocks nobody recorded; a later undo replay
    // would restore garbage.
    invalidate_undo();
  } else {
    full_sweep<false>();
  }
  // The sweep subsumes any queued events.
  for (auto& q : queue_) {
    for (NetId g : q) queued_[g] = 0;
    q.clear();
  }
  pending_ = 0;
  full_pending_ = false;
  gate_evals_ += cn_->order_.size();
}

template <unsigned W>
void CompiledEvaluatorT<W>::event_eval() {
  const std::size_t n_levels = queue_.size();
  const bool forces = has_faults_;
  std::uint64_t v[W];
  for (std::size_t lvl = 0; lvl < n_levels && pending_ > 0; ++lvl) {
    std::vector<NetId>& q = queue_[lvl];
    // Fanout targets land on strictly higher levels, so q is stable here.
    for (NetId g : q) {
      queued_[g] = 0;
      --pending_;
      ++gate_evals_;
      if (!forces) {
        compute_plain(g, v);
      } else {
        const std::uint8_t m = dispatch_[g];
        if (m == 0) {
          compute_plain(g, v);
        } else {
          if (m & kDispatchOrig) {
            compute_orig(g, v);
          } else if (m & kDispatchPins) {
            compute(g, v);
          } else {
            compute_plain(g, v);
          }
          if (m & kDispatchOut) {
            const std::uint64_t* f0 = &out_f0_[g * W];
            const std::uint64_t* f1 = &out_f1_[g * W];
            for (unsigned i = 0; i < W; ++i) v[i] = (v[i] | f1[i]) & ~f0[i];
          }
        }
      }
      std::uint64_t* cur = &values_[g * W];
      bool changed = false;
      for (unsigned i = 0; i < W; ++i) changed |= v[i] != cur[i];
      if (!changed) continue;
      if (undo_active_) {
        UndoEntry e;
        e.net = g;
        for (unsigned i = 0; i < W; ++i) e.prev[i] = cur[i];
        undo_.push_back(e);
      }
      for (unsigned i = 0; i < W; ++i) cur[i] = v[i];
      const std::uint32_t begin = cn_->fan_begin_[g];
      const std::uint32_t end = cn_->fan_begin_[g + 1];
      for (std::uint32_t e = begin; e < end; ++e) schedule(cn_->fan_[e]);
    }
    q.clear();
  }
}

template <unsigned W>
void CompiledEvaluatorT<W>::eval() {
  if (!event_driven_ || full_pending_) {
    full_eval();
  } else {
    event_eval();
  }
}

template <unsigned W>
void CompiledEvaluatorT<W>::step() {
  eval();
  bool state_changed = false;
  for (NetId q : cn_->dffs_) {
    const NetId d = cn_->in_[q * 3];
    if (d == kNoNet) {
      throw std::logic_error("eval: DFF with unconnected D input");
    }
    bool changed = false;
    for (unsigned i = 0; i < W; ++i) {
      changed |= state_[q * W + i] != values_[d * W + i];
    }
    if (changed) {
      for (unsigned i = 0; i < W; ++i) state_[q * W + i] = values_[d * W + i];
      state_changed = true;
      if (event_driven_ && !full_pending_) schedule(q);
    }
  }
  if (state_changed && has_faults_) invalidate_undo();
}

template <unsigned W>
void CompiledEvaluatorT<W>::reset_state(bool value) {
  const std::uint64_t w = value ? ~std::uint64_t{0} : 0;
  bool state_changed = false;
  for (NetId q : cn_->dffs_) {
    bool changed = false;
    for (unsigned i = 0; i < W; ++i) changed |= state_[q * W + i] != w;
    if (changed) {
      for (unsigned i = 0; i < W; ++i) state_[q * W + i] = w;
      state_changed = true;
      if (event_driven_ && !full_pending_) schedule(q);
    }
  }
  if (state_changed && has_faults_) invalidate_undo();
}

template class CompiledEvaluatorT<1>;
template class CompiledEvaluatorT<4>;

}  // namespace sbst::netlist
