#include "netlist/netlist.hpp"

#include <cassert>
#include <stdexcept>

#include "common/bits.hpp"
#include "common/hash.hpp"

namespace sbst::netlist {

unsigned fanin_count(GateKind kind) {
  switch (kind) {
    case GateKind::kInput:
    case GateKind::kConst0:
    case GateKind::kConst1:
      return 0;
    case GateKind::kBuf:
    case GateKind::kNot:
    case GateKind::kDff:
      return 1;
    case GateKind::kMux2:
      return 3;
    default:
      return 2;
  }
}

const char* kind_name(GateKind kind) {
  switch (kind) {
    case GateKind::kInput: return "INPUT";
    case GateKind::kConst0: return "CONST0";
    case GateKind::kConst1: return "CONST1";
    case GateKind::kBuf: return "BUF";
    case GateKind::kNot: return "NOT";
    case GateKind::kAnd: return "AND";
    case GateKind::kOr: return "OR";
    case GateKind::kNand: return "NAND";
    case GateKind::kNor: return "NOR";
    case GateKind::kXor: return "XOR";
    case GateKind::kXnor: return "XNOR";
    case GateKind::kMux2: return "MUX2";
    case GateKind::kDff: return "DFF";
  }
  return "?";
}

NetId Netlist::add(GateKind kind, NetId a, NetId b, NetId c) {
  const NetId id = static_cast<NetId>(gates_.size());
  Gate g;
  g.kind = kind;
  g.in = {a, b, c};
  const unsigned n = fanin_count(kind);
  for (unsigned i = 0; i < n && kind != GateKind::kDff; ++i) {
    if (g.in[i] == kNoNet || g.in[i] >= id) {
      throw std::invalid_argument("netlist: gate input not yet defined");
    }
  }
  gates_.push_back(g);
  topo_cache_.clear();
  return id;
}

NetId Netlist::input(const std::string& name) {
  const NetId id = add(GateKind::kInput);
  input_nets_.push_back(id);
  input_port_index_[name] = input_ports_.size();
  input_ports_.push_back({name, {id}});
  return id;
}

Bus Netlist::input_bus(const std::string& name, unsigned width) {
  Bus bus(width);
  for (unsigned i = 0; i < width; ++i) {
    const NetId id = add(GateKind::kInput);
    input_nets_.push_back(id);
    bus[i] = id;
  }
  input_port_index_[name] = input_ports_.size();
  input_ports_.push_back({name, bus});
  return bus;
}

NetId Netlist::constant(bool value) {
  NetId& cached = value ? const1_ : const0_;
  if (cached == kNoNet) {
    cached = add(value ? GateKind::kConst1 : GateKind::kConst0);
  }
  return cached;
}

NetId Netlist::dff(const std::string& name) {
  const NetId id = add(GateKind::kDff);
  dff_nets_.push_back(id);
  if (!name.empty()) {
    // DFF outputs can be exposed for state inspection in tests.
    output_port_index_.try_emplace("dff." + name, output_ports_.size());
  }
  return id;
}

void Netlist::connect_dff(NetId q, NetId d) {
  if (q >= gates_.size() || gates_[q].kind != GateKind::kDff) {
    throw std::invalid_argument("netlist: connect_dff on non-DFF net");
  }
  if (d == kNoNet || d >= gates_.size()) {
    throw std::invalid_argument("netlist: connect_dff with undefined D");
  }
  gates_[q].in[0] = d;
}

Bus Netlist::dff_bus(const std::string& name, unsigned width) {
  Bus bus(width);
  for (unsigned i = 0; i < width; ++i) {
    bus[i] = dff(name.empty() ? std::string{} : name + "[" +
                                                    std::to_string(i) + "]");
  }
  return bus;
}

NetId Netlist::reduce(GateKind kind, const Bus& nets) {
  if (nets.empty()) throw std::invalid_argument("netlist: empty reduction");
  Bus level = nets;
  while (level.size() > 1) {
    Bus next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(add(kind, level[i], level[i + 1]));
    }
    if (level.size() % 2) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

NetId Netlist::and_reduce(const Bus& nets) { return reduce(GateKind::kAnd, nets); }
NetId Netlist::or_reduce(const Bus& nets) { return reduce(GateKind::kOr, nets); }
NetId Netlist::xor_reduce(const Bus& nets) { return reduce(GateKind::kXor, nets); }

Bus Netlist::not_bus(const Bus& a) {
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = not_(a[i]);
  return out;
}

static void check_widths(const Bus& a, const Bus& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("netlist: bus width mismatch");
  }
}

Bus Netlist::and_bus(const Bus& a, const Bus& b) {
  check_widths(a, b);
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = and_(a[i], b[i]);
  return out;
}

Bus Netlist::or_bus(const Bus& a, const Bus& b) {
  check_widths(a, b);
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = or_(a[i], b[i]);
  return out;
}

Bus Netlist::xor_bus(const Bus& a, const Bus& b) {
  check_widths(a, b);
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = xor_(a[i], b[i]);
  return out;
}

Bus Netlist::nor_bus(const Bus& a, const Bus& b) {
  check_widths(a, b);
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = nor_(a[i], b[i]);
  return out;
}

Bus Netlist::mux2_bus(NetId sel, const Bus& d0, const Bus& d1) {
  check_widths(d0, d1);
  Bus out(d0.size());
  for (std::size_t i = 0; i < d0.size(); ++i) out[i] = mux2(sel, d0[i], d1[i]);
  return out;
}

Bus Netlist::const_bus(std::uint64_t value, unsigned width) {
  Bus out(width);
  for (unsigned i = 0; i < width; ++i) out[i] = constant(bit(value, i));
  return out;
}

void Netlist::output(const std::string& name, NetId net) {
  if (net >= gates_.size()) {
    throw std::invalid_argument("netlist: output of undefined net");
  }
  output_port_index_[name] = output_ports_.size();
  output_ports_.push_back({name, {net}});
}

void Netlist::output_bus(const std::string& name, const Bus& bus) {
  for (NetId n : bus) {
    if (n >= gates_.size()) {
      throw std::invalid_argument("netlist: output of undefined net");
    }
  }
  output_port_index_[name] = output_ports_.size();
  output_ports_.push_back({name, bus});
}

std::vector<NetId> Netlist::output_nets() const {
  std::vector<NetId> nets;
  for (const Port& p : output_ports_) {
    nets.insert(nets.end(), p.nets.begin(), p.nets.end());
  }
  return nets;
}

const Bus& Netlist::input_port(const std::string& name) const {
  auto it = input_port_index_.find(name);
  if (it == input_port_index_.end()) {
    throw std::out_of_range("netlist: no input port '" + name + "'");
  }
  return input_ports_[it->second].nets;
}

const Bus& Netlist::output_port(const std::string& name) const {
  auto it = output_port_index_.find(name);
  if (it == output_port_index_.end()) {
    throw std::out_of_range("netlist: no output port '" + name + "'");
  }
  return output_ports_[it->second].nets;
}

bool Netlist::has_input_port(const std::string& name) const {
  return input_port_index_.count(name) != 0;
}

std::vector<std::uint32_t> Netlist::fanout_counts() const {
  std::vector<std::uint32_t> counts(gates_.size(), 0);
  for (const Gate& g : gates_) {
    const unsigned n = fanin_count(g.kind);
    for (unsigned i = 0; i < n; ++i) {
      if (g.in[i] != kNoNet) ++counts[g.in[i]];
    }
  }
  return counts;
}

const std::vector<NetId>& Netlist::topo_order() const {
  if (!topo_cache_.empty() || gates_.empty()) return topo_cache_;
  // DFF outputs act as sources: their D edge is sequential, not
  // combinational, so it is excluded from the ordering.
  std::vector<std::uint32_t> pending(gates_.size(), 0);
  for (NetId id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    if (g.kind == GateKind::kDff) continue;
    pending[id] = fanin_count(g.kind);
  }
  std::vector<NetId> ready;
  ready.reserve(gates_.size());
  for (NetId id = 0; id < gates_.size(); ++id) {
    if (pending[id] == 0) ready.push_back(id);
  }
  // Build fanout adjacency over combinational edges.
  std::vector<std::vector<NetId>> fanout(gates_.size());
  for (NetId id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    if (g.kind == GateKind::kDff) continue;
    const unsigned n = fanin_count(g.kind);
    for (unsigned i = 0; i < n; ++i) fanout[g.in[i]].push_back(id);
  }
  topo_cache_.reserve(gates_.size());
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const NetId id = ready[head];
    topo_cache_.push_back(id);
    for (NetId succ : fanout[id]) {
      if (--pending[succ] == 0) ready.push_back(succ);
    }
  }
  if (topo_cache_.size() != gates_.size()) {
    topo_cache_.clear();
    throw std::logic_error("netlist '" + name_ + "': combinational cycle");
  }
  return topo_cache_;
}

unsigned Netlist::depth() const {
  std::vector<unsigned> level(gates_.size(), 0);
  unsigned max_level = 0;
  for (NetId id : topo_order()) {
    const Gate& g = gates_[id];
    if (g.kind == GateKind::kDff) continue;
    const unsigned n = fanin_count(g.kind);
    unsigned lvl = 0;
    for (unsigned i = 0; i < n; ++i) {
      lvl = std::max(lvl, level[g.in[i]] + 1);
    }
    level[id] = lvl;
    max_level = std::max(max_level, lvl);
  }
  return max_level;
}

std::uint64_t Netlist::content_hash() const {
  if (content_hash_valid_) return content_hash_;
  common::Fnv1a h;
  h.mix_string(name_);
  h.mix_u64(gates_.size());
  for (const Gate& g : gates_) {
    h.mix_byte(static_cast<std::uint8_t>(g.kind));
    for (const NetId in : g.in) h.mix_u32(in);
  }
  h.mix_u64(input_nets_.size());
  for (const NetId n : input_nets_) h.mix_u32(n);
  h.mix_u64(dff_nets_.size());
  for (const NetId n : dff_nets_) h.mix_u32(n);
  const auto mix_ports = [&h](const std::vector<Port>& ports) {
    h.mix_u64(ports.size());
    for (const Port& p : ports) {
      h.mix_string(p.name);
      h.mix_u64(p.nets.size());
      for (const NetId n : p.nets) h.mix_u32(n);
    }
  };
  mix_ports(input_ports_);
  mix_ports(output_ports_);
  content_hash_ = h.value();
  content_hash_valid_ = true;
  return content_hash_;
}

std::size_t Netlist::logic_gate_count() const {
  std::size_t count = 0;
  for (const Gate& g : gates_) {
    switch (g.kind) {
      case GateKind::kInput:
      case GateKind::kConst0:
      case GateKind::kConst1:
        break;
      default:
        ++count;
    }
  }
  return count;
}

double Netlist::gate_equivalents() const {
  // NAND2-equivalent weights of a typical standard-cell library; the paper's
  // "gates" column comes from Leonardo synthesis with comparable accounting.
  double total = 0;
  for (const Gate& g : gates_) {
    switch (g.kind) {
      case GateKind::kInput:
      case GateKind::kConst0:
      case GateKind::kConst1:
        break;
      case GateKind::kBuf:
      case GateKind::kNot:
        total += 0.5;
        break;
      case GateKind::kNand:
      case GateKind::kNor:
        total += 1.0;
        break;
      case GateKind::kAnd:
      case GateKind::kOr:
        total += 1.5;
        break;
      case GateKind::kXor:
      case GateKind::kXnor:
      case GateKind::kMux2:
        total += 2.5;
        break;
      case GateKind::kDff:
        total += 6.0;
        break;
    }
  }
  return total;
}

}  // namespace sbst::netlist
