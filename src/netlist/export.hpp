// Structural netlist export.
//
// to_verilog emits synthesisable gate-level Verilog-2001 (one primitive or
// continuous assignment per gate; DFFs as a clocked always block), so the
// generated components can be dropped into an external flow — e.g. a
// Verilator/Icarus testbench or a commercial fault simulator like the
// FlexTest runs in the paper. to_blif emits the same structure in Berkeley
// BLIF for logic-synthesis tools (abc, yosys).
#pragma once

#include <string>

#include "netlist/netlist.hpp"

namespace sbst::netlist {

/// Module name defaults to the netlist's own name. Sequential netlists get
/// a `clk` input; combinational ones do not.
std::string to_verilog(const Netlist& nl, const std::string& module_name = "");

std::string to_blif(const Netlist& nl, const std::string& model_name = "");

}  // namespace sbst::netlist
