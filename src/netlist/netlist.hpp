// Gate-level netlist representation.
//
// A Netlist is a flat vector of gates; every gate drives exactly one net, so
// net ids and gate ids coincide. Primary inputs and D flip-flops are sources
// (combinational level 0); everything else is a 1-, 2- or 3-input gate.
// Components of the processor model (src/rtlgen) are generated as Netlists
// and consumed by the fault simulator (src/fault) and the ATPG (src/atpg).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace sbst::netlist {

using NetId = std::uint32_t;
inline constexpr NetId kNoNet = ~NetId{0};

/// Gate kinds. And/Or/Nand/Nor/Xor/Xnor are strictly 2-input; wider fan-in
/// is expressed as trees by the builder helpers.
enum class GateKind : std::uint8_t {
  kInput,   // primary input (no fan-in)
  kConst0,  // constant 0
  kConst1,  // constant 1
  kBuf,     // in[0]
  kNot,     // !in[0]
  kAnd,     // in[0] & in[1]
  kOr,      // in[0] | in[1]
  kNand,
  kNor,
  kXor,
  kXnor,
  kMux2,  // in[0] ? in[2] : in[1]   (in[0]=select, in[1]=d0, in[2]=d1)
  kDff,   // state element; in[0] = D (assigned via connect_dff)
};

/// Number of input pins for each gate kind.
unsigned fanin_count(GateKind kind);

/// Human-readable kind name ("AND", "DFF", ...).
const char* kind_name(GateKind kind);

struct Gate {
  GateKind kind;
  std::array<NetId, 3> in{kNoNet, kNoNet, kNoNet};
};

/// An ordered group of nets, LSB first. Used for multi-bit ports.
using Bus = std::vector<NetId>;

/// A named port: single net or bus, recorded for input/output binding.
struct Port {
  std::string name;
  Bus nets;  // size 1 for scalar ports
};

class Netlist {
 public:
  explicit Netlist(std::string name = "netlist") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // ---- construction ------------------------------------------------------

  NetId input(const std::string& name);
  Bus input_bus(const std::string& name, unsigned width);

  NetId constant(bool value);

  NetId buf(NetId a) { return add(GateKind::kBuf, a); }
  NetId not_(NetId a) { return add(GateKind::kNot, a); }
  NetId and_(NetId a, NetId b) { return add(GateKind::kAnd, a, b); }
  NetId or_(NetId a, NetId b) { return add(GateKind::kOr, a, b); }
  NetId nand_(NetId a, NetId b) { return add(GateKind::kNand, a, b); }
  NetId nor_(NetId a, NetId b) { return add(GateKind::kNor, a, b); }
  NetId xor_(NetId a, NetId b) { return add(GateKind::kXor, a, b); }
  NetId xnor_(NetId a, NetId b) { return add(GateKind::kXnor, a, b); }
  /// sel==0 -> d0, sel==1 -> d1.
  NetId mux2(NetId sel, NetId d0, NetId d1) {
    return add(GateKind::kMux2, sel, d0, d1);
  }

  /// Creates a flip-flop whose D input is connected later (allows feedback).
  NetId dff(const std::string& name = {});
  /// Binds the D input of flip-flop `q`.
  void connect_dff(NetId q, NetId d);
  /// Creates a width-bit register; D inputs are bound with connect_dff.
  Bus dff_bus(const std::string& name, unsigned width);

  // Tree-reduction helpers (balanced trees; width 0 is invalid except where
  // noted).
  NetId and_reduce(const Bus& nets);
  NetId or_reduce(const Bus& nets);
  NetId xor_reduce(const Bus& nets);

  // Bus-wide helpers.
  Bus not_bus(const Bus& a);
  Bus and_bus(const Bus& a, const Bus& b);
  Bus or_bus(const Bus& a, const Bus& b);
  Bus xor_bus(const Bus& a, const Bus& b);
  Bus nor_bus(const Bus& a, const Bus& b);
  Bus mux2_bus(NetId sel, const Bus& d0, const Bus& d1);
  Bus const_bus(std::uint64_t value, unsigned width);

  /// Marks a net as an observable primary output.
  void output(const std::string& name, NetId net);
  void output_bus(const std::string& name, const Bus& bus);

  // ---- queries ------------------------------------------------------------

  std::size_t size() const { return gates_.size(); }
  const Gate& gate(NetId id) const { return gates_[id]; }
  const std::vector<Gate>& gates() const { return gates_; }

  const std::vector<NetId>& inputs() const { return input_nets_; }
  const std::vector<NetId>& dffs() const { return dff_nets_; }
  const std::vector<Port>& input_ports() const { return input_ports_; }
  const std::vector<Port>& output_ports() const { return output_ports_; }

  /// All nets marked as primary outputs, in declaration order.
  std::vector<NetId> output_nets() const;

  /// Looks up a declared input/output port by name; throws if absent.
  const Bus& input_port(const std::string& name) const;
  const Bus& output_port(const std::string& name) const;
  bool has_input_port(const std::string& name) const;

  /// Fan-out count per net (number of gate input pins each net drives).
  std::vector<std::uint32_t> fanout_counts() const;

  /// Gates in topological order (sources first). Throws on a combinational
  /// cycle. Cached after first call.
  const std::vector<NetId>& topo_order() const;

  /// Combinational depth (levels) of the netlist.
  unsigned depth() const;

  /// Raw gate count excluding inputs and constants.
  std::size_t logic_gate_count() const;

  /// 64-bit FNV-1a over the full structural content — every gate (kind +
  /// input nets), the input/DFF orderings, and the named ports. Two
  /// netlists with equal content hashes that were built by the same
  /// generator are structurally identical; the artifact store uses this as
  /// the content-address of every netlist-derived artifact. Computed once
  /// and cached (like topo_order(); warm it before sharing across threads).
  std::uint64_t content_hash() const;

  /// NAND2-equivalent area estimate (synthesised "gates" as in the paper).
  double gate_equivalents() const;

  /// True if the netlist has no flip-flops.
  bool is_combinational() const { return dff_nets_.empty(); }

 private:
  NetId add(GateKind kind, NetId a = kNoNet, NetId b = kNoNet,
            NetId c = kNoNet);
  NetId reduce(GateKind kind, const Bus& nets);

  std::string name_;
  std::vector<Gate> gates_;
  std::vector<NetId> input_nets_;
  std::vector<NetId> dff_nets_;
  std::vector<Port> input_ports_;
  std::vector<Port> output_ports_;
  std::unordered_map<std::string, std::size_t> input_port_index_;
  std::unordered_map<std::string, std::size_t> output_port_index_;
  NetId const0_ = kNoNet;
  NetId const1_ = kNoNet;
  mutable std::vector<NetId> topo_cache_;
  mutable std::uint64_t content_hash_ = 0;  // 0 = not yet computed
  mutable bool content_hash_valid_ = false;
};

}  // namespace sbst::netlist
