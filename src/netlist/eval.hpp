// 64-way bit-parallel netlist evaluation.
//
// Every net carries a 64-bit word. The two fault simulators interpret the
// lanes differently:
//  * PPSFP (combinational): each lane is one of 64 test patterns.
//  * Parallel-fault sequential: lane 0 is the fault-free machine, lanes 1..63
//    are faulty machines, each with one stuck-at fault forced.
//
// Faults are injected either on a net's driven value (stem faults) or on a
// single gate input pin (branch faults), per-lane via force masks.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"

namespace sbst::netlist {

/// Identifies a stuck-at injection site: a gate's output (pin == kOutputPin)
/// or one of its input pins (0-based).
struct Site {
  NetId gate = kNoNet;
  std::uint8_t pin = kOutputPin;

  static constexpr std::uint8_t kOutputPin = 0xff;

  bool is_output() const { return pin == kOutputPin; }
  friend bool operator==(const Site&, const Site&) = default;
};

class Evaluator {
 public:
  /// Words per lane block. The reference evaluator is fixed at one 64-bit
  /// word; the constant lets lane-generic grading templates (sim_detail.hpp)
  /// treat it uniformly with CompiledEvaluatorT<W>.
  static constexpr unsigned kWords = 1;
  static constexpr unsigned kLanes = 64;

  explicit Evaluator(const Netlist& nl);

  const Netlist& netlist() const { return *nl_; }

  // ---- stimulus -----------------------------------------------------------

  /// Broadcasts scalar `bit` (replicated into all lanes) onto an input net.
  void set_input(NetId net, bool value) {
    inputs_[net] = value ? ~std::uint64_t{0} : 0;
  }
  /// Sets the raw 64-lane word of an input net.
  void set_input_word(NetId net, std::uint64_t word) { inputs_[net] = word; }
  /// Block form (kWords words) of set_input_word, for lane-generic callers.
  void set_input_block(NetId net, const std::uint64_t* words) {
    inputs_[net] = words[0];
  }

  /// Drives a bus from an integer (bit i of `value` -> bus[i]), broadcast.
  void set_bus(const Bus& bus, std::uint64_t value);
  /// Reads a bus as an integer from lane `lane`.
  std::uint64_t bus_value(const Bus& bus, unsigned lane = 0) const;

  // ---- fault injection ----------------------------------------------------

  /// Forces `site` to `stuck_value` in the lanes selected by `lane_mask`.
  void inject(const Site& site, bool stuck_value, std::uint64_t lane_mask);
  /// Forces a single lane in [0, kLanes).
  void inject_lane(const Site& site, bool stuck_value, unsigned lane) {
    inject(site, stuck_value, std::uint64_t{1} << lane);
  }
  /// Forces every lane.
  void inject_broadcast(const Site& site, bool stuck_value) {
    inject(site, stuck_value, ~std::uint64_t{0});
  }
  /// Block form (kWords words) of inject, for lane-generic callers.
  void inject_block(const Site& site, bool stuck_value,
                    const std::uint64_t* lane_mask) {
    inject(site, stuck_value, lane_mask[0]);
  }
  /// Removes any force on `site` — both polarities — in the lanes selected
  /// by `lane_mask`, leaving forces in other lanes (and on other sites)
  /// untouched. The windowed fault models (transient SEU, intermittent) use
  /// this to deactivate a lane's fault between evaluations / cycles;
  /// re-injecting a released site later is safe. clear_faults() still
  /// reverts everything.
  void release(const Site& site, std::uint64_t lane_mask);
  /// Releases a single lane in [0, kLanes).
  void release_lane(const Site& site, unsigned lane) {
    release(site, std::uint64_t{1} << lane);
  }
  /// Releases every lane of one site (other sites' forces stay).
  void release_broadcast(const Site& site) {
    release(site, ~std::uint64_t{0});
  }
  /// Block form (kWords words) of release, for lane-generic callers.
  void release_block(const Site& site, const std::uint64_t* lane_mask) {
    release(site, lane_mask[0]);
  }
  void clear_faults();
  bool has_faults() const { return has_faults_; }

  // ---- evaluation ---------------------------------------------------------

  /// Evaluates all combinational logic (DFF outputs hold current state).
  void eval();

  /// Hint that the whole stimulus changed (lane-generic callers issue this
  /// when broadcasting a fresh pattern). The reference evaluator always
  /// sweeps the full netlist, so this is a no-op.
  void request_full_eval() {}

  /// eval() and then clocks all DFFs (state <- D).
  void step();

  /// Sets every DFF's state word (broadcast scalar per flip-flop bit of
  /// `value` is NOT meaningful here; this resets all lanes of all DFFs to 0
  /// or all-ones).
  void reset_state(bool value = false);

  /// Raw 64-lane word on a net after eval().
  std::uint64_t value(NetId net) const { return values_[net]; }
  /// Word `w` of a net's lane block (w must be 0 here).
  std::uint64_t value_word(NetId net, unsigned /*w*/) const {
    return values_[net];
  }

  /// Lanes (as a mask) in which `net` differs from lane `ref_lane`.
  std::uint64_t diff_mask(NetId net, unsigned ref_lane = 0) const;
  /// Lanes of word `w` differing from reference lane `ref_lane` of word 0.
  std::uint64_t diff_word(NetId net, unsigned /*w*/,
                          unsigned ref_lane = 0) const {
    return diff_mask(net, ref_lane);
  }

 private:
  std::uint64_t apply_output_force(NetId id, std::uint64_t v) const {
    v |= force1_[id];
    v &= ~force0_[id];
    return v;
  }
  std::uint64_t fetch(NetId gate, unsigned pin) const;

  const Netlist* nl_;
  std::vector<std::uint64_t> values_;  // post-force values seen by fan-out
  std::vector<std::uint64_t> inputs_;  // pristine externally-set stimuli
  std::vector<std::uint64_t> state_;   // DFF state, indexed by net id
  std::vector<std::uint64_t> force0_;  // per-net stuck-at-0 lane masks
  std::vector<std::uint64_t> force1_;
  // Nets with a nonzero force0_/force1_ entry, so clear_faults() reverts
  // only what inject() touched instead of sweeping every net.
  std::vector<NetId> touched_forces_;
  struct PinForce {
    std::uint64_t f0 = 0;
    std::uint64_t f1 = 0;
  };
  // Sparse pin forces: key = gate * 4 + pin.
  std::unordered_map<std::uint64_t, PinForce> pin_forces_;
  bool has_faults_ = false;
};

}  // namespace sbst::netlist
