#include "serve/journal.hpp"

#include <algorithm>
#include <map>

#include "common/hash.hpp"
#include "common/serialize.hpp"

namespace sbst::serve {

namespace {

// "SBSTWAL\0" little-endian; leads every record and doubles as the resync
// marker when a damaged record has to be skipped.
constexpr std::uint64_t kMagic = 0x004c415754534253ull;

// magic + type + seq + payload_len.
constexpr std::size_t kHeaderSize = 8 + 1 + 8 + 8;
constexpr std::size_t kChecksumSize = 8;
// A begin line is protocol-bounded (kMaxRequestLine), a seal payload is 17
// bytes; anything past this is damage, not data.
constexpr std::uint64_t kMaxPayload = 1 << 20;

std::vector<std::uint8_t> encode(const JournalRecord& r) {
  common::ByteWriter payload;
  if (r.type == JournalRecord::Type::kBegin) {
    payload.put_bytes(r.line.data(), r.line.size());
  } else {
    payload.put_u8(r.status);
    payload.put_u64(r.response_size);
    payload.put_u64(r.response_hash);
  }
  common::ByteWriter w;
  w.put_u64(kMagic);
  w.put_u8(static_cast<std::uint8_t>(r.type));
  w.put_u64(r.seq);
  w.put_u64(payload.size());
  w.put_bytes(payload.bytes().data(), payload.size());
  w.put_u64(common::fnv1a_bytes(w.bytes().data(), w.size()));
  return w.take();
}

// Attempts to parse one record at `pos`. Outcomes:
//   kOk        — record valid; *out filled, *consumed = record length
//   kTruncated — magic matches but the file ends inside the record
//   kBad       — no valid record here (resync past this byte)
enum class ParseResult { kOk, kTruncated, kBad };

ParseResult parse_at(const std::vector<std::uint8_t>& bytes, std::size_t pos,
                     JournalRecord* out, std::size_t* consumed) {
  const std::size_t size = bytes.size();
  if (pos + 8 > size) return ParseResult::kBad;
  common::ByteReader header(bytes.data() + pos, size - pos);
  if (header.get_u64() != kMagic) return ParseResult::kBad;
  if (pos + kHeaderSize > size) return ParseResult::kTruncated;
  const std::uint8_t type = header.get_u8();
  const std::uint64_t seq = header.get_u64();
  const std::uint64_t payload_len = header.get_u64();
  if (type != static_cast<std::uint8_t>(JournalRecord::Type::kBegin) &&
      type != static_cast<std::uint8_t>(JournalRecord::Type::kSeal)) {
    return ParseResult::kBad;
  }
  if (payload_len > kMaxPayload) return ParseResult::kBad;
  const std::size_t total =
      kHeaderSize + static_cast<std::size_t>(payload_len) + kChecksumSize;
  if (pos + total > size) return ParseResult::kTruncated;

  const std::size_t checked = kHeaderSize + payload_len;
  common::ByteReader tail(bytes.data() + pos + checked, kChecksumSize);
  if (tail.get_u64() != common::fnv1a_bytes(bytes.data() + pos, checked)) {
    return ParseResult::kBad;
  }

  JournalRecord r;
  r.type = static_cast<JournalRecord::Type>(type);
  r.seq = seq;
  const std::uint8_t* payload = bytes.data() + pos + kHeaderSize;
  if (r.type == JournalRecord::Type::kBegin) {
    r.line.assign(reinterpret_cast<const char*>(payload),
                  static_cast<std::size_t>(payload_len));
  } else {
    if (payload_len != 1 + 8 + 8) return ParseResult::kBad;
    common::ByteReader p(payload, static_cast<std::size_t>(payload_len));
    r.status = p.get_u8();
    r.response_size = p.get_u64();
    r.response_hash = p.get_u64();
  }
  *out = std::move(r);
  *consumed = total;
  return ParseResult::kOk;
}

// First magic occurrence at or after `pos`, or npos.
std::size_t find_magic(const std::vector<std::uint8_t>& bytes,
                       std::size_t pos) {
  if (pos >= bytes.size()) return std::string::npos;
  std::uint8_t needle[8];
  for (int i = 0; i < 8; ++i) {
    needle[i] = static_cast<std::uint8_t>((kMagic >> (i * 8)) & 0xffu);
  }
  const auto it = std::search(bytes.begin() + static_cast<long>(pos),
                              bytes.end(), needle, needle + 8);
  return it == bytes.end() ? std::string::npos
                           : static_cast<std::size_t>(it - bytes.begin());
}

}  // namespace

std::vector<JournalEntry> JournalScan::entries() const {
  std::map<std::uint64_t, JournalEntry> by_seq;
  for (const JournalRecord& r : records) {
    if (r.type == JournalRecord::Type::kBegin) {
      JournalEntry& e = by_seq[r.seq];
      e.seq = r.seq;
      e.line = r.line;
    }
  }
  for (const JournalRecord& r : records) {
    if (r.type == JournalRecord::Type::kSeal) {
      const auto it = by_seq.find(r.seq);
      if (it == by_seq.end()) continue;  // seal without a begin: drop
      it->second.sealed = true;
      it->second.status = r.status;
      it->second.response_size = r.response_size;
      it->second.response_hash = r.response_hash;
    }
  }
  std::vector<JournalEntry> out;
  out.reserve(by_seq.size());
  for (auto& [seq, e] : by_seq) out.push_back(std::move(e));
  return out;
}

Journal::Journal(std::string path) : path_(std::move(path)) {}

Journal::~Journal() {
  if (file_) std::fclose(file_);
}

bool Journal::open_append() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_) return true;
  file_ = std::fopen(path_.c_str(), "ab");
  return file_ != nullptr;
}

bool Journal::append_locked(const std::vector<std::uint8_t>& record) {
  if (!file_) return false;
  const bool ok =
      std::fwrite(record.data(), 1, record.size(), file_) == record.size() &&
      std::fflush(file_) == 0;
  if (!ok) ++stats_.append_failures;
  return ok;
}

bool Journal::append_begin(std::uint64_t seq, std::string_view line) {
  JournalRecord r;
  r.type = JournalRecord::Type::kBegin;
  r.seq = seq;
  r.line.assign(line.data(), line.size());
  const std::vector<std::uint8_t> bytes = encode(r);
  std::lock_guard<std::mutex> lock(mu_);
  if (!append_locked(bytes)) return false;
  ++stats_.begins;
  return true;
}

bool Journal::append_seal(std::uint64_t seq, std::uint8_t status,
                          std::uint64_t response_size,
                          std::uint64_t response_hash) {
  JournalRecord r;
  r.type = JournalRecord::Type::kSeal;
  r.seq = seq;
  r.status = status;
  r.response_size = response_size;
  r.response_hash = response_hash;
  const std::vector<std::uint8_t> bytes = encode(r);
  std::lock_guard<std::mutex> lock(mu_);
  if (!append_locked(bytes)) return false;
  ++stats_.seals;
  return true;
}

JournalStats Journal::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Journal::note_replay(std::uint64_t replayed, std::uint64_t verified,
                          std::uint64_t verify_mismatches,
                          std::uint64_t corrupt_skipped) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.replayed = replayed;
  stats_.verified = verified;
  stats_.verify_mismatches = verify_mismatches;
  stats_.corrupt_skipped = corrupt_skipped;
}

JournalScan Journal::scan_file(const std::string& path) {
  JournalScan scan;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    scan.missing = true;
    return scan;
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    scan.missing = true;
    return scan;
  }

  scan.file_size = bytes.size();
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    JournalRecord record;
    std::size_t consumed = 0;
    switch (parse_at(bytes, pos, &record, &consumed)) {
      case ParseResult::kOk:
        scan.records.push_back(std::move(record));
        pos += consumed;
        scan.valid_end = pos;
        break;
      case ParseResult::kTruncated:
        // A magic header whose record runs past EOF: a torn final write.
        // Nothing after it can be sound — stop.
        scan.truncated_tail = true;
        return scan;
      case ParseResult::kBad: {
        // Damaged bytes. Resync to the next magic strictly after pos so a
        // corrupt record is skipped, not spun on. No further magic means
        // the damage reaches EOF — that is a torn tail (e.g. a partial
        // magic cut off mid-append), not interior corruption.
        const std::size_t next = find_magic(bytes, pos + 1);
        if (next == std::string::npos) {
          scan.truncated_tail = true;
          return scan;
        }
        ++scan.corrupt_skipped;
        pos = next;
        break;
      }
    }
  }
  return scan;
}

}  // namespace sbst::serve
