#include "serve/serve.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "common/hash.hpp"
#include "common/tablefmt.hpp"
#include "conform/runner.hpp"

namespace sbst::serve {

using namespace sbst::core;

namespace {

struct CutName {
  const char* name;
  CutId id;
};
constexpr CutName kCuts[] = {
    {"mul", CutId::kMultiplier}, {"div", CutId::kDivider},
    {"rf", CutId::kRegisterFile}, {"mem", CutId::kMemCtrl},
    {"shifter", CutId::kShifter}, {"alu", CutId::kAlu},
    {"ctrl", CutId::kControl},
};

// --cpu-stats: the paper's §2 CPU-time equation, term by term. Goes to
// stderr so the determinism-checked stdout stays untouched.
void print_cpu_stats(const sim::ExecStats& s, std::FILE* err) {
  const double imiss =
      s.icache_accesses == 0
          ? 0.0
          : 100.0 * static_cast<double>(s.icache_misses) /
                static_cast<double>(s.icache_accesses);
  const double dmiss =
      s.dcache_accesses == 0
          ? 0.0
          : 100.0 * static_cast<double>(s.dcache_misses) /
                static_cast<double>(s.dcache_accesses);
  std::fprintf(err, "# cpu-stats: instructions %llu\n",
               static_cast<unsigned long long>(s.instructions));
  std::fprintf(err,
               "# cpu-stats: cpu cycles %llu + pipeline stalls %llu + "
               "memory stalls %llu = %llu total\n",
               static_cast<unsigned long long>(s.cpu_cycles),
               static_cast<unsigned long long>(s.pipeline_stall_cycles),
               static_cast<unsigned long long>(s.memory_stall_cycles),
               static_cast<unsigned long long>(s.total_cycles()));
  std::fprintf(err,
               "# cpu-stats: loads %llu stores %llu (data refs %llu)\n",
               static_cast<unsigned long long>(s.loads),
               static_cast<unsigned long long>(s.stores),
               static_cast<unsigned long long>(s.data_references()));
  std::fprintf(err,
               "# cpu-stats: icache %llu/%llu misses (%.2f%%), dcache "
               "%llu/%llu misses (%.2f%%)\n",
               static_cast<unsigned long long>(s.icache_misses),
               static_cast<unsigned long long>(s.icache_accesses), imiss,
               static_cast<unsigned long long>(s.dcache_misses),
               static_cast<unsigned long long>(s.dcache_accesses), dmiss);
  std::fprintf(err,
               "# cpu-stats: analytic total (5%% miss, 20-cycle penalty) "
               "%llu cycles\n",
               static_cast<unsigned long long>(
                   s.analytic_total_cycles(0.05, 20)));
  std::fprintf(err, "# cpu-stats: %.1f us at 57 MHz\n",
               1e6 * s.seconds(57e6));
}

// Reads one \n-terminated (or EOF-terminated) line, bounded at
// kMaxRequestLine bytes. An over-long line is consumed to its newline (so
// the loop stays in sync with the stream) and reported as kTooLong instead
// of growing an unbounded std::string.
enum class ReadStatus { kEof, kLine, kTooLong };

ReadStatus read_request_line(std::FILE* in, std::string& line) {
  line.clear();
  bool over = false;
  int c;
  while ((c = std::fgetc(in)) != EOF) {
    if (c == '\n') return over ? ReadStatus::kTooLong : ReadStatus::kLine;
    if (c == '\r') continue;
    if (line.size() >= kMaxRequestLine) {
      over = true;
      continue;  // keep consuming to the newline, discard the excess
    }
    line.push_back(static_cast<char>(c));
  }
  if (over) return ReadStatus::kTooLong;
  return line.empty() ? ReadStatus::kEof : ReadStatus::kLine;
}

// The effective model list: an empty selection means the stuck-at default.
std::vector<fault::FaultModel> resolve_models(
    const std::vector<fault::FaultModel>& models) {
  if (models.empty()) return {fault::FaultModel::kStuckAt};
  return models;
}

// True when the selection is exactly the legacy single-model default; only
// then do the renderers keep the historical (golden-diffed) table shape.
bool default_models(const std::vector<fault::FaultModel>& models) {
  return models.size() == 1 && models[0] == fault::FaultModel::kStuckAt;
}

// Selected fault models, resolved. Stderr only, like the engine config: the
// golden-diffed stdout must not change with the default selection.
void print_fault_model_config(const std::vector<fault::FaultModel>& models,
                              std::FILE* err) {
  std::string joined;
  for (const fault::FaultModel m : models) {
    if (!joined.empty()) joined += ",";
    joined += fault::fault_model_name(m);
  }
  std::fprintf(err, "# config: fault models %s\n", joined.c_str());
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string cur;
  for (const char ch : line) {
    if (ch == ' ' || ch == '\t') {
      if (!cur.empty()) tokens.push_back(std::move(cur)), cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  if (!cur.empty()) tokens.push_back(std::move(cur));
  return tokens;
}

}  // namespace

bool parse_cut_name(const std::string& name, CutId& out) {
  for (const CutName& c : kCuts) {
    if (name == c.name) {
      out = c.id;
      return true;
    }
  }
  return false;
}

bool parse_fault_model_list(const std::string& spec,
                            std::vector<fault::FaultModel>& out) {
  std::vector<fault::FaultModel> models;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const std::size_t comma = spec.find(',', begin);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    fault::FaultModel m;
    if (end == begin || !fault::parse_fault_model(
                            spec.substr(begin, end - begin), m)) {
      return false;
    }
    if (std::find(models.begin(), models.end(), m) == models.end()) {
      models.push_back(m);
    }
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  if (models.empty()) return false;
  out = std::move(models);
  return true;
}

bool injectable_cut(CutId id) {
  return id == CutId::kAlu || id == CutId::kShifter ||
         id == CutId::kMultiplier;
}

// Selected engine / lane / optimization configuration, resolved to what the
// gradings will actually run. Stderr only: stdout is golden-diffed across
// widths and engines.
void print_engine_config(const fault::SimOptions& sim, std::FILE* err) {
  const bool reference = sim.engine == fault::Engine::kReference;
  const unsigned lanes =
      reference ? 1
                : (sim.lanes == 0 ? fault::default_lanes()
                                  : (sim.lanes == 4 ? 4u : 1u));
  const bool opt = !reference &&
                   (sim.netlist_opt < 0 ? fault::default_netlist_opt()
                                        : sim.netlist_opt != 0);
  std::fprintf(err,
               "# config: engine %s, lanes %u (%u fault lanes/pass), "
               "netlist-opt %s\n",
               fault::engine_name(sim.engine), lanes, 64 * lanes - 1,
               opt ? "on" : "off");
}

void print_store_summary(const core::GradingSession& session,
                         const store::ArtifactStore* store, std::FILE* err) {
  if (!store) return;
  const SessionStats s = session.stats();
  std::fprintf(err,
               "# store: loads %zu hits %zu misses %zu invalid %zu "
               "writes %zu (dir %s)\n",
               s.store_loads, s.store_hits, s.store_misses, s.store_invalid,
               s.store_writes, store->dir().c_str());
}

int render_evaluate(GradingSession& session, const fault::SimOptions& sim,
                    bool cpu_stats, std::FILE* out, std::FILE* err,
                    const std::vector<fault::FaultModel>& fault_models) {
  const std::vector<fault::FaultModel> models = resolve_models(fault_models);
  print_engine_config(sim, err);
  print_fault_model_config(models, err);
  TestProgramBuilder builder;
  builder.add_default_routines(session.model());
  const TestProgram program = builder.build();
  EvalOptions options;
  options.sim = sim;
  options.fault_models = models;
  const ProgramEvaluation ev =
      evaluate_program(session, builder, program, options);
  if (default_models(models)) {
    // The legacy single-model table, byte-identical to the golden output.
    Table t({"Component", "FC (%)", "Miss. FC (%)"});
    for (const CutCoverage& c : ev.cuts) {
      t.add_row({session.model().component(c.id).name,
                 Table::num(c.coverage.percent(), 1),
                 Table::num(ev.missing_fc(c.id), 2)});
    }
    std::fputs(t.str().c_str(), out);
  } else {
    // One row per graded (component, model) pair. Miss. FC is each row's
    // undetected share of the combined fault population, so the column
    // still sums to 100 - overall FC.
    std::size_t population = 0;
    for (const CutCoverage& c : ev.cuts) population += c.coverage.total;
    Table t({"Component", "Model", "FC (%)", "Miss. FC (%)"});
    for (const CutCoverage& c : ev.cuts) {
      const double miss =
          population == 0
              ? 0.0
              : 100.0 *
                    static_cast<double>(c.coverage.total -
                                        c.coverage.detected) /
                    static_cast<double>(population);
      t.add_row({session.model().component(c.id).name,
                 fault::fault_model_name(c.model),
                 Table::num(c.coverage.percent(), 1), Table::num(miss, 2)});
    }
    std::fputs(t.str().c_str(), out);
  }
  std::fprintf(out,
               "overall FC %.2f%%; %llu cycles, %llu stalls, %llu data refs\n",
               ev.overall_fc(),
               static_cast<unsigned long long>(ev.total.cpu_cycles),
               static_cast<unsigned long long>(ev.total.pipeline_stall_cycles),
               static_cast<unsigned long long>(ev.total.data_references()));
  // Stage timings go to stderr: stdout must stay byte-identical for every
  // thread count / engine / cache / store setting (the CI determinism check
  // diffs it), while wall-clock never is.
  std::fprintf(err,
               "# stages (s): trace %.3f collapse %.3f compile %.3f "
               "grade %.3f standalone %.3f\n",
               ev.stages.trace, ev.stages.collapse, ev.stages.compile,
               ev.stages.grade, ev.stages.standalone);
  if (cpu_stats) print_cpu_stats(ev.total, err);
  return 0;
}

// Guarded injection campaign over the injectable CUTs: every fault gets a
// classified RunOutcome; the table splits detections into signature vs
// symptom. Stdout is deterministic for any thread count / cache setting
// (the CI smoke diffs it); wall-clock goes to stderr.
int render_campaign(GradingSession& session, const fault::SimOptions& sim,
                    std::size_t max_faults, const std::vector<CutId>& cuts,
                    std::FILE* out, std::FILE* err,
                    const std::vector<fault::FaultModel>& fault_models,
                    const RequestBudget* budget) {
  const std::vector<fault::FaultModel> models = resolve_models(fault_models);
  print_engine_config(sim, err);
  print_fault_model_config(models, err);
  const bool legacy = default_models(models);
  const ProcessorModel& model = session.model();
  TestProgramBuilder builder;
  builder.add_default_routines(model);
  const TestProgram program = builder.build();
  const auto t0 = std::chrono::steady_clock::now();
  OutcomeHistogram total;
  std::vector<std::string> header = {"Component", "Faults", "Sig", "Hang",
                                     "Trap", "Wild", "Ok", "Infra",
                                     "Det (%)"};
  if (!legacy) header.insert(header.begin() + 1, "Model");
  Table t(header);
  for (const CutId cut : cuts) {
    for (const fault::FaultModel fm : models) {
      // Cooperative deadline: a runaway campaign aborts between per-CUT
      // gradings (each already bounded by the per-run watchdog), so a
      // request can never wedge the daemon for more than one grading past
      // its budget. The caller discards the partial table.
      if (budget && budget->expired()) return kTimeoutStatus;
      std::vector<fault::Fault> faults = session.universe(cut, fm).collapsed();
      if (max_faults != 0 && faults.size() > max_faults) {
        faults.resize(max_faults);
      }
      const OutcomeHistogram h = histogram_of(
          run_injection_campaign(session, program, cut, faults, {}));
      for (std::size_t k = 0; k < kRunOutcomeCount; ++k) {
        total.counts[k] += h.counts[k];
      }
      const double det =
          h.total() == 0 ? 0.0
                         : 100.0 * static_cast<double>(h.detected()) /
                               static_cast<double>(h.total());
      std::vector<std::string> row = {
          model.component(cut).name,
          Table::num(static_cast<std::uint64_t>(h.total())),
          Table::num(static_cast<std::uint64_t>(h.detected_by_signature())),
          Table::num(static_cast<std::uint64_t>(
              h.count(RunOutcome::kDetectedHang))),
          Table::num(static_cast<std::uint64_t>(
              h.count(RunOutcome::kDetectedTrap))),
          Table::num(static_cast<std::uint64_t>(
              h.count(RunOutcome::kDetectedWildStore))),
          Table::num(static_cast<std::uint64_t>(
              h.count(RunOutcome::kOkMatch))),
          Table::num(static_cast<std::uint64_t>(
              h.count(RunOutcome::kInfraError))),
          Table::num(det, 1)};
      if (!legacy) row.insert(row.begin() + 1, fault::fault_model_name(fm));
      t.add_row(row);
    }
  }
  if (budget && budget->expired()) return kTimeoutStatus;
  std::fputs(t.str().c_str(), out);
  std::fprintf(
      out,
      "campaign: %zu faults, detected %zu (signature %zu, symptom %zu), "
      "infra errors %zu\n",
      total.total(), total.detected(), total.detected_by_signature(),
      total.detected_by_symptom(), total.count(RunOutcome::kInfraError));
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::fprintf(err, "# campaign: budget factor %.1f, %.3f s wall, %zu faults\n",
               session.options().budget_factor, wall, total.total());
  return 0;
}

// `conform run`: three-executor differential replay. Stdout (per-class
// table, failure details, summary) is deterministic for any thread count /
// cache setting — the CI golden diff depends on it. Timings go to stderr.
int render_conform_run(GradingSession& session, const char* dir,
                       std::FILE* out, std::FILE* err) {
  const auto t0 = std::chrono::steady_clock::now();
  const conform::Corpus corpus = conform::load_corpus(dir);
  const auto t1 = std::chrono::steady_clock::now();
  const conform::ConformRunner runner(&session);
  const conform::ConformReport report = runner.run(corpus);
  const auto t2 = std::chrono::steady_clock::now();
  Table t({"Class", "Cases", "Pass", "Fail"});
  for (const conform::ClassTally& tally : report.by_class) {
    t.add_row({tally.cls,
               Table::num(static_cast<std::uint64_t>(tally.cases)),
               Table::num(static_cast<std::uint64_t>(tally.pass)),
               Table::num(static_cast<std::uint64_t>(tally.fail))});
  }
  std::fputs(t.str().c_str(), out);
  for (const conform::CaseFailure& f : report.failures) {
    std::fprintf(out, "FAIL %s [%s]: %s\n", f.name.c_str(),
                 conform::executor_name(f.exec), f.detail.c_str());
  }
  std::fprintf(out,
               "conform: %zu cases, passed %zu, failed %zu "
               "(%s, seed %llu, content hash %016llx)\n",
               report.cases, report.passed, report.failed,
               corpus.version.c_str(),
               static_cast<unsigned long long>(corpus.seed),
               static_cast<unsigned long long>(
                   conform::corpus_content_hash(corpus)));
  std::fprintf(err, "# conform: load %.3f s, replay %.3f s, %zu cases\n",
               std::chrono::duration<double>(t1 - t0).count(),
               std::chrono::duration<double>(t2 - t1).count(), report.cases);
  return report.ok() ? 0 : 1;
}

void render_stats(const GradingSession& session,
                  const store::ArtifactStore* store, std::FILE* out,
                  const Journal* journal) {
  const SessionStats s = session.stats();
  std::fprintf(out,
               "session: universe %zu/%zu compile %zu/%zu observe %zu/%zu "
               "cone %zu/%zu decode %zu/%zu goodrun %zu/%zu patterns %zu/%zu "
               "(builds/hits)\n",
               s.universe_builds, s.universe_hits, s.compile_builds,
               s.compile_hits, s.observe_builds, s.observe_hits,
               s.cone_builds, s.cone_hits, s.decode_builds, s.decode_hits,
               s.goodrun_builds, s.goodrun_hits, s.patterns_builds,
               s.patterns_hits);
  if (store) {
    std::fprintf(out,
                 "store: loads %zu hits %zu misses %zu invalid %zu "
                 "writes %zu\n",
                 s.store_loads, s.store_hits, s.store_misses,
                 s.store_invalid, s.store_writes);
  } else {
    std::fputs("store: none\n", out);
  }
  if (journal) {
    const JournalStats j = journal->stats();
    std::fprintf(out,
                 "journal: begins %llu seals %llu append-failures %llu "
                 "replayed %llu verified %llu mismatches %llu corrupt %llu\n",
                 static_cast<unsigned long long>(j.begins),
                 static_cast<unsigned long long>(j.seals),
                 static_cast<unsigned long long>(j.append_failures),
                 static_cast<unsigned long long>(j.replayed),
                 static_cast<unsigned long long>(j.verified),
                 static_cast<unsigned long long>(j.verify_mismatches),
                 static_cast<unsigned long long>(j.corrupt_skipped));
  }
}

namespace {

// ---------------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------------

enum class Verb { kPing, kStats, kEvaluate, kCampaign, kConform, kQuit,
                  kInvalid };

// Work verbs execute on the session and are journaled / deadline-bounded.
// stats is executed (it reads session counters) but is neither journaled nor
// shed: replaying it later would render different counters, and it is cheap.
bool work_verb(Verb v) {
  return v == Verb::kEvaluate || v == Verb::kCampaign || v == Verb::kConform;
}

const char* verb_token(Verb v) {
  switch (v) {
    case Verb::kPing: return "ping";
    case Verb::kStats: return "stats";
    case Verb::kEvaluate: return "evaluate";
    case Verb::kCampaign: return "campaign";
    case Verb::kConform: return "conform";
    case Verb::kQuit: return "quit";
    case Verb::kInvalid: break;
  }
  return "invalid";
}

// One fully-validated request. kInvalid carries the exact response line the
// serial loop has always produced for that malformation, so the error bytes
// stay identical across loop implementations.
struct ParsedRequest {
  Verb verb = Verb::kInvalid;
  std::vector<CutId> cuts;  // campaign targets (defaulted when empty)
  std::string dir;          // conform corpus directory
  std::string error;        // kInvalid: the full `err ...\n` response
};

ParsedRequest parse_request(const std::vector<std::string>& tokens) {
  ParsedRequest p;
  const std::string& verb = tokens[0];
  if (verb == "quit") {
    p.verb = Verb::kQuit;
  } else if (verb == "ping") {
    p.verb = Verb::kPing;
  } else if (verb == "stats") {
    p.verb = Verb::kStats;
  } else if (verb == "evaluate") {
    if (tokens.size() != 1) {
      p.error = "err evaluate takes no arguments\n";
    } else {
      p.verb = Verb::kEvaluate;
    }
  } else if (verb == "campaign") {
    for (std::size_t k = 1; k < tokens.size(); ++k) {
      CutId cut;
      if (!parse_cut_name(tokens[k], cut) || !injectable_cut(cut)) {
        p.cuts.clear();
        p.error = "err campaign: " + tokens[k] +
                  " is not an injectable CUT (alu / shifter / mul)\n";
        return p;
      }
      p.cuts.push_back(cut);
    }
    if (p.cuts.empty()) {
      p.cuts = {CutId::kAlu, CutId::kShifter, CutId::kMultiplier};
    }
    p.verb = Verb::kCampaign;
  } else if (verb == "conform" && tokens.size() == 3 && tokens[1] == "run") {
    p.verb = Verb::kConform;
    p.dir = tokens[2];
  } else {
    p.error = "err unknown command: " + verb + "\n";
  }
  return p;
}

// ---------------------------------------------------------------------------
// Request execution
// ---------------------------------------------------------------------------

// One request's complete outcome: the response bytes (renderer output plus
// terminator line) and the stderr audit text, both buffered so the caller
// can emit them atomically and in admission order.
struct Response {
  std::string body;
  std::string err_text;
  int status = 0;
  bool timed_out = false;
};

// Seal-record status byte: 0 = ok, 1 = err, 2 = timeout.
std::uint8_t seal_status(const Response& r) {
  if (r.timed_out) return 2;
  return r.status == 0 ? 0 : 1;
}

std::uint64_t response_hash(const std::string& body) {
  return common::fnv1a_bytes(body.data(), body.size());
}

// Everything one request needs, shared by the serial loop, the concurrent
// loop, and the startup replay pass.
struct ServerState {
  ServerState(GradingSession& session_, store::ArtifactStore* store_,
              const ServeOptions& options_, Journal* journal_)
      : session(session_), store(store_), options(options_),
        journal(journal_) {}

  GradingSession& session;
  store::ArtifactStore* store;
  const ServeOptions& options;
  Journal* journal;

  // Serializes requests that drive the session's ThreadPool
  // (evaluate/campaign): run_static_capture has exactly-one-caller
  // semantics. conform reads artifacts through the session's thread-safe
  // accessors and may overlap — unless the session cache is off, in which
  // case artifact slots are replaced under readers and EVERY work request
  // serializes.
  std::mutex exec_mu;

  // Last completed good wall time per verb — the request-level analogue of
  // the campaign watchdog's cached good-run budget. Feeds auto deadlines
  // and shed retry-after hints.
  std::mutex walls_mu;
  std::map<std::string, double> verb_walls;

  double cached_wall(const std::string& verb) {
    std::lock_guard<std::mutex> lock(walls_mu);
    const auto it = verb_walls.find(verb);
    return it == verb_walls.end() ? 0.0 : it->second;
  }
  void note_wall(const std::string& verb, double seconds) {
    std::lock_guard<std::mutex> lock(walls_mu);
    verb_walls[verb] = seconds;
  }
};

// The budget starts at ADMISSION, not at execution: time spent waiting for
// a worker or for exec_mu counts against the deadline, so a request stuck
// behind a slow one times out instead of silently serving stale work.
RequestBudget budget_for(ServerState& st, const std::string& verb) {
  RequestBudget b;
  double ms = 0;
  if (st.options.request_deadline_ms > 0) {
    ms = st.options.request_deadline_ms;
  } else if (st.options.request_deadline_ms < 0) {
    // Auto: k × the verb's last completed good wall time. First run of a
    // verb stays unlimited — there is nothing to derive a deadline from.
    const double wall = st.cached_wall(verb);
    if (wall > 0) {
      ms = std::max(kMinAutoDeadlineMs,
                    st.options.deadline_factor * wall * 1e3);
    }
  }
  if (ms > 0) {
    b.ms = ms;
    b.deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(ms));
  }
  return b;
}

// Retry-after hint for a shed response: the verb's cached wall time (100 ms
// default when nothing is cached yet) scaled by the backlog depth.
unsigned long long shed_hint_ms(ServerState& st, const std::string& verb,
                                std::size_t waiting) {
  double wall = st.cached_wall(verb);
  if (wall <= 0) wall = 0.1;
  const double ms = wall * 1e3 * static_cast<double>(waiting + 1);
  return static_cast<unsigned long long>(ms < 1.0 ? 1.0 : ms);
}

// Executes one already-parsed request into a buffered Response. Never
// throws: renderer exceptions become `err internal: ...` responses, so one
// poisoned request can never take the daemon down (the fault-injection
// harness depends on this).
Response run_request(ServerState& st, const ParsedRequest& req,
                     const RequestBudget& budget) {
  Response resp;
  char* body_buf = nullptr;
  std::size_t body_len = 0;
  char* err_buf = nullptr;
  std::size_t err_len = 0;
  std::FILE* rout = open_memstream(&body_buf, &body_len);
  std::FILE* rerr = open_memstream(&err_buf, &err_len);
  if (!rout || !rerr) {
    if (rout) std::fclose(rout);
    if (rerr) std::fclose(rerr);
    std::free(body_buf);
    std::free(err_buf);
    resp.body = "err internal: out of memory\n";
    resp.status = 1;
    return resp;
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::string term;
  int status = 0;
  bool timed_out = false;
  try {
    if (work_verb(req.verb) && budget.expired()) {
      timed_out = true;  // the queue wait alone consumed the budget
    } else {
      switch (req.verb) {
        case Verb::kPing:
          term = "ok ping\n";
          break;
        case Verb::kStats:
          render_stats(st.session, st.store, rout, st.journal);
          term = "ok stats\n";
          break;
        case Verb::kEvaluate: {
          std::lock_guard<std::mutex> lock(st.exec_mu);
          status = render_evaluate(st.session, st.options.sim,
                                   st.options.cpu_stats, rout, rerr,
                                   st.options.fault_models);
          term = "ok evaluate\n";
          break;
        }
        case Verb::kCampaign: {
          std::lock_guard<std::mutex> lock(st.exec_mu);
          status = render_campaign(st.session, st.options.sim,
                                   st.options.max_faults, req.cuts, rout,
                                   rerr, st.options.fault_models,
                                   budget.limited() ? &budget : nullptr);
          if (status == kTimeoutStatus) {
            timed_out = true;
          } else {
            term = "ok campaign\n";
          }
          break;
        }
        case Verb::kConform: {
          std::unique_lock<std::mutex> lock;
          if (!st.options.session_cache) {
            lock = std::unique_lock<std::mutex>(st.exec_mu);
          }
          try {
            status = render_conform_run(st.session, req.dir.c_str(), rout,
                                        rerr);
            term = status == 0 ? "ok conform\n"
                               : "err conform: differential failures\n";
          } catch (const conform::ConformError& e) {
            term = std::string("err conform: ") + e.what() + "\n";
            status = 1;
          }
          break;
        }
        default:
          term = "err internal: bad verb\n";
          status = 1;
          break;
      }
    }
  } catch (const std::exception& e) {
    term = std::string("err internal: ") + e.what() + "\n";
    status = 1;
  } catch (...) {
    term = "err internal: unknown failure\n";
    status = 1;
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::fprintf(rerr, "# serve: %s %.3f s\n", verb_token(req.verb), wall);
  print_store_summary(st.session, st.store, rerr);
  std::fclose(rout);
  std::fclose(rerr);

  if (timed_out) {
    // The partial render is discarded wholesale: a timeout response is one
    // structured line, never a torn table.
    char line[64];
    std::snprintf(line, sizeof line, "err timeout deadline=%.0fms\n",
                  budget.ms);
    resp.body = line;
    resp.status = kTimeoutStatus;
    resp.timed_out = true;
  } else {
    resp.body.assign(body_buf, body_len);
    resp.body += term;
    resp.status = status;
    if (status == 0 && work_verb(req.verb)) {
      st.note_wall(verb_token(req.verb), wall);
    }
  }
  resp.err_text.assign(err_buf, err_len);
  std::free(body_buf);
  std::free(err_buf);
  return resp;
}

// ---------------------------------------------------------------------------
// Startup replay pass (--replay-journal)
// ---------------------------------------------------------------------------

void replay_journal_pass(ServerState& st, const JournalScan& scan,
                         std::FILE* out, std::FILE* err) {
  const std::vector<JournalEntry> entries = scan.entries();
  std::uint64_t replayed = 0;
  std::uint64_t verified = 0;
  std::uint64_t mismatches = 0;
  for (const JournalEntry& e : entries) {
    const std::vector<std::string> tokens = tokenize(e.line);
    const ParsedRequest req =
        tokens.empty() ? ParsedRequest{} : parse_request(tokens);
    const unsigned long long seq = e.seq;
    if (!work_verb(req.verb)) {
      // Only work verbs are journaled; anything else here is damage that
      // happened to re-checksum. Skip, never execute.
      std::fprintf(err, "# replay: seq %llu skipped (not a work request)\n",
                   seq);
      continue;
    }
    const Response resp = run_request(st, req, RequestBudget{});
    const std::uint64_t hash = response_hash(resp.body);
    if (e.sealed) {
      // The crashed daemon already answered this one: re-render and audit
      // that the recovered daemon computes the same bytes, but do not
      // re-emit them.
      const bool ok =
          e.response_size == resp.body.size() && e.response_hash == hash;
      if (ok) {
        ++verified;
      } else {
        ++mismatches;
      }
      std::fprintf(err, "# replay: seq %llu %s %s\n", seq, tokens[0].c_str(),
                   ok ? "verified" : "RESPONSE MISMATCH");
    } else {
      // Begin without a seal: the crash ate this response. Re-run, emit,
      // and seal it now.
      std::fwrite(resp.body.data(), 1, resp.body.size(), out);
      std::fflush(out);
      if (!resp.err_text.empty()) {
        std::fwrite(resp.err_text.data(), 1, resp.err_text.size(), err);
      }
      st.journal->append_seal(e.seq, seal_status(resp), resp.body.size(),
                              hash);
      ++replayed;
      std::fprintf(err, "# replay: seq %llu %s recovered\n", seq,
                   tokens[0].c_str());
    }
  }
  st.journal->note_replay(replayed, verified, mismatches,
                          scan.corrupt_skipped);
  std::fprintf(err,
               "# replay: %zu entries, recovered %llu verified %llu "
               "mismatches %llu corrupt %zu%s\n",
               entries.size(), static_cast<unsigned long long>(replayed),
               static_cast<unsigned long long>(verified),
               static_cast<unsigned long long>(mismatches),
               scan.corrupt_skipped,
               scan.truncated_tail ? ", truncated tail" : "");
  std::fflush(err);
}

// ---------------------------------------------------------------------------
// Serial loop (--serve-threads 1, the default)
// ---------------------------------------------------------------------------

int run_serial_loop(ServerState& st, std::uint64_t next_seq, std::FILE* in,
                    std::FILE* out, std::FILE* err) {
  std::string line;
  for (;;) {
    const ReadStatus rs = read_request_line(in, line);
    if (rs == ReadStatus::kEof) return 0;
    if (rs == ReadStatus::kTooLong) {
      std::fputs("err request-too-long\n", out);
      std::fflush(out);
      continue;
    }
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    const ParsedRequest req = parse_request(tokens);
    if (req.verb == Verb::kQuit) {
      std::fputs("ok quit\n", out);
      std::fflush(out);
      return 0;
    }
    if (req.verb == Verb::kInvalid) {
      std::fputs(req.error.c_str(), out);
      std::fflush(out);
      continue;
    }
    const bool journaled = st.journal != nullptr && work_verb(req.verb);
    std::uint64_t seq = 0;
    if (journaled) {
      seq = next_seq++;
      st.journal->append_begin(seq, line);
    }
    const RequestBudget budget =
        work_verb(req.verb) ? budget_for(st, tokens[0]) : RequestBudget{};
    const Response resp = run_request(st, req, budget);
    std::fwrite(resp.body.data(), 1, resp.body.size(), out);
    std::fflush(out);
    if (!resp.err_text.empty()) {
      std::fwrite(resp.err_text.data(), 1, resp.err_text.size(), err);
      std::fflush(err);
    }
    if (journaled) {
      st.journal->append_seal(seq, seal_status(resp), resp.body.size(),
                              response_hash(resp.body));
    }
  }
}

// ---------------------------------------------------------------------------
// Concurrent loop (--serve-threads N > 1)
// ---------------------------------------------------------------------------

// One admitted request in the in-order emission window. Requests answered
// at admission (ping, parse errors, shed, too-long) arrive pre-done;
// everything else waits for a worker.
struct PendingRequest {
  std::string verb;       // raw verb token, for deadlines / hints
  ParsedRequest parsed;
  RequestBudget budget;
  bool exec = false;      // needs a worker
  bool barrier = false;   // stats: all earlier requests must finish first
  bool journaled = false;
  std::uint64_t seq = 0;  // journal sequence number
  bool claimed = false;
  bool done = false;
  Response resp;
};

int run_concurrent_loop(ServerState& st, std::uint64_t next_seq,
                        std::FILE* in, std::FILE* out, std::FILE* err) {
  std::mutex mu;
  std::condition_variable work_cv;  // workers: something may be claimable
  std::condition_variable emit_cv;  // emitter: front done, or input ended
  std::deque<std::shared_ptr<PendingRequest>> window;
  bool input_done = false;
  bool shutdown = false;

  // The first request a worker may legally claim, scanning the window in
  // admission order (mu held). A `stats` barrier claims only once every
  // earlier request is done, and nothing admitted after it starts while it
  // is pending or running — its counters must reflect exactly the requests
  // before it, or repeated scripts would render different bytes.
  const auto claimable = [&window]() -> PendingRequest* {
    bool prefix_done = true;
    for (const auto& p : window) {
      if (p->done) continue;
      if (p->claimed) {
        if (p->barrier) return nullptr;  // stats running: nothing overlaps
        prefix_done = false;
        continue;
      }
      if (!p->exec) return nullptr;  // defensive: pre-done requests only
      if (p->barrier && !prefix_done) return nullptr;
      return p.get();
    }
    return nullptr;
  };

  const auto worker_fn = [&]() {
    for (;;) {
      PendingRequest* p = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu);
        work_cv.wait(lock,
                     [&] { return shutdown || claimable() != nullptr; });
        if (shutdown) return;
        p = claimable();
        if (!p) continue;  // raced with another worker
        p->claimed = true;
      }
      // Safe to touch *p unlocked: the emitter only pops DONE requests off
      // the front, and this one is not done until the store below.
      Response resp = run_request(st, p->parsed, p->budget);
      {
        std::lock_guard<std::mutex> lock(mu);
        p->resp = std::move(resp);
        p->done = true;
      }
      emit_cv.notify_one();
      work_cv.notify_all();  // a finished prefix may unblock a barrier
    }
  };

  // The emitter is the only thread that writes the response stream, and it
  // writes strictly in admission order — that is the whole determinism
  // argument: any interleaving of worker completions produces the same
  // bytes the serial loop would.
  const auto emitter_fn = [&]() {
    for (;;) {
      std::shared_ptr<PendingRequest> p;
      {
        std::unique_lock<std::mutex> lock(mu);
        emit_cv.wait(lock, [&] {
          return (!window.empty() && window.front()->done) ||
                 (input_done && window.empty());
        });
        if (window.empty()) return;
        p = window.front();
        window.pop_front();
      }
      std::fwrite(p->resp.body.data(), 1, p->resp.body.size(), out);
      std::fflush(out);
      if (!p->resp.err_text.empty()) {
        std::fwrite(p->resp.err_text.data(), 1, p->resp.err_text.size(),
                    err);
        std::fflush(err);
      }
      if (p->journaled && st.journal) {
        // Seal only after the response bytes are flushed: a seal on disk
        // guarantees the client saw (or could have seen) the response.
        st.journal->append_seal(p->seq, seal_status(p->resp),
                                p->resp.body.size(),
                                response_hash(p->resp.body));
      }
    }
  };

  std::thread emitter(emitter_fn);
  std::vector<std::thread> workers;
  const unsigned n = st.options.serve_threads;
  workers.reserve(n);
  for (unsigned k = 0; k < n; ++k) workers.emplace_back(worker_fn);

  // Admits a request whose response is already known (ping, parse error,
  // shed, too-long): it joins the window pre-done so emission order still
  // matches admission order.
  const auto admit_immediate = [&](std::string body) {
    auto p = std::make_shared<PendingRequest>();
    p->resp.body = std::move(body);
    p->done = true;
    {
      std::lock_guard<std::mutex> lock(mu);
      window.push_back(std::move(p));
    }
    emit_cv.notify_one();
  };

  // The calling thread is the reader: admission, shedding, journal begins.
  std::string line;
  for (;;) {
    const ReadStatus rs = read_request_line(in, line);
    if (rs == ReadStatus::kEof) break;
    if (rs == ReadStatus::kTooLong) {
      admit_immediate("err request-too-long\n");
      continue;
    }
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    const ParsedRequest req = parse_request(tokens);
    if (req.verb == Verb::kQuit) {
      admit_immediate("ok quit\n");
      break;
    }
    if (req.verb == Verb::kInvalid) {
      admit_immediate(req.error);
      continue;
    }
    if (req.verb == Verb::kPing) {
      admit_immediate("ok ping\n");
      continue;
    }

    // Bounded admission: when queue_depth work requests are already waiting
    // for a worker, shed instead of growing an unbounded backlog. stats is
    // never shed — it is a cheap counter probe.
    std::size_t waiting = 0;
    {
      std::lock_guard<std::mutex> lock(mu);
      for (const auto& p : window) {
        if (p->exec && !p->claimed && !p->done) ++waiting;
      }
    }
    if (work_verb(req.verb) && waiting >= st.options.queue_depth) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "err overloaded retry-after=%llums\n",
                    shed_hint_ms(st, tokens[0], waiting));
      admit_immediate(buf);
      continue;
    }

    auto p = std::make_shared<PendingRequest>();
    p->verb = tokens[0];
    p->parsed = req;
    p->exec = true;
    p->barrier = req.verb == Verb::kStats;
    if (work_verb(req.verb)) {
      p->budget = budget_for(st, tokens[0]);
      if (st.journal) {
        p->journaled = true;
        p->seq = next_seq++;
        // The begin record hits the disk BEFORE the request becomes
        // claimable — a crash at any later point leaves it recoverable.
        st.journal->append_begin(p->seq, line);
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      window.push_back(std::move(p));
    }
    work_cv.notify_one();
  }

  // Shutdown: let the emitter drain the window (workers are still alive to
  // finish claimed requests), then stop the workers.
  {
    std::lock_guard<std::mutex> lock(mu);
    input_done = true;
  }
  emit_cv.notify_one();
  emitter.join();
  {
    std::lock_guard<std::mutex> lock(mu);
    shutdown = true;
  }
  work_cv.notify_all();
  for (std::thread& w : workers) w.join();
  return 0;
}

}  // namespace

int run_serve(const ProcessorModel& model, const ServeOptions& options,
              std::shared_ptr<store::ArtifactStore> store, std::FILE* in,
              std::FILE* out, std::FILE* err) {
  SessionOptions sopts;
  sopts.num_threads = options.sim.num_threads;
  sopts.cache = options.session_cache;
  sopts.lanes = options.sim.lanes;
  sopts.netlist_opt = options.sim.netlist_opt;
  sopts.budget_factor = options.budget_factor;
  sopts.store = store;
  GradingSession session(model, sopts);

  // Journal setup, fail-soft: an unopenable journal degrades to an
  // unjournaled daemon with one warning, never a refusal to serve.
  std::unique_ptr<Journal> journal;
  JournalScan scan;
  std::uint64_t next_seq = 0;
  if (!options.journal_path.empty()) {
    scan = Journal::scan_file(options.journal_path);
    for (const JournalRecord& r : scan.records) {
      if (r.seq >= next_seq) next_seq = r.seq + 1;
    }
    if (!scan.missing && scan.valid_end < scan.file_size) {
      // Drop damaged tail bytes before reopening for append — otherwise a
      // recovery seal written after the garbage could be unreachable to the
      // next scan and the same request would replay forever.
      std::error_code ec;
      std::filesystem::resize_file(options.journal_path, scan.valid_end, ec);
      if (ec) {
        std::fprintf(err, "# serve: journal %s: cannot trim damaged tail\n",
                     options.journal_path.c_str());
      } else {
        std::fprintf(err,
                     "# serve: journal %s: trimmed damaged tail (%zu -> %zu "
                     "bytes)\n",
                     options.journal_path.c_str(), scan.file_size,
                     scan.valid_end);
      }
    }
    journal = std::make_unique<Journal>(options.journal_path);
    if (!journal->open_append()) {
      std::fprintf(err,
                   "# serve: journal %s unavailable; running unjournaled\n",
                   options.journal_path.c_str());
      journal.reset();
    }
  } else if (options.replay_journal) {
    std::fprintf(err, "# serve: --replay-journal needs --journal FILE; "
                      "skipped\n");
  }

  ServerState st{session, store.get(), options, journal.get()};

  std::fprintf(err, "# serve: ready (engine %s, store %s)\n",
               fault::engine_name(options.sim.engine),
               store ? store->dir().c_str() : "off");
  if (journal) {
    std::fprintf(err, "# serve: journal %s (next seq %llu)\n",
                 journal->path().c_str(),
                 static_cast<unsigned long long>(next_seq));
  }
  if (options.serve_threads > 1) {
    std::fprintf(err, "# serve: %u workers, queue depth %zu\n",
                 options.serve_threads, options.queue_depth);
  }
  std::fflush(err);

  if (options.replay_journal && journal) {
    replay_journal_pass(st, scan, out, err);
  }

  return options.serve_threads > 1
             ? run_concurrent_loop(st, next_seq, in, out, err)
             : run_serial_loop(st, next_seq, in, out, err);
}

}  // namespace sbst::serve
