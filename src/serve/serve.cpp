#include "serve/serve.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/tablefmt.hpp"
#include "conform/runner.hpp"

namespace sbst::serve {

using namespace sbst::core;

namespace {

struct CutName {
  const char* name;
  CutId id;
};
constexpr CutName kCuts[] = {
    {"mul", CutId::kMultiplier}, {"div", CutId::kDivider},
    {"rf", CutId::kRegisterFile}, {"mem", CutId::kMemCtrl},
    {"shifter", CutId::kShifter}, {"alu", CutId::kAlu},
    {"ctrl", CutId::kControl},
};

// --cpu-stats: the paper's §2 CPU-time equation, term by term. Goes to
// stderr so the determinism-checked stdout stays untouched.
void print_cpu_stats(const sim::ExecStats& s, std::FILE* err) {
  const double imiss =
      s.icache_accesses == 0
          ? 0.0
          : 100.0 * static_cast<double>(s.icache_misses) /
                static_cast<double>(s.icache_accesses);
  const double dmiss =
      s.dcache_accesses == 0
          ? 0.0
          : 100.0 * static_cast<double>(s.dcache_misses) /
                static_cast<double>(s.dcache_accesses);
  std::fprintf(err, "# cpu-stats: instructions %llu\n",
               static_cast<unsigned long long>(s.instructions));
  std::fprintf(err,
               "# cpu-stats: cpu cycles %llu + pipeline stalls %llu + "
               "memory stalls %llu = %llu total\n",
               static_cast<unsigned long long>(s.cpu_cycles),
               static_cast<unsigned long long>(s.pipeline_stall_cycles),
               static_cast<unsigned long long>(s.memory_stall_cycles),
               static_cast<unsigned long long>(s.total_cycles()));
  std::fprintf(err,
               "# cpu-stats: loads %llu stores %llu (data refs %llu)\n",
               static_cast<unsigned long long>(s.loads),
               static_cast<unsigned long long>(s.stores),
               static_cast<unsigned long long>(s.data_references()));
  std::fprintf(err,
               "# cpu-stats: icache %llu/%llu misses (%.2f%%), dcache "
               "%llu/%llu misses (%.2f%%)\n",
               static_cast<unsigned long long>(s.icache_misses),
               static_cast<unsigned long long>(s.icache_accesses), imiss,
               static_cast<unsigned long long>(s.dcache_misses),
               static_cast<unsigned long long>(s.dcache_accesses), dmiss);
  std::fprintf(err,
               "# cpu-stats: analytic total (5%% miss, 20-cycle penalty) "
               "%llu cycles\n",
               static_cast<unsigned long long>(
                   s.analytic_total_cycles(0.05, 20)));
  std::fprintf(err, "# cpu-stats: %.1f us at 57 MHz\n",
               1e6 * s.seconds(57e6));
}

// Reads one \n-terminated (or EOF-terminated) line; false on EOF with no
// bytes read.
bool read_line(std::FILE* in, std::string& line) {
  line.clear();
  int c;
  while ((c = std::fgetc(in)) != EOF) {
    if (c == '\n') return true;
    if (c != '\r') line.push_back(static_cast<char>(c));
  }
  return !line.empty();
}

// The effective model list: an empty selection means the stuck-at default.
std::vector<fault::FaultModel> resolve_models(
    const std::vector<fault::FaultModel>& models) {
  if (models.empty()) return {fault::FaultModel::kStuckAt};
  return models;
}

// True when the selection is exactly the legacy single-model default; only
// then do the renderers keep the historical (golden-diffed) table shape.
bool default_models(const std::vector<fault::FaultModel>& models) {
  return models.size() == 1 && models[0] == fault::FaultModel::kStuckAt;
}

// Selected fault models, resolved. Stderr only, like the engine config: the
// golden-diffed stdout must not change with the default selection.
void print_fault_model_config(const std::vector<fault::FaultModel>& models,
                              std::FILE* err) {
  std::string joined;
  for (const fault::FaultModel m : models) {
    if (!joined.empty()) joined += ",";
    joined += fault::fault_model_name(m);
  }
  std::fprintf(err, "# config: fault models %s\n", joined.c_str());
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string cur;
  for (const char ch : line) {
    if (ch == ' ' || ch == '\t') {
      if (!cur.empty()) tokens.push_back(std::move(cur)), cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  if (!cur.empty()) tokens.push_back(std::move(cur));
  return tokens;
}

}  // namespace

bool parse_cut_name(const std::string& name, CutId& out) {
  for (const CutName& c : kCuts) {
    if (name == c.name) {
      out = c.id;
      return true;
    }
  }
  return false;
}

bool parse_fault_model_list(const std::string& spec,
                            std::vector<fault::FaultModel>& out) {
  std::vector<fault::FaultModel> models;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const std::size_t comma = spec.find(',', begin);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    fault::FaultModel m;
    if (end == begin || !fault::parse_fault_model(
                            spec.substr(begin, end - begin), m)) {
      return false;
    }
    if (std::find(models.begin(), models.end(), m) == models.end()) {
      models.push_back(m);
    }
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  if (models.empty()) return false;
  out = std::move(models);
  return true;
}

bool injectable_cut(CutId id) {
  return id == CutId::kAlu || id == CutId::kShifter ||
         id == CutId::kMultiplier;
}

// Selected engine / lane / optimization configuration, resolved to what the
// gradings will actually run. Stderr only: stdout is golden-diffed across
// widths and engines.
void print_engine_config(const fault::SimOptions& sim, std::FILE* err) {
  const bool reference = sim.engine == fault::Engine::kReference;
  const unsigned lanes =
      reference ? 1
                : (sim.lanes == 0 ? fault::default_lanes()
                                  : (sim.lanes == 4 ? 4u : 1u));
  const bool opt = !reference &&
                   (sim.netlist_opt < 0 ? fault::default_netlist_opt()
                                        : sim.netlist_opt != 0);
  std::fprintf(err,
               "# config: engine %s, lanes %u (%u fault lanes/pass), "
               "netlist-opt %s\n",
               fault::engine_name(sim.engine), lanes, 64 * lanes - 1,
               opt ? "on" : "off");
}

void print_store_summary(const core::GradingSession& session,
                         const store::ArtifactStore* store, std::FILE* err) {
  if (!store) return;
  const SessionStats s = session.stats();
  std::fprintf(err,
               "# store: loads %zu hits %zu misses %zu invalid %zu "
               "writes %zu (dir %s)\n",
               s.store_loads, s.store_hits, s.store_misses, s.store_invalid,
               s.store_writes, store->dir().c_str());
}

int render_evaluate(GradingSession& session, const fault::SimOptions& sim,
                    bool cpu_stats, std::FILE* out, std::FILE* err,
                    const std::vector<fault::FaultModel>& fault_models) {
  const std::vector<fault::FaultModel> models = resolve_models(fault_models);
  print_engine_config(sim, err);
  print_fault_model_config(models, err);
  TestProgramBuilder builder;
  builder.add_default_routines(session.model());
  const TestProgram program = builder.build();
  EvalOptions options;
  options.sim = sim;
  options.fault_models = models;
  const ProgramEvaluation ev =
      evaluate_program(session, builder, program, options);
  if (default_models(models)) {
    // The legacy single-model table, byte-identical to the golden output.
    Table t({"Component", "FC (%)", "Miss. FC (%)"});
    for (const CutCoverage& c : ev.cuts) {
      t.add_row({session.model().component(c.id).name,
                 Table::num(c.coverage.percent(), 1),
                 Table::num(ev.missing_fc(c.id), 2)});
    }
    std::fputs(t.str().c_str(), out);
  } else {
    // One row per graded (component, model) pair. Miss. FC is each row's
    // undetected share of the combined fault population, so the column
    // still sums to 100 - overall FC.
    std::size_t population = 0;
    for (const CutCoverage& c : ev.cuts) population += c.coverage.total;
    Table t({"Component", "Model", "FC (%)", "Miss. FC (%)"});
    for (const CutCoverage& c : ev.cuts) {
      const double miss =
          population == 0
              ? 0.0
              : 100.0 *
                    static_cast<double>(c.coverage.total -
                                        c.coverage.detected) /
                    static_cast<double>(population);
      t.add_row({session.model().component(c.id).name,
                 fault::fault_model_name(c.model),
                 Table::num(c.coverage.percent(), 1), Table::num(miss, 2)});
    }
    std::fputs(t.str().c_str(), out);
  }
  std::fprintf(out,
               "overall FC %.2f%%; %llu cycles, %llu stalls, %llu data refs\n",
               ev.overall_fc(),
               static_cast<unsigned long long>(ev.total.cpu_cycles),
               static_cast<unsigned long long>(ev.total.pipeline_stall_cycles),
               static_cast<unsigned long long>(ev.total.data_references()));
  // Stage timings go to stderr: stdout must stay byte-identical for every
  // thread count / engine / cache / store setting (the CI determinism check
  // diffs it), while wall-clock never is.
  std::fprintf(err,
               "# stages (s): trace %.3f collapse %.3f compile %.3f "
               "grade %.3f standalone %.3f\n",
               ev.stages.trace, ev.stages.collapse, ev.stages.compile,
               ev.stages.grade, ev.stages.standalone);
  if (cpu_stats) print_cpu_stats(ev.total, err);
  return 0;
}

// Guarded injection campaign over the injectable CUTs: every fault gets a
// classified RunOutcome; the table splits detections into signature vs
// symptom. Stdout is deterministic for any thread count / cache setting
// (the CI smoke diffs it); wall-clock goes to stderr.
int render_campaign(GradingSession& session, const fault::SimOptions& sim,
                    std::size_t max_faults, const std::vector<CutId>& cuts,
                    std::FILE* out, std::FILE* err,
                    const std::vector<fault::FaultModel>& fault_models) {
  const std::vector<fault::FaultModel> models = resolve_models(fault_models);
  print_engine_config(sim, err);
  print_fault_model_config(models, err);
  const bool legacy = default_models(models);
  const ProcessorModel& model = session.model();
  TestProgramBuilder builder;
  builder.add_default_routines(model);
  const TestProgram program = builder.build();
  const auto t0 = std::chrono::steady_clock::now();
  OutcomeHistogram total;
  std::vector<std::string> header = {"Component", "Faults", "Sig", "Hang",
                                     "Trap", "Wild", "Ok", "Infra",
                                     "Det (%)"};
  if (!legacy) header.insert(header.begin() + 1, "Model");
  Table t(header);
  for (const CutId cut : cuts) {
    for (const fault::FaultModel fm : models) {
      std::vector<fault::Fault> faults = session.universe(cut, fm).collapsed();
      if (max_faults != 0 && faults.size() > max_faults) {
        faults.resize(max_faults);
      }
      const OutcomeHistogram h = histogram_of(
          run_injection_campaign(session, program, cut, faults, {}));
      for (std::size_t k = 0; k < kRunOutcomeCount; ++k) {
        total.counts[k] += h.counts[k];
      }
      const double det =
          h.total() == 0 ? 0.0
                         : 100.0 * static_cast<double>(h.detected()) /
                               static_cast<double>(h.total());
      std::vector<std::string> row = {
          model.component(cut).name,
          Table::num(static_cast<std::uint64_t>(h.total())),
          Table::num(static_cast<std::uint64_t>(h.detected_by_signature())),
          Table::num(static_cast<std::uint64_t>(
              h.count(RunOutcome::kDetectedHang))),
          Table::num(static_cast<std::uint64_t>(
              h.count(RunOutcome::kDetectedTrap))),
          Table::num(static_cast<std::uint64_t>(
              h.count(RunOutcome::kDetectedWildStore))),
          Table::num(static_cast<std::uint64_t>(
              h.count(RunOutcome::kOkMatch))),
          Table::num(static_cast<std::uint64_t>(
              h.count(RunOutcome::kInfraError))),
          Table::num(det, 1)};
      if (!legacy) row.insert(row.begin() + 1, fault::fault_model_name(fm));
      t.add_row(row);
    }
  }
  std::fputs(t.str().c_str(), out);
  std::fprintf(
      out,
      "campaign: %zu faults, detected %zu (signature %zu, symptom %zu), "
      "infra errors %zu\n",
      total.total(), total.detected(), total.detected_by_signature(),
      total.detected_by_symptom(), total.count(RunOutcome::kInfraError));
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::fprintf(err, "# campaign: budget factor %.1f, %.3f s wall, %zu faults\n",
               session.options().budget_factor, wall, total.total());
  return 0;
}

// `conform run`: three-executor differential replay. Stdout (per-class
// table, failure details, summary) is deterministic for any thread count /
// cache setting — the CI golden diff depends on it. Timings go to stderr.
int render_conform_run(GradingSession& session, const char* dir,
                       std::FILE* out, std::FILE* err) {
  const auto t0 = std::chrono::steady_clock::now();
  const conform::Corpus corpus = conform::load_corpus(dir);
  const auto t1 = std::chrono::steady_clock::now();
  const conform::ConformRunner runner(&session);
  const conform::ConformReport report = runner.run(corpus);
  const auto t2 = std::chrono::steady_clock::now();
  Table t({"Class", "Cases", "Pass", "Fail"});
  for (const conform::ClassTally& tally : report.by_class) {
    t.add_row({tally.cls,
               Table::num(static_cast<std::uint64_t>(tally.cases)),
               Table::num(static_cast<std::uint64_t>(tally.pass)),
               Table::num(static_cast<std::uint64_t>(tally.fail))});
  }
  std::fputs(t.str().c_str(), out);
  for (const conform::CaseFailure& f : report.failures) {
    std::fprintf(out, "FAIL %s [%s]: %s\n", f.name.c_str(),
                 conform::executor_name(f.exec), f.detail.c_str());
  }
  std::fprintf(out,
               "conform: %zu cases, passed %zu, failed %zu "
               "(%s, seed %llu, content hash %016llx)\n",
               report.cases, report.passed, report.failed,
               corpus.version.c_str(),
               static_cast<unsigned long long>(corpus.seed),
               static_cast<unsigned long long>(
                   conform::corpus_content_hash(corpus)));
  std::fprintf(err, "# conform: load %.3f s, replay %.3f s, %zu cases\n",
               std::chrono::duration<double>(t1 - t0).count(),
               std::chrono::duration<double>(t2 - t1).count(), report.cases);
  return report.ok() ? 0 : 1;
}

void render_stats(const GradingSession& session,
                  const store::ArtifactStore* store, std::FILE* out) {
  const SessionStats s = session.stats();
  std::fprintf(out,
               "session: universe %zu/%zu compile %zu/%zu observe %zu/%zu "
               "cone %zu/%zu decode %zu/%zu goodrun %zu/%zu patterns %zu/%zu "
               "(builds/hits)\n",
               s.universe_builds, s.universe_hits, s.compile_builds,
               s.compile_hits, s.observe_builds, s.observe_hits,
               s.cone_builds, s.cone_hits, s.decode_builds, s.decode_hits,
               s.goodrun_builds, s.goodrun_hits, s.patterns_builds,
               s.patterns_hits);
  if (store) {
    std::fprintf(out,
                 "store: loads %zu hits %zu misses %zu invalid %zu "
                 "writes %zu\n",
                 s.store_loads, s.store_hits, s.store_misses,
                 s.store_invalid, s.store_writes);
  } else {
    std::fputs("store: none\n", out);
  }
}

int run_serve(const ProcessorModel& model, const ServeOptions& options,
              std::shared_ptr<store::ArtifactStore> store, std::FILE* in,
              std::FILE* out, std::FILE* err) {
  SessionOptions sopts;
  sopts.num_threads = options.sim.num_threads;
  sopts.cache = options.session_cache;
  sopts.lanes = options.sim.lanes;
  sopts.netlist_opt = options.sim.netlist_opt;
  sopts.budget_factor = options.budget_factor;
  sopts.store = store;
  GradingSession session(model, sopts);

  std::fprintf(err, "# serve: ready (engine %s, store %s)\n",
               fault::engine_name(options.sim.engine),
               store ? store->dir().c_str() : "off");
  std::fflush(err);

  std::string line;
  while (read_line(in, line)) {
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& verb = tokens[0];
    const auto t0 = std::chrono::steady_clock::now();

    if (verb == "quit") {
      std::fputs("ok quit\n", out);
      std::fflush(out);
      return 0;
    } else if (verb == "ping") {
      std::fputs("ok ping\n", out);
    } else if (verb == "stats") {
      render_stats(session, store.get(), out);
      std::fputs("ok stats\n", out);
    } else if (verb == "evaluate") {
      if (tokens.size() != 1) {
        std::fputs("err evaluate takes no arguments\n", out);
      } else {
        render_evaluate(session, options.sim, options.cpu_stats, out, err,
                        options.fault_models);
        std::fputs("ok evaluate\n", out);
      }
    } else if (verb == "campaign") {
      std::vector<CutId> cuts;
      bool bad = false;
      for (std::size_t k = 1; k < tokens.size(); ++k) {
        CutId cut;
        if (!parse_cut_name(tokens[k], cut) || !injectable_cut(cut)) {
          std::fprintf(out, "err campaign: %s is not an injectable CUT "
                            "(alu / shifter / mul)\n",
                       tokens[k].c_str());
          bad = true;
          break;
        }
        cuts.push_back(cut);
      }
      if (!bad) {
        if (cuts.empty()) {
          cuts = {CutId::kAlu, CutId::kShifter, CutId::kMultiplier};
        }
        render_campaign(session, options.sim, options.max_faults, cuts, out,
                        err, options.fault_models);
        std::fputs("ok campaign\n", out);
      }
    } else if (verb == "conform" && tokens.size() == 3 &&
               tokens[1] == "run") {
      try {
        const int status =
            render_conform_run(session, tokens[2].c_str(), out, err);
        if (status == 0) {
          std::fputs("ok conform\n", out);
        } else {
          std::fputs("err conform: differential failures\n", out);
        }
      } catch (const conform::ConformError& e) {
        std::fprintf(out, "err conform: %s\n", e.what());
      }
    } else {
      std::fprintf(out, "err unknown command: %s\n", verb.c_str());
    }

    std::fflush(out);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::fprintf(err, "# serve: %s %.3f s\n", verb.c_str(), wall);
    print_store_summary(session, store.get(), err);
    std::fflush(err);
  }
  return 0;
}

}  // namespace sbst::serve
